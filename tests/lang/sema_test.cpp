#include "lang/sema.hpp"

#include <gtest/gtest.h>

#include "lang/parser.hpp"

namespace psa::lang {
namespace {

struct SemaRun {
  TranslationUnit unit;
  SemaResult result;
  support::DiagnosticEngine diags;
};

SemaRun run_sema(std::string_view src) {
  SemaRun run;
  run.unit = parse_source(src, run.diags);
  EXPECT_FALSE(run.diags.has_errors()) << run.diags.to_string();
  run.result = analyze(run.unit, run.diags);
  return run;
}

TEST(SemaTest, CollectsPointerVars) {
  SemaRun run = run_sema(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *a; struct node *b; int i;
      a = NULL; b = NULL; i = 0;
    }
  )");
  EXPECT_FALSE(run.diags.has_errors()) << run.diags.to_string();
  ASSERT_EQ(run.result.functions.size(), 1u);
  EXPECT_EQ(run.result.functions[0].pointer_vars.size(), 2u);
  EXPECT_EQ(run.result.functions[0].variables.size(), 3u);
}

TEST(SemaTest, ParamsAreVariables) {
  SemaRun run = run_sema(R"(
    void f(int a, double b) { a = 1; }
  )");
  EXPECT_FALSE(run.diags.has_errors());
  EXPECT_EQ(run.result.functions[0].variables.size(), 2u);
}

TEST(SemaTest, RejectsUndeclaredVariable) {
  SemaRun run = run_sema(R"(
    void main() { x = 1; }
  )");
  EXPECT_TRUE(run.diags.has_errors());
}

TEST(SemaTest, RejectsRedeclaration) {
  SemaRun run = run_sema(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *p;
      p = NULL;
      if (1 < 2) { struct node *p; p = NULL; }
    }
  )");
  EXPECT_TRUE(run.diags.has_errors());
}

TEST(SemaTest, RejectsUnknownField) {
  SemaRun run = run_sema(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *p;
      p = malloc(struct node);
      p->missing = NULL;
    }
  )");
  EXPECT_TRUE(run.diags.has_errors());
}

TEST(SemaTest, RejectsArrowOnNonPointer) {
  SemaRun run = run_sema(R"(
    void main() { int i; i = 0; i->x = 1; }
  )");
  EXPECT_TRUE(run.diags.has_errors());
}

TEST(SemaTest, RejectsCrossTypePointerAssignment) {
  SemaRun run = run_sema(R"(
    struct a { struct a *n; };
    struct b { struct b *n; };
    void main() {
      struct a *pa; struct b *pb;
      pa = malloc(struct a);
      pb = malloc(struct b);
      pa = pb;
    }
  )");
  EXPECT_TRUE(run.diags.has_errors());
}

TEST(SemaTest, MallocTypeFromAssignmentContext) {
  SemaRun run = run_sema(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *p;
      p = malloc(sizeof(p));
    }
  )");
  EXPECT_FALSE(run.diags.has_errors()) << run.diags.to_string();
}

TEST(SemaTest, RejectsPointerArgumentsToCalls) {
  SemaRun run = run_sema(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *p;
      p = malloc(struct node);
      visit(p);
    }
  )");
  EXPECT_TRUE(run.diags.has_errors());
}

TEST(SemaTest, ScalarCallsAreOpaqueAndAllowed) {
  SemaRun run = run_sema(R"(
    void main() {
      int i;
      i = rand();
      printf("x");
    }
  )");
  EXPECT_FALSE(run.diags.has_errors()) << run.diags.to_string();
}

TEST(SemaTest, NullComparisonGetsPointerContext) {
  SemaRun run = run_sema(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *p;
      p = malloc(struct node);
      if (p->nxt == NULL) { p = NULL; }
    }
  )");
  EXPECT_FALSE(run.diags.has_errors()) << run.diags.to_string();
}

TEST(SemaTest, FieldTypesResolved) {
  SemaRun run = run_sema(R"(
    struct node { struct node *nxt; int v; };
    void main() {
      struct node *p; int x;
      p = malloc(struct node);
      x = p->v;
      p = p->nxt;
    }
  )");
  EXPECT_FALSE(run.diags.has_errors()) << run.diags.to_string();
}

TEST(SemaTest, FindByName) {
  SemaRun run = run_sema(R"(
    void foo() { }
    void bar() { }
  )");
  const Symbol foo = run.unit.interner->lookup("foo");
  ASSERT_TRUE(foo.valid());
  ASSERT_NE(run.result.find(foo), nullptr);
  EXPECT_EQ(run.result.find(Symbol()), nullptr);
}

}  // namespace
}  // namespace psa::lang
