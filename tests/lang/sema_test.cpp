#include "lang/sema.hpp"

#include <gtest/gtest.h>

#include "lang/parser.hpp"

namespace psa::lang {
namespace {

struct SemaRun {
  TranslationUnit unit;
  SemaResult result;
  support::DiagnosticEngine diags;
};

SemaRun run_sema(std::string_view src) {
  SemaRun run;
  run.unit = parse_source(src, run.diags);
  EXPECT_FALSE(run.diags.has_errors()) << run.diags.to_string();
  run.result = analyze(run.unit, run.diags);
  return run;
}

TEST(SemaTest, CollectsPointerVars) {
  SemaRun run = run_sema(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *a; struct node *b; int i;
      a = NULL; b = NULL; i = 0;
    }
  )");
  EXPECT_FALSE(run.diags.has_errors()) << run.diags.to_string();
  ASSERT_EQ(run.result.functions.size(), 1u);
  EXPECT_EQ(run.result.functions[0].pointer_vars.size(), 2u);
  EXPECT_EQ(run.result.functions[0].variables.size(), 3u);
}

TEST(SemaTest, ParamsAreVariables) {
  SemaRun run = run_sema(R"(
    void f(int a, double b) { a = 1; }
  )");
  EXPECT_FALSE(run.diags.has_errors());
  EXPECT_EQ(run.result.functions[0].variables.size(), 2u);
}

TEST(SemaTest, RejectsUndeclaredVariable) {
  SemaRun run = run_sema(R"(
    void main() { x = 1; }
  )");
  EXPECT_TRUE(run.diags.has_errors());
}

TEST(SemaTest, RejectsRedeclaration) {
  SemaRun run = run_sema(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *p;
      p = NULL;
      if (1 < 2) { struct node *p; p = NULL; }
    }
  )");
  EXPECT_TRUE(run.diags.has_errors());
}

TEST(SemaTest, RejectsUnknownField) {
  SemaRun run = run_sema(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *p;
      p = malloc(struct node);
      p->missing = NULL;
    }
  )");
  EXPECT_TRUE(run.diags.has_errors());
}

TEST(SemaTest, RejectsArrowOnNonPointer) {
  SemaRun run = run_sema(R"(
    void main() { int i; i = 0; i->x = 1; }
  )");
  EXPECT_TRUE(run.diags.has_errors());
}

TEST(SemaTest, RejectsCrossTypePointerAssignment) {
  SemaRun run = run_sema(R"(
    struct a { struct a *n; };
    struct b { struct b *n; };
    void main() {
      struct a *pa; struct b *pb;
      pa = malloc(struct a);
      pb = malloc(struct b);
      pa = pb;
    }
  )");
  EXPECT_TRUE(run.diags.has_errors());
}

TEST(SemaTest, MallocTypeFromAssignmentContext) {
  SemaRun run = run_sema(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *p;
      p = malloc(sizeof(p));
    }
  )");
  EXPECT_FALSE(run.diags.has_errors()) << run.diags.to_string();
}

TEST(SemaTest, RejectsPointerArgumentsToCalls) {
  SemaRun run = run_sema(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *p;
      p = malloc(struct node);
      visit(p);
    }
  )");
  EXPECT_TRUE(run.diags.has_errors());
}

TEST(SemaTest, ScalarCallsAreOpaqueAndAllowed) {
  SemaRun run = run_sema(R"(
    void main() {
      int i;
      i = rand();
      printf("x");
    }
  )");
  EXPECT_FALSE(run.diags.has_errors()) << run.diags.to_string();
}

TEST(SemaTest, NullComparisonGetsPointerContext) {
  SemaRun run = run_sema(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *p;
      p = malloc(struct node);
      if (p->nxt == NULL) { p = NULL; }
    }
  )");
  EXPECT_FALSE(run.diags.has_errors()) << run.diags.to_string();
}

TEST(SemaTest, FieldTypesResolved) {
  SemaRun run = run_sema(R"(
    struct node { struct node *nxt; int v; };
    void main() {
      struct node *p; int x;
      p = malloc(struct node);
      x = p->v;
      p = p->nxt;
    }
  )");
  EXPECT_FALSE(run.diags.has_errors()) << run.diags.to_string();
}

TEST(SemaTest, FindByName) {
  SemaRun run = run_sema(R"(
    void foo() { }
    void bar() { }
  )");
  const Symbol foo = run.unit.interner->lookup("foo");
  ASSERT_TRUE(foo.valid());
  ASSERT_NE(run.result.find(foo), nullptr);
  EXPECT_EQ(run.result.find(Symbol()), nullptr);
}

SemaRun run_sema_salvage(std::string_view src) {
  SemaRun run;
  run.diags.set_salvage(true);
  run.unit = parse_source(src, run.diags);
  EXPECT_FALSE(run.diags.has_errors()) << run.diags.to_string();
  run.result = analyze(run.unit, run.diags);
  return run;
}

// An unknown extern taking a struct-pointer argument is a hard error in
// strict mode but only kUnsupported in salvage mode: the call will lower to
// a havoc and the function stays analyzable.
constexpr std::string_view kStructPtrCallSource = R"(
  struct node { struct node *nxt; };
  void main() {
    struct node *p;
    p = malloc(struct node);
    trace(p);
  }
)";

TEST(SemaTest, SalvageModeDowngradesUnsupportedConstructs) {
  SemaRun run = run_sema_salvage(kStructPtrCallSource);
  EXPECT_FALSE(run.diags.has_errors()) << run.diags.to_string();
  EXPECT_GE(run.diags.unsupported_count(), 1u);
  // The function is NOT stubbed: later phases still analyze it.
  ASSERT_EQ(run.result.functions.size(), 1u);
  EXPECT_TRUE(run.unit.skipped.empty());
}

TEST(SemaTest, StrictModeStillRejectsUnsupportedConstructs) {
  SemaRun run;
  run.unit = parse_source(kStructPtrCallSource, run.diags);
  ASSERT_FALSE(run.diags.has_errors());
  run.result = analyze(run.unit, run.diags);
  EXPECT_TRUE(run.diags.has_errors());
}

TEST(SemaTest, SalvageModeDowngradesUndeclaredVariableToHavoc) {
  // An undeclared variable is itself only kUnsupported: the statement will
  // lower to a havoc and the function stays analyzable.
  SemaRun run = run_sema_salvage(R"(
    struct node { struct node *nxt; };
    void main() { struct node *p; p = NULL; undeclared = p; }
  )");
  EXPECT_FALSE(run.diags.has_errors()) << run.diags.to_string();
  EXPECT_GE(run.diags.unsupported_count(), 1u);
  ASSERT_EQ(run.result.functions.size(), 1u);
  EXPECT_TRUE(run.unit.skipped.empty());
}

TEST(SemaTest, SalvageModeStubsFunctionWithHardSemaErrors) {
  // A redeclaration makes the function's variable environment ambiguous —
  // salvage stubs the whole function instead of analyzing a guess, and the
  // sibling function is unaffected.
  SemaRun run = run_sema_salvage(R"(
    struct node { struct node *nxt; };
    void broken() { struct node *p; struct node *p; p = NULL; }
    void main() { struct node *p; p = NULL; }
  )");
  EXPECT_FALSE(run.diags.has_errors()) << run.diags.to_string();
  ASSERT_EQ(run.result.functions.size(), 1u);
  EXPECT_EQ(run.unit.interner->spelling(run.result.functions[0].decl->name),
            "main");
  ASSERT_EQ(run.unit.skipped.size(), 1u);
  EXPECT_EQ(run.unit.interner->spelling(run.unit.skipped[0].name), "broken");
  EXPECT_FALSE(run.unit.skipped[0].diagnostics.empty());
}

}  // namespace
}  // namespace psa::lang
