#include "lang/lexer.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace psa::lang {
namespace {

std::vector<Token> lex(std::string_view src, support::DiagnosticEngine& diags) {
  Lexer lexer(src, diags);
  return lexer.lex_all();
}

std::vector<TokenKind> kinds(std::string_view src) {
  support::DiagnosticEngine diags;
  std::vector<TokenKind> out;
  for (const Token& t : lex(src, diags)) out.push_back(t.kind);
  return out;
}

TEST(LexerTest, EmptyInputYieldsEof) {
  EXPECT_EQ(kinds(""), (std::vector<TokenKind>{TokenKind::kEof}));
}

TEST(LexerTest, Keywords) {
  EXPECT_EQ(kinds("struct while if"),
            (std::vector<TokenKind>{TokenKind::kKwStruct, TokenKind::kKwWhile,
                                    TokenKind::kKwIf, TokenKind::kEof}));
}

TEST(LexerTest, NullAndMallocAreKeywords) {
  EXPECT_EQ(kinds("NULL malloc free sizeof"),
            (std::vector<TokenKind>{TokenKind::kKwNull, TokenKind::kKwMalloc,
                                    TokenKind::kKwFree, TokenKind::kKwSizeof,
                                    TokenKind::kEof}));
}

TEST(LexerTest, IdentifiersAndLiterals) {
  support::DiagnosticEngine diags;
  const auto toks = lex("foo _bar x1 42 3.14 1e5", diags);
  EXPECT_EQ(toks[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(toks[0].text, "foo");
  EXPECT_EQ(toks[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(toks[2].kind, TokenKind::kIdentifier);
  EXPECT_EQ(toks[3].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(toks[4].kind, TokenKind::kFloatLiteral);
  EXPECT_EQ(toks[5].kind, TokenKind::kFloatLiteral);
}

TEST(LexerTest, ArrowVsMinus) {
  EXPECT_EQ(kinds("a->b a-b a--"),
            (std::vector<TokenKind>{
                TokenKind::kIdentifier, TokenKind::kArrow,
                TokenKind::kIdentifier, TokenKind::kIdentifier,
                TokenKind::kMinus, TokenKind::kIdentifier,
                TokenKind::kIdentifier, TokenKind::kMinusMinus,
                TokenKind::kEof}));
}

TEST(LexerTest, ComparisonOperators) {
  EXPECT_EQ(kinds("== != <= >= < > ="),
            (std::vector<TokenKind>{TokenKind::kEq, TokenKind::kNe,
                                    TokenKind::kLe, TokenKind::kGe,
                                    TokenKind::kLt, TokenKind::kGt,
                                    TokenKind::kAssign, TokenKind::kEof}));
}

TEST(LexerTest, LogicalOperators) {
  EXPECT_EQ(kinds("&& || ! &"),
            (std::vector<TokenKind>{TokenKind::kAndAnd, TokenKind::kOrOr,
                                    TokenKind::kNot, TokenKind::kAmp,
                                    TokenKind::kEof}));
}

TEST(LexerTest, LineCommentsSkipped) {
  EXPECT_EQ(kinds("a // comment \n b"),
            (std::vector<TokenKind>{TokenKind::kIdentifier,
                                    TokenKind::kIdentifier, TokenKind::kEof}));
}

TEST(LexerTest, BlockCommentsSkipped) {
  EXPECT_EQ(kinds("a /* x \n y */ b"),
            (std::vector<TokenKind>{TokenKind::kIdentifier,
                                    TokenKind::kIdentifier, TokenKind::kEof}));
}

TEST(LexerTest, PreprocessorLinesSkipped) {
  EXPECT_EQ(kinds("#include <stdio.h>\nint"),
            (std::vector<TokenKind>{TokenKind::kKwInt, TokenKind::kEof}));
}

TEST(LexerTest, TracksLineAndColumn) {
  support::DiagnosticEngine diags;
  const auto toks = lex("a\n  b", diags);
  EXPECT_EQ(toks[0].loc.line, 1u);
  EXPECT_EQ(toks[0].loc.column, 1u);
  EXPECT_EQ(toks[1].loc.line, 2u);
  EXPECT_EQ(toks[1].loc.column, 3u);
}

TEST(LexerTest, UnterminatedBlockCommentReported) {
  support::DiagnosticEngine diags;
  (void)lex("a /* never closed", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(LexerTest, UnexpectedCharacterReported) {
  support::DiagnosticEngine diags;
  (void)lex("a $ b", diags);
  EXPECT_TRUE(diags.has_errors());
}

TEST(LexerTest, StringAndCharLiterals) {
  EXPECT_EQ(kinds("\"hi\" 'c'"),
            (std::vector<TokenKind>{TokenKind::kStringLiteral,
                                    TokenKind::kCharLiteral, TokenKind::kEof}));
}

TEST(LexerTest, CompoundAssignments) {
  EXPECT_EQ(kinds("+= -= ++"),
            (std::vector<TokenKind>{TokenKind::kPlusAssign,
                                    TokenKind::kMinusAssign,
                                    TokenKind::kPlusPlus, TokenKind::kEof}));
}

TEST(LexerTest, StrictModeStopsAtUnexpectedCharacter) {
  // The historical contract: an unknown character is a hard error and the
  // token stream ends, so nothing after it is ever parsed.
  support::DiagnosticEngine diags;
  const auto toks = lex("a $ b", diags);
  EXPECT_TRUE(diags.has_errors());
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(toks[1].kind, TokenKind::kEof);
}

TEST(LexerTest, SalvageModeKeepsLexingPastUnexpectedCharacters) {
  support::DiagnosticEngine diags;
  diags.set_salvage(true);
  const auto toks = lex("a $ b : c", diags);
  EXPECT_FALSE(diags.has_errors());
  EXPECT_EQ(diags.unsupported_count(), 2u);
  std::vector<TokenKind> got;
  for (const Token& t : toks) got.push_back(t.kind);
  EXPECT_EQ(got, (std::vector<TokenKind>{
                     TokenKind::kIdentifier, TokenKind::kUnknown,
                     TokenKind::kIdentifier, TokenKind::kUnknown,
                     TokenKind::kIdentifier, TokenKind::kEof}));
}

TEST(LexerTest, SalvageModeSinglePipeBecomesUnknownToken) {
  support::DiagnosticEngine diags;
  diags.set_salvage(true);
  const auto toks = lex("a | b || c", diags);
  EXPECT_FALSE(diags.has_errors());
  EXPECT_EQ(toks[1].kind, TokenKind::kUnknown);
  EXPECT_EQ(toks[3].kind, TokenKind::kOrOr);
}

}  // namespace
}  // namespace psa::lang
