#include "lang/parser.hpp"

#include <gtest/gtest.h>

namespace psa::lang {
namespace {

TranslationUnit parse_ok(std::string_view src) {
  support::DiagnosticEngine diags;
  TranslationUnit unit = parse_source(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.to_string();
  return unit;
}

bool parse_fails(std::string_view src) {
  support::DiagnosticEngine diags;
  (void)parse_source(src, diags);
  return diags.has_errors();
}

TEST(ParserTest, EmptyUnit) {
  const TranslationUnit unit = parse_ok("");
  EXPECT_TRUE(unit.functions.empty());
  EXPECT_EQ(unit.types.struct_count(), 0u);
}

TEST(ParserTest, StructWithSelectors) {
  const TranslationUnit unit = parse_ok(
      "struct node { struct node *nxt; struct node *prv; int val; };");
  ASSERT_EQ(unit.types.struct_count(), 1u);
  const StructDecl& decl = unit.types.struct_decl(static_cast<StructId>(0));
  EXPECT_EQ(unit.interner->spelling(decl.name), "node");
  ASSERT_EQ(decl.fields.size(), 3u);
  EXPECT_TRUE(decl.fields[0].is_selector());
  EXPECT_TRUE(decl.fields[1].is_selector());
  EXPECT_FALSE(decl.fields[2].is_selector());
  EXPECT_EQ(decl.selectors().size(), 2u);
}

TEST(ParserTest, ForwardReferenceBetweenStructs) {
  const TranslationUnit unit = parse_ok(R"(
    struct a { struct b *to_b; };
    struct b { struct a *to_a; };
  )");
  EXPECT_EQ(unit.types.struct_count(), 2u);
  EXPECT_EQ(unit.types.all_selectors().size(), 2u);
}

TEST(ParserTest, SimpleFunction) {
  const TranslationUnit unit = parse_ok(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *p;
      p = NULL;
    }
  )");
  ASSERT_EQ(unit.functions.size(), 1u);
  EXPECT_NE(unit.find_function("main"), nullptr);
  EXPECT_EQ(unit.find_function("other"), nullptr);
}

TEST(ParserTest, MallocShorthandAndSizeofForms) {
  const TranslationUnit unit = parse_ok(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *a; struct node *b; struct node *c;
      a = malloc(struct node);
      b = malloc(sizeof(struct node));
      c = (struct node*) malloc(sizeof(struct node));
    }
  )");
  const auto& body = unit.functions[0].body->body;
  // decl, three assignments
  ASSERT_GE(body.size(), 4u);
}

TEST(ParserTest, WhileLoopWithNullCheck) {
  const TranslationUnit unit = parse_ok(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *p;
      p = NULL;
      while (p != NULL) { p = p->nxt; }
    }
  )");
  const auto& body = unit.functions[0].body->body;
  bool has_while = false;
  for (const auto& s : body) has_while |= s->kind == StmtKind::kWhile;
  EXPECT_TRUE(has_while);
}

TEST(ParserTest, ForLoopDesugar) {
  const TranslationUnit unit = parse_ok(R"(
    void main() {
      int i;
      for (i = 0; i < 10; i++) { }
    }
  )");
  const auto& body = unit.functions[0].body->body;
  bool has_for = false;
  for (const auto& s : body) {
    if (s->kind == StmtKind::kFor) {
      has_for = true;
      EXPECT_NE(s->init, nullptr);
      EXPECT_NE(s->cond, nullptr);
      ASSERT_NE(s->step, nullptr);
      // i++ desugars to i = i + 1
      EXPECT_EQ(s->step->kind, StmtKind::kAssign);
    }
  }
  EXPECT_TRUE(has_for);
}

TEST(ParserTest, DoWhile) {
  const TranslationUnit unit = parse_ok(R"(
    void main() {
      int i;
      i = 0;
      do { i = i + 1; } while (i < 3);
    }
  )");
  bool has_do = false;
  for (const auto& s : unit.functions[0].body->body)
    has_do |= s->kind == StmtKind::kDoWhile;
  EXPECT_TRUE(has_do);
}

TEST(ParserTest, CompoundAssignDesugar) {
  const TranslationUnit unit = parse_ok(R"(
    void main() {
      int i;
      i = 0;
      i += 5;
    }
  )");
  const auto& body = unit.functions[0].body->body;
  const Stmt& s = *body.back();
  ASSERT_EQ(s.kind, StmtKind::kAssign);
  ASSERT_EQ(s.rhs->kind, ExprKind::kBinary);
  EXPECT_EQ(s.rhs->binary_op, BinaryOp::kAdd);
}

TEST(ParserTest, FieldChainParses) {
  const TranslationUnit unit = parse_ok(R"(
    struct node { struct node *nxt; int v; };
    void main() {
      struct node *p; int x;
      p = malloc(struct node);
      x = p->nxt->v;
    }
  )");
  const Stmt& s = *unit.functions[0].body->body.back();
  ASSERT_EQ(s.kind, StmtKind::kAssign);
  ASSERT_EQ(s.rhs->kind, ExprKind::kFieldAccess);
  EXPECT_EQ(s.rhs->lhs->kind, ExprKind::kFieldAccess);
}

TEST(ParserTest, PrecedenceOfArithmetic) {
  const TranslationUnit unit = parse_ok(R"(
    void main() { int x; x = 1 + 2 * 3; }
  )");
  const Stmt& s = *unit.functions[0].body->body.back();
  ASSERT_EQ(s.rhs->kind, ExprKind::kBinary);
  EXPECT_EQ(s.rhs->binary_op, BinaryOp::kAdd);
  EXPECT_EQ(s.rhs->rhs->binary_op, BinaryOp::kMul);
}

TEST(ParserTest, BreakContinueReturnFree) {
  const TranslationUnit unit = parse_ok(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *p;
      p = malloc(struct node);
      while (1 < 2) {
        if (1 < 2) { break; }
        continue;
      }
      free(p);
      return;
    }
  )");
  EXPECT_EQ(unit.functions.size(), 1u);
}

TEST(ParserTest, FunctionParameters) {
  const TranslationUnit unit = parse_ok(R"(
    struct node { struct node *nxt; };
    int helper(int a, double b) { return 0; }
  )");
  ASSERT_EQ(unit.functions.size(), 1u);
  EXPECT_EQ(unit.functions[0].params.size(), 2u);
}

TEST(ParserTest, RejectsMultiLevelPointers) {
  EXPECT_TRUE(parse_fails(R"(
    struct node { struct node **grid; };
  )"));
}

TEST(ParserTest, RejectsByValueStructLocals) {
  EXPECT_TRUE(parse_fails(R"(
    struct node { int v; };
    void main() { struct node n; }
  )"));
}

TEST(ParserTest, RejectsByValueStructParameters) {
  // A by-value struct parameter would copy pointer fields past the summary
  // argument region, like the field/local forms above.
  EXPECT_TRUE(parse_fails(R"(
    struct node { struct node *nxt; };
    void take(struct node n) { }
  )"));
  // The pointer form stays accepted.
  const TranslationUnit unit = parse_ok(R"(
    struct node { struct node *nxt; };
    void take(struct node *n) { }
  )");
  ASSERT_EQ(unit.functions.size(), 1u);
  EXPECT_EQ(unit.functions[0].params.size(), 1u);
}

TEST(ParserTest, RejectsGarbage) {
  EXPECT_TRUE(parse_fails("@@@"));
  EXPECT_TRUE(parse_fails("void main() { while } "));
}

TEST(ParserTest, DumpStmtIsStable) {
  const TranslationUnit unit = parse_ok(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *p;
      p = malloc(struct node);
      p->nxt = NULL;
    }
  )");
  const std::string text = dump_stmt(*unit.functions[0].body, *unit.interner);
  EXPECT_NE(text.find("p->nxt = NULL"), std::string::npos);
  EXPECT_NE(text.find("malloc(struct node)"), std::string::npos);
}

TEST(ParserTest, ScalarArraysAcceptedAsOpaque) {
  const TranslationUnit unit = parse_ok(R"(
    struct node { struct node *nxt; double coords[3]; };
    void main() { int buf[8]; }
  )");
  EXPECT_EQ(unit.types.all_selectors().size(), 1u);
}

// Two unparseable functions bracketing a good one: per-declaration recovery
// must surface a diagnostic for EACH bad declaration (synchronize() used to
// swallow everything after the first) and still parse the good function.
constexpr std::string_view kTwoBadDeclsSource = R"(
  struct node { struct node *nxt; };
  void broken1() { x = ; }
  void ok() { struct node *p; p = NULL; }
  void broken2() { free(); }
)";

TEST(ParserTest, StrictModeKeepsDiagnosticsOfEveryBadDeclaration) {
  support::DiagnosticEngine diags;
  const TranslationUnit unit = parse_source(kTwoBadDeclsSource, diags);
  EXPECT_GE(diags.error_count(), 2u);
  // One error in broken1 (line 3) and one in broken2 (line 5) — recovery
  // after the first bad declaration must not eat the second's diagnostic.
  bool saw_first = false;
  bool saw_second = false;
  for (const auto& d : diags.all()) {
    saw_first |= d.loc.line == 3;
    saw_second |= d.loc.line == 5;
  }
  EXPECT_TRUE(saw_first) << diags.to_string();
  EXPECT_TRUE(saw_second) << diags.to_string();
  ASSERT_NE(unit.find_function("ok"), nullptr);
  EXPECT_TRUE(unit.skipped.empty());  // stubs are salvage-mode only
}

TEST(ParserTest, SalvageModeStubsEveryBadDeclarationAndKeepsTheRest) {
  support::DiagnosticEngine diags;
  diags.set_salvage(true);
  const TranslationUnit unit = parse_source(kTwoBadDeclsSource, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.to_string();
  EXPECT_GE(diags.unsupported_count(), 2u);
  ASSERT_EQ(unit.functions.size(), 1u);
  EXPECT_NE(unit.find_function("ok"), nullptr);
  ASSERT_EQ(unit.skipped.size(), 2u);
  EXPECT_EQ(unit.interner->spelling(unit.skipped[0].name), "broken1");
  EXPECT_EQ(unit.interner->spelling(unit.skipped[1].name), "broken2");
  // The demoted syntax errors travel with the stub that caused them.
  for (const auto& s : unit.skipped) {
    ASSERT_FALSE(s.diagnostics.empty());
    for (const auto& d : s.diagnostics)
      EXPECT_EQ(d.severity, support::Severity::kUnsupported);
  }
}

TEST(ParserTest, SalvageModeStubsDeclarationWithUnknownCharacter) {
  // ':' lexes to kUnknown in salvage mode; the containing declaration fails
  // to parse and is stubbed, everything after it survives.
  support::DiagnosticEngine diags;
  diags.set_salvage(true);
  const TranslationUnit unit = parse_source(R"(
    void labeled() { goto done; done: return; }
    void main() { int i; i = 0; }
  )", diags);
  EXPECT_FALSE(diags.has_errors()) << diags.to_string();
  EXPECT_NE(unit.find_function("main"), nullptr);
  ASSERT_EQ(unit.skipped.size(), 1u);
  EXPECT_EQ(unit.interner->spelling(unit.skipped[0].name), "labeled");
}

TEST(ParserTest, SalvageModeUnitWhereNothingParsesStillReportsStubs) {
  support::DiagnosticEngine diags;
  diags.set_salvage(true);
  const TranslationUnit unit = parse_source("void broken() { x = ; }", diags);
  EXPECT_TRUE(unit.functions.empty());
  EXPECT_EQ(unit.skipped.size(), 1u);
  EXPECT_FALSE(diags.has_errors());
}

}  // namespace
}  // namespace psa::lang
