// Frontend robustness: arbitrary byte soup and mutated programs must never
// crash or hang the lexer/parser/sema — they report diagnostics and return.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "lang/parser.hpp"
#include "lang/sema.hpp"

namespace psa::lang {
namespace {

class TokenSoupTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(TokenSoupTest, RandomTokenSoupIsRejectedGracefully) {
  std::mt19937 rng(GetParam());
  static const char* kTokens[] = {
      "struct", "node",  "{",  "}",  ";",   "*",      "(",    ")",
      "while",  "if",    "->", "=",  "int", "void",   "main", "NULL",
      "malloc", "sizeof", ",", "+",  "<",   "else",   "for",  "free",
      "x",      "y",     "1",  "&&", "!",   "return", ".",    "==",
  };
  std::string source;
  const int tokens = 5 + static_cast<int>(rng() % 120);
  for (int i = 0; i < tokens; ++i) {
    source += kTokens[rng() % (sizeof(kTokens) / sizeof(kTokens[0]))];
    source += ' ';
  }
  support::DiagnosticEngine diags;
  TranslationUnit unit = parse_source(source, diags);
  if (!diags.has_errors()) {
    // A syntactically valid accident: sema must also terminate cleanly.
    (void)analyze(unit, diags);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenSoupTest, ::testing::Range(0u, 32u));

class ByteSoupTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ByteSoupTest, RandomBytesAreRejectedGracefully) {
  std::mt19937 rng(GetParam());
  std::string source;
  const int bytes = static_cast<int>(rng() % 300);
  for (int i = 0; i < bytes; ++i) {
    source += static_cast<char>(32 + rng() % 95);  // printable ASCII
  }
  support::DiagnosticEngine diags;
  (void)parse_source(source, diags);
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ByteSoupTest, ::testing::Range(0u, 32u));

TEST(FrontendFuzzTest, TruncatedValidProgram) {
  const std::string full = R"(
    struct node { struct node *nxt; int v; };
    void main() {
      struct node *p;
      p = malloc(sizeof(struct node));
      while (p != NULL) { p = p->nxt; }
    }
  )";
  for (std::size_t len = 0; len <= full.size(); len += 7) {
    support::DiagnosticEngine diags;
    (void)parse_source(std::string_view(full).substr(0, len), diags);
  }
  SUCCEED();
}

TEST(FrontendFuzzTest, DeeplyNestedBlocks) {
  std::string source = "void main() { int i; i = 0; ";
  for (int i = 0; i < 200; ++i) source += "if (i < 1) { ";
  source += "i = 2; ";
  for (int i = 0; i < 200; ++i) source += "} ";
  source += "}";
  support::DiagnosticEngine diags;
  TranslationUnit unit = parse_source(source, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.to_string();
  (void)analyze(unit, diags);
  EXPECT_FALSE(diags.has_errors());
}

TEST(FrontendFuzzTest, ManyErrorsAreCapped) {
  // The parser caps error cascades instead of looping.
  std::string source;
  for (int i = 0; i < 500; ++i) source += "@ ";
  support::DiagnosticEngine diags;
  (void)parse_source(source, diags);
  EXPECT_TRUE(diags.has_errors());
}

}  // namespace
}  // namespace psa::lang
