// TypeTable and Type representation.
#include "lang/types.hpp"

#include <gtest/gtest.h>

#include "support/interner.hpp"

namespace psa::lang {
namespace {

TEST(TypeTest, ScalarConstruction) {
  const Type t = Type::scalar_type(ScalarKind::kDouble);
  EXPECT_EQ(t.kind, Type::Kind::kScalar);
  EXPECT_FALSE(t.is_pointer());
  EXPECT_FALSE(t.is_struct_pointer());
}

TEST(TypeTest, StructPointerConstruction) {
  const Type t = Type::pointer_to_struct(static_cast<StructId>(3));
  EXPECT_TRUE(t.is_pointer());
  EXPECT_TRUE(t.is_struct_pointer());
  EXPECT_EQ(*t.struct_id, static_cast<StructId>(3));
}

TEST(TypeTest, ScalarPointerIsNotStructPointer) {
  const Type t = Type::pointer_to_scalar(ScalarKind::kChar);
  EXPECT_TRUE(t.is_pointer());
  EXPECT_FALSE(t.is_struct_pointer());
}

TEST(TypeTest, Equality) {
  EXPECT_EQ(Type::scalar_type(ScalarKind::kInt),
            Type::scalar_type(ScalarKind::kInt));
  EXPECT_NE(Type::scalar_type(ScalarKind::kInt),
            Type::scalar_type(ScalarKind::kFloat));
  EXPECT_EQ(Type::pointer_to_struct(static_cast<StructId>(1)),
            Type::pointer_to_struct(static_cast<StructId>(1)));
  EXPECT_NE(Type::pointer_to_struct(static_cast<StructId>(1)),
            Type::pointer_to_struct(static_cast<StructId>(2)));
}

TEST(TypeTableTest, DeclareIsIdempotent) {
  support::Interner interner;
  TypeTable table;
  const auto a = table.declare_struct(interner.intern("a"));
  const auto a2 = table.declare_struct(interner.intern("a"));
  EXPECT_EQ(a, a2);
  EXPECT_EQ(table.struct_count(), 1u);
}

TEST(TypeTableTest, FindStruct) {
  support::Interner interner;
  TypeTable table;
  const auto a = table.declare_struct(interner.intern("a"));
  EXPECT_EQ(table.find_struct(interner.intern("a")), a);
  EXPECT_FALSE(table.find_struct(interner.intern("missing")).has_value());
}

TEST(TypeTableTest, FieldsAndSelectors) {
  support::Interner interner;
  TypeTable table;
  const auto id = table.declare_struct(interner.intern("node"));
  auto& decl = table.struct_decl(id);
  decl.fields.push_back(Field{interner.intern("nxt"),
                              Type::pointer_to_struct(id)});
  decl.fields.push_back(
      Field{interner.intern("v"), Type::scalar_type(ScalarKind::kInt)});

  EXPECT_NE(decl.find_field(interner.intern("nxt")), nullptr);
  EXPECT_EQ(decl.find_field(interner.intern("zzz")), nullptr);
  EXPECT_EQ(decl.selectors().size(), 1u);
  EXPECT_EQ(table.all_selectors().size(), 1u);
}

TEST(TypeTableTest, AllSelectorsDeduplicatesAcrossStructs) {
  support::Interner interner;
  TypeTable table;
  const auto a = table.declare_struct(interner.intern("a"));
  const auto b = table.declare_struct(interner.intern("b"));
  const auto nxt = interner.intern("nxt");
  table.struct_decl(a).fields.push_back(Field{nxt, Type::pointer_to_struct(a)});
  table.struct_decl(b).fields.push_back(Field{nxt, Type::pointer_to_struct(b)});
  EXPECT_EQ(table.all_selectors().size(), 1u);
}

}  // namespace
}  // namespace psa::lang
