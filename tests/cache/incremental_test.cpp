// The function-granular incremental tier (docs/CACHING.md): key sensitivity
// of the per-function entries, and the supervisor-level contract that a
// one-line edit in an N-function unit re-runs exactly one fixpoint —
// func_cache_hits == N-1, func_cache_misses == 1, byte-identical report.
// Also: summary-visible changes cascade to callers, whitespace/line-shift
// edits behave exactly as documented, and corrupt per-function entries
// quarantine and self-heal transparently.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "cache/cache.hpp"
#include "cache/key.hpp"
#include "driver/incremental.hpp"
#include "driver/supervisor.hpp"
#include "ipa/summarize.hpp"
#include "ipa/summary_io.hpp"
#include "support/metrics.hpp"

namespace psa::cache {
namespace {

namespace fs = std::filesystem;

// A call chain main -> f1 -> f2 -> f3 (leaf): N = 4 functions. f3's body
// line is the edit target — every edit below replaces that single line
// without changing the unit's line count, so sibling locations never shift.
constexpr std::string_view kLeafLine = "  a->next = NULL;\n";

std::string chain_source(std::string_view leaf_line = kLeafLine) {
  std::string src =
      "struct node { struct node *next; int v; };\n"
      "void f3(struct node *a) {\n"
      "%s"
      "}\n"
      "void f2(struct node *a) {\n"
      "  f3(a);\n"
      "  a->next = NULL;\n"
      "}\n"
      "void f1(struct node *a) {\n"
      "  f2(a);\n"
      "}\n"
      "void main() {\n"
      "  struct node *p;\n"
      "  p = malloc(sizeof(struct node));\n"
      "  f1(p);\n"
      "  p->next = NULL;\n"
      "}\n";
  src.replace(src.find("%s"), 2, leaf_line);
  return src;
}

constexpr std::size_t kChainFunctions = 4;  // main, f1, f2, f3

driver::AnalysisUnit inline_unit(std::string name, std::string source) {
  driver::AnalysisUnit u;
  u.name = std::move(name);
  u.source = std::move(source);
  return u;
}

class IncrementalCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("psa-inc-" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  driver::BatchOptions cached_options(std::string dir) const {
    driver::BatchOptions options;
    options.isolate = false;  // counters must land in THIS process's registry
    options.check = true;
    options.cache_dir = std::move(dir);
    return options;
  }

  /// The report a cold, cache-less run of `source` renders — the oracle
  /// every cached path must match byte for byte.
  std::string uncached_report(const std::string& source) {
    const driver::BatchResult result = driver::run_batch(
        {inline_unit("chain.c", source)}, [] {
          driver::BatchOptions options;
          options.isolate = false;
          options.check = true;
          return options;
        }());
    return driver::format_batch_report(result);
  }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// Key-level sensitivity: the per-function keys move exactly when the
// documented inputs move.

class FunctionKeyTest : public ::testing::Test {
 protected:
  static analysis::ProgramAnalysis prepared(std::string_view source) {
    analysis::FrontendOptions frontend;
    frontend.salvage = true;
    return analysis::prepare(source, "main", frontend);
  }
};

TEST_F(FunctionKeyTest, CalleeSummaryHashIsInTheKey) {
  const analysis::ProgramAnalysis program = prepared(chain_source());
  const analysis::FunctionCfg* f2 = program.find_cfg(program.symbol("f2"));
  ASSERT_NE(f2, nullptr);

  CalleeDep dep;
  dep.name = "f3";
  dep.has_summary = true;
  dep.summary_hash = 0x1111;
  CalleeDep moved = dep;
  moved.summary_hash = 0x2222;
  CalleeDep absent = dep;
  absent.has_summary = false;
  absent.summary_hash = 0;

  const analysis::Options engine;
  const CacheKey base =
      function_summary_key(program, *f2, engine, /*salvage=*/true, {dep});
  // The callee's summary CONTENT is the dependency: a different hash is a
  // different key, and "no summary yet" (extern, unanalyzed) is distinct
  // from any real summary — an extern gaining a body must invalidate.
  EXPECT_NE(base, function_summary_key(program, *f2, engine, true, {moved}));
  EXPECT_NE(base, function_summary_key(program, *f2, engine, true, {absent}));
  EXPECT_NE(base, function_summary_key(program, *f2, engine, true, {}));
  EXPECT_EQ(base, function_summary_key(program, *f2, engine, true, {dep}));
}

TEST_F(FunctionKeyTest, SummaryKeysAreCheckerBlindButResultKeysAreNot) {
  // Summaries never depend on whether checkers run, so a --check flip must
  // re-serve the same summary entries; the result entry carries findings,
  // so its key must move.
  const analysis::ProgramAnalysis program = prepared(chain_source());
  const analysis::FunctionCfg* f3 = program.find_cfg(program.symbol("f3"));
  ASSERT_NE(f3, nullptr);
  const analysis::Options engine;

  EXPECT_EQ(function_summary_key(program, *f3, engine, true, {}),
            function_summary_key(program, *f3, engine, true, {}));
  EXPECT_NE(function_result_key(program, engine, /*check=*/true,
                                /*salvage=*/true, {}),
            function_result_key(program, engine, /*check=*/false,
                                /*salvage=*/true, {}));
  // The two entry kinds can never collide, even for identical inputs: the
  // key preimages carry distinct tags.
  EXPECT_NE(function_summary_key(program, *program.find_cfg(
                                     program.symbol("main")),
                                 engine, true, {}),
            function_result_key(program, engine, /*check=*/false, true, {}));
}

TEST_F(FunctionKeyTest, OwnBodyIsInTheKeyButSiblingsAreNot) {
  // The whole point of the tier: f2's key covers f2's own CFG and its
  // callee summary identities — NOT sibling bodies. An edit to f3 that
  // leaves its summary identical must leave f2's key untouched.
  const analysis::ProgramAnalysis before = prepared(chain_source());
  const analysis::ProgramAnalysis after =
      prepared(chain_source("  a->next = a;\n"));
  const analysis::Options engine;
  CalleeDep dep;
  dep.name = "f3";
  dep.has_summary = true;
  dep.summary_hash = 0xfeed;

  const analysis::FunctionCfg* f2_before = before.find_cfg(before.symbol("f2"));
  const analysis::FunctionCfg* f2_after = after.find_cfg(after.symbol("f2"));
  const analysis::FunctionCfg* f3_before = before.find_cfg(before.symbol("f3"));
  const analysis::FunctionCfg* f3_after = after.find_cfg(after.symbol("f3"));
  ASSERT_NE(f2_before, nullptr);
  ASSERT_NE(f2_after, nullptr);
  ASSERT_NE(f3_before, nullptr);
  ASSERT_NE(f3_after, nullptr);

  EXPECT_EQ(function_summary_key(before, *f2_before, engine, true, {dep}),
            function_summary_key(after, *f2_after, engine, true, {dep}));
  EXPECT_NE(function_summary_key(before, *f3_before, engine, true, {}),
            function_summary_key(after, *f3_after, engine, true, {}));
}

TEST_F(FunctionKeyTest, SummaryHashIsContentAddressed) {
  // Identical summaries hash identically across separately-prepared units
  // (the hash covers spellings, not Symbol ids); a summary-visible change
  // moves it.
  const analysis::ProgramAnalysis a = prepared(chain_source());
  const analysis::ProgramAnalysis b =
      prepared(chain_source("  a->next = a;\n"));
  const analysis::Options engine;
  const ipa::SummaryTable ta = ipa::compute_summaries(a, engine);
  const ipa::SummaryTable tb = ipa::compute_summaries(b, engine);
  const auto hash_of = [](const analysis::ProgramAnalysis& p,
                          const ipa::SummaryTable& t, std::string_view fn) {
    const auto it = t.find(p.symbol(fn));
    EXPECT_NE(it, t.end()) << fn;
    return ipa::summary_hash(it->second, p.interner());
  };
  // f3's edit (a->next = NULL  ->  a->next = a) leaves the summary facts
  // (mutates_heap, no alloc/free, void return) identical.
  EXPECT_EQ(hash_of(a, ta, "f3"), hash_of(b, tb, "f3"));
  EXPECT_EQ(hash_of(a, ta, "f2"), hash_of(b, tb, "f2"));

  const analysis::ProgramAnalysis c = prepared(chain_source("  free(a);\n"));
  const ipa::SummaryTable tc = ipa::compute_summaries(c, engine);
  EXPECT_NE(hash_of(a, ta, "f3"), hash_of(c, tc, "f3"));
}

// ---------------------------------------------------------------------------
// Supervisor contract: the headline hits == N-1 / misses == 1 guarantee.

TEST_F(IncrementalCacheTest, OneLineEditRerunsExactlyOneFixpoint) {
  const std::string original = chain_source();
  // Replace the leaf's single body line in place: same line count, same
  // summary facts (still a heap mutation, no alloc/free), different CFG.
  const std::string edited = chain_source("  a->next = a;\n");

  // Cold: the unit misses, and the function tier populates — one summary
  // entry per demanded function (f1, f2, f3) plus the result entry.
  support::MetricsRegion cold_region;
  const driver::BatchResult cold = driver::run_batch(
      {inline_unit("chain.c", original)}, cached_options(dir_));
  const support::MetricsSnapshot cold_delta = cold_region.delta();
  EXPECT_EQ(cold_delta[support::Counter::kCacheMisses], 1u);
  EXPECT_EQ(cold_delta[support::Counter::kCacheStores], 1u);
  EXPECT_EQ(cold_delta[support::Counter::kFuncCacheHits], 0u);
  EXPECT_EQ(cold_delta[support::Counter::kFuncCacheMisses], kChainFunctions);
  EXPECT_EQ(cold_delta[support::Counter::kFuncCacheStores], kChainFunctions);
  EXPECT_EQ(cold_delta[support::Counter::kSummaryReuse], 0u);

  // Warm, unedited: the unit tier answers; the function tier is never
  // consulted (its counters stay exactly zero).
  support::MetricsRegion warm_region;
  (void)driver::run_batch({inline_unit("chain.c", original)},
                          cached_options(dir_));
  const support::MetricsSnapshot warm_delta = warm_region.delta();
  EXPECT_EQ(warm_delta[support::Counter::kCacheHits], 1u);
  EXPECT_EQ(warm_delta[support::Counter::kFuncCacheHits], 0u);
  EXPECT_EQ(warm_delta[support::Counter::kFuncCacheMisses], 0u);

  // The edit: exactly ONE fixpoint re-runs (f3's summary). f2 and f1 are
  // served from the function tier because their own CFGs did not change and
  // f3's recomputed summary hashed identically; main's result entry hits
  // for the same reason. hits == N-1, misses == 1.
  support::MetricsRegion edit_region;
  const driver::BatchResult rerun = driver::run_batch(
      {inline_unit("chain.c", edited)}, cached_options(dir_));
  const support::MetricsSnapshot edit_delta = edit_region.delta();
  EXPECT_EQ(edit_delta[support::Counter::kCacheHits], 0u);
  EXPECT_EQ(edit_delta[support::Counter::kCacheMisses], 1u);
  EXPECT_EQ(edit_delta[support::Counter::kFuncCacheHits], kChainFunctions - 1);
  EXPECT_EQ(edit_delta[support::Counter::kFuncCacheMisses], 1u);
  EXPECT_EQ(edit_delta[support::Counter::kSummaryReuse],
            kChainFunctions - 2);  // f1, f2 — the result hit is not a summary
  // The served result is indistinguishable from a cold, cache-less run of
  // the edited source.
  EXPECT_EQ(driver::format_batch_report(rerun), uncached_report(edited));

  // The function-tier hit promoted the result back under the edited unit's
  // key: the next unedited run takes the unit fast path again.
  support::MetricsRegion promoted_region;
  (void)driver::run_batch({inline_unit("chain.c", edited)},
                          cached_options(dir_));
  const support::MetricsSnapshot promoted = promoted_region.delta();
  EXPECT_EQ(promoted[support::Counter::kCacheHits], 1u);
  EXPECT_EQ(promoted[support::Counter::kFuncCacheMisses], 0u);
}

TEST_F(IncrementalCacheTest, SummaryVisibleChangeCascadesToDirectCallers) {
  // free(a) flips the leaf's may_free fact: the summary bytes change, so
  // the hash cascade reaches f2 (its key embeds f3's hash) — and keeps
  // cascading exactly as far as the recomputed summaries keep changing.
  const std::string original = chain_source();
  const std::string edited = chain_source("  free(a);\n");
  (void)driver::run_batch({inline_unit("chain.c", original)},
                          cached_options(dir_));

  support::MetricsRegion region;
  const driver::BatchResult rerun = driver::run_batch(
      {inline_unit("chain.c", edited)}, cached_options(dir_));
  const support::MetricsSnapshot delta = region.delta();
  // At minimum the leaf AND its direct caller recompute; hits can no longer
  // reach N-1.
  EXPECT_GE(delta[support::Counter::kFuncCacheMisses], 2u);
  EXPECT_LE(delta[support::Counter::kFuncCacheHits], kChainFunctions - 2);
  EXPECT_EQ(delta[support::Counter::kCacheHits], 0u);
  // Correctness before economy: the report matches a cache-less run — the
  // cascade never serves a result computed against the old summary.
  EXPECT_EQ(driver::format_batch_report(rerun), uncached_report(edited));
}

TEST_F(IncrementalCacheTest, WhitespaceOnlyEditStaysOnTheUnitFastPath) {
  // Extra spaces inside a line change neither the token stream nor any
  // source location: the lowered CFGs are identical, the unit key holds,
  // and the function tier is never consulted.
  const std::string original = chain_source();
  const std::string padded = chain_source("  a->next   =   NULL;\n");
  (void)driver::run_batch({inline_unit("chain.c", original)},
                          cached_options(dir_));

  support::MetricsRegion region;
  (void)driver::run_batch({inline_unit("chain.c", padded)},
                          cached_options(dir_));
  const support::MetricsSnapshot delta = region.delta();
  EXPECT_EQ(delta[support::Counter::kCacheHits], 1u);
  EXPECT_EQ(delta[support::Counter::kFuncCacheHits], 0u);
  EXPECT_EQ(delta[support::Counter::kFuncCacheMisses], 0u);
}

TEST_F(IncrementalCacheTest, LineShiftInvalidatesEveryFunction) {
  // A leading newline shifts every function's locations. Findings quote
  // line numbers, so every per-function key legitimately moves: the edit
  // re-runs everything, exactly as docs/CACHING.md warns.
  const std::string original = chain_source();
  const std::string shifted = "\n" + original;
  (void)driver::run_batch({inline_unit("chain.c", original)},
                          cached_options(dir_));

  support::MetricsRegion region;
  const driver::BatchResult rerun = driver::run_batch(
      {inline_unit("chain.c", shifted)}, cached_options(dir_));
  const support::MetricsSnapshot delta = region.delta();
  EXPECT_EQ(delta[support::Counter::kCacheHits], 0u);
  EXPECT_EQ(delta[support::Counter::kFuncCacheHits], 0u);
  EXPECT_EQ(delta[support::Counter::kFuncCacheMisses], kChainFunctions);
  EXPECT_EQ(delta[support::Counter::kSummaryReuse], 0u);
  EXPECT_EQ(driver::format_batch_report(rerun), uncached_report(shifted));
}

TEST_F(IncrementalCacheTest, CorruptFunctionEntriesSelfHealByteIdentically) {
  // Rot every per-function entry on disk (and remove the unit entry so the
  // function tier is actually consulted): every probe must evict, count a
  // self-heal, recompute, and re-render the identical report.
  const std::string source = chain_source();
  driver::AnalysisUnit unit = inline_unit("chain.c", source);
  ResultCache cache(dir_);
  const std::string cold = driver::run_unit_serialized(
      unit, {}, /*check=*/true, /*salvage=*/true, &cache);

  analysis::FrontendOptions frontend;
  frontend.salvage = true;
  const analysis::ProgramAnalysis program =
      analysis::prepare(source, "main", frontend);
  const std::string unit_entry =
      cache.entry_path(cache_key(program, {}, /*check=*/true,
                                 /*salvage=*/true));
  ASSERT_TRUE(fs::exists(unit_entry));
  fs::remove(unit_entry);
  std::size_t corrupted = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() != ".entry") continue;
    std::fstream f(entry.path(), std::ios::in | std::ios::out |
                                     std::ios::binary);
    f.seekp(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(f.tellp());
    f.seekp(size / 2);
    f.put('\x7f');
    ++corrupted;
  }
  ASSERT_EQ(corrupted, kChainFunctions);  // 3 summaries + 1 result entry

  support::MetricsRegion region;
  const std::string healed = driver::run_unit_serialized(
      unit, {}, /*check=*/true, /*salvage=*/true, &cache);
  const support::MetricsSnapshot delta = region.delta();
  EXPECT_EQ(delta[support::Counter::kCacheSelfHeals], kChainFunctions);
  EXPECT_EQ(delta[support::Counter::kCacheEvictions], kChainFunctions);
  EXPECT_EQ(delta[support::Counter::kFuncCacheHits], 0u);
  EXPECT_EQ(delta[support::Counter::kFuncCacheMisses], kChainFunctions);
  EXPECT_EQ(delta[support::Counter::kFuncCacheStores], kChainFunctions);
  // Hostile bytes never reach the caller: the evidence lands in quarantine
  // and the recomputed payload matches the cold one.
  EXPECT_FALSE(fs::is_empty(fs::path(dir_) / "quarantine"));
  const driver::UnitPayload before = driver::deserialize_unit_payload(cold);
  const driver::UnitPayload after = driver::deserialize_unit_payload(healed);
  EXPECT_EQ(after.findings.size(), before.findings.size());
  EXPECT_EQ(after.exit_graphs(), before.exit_graphs());

  // Fully healed: the next run takes the unit fast path.
  support::MetricsRegion warm_region;
  (void)driver::run_unit_serialized(unit, {}, /*check=*/true,
                                    /*salvage=*/true, &cache);
  EXPECT_EQ(warm_region.delta()[support::Counter::kCacheHits], 1u);
  EXPECT_EQ(warm_region.delta()[support::Counter::kCacheSelfHeals], 0u);
}

TEST_F(IncrementalCacheTest, NoSummariesSiblingEditServesFromTheResultEntry) {
  // --no-summaries call sites take the havoc fallback, so the target's
  // result depends on its own CFG alone: the function tier keys with an
  // empty dependency list (no summary entries at all), and a sibling edit
  // — which moves the unit key — still serves the result entry.
  driver::BatchOptions options = cached_options(dir_);
  options.engine.enable_summaries = false;

  support::MetricsRegion cold_region;
  (void)driver::run_batch({inline_unit("chain.c", chain_source())}, options);
  const support::MetricsSnapshot cold_delta = cold_region.delta();
  EXPECT_EQ(cold_delta[support::Counter::kFuncCacheMisses], 1u);  // result only
  EXPECT_EQ(cold_delta[support::Counter::kFuncCacheStores], 1u);
  EXPECT_EQ(cold_delta[support::Counter::kSummaryReuse], 0u);

  support::MetricsRegion region;
  const driver::BatchResult rerun = driver::run_batch(
      {inline_unit("chain.c", chain_source("  a->next = a;\n"))}, options);
  const support::MetricsSnapshot delta = region.delta();
  EXPECT_EQ(delta[support::Counter::kCacheHits], 0u);    // unit key moved
  EXPECT_EQ(delta[support::Counter::kCacheMisses], 1u);
  EXPECT_EQ(delta[support::Counter::kFuncCacheHits], 1u);  // result entry held
  EXPECT_EQ(delta[support::Counter::kFuncCacheMisses], 0u);

  driver::BatchOptions uncached;
  uncached.isolate = false;
  uncached.check = true;
  uncached.engine.enable_summaries = false;
  const driver::BatchResult fresh = driver::run_batch(
      {inline_unit("chain.c", chain_source("  a->next = a;\n"))}, uncached);
  EXPECT_EQ(driver::format_batch_report(rerun),
            driver::format_batch_report(fresh));
}

}  // namespace
}  // namespace psa::cache
