// The content-addressed result cache: key determinism and sensitivity,
// store/lookup round-trips, corruption rejection (single-bit flip, torn
// write), startup recovery, and the supervisor-level warm-cache contract —
// a warm re-run skips recomputation (proven by hit/miss counters) and
// renders a byte-identical batch report.
#include "cache/cache.hpp"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analyzer.hpp"
#include "cache/key.hpp"
#include "driver/supervisor.hpp"
#include "support/metrics.hpp"

namespace psa::cache {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kSourceA =
    "struct node { struct node *next; int v; };\n"
    "void main() {\n"
    "  struct node *p;\n"
    "  struct node *q;\n"
    "  p = malloc(sizeof(struct node));\n"
    "  q = p;\n"
    "  p->next = NULL;\n"
    "}\n";

constexpr std::string_view kSourceB =
    "struct node { struct node *next; int v; };\n"
    "void main() {\n"
    "  struct node *p;\n"
    "  p = malloc(sizeof(struct node));\n"
    "  p->next = NULL;\n"
    "  free(p);\n"
    "}\n";

CacheKey key_of(std::string_view source, const analysis::Options& options = {},
                bool check = true, bool salvage = true) {
  analysis::FrontendOptions frontend;
  frontend.salvage = salvage;
  const analysis::ProgramAnalysis program =
      analysis::prepare(source, "main", frontend);
  return cache_key(program, options, check, salvage);
}

class ResultCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("psa-cache-" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Real entry bytes: the serialized UnitPayload of one analyzed unit —
  /// the exact bytes the supervisor would store.
  static std::string real_payload_bytes(std::string_view source = kSourceA) {
    driver::AnalysisUnit unit;
    unit.name = "unit-a";
    unit.source = std::string(source);
    return driver::run_unit_serialized(unit, analysis::Options{},
                                       /*check=*/true);
  }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// CacheKey

TEST(CacheKeyTest, HexIs32LowercaseChars) {
  CacheKey key;
  key.hi = 0x0123456789abcdefULL;
  key.lo = 0xfedcba9876543210ULL;
  EXPECT_EQ(key.hex(), "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(CacheKey{}.hex(), std::string(32, '0'));
}

TEST(CacheKeyTest, SameContentSameKey) {
  EXPECT_EQ(key_of(kSourceA), key_of(kSourceA));
}

TEST(CacheKeyTest, DifferentContentDifferentKey) {
  EXPECT_NE(key_of(kSourceA), key_of(kSourceB));
}

TEST(CacheKeyTest, LineShiftChangesKey) {
  // Findings quote source locations, so a pure line shift IS an output
  // change: the key must move even though the token stream is identical.
  const std::string shifted = "\n" + std::string(kSourceA);
  EXPECT_NE(key_of(kSourceA), key_of(shifted));
}

TEST(CacheKeyTest, EngineOptionsAreInTheKey) {
  analysis::Options l3;
  l3.level = rsg::AnalysisLevel::kL3;
  analysis::Options widened;
  widened.widen_threshold += 7;
  analysis::Options deadline;
  deadline.deadline_ms = 1234;
  const CacheKey base = key_of(kSourceA);
  EXPECT_NE(base, key_of(kSourceA, l3));
  EXPECT_NE(base, key_of(kSourceA, widened));
  EXPECT_NE(base, key_of(kSourceA, deadline));
}

TEST(CacheKeyTest, SummaryOptionsAreInTheKey) {
  // Summaries change which transfer runs at every call site; flipping any
  // interprocedural knob must not resurface an entry computed without it.
  analysis::Options off;
  off.enable_summaries = false;
  analysis::Options iters;
  iters.max_summary_iters += 3;
  analysis::Options budget;
  budget.summary_visit_budget += 1000;
  const CacheKey base = key_of(kSourceA);
  EXPECT_NE(base, key_of(kSourceA, off));
  EXPECT_NE(base, key_of(kSourceA, iters));
  EXPECT_NE(base, key_of(kSourceA, budget));
}

TEST(CacheKeyTest, SiblingFunctionBodyIsInTheKey) {
  // The target function's own CFG is identical in both units; only the
  // helper it calls changed. The summary feeds the cached result, so the
  // key must move.
  constexpr std::string_view kCallerTemplate =
      "struct node { struct node *next; };\n"
      "void tweak(struct node *a) {\n"
      "%s"
      "}\n"
      "void main() {\n"
      "  struct node *p;\n"
      "  p = malloc(sizeof(struct node));\n"
      "  tweak(p);\n"
      "}\n";
  const auto with_body = [&](std::string_view body) {
    std::string src(kCallerTemplate);
    src.replace(src.find("%s"), 2, body);
    return src;
  };
  EXPECT_NE(key_of(with_body("  a->next = NULL;\n")),
            key_of(with_body("  free(a);\n")));
}

TEST(CacheKeyTest, CheckerSwitchIsInTheKey) {
  EXPECT_NE(key_of(kSourceA, {}, /*check=*/true),
            key_of(kSourceA, {}, /*check=*/false));
}

TEST(CacheKeyTest, ThreadCountIsExcluded) {
  // The engine contract guarantees thread-count-independent results, so the
  // same entry must serve any --jobs value.
  analysis::Options one;
  one.threads = 1;
  analysis::Options eight;
  eight.threads = 8;
  EXPECT_EQ(key_of(kSourceA, one), key_of(kSourceA, eight));
}

// ---------------------------------------------------------------------------
// ResultCache

TEST_F(ResultCacheTest, ConstructorCreatesDirectory) {
  ResultCache cache(dir_);
  EXPECT_TRUE(fs::is_directory(dir_));
}

TEST_F(ResultCacheTest, ConstructorThrowsOnUnwritableDir) {
  // A *file* where the directory should be: create_directories fails.
  fs::create_directories(fs::path(dir_).parent_path());
  { std::ofstream block(dir_); }
  EXPECT_THROW(ResultCache cache(dir_), std::runtime_error);
}

TEST_F(ResultCacheTest, MissThenStoreThenHitRoundTrip) {
  ResultCache cache(dir_);
  const CacheKey key = key_of(kSourceA);
  const std::string bytes = real_payload_bytes();

  support::MetricsRegion region;
  EXPECT_EQ(cache.lookup(key).status, ResultCache::Lookup::Status::kMiss);
  ASSERT_TRUE(cache.store(key, bytes));

  const ResultCache::Lookup hit = cache.lookup(key);
  ASSERT_EQ(hit.status, ResultCache::Lookup::Status::kHit);
  EXPECT_EQ(hit.bytes, bytes);  // byte-exact: the envelope checksum held
  // The hit deserializes back into a usable payload.
  const driver::UnitPayload payload = driver::deserialize_unit_payload(hit.bytes);
  EXPECT_TRUE(payload.frontend_ok);
  EXPECT_TRUE(payload.checked);

  const support::MetricsSnapshot delta = region.delta();
  EXPECT_EQ(delta[support::Counter::kCacheMisses], 1u);
  EXPECT_EQ(delta[support::Counter::kCacheStores], 1u);
  EXPECT_EQ(delta[support::Counter::kCacheHits], 1u);
  EXPECT_EQ(delta[support::Counter::kCacheEvictions], 0u);
}

TEST_F(ResultCacheTest, StoreLeavesNoTmpStragglers) {
  ResultCache cache(dir_);
  ASSERT_TRUE(cache.store(key_of(kSourceA), real_payload_bytes()));
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().extension(), ".entry")
        << "unexpected file " << entry.path();
  }
}

TEST_F(ResultCacheTest, SingleBitFlipIsRejectedAndQuarantined) {
  ResultCache cache(dir_);
  const CacheKey key = key_of(kSourceA);
  // StoreFault::kFlip stores normally, then flips one bit in the entry —
  // the PSA_FAULT_AT=cacheflip path in miniature.
  ASSERT_TRUE(cache.store(key, real_payload_bytes(), StoreFault::kFlip));

  support::MetricsRegion region;
  const ResultCache::Lookup lookup = cache.lookup(key);
  EXPECT_EQ(lookup.status, ResultCache::Lookup::Status::kEvicted);
  EXPECT_TRUE(lookup.bytes.empty());  // hostile bytes never reach the caller
  EXPECT_FALSE(lookup.diagnostic.empty());
  EXPECT_FALSE(fs::exists(cache.entry_path(key)));
  EXPECT_FALSE(fs::is_empty(fs::path(dir_) / "quarantine"));

  const support::MetricsSnapshot delta = region.delta();
  EXPECT_EQ(delta[support::Counter::kCacheEvictions], 1u);
  EXPECT_EQ(delta[support::Counter::kCacheMisses], 1u);  // eviction IS a miss
  EXPECT_EQ(delta[support::Counter::kCacheHits], 0u);

  // The poisoned entry is gone for good: next lookup is a clean miss, and a
  // fresh store heals the slot.
  EXPECT_EQ(cache.lookup(key).status, ResultCache::Lookup::Status::kMiss);
  ASSERT_TRUE(cache.store(key, real_payload_bytes()));
  EXPECT_EQ(cache.lookup(key).status, ResultCache::Lookup::Status::kHit);
}

TEST_F(ResultCacheTest, TornWriteIsRejected) {
  ResultCache cache(dir_);
  const CacheKey key = key_of(kSourceA);
  // StoreFault::kTear simulates a crash mid-write with no rename guard:
  // truncated bytes sitting at the final entry path.
  ASSERT_TRUE(cache.store(key, real_payload_bytes(), StoreFault::kTear));
  EXPECT_EQ(cache.lookup(key).status, ResultCache::Lookup::Status::kEvicted);
}

TEST_F(ResultCacheTest, EvictQuarantinesAnEnvelopeValidEntry) {
  // evict() is the deep-validation escape hatch: the envelope checksum held
  // but the caller's full deserialization did not.
  ResultCache cache(dir_);
  const CacheKey key = key_of(kSourceA);
  ASSERT_TRUE(cache.store(key, real_payload_bytes()));
  cache.evict(key, "deep validation failed");
  EXPECT_FALSE(fs::exists(cache.entry_path(key)));
  EXPECT_EQ(cache.lookup(key).status, ResultCache::Lookup::Status::kMiss);
}

TEST_F(ResultCacheTest, RecoverSweepsTmpAndQuarantinesCorruptEntries) {
  const CacheKey good_key = key_of(kSourceA);
  {
    ResultCache cache(dir_);
    ASSERT_TRUE(cache.store(good_key, real_payload_bytes()));
  }
  // Plant the two kinds of damage a crash can leave behind.
  {
    std::ofstream tmp(
        (fs::path(dir_) / (key_of(kSourceB).hex() + ".entry.tmp.123-0"))
            .string(),
        std::ios::binary);
    tmp << "half-written";
  }
  {
    std::ofstream bad((fs::path(dir_) / (key_of(kSourceB).hex() + ".entry"))
                          .string(),
                      std::ios::binary);
    bad << "not a PSASNAP1 envelope";
  }

  ResultCache reopened(dir_);
  const ResultCache::RecoveryReport report = reopened.recover();
  EXPECT_EQ(report.entries_kept, 1u);
  EXPECT_EQ(report.tmp_removed, 1u);
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_FALSE(report.clean());

  // The surviving entry still serves; the damage is gone.
  EXPECT_EQ(reopened.lookup(good_key).status,
            ResultCache::Lookup::Status::kHit);
  EXPECT_EQ(reopened.lookup(key_of(kSourceB)).status,
            ResultCache::Lookup::Status::kMiss);
  const ResultCache::RecoveryReport second = reopened.recover();
  EXPECT_TRUE(second.clean());
  EXPECT_EQ(second.entries_kept, 1u);
}

// ---------------------------------------------------------------------------
// sweep(): the bounded, crash-safe eviction policy (--cache-max-bytes /
// --cache-max-age). Recency is use-recency (lookup touches mtime), corrupt
// entries are quarantined rather than deleted, and a concurrent sweeper
// skips instead of racing.

class SweepTest : public ResultCacheTest {
 protected:
  static CacheKey synthetic_key(std::uint64_t n) {
    CacheKey key;
    key.hi = 0x5eedu;
    key.lo = n;
    return key;
  }

  /// Store one valid entry under a synthetic key and back-date its mtime so
  /// the sweep sees a deterministic recency order.
  std::string store_aged(ResultCache& cache, std::uint64_t n,
                         std::chrono::minutes age) {
    const CacheKey key = synthetic_key(n);
    EXPECT_TRUE(cache.store(key, payload_));
    const std::string path = cache.entry_path(key);
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now() - age, ec);
    EXPECT_FALSE(ec) << ec.message();
    return path;
  }

  const std::string payload_ = real_payload_bytes();
};

TEST_F(SweepTest, UnboundedLimitsNeverScan) {
  ResultCache cache(dir_);
  store_aged(cache, 1, std::chrono::minutes(90));
  const ResultCache::SweepReport report = cache.sweep({});
  EXPECT_FALSE(report.ran);
  EXPECT_EQ(cache.lookup(synthetic_key(1)).status,
            ResultCache::Lookup::Status::kHit);
}

TEST_F(SweepTest, ByteCapEvictsLeastRecentlyUsedFirst) {
  ResultCache cache(dir_);
  store_aged(cache, 1, std::chrono::minutes(30));  // oldest: first to go
  store_aged(cache, 2, std::chrono::minutes(20));
  store_aged(cache, 3, std::chrono::minutes(10));
  const auto size = static_cast<std::uint64_t>(payload_.size());

  support::MetricsRegion region;
  ResultCache::SweepLimits limits;
  limits.max_bytes = 2 * size;
  const ResultCache::SweepReport report = cache.sweep(limits);
  EXPECT_TRUE(report.ran);
  EXPECT_EQ(report.scanned, 3u);
  EXPECT_EQ(report.evicted, 1u);
  EXPECT_EQ(report.quarantined, 0u);
  EXPECT_EQ(report.bytes_before, 3 * size);
  EXPECT_EQ(report.bytes_after, 2 * size);
  EXPECT_EQ(report.bytes_reclaimed(), size);

  // Exactly the oldest entry is gone; the survivors still serve.
  EXPECT_EQ(cache.lookup(synthetic_key(1)).status,
            ResultCache::Lookup::Status::kMiss);
  EXPECT_EQ(cache.lookup(synthetic_key(2)).status,
            ResultCache::Lookup::Status::kHit);
  EXPECT_EQ(cache.lookup(synthetic_key(3)).status,
            ResultCache::Lookup::Status::kHit);

  const support::MetricsSnapshot delta = region.delta();
  EXPECT_EQ(delta[support::Counter::kCacheSweepRuns], 1u);
  EXPECT_EQ(delta[support::Counter::kCacheSweepEvictions], 1u);
  EXPECT_EQ(delta[support::Counter::kCacheSweepBytes], size);
  // Policy eviction is NOT corruption: the cache_evictions health signal
  // must stay untouched.
  EXPECT_EQ(delta[support::Counter::kCacheEvictions], 0u);
}

TEST_F(SweepTest, AgeExpiryEvictsOnlyStaleEntries) {
  ResultCache cache(dir_);
  store_aged(cache, 1, std::chrono::minutes(60));  // stale
  store_aged(cache, 2, std::chrono::minutes(1));   // fresh

  ResultCache::SweepLimits limits;
  limits.max_age_ms = 15 * 60 * 1000;  // 15 minutes
  const ResultCache::SweepReport report = cache.sweep(limits);
  EXPECT_TRUE(report.ran);
  EXPECT_EQ(report.evicted, 1u);
  EXPECT_EQ(cache.lookup(synthetic_key(1)).status,
            ResultCache::Lookup::Status::kMiss);
  EXPECT_EQ(cache.lookup(synthetic_key(2)).status,
            ResultCache::Lookup::Status::kHit);
}

TEST_F(SweepTest, LookupTouchProtectsAnEntryFromTheByteCap) {
  // Use-recency, not write-recency: a HIT refreshes the entry, so the byte
  // cap evicts the entry nobody asked for even though it was written later.
  ResultCache cache(dir_);
  store_aged(cache, 1, std::chrono::minutes(30));  // older write, then used
  store_aged(cache, 2, std::chrono::minutes(20));  // newer write, never used
  ASSERT_EQ(cache.lookup(synthetic_key(1)).status,
            ResultCache::Lookup::Status::kHit);  // touches entry 1

  ResultCache::SweepLimits limits;
  limits.max_bytes = static_cast<std::uint64_t>(payload_.size());
  const ResultCache::SweepReport report = cache.sweep(limits);
  EXPECT_TRUE(report.ran);
  EXPECT_EQ(report.evicted, 1u);
  EXPECT_EQ(cache.lookup(synthetic_key(1)).status,
            ResultCache::Lookup::Status::kHit);
  EXPECT_EQ(cache.lookup(synthetic_key(2)).status,
            ResultCache::Lookup::Status::kMiss);
}

TEST_F(SweepTest, CorruptEntryIsQuarantinedNotDeleted) {
  ResultCache cache(dir_);
  store_aged(cache, 1, std::chrono::minutes(1));  // fresh and valid: kept
  // Plant rot that the policy would expire: the sweep must notice the entry
  // is not a valid envelope and preserve the evidence instead of unlinking.
  const std::string rotten = cache.entry_path(synthetic_key(2));
  {
    std::ofstream out(rotten, std::ios::binary);
    out << "not a PSASNAP1 envelope";
  }
  {
    std::error_code ec;
    fs::last_write_time(
        rotten, fs::file_time_type::clock::now() - std::chrono::hours(2), ec);
    ASSERT_FALSE(ec) << ec.message();
  }

  ResultCache::SweepLimits limits;
  limits.max_age_ms = 15 * 60 * 1000;
  const ResultCache::SweepReport report = cache.sweep(limits);
  EXPECT_TRUE(report.ran);
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_EQ(report.evicted, 0u);
  EXPECT_FALSE(fs::exists(rotten));
  EXPECT_FALSE(fs::is_empty(fs::path(dir_) / "quarantine"));
  EXPECT_EQ(cache.lookup(synthetic_key(1)).status,
            ResultCache::Lookup::Status::kHit);

  // Every decision was journaled before the entry was touched.
  std::ifstream journal(fs::path(dir_) / "sweep.journal");
  const std::string text((std::istreambuf_iterator<char>(journal)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("psa-sweep-journal v1"), std::string::npos);
  EXPECT_NE(text.find("quarantine"), std::string::npos);
  EXPECT_NE(text.find("sweep end"), std::string::npos);
}

TEST_F(SweepTest, ConcurrentSweeperSkipsInsteadOfRacing) {
  ResultCache cache(dir_);
  store_aged(cache, 1, std::chrono::minutes(60));
  ResultCache::SweepLimits limits;
  limits.max_age_ms = 1000;

  // Hold the advisory lock the way a concurrent daemon's sweep would (flock
  // conflicts are per open-file-description, so this works in-process).
  const std::string lock_path = (fs::path(dir_) / "sweep.lock").string();
  const int fd = ::open(lock_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::flock(fd, LOCK_EX), 0);

  const ResultCache::SweepReport blocked = cache.sweep(limits);
  EXPECT_FALSE(blocked.ran);  // someone else is bounding the cache
  // Existence checked on disk, not via lookup(): a hit would refresh the
  // entry's mtime and un-age it for the second sweep below.
  EXPECT_TRUE(fs::exists(cache.entry_path(synthetic_key(1))));

  ASSERT_EQ(::flock(fd, LOCK_UN), 0);
  ::close(fd);
  const ResultCache::SweepReport unblocked = cache.sweep(limits);
  EXPECT_TRUE(unblocked.ran);
  EXPECT_EQ(unblocked.evicted, 1u);
}

TEST_F(SweepTest, EvictRaceFaultIsACleanMiss) {
  // PSA_FAULT_AT=unit:evictrace in miniature: the entry vanishes between
  // the decision to read and the read. Must be a plain miss — no torn
  // bytes, no spurious corruption eviction.
  ResultCache cache(dir_);
  const CacheKey key = synthetic_key(1);
  ASSERT_TRUE(cache.store(key, payload_));

  support::MetricsRegion region;
  const ResultCache::Lookup raced = cache.lookup(key, LookupFault::kEvictRace);
  EXPECT_EQ(raced.status, ResultCache::Lookup::Status::kMiss);
  EXPECT_TRUE(raced.bytes.empty());
  const support::MetricsSnapshot delta = region.delta();
  EXPECT_EQ(delta[support::Counter::kCacheMisses], 1u);
  EXPECT_EQ(delta[support::Counter::kCacheEvictions], 0u);

  // The slot heals like any miss: recompute, store, hit.
  ASSERT_TRUE(cache.store(key, payload_));
  EXPECT_EQ(cache.lookup(key).status, ResultCache::Lookup::Status::kHit);
}

TEST_F(SweepTest, WritersAndSweeperShareTheDirectorySafely) {
  // Soak: two writers (separate ResultCache instances, like two daemons
  // sharing --cache-dir) churn a small key space while a sweeper bounds it.
  // Invariant: a reader afterwards sees only whole entries — every lookup is
  // a hit that deep-deserializes or a clean miss, never an eviction.
  constexpr std::uint64_t kKeys = 10;
  constexpr int kStoresPerWriter = 60;
  std::atomic<bool> done{false};
  const auto writer = [&](std::uint64_t salt) {
    ResultCache mine(dir_);
    for (int i = 0; i < kStoresPerWriter; ++i) {
      mine.store(synthetic_key((salt + static_cast<std::uint64_t>(i)) % kKeys),
                 payload_);
    }
  };
  std::thread sweeper([&] {
    ResultCache mine(dir_);
    ResultCache::SweepLimits limits;
    limits.max_bytes = 3 * static_cast<std::uint64_t>(payload_.size());
    while (!done.load()) {
      (void)mine.sweep(limits);
      std::this_thread::yield();
    }
  });
  std::thread a(writer, 0);
  std::thread b(writer, kKeys / 2);
  a.join();
  b.join();
  done.store(true);
  sweeper.join();

  ResultCache reader(dir_);
  std::size_t hits = 0;
  for (std::uint64_t n = 0; n < kKeys; ++n) {
    const ResultCache::Lookup lookup = reader.lookup(synthetic_key(n));
    ASSERT_NE(lookup.status, ResultCache::Lookup::Status::kEvicted)
        << "torn read surfaced for key " << n << ": " << lookup.diagnostic;
    if (lookup.status == ResultCache::Lookup::Status::kHit) {
      ++hits;
      EXPECT_EQ(lookup.bytes, payload_);
      const driver::UnitPayload payload =
          driver::deserialize_unit_payload(lookup.bytes);
      EXPECT_TRUE(payload.frontend_ok);
    }
  }
  // The churn must not have destroyed everything or validated nothing.
  EXPECT_GT(hits, 0u);
  // And the directory is structurally clean: no .tmp stragglers, and every
  // surviving entry passes the startup scan.
  const ResultCache::RecoveryReport recovery = reader.recover();
  EXPECT_EQ(recovery.tmp_removed, 0u);
  EXPECT_EQ(recovery.quarantined, 0u);
}

// ---------------------------------------------------------------------------
// Supervisor integration: the warm-cache acceptance contract.

driver::AnalysisUnit inline_unit(std::string name, std::string_view source) {
  driver::AnalysisUnit u;
  u.name = std::move(name);
  u.source = std::string(source);
  return u;
}

class WarmCacheTest : public ResultCacheTest {
 protected:
  driver::BatchOptions cached_options() const {
    driver::BatchOptions options;
    options.isolate = false;  // counters must land in THIS process's registry
    options.check = true;
    options.cache_dir = dir_;
    return options;
  }
};

TEST_F(WarmCacheTest, WarmRerunHitsEveryUnitAndReportsByteIdentically) {
  const std::vector<driver::AnalysisUnit> units = {
      inline_unit("a.c", kSourceA), inline_unit("b.c", kSourceB)};

  support::MetricsRegion cold_region;
  const driver::BatchResult cold = driver::run_batch(units, cached_options());
  const support::MetricsSnapshot cold_delta = cold_region.delta();
  EXPECT_EQ(cold_delta[support::Counter::kCacheHits], 0u);
  EXPECT_EQ(cold_delta[support::Counter::kCacheMisses], 2u);
  EXPECT_EQ(cold_delta[support::Counter::kCacheStores], 2u);

  support::MetricsRegion warm_region;
  const driver::BatchResult warm = driver::run_batch(units, cached_options());
  const support::MetricsSnapshot warm_delta = warm_region.delta();
  EXPECT_EQ(warm_delta[support::Counter::kCacheHits], 2u);
  EXPECT_EQ(warm_delta[support::Counter::kCacheMisses], 0u);
  EXPECT_EQ(warm_delta[support::Counter::kCacheStores], 0u);

  // The acceptance bar: warm and cold reports are byte-identical.
  EXPECT_EQ(driver::format_batch_report(warm),
            driver::format_batch_report(cold));
  EXPECT_EQ(driver::batch_exit_code(warm), driver::batch_exit_code(cold));
}

TEST_F(WarmCacheTest, EditedUnitMissesWhileUntouchedUnitHits) {
  const std::vector<driver::AnalysisUnit> units = {
      inline_unit("a.c", kSourceA), inline_unit("b.c", kSourceB)};
  (void)driver::run_batch(units, cached_options());

  // Edit a.c (a leading newline shifts every location, and findings quote
  // line numbers — a real output change); b.c is untouched.
  std::vector<driver::AnalysisUnit> edited = units;
  edited[0].source = "\n" + edited[0].source;

  support::MetricsRegion region;
  const driver::BatchResult rerun =
      driver::run_batch(edited, cached_options());
  const support::MetricsSnapshot delta = region.delta();
  EXPECT_EQ(delta[support::Counter::kCacheHits], 1u);    // b.c
  EXPECT_EQ(delta[support::Counter::kCacheMisses], 1u);  // a.c re-analyzed
  EXPECT_EQ(rerun.units[0].outcome.kind, driver::UnitOutcomeKind::kOk);
  EXPECT_EQ(rerun.units[1].outcome.kind, driver::UnitOutcomeKind::kOk);
}

TEST_F(WarmCacheTest, RenamedUnitStillHits) {
  // Content-addressed: the unit NAME is not in the key, but the payload is
  // re-issued under the new name so the report stays truthful.
  (void)driver::run_batch({inline_unit("old-name.c", kSourceA)},
                          cached_options());

  support::MetricsRegion region;
  const driver::BatchResult rerun = driver::run_batch(
      {inline_unit("new-name.c", kSourceA)}, cached_options());
  EXPECT_EQ(region.delta()[support::Counter::kCacheHits], 1u);
  ASSERT_TRUE(rerun.units[0].payload.has_value());
  EXPECT_EQ(rerun.units[0].payload->unit_name, "new-name.c");
}

TEST_F(WarmCacheTest, CorruptEntrySelfHealsWithIdenticalReport) {
  const std::vector<driver::AnalysisUnit> units = {
      inline_unit("a.c", kSourceA)};
  const driver::BatchResult cold = driver::run_batch(units, cached_options());

  // Flip one bit in the stored entry (what PSA_FAULT_AT=cacheflip does).
  ResultCache cache(dir_);
  const std::string path = cache.entry_path(key_of(kSourceA));
  ASSERT_TRUE(fs::exists(path));
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<std::streamoff>(f.tellg());
    f.seekp(size / 2);
    char byte = 0;
    f.seekg(size / 2);
    f.get(byte);
    f.seekp(size / 2);
    f.put(static_cast<char>(byte ^ 0x10));
  }

  support::MetricsRegion region;
  const driver::BatchResult healed = driver::run_batch(units, cached_options());
  const support::MetricsSnapshot delta = region.delta();
  // The startup recover() scan quarantines the rotten entry before any unit
  // runs, so the unit sees a clean miss and recomputes.
  EXPECT_EQ(delta[support::Counter::kCacheEvictions], 1u);
  EXPECT_EQ(delta[support::Counter::kCacheHits], 0u);
  EXPECT_EQ(delta[support::Counter::kCacheMisses], 1u);
  // Self-heal is transparent: same report as the cold run, and the
  // recomputed entry serves the next lookup.
  EXPECT_EQ(driver::format_batch_report(healed),
            driver::format_batch_report(cold));
  support::MetricsRegion warm_region;
  (void)driver::run_batch(units, cached_options());
  EXPECT_EQ(warm_region.delta()[support::Counter::kCacheHits], 1u);
}

TEST_F(WarmCacheTest, MidRunCorruptionSelfHealsAtTheLookup) {
  // Corruption that appears AFTER the startup scan (rot under a live
  // daemon): the worker's own lookup evicts it and recomputes — that is
  // what cache_self_heals counts.
  driver::AnalysisUnit unit = inline_unit("a.c", kSourceA);
  ResultCache cache(dir_);
  const std::string cold =
      driver::run_unit_serialized(unit, {}, /*check=*/true,
                                  /*salvage=*/true, &cache);
  const std::string path = cache.entry_path(key_of(kSourceA));
  ASSERT_TRUE(fs::exists(path));
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8);
    f.put('\x7f');
  }

  support::MetricsRegion region;
  const std::string healed =
      driver::run_unit_serialized(unit, {}, /*check=*/true,
                                  /*salvage=*/true, &cache);
  const support::MetricsSnapshot delta = region.delta();
  EXPECT_EQ(delta[support::Counter::kCacheSelfHeals], 1u);
  EXPECT_EQ(delta[support::Counter::kCacheEvictions], 1u);
  EXPECT_EQ(delta[support::Counter::kCacheHits], 0u);
  EXPECT_EQ(delta[support::Counter::kCacheStores], 1u);  // stored back

  // The recomputed result is equivalent (identical findings and exit shape;
  // only the metrics delta differs) and the healed entry serves the next
  // lookup as a hit.
  const driver::UnitPayload before = driver::deserialize_unit_payload(cold);
  const driver::UnitPayload after = driver::deserialize_unit_payload(healed);
  EXPECT_EQ(after.findings.size(), before.findings.size());
  EXPECT_EQ(after.exit_graphs(), before.exit_graphs());
  support::MetricsRegion warm_region;
  (void)driver::run_unit_serialized(unit, {}, /*check=*/true,
                                    /*salvage=*/true, &cache);
  EXPECT_EQ(warm_region.delta()[support::Counter::kCacheHits], 1u);
  EXPECT_EQ(warm_region.delta()[support::Counter::kCacheSelfHeals], 0u);
}

TEST_F(WarmCacheTest, FaultInjectedTearNeverFailsTheUnit) {
  // PSA_FAULT_AT=a.c:cachetear — the store is sabotaged, the analysis
  // succeeds anyway, and the damaged entry self-heals on the next run.
  ::setenv("PSA_FAULT_AT", "a.c:cachetear", 1);
  const std::vector<driver::AnalysisUnit> units = {
      inline_unit("a.c", kSourceA)};
  const driver::BatchResult torn = driver::run_batch(units, cached_options());
  ::unsetenv("PSA_FAULT_AT");
  EXPECT_EQ(torn.units[0].outcome.kind, driver::UnitOutcomeKind::kOk);

  support::MetricsRegion region;
  const driver::BatchResult healed = driver::run_batch(units, cached_options());
  EXPECT_EQ(healed.units[0].outcome.kind, driver::UnitOutcomeKind::kOk);
  // The torn entry was quarantined by the startup scan and recomputed.
  const support::MetricsSnapshot delta = region.delta();
  EXPECT_EQ(delta[support::Counter::kCacheEvictions], 1u);
  EXPECT_EQ(delta[support::Counter::kCacheMisses], 1u);
  EXPECT_EQ(delta[support::Counter::kCacheHits], 0u);

  support::MetricsRegion warm_region;
  (void)driver::run_batch(units, cached_options());
  EXPECT_EQ(warm_region.delta()[support::Counter::kCacheHits], 1u);
}

TEST_F(WarmCacheTest, FrontendErrorIsNeverCached) {
  const std::vector<driver::AnalysisUnit> units = {
      inline_unit("bad.c", "void main() { syntax error")};
  driver::BatchOptions options = cached_options();
  options.strict_frontend = true;
  (void)driver::run_batch(units, options);

  support::MetricsRegion region;
  (void)driver::run_batch(units, options);
  EXPECT_EQ(region.delta()[support::Counter::kCacheHits], 0u);
  // Nothing but bookkeeping in the cache dir: no .entry files at all.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_NE(entry.path().extension(), ".entry");
  }
}

// ---------------------------------------------------------------------------
// Durable-I/O faults (PSA_IO_FAULT, docs/RESILIENCE.md "The I/O fault
// space"): every store/sweep failure must be a *sound degradation* — a clean
// miss or a skipped eviction, never a torn entry served or a record dropped
// silently.

class IoFaultCacheTest : public ResultCacheTest {
 protected:
  void SetUp() override {
    ResultCacheTest::SetUp();
    ::unsetenv("PSA_IO_FAULT");
  }
  void TearDown() override {
    ::unsetenv("PSA_IO_FAULT");
    ResultCacheTest::TearDown();
  }
};

TEST_F(IoFaultCacheTest, StoreUnderEnospcIsACleanMiss) {
  ResultCache cache(dir_);
  const CacheKey key = key_of(kSourceA);
  const std::string bytes = real_payload_bytes();

  support::MetricsRegion region;
  ::setenv("PSA_IO_FAULT", "@.entry:enospc", 1);
  EXPECT_FALSE(cache.store(key, bytes));  // failure reported, not thrown
  ::unsetenv("PSA_IO_FAULT");

  // Sound degradation: the final path never appeared, the next lookup is a
  // clean miss, and the failure was counted.
  EXPECT_FALSE(fs::exists(cache.entry_path(key)));
  EXPECT_EQ(cache.lookup(key).status, ResultCache::Lookup::Status::kMiss);
  EXPECT_GE(region.delta()[support::Counter::kIoDegradations], 1u);

  // The device recovered: the same store heals the slot.
  ASSERT_TRUE(cache.store(key, bytes));
  const ResultCache::Lookup hit = cache.lookup(key);
  ASSERT_EQ(hit.status, ResultCache::Lookup::Status::kHit);
  EXPECT_EQ(hit.bytes, bytes);
}

TEST_F(IoFaultCacheTest, StoreUnderShortWriteNeverLeavesATornEntry) {
  ResultCache cache(dir_);
  const CacheKey key = key_of(kSourceA);

  ::setenv("PSA_IO_FAULT", "@.entry:shortwrite", 1);
  EXPECT_FALSE(cache.store(key, real_payload_bytes()));
  ::unsetenv("PSA_IO_FAULT");

  // Half the bytes landed — in the tmp file only. The entry path must not
  // exist: a torn entry at the final path is the one corruption lookup's
  // checksum could only catch after the fact, and the atomic-write protocol
  // makes it impossible by construction.
  EXPECT_FALSE(fs::exists(cache.entry_path(key)));
  EXPECT_EQ(cache.lookup(key).status, ResultCache::Lookup::Status::kMiss);

  // The torn tmp is junk awaiting the startup recovery sweep.
  ResultCache reopened(dir_);
  const ResultCache::RecoveryReport report = reopened.recover();
  EXPECT_EQ(report.tmp_removed, 1u);
  EXPECT_EQ(report.quarantined, 0u);
  ASSERT_TRUE(reopened.store(key, real_payload_bytes()));
  EXPECT_EQ(reopened.lookup(key).status, ResultCache::Lookup::Status::kHit);
}

TEST_F(IoFaultCacheTest, SweepWithoutDurableJournalEvictsNothing) {
  ResultCache cache(dir_);
  const CacheKey key_a = key_of(kSourceA);
  const CacheKey key_b = key_of(kSourceB);
  ASSERT_TRUE(cache.store(key_a, real_payload_bytes(kSourceA)));
  ASSERT_TRUE(cache.store(key_b, real_payload_bytes(kSourceB)));

  // Journal-before-unlink: with the sweep journal on a failing device no
  // "evict" record can be made durable, so no entry may be unlinked — a
  // sweep that deletes results without a durable record of why would turn
  // an io fault into silent data loss.
  ::setenv("PSA_IO_FAULT", "@sweep.journal:eio", 1);
  ResultCache::SweepLimits limits;
  limits.max_bytes = 1;  // would evict everything if journaling worked
  const ResultCache::SweepReport faulted = cache.sweep(limits);
  ::unsetenv("PSA_IO_FAULT");
  EXPECT_TRUE(faulted.ran);
  EXPECT_EQ(faulted.evicted, 0u);
  EXPECT_EQ(cache.lookup(key_a).status, ResultCache::Lookup::Status::kHit);
  EXPECT_EQ(cache.lookup(key_b).status, ResultCache::Lookup::Status::kHit);

  // Device healthy again: the same sweep bounds the cache normally.
  const ResultCache::SweepReport healed = cache.sweep(limits);
  EXPECT_TRUE(healed.ran);
  EXPECT_GE(healed.evicted, 1u);
}

}  // namespace
}  // namespace psa::cache
