// Expected-outcome golden files for the dirty corpus: the full deterministic
// batch report of a salvage-mode --check run over corpus_dirty_units() is
// compared against tests/driver/golden/<file>. Regenerate after an
// intentional change with PSA_UPDATE_GOLDEN=1 (the test then rewrites the
// files and fails so the refresh is never silent).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "corpus/corpus.hpp"
#include "driver/supervisor.hpp"

#ifndef PSA_SALVAGE_GOLDEN_DIR
#error "PSA_SALVAGE_GOLDEN_DIR must be defined by the build"
#endif

namespace psa::driver {
namespace {

std::string golden_path(std::string_view file) {
  return std::string(PSA_SALVAGE_GOLDEN_DIR) + "/" + std::string(file);
}

void expect_matches_golden(const std::string& actual,
                           std::string_view file) {
  const std::string path = golden_path(file);
  if (std::getenv("PSA_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    out << actual;
    ADD_FAILURE() << "golden file regenerated: " << path
                  << " (rerun without PSA_UPDATE_GOLDEN)";
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with PSA_UPDATE_GOLDEN=1)";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "batch report diverged from " << path;
}

BatchResult run_dirty_batch(bool strict) {
  BatchOptions options;
  options.isolate = false;  // deterministic + fast; fork parity is covered
                            // by scripts/salvage_smoke.sh
  options.check = true;
  options.strict_frontend = strict;
  options.engine.level = rsg::AnalysisLevel::kL3;
  return run_batch(corpus_dirty_units(), options);
}

TEST(SalvageGolden, DirtyBatchReportMatchesGoldenFile) {
  const BatchResult result = run_dirty_batch(/*strict=*/false);
  expect_matches_golden(format_batch_report(result), "dirty_batch.txt");
}

TEST(SalvageGolden, DirtyBatchOutcomesMatchCorpusExpectations) {
  const BatchResult result = run_dirty_batch(/*strict=*/false);
  ASSERT_EQ(result.units.size(), corpus::dirty_programs().size());
  EXPECT_EQ(result.partial_count(), result.units.size());
  EXPECT_EQ(result.failed_count(), 0u);
  EXPECT_EQ(batch_exit_code(result), kExitFindings);
  for (const UnitReport& u : result.units) {
    const auto* p = corpus::find_dirty_program(u.unit.name);
    ASSERT_NE(p, nullptr) << u.unit.name;
    EXPECT_EQ(u.outcome.kind, UnitOutcomeKind::kPartial) << u.unit.name;
    ASSERT_TRUE(u.payload.has_value()) << u.unit.name;
    EXPECT_EQ(u.payload->havoc_sites, p->expected_havoc_sites) << u.unit.name;
    EXPECT_EQ(u.payload->skipped_decls, p->expected_skipped_decls)
        << u.unit.name;
    EXPECT_EQ(u.payload->functions_analyzable,
              p->expected_functions_analyzable)
        << u.unit.name;
    EXPECT_EQ(u.payload->functions_total, p->expected_functions_total)
        << u.unit.name;
    // Degraded findings are downgraded, never dropped: every dirty unit
    // still reports at least one finding.
    EXPECT_FALSE(u.payload->findings.empty()) << u.unit.name;
  }
}

TEST(SalvageGolden, StrictFrontendRejectsEveryDirtyUnit) {
  const BatchResult result = run_dirty_batch(/*strict=*/true);
  ASSERT_EQ(result.units.size(), corpus::dirty_programs().size());
  EXPECT_EQ(result.partial_count(), 0u);
  EXPECT_EQ(batch_exit_code(result), kExitAllUnitsFailed);
  for (const UnitReport& u : result.units)
    EXPECT_EQ(u.outcome.kind, UnitOutcomeKind::kFrontendError) << u.unit.name;
}

}  // namespace
}  // namespace psa::driver
