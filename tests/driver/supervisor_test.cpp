// The crash-isolated batch supervisor, exercised at the library level:
// outcome classification, retry-then-quarantine, watchdog, checkpoint
// resume, report determinism, and the fault-injection proof over real
// corpus units. The psa_cli end of the same machinery (exit codes,
// SIGKILL-resume) lives in cli_integration_test.cpp.
#include "driver/supervisor.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "driver/checkpoint.hpp"

namespace psa::driver {
namespace {

namespace fs = std::filesystem;

constexpr std::string_view kOkSource =
    "struct node { struct node *next; int v; };\n"
    "void main() {\n"
    "  struct node *p;\n"
    "  struct node *q;\n"
    "  p = malloc(sizeof(struct node));\n"
    "  q = p;\n"
    "  p->next = NULL;\n"
    "}\n";

AnalysisUnit inline_unit(std::string name,
                         std::string_view source = kOkSource) {
  AnalysisUnit u;
  u.name = std::move(name);
  u.source = std::string(source);
  return u;
}

BatchOptions quiet_options() {
  BatchOptions options;
  options.isolate = false;
  return options;
}

/// Scoped PSA_FAULT_AT (the worker-side injection knob).
class ScopedFaultEnv {
 public:
  explicit ScopedFaultEnv(const std::string& spec) {
    ::setenv("PSA_FAULT_AT", spec.c_str(), 1);
  }
  ~ScopedFaultEnv() { ::unsetenv("PSA_FAULT_AT"); }
};

TEST(SteppedDownTest, HalvesBudgetsWithFloors) {
  analysis::Options options;
  options.widen_threshold = 48;
  options.max_node_visits = 2'000'000;
  options.max_rsgs_per_set = 4096;
  options.deadline_ms = 10'000;
  const analysis::Options down = stepped_down(options);
  EXPECT_LT(down.widen_threshold, options.widen_threshold);
  EXPECT_LT(down.max_node_visits, options.max_node_visits);
  EXPECT_LT(down.max_rsgs_per_set, options.max_rsgs_per_set);
  EXPECT_LT(down.deadline_ms, options.deadline_ms);

  // Repeated stepping never reaches useless budgets.
  analysis::Options floor = options;
  for (int i = 0; i < 20; ++i) floor = stepped_down(floor);
  EXPECT_GE(floor.widen_threshold, 8u);
  EXPECT_GE(floor.max_node_visits, 50'000u);
  EXPECT_GE(floor.max_rsgs_per_set, 33u);
}

TEST(SteppedDownTest, DisabledWideningGetsEnabled) {
  // widen_threshold 0 means "never widen" — the step-down must arm it, or
  // the retry would blow up exactly like the first attempt.
  analysis::Options options;
  options.widen_threshold = 0;
  EXPECT_GT(stepped_down(options).widen_threshold, 0u);
}

TEST(InProcessBatch, AnalyzesUnitsAndReportsOk) {
  const std::vector<AnalysisUnit> units = {inline_unit("a"), inline_unit("b")};
  const BatchResult result = run_batch(units, quiet_options());
  ASSERT_EQ(result.units.size(), 2u);
  EXPECT_FALSE(result.isolated);
  for (const UnitReport& u : result.units) {
    EXPECT_EQ(u.outcome.kind, UnitOutcomeKind::kOk);
    EXPECT_EQ(u.outcome.attempts, 1);
    ASSERT_TRUE(u.payload.has_value());
    EXPECT_GT(u.payload->exit_graphs(), 0u);
  }
  EXPECT_EQ(batch_exit_code(result), kExitOk);
}

TEST(InProcessBatch, FrontendErrorIsIsolatedAndNeverRetried) {
  const std::vector<AnalysisUnit> units = {
      inline_unit("good"), inline_unit("bad", "void main() { syntax error")};
  const BatchResult result = run_batch(units, quiet_options());
  EXPECT_EQ(result.units[0].outcome.kind, UnitOutcomeKind::kOk);
  EXPECT_EQ(result.units[1].outcome.kind, UnitOutcomeKind::kFrontendError);
  EXPECT_EQ(result.units[1].outcome.attempts, 1);  // deterministic: no retry
  EXPECT_FALSE(result.units[1].outcome.quarantined);
  EXPECT_FALSE(result.units[1].outcome.detail.empty());
  EXPECT_EQ(batch_exit_code(result), kExitSomeUnitsFailed);
}

TEST(InProcessBatch, MissingFileIsAFrontendError) {
  AnalysisUnit missing;
  missing.name = "missing";
  missing.source_path = "/nonexistent/psa/file.c";
  const BatchResult result = run_batch({missing}, quiet_options());
  EXPECT_EQ(result.units[0].outcome.kind, UnitOutcomeKind::kFrontendError);
  EXPECT_EQ(batch_exit_code(result), kExitAllUnitsFailed);
}

TEST(InProcessBatch, ThrowingRunnerIsRetriedThenQuarantined) {
  int calls = 0;
  const UnitRunner runner = [&](const AnalysisUnit&,
                                const analysis::Options&) -> std::string {
    ++calls;
    throw std::runtime_error("synthetic analyzer defect");
  };
  const BatchResult result =
      run_batch({inline_unit("doomed")}, quiet_options(), runner);
  EXPECT_EQ(calls, 2);  // one retry at stepped-down budget
  EXPECT_EQ(result.units[0].outcome.kind, UnitOutcomeKind::kExit);
  EXPECT_EQ(result.units[0].outcome.attempts, 2);
  EXPECT_TRUE(result.units[0].outcome.quarantined);
  EXPECT_NE(result.units[0].outcome.detail.find("synthetic"),
            std::string::npos);
}

TEST(InProcessBatch, RetrySucceedsAtSteppedDownBudget) {
  // Fails only at the first-attempt budget; the stepped-down retry works.
  const analysis::Options defaults;
  const UnitRunner runner = [&](const AnalysisUnit& unit,
                                const analysis::Options& engine) {
    if (engine.widen_threshold == defaults.widen_threshold) {
      throw std::runtime_error("first attempt fails");
    }
    return run_unit_serialized(unit, engine, false);
  };
  const BatchResult result =
      run_batch({inline_unit("flaky")}, quiet_options(), runner);
  EXPECT_EQ(result.units[0].outcome.kind, UnitOutcomeKind::kOk);
  EXPECT_EQ(result.units[0].outcome.attempts, 2);
  EXPECT_FALSE(result.units[0].outcome.quarantined);
  ASSERT_TRUE(result.units[0].payload.has_value());
}

TEST(InProcessBatch, BadAllocClassifiesAsOom) {
  const UnitRunner runner = [](const AnalysisUnit&,
                               const analysis::Options&) -> std::string {
    throw std::bad_alloc();
  };
  const BatchResult result =
      run_batch({inline_unit("hungry")}, quiet_options(), runner);
  EXPECT_EQ(result.units[0].outcome.kind, UnitOutcomeKind::kOom);
  EXPECT_TRUE(result.units[0].outcome.quarantined);
}

TEST(InProcessBatch, FaultEnvIsIgnoredOutsideWorkers) {
  // The PSA_FAULT_AT hook is worker-only by contract: the in-process path
  // must analyze normally even with a fault armed for its unit.
  const ScopedFaultEnv env("safe:crash");
  const BatchResult result =
      run_batch({inline_unit("safe")}, quiet_options());
  EXPECT_EQ(result.units[0].outcome.kind, UnitOutcomeKind::kOk);
}

TEST(BatchExitCodeTest, DistinguishesAllOutcomes) {
  const auto make = [](std::vector<UnitOutcomeKind> kinds,
                       std::size_t findings_on_first) {
    BatchResult r;
    for (const auto kind : kinds) {
      UnitReport u;
      u.outcome.kind = kind;
      if (kind == UnitOutcomeKind::kOk) {
        u.payload.emplace();
        u.payload->frontend_ok = true;
        u.payload->result.per_node.resize(1);
        if (findings_on_first > 0 && r.units.empty()) {
          u.payload->findings.resize(findings_on_first);
        }
      }
      r.units.push_back(std::move(u));
    }
    return r;
  };
  using K = UnitOutcomeKind;
  EXPECT_EQ(batch_exit_code(make({K::kOk, K::kOk}, 0)), kExitOk);
  EXPECT_EQ(batch_exit_code(make({K::kOk, K::kOk}, 2)), kExitFindings);
  EXPECT_EQ(batch_exit_code(make({K::kOk, K::kCrash}, 0)),
            kExitSomeUnitsFailed);
  // Failures dominate findings: a partial batch is not a clean "1".
  EXPECT_EQ(batch_exit_code(make({K::kOk, K::kTimeout}, 2)),
            kExitSomeUnitsFailed);
  EXPECT_EQ(batch_exit_code(make({K::kCrash, K::kOom}, 0)),
            kExitAllUnitsFailed);
}

TEST(BatchReportTest, DeterministicAcrossRuns) {
  const std::vector<AnalysisUnit> units = {inline_unit("a"), inline_unit("b")};
  BatchOptions options = quiet_options();
  options.check = true;
  const std::string r1 = format_batch_report(run_batch(units, options));
  const std::string r2 = format_batch_report(run_batch(units, options));
  EXPECT_EQ(r1, r2);  // no timing fields, no ordering jitter
  EXPECT_NE(r1.find("a: ok"), std::string::npos);
}

TEST(DescribeTest, RendersKindAndCause) {
  UnitOutcome crash;
  crash.kind = UnitOutcomeKind::kCrash;
  crash.signal = 6;
  EXPECT_EQ(describe(crash), "crash (signal 6)");
  UnitOutcome exit_outcome;
  exit_outcome.kind = UnitOutcomeKind::kExit;
  exit_outcome.exit_code = 78;
  EXPECT_EQ(describe(exit_outcome), "exit (code 78)");
  EXPECT_EQ(describe(UnitOutcome{}), "ok");
}

TEST(CorpusUnitsTest, ExposesTheWholeCleanCorpus) {
  const std::vector<AnalysisUnit> units = corpus_units();
  EXPECT_GE(units.size(), 10u);
  for (const AnalysisUnit& u : units) {
    EXPECT_FALSE(u.name.empty());
    EXPECT_FALSE(u.source.empty());
    EXPECT_EQ(u.function, "main");
  }
}

class CheckpointedBatch : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("psa-batch-" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(CheckpointedBatch, ResumeServesFinishedUnitsFromDisk) {
  const std::vector<AnalysisUnit> units = {inline_unit("a"), inline_unit("b")};
  BatchOptions options = quiet_options();
  options.checkpoint_dir = dir_;

  const BatchResult first = run_batch(units, options);
  ASSERT_EQ(batch_exit_code(first), kExitOk);

  // Resume with a runner that must never be called: everything is served
  // from the checkpoint.
  options.resume = true;
  int calls = 0;
  const UnitRunner tripwire = [&](const AnalysisUnit& unit,
                                  const analysis::Options& engine) {
    ++calls;
    return run_unit_serialized(unit, engine, false);
  };
  const BatchResult resumed = run_batch(units, options, tripwire);
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(resumed.from_checkpoint_count(), 2u);
  for (const UnitReport& u : resumed.units) {
    EXPECT_EQ(u.outcome.kind, UnitOutcomeKind::kOk);
    EXPECT_TRUE(u.outcome.from_checkpoint);
    ASSERT_TRUE(u.payload.has_value());
  }
  // The deterministic report ignores provenance-independent fields only;
  // the from-checkpoint marker is intentionally visible, so compare the
  // payload-derived facts instead.
  ASSERT_EQ(first.units.size(), resumed.units.size());
  for (std::size_t i = 0; i < first.units.size(); ++i) {
    EXPECT_EQ(first.units[i].payload->exit_graphs(),
              resumed.units[i].payload->exit_graphs());
    EXPECT_EQ(first.units[i].payload->exit_nodes(),
              resumed.units[i].payload->exit_nodes());
  }
}

TEST_F(CheckpointedBatch, ResumeReRunsUnfinishedUnits) {
  const std::vector<AnalysisUnit> units = {inline_unit("done"),
                                           inline_unit("pending")};
  BatchOptions options = quiet_options();
  options.checkpoint_dir = dir_;
  (void)run_batch({units[0]}, options);  // only "done" completes

  options.resume = true;
  std::vector<std::string> ran;
  const UnitRunner recorder = [&](const AnalysisUnit& unit,
                                  const analysis::Options& engine) {
    ran.push_back(unit.name);
    return run_unit_serialized(unit, engine, false);
  };
  const BatchResult resumed = run_batch(units, options, recorder);
  EXPECT_EQ(ran, std::vector<std::string>{"pending"});
  EXPECT_EQ(resumed.units[0].outcome.from_checkpoint, true);
  EXPECT_EQ(resumed.units[1].outcome.from_checkpoint, false);
  EXPECT_EQ(batch_exit_code(resumed), kExitOk);
}

TEST_F(CheckpointedBatch, ResumeReplaysQuarantinedOutcomeWithoutReRunning) {
  BatchOptions options = quiet_options();
  options.checkpoint_dir = dir_;
  const UnitRunner doomed = [](const AnalysisUnit&,
                               const analysis::Options&) -> std::string {
    throw std::runtime_error("always fails");
  };
  const BatchResult first = run_batch({inline_unit("u")}, options, doomed);
  ASSERT_TRUE(first.units[0].outcome.quarantined);

  options.resume = true;
  int calls = 0;
  const UnitRunner tripwire = [&](const AnalysisUnit& unit,
                                  const analysis::Options& engine) {
    ++calls;
    return run_unit_serialized(unit, engine, false);
  };
  const BatchResult resumed = run_batch({inline_unit("u")}, options, tripwire);
  EXPECT_EQ(calls, 0);  // it already failed twice; do not hang resume on it
  EXPECT_EQ(resumed.units[0].outcome.kind, UnitOutcomeKind::kExit);
  EXPECT_TRUE(resumed.units[0].outcome.quarantined);
  EXPECT_TRUE(resumed.units[0].outcome.from_checkpoint);
}

TEST_F(CheckpointedBatch, CorruptSnapshotForcesCleanReRun) {
  const std::vector<AnalysisUnit> units = {inline_unit("u")};
  BatchOptions options = quiet_options();
  options.checkpoint_dir = dir_;
  (void)run_batch(units, options);

  // Flip bytes in the completed snapshot; resume must detect the corruption
  // and re-run the unit instead of serving garbage (or crashing).
  const std::string snap =
      Checkpoint(dir_, true).snapshot_path(unit_key(units[0]));
  {
    std::fstream f(snap,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekp(40);
    f.put('\xba');
    f.put('\xad');
  }

  options.resume = true;
  int calls = 0;
  const UnitRunner recorder = [&](const AnalysisUnit& unit,
                                  const analysis::Options& engine) {
    ++calls;
    return run_unit_serialized(unit, engine, false);
  };
  const BatchResult resumed = run_batch(units, options, recorder);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(resumed.units[0].outcome.kind, UnitOutcomeKind::kOk);
  EXPECT_FALSE(resumed.units[0].outcome.from_checkpoint);
}

// --- Streaming hooks (on_unit_done / on_tick) ------------------------------
// The daemon's streaming contract rests on these: one frame per terminal
// outcome, heartbeats from the wait loop. Proven here at the library level
// so the service tests can assume them.

struct DoneRecord {
  std::size_t index;
  std::string name;
  UnitOutcomeKind kind;
  bool from_checkpoint;
};

BatchOptions hooked_options(std::vector<DoneRecord>& done) {
  BatchOptions options = quiet_options();
  options.on_unit_done = [&done](std::size_t i, const UnitReport& report) {
    done.push_back({i, report.unit.name, report.outcome.kind,
                    report.outcome.from_checkpoint});
  };
  return options;
}

TEST(StreamingHooks, OnUnitDoneFiresOncePerUnitWithTheTerminalOutcome) {
  const std::vector<AnalysisUnit> units = {
      inline_unit("a"), inline_unit("bad", "void main() { syntax error"),
      inline_unit("c")};
  std::vector<DoneRecord> done;
  const BatchResult result = run_batch(units, hooked_options(done));

  ASSERT_EQ(done.size(), units.size());
  std::vector<int> fired(units.size(), 0);
  for (const DoneRecord& r : done) {
    ASSERT_LT(r.index, units.size());
    ++fired[r.index];
    // The report handed to the hook IS the terminal outcome.
    EXPECT_EQ(r.kind, result.units[r.index].outcome.kind);
    EXPECT_EQ(r.name, units[r.index].name);
  }
  for (std::size_t i = 0; i < units.size(); ++i) {
    EXPECT_EQ(fired[i], 1) << "unit " << i;
  }
}

TEST(StreamingHooks, RetriesDoNotFireTheHook) {
  std::vector<DoneRecord> done;
  const UnitRunner doomed = [](const AnalysisUnit&,
                               const analysis::Options&) -> std::string {
    throw std::runtime_error("always fails");
  };
  const BatchResult result =
      run_batch({inline_unit("u")}, hooked_options(done), doomed);
  EXPECT_EQ(result.units[0].outcome.attempts, 2);
  // Two attempts, ONE terminal outcome, one hook call — after quarantine.
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].kind, UnitOutcomeKind::kExit);
}

TEST(StreamingHooks, OnTickFiresFromTheInProcessLoop) {
  std::size_t ticks = 0;
  std::vector<DoneRecord> done;
  BatchOptions options = hooked_options(done);
  options.on_tick = [&ticks] { ++ticks; };
  (void)run_batch({inline_unit("a"), inline_unit("b")}, options);
  EXPECT_GE(ticks, 2u);  // at least once per pending attempt
}

TEST_F(CheckpointedBatch, OnUnitDoneFiresForCheckpointServedUnits) {
  const std::vector<AnalysisUnit> units = {inline_unit("a"), inline_unit("b")};
  BatchOptions options = quiet_options();
  options.checkpoint_dir = dir_;
  (void)run_batch(units, options);

  // A resumed batch settles every unit from disk; the stream must still
  // carry one frame per unit or a resuming client would hang.
  std::vector<DoneRecord> done;
  options = hooked_options(done);
  options.checkpoint_dir = dir_;
  options.resume = true;
  (void)run_batch(units, options);
  ASSERT_EQ(done.size(), 2u);
  for (const DoneRecord& r : done) {
    EXPECT_EQ(r.kind, UnitOutcomeKind::kOk);
    EXPECT_TRUE(r.from_checkpoint);
  }
}

TEST(StreamingHooks, ForkPathFiresOncePerUnitInSettleOrder) {
  if (!isolation_supported()) GTEST_SKIP() << "no fork() on this platform";
  std::vector<DoneRecord> done;
  std::size_t ticks = 0;
  BatchOptions options = hooked_options(done);
  options.isolate = true;
  options.jobs = 2;
  options.on_tick = [&ticks] { ++ticks; };
  const BatchResult result =
      run_batch({inline_unit("a"), inline_unit("b")}, options);
  EXPECT_TRUE(result.isolated);
  EXPECT_GE(ticks, 1u);  // the wait loop ticked (the daemon's heartbeat)
  ASSERT_EQ(done.size(), 2u);
  std::vector<int> fired(2, 0);
  for (const DoneRecord& r : done) {
    ASSERT_LT(r.index, 2u);
    ++fired[r.index];
    EXPECT_EQ(r.kind, UnitOutcomeKind::kOk);
  }
  EXPECT_EQ(fired[0], 1);
  EXPECT_EQ(fired[1], 1);
}

// --- Isolation (fork) path ---------------------------------------------------

class IsolatedBatch : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!isolation_supported()) {
      GTEST_SKIP() << "no fork() on this platform";
    }
  }
};

TEST_F(IsolatedBatch, RunsUnitsInWorkersAndCollectsPayloads) {
  BatchOptions options;
  options.isolate = true;
  options.jobs = 2;
  const BatchResult result =
      run_batch({inline_unit("a"), inline_unit("b")}, options);
  EXPECT_TRUE(result.isolated);
  for (const UnitReport& u : result.units) {
    EXPECT_EQ(u.outcome.kind, UnitOutcomeKind::kOk);
    ASSERT_TRUE(u.payload.has_value());
    EXPECT_GT(u.payload->exit_graphs(), 0u);
  }
}

TEST_F(IsolatedBatch, WorkerResultsMatchInProcessResults) {
  const std::vector<AnalysisUnit> units = {inline_unit("a")};
  BatchOptions isolated;
  isolated.isolate = true;
  BatchOptions inproc = quiet_options();
  const BatchResult a = run_batch(units, isolated);
  const BatchResult b = run_batch(units, inproc);
  ASSERT_TRUE(a.units[0].payload && b.units[0].payload);
  const auto& ra = a.units[0].payload->result;
  const auto& rb = b.units[0].payload->result;
  ASSERT_EQ(ra.per_node.size(), rb.per_node.size());
  for (std::size_t i = 0; i < ra.per_node.size(); ++i) {
    EXPECT_TRUE(ra.per_node[i].equals(rb.per_node[i])) << "stmt " << i;
  }
}

// The fault-injection proof at the heart of the tentpole: crash + hang +
// oom seeded into three real corpus units; the isolated batch completes,
// exactly those three fail with the right classifications and get
// quarantined after one retry, and every other unit's result is identical
// to the fault-free run.
TEST_F(IsolatedBatch, FaultInjectionProofOverCorpusUnits) {
  // Light corpus units only (the heavy ones would dominate the clock).
  const std::vector<std::string> wanted = {"sll",   "dll",         "queue",
                                           "list_reverse", "binary_tree",
                                           "visit_marks"};
  std::vector<AnalysisUnit> units;
  for (const AnalysisUnit& u : corpus_units()) {
    for (const std::string& name : wanted) {
      if (u.name == name) units.push_back(u);
    }
  }
  ASSERT_EQ(units.size(), wanted.size());

  BatchOptions options;
  options.isolate = true;
  options.jobs = 4;
  options.unit_timeout_ms = 8000;  // generous for the clean light units
  options.term_grace_ms = 1000;

  const BatchResult clean = run_batch(units, options);
  for (const UnitReport& u : clean.units) {
    ASSERT_EQ(u.outcome.kind, UnitOutcomeKind::kOk) << u.unit.name;
  }

  const ScopedFaultEnv env("dll:crash,queue:oom,visit_marks:hang");
  const BatchResult faulted = run_batch(units, options);

  ASSERT_EQ(faulted.units.size(), units.size());  // the batch completed
  for (std::size_t i = 0; i < units.size(); ++i) {
    const UnitReport& u = faulted.units[i];
    if (u.unit.name == "dll") {
      EXPECT_EQ(u.outcome.kind, UnitOutcomeKind::kCrash) << describe(u.outcome);
      EXPECT_EQ(u.outcome.signal, SIGABRT);
      EXPECT_EQ(u.outcome.attempts, 2);
      EXPECT_TRUE(u.outcome.quarantined);
    } else if (u.unit.name == "queue") {
      EXPECT_EQ(u.outcome.kind, UnitOutcomeKind::kOom) << describe(u.outcome);
      EXPECT_EQ(u.outcome.attempts, 2);
      EXPECT_TRUE(u.outcome.quarantined);
    } else if (u.unit.name == "visit_marks") {
      EXPECT_EQ(u.outcome.kind, UnitOutcomeKind::kTimeout)
          << describe(u.outcome);
      EXPECT_EQ(u.outcome.attempts, 2);
      EXPECT_TRUE(u.outcome.quarantined);
    } else {
      // Unfaulted units are byte-for-byte unaffected by their neighbors'
      // deaths.
      EXPECT_EQ(u.outcome.kind, UnitOutcomeKind::kOk) << u.unit.name;
      ASSERT_TRUE(u.payload && clean.units[i].payload);
      const auto& rf = u.payload->result;
      const auto& rc = clean.units[i].payload->result;
      ASSERT_EQ(rf.per_node.size(), rc.per_node.size());
      for (std::size_t s = 0; s < rf.per_node.size(); ++s) {
        EXPECT_TRUE(rf.per_node[s].equals(rc.per_node[s]))
            << u.unit.name << " stmt " << s;
      }
    }
  }
  EXPECT_EQ(faulted.failed_count(), 3u);
  EXPECT_EQ(faulted.quarantined_count(), 3u);
  EXPECT_EQ(batch_exit_code(faulted), kExitSomeUnitsFailed);
}

TEST_F(IsolatedBatch, UncaughtWorkerExceptionClassifiesAsExit) {
  const ScopedFaultEnv env("u:throw");
  BatchOptions options;
  options.isolate = true;
  const BatchResult result = run_batch({inline_unit("u")}, options);
  EXPECT_EQ(result.units[0].outcome.kind, UnitOutcomeKind::kExit);
  EXPECT_EQ(result.units[0].outcome.exit_code, kUncaughtExceptionExitCode);
  EXPECT_TRUE(result.units[0].outcome.quarantined);
}

TEST_F(IsolatedBatch, HangWithoutWatchdogWouldBlock_SoWatchdogIsProvenHere) {
  // One hanging unit, short budget: SIGTERM -> classified timeout, retried,
  // quarantined; a clean sibling is untouched.
  const ScopedFaultEnv env("stuck:hang");
  BatchOptions options;
  options.isolate = true;
  options.jobs = 2;
  options.unit_timeout_ms = 400;
  options.term_grace_ms = 400;
  options.max_attempts = 1;  // keep the clock short; retries proven above
  const BatchResult result =
      run_batch({inline_unit("stuck"), inline_unit("fine")}, options);
  EXPECT_EQ(result.units[0].outcome.kind, UnitOutcomeKind::kTimeout);
  EXPECT_TRUE(result.units[0].outcome.quarantined);
  EXPECT_EQ(result.units[1].outcome.kind, UnitOutcomeKind::kOk);
}

// --- Salvage-mode partial outcomes ----------------------------------------

// `trace(p)` passes a struct pointer to unknown code: the salvage frontend
// lowers it to one global havoc instead of rejecting the unit.
constexpr std::string_view kDirtyInlineSource =
    "struct node { struct node *next; int v; };\n"
    "void main() {\n"
    "  struct node *p;\n"
    "  p = malloc(sizeof(struct node));\n"
    "  trace(p);\n"
    "  p->next = NULL;\n"
    "}\n";

TEST(SalvageBatch, DegradedUnitCompletesAsPartialWithDetail) {
  const BatchResult result =
      run_batch({inline_unit("dirty", kDirtyInlineSource)}, quiet_options());
  ASSERT_EQ(result.units.size(), 1u);
  const UnitReport& u = result.units[0];
  EXPECT_EQ(u.outcome.kind, UnitOutcomeKind::kPartial);
  EXPECT_EQ(u.outcome.detail, "analyzed 1 of 1 functions, 1 havoc sites");
  ASSERT_TRUE(u.payload.has_value());
  EXPECT_TRUE(u.payload->degraded());
  EXPECT_EQ(u.payload->havoc_sites, 1u);
  // Partial counts as analyzed for the exit-code contract.
  EXPECT_EQ(result.partial_count(), 1u);
  EXPECT_EQ(result.failed_count(), 0u);
  EXPECT_EQ(batch_exit_code(result), kExitOk);
}

TEST(SalvageBatch, StrictFrontendOptionRestoresFailFast) {
  BatchOptions options = quiet_options();
  options.strict_frontend = true;
  const BatchResult result =
      run_batch({inline_unit("dirty", kDirtyInlineSource)}, options);
  EXPECT_EQ(result.units[0].outcome.kind, UnitOutcomeKind::kFrontendError);
  EXPECT_EQ(batch_exit_code(result), kExitAllUnitsFailed);
}

TEST(SalvageBatch, ForkedWorkerProducesTheSamePartialOutcome) {
  if (!isolation_supported()) GTEST_SKIP() << "no fork on this platform";
  BatchOptions options;
  options.isolate = true;
  const BatchResult result =
      run_batch({inline_unit("dirty", kDirtyInlineSource)}, options);
  ASSERT_EQ(result.units.size(), 1u);
  EXPECT_TRUE(result.isolated);
  EXPECT_EQ(result.units[0].outcome.kind, UnitOutcomeKind::kPartial);
  EXPECT_EQ(result.units[0].outcome.detail,
            "analyzed 1 of 1 functions, 1 havoc sites");
  EXPECT_EQ(batch_exit_code(result), kExitOk);
}

TEST(SalvageBatch, PayloadRoundTripsSalvageCountsAndDegradedFindings) {
  const AnalysisUnit unit = inline_unit("dirty", kDirtyInlineSource);
  const std::string bytes =
      run_unit_serialized(unit, analysis::Options{}, /*check=*/true);
  const UnitPayload payload = deserialize_unit_payload(bytes);
  EXPECT_TRUE(payload.frontend_ok);
  EXPECT_TRUE(payload.degraded());
  EXPECT_EQ(payload.havoc_sites, 1u);
  EXPECT_EQ(payload.functions_analyzable, 1u);
  EXPECT_EQ(payload.functions_total, 1u);
  EXPECT_GE(payload.unsupported_count, 1u);
  EXPECT_FALSE(payload.salvage_diagnostics.empty());
  // The deref of p after the havoc has only tainted witnesses: its finding
  // survives the wire round-trip with the degraded bit set.
  ASSERT_TRUE(payload.checked);
  bool any_degraded = false;
  for (const auto& f : payload.findings) any_degraded |= f.degraded;
  EXPECT_TRUE(any_degraded);
}

TEST_F(CheckpointedBatch, ResumePreservesThePartialOutcome) {
  const std::vector<AnalysisUnit> units = {
      inline_unit("dirty", kDirtyInlineSource)};
  BatchOptions options = quiet_options();
  options.checkpoint_dir = dir_;
  const BatchResult first = run_batch(units, options);
  ASSERT_EQ(first.units[0].outcome.kind, UnitOutcomeKind::kPartial);

  options.resume = true;
  int calls = 0;
  const UnitRunner tripwire = [&](const AnalysisUnit& unit,
                                  const analysis::Options& engine) {
    ++calls;
    return run_unit_serialized(unit, engine, false);
  };
  const BatchResult resumed = run_batch(units, options, tripwire);
  EXPECT_EQ(calls, 0);
  ASSERT_EQ(resumed.units.size(), 1u);
  const UnitReport& u = resumed.units[0];
  EXPECT_EQ(u.outcome.kind, UnitOutcomeKind::kPartial);
  EXPECT_TRUE(u.outcome.from_checkpoint);
  EXPECT_EQ(u.outcome.detail, first.units[0].outcome.detail);
  ASSERT_TRUE(u.payload.has_value());
  EXPECT_EQ(u.payload->havoc_sites, first.units[0].payload->havoc_sites);
  EXPECT_EQ(u.payload->salvage_diagnostics,
            first.units[0].payload->salvage_diagnostics);
}

// ---------------------------------------------------------------------------
// Durable-I/O faults at the batch level (PSA_IO_FAULT, docs/RESILIENCE.md
// "The I/O fault space"): a failing checkpoint device never kills the batch
// — the results stay intact, the degradations are counted, and the report
// says so in its trailing note.

TEST_F(CheckpointedBatch, JournalFaultsDegradeSoundlyAndAreReported) {
  const std::vector<AnalysisUnit> units = {inline_unit("a"), inline_unit("b")};
  BatchOptions options = quiet_options();
  options.checkpoint_dir = dir_;

  ::setenv("PSA_IO_FAULT", "@journal.psaj:enospc", 1);
  const BatchResult faulted = run_batch(units, options);
  ::unsetenv("PSA_IO_FAULT");

  // Every unit still analyzed: the device failure cost durability, never
  // results.
  EXPECT_EQ(batch_exit_code(faulted), kExitOk);
  for (const UnitReport& u : faulted.units) {
    EXPECT_EQ(u.outcome.kind, UnitOutcomeKind::kOk);
    EXPECT_TRUE(u.payload.has_value());
  }
  EXPECT_GT(faulted.io_degradations, 0u);
  EXPECT_NE(format_batch_report(faulted).find("io degradations:"),
            std::string::npos);

  // A healthy run of the same batch carries no note — the marker appears
  // exactly when something degraded, so golden reports stay golden.
  const BatchResult healthy = run_batch(units, options);
  EXPECT_EQ(healthy.io_degradations, 0u);
  EXPECT_EQ(format_batch_report(healthy).find("io degradations:"),
            std::string::npos);
}

}  // namespace
}  // namespace psa::driver
