// Checkpoint journal + snapshot store: replay semantics (last outcome wins,
// torn lines skipped), fresh-run clearing, and corruption tolerance of
// load_payload (missing/garbage snapshots -> clean diagnostic, never UB).
#include "driver/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace psa::driver {
namespace {

namespace fs = std::filesystem;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("psa-ckpt-" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

AnalysisUnit unit(std::string name, std::string function = "main") {
  AnalysisUnit u;
  u.name = std::move(name);
  u.function = std::move(function);
  return u;
}

TEST_F(CheckpointTest, UnitKeysAreSanitizedAndDistinct) {
  const std::string key = unit_key(unit("dir/prog.c"));
  for (const char c : key) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                      c == '.';
    EXPECT_TRUE(safe) << "unsafe char '" << c << "' in key " << key;
  }
  EXPECT_NE(unit_key(unit("a")), unit_key(unit("b")));
  EXPECT_NE(unit_key(unit("a", "f")), unit_key(unit("a", "g")));
  EXPECT_EQ(unit_key(unit("a", "f")), unit_key(unit("a", "f")));  // stable
}

TEST_F(CheckpointTest, OutcomeRoundTripsThroughResume) {
  const std::string key = unit_key(unit("prog"));
  {
    Checkpoint ckpt(dir_, /*resume=*/false);
    (void)ckpt.record_attempt(key, 1);
    UnitOutcome outcome;
    outcome.kind = UnitOutcomeKind::kCrash;
    outcome.signal = 6;
    outcome.attempts = 2;
    outcome.quarantined = true;
    outcome.detail = "two\nlines";
    (void)ckpt.record_outcome(key, outcome);
  }
  Checkpoint resumed(dir_, /*resume=*/true);
  const UnitOutcome* replayed = resumed.replayed_outcome(key);
  ASSERT_NE(replayed, nullptr);
  EXPECT_EQ(replayed->kind, UnitOutcomeKind::kCrash);
  EXPECT_EQ(replayed->signal, 6);
  EXPECT_EQ(replayed->attempts, 2);
  EXPECT_TRUE(replayed->quarantined);
  EXPECT_EQ(replayed->detail, "two\nlines");
}

TEST_F(CheckpointTest, LastOutcomePerKeyWins) {
  const std::string key = unit_key(unit("prog"));
  {
    Checkpoint ckpt(dir_, false);
    UnitOutcome first;
    first.kind = UnitOutcomeKind::kTimeout;
    (void)ckpt.record_outcome(key, first);
    UnitOutcome second;
    second.kind = UnitOutcomeKind::kOk;
    second.attempts = 2;
    (void)ckpt.record_outcome(key, second);
  }
  Checkpoint resumed(dir_, true);
  const UnitOutcome* replayed = resumed.replayed_outcome(key);
  ASSERT_NE(replayed, nullptr);
  EXPECT_EQ(replayed->kind, UnitOutcomeKind::kOk);
  EXPECT_EQ(replayed->attempts, 2);
}

TEST_F(CheckpointTest, TornFinalLineIsSkipped) {
  const std::string key = unit_key(unit("prog"));
  {
    Checkpoint ckpt(dir_, false);
    UnitOutcome outcome;
    outcome.kind = UnitOutcomeKind::kOk;
    (void)ckpt.record_outcome(key, outcome);
  }
  {
    // Simulate a SIGKILL mid-write: a half-written outcome line.
    std::ofstream journal((fs::path(dir_) / "journal.psaj").string(),
                          std::ios::app);
    journal << "outcome " << key << " cra";  // no newline, torn fields
  }
  Checkpoint resumed(dir_, true);
  const UnitOutcome* replayed = resumed.replayed_outcome(key);
  ASSERT_NE(replayed, nullptr);
  EXPECT_EQ(replayed->kind, UnitOutcomeKind::kOk);  // torn line ignored
}

TEST_F(CheckpointTest, TornFirstLineIsSkipped) {
  // A supervisor SIGKILLed while writing the very FIRST journal line (even
  // the header can be torn): resume must treat the journal as empty, not
  // crash or misparse.
  fs::create_directories(dir_);
  {
    std::ofstream journal((fs::path(dir_) / "journal.psaj").string(),
                          std::ios::binary);
    journal << "psa-jour";  // torn header, no newline
  }
  Checkpoint resumed(dir_, /*resume=*/true);
  EXPECT_EQ(resumed.replayed_outcome(unit_key(unit("prog"))), nullptr);
  // The checkpoint stays usable: new records append and replay next time.
  UnitOutcome outcome;
  outcome.kind = UnitOutcomeKind::kOk;
  (void)resumed.record_outcome(unit_key(unit("prog")), outcome);
  Checkpoint again(dir_, /*resume=*/true);
  ASSERT_NE(again.replayed_outcome(unit_key(unit("prog"))), nullptr);
}

TEST_F(CheckpointTest, ZeroByteJournalIsRecovered) {
  // Crash between open and the first header write: a zero-byte journal.
  fs::create_directories(dir_);
  { std::ofstream journal((fs::path(dir_) / "journal.psaj").string()); }
  ASSERT_EQ(fs::file_size(fs::path(dir_) / "journal.psaj"), 0u);
  Checkpoint resumed(dir_, /*resume=*/true);
  EXPECT_EQ(resumed.replayed_outcome(unit_key(unit("prog"))), nullptr);
  // The constructor re-seeds the header into the empty file.
  EXPECT_GT(fs::file_size(fs::path(dir_) / "journal.psaj"), 0u);
}

TEST_F(CheckpointTest, ResumeSweepsStrayInFlightSnapshot) {
  // A worker killed mid-write leaves <key>.snap.tmp; its rename never
  // happened, so the bytes were never a result. Resume must delete it (with
  // a diagnostic) rather than trip over it.
  const std::string key = unit_key(unit("prog"));
  std::string tmp_path;
  {
    Checkpoint ckpt(dir_, /*resume=*/false);
    UnitOutcome outcome;
    outcome.kind = UnitOutcomeKind::kOk;
    (void)ckpt.record_outcome(key, outcome);
    tmp_path = ckpt.snapshot_tmp_path(key);
    std::ofstream tmp(tmp_path, std::ios::binary);
    tmp << "half-writ";
  }
  ASSERT_TRUE(fs::exists(tmp_path));
  Checkpoint resumed(dir_, /*resume=*/true);
  EXPECT_FALSE(fs::exists(tmp_path));
  ASSERT_EQ(resumed.recovery_notes().size(), 1u);
  EXPECT_NE(resumed.recovery_notes()[0].find(".snap.tmp"), std::string::npos);
  // The journal replay itself is unaffected by the sweep.
  ASSERT_NE(resumed.replayed_outcome(key), nullptr);
  EXPECT_EQ(resumed.replayed_outcome(key)->kind, UnitOutcomeKind::kOk);
}

TEST_F(CheckpointTest, FreshRunDoesNotReportRecoveryNotes) {
  fs::create_directories(dir_);
  {
    std::ofstream tmp((fs::path(dir_) / "stale.snap.tmp").string());
    tmp << "half";
  }
  Checkpoint fresh(dir_, /*resume=*/false);  // clearing is not "recovery"
  EXPECT_TRUE(fresh.recovery_notes().empty());
  EXPECT_FALSE(fs::exists(fs::path(dir_) / "stale.snap.tmp"));
}

TEST_F(CheckpointTest, UnknownAndGarbageLinesAreSkipped) {
  {
    Checkpoint ckpt(dir_, false);
  }
  {
    std::ofstream journal((fs::path(dir_) / "journal.psaj").string(),
                          std::ios::app);
    journal << "garbage line\n";
    journal << "outcome key-with-no-fields\n";
    journal << "outcome key unknown-kind 0 0 1 0 \n";
  }
  Checkpoint resumed(dir_, true);
  EXPECT_EQ(resumed.replayed_outcome("key"), nullptr);
  EXPECT_EQ(resumed.replayed_outcome("key-with-no-fields"), nullptr);
}

TEST_F(CheckpointTest, FreshRunClearsStaleJournalAndSnapshots) {
  const std::string key = unit_key(unit("prog"));
  {
    Checkpoint ckpt(dir_, false);
    UnitOutcome outcome;
    outcome.kind = UnitOutcomeKind::kOk;
    (void)ckpt.record_outcome(key, outcome);
    std::ofstream snap(ckpt.snapshot_path(key), std::ios::binary);
    snap << "stale";
  }
  Checkpoint fresh(dir_, /*resume=*/false);
  EXPECT_EQ(fresh.replayed_outcome(key), nullptr);
  EXPECT_FALSE(fs::exists(fresh.snapshot_path(key)));
}

TEST_F(CheckpointTest, LoadPayloadReportsMissingSnapshot) {
  Checkpoint ckpt(dir_, false);
  std::string error;
  EXPECT_FALSE(ckpt.load_payload("nope", &error).has_value());
  EXPECT_NE(error.find("missing"), std::string::npos);
}

TEST_F(CheckpointTest, LoadPayloadRejectsGarbageSnapshotCleanly) {
  const std::string key = unit_key(unit("prog"));
  Checkpoint ckpt(dir_, false);
  {
    std::ofstream snap(ckpt.snapshot_path(key), std::ios::binary);
    snap << std::string(256, '\xfe');
  }
  std::string error;
  EXPECT_FALSE(ckpt.load_payload(key, &error).has_value());
  EXPECT_NE(error.find("snapshot"), std::string::npos);
}

TEST_F(CheckpointTest, LoadPayloadRoundTripsARealPayload) {
  const std::string key = unit_key(unit("prog"));
  Checkpoint ckpt(dir_, false);

  UnitPayload payload;
  payload.unit_name = "prog";
  payload.function = "main";
  payload.frontend_ok = false;
  payload.frontend_error = "1:1: error: made up";
  const support::Interner interner;
  {
    std::ofstream snap(ckpt.snapshot_path(key), std::ios::binary);
    const std::string bytes = serialize_unit_payload(payload, interner);
    snap.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string error;
  const auto loaded = ckpt.load_payload(key, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->unit_name, "prog");
  EXPECT_FALSE(loaded->frontend_ok);
  EXPECT_EQ(loaded->frontend_error, "1:1: error: made up");
}

// ---------------------------------------------------------------------------
// Durable-I/O faults (PSA_IO_FAULT, docs/RESILIENCE.md "The I/O fault
// space"): a journal on a failing device degrades — records report failure,
// the batch runs on, and the checkpoint stays resumable (an unrecorded unit
// simply re-runs).

TEST_F(CheckpointTest, UnwritableJournalDegradesAndStaysResumable) {
  const std::string key = unit_key(unit("prog"));
  ::setenv("PSA_IO_FAULT", "@journal.psaj:enospc", 1);
  {
    Checkpoint ckpt(dir_, /*resume=*/false);
    // The header append already failed: the degradation is announced up
    // front instead of throwing.
    bool noted = false;
    for (const std::string& note : ckpt.recovery_notes()) {
      noted = noted || note.find("not be resumable") != std::string::npos;
    }
    EXPECT_TRUE(noted);
    // Every record honestly reports it is not durable; nothing throws.
    EXPECT_FALSE(ckpt.record_attempt(key, 1));
    UnitOutcome outcome;
    EXPECT_FALSE(ckpt.record_outcome(key, outcome));
  }
  ::unsetenv("PSA_IO_FAULT");

  // Resume against the never-written journal: sound — no outcome replayed,
  // so the unit re-runs; and with the device healthy the journal works.
  {
    Checkpoint resumed(dir_, /*resume=*/true);
    EXPECT_EQ(resumed.replayed_outcome(key), nullptr);
    EXPECT_TRUE(resumed.record_attempt(key, 1));
    UnitOutcome outcome;
    outcome.kind = UnitOutcomeKind::kOk;
    EXPECT_TRUE(resumed.record_outcome(key, outcome));
  }
  Checkpoint replay(dir_, /*resume=*/true);
  const UnitOutcome* replayed = replay.replayed_outcome(key);
  ASSERT_NE(replayed, nullptr);
  EXPECT_EQ(replayed->kind, UnitOutcomeKind::kOk);
}

TEST_F(CheckpointTest, TransientJournalFaultLosesOneRecordNotTheJournal) {
  const std::string key_a = unit_key(unit("a"));
  const std::string key_b = unit_key(unit("b"));
  Checkpoint ckpt(dir_, /*resume=*/false);
  UnitOutcome outcome;
  outcome.kind = UnitOutcomeKind::kOk;
  ASSERT_TRUE(ckpt.record_outcome(key_a, outcome));

  // One ENOSPC hits exactly the next journal append; the write after it
  // succeeds. The lost record means that unit re-runs on resume — the
  // records around it must be untouched.
  ::setenv("PSA_IO_FAULT", "@journal.psaj:enospc", 1);
  EXPECT_FALSE(ckpt.record_outcome(key_b, outcome));
  ::unsetenv("PSA_IO_FAULT");
  ASSERT_TRUE(ckpt.record_attempt(key_b, 2));

  Checkpoint resumed(dir_, /*resume=*/true);
  ASSERT_NE(resumed.replayed_outcome(key_a), nullptr);  // neighbors intact
  EXPECT_EQ(resumed.replayed_outcome(key_b), nullptr);  // lost => re-run
}

}  // namespace
}  // namespace psa::driver
