// End-to-end psa_cli integration: the documented exit-code contract, batch
// mode with worker isolation, fault injection through the real binary, and
// the resume proof — SIGKILL a checkpointed batch mid-run, rerun with
// --resume, and the final report is byte-identical to an uninterrupted run
// while the unit-level logs show the finished units being skipped.
//
// The binary under test is baked in via PSA_CLI_PATH (tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "testing/program_gen.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#define PSA_CLI_TESTS_POSIX 1
#else
#define PSA_CLI_TESTS_POSIX 0
#endif

namespace psa {
namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exit_code = -1;
  std::string stdout_text;
};

/// Run the CLI via popen, capturing stdout (stderr goes to the 2> file so
/// log assertions can read it).
RunResult run_cli(const std::string& args, const std::string& stderr_path) {
  const std::string command = std::string(PSA_CLI_PATH) + " " + args + " 2>" +
                              (stderr_path.empty() ? "/dev/null"
                                                   : stderr_path);
  RunResult result;
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  std::size_t n = 0;
  while ((n = std::fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.stdout_text.append(buffer.data(), n);
  }
  const int status = ::pclose(pipe);
#if PSA_CLI_TESTS_POSIX
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#else
  result.exit_code = status;
#endif
  return result;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("psa-cli-" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string write_file(const std::string& name, const std::string& text) {
    const std::string path = (fs::path(dir_) / name).string();
    std::ofstream out(path);
    out << text;
    return path;
  }

  std::string path_in(const std::string& name) const {
    return (fs::path(dir_) / name).string();
  }

  std::string dir_;
};

constexpr const char* kCleanSource =
    "struct node { struct node *next; int v; };\n"
    "void main() {\n"
    "  struct node *p;\n"
    "  p = malloc(sizeof(struct node));\n"
    "  p->next = NULL;\n"
    "  free(p);\n"
    "  p = NULL;\n"
    "}\n";

constexpr const char* kLeakySource =
    "struct node { struct node *next; int v; };\n"
    "void main() {\n"
    "  struct node *p;\n"
    "  p = malloc(sizeof(struct node));\n"
    "  p->next = NULL;\n"
    "}\n";

TEST_F(CliTest, ExitCode0CleanAnalysis) {
  const std::string file = write_file("clean.c", kCleanSource);
  EXPECT_EQ(run_cli(file + " --check", "").exit_code, 0);
}

TEST_F(CliTest, ExitCode1Findings) {
  const std::string file = write_file("leaky.c", kLeakySource);
  EXPECT_EQ(run_cli(file + " --check", "").exit_code, 1);
}

TEST_F(CliTest, ExitCode2BadUsage) {
  EXPECT_EQ(run_cli("", "").exit_code, 2);
  EXPECT_EQ(run_cli("--bogus-flag file.c", "").exit_code, 2);
  EXPECT_EQ(run_cli("--resume file.c", "").exit_code, 2);  // needs --checkpoint
  EXPECT_EQ(run_cli("--isolate --progressive file.c", "").exit_code, 2);
}

TEST_F(CliTest, ExitCode3SomeUnitsFailed) {
  const std::string good = write_file("good.c", kCleanSource);
  EXPECT_EQ(run_cli(good + " " + path_in("missing.c"), "").exit_code, 3);
}

TEST_F(CliTest, ExitCode4AllUnitsFailed) {
  EXPECT_EQ(run_cli(path_in("missing.c"), "").exit_code, 4);
}

TEST_F(CliTest, BatchModeExitCodesMatchDetailedMode) {
  const std::string clean = write_file("clean.c", kCleanSource);
  const std::string leaky = write_file("leaky.c", kLeakySource);
  EXPECT_EQ(run_cli(clean + " --isolate --check", "").exit_code, 0);
  EXPECT_EQ(run_cli(leaky + " --isolate --check", "").exit_code, 1);
  EXPECT_EQ(
      run_cli(clean + " " + path_in("nope.c") + " --isolate", "").exit_code,
      3);
  EXPECT_EQ(run_cli(path_in("nope.c") + " --isolate", "").exit_code, 4);
}

TEST_F(CliTest, BatchReportAndMergedSarif) {
  const std::string clean = write_file("clean.c", kCleanSource);
  const std::string leaky = write_file("leaky.c", kLeakySource);
  const std::string sarif = path_in("out.sarif");
  const RunResult result = run_cli(
      clean + " " + leaky + " --isolate --check --sarif=" + sarif, "");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.stdout_text.find("batch: 2 units, 2 ok"),
            std::string::npos)
      << result.stdout_text;

  const std::string log = slurp(sarif);
  // One SARIF run, findings attributed per artifact.
  EXPECT_NE(log.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(log.find("leaky.c"), std::string::npos);
}

#if PSA_CLI_TESTS_POSIX

TEST_F(CliTest, FaultInjectionThroughTheRealBinary) {
  const std::string a = write_file("a.c", kCleanSource);
  const std::string b = write_file("b.c", kCleanSource);
  const std::string stderr_path = path_in("stderr.log");

  ::setenv("PSA_FAULT_AT", (a + ":crash").c_str(), 1);
  const RunResult result =
      run_cli(a + " " + b + " --isolate --jobs=2", stderr_path);
  ::unsetenv("PSA_FAULT_AT");

  EXPECT_EQ(result.exit_code, 3);
  EXPECT_NE(result.stdout_text.find("crash (signal"), std::string::npos)
      << result.stdout_text;
  EXPECT_NE(result.stdout_text.find("quarantined"), std::string::npos);
  EXPECT_NE(result.stdout_text.find("b.c: ok"), std::string::npos);
}

/// Spawn the CLI detached (stdout/stderr to files), return its pid.
pid_t spawn_cli(const std::vector<std::string>& args,
                const std::string& stdout_path,
                const std::string& stderr_path) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  (void)!::freopen(stdout_path.c_str(), "w", stdout);
  (void)!::freopen(stderr_path.c_str(), "w", stderr);
  std::vector<char*> argv;
  static std::string binary = PSA_CLI_PATH;
  argv.push_back(binary.data());
  std::vector<std::string> owned = args;
  for (std::string& a : owned) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv(binary.c_str(), argv.data());
  ::_exit(127);
}

// The resume acceptance proof: SIGKILL a checkpointed batch mid-run; rerun
// with --resume; finished units are skipped (per the unit-level log) and the
// final report is byte-identical to an uninterrupted run.
TEST_F(CliTest, ResumeAfterSigkillReproducesTheUninterruptedReport) {
  // Several units, serial, so the kill lands mid-batch deterministically
  // enough: fuzz-generated programs each take a measurable slice at L2.
  std::vector<std::string> files;
  for (unsigned seed = 0; seed < 6; ++seed) {
    files.push_back(write_file("gen" + std::to_string(seed) + ".c",
                               testing::generate_program(seed)));
  }

  const std::string ckpt_a = path_in("ckpt-uninterrupted");
  const std::string ckpt_b = path_in("ckpt-killed");

  // Reference: uninterrupted run.
  std::string ref_args = "--isolate --jobs=1 --level=2 --checkpoint=" + ckpt_a;
  for (const std::string& f : files) ref_args += " " + f;
  const RunResult reference = run_cli(ref_args, "");
  ASSERT_EQ(reference.exit_code, 0) << reference.stdout_text;

  // Victim: same batch, SIGKILLed once the journal shows progress.
  std::vector<std::string> victim_args = {"--isolate", "--jobs=1",
                                          "--level=2",
                                          "--checkpoint=" + ckpt_b};
  for (const std::string& f : files) victim_args.push_back(f);
  const pid_t pid = spawn_cli(victim_args, path_in("victim.out"),
                              path_in("victim.err"));
  ASSERT_GT(pid, 0);

  const std::string journal = (fs::path(ckpt_b) / "journal.psaj").string();
  for (int spins = 0; spins < 20000; ++spins) {
    const std::string text = slurp(journal);
    std::size_t outcomes = 0;
    for (std::size_t at = text.find("\noutcome ");
         at != std::string::npos; at = text.find("\noutcome ", at + 1)) {
      ++outcomes;
    }
    if (outcomes >= 2) break;  // mid-run: some done, some not
    ::usleep(2000);
  }
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "victim was not killed mid-run; batch too fast for the proof";

  // Resume and compare byte for byte.
  std::string resume_args =
      "--isolate --jobs=1 --level=2 --resume --checkpoint=" + ckpt_b;
  for (const std::string& f : files) resume_args += " " + f;
  const std::string log_path = path_in("resume.err");
  const RunResult resumed = run_cli(resume_args, log_path);
  EXPECT_EQ(resumed.exit_code, 0) << resumed.stdout_text;

  // Byte-identical final report modulo the from-checkpoint provenance
  // markers (the report deliberately shows which units were served from
  // disk; strip the marker before comparing).
  std::string normalized = resumed.stdout_text;
  std::string normalized_ref = reference.stdout_text;
  const auto strip = [](std::string& s, const std::string& needle) {
    for (std::size_t at = s.find(needle); at != std::string::npos;
         at = s.find(needle)) {
      s.erase(at, needle.size());
    }
  };
  strip(normalized, ", from checkpoint");
  // The summary line also counts checkpoint hits.
  for (int n = 0; n <= 6; ++n) {
    strip(normalized, ", " + std::to_string(n) + " from checkpoint");
  }
  EXPECT_EQ(normalized, normalized_ref);

  // The unit-level log proves finished units were skipped, not re-run.
  const std::string log = slurp(log_path);
  EXPECT_NE(log.find("(checkpointed)"), std::string::npos) << log;
}

#endif  // PSA_CLI_TESTS_POSIX

}  // namespace
}  // namespace psa
