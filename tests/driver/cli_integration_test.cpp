// End-to-end psa_cli integration: the documented exit-code contract, batch
// mode with worker isolation, fault injection through the real binary, and
// the resume proof — SIGKILL a checkpointed batch mid-run, rerun with
// --resume, and the final report is byte-identical to an uninterrupted run
// while the unit-level logs show the finished units being skipped.
//
// The binary under test is baked in via PSA_CLI_PATH (tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "support/metrics.hpp"
#include "testing/json.hpp"
#include "testing/program_gen.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#define PSA_CLI_TESTS_POSIX 1
#else
#define PSA_CLI_TESTS_POSIX 0
#endif

namespace psa {
namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exit_code = -1;
  std::string stdout_text;
};

/// Run the CLI via popen, capturing stdout (stderr goes to the 2> file so
/// log assertions can read it).
RunResult run_cli(const std::string& args, const std::string& stderr_path) {
  const std::string command = std::string(PSA_CLI_PATH) + " " + args + " 2>" +
                              (stderr_path.empty() ? "/dev/null"
                                                   : stderr_path);
  RunResult result;
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  std::size_t n = 0;
  while ((n = std::fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.stdout_text.append(buffer.data(), n);
  }
  const int status = ::pclose(pipe);
#if PSA_CLI_TESTS_POSIX
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
#else
  result.exit_code = status;
#endif
  return result;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("psa-cli-" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string write_file(const std::string& name, const std::string& text) {
    const std::string path = (fs::path(dir_) / name).string();
    std::ofstream out(path);
    out << text;
    return path;
  }

  std::string path_in(const std::string& name) const {
    return (fs::path(dir_) / name).string();
  }

  std::string dir_;
};

constexpr const char* kCleanSource =
    "struct node { struct node *next; int v; };\n"
    "void main() {\n"
    "  struct node *p;\n"
    "  p = malloc(sizeof(struct node));\n"
    "  p->next = NULL;\n"
    "  free(p);\n"
    "  p = NULL;\n"
    "}\n";

constexpr const char* kLeakySource =
    "struct node { struct node *next; int v; };\n"
    "void main() {\n"
    "  struct node *p;\n"
    "  p = malloc(sizeof(struct node));\n"
    "  p->next = NULL;\n"
    "}\n";

TEST_F(CliTest, ExitCode0CleanAnalysis) {
  const std::string file = write_file("clean.c", kCleanSource);
  EXPECT_EQ(run_cli(file + " --check", "").exit_code, 0);
}

TEST_F(CliTest, ExitCode1Findings) {
  const std::string file = write_file("leaky.c", kLeakySource);
  EXPECT_EQ(run_cli(file + " --check", "").exit_code, 1);
}

TEST_F(CliTest, ExitCode2BadUsage) {
  EXPECT_EQ(run_cli("", "").exit_code, 2);
  EXPECT_EQ(run_cli("--bogus-flag file.c", "").exit_code, 2);
  EXPECT_EQ(run_cli("--resume file.c", "").exit_code, 2);  // needs --checkpoint
  EXPECT_EQ(run_cli("--isolate --progressive file.c", "").exit_code, 2);
}

TEST_F(CliTest, ExitCode3SomeUnitsFailed) {
  const std::string good = write_file("good.c", kCleanSource);
  EXPECT_EQ(run_cli(good + " " + path_in("missing.c"), "").exit_code, 3);
}

TEST_F(CliTest, ExitCode4AllUnitsFailed) {
  EXPECT_EQ(run_cli(path_in("missing.c"), "").exit_code, 4);
}

TEST_F(CliTest, BatchModeExitCodesMatchDetailedMode) {
  const std::string clean = write_file("clean.c", kCleanSource);
  const std::string leaky = write_file("leaky.c", kLeakySource);
  EXPECT_EQ(run_cli(clean + " --isolate --check", "").exit_code, 0);
  EXPECT_EQ(run_cli(leaky + " --isolate --check", "").exit_code, 1);
  EXPECT_EQ(
      run_cli(clean + " " + path_in("nope.c") + " --isolate", "").exit_code,
      3);
  EXPECT_EQ(run_cli(path_in("nope.c") + " --isolate", "").exit_code, 4);
}

TEST_F(CliTest, BatchReportAndMergedSarif) {
  const std::string clean = write_file("clean.c", kCleanSource);
  const std::string leaky = write_file("leaky.c", kLeakySource);
  const std::string sarif = path_in("out.sarif");
  const RunResult result = run_cli(
      clean + " " + leaky + " --isolate --check --sarif=" + sarif, "");
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_NE(result.stdout_text.find("batch: 2 units, 2 ok"),
            std::string::npos)
      << result.stdout_text;

  const std::string log = slurp(sarif);
  // One SARIF run, findings attributed per artifact.
  EXPECT_NE(log.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(log.find("leaky.c"), std::string::npos);
}

TEST_F(CliTest, HelpPrintsTheReferenceAndExitsOk) {
  const RunResult result = run_cli("--help", "");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_EQ(result.stdout_text.rfind("usage: psa_cli", 0), 0u)
      << result.stdout_text;
  EXPECT_NE(result.stdout_text.find("--metrics-out"), std::string::npos);
  EXPECT_NE(result.stdout_text.find("exit codes:"), std::string::npos);
}

// The docs contract: README.md embeds the --help text verbatim in a fenced
// code block; the two must stay byte-identical (see kHelpText in
// examples/psa_cli.cpp). PSA_README_PATH is baked in by tests/CMakeLists.txt.
TEST_F(CliTest, HelpMatchesTheReadmeFlagBlock) {
  const std::string readme = slurp(PSA_README_PATH);
  ASSERT_FALSE(readme.empty()) << "cannot read " << PSA_README_PATH;
  const std::size_t start = readme.find("usage: psa_cli");
  ASSERT_NE(start, std::string::npos)
      << "README.md lost its embedded --help block";
  const std::size_t fence = readme.find("\n```", start);
  ASSERT_NE(fence, std::string::npos);
  const std::string block = readme.substr(start, fence + 1 - start);

  const RunResult help = run_cli("--help", "");
  ASSERT_EQ(help.exit_code, 0);
  EXPECT_EQ(block, help.stdout_text)
      << "README flag block and `psa_cli --help` drifted apart; update both";
}

/// Parse a JSONL metrics file into unit records + the single aggregate.
struct MetricsFile {
  std::vector<testing::JsonValue> units;
  testing::JsonValue aggregate;
  bool ok = false;
};

MetricsFile read_metrics_file(const std::string& path) {
  MetricsFile out;
  std::ifstream in(path);
  std::string line;
  std::size_t aggregates = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto doc = testing::parse_json(line);
    if (!doc || !doc->is_object()) return out;
    if (doc->str("schema") != "psa.metrics.v1") return out;
    if (doc->str("kind") == "aggregate") {
      out.aggregate = std::move(*doc);
      ++aggregates;
    } else if (doc->str("kind") == "unit") {
      out.units.push_back(std::move(*doc));
    } else {
      return out;
    }
  }
  out.ok = aggregates == 1 && !out.units.empty();
  return out;
}

/// The per-counter value of one record's "ops" object.
double ops_value(const testing::JsonValue& record, const std::string& key) {
  const testing::JsonValue* ops = record.find("ops");
  return ops == nullptr ? -1 : ops->num(key);
}

// The supervisor-merge acceptance proof: in both isolation modes the
// aggregate record equals the element-wise sum of the per-unit records, and
// the deterministic (non-timer) operation counters are identical whether
// units ran forked or in-process.
TEST_F(CliTest, MetricsAggregateEqualsSumInBothIsolateModes) {
  const std::string a = write_file("a.c", kCleanSource);
  const std::string b = write_file("b.c", kLeakySource);
  const std::string on_path = path_in("on.jsonl");
  const std::string off_path = path_in("off.jsonl");

  ASSERT_EQ(run_cli(a + " " + b + " --isolate=on --jobs=2 --metrics-out=" +
                        on_path,
                    "")
                .exit_code,
            0);
  ASSERT_EQ(run_cli(a + " " + b + " --isolate=off --metrics-out=" + off_path,
                    "")
                .exit_code,
            0);

  for (const std::string& path : {on_path, off_path}) {
    const MetricsFile file = read_metrics_file(path);
    ASSERT_TRUE(file.ok) << path;
    ASSERT_EQ(file.units.size(), 2u) << path;
    for (std::size_t i = 0; i < support::kCounterCount; ++i) {
      const auto c = static_cast<support::Counter>(i);
      const std::string key{support::counter_name(c)};
      double sum = 0;
      for (const auto& unit : file.units) sum += ops_value(unit, key);
      EXPECT_DOUBLE_EQ(ops_value(file.aggregate, key), sum)
          << path << " " << key;
    }
  }

  // Determinism across isolation: forked and in-process workers count the
  // same operations (unit order in the report is the input order).
  const MetricsFile forked = read_metrics_file(on_path);
  const MetricsFile inproc = read_metrics_file(off_path);
  ASSERT_EQ(forked.units.size(), inproc.units.size());
  for (std::size_t u = 0; u < forked.units.size(); ++u) {
    EXPECT_EQ(forked.units[u].str("unit"), inproc.units[u].str("unit"));
    for (std::size_t i = 0; i < support::kCounterCount; ++i) {
      const auto c = static_cast<support::Counter>(i);
      if (support::is_timer(c)) continue;
      const std::string key{support::counter_name(c)};
      EXPECT_DOUBLE_EQ(ops_value(forked.units[u], key),
                       ops_value(inproc.units[u], key))
          << forked.units[u].str("unit") << " " << key;
    }
  }
}

TEST_F(CliTest, MetricsOutWorksInDetailedMode) {
  const std::string file = write_file("clean.c", kCleanSource);
  const std::string path = path_in("detailed.jsonl");
  const RunResult result = run_cli(file + " --metrics-out=" + path, "");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.stdout_text.find("metrics written to"), std::string::npos);
  const MetricsFile metrics = read_metrics_file(path);
  ASSERT_TRUE(metrics.ok);
  ASSERT_EQ(metrics.units.size(), 1u);
  EXPECT_EQ(metrics.units[0].str("unit"), file);
  EXPECT_EQ(metrics.units[0].str("status"), "converged");
  EXPECT_EQ(metrics.aggregate.str("level"), "-");
}

TEST_F(CliTest, ProfileFlagPrintsTheTable) {
  const std::string file = write_file("clean.c", kCleanSource);
  const RunResult result = run_cli(file + " --profile", "");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.stdout_text.find("phases:"), std::string::npos)
      << result.stdout_text;
  EXPECT_NE(result.stdout_text.find("rsg operations:"), std::string::npos);
  EXPECT_NE(result.stdout_text.find("gauges:"), std::string::npos);
}

#if PSA_CLI_TESTS_POSIX

TEST_F(CliTest, FaultInjectionThroughTheRealBinary) {
  const std::string a = write_file("a.c", kCleanSource);
  const std::string b = write_file("b.c", kCleanSource);
  const std::string stderr_path = path_in("stderr.log");

  ::setenv("PSA_FAULT_AT", (a + ":crash").c_str(), 1);
  const RunResult result =
      run_cli(a + " " + b + " --isolate --jobs=2", stderr_path);
  ::unsetenv("PSA_FAULT_AT");

  EXPECT_EQ(result.exit_code, 3);
  EXPECT_NE(result.stdout_text.find("crash (signal"), std::string::npos)
      << result.stdout_text;
  EXPECT_NE(result.stdout_text.find("quarantined"), std::string::npos);
  EXPECT_NE(result.stdout_text.find("b.c: ok"), std::string::npos);
}

/// Spawn the CLI detached (stdout/stderr to files), return its pid.
pid_t spawn_cli(const std::vector<std::string>& args,
                const std::string& stdout_path,
                const std::string& stderr_path) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  (void)!::freopen(stdout_path.c_str(), "w", stdout);
  (void)!::freopen(stderr_path.c_str(), "w", stderr);
  std::vector<char*> argv;
  static std::string binary = PSA_CLI_PATH;
  argv.push_back(binary.data());
  std::vector<std::string> owned = args;
  for (std::string& a : owned) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv(binary.c_str(), argv.data());
  ::_exit(127);
}

// The resume acceptance proof: SIGKILL a checkpointed batch mid-run; rerun
// with --resume; finished units are skipped (per the unit-level log) and the
// final report is byte-identical to an uninterrupted run.
TEST_F(CliTest, ResumeAfterSigkillReproducesTheUninterruptedReport) {
  // Several units, serial, so the kill lands mid-batch deterministically
  // enough: fuzz-generated programs each take a measurable slice at L2.
  std::vector<std::string> files;
  for (unsigned seed = 0; seed < 6; ++seed) {
    files.push_back(write_file("gen" + std::to_string(seed) + ".c",
                               testing::generate_program(seed)));
  }

  const std::string ckpt_a = path_in("ckpt-uninterrupted");
  const std::string ckpt_b = path_in("ckpt-killed");

  // Reference: uninterrupted run.
  std::string ref_args = "--isolate --jobs=1 --level=2 --checkpoint=" + ckpt_a;
  for (const std::string& f : files) ref_args += " " + f;
  const RunResult reference = run_cli(ref_args, "");
  ASSERT_EQ(reference.exit_code, 0) << reference.stdout_text;

  // Victim: same batch, SIGKILLed once the journal shows progress.
  std::vector<std::string> victim_args = {"--isolate", "--jobs=1",
                                          "--level=2",
                                          "--checkpoint=" + ckpt_b};
  for (const std::string& f : files) victim_args.push_back(f);
  const pid_t pid = spawn_cli(victim_args, path_in("victim.out"),
                              path_in("victim.err"));
  ASSERT_GT(pid, 0);

  const std::string journal = (fs::path(ckpt_b) / "journal.psaj").string();
  for (int spins = 0; spins < 20000; ++spins) {
    const std::string text = slurp(journal);
    std::size_t outcomes = 0;
    for (std::size_t at = text.find("\noutcome ");
         at != std::string::npos; at = text.find("\noutcome ", at + 1)) {
      ++outcomes;
    }
    if (outcomes >= 2) break;  // mid-run: some done, some not
    ::usleep(2000);
  }
  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "victim was not killed mid-run; batch too fast for the proof";

  // Resume and compare byte for byte.
  std::string resume_args =
      "--isolate --jobs=1 --level=2 --resume --checkpoint=" + ckpt_b;
  for (const std::string& f : files) resume_args += " " + f;
  const std::string log_path = path_in("resume.err");
  const RunResult resumed = run_cli(resume_args, log_path);
  EXPECT_EQ(resumed.exit_code, 0) << resumed.stdout_text;

  // Byte-identical final report modulo the from-checkpoint provenance
  // markers (the report deliberately shows which units were served from
  // disk; strip the marker before comparing).
  std::string normalized = resumed.stdout_text;
  std::string normalized_ref = reference.stdout_text;
  const auto strip = [](std::string& s, const std::string& needle) {
    for (std::size_t at = s.find(needle); at != std::string::npos;
         at = s.find(needle)) {
      s.erase(at, needle.size());
    }
  };
  strip(normalized, ", from checkpoint");
  // The summary line also counts checkpoint hits.
  for (int n = 0; n <= 6; ++n) {
    strip(normalized, ", " + std::to_string(n) + " from checkpoint");
  }
  EXPECT_EQ(normalized, normalized_ref);

  // The unit-level log proves finished units were skipped, not re-run.
  const std::string log = slurp(log_path);
  EXPECT_NE(log.find("(checkpointed)"), std::string::npos) << log;
}

// ---------------------------------------------------------------------------
// --fault-campaign (docs/RESILIENCE.md "The I/O fault space"): the
// deterministic (op x kind) sweep through the real binary. The full bounded
// sweep is scripts/fault_campaign.sh (CI); this smoke keeps the orchestrator
// itself honest — it must enumerate traced ops, run scenarios, and exit 0
// with every invariant held.

TEST_F(CliTest, FaultCampaignBoundedSweepHoldsAllInvariants) {
  const RunResult result =
      run_cli("--fault-campaign=" + path_in("campaign") +
                  " --campaign-max-ops=2 --campaign-kinds=enospc,crash",
              path_in("campaign.log"));
  EXPECT_EQ(result.exit_code, 0) << slurp(path_in("campaign.log"));
  EXPECT_NE(result.stdout_text.find("0 violations"), std::string::npos)
      << result.stdout_text;
  // The sweep really enumerated (op, kind) pairs.
  EXPECT_NE(result.stdout_text.find("2 ops x 2 kinds = 4 scenarios"),
            std::string::npos)
      << result.stdout_text;
}

TEST_F(CliTest, FaultCampaignRejectsBadUsage) {
  // Unknown kind: setup failure, not a silent empty sweep.
  EXPECT_EQ(run_cli("--fault-campaign=" + path_in("c") +
                        " --campaign-kinds=sparks",
                    "")
                .exit_code,
            2);
  // Campaign knobs without the mode, and mixing the mode with batch inputs.
  EXPECT_EQ(run_cli("--campaign-max-ops=3 file.c", "").exit_code, 2);
  EXPECT_EQ(run_cli("--fault-campaign=" + path_in("c") + " --corpus", "")
                .exit_code,
            2);
}

#endif  // PSA_CLI_TESTS_POSIX

}  // namespace
}  // namespace psa
