// FaultPlan parsing and matching (the PSA_FAULT_AT test knob). The
// injection side-effects themselves are proven end to end by
// cli_integration_test.cpp, where they kill real sandboxed workers.
#include "driver/fault.hpp"

#include <gtest/gtest.h>

#include <new>
#include <stdexcept>

namespace psa::driver {
namespace {

TEST(FaultPlanTest, ParsesSingleEntry) {
  const FaultPlan plan = FaultPlan::parse("dll:crash");
  EXPECT_EQ(plan.for_unit("dll"), FaultKind::kCrash);
  EXPECT_EQ(plan.for_unit("sll"), FaultKind::kNone);
}

TEST(FaultPlanTest, ParsesEveryKind) {
  const FaultPlan plan = FaultPlan::parse(
      "a:crash,b:segv,c:hang,d:oom,e:throw,f:cachetear,g:cacheflip,"
      "h:sockdrop,i:streamtear,j:evictrace");
  EXPECT_EQ(plan.for_unit("a"), FaultKind::kCrash);
  EXPECT_EQ(plan.for_unit("b"), FaultKind::kSegv);
  EXPECT_EQ(plan.for_unit("c"), FaultKind::kHang);
  EXPECT_EQ(plan.for_unit("d"), FaultKind::kOom);
  EXPECT_EQ(plan.for_unit("e"), FaultKind::kThrow);
  EXPECT_EQ(plan.for_unit("f"), FaultKind::kCacheTear);
  EXPECT_EQ(plan.for_unit("g"), FaultKind::kCacheFlip);
  EXPECT_EQ(plan.for_unit("h"), FaultKind::kSockDrop);
  EXPECT_EQ(plan.for_unit("i"), FaultKind::kStreamTear);
  EXPECT_EQ(plan.for_unit("j"), FaultKind::kEvictRace);
}

TEST(FaultPlanTest, ServiceFaultKindsRoundTripTheirNames) {
  // The service-layer faults are honored at dedicated fault points (daemon
  // stream, cache lookup), so inject_fault must treat them as no-ops — a
  // worker that merely PARSES the plan must not die on them.
  EXPECT_EQ(to_string(FaultKind::kStreamTear), "streamtear");
  EXPECT_EQ(to_string(FaultKind::kEvictRace), "evictrace");
  inject_fault(FaultKind::kStreamTear);
  inject_fault(FaultKind::kEvictRace);
  SUCCEED();
}

TEST(FaultPlanTest, IgnoresMalformedEntries) {
  // A typo in a test knob must never arm anything (and never throw).
  const FaultPlan plan =
      FaultPlan::parse("missing-colon,unit:unknown-kind,:crash,ok:oom,");
  EXPECT_EQ(plan.for_unit("missing-colon"), FaultKind::kNone);
  EXPECT_EQ(plan.for_unit("unit"), FaultKind::kNone);
  EXPECT_EQ(plan.for_unit("ok"), FaultKind::kOom);
}

TEST(FaultPlanTest, EmptySpecIsEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_EQ(FaultPlan::parse("").for_unit("anything"), FaultKind::kNone);
}

TEST(FaultPlanTest, UnitNamesWithColonsUseLastColon) {
  // rfind(':') split: unit names may contain path-like colons.
  const FaultPlan plan = FaultPlan::parse("dir:file.c:crash");
  EXPECT_EQ(plan.for_unit("dir:file.c"), FaultKind::kCrash);
}

TEST(InjectFaultTest, NoneIsANoOp) {
  inject_fault(FaultKind::kNone);  // must return normally
  SUCCEED();
}

TEST(InjectFaultTest, OomThrowsBadAlloc) {
  EXPECT_THROW(inject_fault(FaultKind::kOom), std::bad_alloc);
}

TEST(InjectFaultTest, ThrowThrowsRuntimeError) {
  EXPECT_THROW(inject_fault(FaultKind::kThrow), std::runtime_error);
}

}  // namespace
}  // namespace psa::driver
