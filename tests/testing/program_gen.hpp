// Shared random-program generator for fuzz-style sweeps (fuzz_test.cpp,
// snapshot round-trip tests): syntactically-valid pointer programs over one
// struct with two selectors and four pvars, random mixes of the six simple
// statements under random control flow.
#pragma once

#include <random>
#include <sstream>
#include <string>

namespace psa::testing {

/// Deterministic in the seed. Statements may dereference possibly-NULL
/// pointers — the abstract semantics drops those configurations.
inline std::string generate_program(unsigned seed) {
  std::mt19937 rng(seed);
  std::ostringstream os;
  os << "struct node { struct node *s0; struct node *s1; int v; };\n";
  os << "void main() {\n";
  os << "  struct node *p0; struct node *p1; struct node *p2; "
        "struct node *p3;\n";
  os << "  int i; int n;\n";
  os << "  p0 = NULL; p1 = NULL; p2 = NULL; p3 = NULL; i = 0; n = 10;\n";

  auto pvar = [&] { return "p" + std::to_string(rng() % 4); };
  auto sel = [&] { return "s" + std::to_string(rng() % 2); };

  int depth = 0;
  int open_loops = 0;
  const int statements = 12 + static_cast<int>(rng() % 18);
  for (int k = 0; k < statements; ++k) {
    const std::string pad(static_cast<std::size_t>(2 * (depth + 1)), ' ');
    switch (rng() % 10) {
      case 0:
        os << pad << pvar() << " = NULL;\n";
        break;
      case 1:
      case 2:
        os << pad << pvar() << " = malloc(sizeof(struct node));\n";
        break;
      case 3:
        os << pad << pvar() << " = " << pvar() << ";\n";
        break;
      case 4:
      case 5: {
        const std::string x = pvar();
        const std::string y = pvar();
        os << pad << "if (" << y << " != NULL) { " << x << " = " << y << "->"
           << sel() << "; }\n";
        break;
      }
      case 6: {
        const std::string x = pvar();
        os << pad << "if (" << x << " != NULL) { " << x << "->" << sel()
           << " = " << pvar() << "; }\n";
        break;
      }
      case 7: {
        const std::string x = pvar();
        os << pad << "if (" << x << " != NULL) { " << x << "->" << sel()
           << " = NULL; }\n";
        break;
      }
      case 8:
        if (depth < 2) {
          os << pad << "while (i < n) {\n";
          ++depth;
          ++open_loops;
        }
        break;
      default:
        if (open_loops > 0) {
          --depth;
          --open_loops;
          os << std::string(static_cast<std::size_t>(2 * (depth + 1)), ' ')
             << "i = i + 1;\n"
             << std::string(static_cast<std::size_t>(2 * (depth + 1)), ' ')
             << "}\n";
        }
        break;
    }
  }
  while (open_loops > 0) {
    --depth;
    --open_loops;
    os << std::string(static_cast<std::size_t>(2 * (depth + 1)), ' ')
       << "}\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace psa::testing
