// Shared test helper: the structural invariants every RSG produced by the
// engine must satisfy (see DESIGN.md §4).
#pragma once

#include <gtest/gtest.h>

#include <string>

#include "rsg/rsg.hpp"
#include "support/interner.hpp"

namespace psa::testing {

inline void verify_rsg_invariants(const rsg::Rsg& g,
                                  const support::Interner& interner,
                                  const std::string& where) {
  using rsg::Cardinality;
  using rsg::NodeRef;

  for (const NodeRef n : g.node_refs()) {
    const auto& p = g.props(n);

    // Definite and possible reference-pattern sets stay disjoint.
    EXPECT_FALSE(intersects(p.selin, p.pos_selin)) << where;
    EXPECT_FALSE(intersects(p.selout, p.pos_selout)) << where;

    // A definite out-selector has a witnessing link; same for in.
    for (const auto sel : p.selout) {
      EXPECT_FALSE(g.sel_targets(n, sel).empty())
          << where << ": selout " << interner.spelling(sel)
          << " without a link";
    }
    for (const auto sel : p.selin) {
      bool witnessed = false;
      for (const auto& in : g.in_links(n)) witnessed |= in.sel == sel;
      EXPECT_TRUE(witnessed) << where << ": selin " << interner.spelling(sel)
                             << " without a link";
    }

    // Every pvar-referenced node has cardinality one (the strong-update
    // invariant the semantics depend on).
    if (!g.pvars_of(n).empty()) {
      EXPECT_EQ(p.cardinality, Cardinality::kOne) << where;
    }
  }

  // PL points at alive nodes only; every node is reachable from some pvar.
  const auto reachable = g.reachable_from_pvars();
  for (const auto& [pvar, n] : g.pvar_links()) {
    EXPECT_TRUE(g.alive(n)) << where;
  }
  for (const rsg::NodeRef n : g.node_refs()) {
    EXPECT_TRUE(reachable[n]) << where << ": unreachable node survived gc";
  }

  // The in/out adjacency mirrors agree.
  std::size_t out_total = 0;
  std::size_t in_total = 0;
  for (const rsg::NodeRef n : g.node_refs()) {
    out_total += g.out_links(n).size();
    in_total += g.in_links(n).size();
    for (const auto& l : g.out_links(n)) {
      bool mirrored = false;
      for (const auto& in : g.in_links(l.target)) {
        mirrored |= in.source == n && in.sel == l.sel;
      }
      EXPECT_TRUE(mirrored) << where;
    }
  }
  EXPECT_EQ(out_total, in_total) << where;
}

}  // namespace psa::testing
