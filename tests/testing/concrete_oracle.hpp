// The concrete-interpreter soundness oracle, shared between the integration
// soundness sweep and the governor fault-injection suite.
//
// Executes the lowered CFG on a *real* heap (branch outcomes chosen
// randomly, loops bounded by a step budget), observes the concrete final
// store, and checks that an abstract exit RSRSG covers it:
//
//   1. some member graph matches the concrete pvar null-ness and aliasing,
//   2. a location concretely referenced twice via one selector implies the
//      abstract state admits SHSEL for that struct/selector.
//
// Any violation is an unsound "definitely not" claim by the analysis. The
// checks only ever demand over-approximation, so they apply unchanged to
// degraded (coarsened) results — that is the governor's whole contract.
#pragma once

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/analyzer.hpp"
#include "client/queries.hpp"

namespace psa::oracle {

using support::Symbol;

// ---------------------------------------------------------------------------
// A concrete heap and interpreter for the lowered CFG.
// ---------------------------------------------------------------------------

using LocId = int;
constexpr LocId kNull = -1;

struct ConcreteHeap {
  // location -> selector -> location.
  std::vector<std::map<Symbol, LocId>> fields;
  std::vector<lang::StructId> type_of;
  std::map<Symbol, LocId> env;  // pvar bindings (absent/kNull = NULL)
  std::set<LocId> freed;        // locations passed to free()

  LocId alloc(lang::StructId type) {
    fields.emplace_back();
    type_of.push_back(type);
    return static_cast<LocId>(fields.size() - 1);
  }
  LocId get(Symbol pvar) const {
    auto it = env.find(pvar);
    return it == env.end() ? kNull : it->second;
  }
};

struct ConcreteOutcome {
  ConcreteHeap heap;
  bool completed = false;  // reached the CFG exit without a null dereference
  // Source lines where this execution concretely misbehaved. These are
  // ground truth for the checker soundness tests: every line recorded here
  // must carry the matching checker finding (the events are real even when
  // the run was later cut off by the step budget).
  std::set<std::uint32_t> null_deref_lines;
  std::set<std::uint32_t> uaf_lines;          // dereference of freed memory
  std::set<std::uint32_t> double_free_lines;  // re-free of freed memory
};

/// Locations reachable from the current environment over the heap's fields.
inline std::vector<bool> reachable_set(const ConcreteHeap& heap) {
  std::vector<bool> reachable(heap.fields.size(), false);
  std::vector<LocId> work;
  for (const auto& [pvar, loc] : heap.env) {
    if (loc != kNull && !reachable[static_cast<std::size_t>(loc)]) {
      reachable[static_cast<std::size_t>(loc)] = true;
      work.push_back(loc);
    }
  }
  while (!work.empty()) {
    const LocId l = work.back();
    work.pop_back();
    for (const auto& [sel, t] : heap.fields[static_cast<std::size_t>(l)]) {
      if (t != kNull && !reachable[static_cast<std::size_t>(t)]) {
        reachable[static_cast<std::size_t>(t)] = true;
        work.push_back(t);
      }
    }
  }
  return reachable;
}

/// Adversary for havoc'd code (docs/RESILIENCE.md): rewrite a random subset
/// of reachable pointer fields to NULL or a type-correct reachable cell.
/// The unknown code sees only what escaped to it; it never frees and never
/// rebinds the caller's variables.
inline void adversary_mutate(const analysis::ProgramAnalysis& program,
                             ConcreteHeap& heap, std::mt19937& rng) {
  const std::vector<bool> reachable = reachable_set(heap);
  for (std::size_t l = 0; l < heap.fields.size(); ++l) {
    if (!reachable[l]) continue;
    const lang::StructDecl& decl =
        program.unit.types.struct_decl(heap.type_of[l]);
    for (const lang::Field& f : decl.fields) {
      if (!f.is_selector()) continue;
      if (rng() % 2 == 0) continue;  // this field survives unchanged
      std::vector<LocId> targets;
      for (std::size_t t = 0; t < heap.fields.size(); ++t) {
        if (reachable[t] && heap.type_of[t] == *f.type.struct_id &&
            !heap.freed.contains(static_cast<LocId>(t))) {
          targets.push_back(static_cast<LocId>(t));
        }
      }
      const std::size_t pick = rng() % (targets.size() + 1);
      if (pick == 0) {
        heap.fields[l].erase(f.name);
      } else {
        heap.fields[l][f.name] = targets[pick - 1];
      }
    }
  }
}

/// Adversary rebind: x becomes NULL, a fresh cell, or any reachable
/// non-freed cell of type T.
inline void adversary_rebind(ConcreteHeap& heap, std::mt19937& rng, Symbol x,
                             lang::StructId type) {
  const std::vector<bool> reachable = reachable_set(heap);
  std::vector<LocId> candidates;
  for (std::size_t l = 0; l < heap.fields.size(); ++l) {
    if (reachable[l] && heap.type_of[l] == type &&
        !heap.freed.contains(static_cast<LocId>(l))) {
      candidates.push_back(static_cast<LocId>(l));
    }
  }
  const std::size_t pick = rng() % (candidates.size() + 2);
  if (pick == 0) {
    heap.env.erase(x);
  } else if (pick == 1) {
    heap.env[x] = heap.alloc(type);
  } else {
    heap.env[x] = candidates[pick - 2];
  }
}

/// Execute one CFG against the shared heap. Returns true when the exit was
/// reached; false when the run died (null dereference) or the shared step
/// budget ran out — either way there is no final store to check. kCall
/// statements push a real call frame (fresh environment, positional
/// struct-pointer parameter binding, `__ret` read-back) and recurse into the
/// callee's CFG from ProgramAnalysis::unit_cfgs; a callee with no lowered
/// CFG gets the same havoc adversary the analysis falls back to.
inline bool run_cfg(const analysis::ProgramAnalysis& program,
                    const cfg::Cfg& cfg, ConcreteHeap& heap, std::mt19937& rng,
                    int& budget, ConcreteOutcome& out, int depth) {
  cfg::NodeId at = cfg.entry();
  while (budget-- > 0) {
    if (at == cfg.exit()) return true;
    const auto& node = cfg.node(at);
    const auto& s = node.stmt;
    switch (s.op) {
      case cfg::SimpleOp::kPtrNull:
        heap.env.erase(s.x);
        break;
      case cfg::SimpleOp::kPtrMalloc:
        heap.env[s.x] = heap.alloc(s.type);
        break;
      case cfg::SimpleOp::kPtrCopy: {
        const LocId v = heap.get(s.y);
        if (v == kNull) {
          heap.env.erase(s.x);
        } else {
          heap.env[s.x] = v;
        }
        break;
      }
      case cfg::SimpleOp::kLoad: {
        const LocId base = heap.get(s.y);
        if (base == kNull) {  // null dereference: no final store
          if (s.loc.valid()) out.null_deref_lines.insert(s.loc.line);
          return false;
        }
        if (heap.freed.contains(base) && s.loc.valid())
          out.uaf_lines.insert(s.loc.line);
        const auto it =
            heap.fields[static_cast<std::size_t>(base)].find(s.sel);
        const LocId v =
            it == heap.fields[static_cast<std::size_t>(base)].end()
                ? kNull
                : it->second;
        if (v == kNull) {
          heap.env.erase(s.x);
        } else {
          heap.env[s.x] = v;
        }
        break;
      }
      case cfg::SimpleOp::kStore:
      case cfg::SimpleOp::kStoreNull: {
        const LocId base = heap.get(s.x);
        if (base == kNull) {
          if (s.loc.valid()) out.null_deref_lines.insert(s.loc.line);
          return false;
        }
        if (heap.freed.contains(base) && s.loc.valid())
          out.uaf_lines.insert(s.loc.line);
        const LocId v =
            s.op == cfg::SimpleOp::kStore ? heap.get(s.y) : kNull;
        if (v == kNull) {
          heap.fields[static_cast<std::size_t>(base)].erase(s.sel);
        } else {
          heap.fields[static_cast<std::size_t>(base)][s.sel] = v;
        }
        break;
      }
      case cfg::SimpleOp::kFree: {
        const LocId v = heap.get(s.x);
        if (v == kNull) break;  // free(NULL) is well-defined
        if (!heap.freed.insert(v).second && s.loc.valid())
          out.double_free_lines.insert(s.loc.line);
        // The binding survives (dangles), matching the abstract semantics.
        break;
      }
      case cfg::SimpleOp::kFieldRead:
      case cfg::SimpleOp::kFieldWrite: {
        // Scalar-field access still dereferences the base pointer.
        const LocId base = heap.get(s.x);
        if (base == kNull) {
          if (s.loc.valid()) out.null_deref_lines.insert(s.loc.line);
          return false;
        }
        if (heap.freed.contains(base) && s.loc.valid())
          out.uaf_lines.insert(s.loc.line);
        break;
      }
      case cfg::SimpleOp::kScalar:
      case cfg::SimpleOp::kTouchClear:
      case cfg::SimpleOp::kNop:
        break;
      case cfg::SimpleOp::kHavoc: {
        // Code the frontend could not model ran here (salvage mode). The
        // interpreter plays the adversary inside the documented envelope
        // (docs/RESILIENCE.md): the unknown code sees only what escaped to
        // it, so it may rewrite reachable pointer fields and produce NULL,
        // fresh memory, or any reachable cell — but it never frees and
        // never rebinds the caller's variables (C is pass-by-value).
        if (s.x.valid()) {
          adversary_rebind(heap, rng, s.x, s.type);
        } else {
          adversary_mutate(program, heap, rng);
        }
        break;
      }
      case cfg::SimpleOp::kCall: {
        const analysis::FunctionCfg* callee = program.find_cfg(s.callee);
        const lang::FunctionInfo* info = program.sema.find(s.callee);
        if (callee == nullptr || info == nullptr) {
          // No lowered CFG for the callee — the analysis took the havoc
          // fallback here, so the oracle plays the same adversary.
          adversary_mutate(program, heap, rng);
          if (s.x.valid()) adversary_rebind(heap, rng, s.x, s.type);
          break;
        }
        if (depth >= 64) return false;  // runaway recursion: no final store
        // Push a frame: fresh environment with the struct-pointer
        // parameters bound positionally to the argument values (scalars are
        // not tracked). C is pass-by-value, so the callee shares the heap
        // but never the caller's bindings.
        std::map<Symbol, LocId> saved = std::move(heap.env);
        heap.env.clear();
        std::size_t ai = 0;
        for (const lang::Param& p : info->decl->params) {
          if (!p.type.is_struct_pointer()) continue;
          if (ai < s.args.size()) {
            const auto it = saved.find(s.args[ai]);
            if (it != saved.end() && it->second != kNull) {
              heap.env[p.name] = it->second;
            }
          }
          ++ai;
        }
        const bool completed =
            run_cfg(program, callee->cfg, heap, rng, budget, out, depth + 1);
        LocId ret = kNull;
        if (completed) {
          const Symbol ret_sym = program.unit.interner->lookup("__ret");
          if (ret_sym.valid()) ret = heap.get(ret_sym);
        }
        heap.env = std::move(saved);
        if (!completed) return false;  // the callee died: no final store
        if (s.x.valid()) {
          if (ret == kNull) {
            heap.env.erase(s.x);
          } else {
            heap.env[s.x] = ret;
          }
        }
        break;
      }
      case cfg::SimpleOp::kBranch: {
        // Choose a successor whose assume (if any) is satisfied.
        std::vector<cfg::NodeId> viable;
        for (const cfg::NodeId succ : node.succs) {
          const auto& arm = cfg.node(succ).stmt;
          if (arm.op == cfg::SimpleOp::kAssumeNull &&
              heap.get(arm.x) != kNull) {
            continue;
          }
          if (arm.op == cfg::SimpleOp::kAssumeNotNull &&
              heap.get(arm.x) == kNull) {
            continue;
          }
          viable.push_back(succ);
        }
        if (viable.empty()) return false;  // should not happen
        at = viable[rng() % viable.size()];
        continue;
      }
      case cfg::SimpleOp::kAssumeNull:
      case cfg::SimpleOp::kAssumeNotNull:
        // Reached only through a viable branch arm: already satisfied.
        break;
    }
    if (node.succs.empty()) break;
    at = node.succs[node.succs.size() == 1 ? 0 : rng() % node.succs.size()];
  }
  return false;  // budget exhausted mid-run: no final store to check
}

/// Run the lowered program concretely from its target function; opaque
/// branches flip a coin, NULL tests follow the heap, calls execute their
/// callee's CFG in a real call frame. Loops and recursion terminate via the
/// shared step budget (a cut-off run is discarded: it reached no final
/// store).
inline ConcreteOutcome run_concrete(const analysis::ProgramAnalysis& program,
                                    unsigned seed, int max_steps = 4000) {
  std::mt19937 rng(seed);
  ConcreteOutcome out;
  int budget = max_steps;
  out.completed =
      run_cfg(program, program.cfg, out.heap, rng, budget, out, /*depth=*/0);
  return out;
}

// ---------------------------------------------------------------------------
// Coverage checks
// ---------------------------------------------------------------------------

/// Does some abstract exit graph match the concrete null-ness and aliasing?
inline bool alias_pattern_covered(const analysis::ProgramAnalysis& program,
                                  const analysis::Rsrsg& at_exit,
                                  const ConcreteHeap& heap) {
  for (const rsg::Rsg& g : at_exit.graphs()) {
    bool ok = true;
    for (const Symbol p : program.cfg.pointer_vars()) {
      const bool concrete_bound = heap.get(p) != kNull;
      const bool abstract_bound = g.pvar_target(p) != rsg::kNoNode;
      if (concrete_bound != abstract_bound) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    for (const Symbol p : program.cfg.pointer_vars()) {
      for (const Symbol q : program.cfg.pointer_vars()) {
        if (!(p < q) || heap.get(p) == kNull || heap.get(q) == kNull) continue;
        const bool concrete_alias = heap.get(p) == heap.get(q);
        const bool abstract_alias = g.pvar_target(p) == g.pvar_target(q);
        if (concrete_alias != abstract_alias) {
          ok = false;
          break;
        }
      }
      if (!ok) break;
    }
    if (ok) return true;
  }
  return false;
}

/// Concrete (struct, selector) pairs where some location is referenced
/// twice via that selector — restricted to locations reachable from pvars
/// (the abstraction only tracks reachable memory).
inline std::set<std::pair<lang::StructId, Symbol>> concrete_shsel(
    const ConcreteHeap& heap) {
  // Reachability from the environment.
  std::vector<bool> reachable(heap.fields.size(), false);
  std::vector<LocId> work;
  for (const auto& [pvar, loc] : heap.env) {
    if (loc != kNull && !reachable[static_cast<std::size_t>(loc)]) {
      reachable[static_cast<std::size_t>(loc)] = true;
      work.push_back(loc);
    }
  }
  while (!work.empty()) {
    const LocId l = work.back();
    work.pop_back();
    for (const auto& [sel, t] : heap.fields[static_cast<std::size_t>(l)]) {
      if (t != kNull && !reachable[static_cast<std::size_t>(t)]) {
        reachable[static_cast<std::size_t>(t)] = true;
        work.push_back(t);
      }
    }
  }

  std::map<std::pair<Symbol, LocId>, int> refs;  // (sel, target) -> count
  for (std::size_t l = 0; l < heap.fields.size(); ++l) {
    if (!reachable[l]) continue;
    for (const auto& [sel, t] : heap.fields[l]) {
      if (t != kNull && reachable[static_cast<std::size_t>(t)]) {
        ++refs[{sel, t}];
      }
    }
  }
  std::set<std::pair<lang::StructId, Symbol>> out;
  for (const auto& [key, count] : refs) {
    if (count >= 2) {
      out.insert({heap.type_of[static_cast<std::size_t>(key.second)],
                  key.first});
    }
  }
  return out;
}

/// Sweep `seeds` concrete executions and EXPECT the exit RSRSG to cover
/// every completed one. Returns how many final stores were checked (callers
/// usually EXPECT_GT(.., 0) so the sweep exercised something).
inline int expect_covers_concrete(const analysis::ProgramAnalysis& program,
                                  const analysis::Rsrsg& at_exit,
                                  unsigned seeds, int max_steps = 4000) {
  int checked = 0;
  for (unsigned seed = 0; seed < seeds; ++seed) {
    const ConcreteOutcome outcome = run_concrete(program, seed, max_steps);
    if (!outcome.completed) continue;
    ++checked;

    EXPECT_TRUE(alias_pattern_covered(program, at_exit, outcome.heap))
        << "seed " << seed << ": concrete alias/null pattern not covered";

    for (const auto& [type, sel] : concrete_shsel(outcome.heap)) {
      const auto& decl = program.unit.types.struct_decl(type);
      const std::string struct_name{program.interner().spelling(decl.name)};
      const std::string sel_name{program.interner().spelling(sel)};
      EXPECT_TRUE(client::may_be_shared_via(program, at_exit, struct_name,
                                            sel_name))
          << "seed " << seed << ": concrete double reference via "
          << struct_name << "." << sel_name << " but the analysis proves it "
          << "unshared (UNSOUND)";
    }
  }
  return checked;
}

}  // namespace psa::oracle
