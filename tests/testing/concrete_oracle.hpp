// The concrete-interpreter soundness oracle, shared between the integration
// soundness sweep and the governor fault-injection suite.
//
// Executes the lowered CFG on a *real* heap (branch outcomes chosen
// randomly, loops bounded by a step budget), observes the concrete final
// store, and checks that an abstract exit RSRSG covers it:
//
//   1. some member graph matches the concrete pvar null-ness and aliasing,
//   2. a location concretely referenced twice via one selector implies the
//      abstract state admits SHSEL for that struct/selector.
//
// Any violation is an unsound "definitely not" claim by the analysis. The
// checks only ever demand over-approximation, so they apply unchanged to
// degraded (coarsened) results — that is the governor's whole contract.
#pragma once

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis/analyzer.hpp"
#include "client/queries.hpp"

namespace psa::oracle {

using support::Symbol;

// ---------------------------------------------------------------------------
// A concrete heap and interpreter for the lowered CFG.
// ---------------------------------------------------------------------------

using LocId = int;
constexpr LocId kNull = -1;

struct ConcreteHeap {
  // location -> selector -> location.
  std::vector<std::map<Symbol, LocId>> fields;
  std::vector<lang::StructId> type_of;
  std::map<Symbol, LocId> env;  // pvar bindings (absent/kNull = NULL)
  std::set<LocId> freed;        // locations passed to free()

  LocId alloc(lang::StructId type) {
    fields.emplace_back();
    type_of.push_back(type);
    return static_cast<LocId>(fields.size() - 1);
  }
  LocId get(Symbol pvar) const {
    auto it = env.find(pvar);
    return it == env.end() ? kNull : it->second;
  }
};

struct ConcreteOutcome {
  ConcreteHeap heap;
  bool completed = false;  // reached the CFG exit without a null dereference
  // Source lines where this execution concretely misbehaved. These are
  // ground truth for the checker soundness tests: every line recorded here
  // must carry the matching checker finding (the events are real even when
  // the run was later cut off by the step budget).
  std::set<std::uint32_t> null_deref_lines;
  std::set<std::uint32_t> uaf_lines;          // dereference of freed memory
  std::set<std::uint32_t> double_free_lines;  // re-free of freed memory
};

/// Run the lowered program concretely; opaque branches flip a coin, NULL
/// tests follow the heap. Loops terminate via the step budget (a cut-off
/// run is discarded: it reached no final store).
inline ConcreteOutcome run_concrete(const analysis::ProgramAnalysis& program,
                                    unsigned seed, int max_steps = 4000) {
  std::mt19937 rng(seed);
  ConcreteOutcome out;
  ConcreteHeap& heap = out.heap;

  cfg::NodeId at = program.cfg.entry();
  for (int step = 0; step < max_steps; ++step) {
    if (at == program.cfg.exit()) {
      out.completed = true;
      return out;
    }
    const auto& node = program.cfg.node(at);
    const auto& s = node.stmt;
    switch (s.op) {
      case cfg::SimpleOp::kPtrNull:
        heap.env.erase(s.x);
        break;
      case cfg::SimpleOp::kPtrMalloc:
        heap.env[s.x] = heap.alloc(s.type);
        break;
      case cfg::SimpleOp::kPtrCopy: {
        const LocId v = heap.get(s.y);
        if (v == kNull) {
          heap.env.erase(s.x);
        } else {
          heap.env[s.x] = v;
        }
        break;
      }
      case cfg::SimpleOp::kLoad: {
        const LocId base = heap.get(s.y);
        if (base == kNull) {  // null dereference: no final store
          if (s.loc.valid()) out.null_deref_lines.insert(s.loc.line);
          return out;
        }
        if (heap.freed.contains(base) && s.loc.valid())
          out.uaf_lines.insert(s.loc.line);
        const auto it =
            heap.fields[static_cast<std::size_t>(base)].find(s.sel);
        const LocId v =
            it == heap.fields[static_cast<std::size_t>(base)].end()
                ? kNull
                : it->second;
        if (v == kNull) {
          heap.env.erase(s.x);
        } else {
          heap.env[s.x] = v;
        }
        break;
      }
      case cfg::SimpleOp::kStore:
      case cfg::SimpleOp::kStoreNull: {
        const LocId base = heap.get(s.x);
        if (base == kNull) {
          if (s.loc.valid()) out.null_deref_lines.insert(s.loc.line);
          return out;
        }
        if (heap.freed.contains(base) && s.loc.valid())
          out.uaf_lines.insert(s.loc.line);
        const LocId v =
            s.op == cfg::SimpleOp::kStore ? heap.get(s.y) : kNull;
        if (v == kNull) {
          heap.fields[static_cast<std::size_t>(base)].erase(s.sel);
        } else {
          heap.fields[static_cast<std::size_t>(base)][s.sel] = v;
        }
        break;
      }
      case cfg::SimpleOp::kFree: {
        const LocId v = heap.get(s.x);
        if (v == kNull) break;  // free(NULL) is well-defined
        if (!heap.freed.insert(v).second && s.loc.valid())
          out.double_free_lines.insert(s.loc.line);
        // The binding survives (dangles), matching the abstract semantics.
        break;
      }
      case cfg::SimpleOp::kFieldRead:
      case cfg::SimpleOp::kFieldWrite: {
        // Scalar-field access still dereferences the base pointer.
        const LocId base = heap.get(s.x);
        if (base == kNull) {
          if (s.loc.valid()) out.null_deref_lines.insert(s.loc.line);
          return out;
        }
        if (heap.freed.contains(base) && s.loc.valid())
          out.uaf_lines.insert(s.loc.line);
        break;
      }
      case cfg::SimpleOp::kScalar:
      case cfg::SimpleOp::kTouchClear:
      case cfg::SimpleOp::kNop:
        break;
      case cfg::SimpleOp::kHavoc: {
        // Code the frontend could not model ran here (salvage mode). The
        // interpreter plays the adversary inside the documented envelope
        // (docs/RESILIENCE.md): the unknown code sees only what escaped to
        // it, so it may rewrite reachable pointer fields and produce NULL,
        // fresh memory, or any reachable cell — but it never frees and
        // never rebinds the caller's variables (C is pass-by-value).
        std::vector<bool> reachable(heap.fields.size(), false);
        {
          std::vector<LocId> work;
          for (const auto& [pvar, loc] : heap.env) {
            if (loc != kNull && !reachable[static_cast<std::size_t>(loc)]) {
              reachable[static_cast<std::size_t>(loc)] = true;
              work.push_back(loc);
            }
          }
          while (!work.empty()) {
            const LocId l = work.back();
            work.pop_back();
            for (const auto& [sel, t] :
                 heap.fields[static_cast<std::size_t>(l)]) {
              if (t != kNull && !reachable[static_cast<std::size_t>(t)]) {
                reachable[static_cast<std::size_t>(t)] = true;
                work.push_back(t);
              }
            }
          }
        }
        if (s.x.valid()) {
          // havoc(x, T): rebind x to NULL, a fresh cell, or any reachable
          // non-freed cell of type T.
          std::vector<LocId> candidates;
          for (std::size_t l = 0; l < heap.fields.size(); ++l) {
            if (reachable[l] && heap.type_of[l] == s.type &&
                !heap.freed.contains(static_cast<LocId>(l))) {
              candidates.push_back(static_cast<LocId>(l));
            }
          }
          const std::size_t pick = rng() % (candidates.size() + 2);
          if (pick == 0) {
            heap.env.erase(s.x);
          } else if (pick == 1) {
            heap.env[s.x] = heap.alloc(s.type);
          } else {
            heap.env[s.x] = candidates[pick - 2];
          }
        } else {
          // havoc(*): rewrite a random subset of reachable pointer fields
          // to NULL or a type-correct reachable cell.
          for (std::size_t l = 0; l < heap.fields.size(); ++l) {
            if (!reachable[l]) continue;
            const lang::StructDecl& decl =
                program.unit.types.struct_decl(heap.type_of[l]);
            for (const lang::Field& f : decl.fields) {
              if (!f.is_selector()) continue;
              if (rng() % 2 == 0) continue;  // this field survives unchanged
              std::vector<LocId> targets;
              for (std::size_t t = 0; t < heap.fields.size(); ++t) {
                if (reachable[t] && heap.type_of[t] == *f.type.struct_id &&
                    !heap.freed.contains(static_cast<LocId>(t))) {
                  targets.push_back(static_cast<LocId>(t));
                }
              }
              const std::size_t pick = rng() % (targets.size() + 1);
              if (pick == 0) {
                heap.fields[l].erase(f.name);
              } else {
                heap.fields[l][f.name] = targets[pick - 1];
              }
            }
          }
        }
        break;
      }
      case cfg::SimpleOp::kBranch: {
        // Choose a successor whose assume (if any) is satisfied.
        std::vector<cfg::NodeId> viable;
        for (const cfg::NodeId succ : node.succs) {
          const auto& arm = program.cfg.node(succ).stmt;
          if (arm.op == cfg::SimpleOp::kAssumeNull &&
              heap.get(arm.x) != kNull) {
            continue;
          }
          if (arm.op == cfg::SimpleOp::kAssumeNotNull &&
              heap.get(arm.x) == kNull) {
            continue;
          }
          viable.push_back(succ);
        }
        if (viable.empty()) return out;  // should not happen
        at = viable[rng() % viable.size()];
        continue;
      }
      case cfg::SimpleOp::kAssumeNull:
      case cfg::SimpleOp::kAssumeNotNull:
        // Reached only through a viable branch arm: already satisfied.
        break;
    }
    if (node.succs.empty()) break;
    at = node.succs[node.succs.size() == 1 ? 0 : rng() % node.succs.size()];
  }
  return out;  // budget exhausted mid-run: no final store to check
}

// ---------------------------------------------------------------------------
// Coverage checks
// ---------------------------------------------------------------------------

/// Does some abstract exit graph match the concrete null-ness and aliasing?
inline bool alias_pattern_covered(const analysis::ProgramAnalysis& program,
                                  const analysis::Rsrsg& at_exit,
                                  const ConcreteHeap& heap) {
  for (const rsg::Rsg& g : at_exit.graphs()) {
    bool ok = true;
    for (const Symbol p : program.cfg.pointer_vars()) {
      const bool concrete_bound = heap.get(p) != kNull;
      const bool abstract_bound = g.pvar_target(p) != rsg::kNoNode;
      if (concrete_bound != abstract_bound) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    for (const Symbol p : program.cfg.pointer_vars()) {
      for (const Symbol q : program.cfg.pointer_vars()) {
        if (!(p < q) || heap.get(p) == kNull || heap.get(q) == kNull) continue;
        const bool concrete_alias = heap.get(p) == heap.get(q);
        const bool abstract_alias = g.pvar_target(p) == g.pvar_target(q);
        if (concrete_alias != abstract_alias) {
          ok = false;
          break;
        }
      }
      if (!ok) break;
    }
    if (ok) return true;
  }
  return false;
}

/// Concrete (struct, selector) pairs where some location is referenced
/// twice via that selector — restricted to locations reachable from pvars
/// (the abstraction only tracks reachable memory).
inline std::set<std::pair<lang::StructId, Symbol>> concrete_shsel(
    const ConcreteHeap& heap) {
  // Reachability from the environment.
  std::vector<bool> reachable(heap.fields.size(), false);
  std::vector<LocId> work;
  for (const auto& [pvar, loc] : heap.env) {
    if (loc != kNull && !reachable[static_cast<std::size_t>(loc)]) {
      reachable[static_cast<std::size_t>(loc)] = true;
      work.push_back(loc);
    }
  }
  while (!work.empty()) {
    const LocId l = work.back();
    work.pop_back();
    for (const auto& [sel, t] : heap.fields[static_cast<std::size_t>(l)]) {
      if (t != kNull && !reachable[static_cast<std::size_t>(t)]) {
        reachable[static_cast<std::size_t>(t)] = true;
        work.push_back(t);
      }
    }
  }

  std::map<std::pair<Symbol, LocId>, int> refs;  // (sel, target) -> count
  for (std::size_t l = 0; l < heap.fields.size(); ++l) {
    if (!reachable[l]) continue;
    for (const auto& [sel, t] : heap.fields[l]) {
      if (t != kNull && reachable[static_cast<std::size_t>(t)]) {
        ++refs[{sel, t}];
      }
    }
  }
  std::set<std::pair<lang::StructId, Symbol>> out;
  for (const auto& [key, count] : refs) {
    if (count >= 2) {
      out.insert({heap.type_of[static_cast<std::size_t>(key.second)],
                  key.first});
    }
  }
  return out;
}

/// Sweep `seeds` concrete executions and EXPECT the exit RSRSG to cover
/// every completed one. Returns how many final stores were checked (callers
/// usually EXPECT_GT(.., 0) so the sweep exercised something).
inline int expect_covers_concrete(const analysis::ProgramAnalysis& program,
                                  const analysis::Rsrsg& at_exit,
                                  unsigned seeds, int max_steps = 4000) {
  int checked = 0;
  for (unsigned seed = 0; seed < seeds; ++seed) {
    const ConcreteOutcome outcome = run_concrete(program, seed, max_steps);
    if (!outcome.completed) continue;
    ++checked;

    EXPECT_TRUE(alias_pattern_covered(program, at_exit, outcome.heap))
        << "seed " << seed << ": concrete alias/null pattern not covered";

    for (const auto& [type, sel] : concrete_shsel(outcome.heap)) {
      const auto& decl = program.unit.types.struct_decl(type);
      const std::string struct_name{program.interner().spelling(decl.name)};
      const std::string sel_name{program.interner().spelling(sel)};
      EXPECT_TRUE(client::may_be_shared_via(program, at_exit, struct_name,
                                            sel_name))
          << "seed " << seed << ": concrete double reference via "
          << struct_name << "." << sel_name << " but the analysis proves it "
          << "unshared (UNSOUND)";
    }
  }
  return checked;
}

}  // namespace psa::oracle
