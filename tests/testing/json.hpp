// A minimal validating RFC 8259 JSON parser for tests — the repo
// deliberately has no JSON dependency. Two layers:
//
//  * JsonParser: pure syntax validation (is this text well-formed JSON?),
//    originally written for the SARIF output tests.
//  * parse_json/JsonValue: a tiny DOM on top of the same grammar, enough
//    for the metrics tests to read back JSONL records (objects, arrays,
//    strings, numbers, bools, null) and assert on field values.
//
// Numbers are held as double, which is exact for the integer counters the
// metrics tests compare (all well below 2^53).
#pragma once

#include <cctype>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace psa::testing {

// --- syntax-only validation -------------------------------------------------

struct JsonParser {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(
                                    text[pos]))) {
      ++pos;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool parse_string() {
    skip_ws();
    if (pos >= text.size() || text[pos] != '"') return false;
    ++pos;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') {
        ++pos;
        if (pos >= text.size()) return false;
        const char e = text[pos];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos;
            if (pos >= text.size() ||
                !std::isxdigit(static_cast<unsigned char>(text[pos]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(text[pos]) < 0x20) {
        return false;  // raw control character: invalid JSON
      }
      ++pos;
    }
    return eat('"');
  }
  bool parse_number() {
    skip_ws();
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    return pos > start;
  }
  bool parse_value() {  // NOLINT(misc-no-recursion)
    skip_ws();
    if (pos >= text.size()) return false;
    const char c = text[pos];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (text.substr(pos, 4) == "true") { pos += 4; return true; }
    if (text.substr(pos, 5) == "false") { pos += 5; return true; }
    if (text.substr(pos, 4) == "null") { pos += 4; return true; }
    return parse_number();
  }
  bool parse_object() {  // NOLINT(misc-no-recursion)
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    do {
      if (!parse_string() || !eat(':') || !parse_value()) return false;
    } while (eat(','));
    return eat('}');
  }
  bool parse_array() {  // NOLINT(misc-no-recursion)
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    do {
      if (!parse_value()) return false;
    } while (eat(','));
    return eat(']');
  }
  bool parse_document() {
    const bool ok = parse_value();
    skip_ws();
    return ok && pos == text.size();
  }
};

// --- a tiny DOM -------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  /// Object member or nullptr.
  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
  /// Member's number, or `fallback` when absent / not a number.
  [[nodiscard]] double num(const std::string& key, double fallback = -1) const {
    const JsonValue* v = find(key);
    return (v != nullptr && v->kind == Kind::kNumber) ? v->number : fallback;
  }
  /// Member's string, or "" when absent / not a string.
  [[nodiscard]] std::string str(const std::string& key) const {
    const JsonValue* v = find(key);
    return (v != nullptr && v->kind == Kind::kString) ? v->string : "";
  }
};

namespace json_detail {

struct DomParser {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(
                                    text[pos]))) {
      ++pos;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  std::optional<std::string> parse_string() {
    skip_ws();
    if (pos >= text.size() || text[pos] != '"') return std::nullopt;
    ++pos;
    std::string out;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') {
        ++pos;
        if (pos >= text.size()) return std::nullopt;
        switch (text[pos]) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              ++pos;
              if (pos >= text.size() ||
                  !std::isxdigit(static_cast<unsigned char>(text[pos]))) {
                return std::nullopt;
              }
              const char h = text[pos];
              code = code * 16 +
                     static_cast<unsigned>(
                         h <= '9' ? h - '0'
                                  : (std::tolower(h) - 'a' + 10));
            }
            // Tests only round-trip ASCII escapes; anything else keeps a
            // replacement byte so lengths stay sane.
            out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default: return std::nullopt;
        }
      } else if (static_cast<unsigned char>(text[pos]) < 0x20) {
        return std::nullopt;
      } else {
        out += text[pos];
      }
      ++pos;
    }
    if (!eat('"')) return std::nullopt;
    return out;
  }
  std::optional<JsonValue> parse_value() {  // NOLINT(misc-no-recursion)
    skip_ws();
    if (pos >= text.size()) return std::nullopt;
    JsonValue v;
    const char c = text[pos];
    if (c == '{') {
      if (!eat('{')) return std::nullopt;
      v.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (eat('}')) return v;
      do {
        auto key = parse_string();
        if (!key || !eat(':')) return std::nullopt;
        auto member = parse_value();
        if (!member) return std::nullopt;
        v.object.emplace(std::move(*key), std::move(*member));
      } while (eat(','));
      if (!eat('}')) return std::nullopt;
      return v;
    }
    if (c == '[') {
      if (!eat('[')) return std::nullopt;
      v.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (eat(']')) return v;
      do {
        auto member = parse_value();
        if (!member) return std::nullopt;
        v.array.push_back(std::move(*member));
      } while (eat(','));
      if (!eat(']')) return std::nullopt;
      return v;
    }
    if (c == '"') {
      auto s = parse_string();
      if (!s) return std::nullopt;
      v.kind = JsonValue::Kind::kString;
      v.string = std::move(*s);
      return v;
    }
    if (text.substr(pos, 4) == "true") {
      pos += 4;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (text.substr(pos, 5) == "false") {
      pos += 5;
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (text.substr(pos, 4) == "null") {
      pos += 4;
      return v;
    }
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) return std::nullopt;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(std::string(text.substr(start, pos - start)));
    return v;
  }
};

}  // namespace json_detail

/// Parse one JSON document (must consume the whole text, trailing
/// whitespace allowed). nullopt on any syntax error.
inline std::optional<JsonValue> parse_json(std::string_view text) {
  json_detail::DomParser p{text};
  auto v = p.parse_value();
  if (!v) return std::nullopt;
  p.skip_ws();
  if (p.pos != text.size()) return std::nullopt;
  return v;
}

}  // namespace psa::testing
