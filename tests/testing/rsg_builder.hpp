// Shared test helper: build hand-crafted RSGs with named pvars/selectors.
#pragma once

#include <memory>
#include <string_view>

#include "rsg/ops.hpp"
#include "rsg/rsg.hpp"
#include "support/interner.hpp"

namespace psa::testing {

using rsg::Cardinality;
using rsg::NodeProps;
using rsg::NodeRef;
using rsg::Rsg;
using support::Symbol;

/// Fluent helper around an Rsg plus an interner.
class RsgBuilder {
 public:
  RsgBuilder() : interner_(std::make_shared<support::Interner>()) {}
  explicit RsgBuilder(std::shared_ptr<support::Interner> interner)
      : interner_(std::move(interner)) {}

  [[nodiscard]] Symbol sym(std::string_view name) {
    return interner_->intern(name);
  }
  [[nodiscard]] const support::Interner& interner() const { return *interner_; }
  [[nodiscard]] std::shared_ptr<support::Interner> interner_ptr() const {
    return interner_;
  }

  /// Add a node of struct type id `type` (default 0).
  NodeRef node(Cardinality card = Cardinality::kOne, std::uint32_t type = 0) {
    NodeProps p;
    p.type = static_cast<lang::StructId>(type);
    p.cardinality = card;
    return g.add_node(std::move(p));
  }

  RsgBuilder& pvar(std::string_view name, NodeRef n) {
    g.bind_pvar(sym(name), n);
    return *this;
  }

  RsgBuilder& link(NodeRef from, std::string_view sel, NodeRef to) {
    g.add_link(from, sym(sel), to);
    return *this;
  }

  /// Mark sel as a definite out-selector of n (paired with link()).
  RsgBuilder& selout(NodeRef n, std::string_view sel) {
    g.props(n).selout.insert(sym(sel));
    return *this;
  }
  RsgBuilder& selin(NodeRef n, std::string_view sel) {
    g.props(n).selin.insert(sym(sel));
    return *this;
  }
  RsgBuilder& pos_selout(NodeRef n, std::string_view sel) {
    g.props(n).pos_selout.insert(sym(sel));
    return *this;
  }
  RsgBuilder& pos_selin(NodeRef n, std::string_view sel) {
    g.props(n).pos_selin.insert(sym(sel));
    return *this;
  }
  RsgBuilder& cyclelink(NodeRef n, std::string_view out, std::string_view back) {
    g.props(n).cyclelinks.insert(rsg::SelPair{sym(out), sym(back)});
    return *this;
  }
  RsgBuilder& shared(NodeRef n, bool value = true) {
    g.props(n).shared = value;
    return *this;
  }
  RsgBuilder& shsel(NodeRef n, std::string_view sel) {
    g.props(n).shsel.insert(sym(sel));
    return *this;
  }
  RsgBuilder& touch(NodeRef n, std::string_view pvar_name) {
    g.props(n).touch.insert(sym(pvar_name));
    return *this;
  }

  Rsg g;

 private:
  std::shared_ptr<support::Interner> interner_;
};

/// The doubly-linked list RSG of the paper's Fig. 1 (a): x -> n1, summary
/// middle n2, last n3, nxt/prv with full cycle links.
struct Fig1Dll {
  RsgBuilder b;
  NodeRef n1, n2, n3;
  Symbol x, nxt, prv;

  Fig1Dll() {
    x = b.sym("x");
    nxt = b.sym("nxt");
    prv = b.sym("prv");
    n1 = b.node(Cardinality::kOne);
    n2 = b.node(Cardinality::kMany);
    n3 = b.node(Cardinality::kOne);
    b.pvar("x", n1);
    // Links: n1 -nxt-> {n2, n3}, n2 -nxt-> {n2, n3}; prv mirrors backwards,
    // including the spurious candidates that PRUNE must remove after
    // division (n3 -prv-> n1 etc. stay legitimate in the undivided graph).
    b.link(n1, "nxt", n2).link(n1, "nxt", n3);
    b.link(n2, "nxt", n2).link(n2, "nxt", n3);
    b.link(n2, "prv", n1).link(n2, "prv", n2);
    b.link(n3, "prv", n1).link(n3, "prv", n2);
    // Reference patterns: first element has no prv-in; every element except
    // the first is nxt-referenced; nxt is definite out except on the last.
    b.selout(n1, "nxt");
    b.selin(n2, "nxt").selout(n2, "nxt").selout(n2, "prv").selin(n2, "prv");
    b.selin(n3, "nxt").selout(n3, "prv");
    b.selin(n1, "prv");
    // Cycle links: following nxt then prv (or prv then nxt) returns.
    b.cyclelink(n1, "nxt", "prv");
    b.cyclelink(n2, "nxt", "prv").cyclelink(n2, "prv", "nxt");
    b.cyclelink(n3, "prv", "nxt");
    // Sharing: every node referenced at most once per selector, but middles
    // are referenced twice in total (prev's nxt + next's prv).
    b.shared(n2).shared(n3);
  }
};

}  // namespace psa::testing
