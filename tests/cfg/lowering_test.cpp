// Lowering of C statements onto the paper's six simple instructions.
#include <gtest/gtest.h>

#include "cfg/cfg.hpp"
#include "lang/parser.hpp"
#include "lang/sema.hpp"

namespace psa::cfg {
namespace {

struct Lowered {
  lang::TranslationUnit unit;
  lang::SemaResult sema;
  Cfg cfg;
};

Lowered lower(std::string_view src) {
  support::DiagnosticEngine diags;
  Lowered out;
  out.unit = lang::parse_source(src, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.to_string();
  out.sema = lang::analyze(out.unit, diags);
  EXPECT_FALSE(diags.has_errors()) << diags.to_string();
  out.cfg = build_cfg(out.unit, out.sema.functions.at(0), diags);
  EXPECT_FALSE(diags.has_errors()) << diags.to_string();
  return out;
}

std::vector<SimpleOp> pointer_ops(const Cfg& cfg) {
  std::vector<SimpleOp> ops;
  for (const CfgNode& n : cfg.nodes()) {
    if (n.stmt.is_pointer_op()) ops.push_back(n.stmt.op);
  }
  return ops;
}

int count_op(const Cfg& cfg, SimpleOp op) {
  int n = 0;
  for (const CfgNode& node : cfg.nodes()) n += node.stmt.op == op ? 1 : 0;
  return n;
}

constexpr std::string_view kPrelude =
    "struct node { struct node *nxt; struct node *prv; int val; };\n";

TEST(LoweringTest, PtrNull) {
  const Lowered l = lower(std::string(kPrelude) +
                          "void main() { struct node *p; p = NULL; }");
  // The declaration emits the initial kill, then the explicit p = NULL.
  EXPECT_EQ(pointer_ops(l.cfg),
            (std::vector<SimpleOp>{SimpleOp::kPtrNull, SimpleOp::kPtrNull}));
}

TEST(LoweringTest, PtrMallocForms) {
  const Lowered l = lower(std::string(kPrelude) + R"(
    void main() {
      struct node *a;
      a = malloc(struct node);
      a = malloc(sizeof(struct node));
      a = (struct node*) malloc(sizeof(struct node));
    }
  )");
  EXPECT_EQ(count_op(l.cfg, SimpleOp::kPtrMalloc), 3);
}

TEST(LoweringTest, PtrCopy) {
  const Lowered l = lower(std::string(kPrelude) + R"(
    void main() {
      struct node *a; struct node *b;
      a = malloc(struct node);
      b = a;
    }
  )");
  EXPECT_EQ(count_op(l.cfg, SimpleOp::kPtrCopy), 1);
}

TEST(LoweringTest, StoreAndStoreNull) {
  const Lowered l = lower(std::string(kPrelude) + R"(
    void main() {
      struct node *a; struct node *b;
      a = malloc(struct node);
      b = malloc(struct node);
      a->nxt = b;
      a->prv = NULL;
    }
  )");
  EXPECT_EQ(count_op(l.cfg, SimpleOp::kStore), 1);
  EXPECT_EQ(count_op(l.cfg, SimpleOp::kStoreNull), 1);
}

TEST(LoweringTest, LoadSimple) {
  const Lowered l = lower(std::string(kPrelude) + R"(
    void main() {
      struct node *a; struct node *b;
      a = malloc(struct node);
      b = a->nxt;
    }
  )");
  EXPECT_EQ(count_op(l.cfg, SimpleOp::kLoad), 1);
}

TEST(LoweringTest, ChainedLoadUsesTemporaries) {
  // b = a->nxt->nxt must become __t = a->nxt; b = __t->nxt; __t = NULL.
  const Lowered l = lower(std::string(kPrelude) + R"(
    void main() {
      struct node *a; struct node *b;
      a = malloc(struct node);
      b = a->nxt->nxt;
    }
  )");
  EXPECT_EQ(count_op(l.cfg, SimpleOp::kLoad), 2);
  bool has_temp = false;
  for (const auto s : l.cfg.pointer_vars()) {
    if (std::string_view(l.unit.interner->spelling(s)).starts_with("__t"))
      has_temp = true;
  }
  EXPECT_TRUE(has_temp);
}

TEST(LoweringTest, ChainedStoreBaseUsesTemporaries) {
  // a->nxt->prv = a becomes __t = a->nxt; __t->prv = a; __t = NULL.
  const Lowered l = lower(std::string(kPrelude) + R"(
    void main() {
      struct node *a;
      a = malloc(struct node);
      a->nxt->prv = a;
    }
  )");
  EXPECT_EQ(count_op(l.cfg, SimpleOp::kLoad), 1);
  EXPECT_EQ(count_op(l.cfg, SimpleOp::kStore), 1);
}

TEST(LoweringTest, TempsAreKilledAfterUse) {
  const Lowered l = lower(std::string(kPrelude) + R"(
    void main() {
      struct node *a; struct node *b;
      a = malloc(struct node);
      b = a->nxt->nxt;
    }
  )");
  const Symbol t0 = l.unit.interner->lookup("__t0");
  ASSERT_TRUE(t0.valid());
  bool killed = false;
  for (const CfgNode& n : l.cfg.nodes()) {
    if (n.stmt.op == SimpleOp::kPtrNull && n.stmt.x == t0) killed = true;
  }
  EXPECT_TRUE(killed);
}

TEST(LoweringTest, ScalarFieldAccessYieldsFieldOps) {
  const Lowered l = lower(std::string(kPrelude) + R"(
    void main() {
      struct node *a; int x;
      a = malloc(struct node);
      a->val = 5;
      x = a->val;
    }
  )");
  EXPECT_EQ(count_op(l.cfg, SimpleOp::kFieldWrite), 1);
  EXPECT_EQ(count_op(l.cfg, SimpleOp::kFieldRead), 1);
}

TEST(LoweringTest, PureScalarAssignIsOpaque) {
  const Lowered l = lower("void main() { int i; i = 0; i = i + 1; }");
  EXPECT_EQ(count_op(l.cfg, SimpleOp::kScalar), 2);
  EXPECT_TRUE(pointer_ops(l.cfg).empty());
}

TEST(LoweringTest, NullTestProducesAssumes) {
  const Lowered l = lower(std::string(kPrelude) + R"(
    void main() {
      struct node *p;
      p = malloc(struct node);
      while (p != NULL) { p = p->nxt; }
    }
  )");
  EXPECT_EQ(count_op(l.cfg, SimpleOp::kAssumeNotNull), 1);
  EXPECT_EQ(count_op(l.cfg, SimpleOp::kAssumeNull), 1);
  EXPECT_EQ(count_op(l.cfg, SimpleOp::kBranch), 1);
}

TEST(LoweringTest, FieldNullTestLoadsIntoTemp) {
  const Lowered l = lower(std::string(kPrelude) + R"(
    void main() {
      struct node *p;
      p = malloc(struct node);
      if (p->nxt == NULL) { p = NULL; }
    }
  )");
  EXPECT_EQ(count_op(l.cfg, SimpleOp::kLoad), 1);
  EXPECT_EQ(count_op(l.cfg, SimpleOp::kAssumeNull), 1);
}

TEST(LoweringTest, OpaqueConditionHasNoAssumes) {
  const Lowered l = lower("void main() { int i; i = 0; if (i < 3) { i = 1; } }");
  EXPECT_EQ(count_op(l.cfg, SimpleOp::kAssumeNull), 0);
  EXPECT_EQ(count_op(l.cfg, SimpleOp::kAssumeNotNull), 0);
  EXPECT_EQ(count_op(l.cfg, SimpleOp::kBranch), 1);
}

TEST(LoweringTest, BarePointerConditionTestsNull) {
  const Lowered l = lower(std::string(kPrelude) + R"(
    void main() {
      struct node *p;
      p = NULL;
      if (p) { p = NULL; } else { p = malloc(struct node); }
    }
  )");
  EXPECT_EQ(count_op(l.cfg, SimpleOp::kAssumeNull), 1);
  EXPECT_EQ(count_op(l.cfg, SimpleOp::kAssumeNotNull), 1);
}

TEST(LoweringTest, FreeLowersToFreeOp) {
  const Lowered l = lower(std::string(kPrelude) + R"(
    void main() {
      struct node *p;
      p = malloc(struct node);
      free(p);
    }
  )");
  EXPECT_EQ(count_op(l.cfg, SimpleOp::kFree), 1);
}

TEST(LoweringTest, EveryLoopGetsTouchClear) {
  const Lowered l = lower(std::string(kPrelude) + R"(
    void main() {
      struct node *p; int i;
      p = NULL;
      while (p != NULL) { p = p->nxt; }
      for (i = 0; i < 3; i++) { }
      do { i = 1; } while (i < 2);
    }
  )");
  EXPECT_EQ(count_op(l.cfg, SimpleOp::kTouchClear), 3);
  EXPECT_EQ(l.cfg.loop_scopes().size(), 3u);
}

TEST(LoweringTest, UninitializedPointerDeclIsKilled) {
  const Lowered l =
      lower(std::string(kPrelude) + "void main() { struct node *p; }");
  EXPECT_EQ(count_op(l.cfg, SimpleOp::kPtrNull), 1);
}

TEST(LoweringTest, DeclWithInitializerLowersAsAssignment) {
  const Lowered l = lower(std::string(kPrelude) + R"(
    void main() { struct node *p = malloc(struct node); }
  )");
  EXPECT_EQ(count_op(l.cfg, SimpleOp::kPtrMalloc), 1);
}

TEST(LoweringTest, PvarStructTypesRecorded) {
  const Lowered l = lower(std::string(kPrelude) + R"(
    void main() { struct node *p; p = NULL; }
  )");
  const Symbol p = l.unit.interner->lookup("p");
  ASSERT_TRUE(l.cfg.pvar_struct().count(p));
}

}  // namespace
}  // namespace psa::cfg
