// SimpleStmt rendering and classification.
#include "cfg/simple_stmt.hpp"

#include <gtest/gtest.h>

namespace psa::cfg {
namespace {

struct Fixture {
  support::Interner interner;
  Symbol x = interner.intern("x");
  Symbol y = interner.intern("y");
  Symbol nxt = interner.intern("nxt");

  SimpleStmt make(SimpleOp op) {
    SimpleStmt s;
    s.op = op;
    s.x = x;
    s.y = y;
    s.sel = nxt;
    s.loop_id = 7;
    return s;
  }
};

TEST(SimpleStmtTest, PointerOpsClassified) {
  Fixture f;
  for (const auto op : {SimpleOp::kPtrNull, SimpleOp::kPtrMalloc,
                        SimpleOp::kPtrCopy, SimpleOp::kStoreNull,
                        SimpleOp::kStore, SimpleOp::kLoad}) {
    EXPECT_TRUE(f.make(op).is_pointer_op());
  }
  for (const auto op :
       {SimpleOp::kFree, SimpleOp::kScalar, SimpleOp::kBranch,
        SimpleOp::kAssumeNull, SimpleOp::kAssumeNotNull, SimpleOp::kTouchClear,
        SimpleOp::kNop, SimpleOp::kFieldRead, SimpleOp::kFieldWrite}) {
    EXPECT_FALSE(f.make(op).is_pointer_op());
  }
}

TEST(SimpleStmtTest, RendersTheSixStatements) {
  Fixture f;
  EXPECT_EQ(to_string(f.make(SimpleOp::kPtrNull), f.interner), "x = NULL");
  EXPECT_EQ(to_string(f.make(SimpleOp::kPtrMalloc), f.interner), "x = malloc");
  EXPECT_EQ(to_string(f.make(SimpleOp::kPtrCopy), f.interner), "x = y");
  EXPECT_EQ(to_string(f.make(SimpleOp::kStoreNull), f.interner),
            "x->nxt = NULL");
  EXPECT_EQ(to_string(f.make(SimpleOp::kStore), f.interner), "x->nxt = y");
  EXPECT_EQ(to_string(f.make(SimpleOp::kLoad), f.interner), "x = y->nxt");
}

TEST(SimpleStmtTest, RendersBookkeeping) {
  Fixture f;
  EXPECT_EQ(to_string(f.make(SimpleOp::kFree), f.interner), "free(x)");
  EXPECT_EQ(to_string(f.make(SimpleOp::kAssumeNull), f.interner),
            "assume(x == NULL)");
  EXPECT_EQ(to_string(f.make(SimpleOp::kAssumeNotNull), f.interner),
            "assume(x != NULL)");
  EXPECT_EQ(to_string(f.make(SimpleOp::kTouchClear), f.interner),
            "<touch-clear loop 7>");
  EXPECT_EQ(to_string(f.make(SimpleOp::kFieldRead), f.interner),
            "<read x->nxt>");
  EXPECT_EQ(to_string(f.make(SimpleOp::kFieldWrite), f.interner),
            "<write x->nxt>");
  EXPECT_EQ(to_string(f.make(SimpleOp::kScalar), f.interner), "<scalar>");
  EXPECT_EQ(to_string(f.make(SimpleOp::kBranch), f.interner), "<branch>");
  EXPECT_EQ(to_string(f.make(SimpleOp::kNop), f.interner), "<nop>");
}

}  // namespace
}  // namespace psa::cfg
