// Induction-pvar detection (the paper's §3 preprocessing pass).
#include <gtest/gtest.h>

#include "cfg/cfg.hpp"
#include "cfg/induction.hpp"
#include "lang/parser.hpp"
#include "lang/sema.hpp"

namespace psa::cfg {
namespace {

struct Built {
  lang::TranslationUnit unit;
  lang::SemaResult sema;
  Cfg cfg;
  InductionInfo induction;
};

Built build(std::string_view src) {
  support::DiagnosticEngine diags;
  Built out;
  out.unit = lang::parse_source(src, diags);
  out.sema = lang::analyze(out.unit, diags);
  out.cfg = build_cfg(out.unit, out.sema.functions.at(0), diags);
  EXPECT_FALSE(diags.has_errors()) << diags.to_string();
  out.induction = detect_induction_pvars(out.cfg);
  return out;
}

constexpr std::string_view kPrelude =
    "struct node { struct node *nxt; struct node *prv; int val; };\n"
    "struct stk { struct stk *nxt; struct node *item; };\n";

TEST(InductionTest, ListTraversalPointerIsInduction) {
  const Built b = build(std::string(kPrelude) + R"(
    void main() {
      struct node *p; p = NULL;
      while (p != NULL) { p = p->nxt; }
    }
  )");
  const Symbol p = b.unit.interner->lookup("p");
  EXPECT_TRUE(b.induction.is_induction(1, p));
}

TEST(InductionTest, NonTraversedPointerIsNot) {
  const Built b = build(std::string(kPrelude) + R"(
    void main() {
      struct node *p; struct node *q; int i;
      p = NULL; q = NULL; i = 0;
      while (i < 10) {
        q = malloc(struct node);
        i = i + 1;
      }
    }
  )");
  const Symbol q = b.unit.interner->lookup("q");
  EXPECT_FALSE(b.induction.is_induction(1, q));
}

TEST(InductionTest, TraversalThroughCopyChain) {
  // t = p->nxt; p = t — p derives from itself with one dereference.
  const Built b = build(std::string(kPrelude) + R"(
    void main() {
      struct node *p; struct node *t; p = NULL;
      while (p != NULL) {
        t = p->nxt;
        p = t;
      }
    }
  )");
  const Symbol p = b.unit.interner->lookup("p");
  const Symbol t = b.unit.interner->lookup("t");
  EXPECT_TRUE(b.induction.is_induction(1, p));
  // t derives from the induction pvar p with a dereference: also induction.
  EXPECT_TRUE(b.induction.is_induction(1, t));
}

TEST(InductionTest, PureCopyIsNotInduction) {
  // q = p each iteration never dereferences: not an induction pvar.
  const Built b = build(std::string(kPrelude) + R"(
    void main() {
      struct node *p; struct node *q; int i;
      p = NULL; q = NULL; i = 0;
      while (i < 10) {
        q = p;
        i = i + 1;
      }
    }
  )");
  const Symbol q = b.unit.interner->lookup("q");
  EXPECT_FALSE(b.induction.is_induction(1, q));
}

TEST(InductionTest, StackAssistedTraversal) {
  // The paper's Barnes-Hut pattern: S walks the stack, and the tree cursor
  // loads through it — both are induction pvars.
  const Built b = build(std::string(kPrelude) + R"(
    void main() {
      struct stk *S; struct node *cur;
      S = malloc(struct stk);
      S->nxt = NULL;
      while (S != NULL) {
        cur = S->item;
        S = S->nxt;
      }
    }
  )");
  const Symbol s = b.unit.interner->lookup("S");
  const Symbol cur = b.unit.interner->lookup("cur");
  // Loop ids: the while loop is loop 1.
  EXPECT_TRUE(b.induction.is_induction(1, s));
  EXPECT_TRUE(b.induction.is_induction(1, cur));
}

TEST(InductionTest, PerLoopScoping) {
  const Built b = build(std::string(kPrelude) + R"(
    void main() {
      struct node *p; struct node *q; int i;
      p = NULL; q = NULL; i = 0;
      while (p != NULL) { p = p->nxt; }
      while (i < 3) { i = i + 1; }
    }
  )");
  const Symbol p = b.unit.interner->lookup("p");
  EXPECT_TRUE(b.induction.is_induction(1, p));
  EXPECT_FALSE(b.induction.is_induction(2, p));
}

TEST(InductionTest, UnknownLoopIdIsFalse) {
  const Built b = build("void main() { int i; i = 0; }");
  EXPECT_FALSE(b.induction.is_induction(99, Symbol()));
}

TEST(InductionTest, BackwardTraversalViaPrv) {
  const Built b = build(std::string(kPrelude) + R"(
    void main() {
      struct node *p; p = NULL;
      while (p != NULL) { p = p->prv; }
    }
  )");
  const Symbol p = b.unit.interner->lookup("p");
  EXPECT_TRUE(b.induction.is_induction(1, p));
}

TEST(InductionTest, LoweringTempsParticipate) {
  // p = p->nxt->nxt goes through a temp; p must still be induction.
  const Built b = build(std::string(kPrelude) + R"(
    void main() {
      struct node *p; p = NULL;
      while (p != NULL) { p = p->nxt->nxt; }
    }
  )");
  const Symbol p = b.unit.interner->lookup("p");
  EXPECT_TRUE(b.induction.is_induction(1, p));
}

}  // namespace
}  // namespace psa::cfg
