// CFG construction: edges, loop scopes, dominators, natural loops.
#include <gtest/gtest.h>

#include <algorithm>

#include "cfg/cfg.hpp"
#include "cfg/loops.hpp"
#include "lang/parser.hpp"
#include "lang/sema.hpp"

namespace psa::cfg {
namespace {

struct Built {
  lang::TranslationUnit unit;
  lang::SemaResult sema;
  Cfg cfg;
};

Built build(std::string_view src) {
  support::DiagnosticEngine diags;
  Built out;
  out.unit = lang::parse_source(src, diags);
  out.sema = lang::analyze(out.unit, diags);
  out.cfg = build_cfg(out.unit, out.sema.functions.at(0), diags);
  EXPECT_FALSE(diags.has_errors()) << diags.to_string();
  return out;
}

constexpr std::string_view kPrelude =
    "struct node { struct node *nxt; int val; };\n";

TEST(CfgStructureTest, StraightLineIsAChain) {
  const Built b = build(std::string(kPrelude) + R"(
    void main() { struct node *p; p = NULL; p = malloc(struct node); }
  )");
  for (NodeId id = 0; id < b.cfg.size(); ++id) {
    if (id == b.cfg.exit()) continue;
    EXPECT_EQ(b.cfg.node(id).succs.size(), 1u) << "node " << id;
  }
}

TEST(CfgStructureTest, EntryAndExitAreNops) {
  const Built b = build("void main() { }");
  EXPECT_EQ(b.cfg.node(b.cfg.entry()).stmt.op, SimpleOp::kNop);
  EXPECT_EQ(b.cfg.node(b.cfg.exit()).stmt.op, SimpleOp::kNop);
}

TEST(CfgStructureTest, IfProducesDiamond) {
  const Built b = build("void main() { int i; i = 0; if (i < 1) { i = 2; } }");
  int branches = 0;
  for (const CfgNode& n : b.cfg.nodes()) {
    if (n.stmt.op == SimpleOp::kBranch) {
      ++branches;
      EXPECT_EQ(n.succs.size(), 2u);
    }
  }
  EXPECT_EQ(branches, 1);
}

TEST(CfgStructureTest, EdgesAreMirrored) {
  const Built b = build(std::string(kPrelude) + R"(
    void main() {
      struct node *p; p = NULL;
      while (p != NULL) { p = p->nxt; }
    }
  )");
  for (NodeId id = 0; id < b.cfg.size(); ++id) {
    for (const NodeId s : b.cfg.node(id).succs) {
      const auto& preds = b.cfg.node(s).preds;
      EXPECT_NE(std::find(preds.begin(), preds.end(), id), preds.end());
    }
    for (const NodeId p : b.cfg.node(id).preds) {
      const auto& succs = b.cfg.node(p).succs;
      EXPECT_NE(std::find(succs.begin(), succs.end(), id), succs.end());
    }
  }
}

TEST(CfgStructureTest, WhileLoopMembersAreMarked) {
  const Built b = build(std::string(kPrelude) + R"(
    void main() {
      struct node *p; p = NULL;
      while (p != NULL) { p = p->nxt; }
    }
  )");
  ASSERT_EQ(b.cfg.loop_scopes().size(), 1u);
  const LoopScope& loop = b.cfg.loop_scopes()[0];
  EXPECT_EQ(loop.id, 1u);
  EXPECT_FALSE(loop.members.empty());
  for (const NodeId id : loop.members) {
    EXPECT_NE(b.cfg.node(id).stmt.op, SimpleOp::kTouchClear);
  }
}

TEST(CfgStructureTest, NestedLoopsStackLoopIds) {
  const Built b = build(std::string(kPrelude) + R"(
    void main() {
      struct node *p; struct node *q; p = NULL;
      while (p != NULL) {
        q = p;
        while (q != NULL) { q = q->nxt; }
        p = p->nxt;
      }
    }
  )");
  ASSERT_EQ(b.cfg.loop_scopes().size(), 2u);
  const Symbol q = b.unit.interner->lookup("q");
  bool found = false;
  for (NodeId id = 0; id < b.cfg.size(); ++id) {
    const auto& n = b.cfg.node(id);
    if (n.stmt.op == SimpleOp::kLoad && n.stmt.x == q && n.stmt.y == q) {
      EXPECT_EQ(n.loops.size(), 2u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CfgStructureTest, BreakJumpsToTouchClear) {
  const Built b = build(std::string(kPrelude) + R"(
    void main() {
      struct node *p; p = NULL;
      while (p != NULL) {
        if (1 < 2) { break; }
        p = p->nxt;
      }
    }
  )");
  for (NodeId id = 0; id < b.cfg.size(); ++id) {
    if (b.cfg.node(id).stmt.op == SimpleOp::kTouchClear) {
      EXPECT_GE(b.cfg.node(id).preds.size(), 2u);  // loop exit + break
    }
  }
}

TEST(CfgStructureTest, ReturnLinksToExit) {
  const Built b = build(R"(
    void main() {
      int i; i = 0;
      if (i < 1) { return; }
      i = 2;
    }
  )");
  EXPECT_GE(b.cfg.node(b.cfg.exit()).preds.size(), 2u);
}

TEST(DominatorTest, EntryDominatesEverything) {
  const Built b = build(std::string(kPrelude) + R"(
    void main() {
      struct node *p; p = NULL;
      while (p != NULL) { p = p->nxt; }
    }
  )");
  const DominatorTree dom(b.cfg);
  for (NodeId id = 0; id < b.cfg.size(); ++id) {
    if (!dom.reachable(id)) continue;
    EXPECT_TRUE(dom.dominates(b.cfg.entry(), id));
  }
}

TEST(DominatorTest, LoopHeaderDominatesBody) {
  const Built b = build(std::string(kPrelude) + R"(
    void main() {
      struct node *p; p = NULL;
      while (p != NULL) { p = p->nxt; }
    }
  )");
  const DominatorTree dom(b.cfg);
  const LoopScope& loop = b.cfg.loop_scopes()[0];
  for (const NodeId id : loop.members) {
    EXPECT_TRUE(dom.dominates(loop.header, id)) << id;
  }
}

TEST(DominatorTest, RpoStartsAtEntry) {
  const Built b = build("void main() { int i; i = 0; }");
  const DominatorTree dom(b.cfg);
  ASSERT_FALSE(dom.rpo().empty());
  EXPECT_EQ(dom.rpo().front(), b.cfg.entry());
}

TEST(NaturalLoopTest, AgreesWithStructuralLoops) {
  const Built b = build(std::string(kPrelude) + R"(
    void main() {
      struct node *p; struct node *q; p = NULL;
      while (p != NULL) {
        q = p;
        while (q != NULL) { q = q->nxt; }
        p = p->nxt;
      }
      do { p = NULL; } while (1 < 2);
    }
  )");
  const auto natural = compute_natural_loops(b.cfg);
  EXPECT_EQ(natural.size(), b.cfg.loop_scopes().size());
  // Every natural-loop body is contained in some structural scope (the
  // structural scopes are supersets: they also stamp the exit-path assume
  // arms, which genuine natural loops exclude).
  for (const NaturalLoop& nl : natural) {
    bool contained = false;
    for (const LoopScope& scope : b.cfg.loop_scopes()) {
      std::vector<NodeId> members = scope.members;
      std::sort(members.begin(), members.end());
      bool all = true;
      for (const NodeId id : nl.body) {
        if (!std::binary_search(members.begin(), members.end(), id)) {
          all = false;
          break;
        }
      }
      if (all) contained = true;
    }
    EXPECT_TRUE(contained) << "natural loop at header " << nl.header;
  }
}

TEST(NaturalLoopTest, ExitEdgesLeaveTheLoop) {
  const Built b = build(std::string(kPrelude) + R"(
    void main() {
      struct node *p; p = NULL;
      while (p != NULL) { p = p->nxt; }
    }
  )");
  for (const NaturalLoop& nl : compute_natural_loops(b.cfg)) {
    for (const auto& [inside, outside] : nl.exit_edges) {
      EXPECT_TRUE(std::binary_search(nl.body.begin(), nl.body.end(), inside));
      EXPECT_FALSE(
          std::binary_search(nl.body.begin(), nl.body.end(), outside));
    }
  }
}

TEST(CfgStructureTest, DumpMentionsStatements) {
  const Built b = build(std::string(kPrelude) + R"(
    void main() { struct node *p; p = malloc(struct node); p->nxt = NULL; }
  )");
  const std::string text = b.cfg.dump(*b.unit.interner);
  EXPECT_NE(text.find("p = malloc"), std::string::npos);
  EXPECT_NE(text.find("p->nxt = NULL"), std::string::npos);
}

}  // namespace
}  // namespace psa::cfg
