// The PSARPC2 wire protocol: frame round-trips over a real socketpair,
// checksum/magic/size/type validation on receive, and the request/stream
// body codecs — including rejection of every malformed-field class the
// decoders guard against (the daemon and client feed them bytes straight
// off the network), the retired PSARPC1 frame type, and sequence-number
// plumbing across unit_result / heartbeat / summary frames.
#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "rsg/serialize.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <unistd.h>
#define PSA_TEST_HAS_SOCKETPAIR 1
#else
#define PSA_TEST_HAS_SOCKETPAIR 0
#endif

namespace psa::service {
namespace {

#if PSA_TEST_HAS_SOCKETPAIR

/// A connected local stream pair; frames written on one end are read on the
/// other — the transport the daemon and client actually use, minus the
/// unix-socket filesystem plumbing.
class FramePairTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }

  int fds_[2] = {-1, -1};
};

TEST_F(FramePairTest, FrameRoundTripsAllTypes) {
  for (const MsgType type :
       {MsgType::kRequest, MsgType::kBusy, MsgType::kError, MsgType::kPing,
        MsgType::kPong, MsgType::kUnitResult, MsgType::kHeartbeat,
        MsgType::kSummary}) {
    const std::string body = "body-of-" + std::string(to_string(type));
    std::string error;
    ASSERT_TRUE(send_frame(fds_[0], type, body, 1000, &error)) << error;
    Frame frame;
    ASSERT_TRUE(recv_frame(fds_[1], frame, 1000, &error)) << error;
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.body, body);
  }
}

TEST_F(FramePairTest, EmptyAndLargeBodiesRoundTrip) {
  std::string error;
  ASSERT_TRUE(send_frame(fds_[0], MsgType::kPing, "", 1000, &error)) << error;
  Frame frame;
  ASSERT_TRUE(recv_frame(fds_[1], frame, 1000, &error)) << error;
  EXPECT_TRUE(frame.body.empty());

  // Larger than any socket buffer: exercises the partial-write/read loops.
  // Needs a concurrent reader — the writer fills the kernel buffer and must
  // wait for the peer to drain it (exactly the daemon/client situation).
  const std::string big(4u << 20, 'x');
  std::thread reader([&] {
    std::string recv_error;
    EXPECT_TRUE(recv_frame(fds_[1], frame, 10000, &recv_error)) << recv_error;
  });
  EXPECT_TRUE(send_frame(fds_[0], MsgType::kUnitResult, big, 10000, &error))
      << error;
  reader.join();
  EXPECT_EQ(frame.body, big);
}

TEST_F(FramePairTest, StalledPeerHitsTheSendTimeoutInsteadOfHanging) {
  // Nobody drains the other end: the kernel buffer fills and the send must
  // fail at the deadline — never block forever on a wedged peer.
  const std::string big(4u << 20, 'x');
  std::string error;
  EXPECT_FALSE(send_frame(fds_[0], MsgType::kUnitResult, big, 100, &error));
  EXPECT_NE(error.find("timeout"), std::string::npos) << error;
}

TEST_F(FramePairTest, SendToHungUpPeerFailsWithoutSigpipe) {
  // The peer is gone. Without MSG_NOSIGNAL in the protocol layer this send
  // would raise a process-wide SIGPIPE (default: kill the process) unless
  // the CALLER had changed the disposition — the contract says the caller
  // never has to. Surviving this test at the default disposition IS the
  // assertion.
  ::close(fds_[1]);
  fds_[1] = -1;
  const std::string big(1u << 20, 'x');
  std::string error;
  EXPECT_FALSE(send_frame(fds_[0], MsgType::kUnitResult, big, 1000, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(FramePairTest, CorruptedBodyFailsTheChecksum) {
  std::string error;
  ASSERT_TRUE(send_frame(fds_[0], MsgType::kUnitResult, "payload bytes", 1000,
                         &error));
  // Read the raw frame, flip one body bit, and replay it.
  char raw[64];
  const ssize_t n = ::recv(fds_[1], raw, sizeof(raw), 0);
  ASSERT_GT(n, 25);
  raw[n - 1] ^= 0x01;
  ASSERT_EQ(::send(fds_[0], raw, static_cast<size_t>(n), 0), n);
  Frame frame;
  EXPECT_FALSE(recv_frame(fds_[1], frame, 1000, &error));
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

TEST_F(FramePairTest, BadMagicIsRejected) {
  const std::string junk = "HTTP/1.1 400 Bad Request\r\n\r\n";
  ASSERT_EQ(::send(fds_[0], junk.data(), junk.size(), 0),
            static_cast<ssize_t>(junk.size()));
  Frame frame;
  std::string error;
  EXPECT_FALSE(recv_frame(fds_[1], frame, 1000, &error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST_F(FramePairTest, Psarpc1MagicIsRejected) {
  // A v1 peer (old binary, same socket path) must be refused at the magic,
  // not misparsed: the header layout matches but the protocols do not.
  std::string header = "PSARPC1\n";
  header.push_back(static_cast<char>(MsgType::kRequest));
  header.append(16, '\0');  // zero size, zero checksum
  ASSERT_EQ(::send(fds_[0], header.data(), header.size(), 0),
            static_cast<ssize_t>(header.size()));
  Frame frame;
  std::string error;
  EXPECT_FALSE(recv_frame(fds_[1], frame, 1000, &error));
  EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST_F(FramePairTest, OversizedLengthIsRejectedBeforeAllocation) {
  // Hand-build a header claiming a body far beyond kMaxFrameBody; recv_frame
  // must reject on the length field alone (no 2^60-byte allocation).
  std::string header = "PSARPC2\n";
  header.push_back(static_cast<char>(MsgType::kUnitResult));
  std::uint64_t size = 1ull << 60;
  for (int i = 0; i < 8; ++i) header.push_back(static_cast<char>(size >> (8 * i)));
  for (int i = 0; i < 8; ++i) header.push_back('\0');  // checksum, irrelevant
  ASSERT_EQ(::send(fds_[0], header.data(), header.size(), 0),
            static_cast<ssize_t>(header.size()));
  Frame frame;
  std::string error;
  EXPECT_FALSE(recv_frame(fds_[1], frame, 1000, &error));
  EXPECT_NE(error.find("body"), std::string::npos) << error;
}

TEST_F(FramePairTest, TruncatedFrameReportsEof) {
  std::string error;
  ASSERT_TRUE(send_frame(fds_[0], MsgType::kUnitResult, "cut short", 1000,
                         &error));
  // Steal the full frame, replay only a prefix, then close the writer — the
  // reader must see a clean failure, not a hang or a garbage frame. This is
  // exactly what the streamtear fault injection does to a live client.
  char raw[64];
  const ssize_t n = ::recv(fds_[1], raw, sizeof(raw), 0);
  ASSERT_GT(n, 25);
  ASSERT_EQ(::send(fds_[0], raw, static_cast<size_t>(n - 4), 0), n - 4);
  ::close(fds_[0]);
  fds_[0] = -1;
  Frame frame;
  EXPECT_FALSE(recv_frame(fds_[1], frame, 1000, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(FramePairTest, HalfAFrameFromEncodeFrameTearsCleanly) {
  // encode_frame + send_bytes is how the daemon streams; sending a strict
  // prefix and hanging up is the daemon's streamtear fault point. The
  // reader's failure must be clean and diagnosable.
  const std::string bytes = encode_frame(MsgType::kUnitResult, "torn body");
  std::string error;
  ASSERT_TRUE(send_bytes(fds_[0],
                         std::string_view(bytes).substr(0, bytes.size() / 2),
                         1000, &error))
      << error;
  ::close(fds_[0]);
  fds_[0] = -1;
  Frame frame;
  EXPECT_FALSE(recv_frame(fds_[1], frame, 1000, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(FramePairTest, RecvTimesOutOnSilence) {
  Frame frame;
  std::string error;
  EXPECT_FALSE(recv_frame(fds_[1], frame, 50, &error));
  EXPECT_NE(error.find("timeout"), std::string::npos) << error;
}

TEST_F(FramePairTest, UnknownMessageTypeIsRejected) {
  std::string error;
  ASSERT_TRUE(send_frame(fds_[0], MsgType::kPing, "", 1000, &error));
  char raw[32];
  const ssize_t n = ::recv(fds_[1], raw, sizeof(raw), 0);
  ASSERT_EQ(n, 25);
  raw[8] = 99;  // type byte out of the MsgType range
  ASSERT_EQ(::send(fds_[0], raw, static_cast<size_t>(n), 0), n);
  Frame frame;
  EXPECT_FALSE(recv_frame(fds_[1], frame, 1000, &error));
  EXPECT_NE(error.find("type"), std::string::npos) << error;
}

TEST_F(FramePairTest, RetiredResponseTypeIsRejected) {
  // Type 2 was the PSARPC1 batch response. Its number is a permanent gap in
  // PSARPC2 — a frame claiming it must be rejected, not decoded as anything.
  std::string error;
  ASSERT_TRUE(send_frame(fds_[0], MsgType::kPing, "", 1000, &error));
  char raw[32];
  const ssize_t n = ::recv(fds_[1], raw, sizeof(raw), 0);
  ASSERT_EQ(n, 25);
  raw[8] = 2;  // the retired type sits INSIDE the numeric range
  ASSERT_EQ(::send(fds_[0], raw, static_cast<size_t>(n), 0), n);
  Frame frame;
  EXPECT_FALSE(recv_frame(fds_[1], frame, 1000, &error));
  EXPECT_NE(error.find("type"), std::string::npos) << error;
}

#endif  // PSA_TEST_HAS_SOCKETPAIR

// ---------------------------------------------------------------------------
// Body codecs (no sockets involved).

constexpr std::string_view kSource =
    "struct node { struct node *next; int v; };\n"
    "void main() {\n"
    "  struct node *p;\n"
    "  p = malloc(sizeof(struct node));\n"
    "  p->next = NULL;\n"
    "}\n";

ServiceRequest sample_request() {
  ServiceRequest request;
  driver::AnalysisUnit unit;
  unit.name = "a.c";
  unit.function = "main";
  unit.source = std::string(kSource);
  unit.source_path = "/src/a.c";
  request.units.push_back(unit);
  unit.name = "b.c";
  unit.source_path.clear();
  request.units.push_back(unit);
  request.engine.level = rsg::AnalysisLevel::kL2;
  request.engine.widen_threshold = 12;
  request.engine.deadline_ms = 500;
  request.check = true;
  request.strict_frontend = true;
  request.unit_timeout_ms = 9000;
  return request;
}

/// One real analyzed unit report (payload included) for stream-codec tests.
driver::UnitReport sample_ok_report() {
  std::vector<driver::AnalysisUnit> units;
  driver::AnalysisUnit a;
  a.name = "a.c";
  a.source = std::string(kSource);
  units.push_back(a);
  driver::BatchOptions options;
  options.isolate = false;
  options.check = true;
  driver::BatchResult batch = driver::run_batch(units, options);
  return std::move(batch.units[0]);
}

TEST(RequestCodec, RoundTripsEveryField) {
  const ServiceRequest request = sample_request();
  const ServiceRequest decoded = decode_request(encode_request(request));
  ASSERT_EQ(decoded.units.size(), 2u);
  EXPECT_EQ(decoded.units[0].name, "a.c");
  EXPECT_EQ(decoded.units[0].function, "main");
  EXPECT_EQ(decoded.units[0].source, kSource);
  EXPECT_EQ(decoded.units[0].source_path, "/src/a.c");
  EXPECT_EQ(decoded.units[1].name, "b.c");
  EXPECT_TRUE(decoded.units[1].source_path.empty());
  EXPECT_EQ(decoded.engine.level, rsg::AnalysisLevel::kL2);
  EXPECT_EQ(decoded.engine.widen_threshold, 12u);
  EXPECT_EQ(decoded.engine.deadline_ms, 500u);
  EXPECT_TRUE(decoded.check);
  EXPECT_TRUE(decoded.strict_frontend);
  EXPECT_EQ(decoded.unit_timeout_ms, 9000u);
}

TEST(RequestCodec, RejectsGarbageAndTruncation) {
  EXPECT_THROW((void)decode_request("not a request body"),
               rsg::SnapshotError);
  const std::string body = encode_request(sample_request());
  EXPECT_THROW((void)decode_request(std::string_view(body).substr(
                   0, body.size() / 2)),
               rsg::SnapshotError);
  EXPECT_THROW((void)decode_request(body + "trailing junk"),
               rsg::SnapshotError);
}

TEST(UnitResultCodec, RoundTripsAReportWithPayload) {
  const driver::UnitReport original = sample_ok_report();
  ASSERT_TRUE(original.payload.has_value());

  const UnitResultFrame decoded =
      decode_unit_result(encode_unit_result(7, 3, original));
  EXPECT_EQ(decoded.seq, 7u);
  EXPECT_EQ(decoded.unit_index, 3u);
  EXPECT_EQ(decoded.report.unit.name, "a.c");
  EXPECT_EQ(decoded.report.outcome.kind, driver::UnitOutcomeKind::kOk);
  ASSERT_TRUE(decoded.report.payload.has_value());
  EXPECT_EQ(decoded.report.payload->unit_name, "a.c");
  EXPECT_EQ(decoded.report.payload->findings.size(),
            original.payload->findings.size());
  // The raw payload bytes travel alongside the decoded payload, verbatim —
  // the client journals them into its checkpoint without re-serializing.
  ASSERT_FALSE(decoded.payload_bytes.empty());
  const driver::UnitPayload rehydrated =
      driver::deserialize_unit_payload(decoded.payload_bytes);
  EXPECT_EQ(rehydrated.unit_name, "a.c");

  // Losslessness where it matters: a batch assembled from streamed frames
  // renders the identical report.
  driver::BatchResult direct;
  direct.units.push_back(original);
  driver::BatchResult streamed;
  streamed.units.push_back(decoded.report);
  EXPECT_EQ(driver::format_batch_report(streamed),
            driver::format_batch_report(direct));
}

TEST(UnitResultCodec, RoundTripsAPayloadFreeFailure) {
  driver::UnitReport report;
  report.unit.name = "bad.c";
  report.unit.function = "main";
  report.outcome.kind = driver::UnitOutcomeKind::kCrash;
  report.outcome.signal = 11;
  report.outcome.attempts = 2;
  report.outcome.quarantined = true;
  report.outcome.detail = "worker crashed twice";

  const UnitResultFrame decoded =
      decode_unit_result(encode_unit_result(1, 0, report));
  EXPECT_EQ(decoded.report.unit.name, "bad.c");
  EXPECT_EQ(decoded.report.outcome.kind, driver::UnitOutcomeKind::kCrash);
  EXPECT_EQ(decoded.report.outcome.signal, 11);
  EXPECT_EQ(decoded.report.outcome.attempts, 2);
  EXPECT_TRUE(decoded.report.outcome.quarantined);
  EXPECT_EQ(decoded.report.outcome.detail, "worker crashed twice");
  EXPECT_FALSE(decoded.report.payload.has_value());
  EXPECT_TRUE(decoded.payload_bytes.empty());
}

TEST(UnitResultCodec, RejectsCorruptPayloadEnvelope) {
  std::string body = encode_unit_result(1, 0, sample_ok_report());
  // Flip a bit deep in the body — inside the embedded PSASNAP1 payload. The
  // frame checksum is not in play here; the payload envelope must catch it.
  body[body.size() - body.size() / 4] ^= 0x04;
  EXPECT_THROW((void)decode_unit_result(body), rsg::SnapshotError);
}

TEST(UnitResultCodec, RejectsGarbage) {
  EXPECT_THROW((void)decode_unit_result(""), rsg::SnapshotError);
  EXPECT_THROW((void)decode_unit_result(std::string(128, '\xfe')),
               rsg::SnapshotError);
}

TEST(HeartbeatCodec, RoundTripsAndRejectsTruncation) {
  HeartbeatFrame heartbeat;
  heartbeat.seq = 42;
  heartbeat.units_done = 3;
  heartbeat.units_total = 9;
  const std::string body = encode_heartbeat(heartbeat);
  const HeartbeatFrame decoded = decode_heartbeat(body);
  EXPECT_EQ(decoded.seq, 42u);
  EXPECT_EQ(decoded.units_done, 3u);
  EXPECT_EQ(decoded.units_total, 9u);
  EXPECT_THROW((void)decode_heartbeat(
                   std::string_view(body).substr(0, body.size() - 1)),
               rsg::SnapshotError);
  EXPECT_THROW((void)decode_heartbeat(body + "x"), rsg::SnapshotError);
}

TEST(SummaryCodec, RoundTripsAndRejectsTruncation) {
  SummaryFrame summary;
  summary.seq = 99;
  summary.isolated = true;
  summary.units_total = 5;
  summary.units_streamed = 5;
  const std::string body = encode_summary(summary);
  const SummaryFrame decoded = decode_summary(body);
  EXPECT_EQ(decoded.seq, 99u);
  EXPECT_TRUE(decoded.isolated);
  EXPECT_EQ(decoded.units_total, 5u);
  EXPECT_EQ(decoded.units_streamed, 5u);
  EXPECT_THROW((void)decode_summary(
                   std::string_view(body).substr(0, body.size() - 1)),
               rsg::SnapshotError);
  EXPECT_THROW((void)decode_summary(body + "x"), rsg::SnapshotError);
}

}  // namespace
}  // namespace psa::service
