// End-to-end daemon mode through the real psa_cli binary (PSA_CLI_PATH):
// --serve + --connect produce the same report as a local batch run, SIGTERM
// drains gracefully (exit 0, sealed journal), and a dead daemon never fails
// a build — the client retries, falls back in-process, and still reports
// identically. The finer-grained fault drills (SIGKILL mid-request, corrupt
// cache entries) live in scripts/service_drill.sh.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>
#define PSA_SERVICE_E2E 1
#else
#define PSA_SERVICE_E2E 0
#endif

#if PSA_SERVICE_E2E

namespace psa::service {
namespace {

namespace fs = std::filesystem;

constexpr const char* kLeakySource =
    "struct node { struct node *next; int v; };\n"
    "void main() {\n"
    "  struct node *p;\n"
    "  p = malloc(sizeof(struct node));\n"
    "  p->next = NULL;\n"
    "}\n";

constexpr const char* kCleanSource =
    "struct node { struct node *next; int v; };\n"
    "void main() {\n"
    "  struct node *p;\n"
    "  p = malloc(sizeof(struct node));\n"
    "  p->next = NULL;\n"
    "  free(p);\n"
    "  p = NULL;\n"
    "}\n";

// A four-function call chain main -> f1 -> f2 -> f3 whose leaf line is the
// edit target for the function-granular cache drill (docs/CACHING.md). Both
// variants have the same line count — nothing shifts — and main leaks, so
// every run exits 1 with one finding.
constexpr const char* kChainSource =
    "struct node { struct node *next; int v; };\n"
    "void f3(struct node *a) {\n"
    "  a->next = NULL;\n"
    "}\n"
    "void f2(struct node *a) {\n"
    "  f3(a);\n"
    "  a->next = NULL;\n"
    "}\n"
    "void f1(struct node *a) {\n"
    "  f2(a);\n"
    "}\n"
    "void main() {\n"
    "  struct node *p;\n"
    "  p = malloc(sizeof(struct node));\n"
    "  f1(p);\n"
    "  p->next = NULL;\n"
    "}\n";

constexpr const char* kChainEditedSource =
    "struct node { struct node *next; int v; };\n"
    "void f3(struct node *a) {\n"
    "  a->next = a;\n"
    "}\n"
    "void f2(struct node *a) {\n"
    "  f3(a);\n"
    "  a->next = NULL;\n"
    "}\n"
    "void f1(struct node *a) {\n"
    "  f2(a);\n"
    "}\n"
    "void main() {\n"
    "  struct node *p;\n"
    "  p = malloc(sizeof(struct node));\n"
    "  f1(p);\n"
    "  p->next = NULL;\n"
    "}\n";

struct RunResult {
  int exit_code = -1;
  std::string stdout_text;
};

RunResult run_cli(const std::string& args, const std::string& stderr_path) {
  const std::string command = std::string(PSA_CLI_PATH) + " " + args + " 2>" +
                              (stderr_path.empty() ? "/dev/null"
                                                   : stderr_path);
  RunResult result;
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer;
  std::size_t n = 0;
  while ((n = std::fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.stdout_text.append(buffer.data(), n);
  }
  const int status = ::pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class ServiceE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("psa-svc-" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    daemon_pid_ = -1;
  }
  void TearDown() override {
    if (daemon_pid_ > 0) {
      ::kill(daemon_pid_, SIGKILL);
      int status = 0;
      ::waitpid(daemon_pid_, &status, 0);
    }
    fs::remove_all(dir_);
  }

  std::string write_file(const std::string& name, const std::string& text) {
    const std::string path = (fs::path(dir_) / name).string();
    std::ofstream out(path);
    out << text;
    return path;
  }

  std::string path_in(const std::string& name) const {
    return (fs::path(dir_) / name).string();
  }

  /// Spawn `psa_cli --serve=<sock> --cache-dir=<cache>` detached and wait
  /// until the socket accepts a connection. `env` entries are set in the
  /// daemon child only (fault plans, serve knobs) — never in this process,
  /// so client runs stay fault-free. Asserts on startup failure.
  void start_daemon(
      const std::vector<std::pair<std::string, std::string>>& env = {}) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      (void)!::freopen(path_in("daemon.out").c_str(), "w", stdout);
      (void)!::freopen(path_in("daemon.err").c_str(), "w", stderr);
      for (const auto& [key, value] : env) {
        ::setenv(key.c_str(), value.c_str(), 1);
      }
      static std::string binary = PSA_CLI_PATH;
      std::string serve = "--serve=" + socket_path();
      std::string cache = "--cache-dir=" + cache_dir();
      char* argv[] = {binary.data(), serve.data(), cache.data(), nullptr};
      ::execv(binary.c_str(), argv);
      ::_exit(127);
    }
    ASSERT_GT(pid, 0);
    daemon_pid_ = pid;
    for (int spins = 0; spins < 5000; ++spins) {
      if (probe_socket()) return;
      ::usleep(2000);
    }
    FAIL() << "daemon never came up: " << slurp(path_in("daemon.err"));
  }

  [[nodiscard]] bool probe_socket() const {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    const std::string path = socket_path();
    if (path.size() >= sizeof(addr.sun_path)) {
      ::close(fd);
      return false;
    }
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
    const bool up = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                              sizeof(addr)) == 0;
    ::close(fd);
    return up;
  }

  [[nodiscard]] std::string socket_path() const { return path_in("psa.sock"); }
  [[nodiscard]] std::string cache_dir() const { return path_in("cache"); }

  /// Top-level `.entry` files in the daemon's cache directory — unit,
  /// summary and result entries alike (docs/CACHING.md).
  [[nodiscard]] std::size_t count_entries() const {
    std::size_t n = 0;
    for (const auto& e : fs::directory_iterator(cache_dir())) {
      if (e.path().extension() == ".entry") ++n;
    }
    return n;
  }

  std::string dir_;
  pid_t daemon_pid_ = -1;
};

TEST_F(ServiceE2eTest, ConnectReportMatchesLocalBatchByteForByte) {
  const std::string leaky = write_file("leaky.c", kLeakySource);
  const std::string clean = write_file("clean.c", kCleanSource);
  const std::string files = leaky + " " + clean;

  // Reference: plain local batch, no service, no cache.
  const RunResult local = run_cli(files + " --isolate --check", "");
  ASSERT_EQ(local.exit_code, 1) << local.stdout_text;

  start_daemon();
  const RunResult remote = run_cli(
      files + " --check --connect=" + socket_path(), path_in("client.err"));
  EXPECT_EQ(remote.exit_code, local.exit_code);
  EXPECT_EQ(remote.stdout_text, local.stdout_text)
      << "client stderr: " << slurp(path_in("client.err"));

  // A second request over the same daemon is served from the warm cache and
  // still renders the identical report.
  const RunResult warm = run_cli(
      files + " --check --connect=" + socket_path(), "");
  EXPECT_EQ(warm.stdout_text, local.stdout_text);
  EXPECT_FALSE(fs::is_empty(cache_dir()));  // entries actually landed
}

TEST_F(ServiceE2eTest, SigtermDrainsGracefullyAndSealsTheJournal) {
  start_daemon();
  // One request so the journal has traffic to account for.
  const std::string leaky = write_file("leaky.c", kLeakySource);
  ASSERT_EQ(
      run_cli(leaky + " --check --connect=" + socket_path(), "").exit_code, 1);

  ASSERT_EQ(::kill(daemon_pid_, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(daemon_pid_, &status, 0), daemon_pid_);
  daemon_pid_ = -1;
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);  // graceful drain is a clean exit

  // The socket is gone (no client can half-connect to a corpse) and the
  // journal ends with the seal.
  EXPECT_FALSE(fs::exists(socket_path()));
  const std::string journal =
      slurp((fs::path(cache_dir()) / "service.journal").string());
  EXPECT_NE(journal.find("start"), std::string::npos) << journal;
  EXPECT_NE(journal.find("done ok"), std::string::npos) << journal;
  EXPECT_NE(journal.find("sealed"), std::string::npos) << journal;
}

TEST_F(ServiceE2eTest, DeadDaemonFallsBackAndNeverFailsTheBuild) {
  // No daemon at all: the client must retry, give up, analyze locally, and
  // produce the exact local report — a dead daemon costs latency, not
  // correctness.
  const std::string leaky = write_file("leaky.c", kLeakySource);
  const RunResult local = run_cli(leaky + " --isolate --check", "");
  ASSERT_EQ(local.exit_code, 1);

  const RunResult fallback =
      run_cli(leaky + " --check --connect=" + path_in("no-such.sock"),
              path_in("client.err"));
  EXPECT_EQ(fallback.exit_code, local.exit_code);
  EXPECT_EQ(fallback.stdout_text, local.stdout_text);
  const std::string log = slurp(path_in("client.err"));
  EXPECT_NE(log.find("remaining units locally"), std::string::npos) << log;
}

TEST_F(ServiceE2eTest, StreamTearMidBatchResumesAndReportsIdentically) {
  // PSA_FAULT_AT streamtear in the DAEMON env: the handler sends half of
  // tear.c's unit_result frame and hangs up — every attempt. The client must
  // keep each unit streamed before the tear, reconnect and re-request only
  // the remainder, and past the retry budget compute the torn unit locally.
  // The final report must be byte-identical to an undisturbed local run.
  const std::string leaky = write_file("leaky.c", kLeakySource);
  const std::string clean = write_file("clean.c", kCleanSource);
  const std::string tear = write_file("tear.c", kCleanSource);
  const std::string files = leaky + " " + clean + " " + tear;

  const RunResult local = run_cli(files + " --isolate --check", "");
  ASSERT_EQ(local.exit_code, 1) << local.stdout_text;

  start_daemon({{"PSA_FAULT_AT", tear + ":streamtear"}});
  const RunResult remote = run_cli(
      files + " --check --connect=" + socket_path(), path_in("client.err"));
  const std::string log = slurp(path_in("client.err"));
  EXPECT_EQ(remote.exit_code, local.exit_code) << log;
  EXPECT_EQ(remote.stdout_text, local.stdout_text) << log;
  // The tear was observed and the stream resumed — not a silent cold retry.
  EXPECT_NE(log.find("stream torn"), std::string::npos) << log;
  EXPECT_NE(log.find("streamed"), std::string::npos) << log;
}

TEST_F(ServiceE2eTest, TwoConcurrentClientsBothGetTheExactReport) {
  // Two clients share one daemon whose handler capacity is ONE: the second
  // connection must be parked in the accept queue (not shed, not corrupted)
  // and served when the first handler finishes. Both reports must equal the
  // local reference byte for byte.
  const std::string leaky = write_file("leaky.c", kLeakySource);
  const std::string clean = write_file("clean.c", kCleanSource);
  const std::string files = leaky + " " + clean;

  const RunResult local = run_cli(files + " --isolate --check", "");
  ASSERT_EQ(local.exit_code, 1) << local.stdout_text;

  start_daemon({{"PSA_SERVE_INFLIGHT", "1"}});
  RunResult first;
  RunResult second;
  std::thread one([&] {
    first = run_cli(files + " --check --connect=" + socket_path(),
                    path_in("client1.err"));
  });
  std::thread two([&] {
    second = run_cli(files + " --check --connect=" + socket_path(),
                     path_in("client2.err"));
  });
  one.join();
  two.join();

  EXPECT_EQ(first.exit_code, local.exit_code)
      << slurp(path_in("client1.err"));
  EXPECT_EQ(second.exit_code, local.exit_code)
      << slurp(path_in("client2.err"));
  EXPECT_EQ(first.stdout_text, local.stdout_text);
  EXPECT_EQ(second.stdout_text, local.stdout_text);

  // With capacity 1 and overlapping clients, the daemon journal shows the
  // multiplexing actually engaged: both requests accepted, none shed.
  const std::string journal =
      slurp((fs::path(cache_dir()) / "service.journal").string());
  EXPECT_EQ(journal.find("busy"), std::string::npos) << journal;
}

TEST_F(ServiceE2eTest, WarmFunctionTierSurvivesADaemonSigkillMidStream) {
  // The PR 8 guarantee — a SIGKILLed daemon never changes the report — must
  // survive the function-granular cache. Warm the per-function tier through
  // the daemon with a one-line edit in a four-function chain (the daemon
  // serves it from summary/result entries and promotes the payload to the
  // new unit key), then race a SIGKILL against one more request. Whether the
  // kill lands before, during or after the stream, the client's report must
  // stay byte-identical to the daemon-less reference.
  const std::string chain = write_file("chain.c", kChainSource);
  const RunResult local = run_cli(chain + " --isolate --check", "");
  ASSERT_EQ(local.exit_code, 1) << local.stdout_text;

  start_daemon();
  const RunResult cold = run_cli(
      chain + " --check --connect=" + socket_path(), path_in("client.err"));
  ASSERT_EQ(cold.exit_code, 1) << slurp(path_in("client.err"));
  ASSERT_EQ(cold.stdout_text, local.stdout_text);
  const std::size_t cold_entries = count_entries();
  // The cold miss stores the unit entry plus per-function entries.
  ASSERT_GT(cold_entries, 1u);

  // Same line count, summary-preserving leaf edit: the daemon misses the
  // unit key, re-runs exactly f3's fixpoint, and serves the rest from the
  // function tier — the promotion and f3's new summary land as fresh
  // entries on disk.
  write_file("chain.c", kChainEditedSource);
  const RunResult edited_local = run_cli(chain + " --isolate --check", "");
  ASSERT_EQ(edited_local.exit_code, 1);
  const RunResult edited = run_cli(
      chain + " --check --connect=" + socket_path(), path_in("client2.err"));
  EXPECT_EQ(edited.exit_code, 1) << slurp(path_in("client2.err"));
  EXPECT_EQ(edited.stdout_text, edited_local.stdout_text);
  EXPECT_GT(count_entries(), cold_entries)
      << "edited run stored no new entries (want promotion + a new summary)";

  // Race a SIGKILL against one more request over the warm tier.
  std::thread killer([this] {
    ::usleep(5000);
    ::kill(daemon_pid_, SIGKILL);
  });
  const RunResult killed = run_cli(
      chain + " --check --connect=" + socket_path(), path_in("client3.err"));
  killer.join();
  int status = 0;
  ::waitpid(daemon_pid_, &status, 0);
  daemon_pid_ = -1;
  EXPECT_EQ(killed.exit_code, 1) << slurp(path_in("client3.err"));
  EXPECT_EQ(killed.stdout_text, edited_local.stdout_text)
      << slurp(path_in("client3.err"));
}

TEST_F(ServiceE2eTest, StaleSocketFileIsRecoveredOnStartup) {
  // A previous daemon died without unlinking its socket. The next --serve
  // must detect the corpse (connect refused), unlink, and bind fresh.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                socket_path().c_str());
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ::close(fd);  // bound but never listening: a dead daemon's leftover
  ASSERT_TRUE(fs::exists(socket_path()));

  start_daemon();  // asserts the socket accepts connections
  const std::string leaky = write_file("leaky.c", kLeakySource);
  EXPECT_EQ(
      run_cli(leaky + " --check --connect=" + socket_path(), "").exit_code, 1);
}

}  // namespace
}  // namespace psa::service

#endif  // PSA_SERVICE_E2E
