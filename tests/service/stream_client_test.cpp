// The streaming client (service/client.hpp) against an in-test fake daemon:
// a unix-socket server whose per-connection behavior is scripted, so every
// stream pathology — tears after k units, bogus sequence numbers, busy
// shedding, summaries that under-deliver — is deterministic. The real
// daemon's side of the contract lives in service_e2e_test.cpp; this file
// pins down what the CLIENT must do when the wire misbehaves.
#include "service/client.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "driver/checkpoint.hpp"
#include "driver/supervisor.hpp"
#include "service/protocol.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define PSA_TEST_HAS_UNIX_SOCKETS 1
#else
#define PSA_TEST_HAS_UNIX_SOCKETS 0
#endif

namespace psa::service {
namespace {

#if PSA_TEST_HAS_UNIX_SOCKETS

namespace fs = std::filesystem;

constexpr std::string_view kSourceA =
    "struct node { struct node *next; int v; };\n"
    "void main() {\n"
    "  struct node *p;\n"
    "  p = malloc(sizeof(struct node));\n"
    "  p->next = NULL;\n"
    "}\n";

constexpr std::string_view kSourceB =
    "struct node { struct node *next; int v; };\n"
    "void main() {\n"
    "  struct node *p;\n"
    "  struct node *q;\n"
    "  p = malloc(sizeof(struct node));\n"
    "  q = p;\n"
    "  p->next = NULL;\n"
    "}\n";

constexpr std::string_view kSourceC =
    "struct node { struct node *next; int v; };\n"
    "void main() {\n"
    "  struct node *p;\n"
    "  p = malloc(sizeof(struct node));\n"
    "  free(p);\n"
    "}\n";

driver::AnalysisUnit inline_unit(std::string name, std::string_view source) {
  driver::AnalysisUnit u;
  u.name = std::move(name);
  u.source = std::string(source);
  return u;
}

std::vector<driver::AnalysisUnit> three_units() {
  return {inline_unit("a.c", kSourceA), inline_unit("b.c", kSourceB),
          inline_unit("c.c", kSourceC)};
}

driver::BatchOptions local_options() {
  driver::BatchOptions options;
  options.isolate = false;
  options.check = true;
  return options;
}

/// Analyze one requested unit exactly the way the real handler would hand it
/// to the supervisor, so streamed reports match a local run byte for byte.
driver::UnitReport analyze_one(const driver::AnalysisUnit& unit,
                               const ServiceRequest& request) {
  driver::BatchOptions options;
  options.isolate = false;
  options.check = request.check;
  options.strict_frontend = request.strict_frontend;
  options.engine = request.engine;
  return driver::run_batch({unit}, options).units[0];
}

constexpr std::uint64_t kIoMs = 5000;

void must_send(int fd, MsgType type, const std::string& body) {
  std::string error;
  ASSERT_TRUE(send_frame(fd, type, body, kIoMs, &error)) << error;
}

/// Stream every requested unit then the terminal summary — a well-behaved
/// daemon in a handful of lines.
void stream_everything(int fd, const ServiceRequest& request) {
  std::uint64_t seq = 0;
  for (std::uint32_t i = 0; i < request.units.size(); ++i) {
    must_send(fd, MsgType::kUnitResult,
              encode_unit_result(++seq, i, analyze_one(request.units[i],
                                                       request)));
  }
  SummaryFrame summary;
  summary.seq = ++seq;
  summary.isolated = false;
  summary.units_total = request.units.size();
  summary.units_streamed = request.units.size();
  must_send(fd, MsgType::kSummary, encode_summary(summary));
}

/// Scripted unix-socket daemon: accepts connections on a private socket and
/// hands each decoded request to the test's handler, with the connection
/// index so behavior can differ between the first attempt and the retry.
class FakeDaemon {
 public:
  using Handler =
      std::function<void(int fd, int conn, const ServiceRequest& request)>;

  explicit FakeDaemon(std::string path) : path_(std::move(path)) {
    ::unlink(path_.c_str());
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw std::runtime_error("fake daemon: socket()");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path_.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("fake daemon: socket path too long");
    }
    path_.copy(addr.sun_path, sizeof(addr.sun_path) - 1);
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 8) != 0) {
      ::close(listen_fd_);
      throw std::runtime_error("fake daemon: bind/listen on " + path_);
    }
  }

  ~FakeDaemon() { stop(); }

  const std::string& path() const { return path_; }

  void serve(Handler handler) {
    thread_ = std::thread([this, handler = std::move(handler)] {
      int conn = 0;
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;  // stop() shut the listener down
        Frame frame;
        std::string error;
        if (recv_frame(fd, frame, kIoMs, &error) &&
            frame.type == MsgType::kRequest) {
          {
            const ServiceRequest request = decode_request(frame.body);
            const std::lock_guard<std::mutex> lock(mutex_);
            requests_.emplace_back();
            for (const driver::AnalysisUnit& u : request.units) {
              requests_.back().push_back(u.name);
            }
          }
          handler(fd, conn++, decode_request(frame.body));
        }
        ::close(fd);
      }
    });
  }

  /// Stop accepting; pending handler work finishes first (join).
  void stop() {
    if (listen_fd_ >= 0) {
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    if (thread_.joinable()) thread_.join();
    ::unlink(path_.c_str());
  }

  /// Unit names of each request, in connection order (valid after stop()).
  std::vector<std::vector<std::string>> requests() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return requests_;
  }

 private:
  std::string path_;
  int listen_fd_ = -1;
  std::thread thread_;
  std::mutex mutex_;
  std::vector<std::vector<std::string>> requests_;
};

class StreamClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::path(::testing::TempDir()) /
            ("psa-stream-" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string socket_path() const {
    return (fs::path(dir_) / "s.sock").string();
  }

  ClientOptions client_options(int max_attempts = 3) const {
    ClientOptions client;
    client.socket_path = socket_path();
    client.max_attempts = max_attempts;
    client.backoff_base_ms = 1;  // keep retries fast under test
    client.backoff_cap_ms = 4;
    client.io_timeout_ms = kIoMs;
    return client;
  }

  std::string dir_;
};

TEST_F(StreamClientTest, WellBehavedStreamMatchesALocalRunExactly) {
  const std::vector<driver::AnalysisUnit> units = three_units();
  const std::string local =
      driver::format_batch_report(driver::run_batch(units, local_options()));

  FakeDaemon daemon(socket_path());
  daemon.serve([](int fd, int, const ServiceRequest& request) {
    stream_everything(fd, request);
  });
  const RequestOutcome outcome =
      run_request(units, local_options(), client_options());
  daemon.stop();

  EXPECT_TRUE(outcome.via_service) << outcome.error;
  EXPECT_EQ(outcome.attempts, 1);
  EXPECT_EQ(outcome.reconnects, 0);
  EXPECT_EQ(outcome.streamed_units, units.size());
  EXPECT_EQ(driver::format_batch_report(outcome.result), local);
}

TEST_F(StreamClientTest, TornStreamReRequestsOnlyTheRemainder) {
  const std::vector<driver::AnalysisUnit> units = three_units();
  const std::string local =
      driver::format_batch_report(driver::run_batch(units, local_options()));

  FakeDaemon daemon(socket_path());
  daemon.serve([](int fd, int conn, const ServiceRequest& request) {
    if (conn == 0) {
      // One validated unit, then a mid-batch death: EOF before the summary.
      must_send(fd, MsgType::kUnitResult,
                encode_unit_result(1, 0, analyze_one(request.units[0],
                                                     request)));
      return;
    }
    stream_everything(fd, request);
  });
  const RequestOutcome outcome =
      run_request(units, local_options(), client_options());
  daemon.stop();

  EXPECT_TRUE(outcome.via_service) << outcome.error;
  EXPECT_EQ(outcome.reconnects, 1);
  EXPECT_EQ(outcome.attempts, 2);
  EXPECT_EQ(outcome.streamed_units, units.size());
  EXPECT_EQ(driver::format_batch_report(outcome.result), local);

  // The resume request carried ONLY the units the tear cost — the streamed
  // one is never recomputed, which is the whole point of the journal.
  const auto requests = daemon.requests();
  ASSERT_EQ(requests.size(), 2u);
  EXPECT_EQ(requests[0],
            (std::vector<std::string>{"a.c", "b.c", "c.c"}));
  EXPECT_EQ(requests[1], (std::vector<std::string>{"b.c", "c.c"}));
}

TEST_F(StreamClientTest, NonIncreasingSequenceNumberTearsTheStream) {
  const std::vector<driver::AnalysisUnit> units = three_units();
  const std::string local =
      driver::format_batch_report(driver::run_batch(units, local_options()));

  FakeDaemon daemon(socket_path());
  daemon.serve([](int fd, int conn, const ServiceRequest& request) {
    if (conn == 0) {
      // A replayed frame: same sequence number twice. The first is valid
      // and must be kept; the replay must tear the stream, not overwrite.
      const std::string frame =
          encode_unit_result(7, 0, analyze_one(request.units[0], request));
      must_send(fd, MsgType::kUnitResult, frame);
      must_send(fd, MsgType::kUnitResult, frame);
      return;
    }
    stream_everything(fd, request);
  });
  const RequestOutcome outcome =
      run_request(units, local_options(), client_options());
  daemon.stop();

  EXPECT_TRUE(outcome.via_service) << outcome.error;
  EXPECT_EQ(outcome.reconnects, 1);
  EXPECT_EQ(driver::format_batch_report(outcome.result), local);
  const auto requests = daemon.requests();
  ASSERT_EQ(requests.size(), 2u);
  EXPECT_EQ(requests[1], (std::vector<std::string>{"b.c", "c.c"}));
}

TEST_F(StreamClientTest, BusyDaemonIsRetriedWithoutCountingAReconnect) {
  const std::vector<driver::AnalysisUnit> units = {
      inline_unit("a.c", kSourceA)};
  FakeDaemon daemon(socket_path());
  daemon.serve([](int fd, int conn, const ServiceRequest& request) {
    if (conn == 0) {
      must_send(fd, MsgType::kBusy, "queue full");
      return;
    }
    stream_everything(fd, request);
  });
  const RequestOutcome outcome =
      run_request(units, local_options(), client_options());
  daemon.stop();

  EXPECT_TRUE(outcome.via_service) << outcome.error;
  EXPECT_EQ(outcome.attempts, 2);
  // Load shedding is not a torn stream: no units were lost mid-flight.
  EXPECT_EQ(outcome.reconnects, 0);
}

TEST_F(StreamClientTest, UnderDeliveringSummaryTriggersAResume) {
  const std::vector<driver::AnalysisUnit> units = three_units();
  const std::string local =
      driver::format_batch_report(driver::run_batch(units, local_options()));

  FakeDaemon daemon(socket_path());
  daemon.serve([](int fd, int conn, const ServiceRequest& request) {
    if (conn == 0) {
      // A "clean" termination that still owes units: one result, then a
      // summary admitting 1 of 3. The client must go back for the rest.
      must_send(fd, MsgType::kUnitResult,
                encode_unit_result(1, 0, analyze_one(request.units[0],
                                                     request)));
      SummaryFrame summary;
      summary.seq = 2;
      summary.units_total = request.units.size();
      summary.units_streamed = 1;
      must_send(fd, MsgType::kSummary, encode_summary(summary));
      return;
    }
    stream_everything(fd, request);
  });
  const RequestOutcome outcome =
      run_request(units, local_options(), client_options());
  daemon.stop();

  EXPECT_TRUE(outcome.via_service) << outcome.error;
  EXPECT_EQ(driver::format_batch_report(outcome.result), local);
  const auto requests = daemon.requests();
  ASSERT_EQ(requests.size(), 2u);
  EXPECT_EQ(requests[1], (std::vector<std::string>{"b.c", "c.c"}));
}

TEST_F(StreamClientTest, FallbackComputesOnlyWhatTheStreamsNeverDelivered) {
  const std::vector<driver::AnalysisUnit> units = three_units();
  const std::string local =
      driver::format_batch_report(driver::run_batch(units, local_options()));

  FakeDaemon daemon(socket_path());
  daemon.serve([](int fd, int conn, const ServiceRequest& request) {
    // Every connection tears after the first remaining unit; with
    // max_attempts=2 the client ends up holding 2 of 3 and must compute
    // exactly one unit locally.
    must_send(fd, MsgType::kUnitResult,
              encode_unit_result(1, 0, analyze_one(request.units[0],
                                                   request)));
    (void)conn;
  });
  const RequestOutcome outcome =
      run_request(units, local_options(), client_options(/*max_attempts=*/2));
  daemon.stop();

  EXPECT_FALSE(outcome.via_service);
  EXPECT_EQ(outcome.streamed_units, 2u);  // a.c then b.c, one per stream
  EXPECT_EQ(outcome.reconnects, 2);
  // The merged report is still byte-identical to a pure-local run.
  EXPECT_EQ(driver::format_batch_report(outcome.result), local);
  const auto requests = daemon.requests();
  ASSERT_EQ(requests.size(), 2u);
  EXPECT_EQ(requests[1], (std::vector<std::string>{"b.c", "c.c"}));
}

TEST_F(StreamClientTest, StreamedUnitsAreJournaledIntoTheCheckpoint) {
  const std::vector<driver::AnalysisUnit> units = three_units();
  FakeDaemon daemon(socket_path());
  daemon.serve([](int fd, int, const ServiceRequest& request) {
    stream_everything(fd, request);
  });

  driver::BatchOptions batch = local_options();
  batch.checkpoint_dir = (fs::path(dir_) / "ckpt").string();
  const RequestOutcome outcome = run_request(units, batch, client_options());
  daemon.stop();
  ASSERT_TRUE(outcome.via_service) << outcome.error;

  // Every streamed unit landed in the PSASNAP1 checkpoint as it arrived: a
  // local --resume run serves all three from disk without running anything.
  batch.resume = true;
  int calls = 0;
  const driver::UnitRunner tripwire =
      [&calls](const driver::AnalysisUnit& unit,
               const analysis::Options& engine) {
        ++calls;
        return driver::run_unit_serialized(unit, engine, false);
      };
  const driver::BatchResult resumed = driver::run_batch(units, batch, tripwire);
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(resumed.from_checkpoint_count(), units.size());
  for (const driver::UnitReport& u : resumed.units) {
    EXPECT_EQ(u.outcome.kind, driver::UnitOutcomeKind::kOk);
    ASSERT_TRUE(u.payload.has_value());
  }
}

TEST_F(StreamClientTest, ClientPreservesTheCallersSigpipeDisposition) {
  // Regression for the library-entry contract: run_request must not install
  // a process-wide SIGPIPE handler (MSG_NOSIGNAL does the real work). A
  // host application's own disposition survives a full retry-and-fallback
  // cycle against a peer that hangs up mid-request.
  struct sigaction custom{};
  custom.sa_handler = [](int) {};
  struct sigaction previous{};
  ASSERT_EQ(::sigaction(SIGPIPE, &custom, &previous), 0);

  FakeDaemon daemon(socket_path());
  daemon.serve([](int fd, int, const ServiceRequest&) {
    // Accept the request, answer nothing, hang up: the client's next write
    // or read hits a dead peer.
    (void)fd;
  });
  const RequestOutcome outcome =
      run_request({inline_unit("a.c", kSourceA)}, local_options(),
                  client_options(/*max_attempts=*/2));
  daemon.stop();

  struct sigaction after{};
  ASSERT_EQ(::sigaction(SIGPIPE, nullptr, &after), 0);
  EXPECT_EQ(after.sa_handler, custom.sa_handler)
      << "run_request clobbered the process SIGPIPE disposition";
  ASSERT_EQ(::sigaction(SIGPIPE, &previous, nullptr), 0);

  // And the work still got done, locally.
  ASSERT_EQ(outcome.result.units.size(), 1u);
  EXPECT_EQ(outcome.result.units[0].outcome.kind,
            driver::UnitOutcomeKind::kOk);
}

#else  // !PSA_TEST_HAS_UNIX_SOCKETS

TEST(StreamClientTest, SkippedWithoutUnixSockets) { GTEST_SKIP(); }

#endif

}  // namespace
}  // namespace psa::service
