// The TOUCH property (§3): built only at L3, only inside loops, only for
// induction pvars, and cleared at loop exits.
#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"

namespace psa::analysis {
namespace {

using rsg::NodeRef;
using rsg::Rsg;

constexpr std::string_view kTraversal = R"(
  struct node { struct node *nxt; int v; };
  void main() {
    struct node *list; struct node *t; struct node *p;
    int i; int n;
    list = NULL; i = 0; n = 30;
    while (i < n) {
      t = malloc(sizeof(struct node));
      t->nxt = list;
      list = t;
      i = i + 1;
    }
    t = NULL;
    p = list;
    while (p != NULL) {
      p->v = 0;
      p = p->nxt;
    }
  }
)";

struct TouchProbe {
  ProgramAnalysis program;
  AnalysisResult result;

  explicit TouchProbe(rsg::AnalysisLevel level) {
    program = prepare(kTraversal);
    Options options;
    options.level = level;
    result = analyze_program(program, options);
    EXPECT_TRUE(result.converged());
  }

  /// Nodes carrying `p` in their TOUCH set at the traversal load p = p->nxt.
  int touched_at_load() const {
    const auto p = program.symbol("p");
    int touched = 0;
    for (cfg::NodeId id = 0; id < program.cfg.size(); ++id) {
      const auto& s = program.cfg.node(id).stmt;
      if (s.op != cfg::SimpleOp::kLoad || s.x != p || s.y != p) continue;
      for (const Rsg& g : result.per_node[id].graphs()) {
        for (const NodeRef n : g.node_refs()) {
          touched += g.props(n).touch.contains(p) ? 1 : 0;
        }
      }
    }
    return touched;
  }

  /// Nodes carrying any TOUCH at the function exit.
  int touched_at_exit() const {
    int touched = 0;
    for (const Rsg& g : result.at_exit(program.cfg).graphs()) {
      for (const NodeRef n : g.node_refs()) {
        touched += g.props(n).touch.empty() ? 0 : 1;
      }
    }
    return touched;
  }
};

TEST(TouchTest, BuiltInsideTheLoopAtL3) {
  const TouchProbe probe(rsg::AnalysisLevel::kL3);
  EXPECT_GT(probe.touched_at_load(), 0);
}

TEST(TouchTest, NotBuiltAtL1OrL2) {
  EXPECT_EQ(TouchProbe(rsg::AnalysisLevel::kL1).touched_at_load(), 0);
  EXPECT_EQ(TouchProbe(rsg::AnalysisLevel::kL2).touched_at_load(), 0);
}

TEST(TouchTest, ClearedAtLoopExit) {
  const TouchProbe probe(rsg::AnalysisLevel::kL3);
  EXPECT_EQ(probe.touched_at_exit(), 0);
}

TEST(TouchTest, L3KeepsVisitedSeparateMidLoop) {
  // At the traversal load, L3 must hold at least as many nodes as L2: the
  // visited prefix (touched by p) cannot summarize with the unvisited rest.
  const TouchProbe l2(rsg::AnalysisLevel::kL2);
  const TouchProbe l3(rsg::AnalysisLevel::kL3);
  auto nodes_at_load = [](const TouchProbe& probe) {
    const auto p = probe.program.symbol("p");
    std::size_t nodes = 0;
    for (cfg::NodeId id = 0; id < probe.program.cfg.size(); ++id) {
      const auto& s = probe.program.cfg.node(id).stmt;
      if (s.op != cfg::SimpleOp::kLoad || s.x != p || s.y != p) continue;
      nodes += probe.result.per_node[id].total_nodes();
    }
    return nodes;
  };
  EXPECT_GE(nodes_at_load(l3), nodes_at_load(l2));
}

TEST(TouchTest, NonInductionPvarNeverTouches) {
  // q re-reads the loop-invariant head each iteration: it never advances
  // over the structure, so it is not an induction pvar and never enters a
  // TOUCH set even at L3. (A *trailing* pointer `q = p` would rightly be
  // induction — it visits every node one step behind the cursor.)
  const auto program = prepare(R"(
    struct node { struct node *nxt; int v; };
    void main() {
      struct node *list; struct node *t; struct node *p; struct node *q;
      int i; int n;
      list = NULL; i = 0; n = 30;
      while (i < n) {
        t = malloc(sizeof(struct node));
        t->nxt = list;
        list = t;
        i = i + 1;
      }
      t = NULL;
      p = list; q = NULL;
      while (p != NULL) {
        q = list;
        p = p->nxt;
      }
    }
  )");
  Options options;
  options.level = rsg::AnalysisLevel::kL3;
  const auto result = analyze_program(program, options);
  ASSERT_TRUE(result.converged());
  const auto q = program.symbol("q");
  for (const auto& set : result.per_node) {
    for (const Rsg& g : set.graphs()) {
      for (const NodeRef n : g.node_refs()) {
        EXPECT_FALSE(g.props(n).touch.contains(q));
      }
    }
  }
}

}  // namespace
}  // namespace psa::analysis
