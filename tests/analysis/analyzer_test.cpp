// The analyzer facade: prepare / analyze_source / error paths.
#include "analysis/analyzer.hpp"

#include <gtest/gtest.h>

#include "support/metrics.hpp"

namespace psa::analysis {
namespace {

constexpr std::string_view kGood = R"(
  struct node { struct node *nxt; };
  void main() { struct node *p; p = malloc(struct node); }
)";

TEST(AnalyzerTest, PrepareBuildsEverything) {
  const ProgramAnalysis program = prepare(kGood);
  EXPECT_GT(program.cfg.size(), 2u);
  EXPECT_FALSE(program.sema.functions.empty());
  EXPECT_TRUE(program.symbol("p").valid());
  EXPECT_FALSE(program.symbol("no_such_name").valid());
}

TEST(AnalyzerTest, AnalyzeSourceOneCall) {
  const AnalysisResult result = analyze_source(kGood);
  EXPECT_TRUE(result.converged());
}

TEST(AnalyzerTest, SyntaxErrorThrows) {
  EXPECT_THROW((void)prepare("void main() { while }"), FrontendError);
}

TEST(AnalyzerTest, SemaErrorThrows) {
  EXPECT_THROW((void)prepare("void main() { x = 1; }"), FrontendError);
}

TEST(AnalyzerTest, MissingFunctionThrows) {
  EXPECT_THROW((void)prepare(kGood, "other"), FrontendError);
  EXPECT_NO_THROW((void)prepare(R"(
    struct node { struct node *nxt; };
    void helper() { struct node *q; q = NULL; }
    void main() { }
  )", "helper"));
}

TEST(AnalyzerTest, DiagnosticsCarriedInException) {
  try {
    (void)prepare("void main() { undeclared = 1; }");
    FAIL() << "expected FrontendError";
  } catch (const FrontendError& e) {
    EXPECT_NE(std::string(e.what()).find("undeclared"), std::string::npos);
  }
}

TEST(AnalyzerTest, NonMainFunctionAnalyzable) {
  const ProgramAnalysis program = prepare(R"(
    struct node { struct node *nxt; };
    void build() {
      struct node *list; struct node *t; int i;
      list = NULL; i = 0;
      while (i < 5) {
        t = malloc(struct node);
        t->nxt = list;
        list = t;
        i = i + 1;
      }
    }
  )", "build");
  const AnalysisResult result = analyze_program(program, {});
  EXPECT_TRUE(result.converged());
  EXPECT_FALSE(result.at_exit(program.cfg).empty());
}

TEST(AnalyzerTest, EmptyMainConverges) {
  const AnalysisResult result = analyze_source("void main() { }");
  EXPECT_TRUE(result.converged());
}

#if PSA_METRICS
TEST(AnalyzerTest, SalvagedPrepareBumpsTheSalvageCounters) {
  FrontendOptions frontend;
  frontend.salvage = true;
  const support::MetricsRegion region;
  const auto program = prepare(R"(
    struct node { struct node *nxt; };
    void broken() { x = ; }
    void main() {
      struct node *p;
      p = malloc(struct node);
      trace(p);
    }
  )", "main", frontend);
  EXPECT_EQ(program.salvage.havoc_sites, 1u);
  EXPECT_EQ(program.salvage.skipped_decls, 1u);
  const support::MetricsSnapshot delta = region.delta();
  EXPECT_EQ(delta[support::Counter::kHavocSites], 1u);
  EXPECT_EQ(delta[support::Counter::kSkippedDecls], 1u);
  EXPECT_EQ(delta[support::Counter::kSalvagedUnits], 1u);
}

TEST(AnalyzerTest, CleanPrepareLeavesTheSalvageCountersUntouched) {
  const support::MetricsRegion region;
  (void)prepare("void main() { }");
  const support::MetricsSnapshot delta = region.delta();
  EXPECT_EQ(delta[support::Counter::kHavocSites], 0u);
  EXPECT_EQ(delta[support::Counter::kSkippedDecls], 0u);
  EXPECT_EQ(delta[support::Counter::kSalvagedUnits], 0u);
}
#endif  // PSA_METRICS

}  // namespace
}  // namespace psa::analysis
