// The worklist fixpoint: convergence, loop summarization, guard rails,
// determinism, thread independence.
#include "analysis/engine.hpp"

#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "corpus/corpus.hpp"

namespace psa::analysis {
namespace {

using rsg::Cardinality;
using rsg::kNoNode;
using rsg::NodeRef;
using rsg::Rsg;

constexpr std::string_view kListBuild = R"(
  struct node { struct node *nxt; int v; };
  void main() {
    struct node *list; struct node *t;
    int i; int n;
    list = NULL; i = 0; n = 100;
    while (i < n) {
      t = malloc(sizeof(struct node));
      t->nxt = list;
      list = t;
      i = i + 1;
    }
    t = NULL;
  }
)";

TEST(EngineTest, ConvergesOnLoops) {
  const auto program = prepare(kListBuild);
  const auto result = analyze_program(program, {});
  EXPECT_TRUE(result.converged());
  EXPECT_GT(result.node_visits, 0u);
  EXPECT_GT(result.seconds, 0.0);
}

TEST(EngineTest, UnboundedListBecomesSummary) {
  const auto program = prepare(kListBuild);
  const auto result = analyze_program(program, {});
  const auto& at_exit = result.at_exit(program.cfg);
  ASSERT_FALSE(at_exit.empty());
  // Some graph must contain a summary node (lists of length >= 3), and
  // every graph stays unshared.
  bool some_summary = false;
  for (const Rsg& g : at_exit.graphs()) {
    for (const NodeRef n : g.node_refs()) {
      if (g.props(n).cardinality == Cardinality::kMany) some_summary = true;
      EXPECT_FALSE(g.props(n).shared);
    }
  }
  EXPECT_TRUE(some_summary);
}

TEST(EngineTest, EmptyAndShortListsRepresented) {
  const auto program = prepare(kListBuild);
  const auto result = analyze_program(program, {});
  const auto& at_exit = result.at_exit(program.cfg);
  bool list_null = false;
  bool list_bound = false;
  for (const Rsg& g : at_exit.graphs()) {
    (g.pvar_target(program.symbol("list")) == kNoNode ? list_null : list_bound) =
        true;
  }
  EXPECT_TRUE(list_null);   // the loop may run zero times
  EXPECT_TRUE(list_bound);  // or at least once
}

TEST(EngineTest, PerNodeStatesCoverReachableStatements) {
  const auto program = prepare(kListBuild);
  const auto result = analyze_program(program, {});
  ASSERT_EQ(result.per_node.size(), program.cfg.size());
  EXPECT_FALSE(result.per_node[program.cfg.entry()].empty());
  EXPECT_FALSE(result.per_node[program.cfg.exit()].empty());
}

TEST(EngineTest, IterationLimitReportedUnderHardFail) {
  const auto program = prepare(kListBuild);
  Options options;
  options.max_node_visits = 3;
  options.budget_policy = BudgetPolicy::kHardFail;
  const auto result = analyze_program(program, options);
  EXPECT_EQ(result.status, AnalysisStatus::kIterationLimit);
}

TEST(EngineTest, IterationLimitDegradesToConvergence) {
  const auto program = prepare(kListBuild);
  Options options;
  options.max_node_visits = 3;  // kDegrade is the default
  const auto result = analyze_program(program, options);
  EXPECT_EQ(result.status, AnalysisStatus::kConverged);
  EXPECT_TRUE(result.degraded());
}

TEST(EngineTest, MemoryBudgetReportedUnderHardFail) {
  const auto program = prepare(corpus::find_program("sparse_matvec")->source);
  Options options;
  options.memory_budget_bytes = 64 * 1024;  // far too small
  options.budget_policy = BudgetPolicy::kHardFail;
  const auto result = analyze_program(program, options);
  EXPECT_EQ(result.status, AnalysisStatus::kOutOfMemory);
}

TEST(EngineTest, MemoryBudgetDegradesToConvergence) {
  const auto program = prepare(corpus::find_program("sparse_matvec")->source);
  Options options;
  options.memory_budget_bytes = 64 * 1024;  // far too small
  const auto result = analyze_program(program, options);
  EXPECT_EQ(result.status, AnalysisStatus::kConverged);
  EXPECT_TRUE(result.degraded());
}

TEST(EngineTest, UndegradedRunReportsNothing) {
  const auto program = prepare(kListBuild);
  const auto result = analyze_program(program, {});
  EXPECT_TRUE(result.converged());
  EXPECT_FALSE(result.degraded());
  EXPECT_EQ(result.degradation.summary(), "no degradation");
}

TEST(EngineTest, MemorySnapshotPopulated) {
  const auto program = prepare(kListBuild);
  const auto result = analyze_program(program, {});
  EXPECT_GT(result.peak_bytes(), 0u);
  EXPECT_GT(result.memory.graphs_created, 0u);
  EXPECT_GT(result.memory.nodes_created, 0u);
}

TEST(EngineTest, DeterministicAcrossRuns) {
  const auto program = prepare(kListBuild);
  const auto r1 = analyze_program(program, {});
  const auto r2 = analyze_program(program, {});
  ASSERT_EQ(r1.per_node.size(), r2.per_node.size());
  for (std::size_t i = 0; i < r1.per_node.size(); ++i) {
    EXPECT_TRUE(r1.per_node[i].equals(r2.per_node[i])) << "stmt " << i;
  }
}

TEST(EngineTest, ParallelRsgsMatchSerial) {
  const auto program = prepare(corpus::find_program("dll")->source);
  Options serial;
  Options parallel;
  parallel.threads = 4;
  const auto rs = analyze_program(program, serial);
  const auto rp = analyze_program(program, parallel);
  ASSERT_TRUE(rs.converged());
  ASSERT_TRUE(rp.converged());
  ASSERT_EQ(rs.per_node.size(), rp.per_node.size());
  for (std::size_t i = 0; i < rs.per_node.size(); ++i) {
    EXPECT_TRUE(rs.per_node[i].equals(rp.per_node[i])) << "stmt " << i;
  }
}

TEST(EngineTest, JoinAblationGrowsSets) {
  const auto program = prepare(corpus::find_program("sll")->source);
  Options with_join;
  Options without_join;
  without_join.enable_join = false;
  without_join.widen_threshold = 0;  // measure the raw effect
  with_join.widen_threshold = 0;
  const auto rj = analyze_program(program, with_join);
  const auto rn = analyze_program(program, without_join);
  ASSERT_TRUE(rj.converged());
  ASSERT_TRUE(rn.converged());
  std::size_t joined_total = 0;
  std::size_t unjoined_total = 0;
  for (std::size_t i = 0; i < rj.per_node.size(); ++i) {
    joined_total += rj.per_node[i].size();
    unjoined_total += rn.per_node[i].size();
  }
  EXPECT_LT(joined_total, unjoined_total);
}

TEST(EngineTest, StatusToString) {
  EXPECT_EQ(to_string(AnalysisStatus::kConverged), "converged");
  EXPECT_EQ(to_string(AnalysisStatus::kOutOfMemory), "out of memory budget");
  EXPECT_EQ(to_string(AnalysisStatus::kIterationLimit), "iteration limit");
  EXPECT_EQ(to_string(AnalysisStatus::kSetLimit), "RSRSG size limit");
  EXPECT_EQ(to_string(AnalysisStatus::kDeadline), "deadline expired");
  EXPECT_EQ(to_string(AnalysisStatus::kCancelled), "cancelled");
}

TEST(EngineTest, AllLevelsConvergeOnSmallPrograms) {
  for (const char* name : {"sll", "dll", "list_reverse", "nary_tree"}) {
    const auto program = prepare(corpus::find_program(name)->source);
    for (const auto level :
         {rsg::AnalysisLevel::kL1, rsg::AnalysisLevel::kL2,
          rsg::AnalysisLevel::kL3}) {
      Options options;
      options.level = level;
      const auto result = analyze_program(program, options);
      EXPECT_TRUE(result.converged())
          << name << " at " << rsg::to_string(level);
      EXPECT_FALSE(result.at_exit(program.cfg).empty())
          << name << " at " << rsg::to_string(level);
    }
  }
}

}  // namespace
}  // namespace psa::analysis
