// The read side of the observability layer (analysis/profile.hpp):
// determinism of the operation counters, gauge collection against a hand
// walk, aggregation-equals-sum, the psa.metrics.v1 JSONL record round-
// tripped through the in-tree RFC 8259 parser, and the --profile table.
#include "analysis/profile.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/engine.hpp"
#include "support/metrics.hpp"
#include "testing/json.hpp"

namespace psa::analysis {
namespace {

using support::Counter;
using support::counter_name;
using support::kCounterCount;

constexpr std::string_view kListBuild = R"(
  struct node { struct node *nxt; int v; };
  void main() {
    struct node *list; struct node *t;
    int i; int n;
    list = NULL; i = 0; n = 100;
    while (i < n) {
      t = malloc(sizeof(struct node));
      t->nxt = list;
      list = t;
      i = i + 1;
    }
    t = NULL;
  }
)";

TEST(ProfileTest, OperationCountersAreDeterministicAcrossRuns) {
  const auto program = prepare(kListBuild);
  const auto first = analyze_program(program, {});
  const auto second = analyze_program(program, {});
  ASSERT_TRUE(first.converged());
  ASSERT_TRUE(second.converged());
#if PSA_METRICS
  EXPECT_GT(first.ops[Counter::kWorklistVisits], 0u);
  EXPECT_GT(first.ops[Counter::kJoinAttempts], 0u);
#endif
  // Same input, same options: every non-timer counter must match exactly.
  EXPECT_TRUE(first.ops.same_operations(second.ops));
}

TEST(ProfileTest, CollectGaugesMatchesHandWalk) {
  const auto program = prepare(kListBuild);
  const auto result = analyze_program(program, {});
  const PopulationGauges g = collect_gauges(result);

  std::uint64_t live_rsgs = 0;
  std::uint64_t total_nodes = 0;
  std::uint64_t shared_nodes = 0;
  std::uint64_t cyclelink_nodes = 0;
  for (const auto& state : result.per_node) {
    live_rsgs += state.size();
    for (const rsg::Rsg& graph : state.graphs()) {
      for (const rsg::NodeRef n : graph.node_refs()) {
        ++total_nodes;
        if (graph.props(n).shared) ++shared_nodes;
        if (!graph.props(n).cyclelinks.empty()) ++cyclelink_nodes;
      }
    }
  }
  EXPECT_EQ(g.live_rsgs, live_rsgs);
  EXPECT_EQ(g.total_nodes, total_nodes);
  EXPECT_EQ(g.shared_nodes, shared_nodes);
  EXPECT_EQ(g.cyclelink_nodes, cyclelink_nodes);
  EXPECT_GT(g.live_rsgs, 0u);
  EXPECT_GE(g.live_rsgs, g.max_rsgs_per_stmt);
  EXPECT_GE(g.total_nodes, g.max_nodes_per_rsg);
  EXPECT_GT(g.max_rsgs_per_stmt, 0u);
  EXPECT_DOUBLE_EQ(g.avg_nodes_per_rsg,
                   static_cast<double>(total_nodes) / live_rsgs);
  EXPECT_GE(g.shared_density, 0.0);
  EXPECT_LE(g.shared_density, 1.0);
  EXPECT_GE(g.cyclelinks_density, 0.0);
  EXPECT_LE(g.cyclelinks_density, 1.0);
}

TEST(ProfileTest, CollectUnitMetricsCarriesIdentityAndOutcome) {
  const auto program = prepare(kListBuild);
  const auto result = analyze_program(program, {});
  const UnitMetrics m =
      collect_unit_metrics("lists.c", "main", "L2", result);
  EXPECT_EQ(m.unit, "lists.c");
  EXPECT_EQ(m.function, "main");
  EXPECT_EQ(m.level, "L2");
  EXPECT_EQ(m.status, std::string(to_string(result.status)));
  EXPECT_EQ(m.node_visits, result.node_visits);
  EXPECT_DOUBLE_EQ(m.wall_seconds, result.seconds);
  EXPECT_FALSE(m.degraded);
  EXPECT_EQ(m.worst_rung, "none");
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    EXPECT_EQ(m.ops.values[i], result.ops.values[i]);
  }
}

UnitMetrics synthetic_unit(const std::string& name, std::uint64_t scale) {
  UnitMetrics m;
  m.unit = name;
  m.function = "main";
  m.level = "L2";
  m.status = "converged";
  m.wall_seconds = 0.5 * static_cast<double>(scale);
  m.node_visits = 10 * scale;
  m.ops.at(Counter::kJoinAttempts) = 100 * scale;
  m.ops.at(Counter::kPruneCalls) = 7 * scale;
  m.memory.peak_bytes = 1000 * scale;
  m.memory.live_bytes = 100 * scale;
  m.gauges.live_rsgs = 4 * scale;
  m.gauges.total_nodes = 20 * scale;
  m.gauges.max_rsgs_per_stmt = scale;
  m.gauges.max_nodes_per_rsg = 5 * scale;
  m.gauges.shared_nodes = 2 * scale;
  return m;
}

TEST(ProfileTest, AggregateEqualsElementwiseSum) {
  const std::vector<UnitMetrics> units = {
      synthetic_unit("a.c", 1), synthetic_unit("b.c", 2),
      synthetic_unit("c.c", 3)};
  const UnitMetrics agg = aggregate_metrics(units);
  EXPECT_EQ(agg.unit, "aggregate");
  EXPECT_EQ(agg.level, "-");
  EXPECT_EQ(agg.status, "aggregate");
  EXPECT_EQ(agg.node_visits, 60u);
  EXPECT_DOUBLE_EQ(agg.wall_seconds, 3.0);
  EXPECT_EQ(agg.ops[Counter::kJoinAttempts], 600u);
  EXPECT_EQ(agg.ops[Counter::kPruneCalls], 42u);
  EXPECT_EQ(agg.memory.peak_bytes, 6000u);
  EXPECT_EQ(agg.gauges.live_rsgs, 24u);
  EXPECT_EQ(agg.gauges.total_nodes, 120u);
  // max_* gauges take the max, not the sum.
  EXPECT_EQ(agg.gauges.max_rsgs_per_stmt, 3u);
  EXPECT_EQ(agg.gauges.max_nodes_per_rsg, 15u);
  // Densities are recomputed from the summed totals.
  EXPECT_DOUBLE_EQ(agg.gauges.shared_density, 12.0 / 120.0);
  EXPECT_DOUBLE_EQ(agg.gauges.avg_nodes_per_rsg, 120.0 / 24.0);
}

TEST(ProfileTest, MetricsJsonRoundTripsThroughTheParser) {
  const UnitMetrics m = synthetic_unit("dir/unit.c", 2);
  const std::string line = to_metrics_json(m, "unit");
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');
  // One line per record: no interior newlines.
  EXPECT_EQ(line.find('\n'), line.size() - 1);

  const auto doc = testing::parse_json(line);
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->str("schema"), "psa.metrics.v1");
  EXPECT_EQ(doc->str("kind"), "unit");
  EXPECT_EQ(doc->str("unit"), "dir/unit.c");
  EXPECT_EQ(doc->str("function"), "main");
  EXPECT_EQ(doc->str("level"), "L2");
  EXPECT_EQ(doc->str("status"), "converged");
  EXPECT_DOUBLE_EQ(doc->num("wall_seconds"), 1.0);
  EXPECT_DOUBLE_EQ(doc->num("node_visits"), 20.0);

  const testing::JsonValue* ops = doc->find("ops");
  ASSERT_NE(ops, nullptr);
  ASSERT_TRUE(ops->is_object());
  // Every counter appears under its stable name with the exact value.
  EXPECT_EQ(ops->object.size(), kCounterCount);
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const auto c = static_cast<Counter>(i);
    const std::string key{counter_name(c)};
    EXPECT_DOUBLE_EQ(ops->num(key), static_cast<double>(m.ops[c])) << key;
  }
  // The service-layer vocabulary (docs/SERVICE.md) is part of the stable
  // schema: these counters must be present under exactly these names even
  // when zero — consumers key on them for cache hit-rate dashboards.
  for (const char* key :
       {"cache_hits", "cache_misses", "cache_stores", "cache_evictions",
        "cache_self_heals", "service_requests", "service_busy_rejections",
        "service_retries", "stream_frames", "reconnects", "resumed_units",
        "cache_sweep_runs", "cache_sweep_evictions", "cache_sweep_bytes",
        "func_cache_hits", "func_cache_misses", "func_cache_stores",
        "summary_reuse", "phase_cache_lookup_wall_ns",
        "phase_request_wall_ns"}) {
    EXPECT_NE(ops->find(key), nullptr) << key;
  }
  // The interprocedural vocabulary (docs/OBSERVABILITY.md): summary
  // production/consumption and the havoc-fallback rate, plus the phase_ipa
  // timers — dashboards track fallback/applied as the precision burn-down.
  for (const char* key :
       {"summary_computed", "summary_applied", "summary_fixpoint_iters",
        "call_havoc_fallback", "phase_ipa_wall_ns", "phase_ipa_cpu_ns"}) {
    EXPECT_NE(ops->find(key), nullptr) << key;
  }

  const testing::JsonValue* gauges = doc->find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->num("live_rsgs"), 8.0);
  EXPECT_DOUBLE_EQ(gauges->num("total_nodes"), 40.0);

  const testing::JsonValue* memory = doc->find("memory");
  ASSERT_NE(memory, nullptr);
  EXPECT_DOUBLE_EQ(memory->num("peak_bytes"), 2000.0);
}

TEST(ProfileTest, MetricsJsonEscapesPathologicalStrings) {
  UnitMetrics m = synthetic_unit("we\"ird\\path\nwith.c", 1);
  m.function = "ma\tin";
  const std::string line = to_metrics_json(m, "unit");
  const auto doc = testing::parse_json(line);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->str("unit"), "we\"ird\\path\nwith.c");
  EXPECT_EQ(doc->str("function"), "ma\tin");
}

TEST(ProfileTest, FormatProfileListsEverySection) {
  const auto program = prepare(kListBuild);
  const auto result = analyze_program(program, {});
  const UnitMetrics m = collect_unit_metrics("lists.c", "main", "L2", result);
  const std::string table = format_profile(m);
  EXPECT_NE(table.find("phases:"), std::string::npos);
  EXPECT_NE(table.find("worklist:"), std::string::npos);
  EXPECT_NE(table.find("rsg operations:"), std::string::npos);
  EXPECT_NE(table.find("governor:"), std::string::npos);
  EXPECT_NE(table.find("gauges:"), std::string::npos);
#if PSA_METRICS
  EXPECT_NE(table.find("join"), std::string::npos);
#endif
}

}  // namespace
}  // namespace psa::analysis
