// Serialization round-trip property suite for analysis-layer snapshots: for
// every corpus program at L1/L2/L3 and for fuzz-generated programs, the
// restored Rsrsg / AnalysisResult is canon-identical to the original —
// member-for-member rsg_equal states, bit-exact scalars, intact degradation
// report. Plus corruption tolerance at this layer: hostile bytes throw
// SnapshotError, never UB.
#include "analysis/snapshot.hpp"

#include <gtest/gtest.h>

#include <string>

#include "analysis/analyzer.hpp"
#include "corpus/corpus.hpp"
#include "rsg/canon.hpp"
#include "testing/program_gen.hpp"

namespace psa::analysis {
namespace {

void expect_same_result(const AnalysisResult& a, const AnalysisResult& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.seconds, b.seconds);  // f64 bit pattern round-trips exactly
  EXPECT_EQ(a.node_visits, b.node_visits);
  EXPECT_EQ(a.memory.live_bytes, b.memory.live_bytes);
  EXPECT_EQ(a.memory.peak_bytes, b.memory.peak_bytes);
  EXPECT_EQ(a.memory.total_allocated_bytes, b.memory.total_allocated_bytes);
  EXPECT_EQ(a.memory.nodes_created, b.memory.nodes_created);
  EXPECT_EQ(a.memory.graphs_created, b.memory.graphs_created);

  EXPECT_EQ(a.degradation.rung_applications, b.degradation.rung_applications);
  EXPECT_EQ(a.degradation.rung_seconds, b.degradation.rung_seconds);
  EXPECT_EQ(a.degradation.deadline_drain, b.degradation.deadline_drain);
  EXPECT_EQ(a.degradation.memory_budget_unreachable,
            b.degradation.memory_budget_unreachable);
  EXPECT_EQ(a.degradation.floor, b.degradation.floor);
  ASSERT_EQ(a.degradation.events.size(), b.degradation.events.size());
  for (std::size_t i = 0; i < a.degradation.events.size(); ++i) {
    const auto& ea = a.degradation.events[i];
    const auto& eb = b.degradation.events[i];
    EXPECT_EQ(ea.node, eb.node);
    EXPECT_EQ(ea.rung, eb.rung);
    EXPECT_EQ(ea.trigger, eb.trigger);
    EXPECT_EQ(ea.graphs_before, eb.graphs_before);
    EXPECT_EQ(ea.graphs_after, eb.graphs_after);
  }

  ASSERT_EQ(a.per_node.size(), b.per_node.size());
  for (std::size_t i = 0; i < a.per_node.size(); ++i) {
    EXPECT_EQ(a.per_node[i].widened(), b.per_node[i].widened()) << "stmt " << i;
    ASSERT_EQ(a.per_node[i].size(), b.per_node[i].size()) << "stmt " << i;
    // Member-for-member, not just set-equal: restore() must not reorder,
    // join or coarsen.
    for (std::size_t j = 0; j < a.per_node[i].size(); ++j) {
      EXPECT_TRUE(rsg::rsg_equal(a.per_node[i].graphs()[j],
                                 b.per_node[i].graphs()[j]))
          << "stmt " << i << " member " << j;
    }
  }
}

class CorpusSnapshotRoundTrip
    : public ::testing::TestWithParam<rsg::AnalysisLevel> {};

TEST_P(CorpusSnapshotRoundTrip, ExitStateAndFullResultAreCanonIdentical) {
  for (const corpus::CorpusProgram& program : corpus::all_programs()) {
    SCOPED_TRACE(std::string(program.name));
    auto prepared = prepare(program.source);
    Options options;
    options.level = GetParam();
    const AnalysisResult result = analyze_program(prepared, options);

    // Exit-state Rsrsg snapshot, restored into the originating interner
    // (rsg_equal is symbol-id-based, so exact identity is a same-interner
    // property; cross-interner stability is the byte-identity check below).
    const Rsrsg& exit_state = result.at_exit(prepared.cfg);
    {
      const std::string bytes =
          serialize_rsrsg(exit_state, prepared.interner());
      const Rsrsg back = deserialize_rsrsg(bytes, *prepared.unit.interner);
      EXPECT_EQ(exit_state.widened(), back.widened());
      ASSERT_EQ(exit_state.size(), back.size());
      for (std::size_t j = 0; j < exit_state.size(); ++j) {
        EXPECT_TRUE(
            rsg::rsg_equal(exit_state.graphs()[j], back.graphs()[j]))
            << "member " << j;
      }
      EXPECT_TRUE(exit_state.equals(back));

      // Cross-interner round trip re-serializes to the exact same bytes.
      support::Interner fresh;
      const Rsrsg reinterned = deserialize_rsrsg(bytes, fresh);
      EXPECT_EQ(serialize_rsrsg(reinterned, fresh), bytes);
    }

    // Whole-result snapshot.
    {
      const std::string bytes =
          serialize_analysis_result(result, prepared.interner());
      const AnalysisResult back =
          deserialize_analysis_result(bytes, *prepared.unit.interner);
      expect_same_result(result, back);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, CorpusSnapshotRoundTrip,
                         ::testing::Values(rsg::AnalysisLevel::kL1,
                                           rsg::AnalysisLevel::kL2,
                                           rsg::AnalysisLevel::kL3),
                         [](const auto& info) {
                           return std::string(rsg::to_string(info.param));
                         });

TEST(FuzzSnapshotRoundTrip, RandomProgramResultsAreCanonIdentical) {
  for (unsigned seed = 0; seed < 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::string source = psa::testing::generate_program(seed);
    auto prepared = prepare(source);
    Options options;
    options.level = rsg::AnalysisLevel::kL2;
    options.max_node_visits = 200'000;
    const AnalysisResult result = analyze_program(prepared, options);

    const std::string bytes =
        serialize_analysis_result(result, prepared.interner());
    const AnalysisResult back =
        deserialize_analysis_result(bytes, *prepared.unit.interner);
    expect_same_result(result, back);
  }
}

TEST(FuzzSnapshotRoundTrip, WidenedRunRoundTripsDegradationReport) {
  // Force the governor to work (tiny widen threshold) so the snapshot
  // carries a non-trivial degradation report and widened-mode sets.
  const std::string source = psa::testing::generate_program(3);
  auto prepared = prepare(source);
  Options options;
  options.level = rsg::AnalysisLevel::kL2;
  options.widen_threshold = 2;
  options.max_node_visits = 200'000;
  const AnalysisResult result = analyze_program(prepared, options);

  const std::string bytes =
      serialize_analysis_result(result, prepared.interner());
  const AnalysisResult back =
      deserialize_analysis_result(bytes, *prepared.unit.interner);
  expect_same_result(result, back);
}

TEST(SnapshotCorruption, BitFlipsInResultSnapshotsAreRejected) {
  const auto prepared = prepare(std::string(
      corpus::find_program("sll")->source));
  const AnalysisResult result = analyze_program(prepared, Options{});
  const std::string bytes =
      serialize_analysis_result(result, prepared.interner());

  support::Interner fresh;
  // Sampled flips (the exhaustive sweep lives in serialize_test.cpp —
  // result snapshots are big).
  for (std::size_t byte = 0; byte < bytes.size();
       byte += 1 + bytes.size() / 256) {
    std::string mutated = bytes;
    mutated[byte] = static_cast<char>(mutated[byte] ^ 0x20);
    EXPECT_THROW((void)deserialize_analysis_result(mutated, fresh),
                 SnapshotError)
        << "byte " << byte;
  }
}

TEST(SnapshotCorruption, TruncationsOfResultSnapshotsAreRejected) {
  const auto prepared = prepare(std::string(
      corpus::find_program("sll")->source));
  const AnalysisResult result = analyze_program(prepared, Options{});
  const std::string bytes =
      serialize_analysis_result(result, prepared.interner());

  support::Interner fresh;
  for (std::size_t n = 0; n < bytes.size(); n += 1 + bytes.size() / 128) {
    EXPECT_THROW(
        (void)deserialize_analysis_result(bytes.substr(0, n), fresh),
        SnapshotError)
        << "prefix length " << n;
  }
}

}  // namespace
}  // namespace psa::analysis
