// Direct unit tests of execute_statement on hand-built graphs — the six
// statements isolated from the engine (no fixpoint, no joins).
#include <gtest/gtest.h>

#include "analysis/semantics.hpp"

#include "rsg/canon.hpp"
#include "testing/rsg_builder.hpp"

namespace psa::analysis {
namespace {

using psa::testing::RsgBuilder;
using rsg::Cardinality;
using rsg::kNoNode;
using rsg::NodeRef;
using rsg::Rsg;

/// A minimal harness: one statement, one input graph, no CFG context.
struct Harness {
  RsgBuilder b;
  cfg::Cfg cfg;  // unused by the transfer except for TOUCH (empty here)
  cfg::InductionInfo induction;
  TransferContext ctx;
  cfg::CfgNode node;

  explicit Harness(rsg::AnalysisLevel level = rsg::AnalysisLevel::kL2) {
    ctx.policy = rsg::LevelPolicy{level};
    ctx.cfg = &cfg;
    ctx.induction = &induction;
  }

  std::vector<Rsg> exec(cfg::SimpleOp op, std::string_view x = "",
                        std::string_view y = "", std::string_view sel = "") {
    node.stmt.op = op;
    if (!x.empty()) node.stmt.x = b.sym(x);
    if (!y.empty()) node.stmt.y = b.sym(y);
    if (!sel.empty()) node.stmt.sel = b.sym(sel);
    node.stmt.type = static_cast<lang::StructId>(0);
    return execute_statement(b.g, node, ctx);
  }
};

TEST(TransferUnitTest, MallocOnEmptyGraph) {
  Harness h;
  const auto out = h.exec(cfg::SimpleOp::kPtrMalloc, "x");
  ASSERT_EQ(out.size(), 1u);
  const NodeRef n = out[0].pvar_target(h.b.sym("x"));
  ASSERT_NE(n, kNoNode);
  EXPECT_EQ(out[0].props(n).cardinality, Cardinality::kOne);
  EXPECT_EQ(out[0].node_count(), 1u);
}

TEST(TransferUnitTest, PtrNullCollectsUnreachable) {
  Harness h;
  const NodeRef n = h.b.node();
  h.b.pvar("x", n);
  const auto out = h.exec(cfg::SimpleOp::kPtrNull, "x");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].node_count(), 0u);
}

TEST(TransferUnitTest, CopyOntoSelfIsIdentity) {
  Harness h;
  h.b.pvar("x", h.b.node());
  h.node.stmt.y = h.b.sym("x");
  const auto out = h.exec(cfg::SimpleOp::kPtrCopy, "x", "x");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(out[0].pvar_target(h.b.sym("x")), kNoNode);
}

TEST(TransferUnitTest, CopyOfUnboundUnbinds) {
  Harness h;
  h.b.pvar("x", h.b.node());
  // y is unbound.
  (void)h.b.sym("y");
  const auto out = h.exec(cfg::SimpleOp::kPtrCopy, "x", "y");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].pvar_target(h.b.sym("x")), kNoNode);
}

TEST(TransferUnitTest, StoreThroughUnboundDropsConfiguration) {
  Harness h;
  (void)h.b.sym("x");
  const auto out = h.exec(cfg::SimpleOp::kStoreNull, "x", "", "nxt");
  EXPECT_TRUE(out.empty());
}

TEST(TransferUnitTest, LoadThroughUnboundDropsConfiguration) {
  Harness h;
  (void)h.b.sym("x");
  (void)h.b.sym("y");
  const auto out = h.exec(cfg::SimpleOp::kLoad, "x", "y", "nxt");
  EXPECT_TRUE(out.empty());
}

TEST(TransferUnitTest, StoreNullOnAlreadyNullIsIdentityShape) {
  Harness h;
  const NodeRef n = h.b.node();
  h.b.pvar("x", n);
  const auto out = h.exec(cfg::SimpleOp::kStoreNull, "x", "", "nxt");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0]
                  .sel_targets(out[0].pvar_target(h.b.sym("x")), h.b.sym("nxt"))
                  .empty());
}

TEST(TransferUnitTest, StoreBindsDefiniteLink) {
  Harness h;
  const NodeRef nx = h.b.node();
  const NodeRef ny = h.b.node();
  h.b.pvar("x", nx).pvar("y", ny);
  const auto out = h.exec(cfg::SimpleOp::kStore, "x", "y", "nxt");
  ASSERT_EQ(out.size(), 1u);
  const Rsg& g = out[0];
  const NodeRef gx = g.pvar_target(h.b.sym("x"));
  const NodeRef gy = g.pvar_target(h.b.sym("y"));
  EXPECT_TRUE(g.has_link(gx, h.b.sym("nxt"), gy));
  EXPECT_TRUE(g.props(gx).selout.contains(h.b.sym("nxt")));
  EXPECT_TRUE(g.props(gy).selin.contains(h.b.sym("nxt")));
}

TEST(TransferUnitTest, StoreWithUnboundSourceActsAsStoreNull) {
  Harness h;
  const NodeRef nx = h.b.node();
  const NodeRef old = h.b.node();
  h.b.pvar("x", nx);
  h.b.pvar("keep", old);  // keep the old target reachable
  h.b.link(nx, "nxt", old).selout(nx, "nxt").selin(old, "nxt");
  (void)h.b.sym("y");
  const auto out = h.exec(cfg::SimpleOp::kStore, "x", "y", "nxt");
  ASSERT_EQ(out.size(), 1u);
  const Rsg& g = out[0];
  EXPECT_TRUE(
      g.sel_targets(g.pvar_target(h.b.sym("x")), h.b.sym("nxt")).empty());
}

TEST(TransferUnitTest, LoadFromSummaryMaterializes) {
  Harness h;
  const NodeRef nx = h.b.node();
  const NodeRef m = h.b.node(Cardinality::kMany);
  h.b.pvar("y", nx);
  h.b.link(nx, "nxt", m).selout(nx, "nxt");
  h.b.link(m, "nxt", m);
  h.b.selin(m, "nxt").pos_selout(m, "nxt");
  (void)h.b.sym("x");
  const auto out = h.exec(cfg::SimpleOp::kLoad, "x", "y", "nxt");
  ASSERT_FALSE(out.empty());
  for (const Rsg& g : out) {
    const NodeRef gx = g.pvar_target(h.b.sym("x"));
    ASSERT_NE(gx, kNoNode);
    EXPECT_EQ(g.props(gx).cardinality, Cardinality::kOne);
  }
}

TEST(TransferUnitTest, LoadPossiblyNullForksNullOutcome) {
  Harness h;
  const NodeRef nx = h.b.node();
  const NodeRef t = h.b.node();
  h.b.pvar("y", nx).pvar("keep", t);
  h.b.link(nx, "nxt", t);
  h.b.pos_selout(nx, "nxt");  // nxt only possible: the NULL outcome exists
  // t's incoming reference must be possible too, or the NULL variant would
  // be self-contradictory (definite selin with no witness) and PRUNEd away.
  h.b.pos_selin(t, "nxt");
  (void)h.b.sym("x");
  const auto out = h.exec(cfg::SimpleOp::kLoad, "x", "y", "nxt");
  bool bound = false;
  bool unbound = false;
  for (const Rsg& g : out) {
    (g.pvar_target(h.b.sym("x")) == kNoNode ? unbound : bound) = true;
  }
  EXPECT_TRUE(bound);
  EXPECT_TRUE(unbound);
}

TEST(TransferUnitTest, AssumeFiltersByBinding) {
  Harness h;
  h.b.pvar("x", h.b.node());
  EXPECT_TRUE(h.exec(cfg::SimpleOp::kAssumeNull, "x").empty());
  EXPECT_EQ(h.exec(cfg::SimpleOp::kAssumeNotNull, "x").size(), 1u);
}

TEST(TransferUnitTest, BookkeepingOpsAreIdentity) {
  Harness h;
  h.b.pvar("x", h.b.node());
  for (const auto op :
       {cfg::SimpleOp::kScalar, cfg::SimpleOp::kBranch, cfg::SimpleOp::kNop,
        cfg::SimpleOp::kFieldRead, cfg::SimpleOp::kFieldWrite}) {
    const auto out = h.exec(op, "x", "", "nxt");
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(rsg::rsg_equal(out[0], h.b.g));
  }
}

TEST(TransferUnitTest, FreeMarksTargetNodeFreed) {
  Harness h;
  h.b.pvar("x", h.b.node());
  const auto out = h.exec(cfg::SimpleOp::kFree, "x");
  ASSERT_EQ(out.size(), 1u);
  const NodeRef n = out[0].pvar_target(h.b.sym("x"));
  ASSERT_NE(n, kNoNode);  // x still dangles at the freed node
  EXPECT_EQ(out[0].props(n).free_state, rsg::FreeState::kFreed);
  // The only change is the FREED bit: the graphs differ exactly there.
  EXPECT_FALSE(rsg::rsg_equal(out[0], h.b.g));
}

TEST(TransferUnitTest, FreeOfNullPointerIsIdentity) {
  Harness h;
  h.b.pvar("y", h.b.node());  // x stays unbound
  const auto out = h.exec(cfg::SimpleOp::kFree, "x");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(rsg::rsg_equal(out[0], h.b.g));
}

TEST(TransferUnitTest, RefreeKeepsNodeDefinitelyFreed) {
  Harness h;
  const NodeRef n = h.b.node();
  h.b.pvar("x", n);
  h.b.g.props(n).free_state = rsg::FreeState::kMaybeFreed;
  const auto out = h.exec(cfg::SimpleOp::kFree, "x");
  ASSERT_EQ(out.size(), 1u);
  const NodeRef gn = out[0].pvar_target(h.b.sym("x"));
  EXPECT_EQ(out[0].props(gn).free_state, rsg::FreeState::kFreed);
}

TEST(TransferUnitTest, TouchClearRemovesInductionTouch) {
  Harness h(rsg::AnalysisLevel::kL3);
  const NodeRef n = h.b.node();
  h.b.pvar("x", n).touch(n, "p");
  // Fake induction info: p is the induction pvar of loop 1.
  h.induction.per_loop[1] = {h.b.sym("p")};
  h.node.stmt.loop_id = 1;
  const auto out = h.exec(cfg::SimpleOp::kTouchClear, "");
  ASSERT_EQ(out.size(), 1u);
  const NodeRef gn = out[0].pvar_target(h.b.sym("x"));
  EXPECT_TRUE(out[0].props(gn).touch.empty());
}

TEST(TransferUnitTest, TouchClearIsIdentityBelowL3) {
  Harness h(rsg::AnalysisLevel::kL2);
  const NodeRef n = h.b.node();
  h.b.pvar("x", n).touch(n, "p");
  h.induction.per_loop[1] = {h.b.sym("p")};
  h.node.stmt.loop_id = 1;
  const auto out = h.exec(cfg::SimpleOp::kTouchClear, "");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(rsg::rsg_equal(out[0], h.b.g));
}

}  // namespace
}  // namespace psa::analysis
