// Fault injection for the resource governor: drive every budget to its
// pathological extreme on the Fig. 1 doubly-linked-list program and check
// that the degraded fixpoint is (a) still a fixpoint — kConverged — with the
// right DegradationReport, and (b) still *sound* against the concrete-
// interpreter oracle. Plus deadline/cancellation behavior and the legacy
// hard-fail policy.
#include "analysis/governor.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "analysis/analyzer.hpp"
#include "corpus/corpus.hpp"
#include "testing/concrete_oracle.hpp"

namespace psa::analysis {
namespace {

const corpus::CorpusProgram& dll() { return *corpus::find_program("dll"); }

/// Shared assertion: a degraded run must still converge, report what it did,
/// and cover every concrete execution of the program.
void expect_sound_degraded(const ProgramAnalysis& program,
                           const AnalysisResult& result,
                           AnalysisStatus expected_trigger) {
  ASSERT_EQ(result.status, AnalysisStatus::kConverged);
  ASSERT_TRUE(result.degraded());
  bool trigger_seen = result.degradation.events.empty();
  for (const DegradationEvent& e : result.degradation.events) {
    EXPECT_NE(e.rung, DegradationRung::kNone);
    trigger_seen |= e.trigger == expected_trigger;
  }
  EXPECT_TRUE(trigger_seen);
  EXPECT_GT(oracle::expect_covers_concrete(program, result.at_exit(program.cfg),
                                           40),
            0);
}

TEST(GovernorTest, VisitBudgetOfOneDegradesSoundly) {
  const auto program = prepare(dll().source);
  Options options;
  options.max_node_visits = 1;
  const auto result = analyze_program(program, options);
  expect_sound_degraded(program, result, AnalysisStatus::kIterationLimit);
  // One visit per allowance trips the ladder all the way up.
  EXPECT_EQ(result.degradation.worst_rung(), DegradationRung::kSummarize);
  EXPECT_GT(result.degradation
                .rung_applications[static_cast<int>(DegradationRung::kWiden)],
            0u);
}

TEST(GovernorTest, MemoryBudgetOfOneByteDegradesSoundly) {
  const auto program = prepare(dll().source);
  Options options;
  options.memory_budget_bytes = 1;  // unreachable by construction
  const auto result = analyze_program(program, options);
  expect_sound_degraded(program, result, AnalysisStatus::kOutOfMemory);
  // No state fits in one byte: the governor must detect the budget as
  // unreachable rather than thrash forever.
  EXPECT_TRUE(result.degradation.memory_budget_unreachable);
  EXPECT_EQ(result.degradation.worst_rung(), DegradationRung::kSummarize);
}

TEST(GovernorTest, TransientMemorySpikesStaySound) {
  // Regression: a transfer fan-out aborted on a memory spike that drained
  // before the loop-top re-check used to leave the memoization cache
  // claiming inputs whose outputs never landed — silently losing may-facts
  // (and letting kHardFail converge past its budget). Sweep budgets around
  // the program's natural peak so some runs trip only transiently.
  const auto program = prepare(dll().source);
  for (const std::uint64_t budget :
       {std::uint64_t{8} << 10, std::uint64_t{16} << 10, std::uint64_t{32} << 10,
        std::uint64_t{64} << 10}) {
    Options options;
    options.memory_budget_bytes = budget;
    const auto result = analyze_program(program, options);
    ASSERT_EQ(result.status, AnalysisStatus::kConverged) << budget;
    EXPECT_GT(oracle::expect_covers_concrete(program,
                                             result.at_exit(program.cfg), 40),
              0)
        << "budget " << budget;
  }
}

TEST(GovernorTest, SetCapOfOneDegradesSoundly) {
  const auto program = prepare(dll().source);
  Options options;
  options.max_rsgs_per_set = 1;
  const auto result = analyze_program(program, options);
  expect_sound_degraded(program, result, AnalysisStatus::kSetLimit);
}

TEST(GovernorTest, AllBudgetsAtOnceDegradeSoundly) {
  const auto program = prepare(dll().source);
  Options options;
  options.max_node_visits = 1;
  options.memory_budget_bytes = 1;
  options.max_rsgs_per_set = 1;
  const auto result = analyze_program(program, options);
  ASSERT_EQ(result.status, AnalysisStatus::kConverged);
  ASSERT_TRUE(result.degraded());
  EXPECT_GT(oracle::expect_covers_concrete(program, result.at_exit(program.cfg),
                                           40),
            0);
}

TEST(GovernorTest, DeadlineZeroMeansNoDeadline) {
  // 0 is the documented "no deadline" default, not an instant expiry.
  const auto program = prepare(dll().source);
  Options options;
  options.deadline_ms = 0;
  const auto result = analyze_program(program, options);
  EXPECT_EQ(result.status, AnalysisStatus::kConverged);
  EXPECT_FALSE(result.degradation.deadline_drain);
}

TEST(GovernorTest, DeadlineInterruptsParallelRunWithinTwiceTheBudget) {
  // The acceptance bound: a threads > 1 run must come back within ~2x the
  // deadline (the drain allowance) — never run to natural completion.
  const auto program = prepare(corpus::barnes_hut().source);
  Options options;
  options.level = rsg::AnalysisLevel::kL3;
  options.threads = 4;
  options.deadline_ms = 50;
  const auto result = analyze_program(program, options);
  // Either the drain finished the coarse fixpoint in the grace period, or
  // the run stopped hard at 2x. Both must note the drain.
  EXPECT_TRUE(result.status == AnalysisStatus::kConverged ||
              result.status == AnalysisStatus::kDeadline)
      << to_string(result.status);
  EXPECT_TRUE(result.degradation.deadline_drain);
  // 2x the 50 ms deadline plus generous slack for one in-flight statement
  // and CI jitter; the undisturbed run takes far longer than this.
  EXPECT_LT(result.seconds, 2.0);
}

TEST(GovernorTest, DeadlineHardFailStopsWithoutDraining) {
  const auto program = prepare(corpus::barnes_hut().source);
  Options options;
  options.level = rsg::AnalysisLevel::kL3;
  options.deadline_ms = 10;
  options.budget_policy = BudgetPolicy::kHardFail;
  const auto result = analyze_program(program, options);
  EXPECT_EQ(result.status, AnalysisStatus::kDeadline);
  EXPECT_FALSE(result.degradation.deadline_drain);
  EXPECT_LT(result.seconds, 2.0);
}

TEST(GovernorTest, PreCancelledTokenStopsImmediately) {
  const auto program = prepare(dll().source);
  CancelToken token;
  token.cancel();
  Options options;
  options.cancel = &token;
  const auto result = analyze_program(program, options);
  EXPECT_EQ(result.status, AnalysisStatus::kCancelled);
  EXPECT_EQ(result.node_visits, 0u);
}

TEST(GovernorTest, CancellationFromAnotherThreadStopsParallelRun) {
  const auto program = prepare(corpus::barnes_hut().source);
  CancelToken token;
  Options options;
  options.level = rsg::AnalysisLevel::kL3;
  options.threads = 4;
  options.cancel = &token;
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.cancel();
  });
  const auto result = analyze_program(program, options);
  canceller.join();
  // Cancellation never drains: the caller asked for the run to end.
  EXPECT_EQ(result.status, AnalysisStatus::kCancelled);
  EXPECT_FALSE(result.degradation.deadline_drain);
  EXPECT_LT(result.seconds, 2.0);
}

TEST(GovernorTest, HardFailPreservesLegacySetLimitStatus) {
  const auto program = prepare(dll().source);
  Options options;
  options.max_rsgs_per_set = 1;
  options.budget_policy = BudgetPolicy::kHardFail;
  const auto result = analyze_program(program, options);
  EXPECT_EQ(result.status, AnalysisStatus::kSetLimit);
  EXPECT_FALSE(result.degraded());
}

TEST(GovernorTest, SparseLuMemoryBudgetAcceptance) {
  // The issue's acceptance criterion, and the paper's own Table-1 failure:
  // Sparse LU runs out of memory at L2. Under kHardFail the budget kills the
  // run; under the governor the same budget yields a converged, degraded,
  // still-sound result.
  const auto program = prepare(corpus::sparse_lu().source);
  Options options;
  options.level = rsg::AnalysisLevel::kL2;
  options.memory_budget_bytes = 64 * 1024;

  Options hard = options;
  hard.budget_policy = BudgetPolicy::kHardFail;
  const auto dead = analyze_program(program, hard);
  ASSERT_EQ(dead.status, AnalysisStatus::kOutOfMemory);

  const auto result = analyze_program(program, options);
  ASSERT_EQ(result.status, AnalysisStatus::kConverged);
  ASSERT_TRUE(result.degraded());
  // Sparse LU's concrete runs are long; give the interpreter more steps so
  // the sweep exercises real final stores (completed runs are what get
  // checked either way).
  oracle::expect_covers_concrete(program, result.at_exit(program.cfg), 20,
                                 20000);
}

TEST(GovernorTest, DegradedResultsCoverUndegradedFacts) {
  // Monotonicity spot check: anything the degraded exit state claims
  // impossible must also be impossible in the precise run. We check the
  // contrapositive on SHSEL: precise "maybe" implies degraded "maybe".
  const auto program = prepare(dll().source);
  const auto precise = analyze_program(program, {});
  Options tight;
  tight.max_node_visits = 1;
  const auto degraded = analyze_program(program, tight);
  ASSERT_TRUE(precise.converged());
  ASSERT_EQ(degraded.status, AnalysisStatus::kConverged);
  for (std::size_t i = 0; i < program.unit.types.struct_count(); ++i) {
    const auto& decl =
        program.unit.types.struct_decl(static_cast<lang::StructId>(i));
    const std::string struct_name{program.interner().spelling(decl.name)};
    for (const auto sel : program.unit.types.all_selectors()) {
      const std::string sel_name{program.interner().spelling(sel)};
      if (client::may_be_shared_via(program, precise.at_exit(program.cfg),
                                    struct_name, sel_name)) {
        EXPECT_TRUE(client::may_be_shared_via(
            program, degraded.at_exit(program.cfg), struct_name, sel_name))
            << struct_name << "." << sel_name
            << ": degraded state dropped a may-fact (UNSOUND)";
      }
    }
  }
}

TEST(GovernorTest, ReportSummaryMentionsRungs) {
  const auto program = prepare(dll().source);
  Options options;
  options.max_node_visits = 1;
  const auto result = analyze_program(program, options);
  const std::string summary = result.degradation.summary();
  EXPECT_NE(summary.find("degradation"), std::string::npos);
  EXPECT_NE(summary.find("widen"), std::string::npos);
}

}  // namespace
}  // namespace psa::analysis
