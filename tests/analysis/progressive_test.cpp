// The progressive driver (§5): run L1, escalate on failed criteria.
#include "analysis/progressive.hpp"

#include <gtest/gtest.h>

#include "client/queries.hpp"
#include "corpus/corpus.hpp"

namespace psa::analysis {
namespace {

ShapeCriterion always_pass() {
  return {"always-pass",
          [](const ProgramAnalysis&, const AnalysisResult&) { return true; }};
}

ShapeCriterion always_fail() {
  return {"always-fail",
          [](const ProgramAnalysis&, const AnalysisResult&) { return false; }};
}

/// The canonical C_SPATH1 probe: "may list->nxt alias list->nxt->nxt?" is a
/// false positive at L1 (the second element summarizes with the deeper ones)
/// and proven false from L2 on.
ShapeCriterion second_element_distinct() {
  return {"second-element-distinct",
          [](const ProgramAnalysis& program, const AnalysisResult& result) {
            return !client::paths_may_alias(program,
                                            result.at_exit(program.cfg),
                                            "list->nxt", "list->nxt->nxt");
          }};
}

TEST(ProgressiveTest, StopsAtL1WhenSatisfied) {
  const auto program = prepare(corpus::find_program("sll")->source);
  const auto out = run_progressive(program, {always_pass()});
  EXPECT_TRUE(out.satisfied);
  EXPECT_EQ(out.attempts.size(), 1u);
  EXPECT_EQ(out.final_level(), rsg::AnalysisLevel::kL1);
}

TEST(ProgressiveTest, RunsAllLevelsWhenNeverSatisfied) {
  const auto program = prepare(corpus::find_program("sll")->source);
  const auto out = run_progressive(program, {always_fail()});
  EXPECT_FALSE(out.satisfied);
  ASSERT_EQ(out.attempts.size(), 3u);
  EXPECT_EQ(out.attempts[0].level, rsg::AnalysisLevel::kL1);
  EXPECT_EQ(out.attempts[1].level, rsg::AnalysisLevel::kL2);
  EXPECT_EQ(out.attempts[2].level, rsg::AnalysisLevel::kL3);
  for (const auto& attempt : out.attempts) {
    ASSERT_EQ(attempt.failed_criteria.size(), 1u);
    EXPECT_EQ(attempt.failed_criteria[0], "always-fail");
  }
}

TEST(ProgressiveTest, EscalatesL1ToL2OnSpathCriterion) {
  // §5 of the paper: "the compiler analysis comprises three levels" and the
  // sparse codes stop at L1, Barnes-Hut continues. This is our mechanical
  // escalation witness: the criterion fails at L1 and passes at L2.
  const auto program = prepare(corpus::find_program("sll")->source);
  const auto out = run_progressive(program, {second_element_distinct()});
  EXPECT_TRUE(out.satisfied);
  ASSERT_EQ(out.attempts.size(), 2u);
  EXPECT_EQ(out.final_level(), rsg::AnalysisLevel::kL2);
  EXPECT_EQ(out.attempts[0].failed_criteria.size(), 1u);
  EXPECT_TRUE(out.attempts[1].failed_criteria.empty());
}

TEST(ProgressiveTest, MultipleCriteriaAllChecked) {
  const auto program = prepare(corpus::find_program("sll")->source);
  const auto out =
      run_progressive(program, {always_pass(), second_element_distinct()});
  EXPECT_TRUE(out.satisfied);
  EXPECT_EQ(out.final_level(), rsg::AnalysisLevel::kL2);
}

TEST(ProgressiveTest, NoCriteriaSatisfiedImmediately) {
  const auto program = prepare(corpus::find_program("sll")->source);
  const auto out = run_progressive(program, {});
  EXPECT_TRUE(out.satisfied);
  EXPECT_EQ(out.attempts.size(), 1u);
}

TEST(ProgressiveTest, ResourceFailureShortCircuitsEscalation) {
  const auto program = prepare(corpus::find_program("sll")->source);
  Options base;
  base.max_node_visits = 2;  // guarantees the guard-rail status
  base.budget_policy = BudgetPolicy::kHardFail;
  // Even with a failing *accuracy* criterion, a resource failure must stop
  // the ladder after one attempt: a higher level costs strictly more and
  // exhausts the same budget.
  const auto out = run_progressive(program, {always_fail()}, base);
  EXPECT_FALSE(out.satisfied);
  ASSERT_EQ(out.attempts.size(), 1u);
  EXPECT_EQ(out.attempts[0].result.status, AnalysisStatus::kIterationLimit);
  EXPECT_TRUE(out.resource_exhausted);
  EXPECT_FALSE(out.stop_reason.empty());
  EXPECT_FALSE(out.attempts[0].stop_reason.empty());
}

TEST(ProgressiveTest, OptionsPropagateToEveryLevel) {
  const auto program = prepare(corpus::find_program("sll")->source);
  Options base;
  base.max_node_visits = 2;  // trips the guard rail at every level
  const auto out = run_progressive(program, {always_fail()}, base);
  // Under the default degrade policy every level still converges (coarsely),
  // so the failing criterion drives the ladder through all three levels —
  // and the option visibly reached each of them via the degradation report.
  EXPECT_FALSE(out.satisfied);
  ASSERT_EQ(out.attempts.size(), 3u);
  for (const auto& attempt : out.attempts) {
    EXPECT_EQ(attempt.result.status, AnalysisStatus::kConverged);
    EXPECT_TRUE(attempt.result.degraded());
  }
}

TEST(ProgressiveTest, BestAttemptStepsDownToLastConverged) {
  const auto program = prepare(corpus::find_program("sll")->source);
  const auto out = run_progressive(program, {always_pass()});
  ASSERT_FALSE(out.attempts.empty());
  EXPECT_EQ(out.best_attempt, 0u);
  EXPECT_TRUE(out.best().result.converged());
}

TEST(ProgressiveTest, BarnesHutSmallCriteriaFromThePaper) {
  // §5.1's two shape facts on the reduced Barnes-Hut: no leaf shares a body
  // (SHSEL(body, bd) = false) and the octree cells are not shared through
  // the stack's node selector.
  const auto program =
      prepare(corpus::find_program("barnes_hut_small")->source);
  const std::vector<ShapeCriterion> criteria = {
      {"bodies-unshared-via-bd",
       [](const ProgramAnalysis& p, const AnalysisResult& r) {
         return !client::may_be_shared_via(p, r.at_exit(p.cfg), "body", "bd");
       }},
      {"cells-unshared-via-stack",
       [](const ProgramAnalysis& p, const AnalysisResult& r) {
         return !client::may_be_shared_via(p, r.at_exit(p.cfg), "cell",
                                           "node");
       }},
  };
  Options base;
  base.widen_threshold = 0;  // pure paper semantics on the reduced code
  const auto out = run_progressive(program, criteria, base);
  EXPECT_TRUE(out.satisfied);
}

}  // namespace
}  // namespace psa::analysis
