// The progressive driver (§5): run L1, escalate on failed criteria.
#include "analysis/progressive.hpp"

#include <gtest/gtest.h>

#include "client/queries.hpp"
#include "corpus/corpus.hpp"

namespace psa::analysis {
namespace {

ShapeCriterion always_pass() {
  return {"always-pass",
          [](const ProgramAnalysis&, const AnalysisResult&) { return true; }};
}

ShapeCriterion always_fail() {
  return {"always-fail",
          [](const ProgramAnalysis&, const AnalysisResult&) { return false; }};
}

/// The canonical C_SPATH1 probe: "may list->nxt alias list->nxt->nxt?" is a
/// false positive at L1 (the second element summarizes with the deeper ones)
/// and proven false from L2 on.
ShapeCriterion second_element_distinct() {
  return {"second-element-distinct",
          [](const ProgramAnalysis& program, const AnalysisResult& result) {
            return !client::paths_may_alias(program,
                                            result.at_exit(program.cfg),
                                            "list->nxt", "list->nxt->nxt");
          }};
}

TEST(ProgressiveTest, StopsAtL1WhenSatisfied) {
  const auto program = prepare(corpus::find_program("sll")->source);
  const auto out = run_progressive(program, {always_pass()});
  EXPECT_TRUE(out.satisfied);
  EXPECT_EQ(out.attempts.size(), 1u);
  EXPECT_EQ(out.final_level(), rsg::AnalysisLevel::kL1);
}

TEST(ProgressiveTest, RunsAllLevelsWhenNeverSatisfied) {
  const auto program = prepare(corpus::find_program("sll")->source);
  const auto out = run_progressive(program, {always_fail()});
  EXPECT_FALSE(out.satisfied);
  ASSERT_EQ(out.attempts.size(), 3u);
  EXPECT_EQ(out.attempts[0].level, rsg::AnalysisLevel::kL1);
  EXPECT_EQ(out.attempts[1].level, rsg::AnalysisLevel::kL2);
  EXPECT_EQ(out.attempts[2].level, rsg::AnalysisLevel::kL3);
  for (const auto& attempt : out.attempts) {
    ASSERT_EQ(attempt.failed_criteria.size(), 1u);
    EXPECT_EQ(attempt.failed_criteria[0], "always-fail");
  }
}

TEST(ProgressiveTest, EscalatesL1ToL2OnSpathCriterion) {
  // §5 of the paper: "the compiler analysis comprises three levels" and the
  // sparse codes stop at L1, Barnes-Hut continues. This is our mechanical
  // escalation witness: the criterion fails at L1 and passes at L2.
  const auto program = prepare(corpus::find_program("sll")->source);
  const auto out = run_progressive(program, {second_element_distinct()});
  EXPECT_TRUE(out.satisfied);
  ASSERT_EQ(out.attempts.size(), 2u);
  EXPECT_EQ(out.final_level(), rsg::AnalysisLevel::kL2);
  EXPECT_EQ(out.attempts[0].failed_criteria.size(), 1u);
  EXPECT_TRUE(out.attempts[1].failed_criteria.empty());
}

TEST(ProgressiveTest, MultipleCriteriaAllChecked) {
  const auto program = prepare(corpus::find_program("sll")->source);
  const auto out =
      run_progressive(program, {always_pass(), second_element_distinct()});
  EXPECT_TRUE(out.satisfied);
  EXPECT_EQ(out.final_level(), rsg::AnalysisLevel::kL2);
}

TEST(ProgressiveTest, NoCriteriaSatisfiedImmediately) {
  const auto program = prepare(corpus::find_program("sll")->source);
  const auto out = run_progressive(program, {});
  EXPECT_TRUE(out.satisfied);
  EXPECT_EQ(out.attempts.size(), 1u);
}

TEST(ProgressiveTest, OptionsPropagateToEveryLevel) {
  const auto program = prepare(corpus::find_program("sll")->source);
  Options base;
  base.max_node_visits = 2;  // guarantees the guard-rail status
  const auto out = run_progressive(program, {always_pass()}, base);
  // The run cannot converge, so even a passing criterion does not satisfy.
  EXPECT_FALSE(out.satisfied);
  for (const auto& attempt : out.attempts) {
    EXPECT_EQ(attempt.result.status, AnalysisStatus::kIterationLimit);
  }
}

TEST(ProgressiveTest, BarnesHutSmallCriteriaFromThePaper) {
  // §5.1's two shape facts on the reduced Barnes-Hut: no leaf shares a body
  // (SHSEL(body, bd) = false) and the octree cells are not shared through
  // the stack's node selector.
  const auto program =
      prepare(corpus::find_program("barnes_hut_small")->source);
  const std::vector<ShapeCriterion> criteria = {
      {"bodies-unshared-via-bd",
       [](const ProgramAnalysis& p, const AnalysisResult& r) {
         return !client::may_be_shared_via(p, r.at_exit(p.cfg), "body", "bd");
       }},
      {"cells-unshared-via-stack",
       [](const ProgramAnalysis& p, const AnalysisResult& r) {
         return !client::may_be_shared_via(p, r.at_exit(p.cfg), "cell",
                                           "node");
       }},
  };
  Options base;
  base.widen_threshold = 0;  // pure paper semantics on the reduced code
  const auto out = run_progressive(program, criteria, base);
  EXPECT_TRUE(out.satisfied);
}

}  // namespace
}  // namespace psa::analysis
