// Rsrsg: reduced-set insertion, join-on-insert, equality, widening.
#include "analysis/rsrsg.hpp"

#include <gtest/gtest.h>

#include "testing/rsg_builder.hpp"

namespace psa::analysis {
namespace {

using psa::testing::RsgBuilder;
using rsg::AnalysisLevel;
using rsg::Cardinality;
using rsg::NodeRef;

constexpr LevelPolicy kL1{AnalysisLevel::kL1};

TEST(RsrsgTest, StartsEmpty) {
  Rsrsg set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
}

TEST(RsrsgTest, InsertAddsGraph) {
  Rsrsg set;
  RsgBuilder b;
  b.pvar("x", b.node());
  EXPECT_TRUE(set.insert(b.g, kL1));
  EXPECT_EQ(set.size(), 1u);
}

TEST(RsrsgTest, DuplicateRejected) {
  Rsrsg set;
  RsgBuilder b;
  b.pvar("x", b.node());
  EXPECT_TRUE(set.insert(b.g, kL1));
  EXPECT_FALSE(set.insert(b.g, kL1));
  EXPECT_EQ(set.size(), 1u);
}

TEST(RsrsgTest, IsomorphicDuplicateRejected) {
  Rsrsg set;
  RsgBuilder a;
  const NodeRef a1 = a.node();
  const NodeRef a2 = a.node(Cardinality::kMany);
  a.pvar("x", a1).link(a1, "nxt", a2);
  set.insert(a.g, kL1);
  RsgBuilder b(a.interner_ptr());
  const NodeRef b2 = b.node(Cardinality::kMany);
  const NodeRef b1 = b.node();
  b.pvar("x", b1).link(b1, "nxt", b2);
  EXPECT_FALSE(set.insert(b.g, kL1));
}

TEST(RsrsgTest, IncompatibleGraphsCoexist) {
  Rsrsg set;
  RsgBuilder a;
  a.pvar("x", a.node());
  RsgBuilder b(a.interner_ptr());
  b.pvar("y", b.node());  // different ALIAS: never joined
  set.insert(a.g, kL1);
  set.insert(b.g, kL1);
  EXPECT_EQ(set.size(), 2u);
}

/// Two compatible list graphs (2 and 3 elements, same head/last patterns).
struct CompatiblePair {
  RsgBuilder a;
  RsgBuilder b;

  CompatiblePair() : b(a.interner_ptr()) {
    const NodeRef h1 = a.node();
    const NodeRef t1 = a.node();
    a.pvar("x", h1);
    a.link(h1, "nxt", t1).selout(h1, "nxt").selin(t1, "nxt");
    const NodeRef h2 = b.node();
    const NodeRef m2 = b.node();
    const NodeRef t2 = b.node();
    b.pvar("x", h2);
    b.link(h2, "nxt", m2).selout(h2, "nxt").selin(m2, "nxt");
    b.link(m2, "nxt", t2).selout(m2, "nxt").selin(t2, "nxt");
  }
};

TEST(RsrsgTest, CompatibleGraphsJoinOnInsert) {
  Rsrsg set;
  CompatiblePair pair;
  set.insert(pair.a.g, kL1);
  set.insert(pair.b.g, kL1);
  EXPECT_EQ(set.size(), 1u);  // fused into one RSG
}

TEST(RsrsgTest, JoinDisabledKeepsBoth) {
  Rsrsg set;
  CompatiblePair pair;
  set.insert(pair.a.g, kL1, /*enable_join=*/false);
  set.insert(pair.b.g, kL1, /*enable_join=*/false);
  EXPECT_EQ(set.size(), 2u);
}

TEST(RsrsgTest, MergeCombinesSets) {
  Rsrsg a_set;
  Rsrsg b_set;
  RsgBuilder a;
  a.pvar("x", a.node());
  RsgBuilder b(a.interner_ptr());
  b.pvar("y", b.node());
  a_set.insert(a.g, kL1);
  b_set.insert(b.g, kL1);
  EXPECT_TRUE(a_set.merge(b_set, kL1));
  EXPECT_EQ(a_set.size(), 2u);
  EXPECT_FALSE(a_set.merge(b_set, kL1));  // idempotent
}

TEST(RsrsgTest, EqualsIsOrderInsensitive) {
  RsgBuilder a;
  a.pvar("x", a.node());
  RsgBuilder b(a.interner_ptr());
  b.pvar("y", b.node());

  Rsrsg s1;
  s1.insert(a.g, kL1);
  s1.insert(b.g, kL1);
  Rsrsg s2;
  s2.insert(b.g, kL1);
  s2.insert(a.g, kL1);
  EXPECT_TRUE(s1.equals(s2));
  EXPECT_TRUE(s2.equals(s1));
}

TEST(RsrsgTest, EqualsDetectsDifference) {
  RsgBuilder a;
  a.pvar("x", a.node());
  Rsrsg s1;
  s1.insert(a.g, kL1);
  Rsrsg s2;
  EXPECT_FALSE(s1.equals(s2));
}

TEST(RsrsgTest, StatsAccumulate) {
  Rsrsg set;
  RsgBuilder a;
  const NodeRef n1 = a.node();
  const NodeRef n2 = a.node();
  a.pvar("x", n1).link(n1, "nxt", n2);
  set.insert(a.g, kL1);
  EXPECT_EQ(set.total_nodes(), 2u);
  EXPECT_GT(set.footprint_bytes(), 0u);
}

TEST(RsrsgTest, WidenCollapsesAliasEqualMembers) {
  Rsrsg set;
  // Three alias-equal but pairwise-incompatible graphs (different SHARED on
  // a deep node).
  auto make = [](RsgBuilder& b, int salt) {
    const NodeRef h = b.node();
    const NodeRef t = b.node(Cardinality::kMany);
    b.pvar("x", h).link(h, "nxt", t);
    if (salt == 1) b.shared(t);
    if (salt == 2) b.shsel(t, "nxt");
    b.pos_selin(t, "nxt");
  };
  RsgBuilder a;
  make(a, 0);
  RsgBuilder b(a.interner_ptr());
  make(b, 1);
  RsgBuilder c(a.interner_ptr());
  make(c, 2);
  set.insert(a.g, kL1, false);
  set.insert(b.g, kL1, false);
  set.insert(c.g, kL1, false);
  ASSERT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.widen(kL1, 1));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_TRUE(set.widened());
}

TEST(RsrsgTest, WidenedModeFoldsFurtherInserts) {
  Rsrsg set;
  RsgBuilder a;
  a.pvar("x", a.node());
  set.insert(a.g, kL1);
  set.widen(kL1, 1);
  // Insert an alias-equal graph with extra structure: folds into the member.
  RsgBuilder b(a.interner_ptr());
  const NodeRef h = b.node();
  const NodeRef t = b.node();
  b.pvar("x", h).link(h, "nxt", t);
  EXPECT_TRUE(set.insert(b.g, kL1));
  EXPECT_EQ(set.size(), 1u);
  // Re-inserting the same information is absorbed silently.
  RsgBuilder c(a.interner_ptr());
  const NodeRef h2 = c.node();
  const NodeRef t2 = c.node();
  c.pvar("x", h2).link(h2, "nxt", t2);
  EXPECT_FALSE(set.insert(c.g, kL1));
}

TEST(RsrsgTest, WidenKeepsAliasDistinctMembers) {
  Rsrsg set;
  RsgBuilder a;
  a.pvar("x", a.node());
  RsgBuilder b(a.interner_ptr());
  b.pvar("y", b.node());
  set.insert(a.g, kL1);
  set.insert(b.g, kL1);
  set.widen(kL1, 1);
  EXPECT_EQ(set.size(), 2u);  // cannot fuse different ALIAS relations
}

TEST(RsrsgTest, DumpListsMembers) {
  Rsrsg set;
  RsgBuilder a;
  a.pvar("head", a.node());
  set.insert(a.g, kL1);
  const std::string text = set.dump(a.interner());
  EXPECT_NE(text.find("1 graph"), std::string::npos);
  EXPECT_NE(text.find("head"), std::string::npos);
}

}  // namespace
}  // namespace psa::analysis
