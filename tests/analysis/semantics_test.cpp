// Abstract semantics of the six simple statements, exercised through small
// programs (the engine wires statements to graphs; these tests pin the
// post-state of individual operations).
#include "analysis/semantics.hpp"

#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"

namespace psa::analysis {
namespace {

using rsg::Cardinality;
using rsg::kNoNode;
using rsg::NodeRef;
using rsg::Rsg;

constexpr std::string_view kPrelude =
    "struct node { struct node *nxt; struct node *prv; int v; };\n";

/// Analyze at L2 and return the exit RSRSG (must be non-empty).
struct RunResult {
  ProgramAnalysis program;
  AnalysisResult result;
};

RunResult run(std::string_view body) {
  RunResult r;
  r.program = prepare(std::string(kPrelude) + "void main() {" +
                      std::string(body) + "}");
  Options options;
  options.level = rsg::AnalysisLevel::kL2;
  r.result = analyze_program(r.program, options);
  EXPECT_TRUE(r.result.converged());
  EXPECT_FALSE(r.result.at_exit(r.program.cfg).empty());
  return r;
}

TEST(SemanticsTest, MallocBindsFreshUnsharedNode) {
  const RunResult r = run("struct node *x; x = malloc(struct node);");
  for (const Rsg& g : r.result.at_exit(r.program.cfg).graphs()) {
    const NodeRef n = g.pvar_target(r.program.symbol("x"));
    ASSERT_NE(n, kNoNode);
    EXPECT_EQ(g.props(n).cardinality, Cardinality::kOne);
    EXPECT_FALSE(g.props(n).shared);
    EXPECT_TRUE(g.props(n).selout.empty());
    EXPECT_TRUE(g.out_links(n).empty());
  }
}

TEST(SemanticsTest, PtrNullUnbindsAndCollects) {
  const RunResult r = run("struct node *x; x = malloc(struct node); x = NULL;");
  for (const Rsg& g : r.result.at_exit(r.program.cfg).graphs()) {
    EXPECT_EQ(g.pvar_target(r.program.symbol("x")), kNoNode);
    EXPECT_EQ(g.node_count(), 0u);  // the allocation is unreachable
  }
}

TEST(SemanticsTest, CopyAliases) {
  const RunResult r =
      run("struct node *x; struct node *y; x = malloc(struct node); y = x;");
  for (const Rsg& g : r.result.at_exit(r.program.cfg).graphs()) {
    const NodeRef nx = g.pvar_target(r.program.symbol("x"));
    EXPECT_EQ(nx, g.pvar_target(r.program.symbol("y")));
    ASSERT_NE(nx, kNoNode);
  }
}

TEST(SemanticsTest, SelfCopyIsIdentity) {
  const RunResult r = run("struct node *x; x = malloc(struct node); x = x;");
  for (const Rsg& g : r.result.at_exit(r.program.cfg).graphs()) {
    EXPECT_NE(g.pvar_target(r.program.symbol("x")), kNoNode);
  }
}

TEST(SemanticsTest, StoreCreatesDefiniteLinkAndPatterns) {
  const RunResult r = run(R"(
    struct node *x; struct node *y;
    x = malloc(struct node);
    y = malloc(struct node);
    x->nxt = y;
  )");
  for (const Rsg& g : r.result.at_exit(r.program.cfg).graphs()) {
    const NodeRef nx = g.pvar_target(r.program.symbol("x"));
    const NodeRef ny = g.pvar_target(r.program.symbol("y"));
    EXPECT_TRUE(g.has_link(nx, r.program.symbol("nxt"), ny));
    EXPECT_TRUE(g.props(nx).selout.contains(r.program.symbol("nxt")));
    EXPECT_TRUE(g.props(ny).selin.contains(r.program.symbol("nxt")));
    EXPECT_FALSE(g.props(ny).shsel.contains(r.program.symbol("nxt")));
    EXPECT_FALSE(g.props(ny).shared);
  }
}

TEST(SemanticsTest, SecondReferenceSetsSharing) {
  const RunResult r = run(R"(
    struct node *x; struct node *y; struct node *z;
    x = malloc(struct node);
    y = malloc(struct node);
    z = malloc(struct node);
    x->nxt = z;
    y->nxt = z;
  )");
  for (const Rsg& g : r.result.at_exit(r.program.cfg).graphs()) {
    const NodeRef nz = g.pvar_target(r.program.symbol("z"));
    EXPECT_TRUE(g.props(nz).shared);
    EXPECT_TRUE(g.props(nz).shsel.contains(r.program.symbol("nxt")));
  }
}

TEST(SemanticsTest, TwoSelectorsSetSharedNotShsel) {
  const RunResult r = run(R"(
    struct node *x; struct node *y; struct node *z;
    x = malloc(struct node);
    y = malloc(struct node);
    z = malloc(struct node);
    x->nxt = z;
    y->prv = z;
  )");
  for (const Rsg& g : r.result.at_exit(r.program.cfg).graphs()) {
    const NodeRef nz = g.pvar_target(r.program.symbol("z"));
    EXPECT_TRUE(g.props(nz).shared);
    EXPECT_FALSE(g.props(nz).shsel.contains(r.program.symbol("nxt")));
    EXPECT_FALSE(g.props(nz).shsel.contains(r.program.symbol("prv")));
  }
}

TEST(SemanticsTest, StoreNullRemovesLinkAndClearsSharing) {
  const RunResult r = run(R"(
    struct node *x; struct node *y; struct node *z;
    x = malloc(struct node);
    y = malloc(struct node);
    z = malloc(struct node);
    x->nxt = z;
    y->nxt = z;
    y->nxt = NULL;
  )");
  for (const Rsg& g : r.result.at_exit(r.program.cfg).graphs()) {
    const NodeRef ny = g.pvar_target(r.program.symbol("y"));
    const NodeRef nz = g.pvar_target(r.program.symbol("z"));
    EXPECT_TRUE(g.sel_targets(ny, r.program.symbol("nxt")).empty());
    // Only x's reference remains: the sharing refinement clears the bit.
    EXPECT_FALSE(g.props(nz).shsel.contains(r.program.symbol("nxt")));
    EXPECT_FALSE(g.props(nz).shared);
  }
}

TEST(SemanticsTest, StoreOverwriteDropsOldTarget) {
  const RunResult r = run(R"(
    struct node *x; struct node *y; struct node *z;
    x = malloc(struct node);
    y = malloc(struct node);
    x->nxt = y;
    z = malloc(struct node);
    x->nxt = z;
    y = NULL;
  )");
  for (const Rsg& g : r.result.at_exit(r.program.cfg).graphs()) {
    const NodeRef nx = g.pvar_target(r.program.symbol("x"));
    const NodeRef nz = g.pvar_target(r.program.symbol("z"));
    const auto targets = g.sel_targets(nx, r.program.symbol("nxt"));
    ASSERT_EQ(targets.size(), 1u);
    EXPECT_EQ(targets[0], nz);
    EXPECT_EQ(g.node_count(), 2u);  // the first target was collected
  }
}

TEST(SemanticsTest, LoadFollowsLink) {
  const RunResult r = run(R"(
    struct node *x; struct node *y; struct node *z;
    x = malloc(struct node);
    y = malloc(struct node);
    x->nxt = y;
    z = x->nxt;
  )");
  for (const Rsg& g : r.result.at_exit(r.program.cfg).graphs()) {
    EXPECT_EQ(g.pvar_target(r.program.symbol("z")),
              g.pvar_target(r.program.symbol("y")));
  }
}

TEST(SemanticsTest, LoadOfNullSelectorUnbinds) {
  const RunResult r = run(R"(
    struct node *x; struct node *z;
    x = malloc(struct node);
    z = x->nxt;
  )");
  for (const Rsg& g : r.result.at_exit(r.program.cfg).graphs()) {
    EXPECT_EQ(g.pvar_target(r.program.symbol("z")), kNoNode);
  }
}

TEST(SemanticsTest, SelfStoreBuildsCycleLink) {
  const RunResult r = run(R"(
    struct node *x;
    x = malloc(struct node);
    x->nxt = x;
  )");
  for (const Rsg& g : r.result.at_exit(r.program.cfg).graphs()) {
    const NodeRef nx = g.pvar_target(r.program.symbol("x"));
    EXPECT_TRUE(g.has_link(nx, r.program.symbol("nxt"), nx));
    EXPECT_TRUE(g.props(nx).cyclelinks.contains(
        rsg::SelPair{r.program.symbol("nxt"), r.program.symbol("nxt")}));
  }
}

TEST(SemanticsTest, MutualStoresBuildCycleLinks) {
  const RunResult r = run(R"(
    struct node *x; struct node *y;
    x = malloc(struct node);
    y = malloc(struct node);
    x->nxt = y;
    y->prv = x;
  )");
  for (const Rsg& g : r.result.at_exit(r.program.cfg).graphs()) {
    const NodeRef nx = g.pvar_target(r.program.symbol("x"));
    const NodeRef ny = g.pvar_target(r.program.symbol("y"));
    EXPECT_TRUE(g.has_link(ny, r.program.symbol("prv"), nx));
    // y->prv = x with x->nxt = y definite both ways:
    EXPECT_TRUE(g.props(ny).cyclelinks.contains(
        rsg::SelPair{r.program.symbol("prv"), r.program.symbol("nxt")}));
    EXPECT_TRUE(g.props(nx).cyclelinks.contains(
        rsg::SelPair{r.program.symbol("nxt"), r.program.symbol("prv")}));
  }
}

TEST(SemanticsTest, OverwriteInvalidatesCycleLink) {
  const RunResult r = run(R"(
    struct node *x; struct node *y; struct node *z;
    x = malloc(struct node);
    y = malloc(struct node);
    x->nxt = y;
    y->prv = x;
    z = malloc(struct node);
    y->prv = z;
  )");
  for (const Rsg& g : r.result.at_exit(r.program.cfg).graphs()) {
    const NodeRef nx = g.pvar_target(r.program.symbol("x"));
    const NodeRef ny = g.pvar_target(r.program.symbol("y"));
    // The nxt/prv pair on x no longer holds (y's prv now goes to z).
    EXPECT_FALSE(g.props(nx).cyclelinks.contains(
        rsg::SelPair{r.program.symbol("nxt"), r.program.symbol("prv")}));
    EXPECT_TRUE(g.has_link(nx, r.program.symbol("nxt"), ny));
  }
}

TEST(SemanticsTest, NullDereferenceDropsConfiguration) {
  // Writing through a definitely-NULL pointer: no configuration survives.
  const RunResult r = [] {
    RunResult rr;
    rr.program = prepare(std::string(kPrelude) + R"(
      void main() {
        struct node *x;
        x = NULL;
        x->nxt = NULL;
      }
    )");
    rr.result = analyze_program(rr.program, {});
    EXPECT_TRUE(rr.result.converged());
    return rr;
  }();
  EXPECT_TRUE(r.result.at_exit(r.program.cfg).empty());
}

TEST(SemanticsTest, AssumeRefinesNullness) {
  const RunResult r = run(R"(
    struct node *x; struct node *y;
    x = malloc(struct node);
    y = x->nxt;
    if (y != NULL) {
      y->v = 1;
    } else {
      y = x;
    }
  )");
  // On every surviving path y ends up bound (then-branch would have died on
  // the null dereference otherwise).
  for (const Rsg& g : r.result.at_exit(r.program.cfg).graphs()) {
    EXPECT_NE(g.pvar_target(r.program.symbol("y")), kNoNode);
  }
}

TEST(SemanticsTest, FreeIsShapeNoop) {
  const RunResult r = run(R"(
    struct node *x;
    x = malloc(struct node);
    free(x);
  )");
  for (const Rsg& g : r.result.at_exit(r.program.cfg).graphs()) {
    EXPECT_NE(g.pvar_target(r.program.symbol("x")), kNoNode);
  }
}

/// Same as run() but through the salvage frontend, so unsupported constructs
/// lower to kHavoc instead of failing prepare().
RunResult run_salvage(std::string_view body, std::size_t expected_havoc) {
  RunResult r;
  FrontendOptions frontend;
  frontend.salvage = true;
  r.program = prepare(std::string(kPrelude) + "void main() {" +
                          std::string(body) + "}",
                      "main", frontend);
  EXPECT_EQ(r.program.salvage.havoc_sites, expected_havoc);
  Options options;
  options.level = rsg::AnalysisLevel::kL2;
  options.types = &r.program.unit.types;
  r.result = analyze_program(r.program, options);
  EXPECT_TRUE(r.result.converged());
  EXPECT_FALSE(r.result.at_exit(r.program.cfg).empty());
  return r;
}

TEST(SemanticsTest, HavocRebindCoversNullAliasAndFreshTop) {
  // A cast through an unknown struct type is out of subset: salvage lowers
  // the assignment to havoc(y), whose post-state must cover NULL, aliasing
  // any same-type pvar target, and a fresh unknown location — every variant
  // HAVOC-tainted. (A bare unknown-call rhs would add a second, global
  // havoc site for its side effects; the side-effect-free cast keeps this a
  // pure rebind.)
  const RunResult r = run_salvage(R"(
    struct node *x; struct node *y;
    x = malloc(struct node);
    y = (struct packet *)x;
  )", 1);
  const support::Symbol sx = r.program.symbol("x");
  const support::Symbol sy = r.program.symbol("y");
  bool saw_null = false;
  bool saw_alias = false;
  bool saw_fresh = false;
  for (const Rsg& g : r.result.at_exit(r.program.cfg).graphs()) {
    EXPECT_TRUE(g.havoc());  // graph-level taint is sticky on every variant
    const NodeRef ny = g.pvar_target(sy);
    if (ny == kNoNode) {
      saw_null = true;
    } else if (ny == g.pvar_target(sx)) {
      saw_alias = true;
      EXPECT_TRUE(g.props(ny).havoc);
    } else {
      saw_fresh = true;
      EXPECT_TRUE(g.props(ny).havoc);
      EXPECT_TRUE(g.props(ny).shared);
    }
  }
  EXPECT_TRUE(saw_null);
  EXPECT_TRUE(saw_alias);
  EXPECT_TRUE(saw_fresh);
}

TEST(SemanticsTest, HavocGlobalSummarizesAndTaintsEverything) {
  // `trace(x)` passes a struct pointer to unknown code: salvage lowers it to
  // a global havoc — the whole graph coarsens to typed ⊤ and every node
  // carries the taint bit.
  const RunResult r = run_salvage(R"(
    struct node *x;
    x = malloc(struct node);
    x->nxt = malloc(struct node);
    trace(x);
  )", 1);
  for (const Rsg& g : r.result.at_exit(r.program.cfg).graphs()) {
    EXPECT_TRUE(g.havoc());
    EXPECT_GT(g.node_count(), 0u);
    for (const NodeRef n : g.node_refs()) EXPECT_TRUE(g.props(n).havoc);
    // x is still bound: unknown code receives the pointer by value and
    // cannot rebind the caller's variable.
    EXPECT_NE(g.pvar_target(r.program.symbol("x")), kNoNode);
  }
}

TEST(SemanticsTest, HavocTaintSurvivesSubsequentCleanStatements) {
  // The taint introduced by the havoc must flow through JOIN/COMPRESS into
  // later program points, not just the statement's own post-state.
  const RunResult r = run_salvage(R"(
    struct node *x; struct node *y;
    y = malloc(struct node);
    x = (struct packet *)y;
    y->nxt = x;
  )", 1);
  bool saw_tainted_target = false;
  for (const Rsg& g : r.result.at_exit(r.program.cfg).graphs()) {
    EXPECT_TRUE(g.havoc());
    const NodeRef nx = g.pvar_target(r.program.symbol("x"));
    if (nx != kNoNode && g.props(nx).havoc) saw_tainted_target = true;
  }
  EXPECT_TRUE(saw_tainted_target);
}

}  // namespace
}  // namespace psa::analysis
