// The textual analysis report.
#include "client/report.hpp"

#include <gtest/gtest.h>

#include "corpus/corpus.hpp"

namespace psa::client {
namespace {

TEST(ReportTest, SummaryMentionsEverySection) {
  const auto program =
      analysis::prepare(corpus::find_program("sll")->source);
  const auto result = analysis::analyze_program(program, {});
  const std::string report = format_analysis_report(program, result);
  EXPECT_NE(report.find("analysis: converged"), std::string::npos);
  EXPECT_NE(report.find("cfg:"), std::string::npos);
  EXPECT_NE(report.find("exit state:"), std::string::npos);
  EXPECT_NE(report.find("sharing facts"), std::string::npos);
  EXPECT_NE(report.find("loop parallelism:"), std::string::npos);
  EXPECT_NE(report.find("struct node"), std::string::npos);
}

TEST(ReportTest, PerStatementSectionOptIn) {
  const auto program =
      analysis::prepare(corpus::find_program("sll")->source);
  const auto result = analysis::analyze_program(program, {});
  ReportOptions options;
  EXPECT_EQ(format_analysis_report(program, result, options)
                .find("per-statement"),
            std::string::npos);
  options.per_statement = true;
  EXPECT_NE(format_analysis_report(program, result, options)
                .find("per-statement"),
            std::string::npos);
}

TEST(ReportTest, SectionsCanBeDisabled) {
  const auto program =
      analysis::prepare(corpus::find_program("sll")->source);
  const auto result = analysis::analyze_program(program, {});
  ReportOptions options;
  options.parallelism = false;
  options.sharing = false;
  const std::string report = format_analysis_report(program, result, options);
  EXPECT_EQ(report.find("loop parallelism:"), std::string::npos);
  EXPECT_EQ(report.find("sharing facts"), std::string::npos);
}

TEST(ReportTest, GuardRailStatusShown) {
  const auto program =
      analysis::prepare(corpus::find_program("sll")->source);
  analysis::Options options;
  options.max_node_visits = 2;
  options.budget_policy = analysis::BudgetPolicy::kHardFail;
  const auto result = analysis::analyze_program(program, options);
  const std::string report = format_analysis_report(program, result);
  EXPECT_NE(report.find("iteration limit"), std::string::npos);
}

TEST(ReportTest, DegradationSummaryShown) {
  // Same budget under the default degrade policy: the run converges and the
  // report explains what the governor had to do.
  const auto program =
      analysis::prepare(corpus::find_program("sll")->source);
  analysis::Options options;
  options.max_node_visits = 2;
  const auto result = analysis::analyze_program(program, options);
  ASSERT_EQ(result.status, analysis::AnalysisStatus::kConverged);
  const std::string report = format_analysis_report(program, result);
  EXPECT_NE(report.find("degradation"), std::string::npos);
}

}  // namespace
}  // namespace psa::client
