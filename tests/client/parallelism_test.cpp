// The loop-parallelism detector (the client pass §5.1 relies on).
#include "client/parallelism.hpp"

#include <gtest/gtest.h>

#include "corpus/corpus.hpp"

namespace psa::client {
namespace {

using analysis::AnalysisResult;
using analysis::prepare;
using analysis::ProgramAnalysis;

struct RunResult {
  ProgramAnalysis program;
  AnalysisResult result;
  std::vector<LoopParallelism> loops;
};

RunResult detect(std::string_view source,
           rsg::AnalysisLevel level = rsg::AnalysisLevel::kL2) {
  RunResult r;
  r.program = prepare(source);
  analysis::Options options;
  options.level = level;
  r.result = analysis::analyze_program(r.program, options);
  EXPECT_TRUE(r.result.converged());
  r.loops = detect_parallel_loops(r.program, r.result);
  return r;
}

TEST(ParallelismTest, ListUpdateLoopIsParallel) {
  const RunResult r = detect(R"(
    struct node { struct node *nxt; int v; };
    void main() {
      struct node *list; struct node *t; struct node *p;
      int i; int n;
      list = NULL; i = 0; n = 50;
      while (i < n) {
        t = malloc(sizeof(struct node));
        t->nxt = list;
        list = t;
        i = i + 1;
      }
      t = NULL;
      p = list;
      while (p != NULL) {
        p->v = p->v + 1;
        p = p->nxt;
      }
    }
  )");
  ASSERT_EQ(r.loops.size(), 2u);
  // The traversal loop (the second one) updates disjoint elements.
  EXPECT_TRUE(r.loops[1].parallelizable) << format_report(r.loops);
  EXPECT_FALSE(r.loops[1].traversal_selectors.empty());
  EXPECT_FALSE(r.loops[1].written_selectors.empty());
}

TEST(ParallelismTest, SharedTailMakesLoopSerial) {
  // Every element points to one shared sink; the loop writes through the
  // shared node reached via nxt.
  const RunResult r = detect(R"(
    struct node { struct node *nxt; struct node *sink; int v; };
    void main() {
      struct node *list; struct node *t; struct node *p; struct node *s;
      struct node *shared;
      int i; int n;
      shared = malloc(sizeof(struct node));
      list = NULL; i = 0; n = 50;
      while (i < n) {
        t = malloc(sizeof(struct node));
        t->nxt = list;
        t->sink = shared;
        list = t;
        i = i + 1;
      }
      t = NULL;
      p = list;
      while (p != NULL) {
        s = p->sink;
        s->v = s->v + 1;
        p = p->nxt;
      }
    }
  )");
  ASSERT_EQ(r.loops.size(), 2u);
  EXPECT_FALSE(r.loops[1].parallelizable) << format_report(r.loops);
  EXPECT_FALSE(r.loops[1].conflicts.empty());
}

TEST(ParallelismTest, DllForwardUpdateParallelDespiteBackPointers) {
  const RunResult r = detect(corpus::find_program("dll")->source);
  ASSERT_EQ(r.loops.size(), 3u);
  // Both traversal loops write only the element under the cursor.
  EXPECT_TRUE(r.loops[1].parallelizable) << format_report(r.loops);
  EXPECT_TRUE(r.loops[2].parallelizable) << format_report(r.loops);
}

TEST(ParallelismTest, PureBuildLoopsReported) {
  const RunResult r = detect(corpus::find_program("sll")->source);
  ASSERT_EQ(r.loops.size(), 2u);
  for (const LoopParallelism& lp : r.loops) {
    EXPECT_GT(lp.loc.line, 0u);
  }
}

TEST(ParallelismTest, ReportFormatsAllLoops) {
  const RunResult r = detect(corpus::find_program("sll")->source);
  const std::string report = format_report(r.loops);
  EXPECT_NE(report.find("loop"), std::string::npos);
  EXPECT_NE(report.find("L1"), std::string::npos);
  EXPECT_NE(report.find("L2"), std::string::npos);
}

TEST(ParallelismTest, BarnesHutSmallForceLoopParallel) {
  // §5.1's conclusion on the reduced code with pure semantics: the per-body
  // force loop of step (iii) traverses and updates independent regions.
  auto program = prepare(corpus::find_program("barnes_hut_small")->source);
  analysis::Options options;
  options.level = rsg::AnalysisLevel::kL3;
  options.widen_threshold = 0;
  const auto result = analysis::analyze_program(program, options);
  ASSERT_TRUE(result.converged());
  const auto loops = detect_parallel_loops(program, result);
  ASSERT_FALSE(loops.empty());
  for (const LoopParallelism& lp : loops) {
    EXPECT_TRUE(lp.parallelizable)
        << "loop " << lp.loop_id << ": " << format_report(loops);
  }
}

TEST(AnnotateTest, ParallelLoopsGetPragmas) {
  const char* source = R"(struct node { struct node *nxt; int v; };
void main() {
  struct node *list; struct node *t; struct node *p;
  int i;
  list = NULL;
  for (i = 0; i < 9; i++) {
    t = malloc(struct node);
    t->nxt = list;
    list = t;
  }
  p = list;
  while (p != NULL) {
    p->v = 0;
    p = p->nxt;
  }
})";
  const RunResult r = detect(source);
  const std::string annotated = annotate_source(source, r.loops);
  // Both loops are region-parallel; two pragmas, original text preserved.
  EXPECT_EQ(annotated.find("#pragma omp parallel for"),
            annotated.rfind("#pragma omp parallel for") == std::string::npos
                ? annotated.find("#pragma omp parallel for")
                : annotated.find("#pragma omp parallel for"));
  std::size_t count = 0;
  for (std::size_t pos = annotated.find("#pragma");
       pos != std::string::npos; pos = annotated.find("#pragma", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, r.loops.size());
  EXPECT_NE(annotated.find("while (p != NULL)"), std::string::npos);
  EXPECT_NE(annotated.find("for (i = 0; i < 9; i++)"), std::string::npos);
}

TEST(AnnotateTest, SerialLoopsGetReasonComments) {
  const RunResult r = detect(R"(struct node { struct node *nxt; struct node *sink; int v; };
void main() {
  struct node *list; struct node *t; struct node *p; struct node *s;
  struct node *shared;
  int i;
  shared = malloc(struct node);
  list = NULL;
  for (i = 0; i < 9; i++) {
    t = malloc(struct node);
    t->nxt = list;
    t->sink = shared;
    list = t;
  }
  p = list;
  while (p != NULL) {
    s = p->sink;
    s->v = 1;
    p = p->nxt;
  }
})");
  ASSERT_EQ(r.loops.size(), 2u);
  ASSERT_FALSE(r.loops[1].parallelizable);
  const std::string annotated =
      annotate_source(corpus::find_program("sll")->source, {});
  EXPECT_EQ(annotated, corpus::find_program("sll")->source);  // no loops: id
  const char* source = "void main() { int i; while (i < 2) { i = 1; } }";
  // Fake a serial loop record pointing at line 1.
  LoopParallelism lp;
  lp.loop_id = 1;
  lp.loc = {1, 15};
  lp.parallelizable = false;
  lp.conflicts = {"demo conflict"};
  const std::string out = annotate_source(source, {lp});
  EXPECT_NE(out.find("psa: serial"), std::string::npos);
  EXPECT_NE(out.find("demo conflict"), std::string::npos);
}

TEST(AnnotateTest, OutOfRangeLinesIgnored) {
  LoopParallelism lp;
  lp.loc = {999, 1};
  lp.parallelizable = true;
  const std::string out = annotate_source("void main() { }", {lp});
  EXPECT_EQ(out, "void main() { }");
}

}  // namespace
}  // namespace psa::client
