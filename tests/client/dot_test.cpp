// Graphviz export.
#include "client/dot.hpp"

#include <gtest/gtest.h>

#include "analysis/rsrsg.hpp"
#include "testing/rsg_builder.hpp"

namespace psa::client {
namespace {

using psa::testing::RsgBuilder;
using rsg::Cardinality;
using rsg::NodeRef;

TEST(DotTest, EmptyGraphIsValidDot) {
  rsg::Rsg g;
  support::Interner interner;
  const std::string dot = to_dot(g, interner);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find('}'), std::string::npos);
}

TEST(DotTest, NodesPvarsLinksRendered) {
  RsgBuilder b;
  const NodeRef h = b.node();
  const NodeRef t = b.node(Cardinality::kMany);
  b.pvar("head", h).link(h, "nxt", t);
  const std::string dot = to_dot(b.g, b.interner());
  EXPECT_NE(dot.find("head"), std::string::npos);
  EXPECT_NE(dot.find("nxt"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  // Summaries are drawn with double periphery.
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);
}

TEST(DotTest, SharingAnnotationsInLabel) {
  RsgBuilder b;
  const NodeRef n = b.node();
  b.pvar("x", n);
  b.shared(n).shsel(n, "nxt").touch(n, "p");
  const std::string dot = to_dot(b.g, b.interner());
  EXPECT_NE(dot.find("SHARED"), std::string::npos);
  EXPECT_NE(dot.find("SHSEL"), std::string::npos);
  EXPECT_NE(dot.find("TOUCH"), std::string::npos);
}

TEST(DotTest, RsrsgRendersClusters) {
  RsgBuilder a;
  a.pvar("x", a.node());
  RsgBuilder b(a.interner_ptr());
  b.pvar("y", b.node());
  analysis::Rsrsg set;
  set.insert(a.g, rsg::LevelPolicy{});
  set.insert(b.g, rsg::LevelPolicy{});
  const std::string dot = to_dot(set, a.interner());
  EXPECT_NE(dot.find("cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("cluster_1"), std::string::npos);
}

TEST(DotTest, CustomGraphName) {
  rsg::Rsg g;
  support::Interner interner;
  const std::string dot = to_dot(g, interner, "fig1");
  EXPECT_NE(dot.find("digraph fig1"), std::string::npos);
}

}  // namespace
}  // namespace psa::client
