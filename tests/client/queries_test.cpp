// Shape queries over analysis results.
#include "client/queries.hpp"

#include <gtest/gtest.h>

#include "corpus/corpus.hpp"

namespace psa::client {
namespace {

using analysis::AnalysisResult;
using analysis::prepare;
using analysis::ProgramAnalysis;

struct RunResult {
  ProgramAnalysis program;
  AnalysisResult result;

  const Rsrsg& exit_set() const { return result.at_exit(program.cfg); }
};

RunResult run_program(std::string_view name,
                rsg::AnalysisLevel level = rsg::AnalysisLevel::kL2) {
  RunResult r;
  r.program = prepare(corpus::find_program(name)->source);
  analysis::Options options;
  options.level = level;
  r.result = analysis::analyze_program(r.program, options);
  EXPECT_TRUE(r.result.converged()) << name;
  return r;
}

TEST(QueriesTest, SllIsUnsharedAcyclicList) {
  const RunResult r = run_program("sll");
  EXPECT_FALSE(may_be_shared(r.program, r.exit_set(), "node"));
  EXPECT_FALSE(may_be_shared_via(r.program, r.exit_set(), "node", "nxt"));
  EXPECT_EQ(classify_structure(r.program, r.exit_set(), "list"),
            StructureKind::kAcyclicList);
}

TEST(QueriesTest, DllClassifiesAsListDespiteBackPointers) {
  const RunResult r = run_program("dll");
  // Every interior element is referenced twice (nxt + prv), but not twice
  // via any single selector.
  EXPECT_FALSE(may_be_shared_via(r.program, r.exit_set(), "dnode", "nxt"));
  EXPECT_FALSE(may_be_shared_via(r.program, r.exit_set(), "dnode", "prv"));
  const StructureKind kind =
      classify_structure(r.program, r.exit_set(), "list");
  EXPECT_TRUE(kind == StructureKind::kAcyclicList ||
              kind == StructureKind::kTree)
      << to_string(kind);
}

TEST(QueriesTest, ReversedListStaysList) {
  const RunResult r = run_program("list_reverse");
  EXPECT_EQ(classify_structure(r.program, r.exit_set(), "rev"),
            StructureKind::kAcyclicList);
  EXPECT_FALSE(may_be_shared(r.program, r.exit_set(), "node"));
}

TEST(QueriesTest, BinaryTreeSelectorsUnshared) {
  // The load-bearing facts: no tree node is reachable twice through lft or
  // rgt. (Full tree-vs-cyclic classification over summarized subtrees is
  // conservative: mutual may-links between sibling summaries read as
  // possible cycles, so classify_structure is only asserted on lists.)
  const RunResult r = run_program("binary_tree");
  EXPECT_FALSE(may_be_shared_via(r.program, r.exit_set(), "tnode", "lft"));
  EXPECT_FALSE(may_be_shared_via(r.program, r.exit_set(), "tnode", "rgt"));
  EXPECT_NE(classify_structure(r.program, r.exit_set(), "root"),
            StructureKind::kUnreachable);
}

TEST(QueriesTest, MayAliasOnCopies) {
  const auto program = prepare(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *a; struct node *b; struct node *c;
      a = malloc(struct node);
      b = a;
      c = malloc(struct node);
    }
  )");
  const auto result = analysis::analyze_program(program, {});
  const auto& at_exit = result.at_exit(program.cfg);
  EXPECT_TRUE(may_alias(program, at_exit, "a", "b"));
  EXPECT_FALSE(may_alias(program, at_exit, "a", "c"));
}

TEST(QueriesTest, MayBeNullReflectsControlFlow) {
  const RunResult r = run_program("sll");
  // The build loop may run zero times.
  EXPECT_TRUE(may_be_null(r.program, r.exit_set(), "list"));
  // p finished its traversal: always NULL.
  EXPECT_TRUE(may_be_null(r.program, r.exit_set(), "p"));
}

TEST(QueriesTest, PathsMayAliasLevelLadder) {
  const RunResult l1 = run_program("sll", rsg::AnalysisLevel::kL1);
  const RunResult l2 = run_program("sll", rsg::AnalysisLevel::kL2);
  EXPECT_TRUE(paths_may_alias(l1.program, l1.exit_set(), "list->nxt",
                              "list->nxt->nxt"));
  EXPECT_FALSE(paths_may_alias(l2.program, l2.exit_set(), "list->nxt",
                               "list->nxt->nxt"));
}

TEST(QueriesTest, PathNeverAliasesDistinctSelectors) {
  const RunResult r = run_program("two_lists");
  EXPECT_FALSE(paths_may_alias(r.program, r.exit_set(), "h->la", "h->lb"));
}

TEST(QueriesTest, RegionsOverlapForAliasedRoots) {
  const auto program = prepare(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *a; struct node *b;
      a = malloc(struct node);
      b = a;
    }
  )");
  const auto result = analysis::analyze_program(program, {});
  EXPECT_TRUE(
      regions_may_overlap(program, result.at_exit(program.cfg), "a", "b"));
}

TEST(QueriesTest, RegionsDisjointForSeparateStructures) {
  const auto program = prepare(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *a; struct node *b;
      a = malloc(struct node);
      b = malloc(struct node);
    }
  )");
  const auto result = analysis::analyze_program(program, {});
  EXPECT_FALSE(
      regions_may_overlap(program, result.at_exit(program.cfg), "a", "b"));
}

TEST(QueriesTest, UnknownNamesAreHandled) {
  const RunResult r = run_program("sll");
  EXPECT_FALSE(may_be_shared(r.program, r.exit_set(), "no_such_struct"));
  EXPECT_FALSE(may_be_shared_via(r.program, r.exit_set(), "node", "no_sel"));
  EXPECT_FALSE(may_alias(r.program, r.exit_set(), "nope", "list"));
  EXPECT_EQ(classify_structure(r.program, r.exit_set(), "nope"),
            StructureKind::kUnreachable);
}

TEST(QueriesTest, StatsCountGraphsNodesLinks) {
  const RunResult r = run_program("sll");
  const SetStats s = stats(r.exit_set());
  EXPECT_GT(s.graphs, 0u);
  EXPECT_GT(s.nodes, 0u);
  EXPECT_GT(s.links, 0u);
  EXPECT_GT(s.bytes, 0u);
}

TEST(QueriesTest, SharedStructureDetected) {
  const auto program = prepare(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *a; struct node *b; struct node *t;
      a = malloc(struct node);
      b = malloc(struct node);
      t = malloc(struct node);
      a->nxt = t;
      b->nxt = t;
    }
  )");
  const auto result = analysis::analyze_program(program, {});
  const auto& at_exit = result.at_exit(program.cfg);
  EXPECT_TRUE(may_be_shared(program, at_exit, "node"));
  EXPECT_TRUE(may_be_shared_via(program, at_exit, "node", "nxt"));
  EXPECT_EQ(classify_structure(program, at_exit, "a"), StructureKind::kDag);
}

TEST(QueriesTest, CyclicStructureDetected) {
  // A 3-cycle through one selector has no explaining cycle-link pairs.
  const auto program = prepare(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *a; struct node *b; struct node *c;
      a = malloc(struct node);
      b = malloc(struct node);
      c = malloc(struct node);
      a->nxt = b;
      b->nxt = c;
      c->nxt = a;
    }
  )");
  const auto result = analysis::analyze_program(program, {});
  const auto& at_exit = result.at_exit(program.cfg);
  EXPECT_EQ(classify_structure(program, at_exit, "a"), StructureKind::kCyclic);
}

TEST(QueriesTest, MutualPairExplainedByCycleLinks) {
  // a <-> b through the same selector is fully described by cycle links and
  // is not reported as an unexplained cycle.
  const auto program = prepare(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *a; struct node *b;
      a = malloc(struct node);
      b = malloc(struct node);
      a->nxt = b;
      b->nxt = a;
    }
  )");
  const auto result = analysis::analyze_program(program, {});
  const auto& at_exit = result.at_exit(program.cfg);
  EXPECT_NE(classify_structure(program, at_exit, "a"), StructureKind::kCyclic);
}

}  // namespace
}  // namespace psa::client
