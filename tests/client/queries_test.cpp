// Shape queries over analysis results.
#include "client/queries.hpp"

#include <gtest/gtest.h>

#include "corpus/corpus.hpp"

namespace psa::client {
namespace {

using analysis::AnalysisResult;
using analysis::prepare;
using analysis::ProgramAnalysis;

struct RunResult {
  ProgramAnalysis program;
  AnalysisResult result;

  const Rsrsg& exit_set() const { return result.at_exit(program.cfg); }
};

RunResult run_program(std::string_view name,
                rsg::AnalysisLevel level = rsg::AnalysisLevel::kL2) {
  RunResult r;
  r.program = prepare(corpus::find_program(name)->source);
  analysis::Options options;
  options.level = level;
  r.result = analysis::analyze_program(r.program, options);
  EXPECT_TRUE(r.result.converged()) << name;
  return r;
}

TEST(QueriesTest, SllIsUnsharedAcyclicList) {
  const RunResult r = run_program("sll");
  EXPECT_FALSE(may_be_shared(r.program, r.exit_set(), "node"));
  EXPECT_FALSE(may_be_shared_via(r.program, r.exit_set(), "node", "nxt"));
  EXPECT_EQ(classify_structure(r.program, r.exit_set(), "list"),
            StructureKind::kAcyclicList);
}

TEST(QueriesTest, DllClassifiesAsListDespiteBackPointers) {
  const RunResult r = run_program("dll");
  // Every interior element is referenced twice (nxt + prv), but not twice
  // via any single selector.
  EXPECT_FALSE(may_be_shared_via(r.program, r.exit_set(), "dnode", "nxt"));
  EXPECT_FALSE(may_be_shared_via(r.program, r.exit_set(), "dnode", "prv"));
  const StructureKind kind =
      classify_structure(r.program, r.exit_set(), "list");
  EXPECT_TRUE(kind == StructureKind::kAcyclicList ||
              kind == StructureKind::kTree)
      << to_string(kind);
}

TEST(QueriesTest, ReversedListStaysList) {
  const RunResult r = run_program("list_reverse");
  EXPECT_EQ(classify_structure(r.program, r.exit_set(), "rev"),
            StructureKind::kAcyclicList);
  EXPECT_FALSE(may_be_shared(r.program, r.exit_set(), "node"));
}

TEST(QueriesTest, BinaryTreeSelectorsUnshared) {
  // The load-bearing facts: no tree node is reachable twice through lft or
  // rgt. (Full tree-vs-cyclic classification over summarized subtrees is
  // conservative: mutual may-links between sibling summaries read as
  // possible cycles, so classify_structure is only asserted on lists.)
  const RunResult r = run_program("binary_tree");
  EXPECT_FALSE(may_be_shared_via(r.program, r.exit_set(), "tnode", "lft"));
  EXPECT_FALSE(may_be_shared_via(r.program, r.exit_set(), "tnode", "rgt"));
  EXPECT_NE(classify_structure(r.program, r.exit_set(), "root"),
            StructureKind::kUnreachable);
}

TEST(QueriesTest, MayAliasOnCopies) {
  const auto program = prepare(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *a; struct node *b; struct node *c;
      a = malloc(struct node);
      b = a;
      c = malloc(struct node);
    }
  )");
  const auto result = analysis::analyze_program(program, {});
  const auto& at_exit = result.at_exit(program.cfg);
  EXPECT_TRUE(may_alias(program, at_exit, "a", "b"));
  EXPECT_FALSE(may_alias(program, at_exit, "a", "c"));
}

TEST(QueriesTest, MayBeNullReflectsControlFlow) {
  const RunResult r = run_program("sll");
  // The build loop may run zero times.
  EXPECT_TRUE(may_be_null(r.program, r.exit_set(), "list"));
  // p finished its traversal: always NULL.
  EXPECT_TRUE(may_be_null(r.program, r.exit_set(), "p"));
}

TEST(QueriesTest, PathsMayAliasLevelLadder) {
  const RunResult l1 = run_program("sll", rsg::AnalysisLevel::kL1);
  const RunResult l2 = run_program("sll", rsg::AnalysisLevel::kL2);
  EXPECT_TRUE(paths_may_alias(l1.program, l1.exit_set(), "list->nxt",
                              "list->nxt->nxt"));
  EXPECT_FALSE(paths_may_alias(l2.program, l2.exit_set(), "list->nxt",
                               "list->nxt->nxt"));
}

TEST(QueriesTest, PathNeverAliasesDistinctSelectors) {
  const RunResult r = run_program("two_lists");
  EXPECT_FALSE(paths_may_alias(r.program, r.exit_set(), "h->la", "h->lb"));
}

TEST(QueriesTest, RegionsOverlapForAliasedRoots) {
  const auto program = prepare(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *a; struct node *b;
      a = malloc(struct node);
      b = a;
    }
  )");
  const auto result = analysis::analyze_program(program, {});
  EXPECT_TRUE(
      regions_may_overlap(program, result.at_exit(program.cfg), "a", "b"));
}

TEST(QueriesTest, RegionsDisjointForSeparateStructures) {
  const auto program = prepare(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *a; struct node *b;
      a = malloc(struct node);
      b = malloc(struct node);
    }
  )");
  const auto result = analysis::analyze_program(program, {});
  EXPECT_FALSE(
      regions_may_overlap(program, result.at_exit(program.cfg), "a", "b"));
}

TEST(QueriesTest, UnknownNamesAreHandled) {
  const RunResult r = run_program("sll");
  EXPECT_FALSE(may_be_shared(r.program, r.exit_set(), "no_such_struct"));
  EXPECT_FALSE(may_be_shared_via(r.program, r.exit_set(), "node", "no_sel"));
  EXPECT_FALSE(may_alias(r.program, r.exit_set(), "nope", "list"));
  EXPECT_EQ(classify_structure(r.program, r.exit_set(), "nope"),
            StructureKind::kUnreachable);
}

TEST(QueriesTest, StatsCountGraphsNodesLinks) {
  const RunResult r = run_program("sll");
  const SetStats s = stats(r.exit_set());
  EXPECT_GT(s.graphs, 0u);
  EXPECT_GT(s.nodes, 0u);
  EXPECT_GT(s.links, 0u);
  EXPECT_GT(s.bytes, 0u);
}

TEST(QueriesTest, SharedStructureDetected) {
  const auto program = prepare(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *a; struct node *b; struct node *t;
      a = malloc(struct node);
      b = malloc(struct node);
      t = malloc(struct node);
      a->nxt = t;
      b->nxt = t;
    }
  )");
  const auto result = analysis::analyze_program(program, {});
  const auto& at_exit = result.at_exit(program.cfg);
  EXPECT_TRUE(may_be_shared(program, at_exit, "node"));
  EXPECT_TRUE(may_be_shared_via(program, at_exit, "node", "nxt"));
  EXPECT_EQ(classify_structure(program, at_exit, "a"), StructureKind::kDag);
}

TEST(QueriesTest, CyclicStructureDetected) {
  // A 3-cycle through one selector has no explaining cycle-link pairs.
  const auto program = prepare(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *a; struct node *b; struct node *c;
      a = malloc(struct node);
      b = malloc(struct node);
      c = malloc(struct node);
      a->nxt = b;
      b->nxt = c;
      c->nxt = a;
    }
  )");
  const auto result = analysis::analyze_program(program, {});
  const auto& at_exit = result.at_exit(program.cfg);
  EXPECT_EQ(classify_structure(program, at_exit, "a"), StructureKind::kCyclic);
}

/// Post-state of the first CFG statement matching `op` on pvar `name`
/// (by the x operand); asserts the statement exists.
const Rsrsg& state_after(const ProgramAnalysis& program,
                         const AnalysisResult& result, cfg::SimpleOp op,
                         std::string_view name) {
  const support::Symbol sym = program.symbol(name);
  for (cfg::NodeId id = 0; id < program.cfg.size(); ++id) {
    const auto& stmt = program.cfg.node(id).stmt;
    if (stmt.op == op && stmt.x == sym) return result.per_node[id];
  }
  ADD_FAILURE() << "no statement for " << name;
  return result.per_node[program.cfg.entry()];
}

constexpr std::string_view kMaybeNullSource = R"(
struct node { struct node *nxt; int v; };
void main() {
  struct node *p; struct node *q;
  int c;
  p = NULL; q = NULL; c = 0;
  if (c > 0) {
    p = malloc(sizeof(struct node));
  }
  if (p != NULL) {
    q = p;
  } else {
    q = NULL;
  }
}
)";

TEST(QueriesTest, MayBeNullUnderAssumeEdgeRefinements) {
  const auto program = prepare(kMaybeNullSource);
  const auto result = analysis::analyze_program(program, {});
  ASSERT_TRUE(result.converged());

  // Before the test, p is NULL on one path and bound on the other.
  EXPECT_TRUE(may_be_null(
      program, state_after(program, result, cfg::SimpleOp::kBranch, ""), "p"));
  // After assume(p != NULL) the unbound configuration is filtered out.
  EXPECT_FALSE(may_be_null(
      program, state_after(program, result, cfg::SimpleOp::kAssumeNotNull, "p"),
      "p"));
  // After assume(p == NULL) only the unbound configuration survives.
  EXPECT_TRUE(may_be_null(
      program, state_after(program, result, cfg::SimpleOp::kAssumeNull, "p"),
      "p"));
  // The refinement flows through the copy: q aliases the non-NULL p.
  EXPECT_FALSE(may_be_null(
      program, state_after(program, result, cfg::SimpleOp::kPtrCopy, "q"),
      "q"));
  // At exit both outcomes rejoin.
  EXPECT_TRUE(may_be_null(program, result.at_exit(program.cfg), "p"));
}

TEST(QueriesTest, MayBeNullSurvivesGovernorDegradation) {
  // Degraded (widened/summarized) states may only over-approximate: the
  // assume-edge refinement must still filter unbound configurations, and
  // the maybe-NULL answers must stay maybe — never flip to a wrong
  // "definitely not NULL".
  for (const std::size_t budget : {200'000u, 40'000u, 15'000u}) {
    analysis::Options options;
    options.memory_budget_bytes = budget;
    options.budget_policy = analysis::BudgetPolicy::kDegrade;
    const auto program = prepare(kMaybeNullSource);
    options.types = &program.unit.types;
    const auto result = analysis::analyze_program(program, options);
    ASSERT_TRUE(result.converged()) << "budget " << budget;

    EXPECT_FALSE(may_be_null(
        program,
        state_after(program, result, cfg::SimpleOp::kAssumeNotNull, "p"), "p"))
        << "budget " << budget;
    EXPECT_TRUE(may_be_null(
        program, state_after(program, result, cfg::SimpleOp::kAssumeNull, "p"),
        "p"))
        << "budget " << budget;
    EXPECT_TRUE(may_be_null(program, result.at_exit(program.cfg), "p"))
        << "budget " << budget;
  }
}

TEST(QueriesTest, MutualPairExplainedByCycleLinks) {
  // a <-> b through the same selector is fully described by cycle links and
  // is not reported as an unexplained cycle.
  const auto program = prepare(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *a; struct node *b;
      a = malloc(struct node);
      b = malloc(struct node);
      a->nxt = b;
      b->nxt = a;
    }
  )");
  const auto result = analysis::analyze_program(program, {});
  const auto& at_exit = result.at_exit(program.cfg);
  EXPECT_NE(classify_structure(program, at_exit, "a"), StructureKind::kCyclic);
}

}  // namespace
}  // namespace psa::client
