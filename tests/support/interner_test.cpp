#include "support/interner.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace psa::support {
namespace {

TEST(InternerTest, InternReturnsStableSymbol) {
  Interner in;
  const Symbol a = in.intern("alpha");
  const Symbol b = in.intern("alpha");
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.valid());
}

TEST(InternerTest, DistinctStringsGetDistinctSymbols) {
  Interner in;
  EXPECT_NE(in.intern("alpha"), in.intern("beta"));
}

TEST(InternerTest, SpellingRoundTrips) {
  Interner in;
  const Symbol s = in.intern("nxt");
  EXPECT_EQ(in.spelling(s), "nxt");
}

TEST(InternerTest, LookupWithoutInterning) {
  Interner in;
  EXPECT_FALSE(in.lookup("missing").valid());
  in.intern("present");
  EXPECT_TRUE(in.lookup("present").valid());
  EXPECT_FALSE(in.lookup("missing").valid());
}

TEST(InternerTest, InvalidSymbolSpellsAsInvalid) {
  Interner in;
  EXPECT_EQ(in.spelling(Symbol()), "<invalid>");
}

TEST(InternerTest, SizeCountsDistinctStrings) {
  Interner in;
  EXPECT_EQ(in.size(), 0u);
  in.intern("a");
  in.intern("b");
  in.intern("a");
  EXPECT_EQ(in.size(), 2u);
}

TEST(InternerTest, SurvivesRehashGrowth) {
  // Many interned strings force growth of the backing containers; earlier
  // symbols must keep spelling correctly (guards the string_view keys).
  Interner in;
  std::vector<Symbol> syms;
  for (int i = 0; i < 2000; ++i) {
    syms.push_back(in.intern("sym_" + std::to_string(i)));
  }
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(in.spelling(syms[static_cast<std::size_t>(i)]),
              "sym_" + std::to_string(i));
    EXPECT_EQ(in.lookup("sym_" + std::to_string(i)),
              syms[static_cast<std::size_t>(i)]);
  }
}

TEST(InternerTest, SymbolOrderingFollowsInternOrder) {
  Interner in;
  const Symbol a = in.intern("zzz");
  const Symbol b = in.intern("aaa");
  EXPECT_LT(a, b);  // ids are allocation-ordered, not lexicographic
}

}  // namespace
}  // namespace psa::support
