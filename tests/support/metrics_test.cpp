// The operation-counter registry (support/metrics.hpp): snapshot
// arithmetic, region deltas, macro behavior, the counter-name table, and
// the timer/operation split. Counters are process-global and other threads
// never touch them in this binary, so deltas are exact.
#include "support/metrics.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

namespace psa::support {
namespace {

TEST(Metrics, CounterNamesAreUniqueNonEmptySnakeCase) {
  std::set<std::string> seen;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const std::string name{counter_name(static_cast<Counter>(i))};
    EXPECT_FALSE(name.empty()) << "counter " << i;
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
    for (const char c : name) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                  c == '_')
          << name;
    }
  }
}

TEST(Metrics, TimerSplitMatchesEnumLayout) {
  EXPECT_FALSE(is_timer(Counter::kCompressCalls));
  EXPECT_FALSE(is_timer(Counter::kGovernorDrains));
  EXPECT_TRUE(is_timer(Counter::kPhaseParseWallNs));
  EXPECT_TRUE(is_timer(Counter::kPhaseSerializeCpuNs));
  // Every timer name carries the _ns suffix; no operation counter does.
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const auto c = static_cast<Counter>(i);
    const std::string name{counter_name(c)};
    const bool ns_suffix =
        name.size() > 3 && name.compare(name.size() - 3, 3, "_ns") == 0;
    EXPECT_EQ(ns_suffix, is_timer(c)) << name;
  }
}

TEST(Metrics, RegistryCountsAreMonotonic) {
  auto& registry = MetricsRegistry::instance();
  std::vector<MetricsSnapshot> snaps;
  snaps.push_back(registry.snapshot());
  for (int i = 0; i < 5; ++i) {
    PSA_COUNT(Counter::kJoinAttempts);
    PSA_COUNT_N(Counter::kPruneLinksRemoved, 3);
    snaps.push_back(registry.snapshot());
  }
  for (std::size_t i = 1; i < snaps.size(); ++i) {
    for (std::size_t c = 0; c < kCounterCount; ++c) {
      EXPECT_GE(snaps[i].values[c], snaps[i - 1].values[c])
          << counter_name(static_cast<Counter>(c));
    }
  }
}

TEST(Metrics, MacrosIncrementTheRegistry) {
  const MetricsRegion region;
  PSA_COUNT(Counter::kCompressCalls);
  PSA_COUNT(Counter::kCompressCalls);
  PSA_COUNT_N(Counter::kDivideVariants, 7);
  const MetricsSnapshot delta = region.delta();
#if PSA_METRICS
  EXPECT_EQ(delta[Counter::kCompressCalls], 2u);
  EXPECT_EQ(delta[Counter::kDivideVariants], 7u);
#else
  EXPECT_EQ(delta[Counter::kCompressCalls], 0u);
  EXPECT_EQ(delta[Counter::kDivideVariants], 0u);
#endif
}

TEST(Metrics, RegionsNestAndCompose) {
  const MetricsRegion outer;
  PSA_COUNT_N(Counter::kJoinAccepts, 2);
  {
    const MetricsRegion inner;
    PSA_COUNT_N(Counter::kJoinAccepts, 5);
#if PSA_METRICS
    EXPECT_EQ(inner.delta()[Counter::kJoinAccepts], 5u);
#endif
  }
#if PSA_METRICS
  EXPECT_EQ(outer.delta()[Counter::kJoinAccepts], 7u);
#endif
}

TEST(Metrics, SnapshotSinceClampsInsteadOfUnderflowing) {
  MetricsSnapshot a;
  MetricsSnapshot b;
  a.at(Counter::kWidenings) = 10;
  b.at(Counter::kWidenings) = 4;
  EXPECT_EQ(b.since(a)[Counter::kWidenings], 0u);
  EXPECT_EQ(a.since(b)[Counter::kWidenings], 6u);
}

TEST(Metrics, SnapshotSumAddsElementwise) {
  MetricsSnapshot a;
  MetricsSnapshot b;
  a.at(Counter::kPruneCalls) = 3;
  b.at(Counter::kPruneCalls) = 4;
  b.at(Counter::kForceJoins) = 1;
  a += b;
  EXPECT_EQ(a[Counter::kPruneCalls], 7u);
  EXPECT_EQ(a[Counter::kForceJoins], 1u);
}

TEST(Metrics, SameOperationsIgnoresTimers) {
  MetricsSnapshot a;
  MetricsSnapshot b;
  a.at(Counter::kPhaseParseWallNs) = 123456;
  b.at(Counter::kPhaseParseWallNs) = 654321;
  EXPECT_TRUE(a.same_operations(b));
  b.at(Counter::kJoinAttempts) = 1;
  EXPECT_FALSE(a.same_operations(b));
}

TEST(Metrics, NoopSinkIsEmpty) {
  EXPECT_TRUE(std::is_empty_v<NoopMetricsSink>);
}

TEST(Metrics, PhaseTimerAccumulatesIntoItsCounters) {
  const MetricsRegion region;
  {
    PSA_PHASE_TIMER(timer, Counter::kPhaseCfgWallNs, Counter::kPhaseCfgCpuNs);
    // Touch the clock so the elapsed window is nonzero on any platform.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const MetricsSnapshot delta = region.delta();
#if PSA_METRICS
  EXPECT_GT(delta[Counter::kPhaseCfgWallNs], 0u);
#else
  EXPECT_EQ(delta[Counter::kPhaseCfgWallNs], 0u);
#endif
}

TEST(Metrics, RegistryAddIsThreadSafe) {
  const MetricsRegion region;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        PSA_COUNT(Counter::kWorklistVisits);
      }
    });
  }
  for (auto& t : threads) t.join();
#if PSA_METRICS
  EXPECT_EQ(region.delta()[Counter::kWorklistVisits],
            static_cast<std::uint64_t>(kThreads) * kPerThread);
#endif
}

}  // namespace
}  // namespace psa::support
