// Compiled with -DPSA_METRICS=0 (see tests/CMakeLists.txt): proves the
// compile-out contract from support/metrics.hpp. The binary still links
// against libraries built with metrics ON — class layouts are identical in
// both modes, only the function-style macros switch — so this is also the
// mixed-build ODR check.
#include "support/metrics.hpp"

#include <gtest/gtest.h>

#include <type_traits>

static_assert(PSA_METRICS == 0,
              "this TU must be compiled with -DPSA_METRICS=0");

namespace psa::support {
namespace {

Counter bump(int& hits) {
  ++hits;
  return Counter::kJoinAttempts;
}

TEST(MetricsOff, SinkIsZeroSize) {
  EXPECT_TRUE(std::is_empty_v<NoopMetricsSink>);
}

TEST(MetricsOff, MacroArgumentsAreNeverEvaluated) {
  int hits = 0;
  PSA_COUNT(bump(hits));
  PSA_COUNT_N(bump(hits), 5);
  PSA_PHASE_TIMER(t, bump(hits), bump(hits));
  EXPECT_EQ(hits, 0);
}

TEST(MetricsOff, CountingSitesLeaveTheRegistryUntouched) {
  const MetricsSnapshot before = MetricsRegistry::instance().snapshot();
  PSA_COUNT(Counter::kCompressCalls);
  PSA_COUNT_N(Counter::kJoinAttempts, 42);
  {
    PSA_PHASE_TIMER(t, Counter::kPhaseCfgWallNs, Counter::kPhaseCfgCpuNs);
  }
  const MetricsSnapshot after = MetricsRegistry::instance().snapshot();
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    EXPECT_EQ(before.values[i], after.values[i])
        << counter_name(static_cast<Counter>(i));
  }
}

TEST(MetricsOff, RegionDeltaIsAllZero) {
  const MetricsRegion region;
  PSA_COUNT(Counter::kPruneCalls);
  PSA_COUNT_N(Counter::kWorklistVisits, 9);
  const MetricsSnapshot delta = region.delta();
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    EXPECT_EQ(delta.values[i], 0u) << counter_name(static_cast<Counter>(i));
  }
}

}  // namespace
}  // namespace psa::support
