// The durable-I/O layer (src/support/io): atomic publish and checked append
// semantics, process-global op numbering, PSA_IO_TRACE golden-run recording,
// and the PSA_IO_FAULT deterministic fault injector — every kind's on-disk
// contract (what lands, what never lands, what is left torn for recovery
// sweeps) is pinned here; docs/RESILIENCE.md "The I/O fault space" is the
// prose version of this file.
#include "support/io.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace psa::support::io {
namespace {

namespace fs = std::filesystem;

/// Sets an environment variable for one test and restores emptiness after —
/// a leaked fault plan would poison every later test in the process.
class EnvGuard {
 public:
  EnvGuard(const char* name, const std::string& value) : name_(name) {
    ::setenv(name, value.c_str(), 1);
  }
  ~EnvGuard() { ::unsetenv(name_); }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::unsetenv("PSA_IO_FAULT");
    ::unsetenv("PSA_IO_TRACE");
    dir_ = (fs::path(::testing::TempDir()) /
            ("psa-io-" + std::string(::testing::UnitTest::GetInstance()
                                         ->current_test_info()
                                         ->name())))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    ::unsetenv("PSA_IO_FAULT");
    ::unsetenv("PSA_IO_TRACE");
    fs::remove_all(dir_);
  }

  std::string path(const std::string& name) const {
    return (fs::path(dir_) / name).string();
  }

  std::string dir_;
};

TEST_F(IoTest, AtomicWritePublishesBytesAndRemovesTmp) {
  const auto result =
      atomic_write(path("a.tmp"), path("a.final"), "hello durable world");
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(slurp(path("a.final")), "hello durable world");
  EXPECT_FALSE(fs::exists(path("a.tmp")));
}

TEST_F(IoTest, CheckedAppendAppendsRecordsInOrder) {
  EXPECT_TRUE(checked_append(path("j"), "one\n").ok);
  EXPECT_TRUE(checked_append(path("j"), "two\n").ok);
  EXPECT_EQ(slurp(path("j")), "one\ntwo\n");
}

TEST_F(IoTest, CheckedRenameMoves) {
  EXPECT_TRUE(atomic_write(path("b.tmp"), path("b"), "payload").ok);
  EXPECT_TRUE(checked_rename(path("b"), path("c")).ok);
  EXPECT_FALSE(fs::exists(path("b")));
  EXPECT_EQ(slurp(path("c")), "payload");
}

TEST_F(IoTest, OpNumbersAdvancePerDurableOp) {
  ensure_initialized();
  const std::uint64_t before = ops_issued();
  (void)atomic_write(path("n.tmp"), path("n"), "x");
  (void)checked_append(path("j"), "y\n");
  EXPECT_EQ(ops_issued(), before + 2);
}

TEST_F(IoTest, TraceRecordsEveryOpWithNumberKindAndPath) {
  const std::string trace = path("trace.log");
  {
    EnvGuard guard("PSA_IO_TRACE", trace);
    (void)atomic_write(path("t.tmp"), path("t.final"), "abc");
    (void)checked_append(path("t.journal"), "line\n");
  }
  const std::string recorded = slurp(trace);
  EXPECT_NE(recorded.find("atomic_write"), std::string::npos) << recorded;
  EXPECT_NE(recorded.find("append"), std::string::npos) << recorded;
  EXPECT_NE(recorded.find("t.final"), std::string::npos) << recorded;
  EXPECT_NE(recorded.find("t.journal"), std::string::npos) << recorded;
  EXPECT_NE(recorded.find(" ok"), std::string::npos) << recorded;
  // Every line is "op <number> ...": machine-parseable by the campaign.
  std::istringstream lines(recorded);
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.rfind("op ", 0), 0u) << line;
  }
}

TEST_F(IoTest, NumericFaultFiresExactlyOnce) {
  ensure_initialized();
  const std::uint64_t target = ops_issued() + 1;
  EnvGuard guard("PSA_IO_FAULT", std::to_string(target) + ":enospc");
  const auto faulted = atomic_write(path("f.tmp"), path("f"), "doomed");
  EXPECT_FALSE(faulted.ok);
  EXPECT_FALSE(fs::exists(path("f")));
  EXPECT_FALSE(fs::exists(path("f.tmp")));  // enospc fails before any byte
  // The selector already passed: the very next op succeeds even though the
  // environment variable is still set.
  const auto clean = atomic_write(path("g.tmp"), path("g"), "fine");
  EXPECT_TRUE(clean.ok) << clean.error;
  EXPECT_EQ(slurp(path("g")), "fine");
}

TEST_F(IoTest, PathFaultFiresOnEveryMatchingOp) {
  EnvGuard guard("PSA_IO_FAULT", "@marked:enospc");
  EXPECT_FALSE(atomic_write(path("m.tmp"), path("marked-1"), "x").ok);
  EXPECT_FALSE(checked_append(path("marked-2"), "y\n").ok);
  EXPECT_TRUE(atomic_write(path("o.tmp"), path("other"), "z").ok);
  EXPECT_FALSE(fs::exists(path("marked-1")));
  EXPECT_FALSE(fs::exists(path("marked-2")));
  EXPECT_EQ(slurp(path("other")), "z");
}

TEST_F(IoTest, ShortWriteLeavesTornTmpNeverThePublishedFile) {
  EnvGuard guard("PSA_IO_FAULT", "@victim:shortwrite");
  const auto result =
      atomic_write(path("victim.tmp"), path("victim"), "0123456789");
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(fs::exists(path("victim")));  // never published
  // The torn tmp is deliberately left behind: recovery sweeps
  // (cache recover(), checkpoint open) must see and clear it.
  ASSERT_TRUE(fs::exists(path("victim.tmp")));
  EXPECT_LT(fs::file_size(path("victim.tmp")), 10u);
}

TEST_F(IoTest, ShortWriteOnAppendLeavesTornRecord) {
  EXPECT_TRUE(checked_append(path("tj"), "whole-line\n").ok);
  {
    EnvGuard guard("PSA_IO_FAULT", "@tj:shortwrite");
    EXPECT_FALSE(checked_append(path("tj"), "torn-line\n").ok);
  }
  const std::string content = slurp(path("tj"));
  EXPECT_NE(content.find("whole-line\n"), std::string::npos);
  EXPECT_EQ(content.find("torn-line\n"), std::string::npos);  // torn, no \n
}

TEST_F(IoTest, EioNeverPublishesAndCleansTmp) {
  EnvGuard guard("PSA_IO_FAULT", "@eiod:eio");
  EXPECT_FALSE(atomic_write(path("eiod.tmp"), path("eiod"), "bytes").ok);
  // fsync "failed": durability unknown, so the tmp is withdrawn and the
  // final path never appears.
  EXPECT_FALSE(fs::exists(path("eiod")));
  EXPECT_FALSE(fs::exists(path("eiod.tmp")));
}

TEST_F(IoTest, TornRenameLeavesDurableTmpUnpublished) {
  EnvGuard guard("PSA_IO_FAULT", "@torn:tornrename");
  EXPECT_FALSE(atomic_write(path("torn.tmp"), path("torn"), "bytes").ok);
  EXPECT_FALSE(fs::exists(path("torn")));
  ASSERT_TRUE(fs::exists(path("torn.tmp")));  // fully written + fsynced
  EXPECT_EQ(slurp(path("torn.tmp")), "bytes");
}

TEST_F(IoTest, MalformedFaultSpecArmsNothing) {
  EnvGuard guard("PSA_IO_FAULT", "not-a-spec");
  EXPECT_TRUE(atomic_write(path("ok.tmp"), path("ok"), "x").ok);
  EnvGuard guard2("PSA_IO_FAULT", "12:unknown-kind");
  EXPECT_TRUE(checked_append(path("ok2"), "y\n").ok);
}

using IoDeathTest = IoTest;

TEST_F(IoDeathTest, CrashFaultCompletesTheOpThenDiesWithContractCode) {
  const std::string final_path = path("pub");
  const std::string tmp_path = path("pub.tmp");
  EXPECT_EXIT(
      {
        ::setenv("PSA_IO_FAULT", "@pub:crash", 1);
        (void)atomic_write(tmp_path, final_path, "landed");
        std::_Exit(0);  // unreachable: the op must crash first
      },
      ::testing::ExitedWithCode(kCrashExitCode), "");
  // The child completed the durable publish before dying — that is the
  // "crash immediately after the op" contract the resume invariant needs.
  EXPECT_EQ(slurp(final_path), "landed");
}

}  // namespace
}  // namespace psa::support::io
