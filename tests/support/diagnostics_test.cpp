#include "support/diagnostics.hpp"

#include <gtest/gtest.h>

namespace psa::support {
namespace {

TEST(DiagnosticsTest, StartsClean) {
  DiagnosticEngine diags;
  EXPECT_FALSE(diags.has_errors());
  EXPECT_EQ(diags.error_count(), 0u);
  EXPECT_TRUE(diags.all().empty());
}

TEST(DiagnosticsTest, ErrorsAreCounted) {
  DiagnosticEngine diags;
  diags.error({1, 2}, "bad");
  diags.error({3, 4}, "worse");
  EXPECT_TRUE(diags.has_errors());
  EXPECT_EQ(diags.error_count(), 2u);
}

TEST(DiagnosticsTest, WarningsDoNotCountAsErrors) {
  DiagnosticEngine diags;
  diags.warning({1, 1}, "hmm");
  EXPECT_FALSE(diags.has_errors());
  EXPECT_EQ(diags.all().size(), 1u);
}

TEST(DiagnosticsTest, ToStringFormatsLineColSeverity) {
  DiagnosticEngine diags;
  diags.error({12, 7}, "unexpected token");
  diags.warning({1, 1}, "unused");
  const std::string text = diags.to_string();
  EXPECT_NE(text.find("12:7: error: unexpected token"), std::string::npos);
  EXPECT_NE(text.find("1:1: warning: unused"), std::string::npos);
}

TEST(DiagnosticsTest, SourceLocValidity) {
  EXPECT_FALSE(SourceLoc{}.valid());
  EXPECT_TRUE((SourceLoc{1, 1}).valid());
}

}  // namespace
}  // namespace psa::support
