#include "support/hash.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace psa::support {
namespace {

TEST(HashTest, Mix64IsDeterministic) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
}

TEST(HashTest, Mix64SpreadsSmallInputs) {
  // Consecutive integers must land far apart (avalanche sanity check).
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(HashTest, CombineIsOrderSensitive) {
  const auto ab = hash_combine(hash_value(1), hash_value(2));
  const auto ba = hash_combine(hash_value(2), hash_value(1));
  EXPECT_NE(ab, ba);
}

TEST(HashTest, UnorderedAccumulateIsOrderInsensitive) {
  std::uint64_t h1 = 0;
  h1 = hash_accumulate_unordered(h1, hash_value(10));
  h1 = hash_accumulate_unordered(h1, hash_value(20));
  std::uint64_t h2 = 0;
  h2 = hash_accumulate_unordered(h2, hash_value(20));
  h2 = hash_accumulate_unordered(h2, hash_value(10));
  EXPECT_EQ(h1, h2);
}

TEST(HashTest, UnorderedAccumulateDistinguishesMultiplicity) {
  std::uint64_t once = hash_accumulate_unordered(0, hash_value(7));
  std::uint64_t twice = hash_accumulate_unordered(once, hash_value(7));
  EXPECT_NE(once, twice);
}

TEST(HashTest, HashValueWorksOnEnums) {
  enum class E : int { kA = 1, kB = 2 };
  EXPECT_NE(hash_value(E::kA), hash_value(E::kB));
  EXPECT_EQ(hash_value(E::kA), hash_value(1));
}

TEST(HashTest, HashRangeOrderSensitive) {
  const std::vector<int> a{1, 2, 3};
  const std::vector<int> b{3, 2, 1};
  auto eh = [](int v) { return hash_value(v); };
  EXPECT_NE(hash_range(a, eh), hash_range(b, eh));
  EXPECT_EQ(hash_range(a, eh), hash_range(a, eh));
}

TEST(HashTest, HashRangeEmptyUsesSeed) {
  const std::vector<int> empty;
  auto eh = [](int v) { return hash_value(v); };
  EXPECT_NE(hash_range(empty, eh, 1), hash_range(empty, eh, 2));
}

}  // namespace
}  // namespace psa::support
