#include "support/timer.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace psa::support {
namespace {

TEST(TimerTest, ElapsedIsMonotone) {
  WallTimer timer;
  const double t1 = timer.elapsed_seconds();
  const double t2 = timer.elapsed_seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
}

TEST(TimerTest, MeasuresSleeps) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.elapsed_seconds(), 0.015);
  EXPECT_GE(timer.elapsed_ns(), 15'000'000u);
}

TEST(TimerTest, RestartResets) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.restart();
  EXPECT_LT(timer.elapsed_seconds(), 0.015);
}

}  // namespace
}  // namespace psa::support
