#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace psa::support {
namespace {

TEST(ThreadPoolTest, DefaultsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSingleRunsInline) {
  ThreadPool pool(2);
  int count = 0;
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPoolTest, ResultsIndependentOfThreadCount) {
  auto compute = [](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<long> out(257, 0);
    pool.parallel_for(out.size(), [&](std::size_t i) {
      out[i] = static_cast<long>(i) * static_cast<long>(i);
    });
    return out;
  };
  EXPECT_EQ(compute(1), compute(3));
  EXPECT_EQ(compute(2), compute(8));
}

TEST(ThreadPoolTest, BackToBackParallelFors) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.parallel_for(100, [&](std::size_t i) {
      total.fetch_add(static_cast<long>(i), std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 20 * (99 * 100 / 2));
}

TEST(ThreadPoolTest, MoreIterationsThanThreads) {
  ThreadPool pool(2);
  std::atomic<std::size_t> count{0};
  pool.parallel_for(10000, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 10000u);
}

TEST(ThreadPoolTest, StopPredicateSkipsRemainingIterations) {
  ThreadPool pool(4);
  std::atomic<std::size_t> ran{0};
  // Stop as soon as a handful of iterations have run: the call must still
  // return (every iteration executed or skipped — no leaked tasks) and must
  // not have run all 100k bodies.
  pool.parallel_for(
      100000,
      [&](std::size_t) { ran.fetch_add(1, std::memory_order_relaxed); },
      [&] { return ran.load(std::memory_order_relaxed) >= 8; });
  EXPECT_GE(ran.load(), 1u);
  EXPECT_LT(ran.load(), 100000u);
}

TEST(ThreadPoolTest, StopPredicateAlreadyTrueRunsNothingSerial) {
  ThreadPool pool(1);
  std::atomic<std::size_t> ran{0};
  pool.parallel_for(
      100, [&](std::size_t) { ran.fetch_add(1); }, [] { return true; });
  EXPECT_EQ(ran.load(), 0u);
}

TEST(ThreadPoolTest, BodyExceptionRethrownOnCallingThread) {
  ThreadPool pool(4);
  std::atomic<std::size_t> ran{0};
  constexpr std::size_t kN = 100000;
  try {
    pool.parallel_for(kN, [&](std::size_t i) {
      if (i == 3) throw std::runtime_error("boom at 3");
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected the body exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 3");
  }
  // The throw stops the sweep: not every remaining iteration ran.
  EXPECT_LT(ran.load(), kN);
}

TEST(ThreadPoolTest, BodyExceptionSerialPathPropagates) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.parallel_for(10,
                        [](std::size_t i) {
                          if (i == 0) throw std::logic_error("serial boom");
                        }),
      std::logic_error);
}

TEST(ThreadPoolTest, OnlyFirstExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  // Every iteration throws; exactly one exception must reach the caller and
  // the pool must stay usable for the next parallel_for.
  EXPECT_THROW(
      pool.parallel_for(1000,
                        [](std::size_t) { throw std::runtime_error("each"); }),
      std::runtime_error);
  std::atomic<std::size_t> count{0};
  pool.parallel_for(100, [&](std::size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100u);
}

TEST(ThreadPoolTest, DestructionWithIdleWorkers) {
  // Must not hang or leak: construct and destroy without submitting work.
  for (int i = 0; i < 5; ++i) {
    ThreadPool pool(4);
  }
  SUCCEED();
}

}  // namespace
}  // namespace psa::support
