#include "support/small_set.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>

namespace psa::support {
namespace {

TEST(SmallSetTest, StartsEmpty) {
  SmallSet<int> s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.contains(1));
}

TEST(SmallSetTest, InsertReportsNovelty) {
  SmallSet<int> s;
  EXPECT_TRUE(s.insert(3));
  EXPECT_FALSE(s.insert(3));
  EXPECT_TRUE(s.insert(1));
  EXPECT_EQ(s.size(), 2u);
}

TEST(SmallSetTest, KeepsElementsSorted) {
  SmallSet<int> s{5, 1, 3, 1, 5};
  std::vector<int> got(s.begin(), s.end());
  EXPECT_EQ(got, (std::vector<int>{1, 3, 5}));
}

TEST(SmallSetTest, EraseReportsPresence) {
  SmallSet<int> s{1, 2, 3};
  EXPECT_TRUE(s.erase(2));
  EXPECT_FALSE(s.erase(2));
  EXPECT_FALSE(s.contains(2));
  EXPECT_EQ(s.size(), 2u);
}

TEST(SmallSetTest, EraseIf) {
  SmallSet<int> s{1, 2, 3, 4, 5};
  s.erase_if([](int v) { return v % 2 == 0; });
  std::vector<int> got(s.begin(), s.end());
  EXPECT_EQ(got, (std::vector<int>{1, 3, 5}));
}

TEST(SmallSetTest, UnionIntersectionDifference) {
  SmallSet<int> a{1, 2, 3};
  SmallSet<int> b{2, 3, 4};
  EXPECT_EQ(set_union(a, b), (SmallSet<int>{1, 2, 3, 4}));
  EXPECT_EQ(set_intersection(a, b), (SmallSet<int>{2, 3}));
  EXPECT_EQ(set_difference(a, b), (SmallSet<int>{1}));
  EXPECT_EQ(set_difference(b, a), (SmallSet<int>{4}));
}

TEST(SmallSetTest, Intersects) {
  SmallSet<int> a{1, 3, 5};
  SmallSet<int> b{2, 4, 5};
  SmallSet<int> c{2, 4, 6};
  EXPECT_TRUE(intersects(a, b));
  EXPECT_FALSE(intersects(a, c));
  EXPECT_FALSE(intersects(SmallSet<int>{}, a));
}

TEST(SmallSetTest, SubsetOf) {
  SmallSet<int> a{1, 3};
  SmallSet<int> b{1, 2, 3};
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(SmallSet<int>{}.is_subset_of(a));
}

TEST(SmallSetTest, EqualityIsOrderInsensitiveOnInit) {
  SmallSet<int> a{3, 1, 2};
  SmallSet<int> b{1, 2, 3};
  EXPECT_EQ(a, b);
}

TEST(SmallSetTest, HashEqualForEqualSets) {
  SmallSet<int> a{3, 1, 2};
  SmallSet<int> b{1, 2, 3};
  auto h = [](int v) { return hash_value(v); };
  EXPECT_EQ(a.hash(h), b.hash(h));
}

TEST(SmallSetTest, HashDiffersForDifferentSets) {
  SmallSet<int> a{1, 2, 3};
  SmallSet<int> b{1, 2, 4};
  auto h = [](int v) { return hash_value(v); };
  EXPECT_NE(a.hash(h), b.hash(h));
}

// Property sweep: SmallSet agrees with std::set under a random op sequence.
class SmallSetPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SmallSetPropertyTest, AgreesWithStdSet) {
  std::mt19937 rng(GetParam());
  SmallSet<int> mine;
  std::set<int> ref;
  for (int step = 0; step < 500; ++step) {
    const int v = static_cast<int>(rng() % 40);
    switch (rng() % 3) {
      case 0:
        EXPECT_EQ(mine.insert(v), ref.insert(v).second);
        break;
      case 1:
        EXPECT_EQ(mine.erase(v), ref.erase(v) != 0);
        break;
      default:
        EXPECT_EQ(mine.contains(v), ref.count(v) != 0);
        break;
    }
    ASSERT_EQ(mine.size(), ref.size());
  }
  EXPECT_TRUE(std::equal(mine.begin(), mine.end(), ref.begin(), ref.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmallSetPropertyTest,
                         ::testing::Range(0u, 8u));

// Property sweep: algebraic identities of the set operations.
class SmallSetAlgebraTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SmallSetAlgebraTest, AlgebraicIdentities) {
  std::mt19937 rng(GetParam());
  auto random_set = [&] {
    SmallSet<int> s;
    const std::size_t n = rng() % 12;
    for (std::size_t i = 0; i < n; ++i) s.insert(static_cast<int>(rng() % 20));
    return s;
  };
  const SmallSet<int> a = random_set();
  const SmallSet<int> b = random_set();

  EXPECT_EQ(set_union(a, b), set_union(b, a));
  EXPECT_EQ(set_intersection(a, b), set_intersection(b, a));
  EXPECT_TRUE(set_intersection(a, b).is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(set_union(a, b)));
  EXPECT_EQ(set_union(set_difference(a, b), set_intersection(a, b)), a);
  EXPECT_EQ(intersects(a, b), !set_intersection(a, b).empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmallSetAlgebraTest, ::testing::Range(0u, 16u));

}  // namespace
}  // namespace psa::support
