#include "support/memory_stats.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace psa::support {
namespace {

class MemoryStatsTest : public ::testing::Test {
 protected:
  void SetUp() override { MemoryStats::instance().reset(); }
};

TEST_F(MemoryStatsTest, StartsAtZeroAfterReset) {
  const auto snap = MemoryStats::instance().snapshot();
  EXPECT_EQ(snap.live_bytes, 0u);
  EXPECT_EQ(snap.peak_bytes, 0u);
  EXPECT_EQ(snap.total_allocated_bytes, 0u);
}

TEST_F(MemoryStatsTest, AddRemoveTracksLive) {
  auto& stats = MemoryStats::instance();
  stats.add(100);
  stats.add(50);
  EXPECT_EQ(stats.snapshot().live_bytes, 150u);
  stats.remove(50);
  EXPECT_EQ(stats.snapshot().live_bytes, 100u);
  EXPECT_EQ(stats.snapshot().total_allocated_bytes, 150u);
}

TEST_F(MemoryStatsTest, PeakIsMonotone) {
  auto& stats = MemoryStats::instance();
  stats.add(100);
  stats.remove(100);
  stats.add(40);
  EXPECT_EQ(stats.snapshot().peak_bytes, 100u);
  stats.add(200);
  EXPECT_EQ(stats.snapshot().peak_bytes, 240u);
}

TEST_F(MemoryStatsTest, TrackedFootprintRegistersLifetime) {
  auto& stats = MemoryStats::instance();
  {
    TrackedFootprint fp(64);
    EXPECT_EQ(stats.snapshot().live_bytes, 64u);
  }
  EXPECT_EQ(stats.snapshot().live_bytes, 0u);
}

TEST_F(MemoryStatsTest, TrackedFootprintResize) {
  auto& stats = MemoryStats::instance();
  TrackedFootprint fp(10);
  fp.resize(50);
  EXPECT_EQ(stats.snapshot().live_bytes, 50u);
  fp.resize(20);
  EXPECT_EQ(stats.snapshot().live_bytes, 20u);
  EXPECT_EQ(fp.bytes(), 20u);
}

TEST_F(MemoryStatsTest, TrackedFootprintCopyRegistersBoth) {
  auto& stats = MemoryStats::instance();
  TrackedFootprint a(30);
  TrackedFootprint b(a);
  EXPECT_EQ(stats.snapshot().live_bytes, 60u);
}

TEST_F(MemoryStatsTest, TrackedFootprintMoveTransfersOwnership) {
  auto& stats = MemoryStats::instance();
  TrackedFootprint a(30);
  TrackedFootprint b(std::move(a));
  EXPECT_EQ(stats.snapshot().live_bytes, 30u);
  EXPECT_EQ(b.bytes(), 30u);
  EXPECT_EQ(a.bytes(), 0u);  // NOLINT(bugprone-use-after-move): spec'd empty
}

TEST_F(MemoryStatsTest, TrackedFootprintMoveAssign) {
  auto& stats = MemoryStats::instance();
  TrackedFootprint a(30);
  TrackedFootprint b(40);
  b = std::move(a);
  EXPECT_EQ(stats.snapshot().live_bytes, 30u);
  EXPECT_EQ(b.bytes(), 30u);
}

TEST_F(MemoryStatsTest, TrackedFootprintCopyAssignAdjusts) {
  auto& stats = MemoryStats::instance();
  TrackedFootprint a(30);
  TrackedFootprint b(40);
  b = a;
  EXPECT_EQ(stats.snapshot().live_bytes, 60u);
  EXPECT_EQ(b.bytes(), 30u);
}

TEST_F(MemoryStatsTest, NodeAndGraphCounters) {
  auto& stats = MemoryStats::instance();
  stats.note_node_created();
  stats.note_node_created();
  stats.note_graph_created();
  const auto snap = stats.snapshot();
  EXPECT_EQ(snap.nodes_created, 2u);
  EXPECT_EQ(snap.graphs_created, 1u);
}

// --- MemoryRegion: scoped per-run attribution -------------------------------

TEST_F(MemoryStatsTest, RegionDeltaCoversOnlyTheRegion) {
  auto& stats = MemoryStats::instance();
  stats.add(1000);  // pre-existing allocation (an earlier in-process unit)
  MemoryRegion region;
  stats.add(250);
  const auto delta = region.delta();
  EXPECT_EQ(delta.live_bytes, 250u);
  EXPECT_EQ(delta.peak_bytes, 250u);
  EXPECT_EQ(delta.total_allocated_bytes, 250u);
  stats.remove(1250);
}

// The regression this API exists for: the engine used to reset() the global
// gauge at run entry, so when an earlier unit's surviving graphs (allocated
// before the run) were freed afterwards, live_bytes underflowed. A region
// must instead clamp: older allocations dying inside the region cannot push
// its delta negative.
TEST_F(MemoryStatsTest, BaselineFootprintFreedInsideRegionClampsToZero) {
  auto& stats = MemoryStats::instance();
  stats.add(500);  // belongs to a previous unit
  MemoryRegion region;
  stats.remove(500);  // previous unit's payload dies mid-region
  const auto delta = region.delta();
  EXPECT_EQ(delta.live_bytes, 0u);  // clamped, not underflowed
  // The clamp is against the baseline, not per allocation: new growth first
  // refills the freed baseline footprint. total_allocated attributes it.
  stats.add(70);
  EXPECT_EQ(region.delta().live_bytes, 0u);
  EXPECT_EQ(region.delta().total_allocated_bytes, 70u);
  stats.remove(70);
}

TEST_F(MemoryStatsTest, RegionPeakIsItsOwnHighWaterMark) {
  auto& stats = MemoryStats::instance();
  stats.add(300);
  stats.remove(300);  // global peak now 300, live 0
  MemoryRegion region;
  stats.add(120);
  stats.remove(120);
  stats.add(40);
  const auto delta = region.delta();
  // The region's peak is 120 (its own max), not the global 300.
  EXPECT_EQ(delta.peak_bytes, 120u);
  EXPECT_EQ(delta.live_bytes, 40u);
  stats.remove(40);
}

TEST_F(MemoryStatsTest, ConcurrentRegionsDoNotBleed) {
  auto& stats = MemoryStats::instance();
  MemoryRegion outer;
  stats.add(100);
  {
    MemoryRegion inner;
    stats.add(60);
    EXPECT_EQ(inner.delta().live_bytes, 60u);
    EXPECT_EQ(inner.delta().peak_bytes, 60u);
    stats.remove(60);
    EXPECT_EQ(inner.delta().live_bytes, 0u);
  }
  EXPECT_EQ(outer.delta().live_bytes, 100u);
  EXPECT_EQ(outer.delta().peak_bytes, 160u);
  stats.remove(100);
}

TEST_F(MemoryStatsTest, ExhaustedSlotsDegradeGracefully) {
  auto& stats = MemoryStats::instance();
  // Fill every slot, then open one more region: it must still deliver a
  // clamped, underflow-free delta (peak falls back to the live delta).
  std::vector<std::unique_ptr<MemoryRegion>> regions;
  for (std::size_t i = 0; i < 8; ++i) {
    regions.push_back(std::make_unique<MemoryRegion>());
  }
  MemoryRegion overflow;
  stats.add(90);
  const auto delta = overflow.delta();
  EXPECT_EQ(delta.live_bytes, 90u);
  EXPECT_EQ(delta.peak_bytes, 90u);
  stats.remove(90);
  EXPECT_EQ(overflow.delta().live_bytes, 0u);
}

TEST_F(MemoryStatsTest, SlotsAreReusableAfterRelease) {
  auto& stats = MemoryStats::instance();
  for (int round = 0; round < 20; ++round) {
    MemoryRegion region;
    stats.add(10);
    EXPECT_EQ(region.delta().peak_bytes, 10u);
    stats.remove(10);
  }
}

}  // namespace
}  // namespace psa::support
