#include "support/memory_stats.hpp"

#include <gtest/gtest.h>

namespace psa::support {
namespace {

class MemoryStatsTest : public ::testing::Test {
 protected:
  void SetUp() override { MemoryStats::instance().reset(); }
};

TEST_F(MemoryStatsTest, StartsAtZeroAfterReset) {
  const auto snap = MemoryStats::instance().snapshot();
  EXPECT_EQ(snap.live_bytes, 0u);
  EXPECT_EQ(snap.peak_bytes, 0u);
  EXPECT_EQ(snap.total_allocated_bytes, 0u);
}

TEST_F(MemoryStatsTest, AddRemoveTracksLive) {
  auto& stats = MemoryStats::instance();
  stats.add(100);
  stats.add(50);
  EXPECT_EQ(stats.snapshot().live_bytes, 150u);
  stats.remove(50);
  EXPECT_EQ(stats.snapshot().live_bytes, 100u);
  EXPECT_EQ(stats.snapshot().total_allocated_bytes, 150u);
}

TEST_F(MemoryStatsTest, PeakIsMonotone) {
  auto& stats = MemoryStats::instance();
  stats.add(100);
  stats.remove(100);
  stats.add(40);
  EXPECT_EQ(stats.snapshot().peak_bytes, 100u);
  stats.add(200);
  EXPECT_EQ(stats.snapshot().peak_bytes, 240u);
}

TEST_F(MemoryStatsTest, TrackedFootprintRegistersLifetime) {
  auto& stats = MemoryStats::instance();
  {
    TrackedFootprint fp(64);
    EXPECT_EQ(stats.snapshot().live_bytes, 64u);
  }
  EXPECT_EQ(stats.snapshot().live_bytes, 0u);
}

TEST_F(MemoryStatsTest, TrackedFootprintResize) {
  auto& stats = MemoryStats::instance();
  TrackedFootprint fp(10);
  fp.resize(50);
  EXPECT_EQ(stats.snapshot().live_bytes, 50u);
  fp.resize(20);
  EXPECT_EQ(stats.snapshot().live_bytes, 20u);
  EXPECT_EQ(fp.bytes(), 20u);
}

TEST_F(MemoryStatsTest, TrackedFootprintCopyRegistersBoth) {
  auto& stats = MemoryStats::instance();
  TrackedFootprint a(30);
  TrackedFootprint b(a);
  EXPECT_EQ(stats.snapshot().live_bytes, 60u);
}

TEST_F(MemoryStatsTest, TrackedFootprintMoveTransfersOwnership) {
  auto& stats = MemoryStats::instance();
  TrackedFootprint a(30);
  TrackedFootprint b(std::move(a));
  EXPECT_EQ(stats.snapshot().live_bytes, 30u);
  EXPECT_EQ(b.bytes(), 30u);
  EXPECT_EQ(a.bytes(), 0u);  // NOLINT(bugprone-use-after-move): spec'd empty
}

TEST_F(MemoryStatsTest, TrackedFootprintMoveAssign) {
  auto& stats = MemoryStats::instance();
  TrackedFootprint a(30);
  TrackedFootprint b(40);
  b = std::move(a);
  EXPECT_EQ(stats.snapshot().live_bytes, 30u);
  EXPECT_EQ(b.bytes(), 30u);
}

TEST_F(MemoryStatsTest, TrackedFootprintCopyAssignAdjusts) {
  auto& stats = MemoryStats::instance();
  TrackedFootprint a(30);
  TrackedFootprint b(40);
  b = a;
  EXPECT_EQ(stats.snapshot().live_bytes, 60u);
  EXPECT_EQ(b.bytes(), 30u);
}

TEST_F(MemoryStatsTest, NodeAndGraphCounters) {
  auto& stats = MemoryStats::instance();
  stats.note_node_created();
  stats.note_node_created();
  stats.note_graph_created();
  const auto snap = stats.snapshot();
  EXPECT_EQ(snap.nodes_created, 2u);
  EXPECT_EQ(snap.graphs_created, 1u);
}

}  // namespace
}  // namespace psa::support
