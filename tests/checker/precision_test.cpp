// Checker precision across the progressive levels: rising from L1 (SPATH0)
// through L2 (SPATH1) to L3 (TOUCH) refines the abstraction, so on the
// *clean* corpus the may-defect noise (null-deref / UAF / double-free
// warnings, all of them false positives there) must not increase — and at
// L3 the UAF/double-free count must be exactly zero.
#include <gtest/gtest.h>

#include "checker/checker.hpp"
#include "corpus/corpus.hpp"

namespace psa::checker {
namespace {

using rsg::AnalysisLevel;

std::size_t spurious_count(const std::vector<Finding>& findings) {
  return count_findings(findings, CheckKind::kNullDeref) +
         count_findings(findings, CheckKind::kUseAfterFree) +
         count_findings(findings, CheckKind::kDoubleFree);
}

std::vector<Finding> check_at(const analysis::ProgramAnalysis& program,
                              AnalysisLevel level) {
  analysis::Options options;
  options.level = level;
  options.types = &program.unit.types;
  const auto result = analysis::analyze_program(program, options);
  return run_checkers(program, result);
}

TEST(CheckerPrecision, FalsePositivesDecreaseMonotonicallyL1ToL3) {
  // The Table-1 codes are excluded for runtime (minutes at L3); every
  // free()-using program and both progressive-escalation witnesses stay.
  std::size_t total_l1 = 0;
  std::size_t total_l2 = 0;
  std::size_t total_l3 = 0;
  for (const auto& prepared : corpus::prepare_all()) {
    ASSERT_TRUE(prepared.ok()) << prepared.program->name;
    if (prepared.program->in_table1) continue;
    const auto& program = *prepared.analysis;
    const std::size_t l1 = spurious_count(check_at(program, AnalysisLevel::kL1));
    const std::size_t l2 = spurious_count(check_at(program, AnalysisLevel::kL2));
    const std::size_t l3 = spurious_count(check_at(program, AnalysisLevel::kL3));
    EXPECT_LE(l2, l1) << prepared.program->name
                      << ": L2 noisier than L1 (" << l2 << " > " << l1 << ")";
    EXPECT_LE(l3, l2) << prepared.program->name
                      << ": L3 noisier than L2 (" << l3 << " > " << l2 << ")";
    total_l1 += l1;
    total_l2 += l2;
    total_l3 += l3;
  }
  EXPECT_LE(total_l3, total_l2);
  EXPECT_LE(total_l2, total_l1);
}

TEST(CheckerPrecision, SeededDefectsAreCaughtAtEveryLevel) {
  // Precision improves toward L3, but soundness holds everywhere: the
  // seeded defects must already be visible at the cheapest level.
  for (const corpus::BuggyProgram& bug : corpus::buggy_programs()) {
    const auto program = analysis::prepare(bug.source);
    for (const AnalysisLevel level :
         {AnalysisLevel::kL1, AnalysisLevel::kL2, AnalysisLevel::kL3}) {
      const auto findings = check_at(program, level);
      bool caught = false;
      for (const Finding& f : findings) {
        caught |= rule_id(f.kind) == bug.expected_rule &&
                  f.loc.line == bug.defect_line;
      }
      EXPECT_TRUE(caught) << bug.name << " at L"
                          << static_cast<int>(level) << ": seeded "
                          << bug.expected_rule << " missed";
    }
  }
}

}  // namespace
}  // namespace psa::checker
