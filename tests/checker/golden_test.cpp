// Expected-findings golden files for the deliberately-buggy corpus: the
// full formatted checker output at L3 is compared against
// tests/checker/golden/<name>.txt. Regenerate after an intentional change
// with PSA_UPDATE_GOLDEN=1 (the test then rewrites the files and fails so
// the refresh is never silent).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "checker/checker.hpp"
#include "corpus/corpus.hpp"

#ifndef PSA_CHECKER_GOLDEN_DIR
#error "PSA_CHECKER_GOLDEN_DIR must be defined by the build"
#endif

namespace psa::checker {
namespace {

std::string golden_path(std::string_view name) {
  return std::string(PSA_CHECKER_GOLDEN_DIR) + "/" + std::string(name) +
         ".txt";
}

std::string checker_output(const corpus::BuggyProgram& bug) {
  const auto program = analysis::prepare(bug.source);
  analysis::Options options;
  options.level = rsg::AnalysisLevel::kL3;
  options.types = &program.unit.types;
  const auto result = analysis::analyze_program(program, options);
  const auto findings = run_checkers(program, result);
  return format_findings(findings, program);
}

TEST(CheckerGolden, BuggyCorpusOutputMatchesGoldenFiles) {
  const bool update = std::getenv("PSA_UPDATE_GOLDEN") != nullptr;
  for (const corpus::BuggyProgram& bug : corpus::buggy_programs()) {
    const std::string actual = checker_output(bug);
    const std::string path = golden_path(bug.name);
    if (update) {
      std::ofstream out(path);
      out << actual;
      ADD_FAILURE() << "golden file regenerated: " << path
                    << " (rerun without PSA_UPDATE_GOLDEN)";
      continue;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing golden file " << path
                           << " (regenerate with PSA_UPDATE_GOLDEN=1)";
    std::stringstream expected;
    expected << in.rdbuf();
    EXPECT_EQ(actual, expected.str())
        << bug.name << ": checker output diverged from " << path;
  }
}

}  // namespace
}  // namespace psa::checker
