// SARIF 2.1.0 output validation: the emitted log must be well-formed JSON
// (checked with a minimal RFC 8259 parser below — the repo deliberately has
// no JSON dependency) and carry the required SARIF skeleton: version,
// tool.driver.name, rules, and one result per finding with ruleId, level,
// message and a physical location.
#include <gtest/gtest.h>

#include <cctype>
#include <optional>

#include "checker/checker.hpp"
#include "checker/sarif.hpp"
#include "corpus/corpus.hpp"

namespace psa::checker {
namespace {

// --- a minimal validating JSON parser --------------------------------------

struct JsonParser {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(
                                    text[pos]))) {
      ++pos;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool parse_string() {
    skip_ws();
    if (pos >= text.size() || text[pos] != '"') return false;
    ++pos;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') {
        ++pos;
        if (pos >= text.size()) return false;
        const char e = text[pos];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos;
            if (pos >= text.size() ||
                !std::isxdigit(static_cast<unsigned char>(text[pos]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(text[pos]) < 0x20) {
        return false;  // raw control character: invalid JSON
      }
      ++pos;
    }
    return eat('"');
  }
  bool parse_number() {
    skip_ws();
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    return pos > start;
  }
  bool parse_value() {  // NOLINT(misc-no-recursion)
    skip_ws();
    if (pos >= text.size()) return false;
    const char c = text[pos];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string();
    if (text.substr(pos, 4) == "true") { pos += 4; return true; }
    if (text.substr(pos, 5) == "false") { pos += 5; return true; }
    if (text.substr(pos, 4) == "null") { pos += 4; return true; }
    return parse_number();
  }
  bool parse_object() {  // NOLINT(misc-no-recursion)
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    do {
      if (!parse_string() || !eat(':') || !parse_value()) return false;
    } while (eat(','));
    return eat('}');
  }
  bool parse_array() {  // NOLINT(misc-no-recursion)
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    do {
      if (!parse_value()) return false;
    } while (eat(','));
    return eat(']');
  }
  bool parse_document() {
    const bool ok = parse_value();
    skip_ws();
    return ok && pos == text.size();
  }
};

std::vector<Finding> findings_for(std::string_view program_name) {
  const corpus::BuggyProgram* bug = corpus::find_buggy_program(program_name);
  EXPECT_NE(bug, nullptr);
  const auto program = analysis::prepare(bug->source);
  analysis::Options options;
  options.level = rsg::AnalysisLevel::kL2;
  options.types = &program.unit.types;
  const auto result = analysis::analyze_program(program, options);
  return run_checkers(program, result);
}

TEST(SarifOutput, IsWellFormedJson) {
  const auto findings = findings_for("bug_double_free");
  ASSERT_FALSE(findings.empty());
  const std::string sarif = to_sarif(findings);
  JsonParser parser{sarif};
  EXPECT_TRUE(parser.parse_document()) << "invalid JSON near offset "
                                       << parser.pos << ":\n"
                                       << sarif;
}

TEST(SarifOutput, CompactModeIsAlsoWellFormed) {
  const auto findings = findings_for("bug_uaf_traversal");
  SarifOptions options;
  options.pretty = false;
  const std::string sarif = to_sarif(findings, options);
  JsonParser parser{sarif};
  EXPECT_TRUE(parser.parse_document());
  EXPECT_EQ(sarif.find('\n'), sarif.size() - 1);  // single line + newline
}

TEST(SarifOutput, CarriesTheSarifSkeleton) {
  const auto findings = findings_for("bug_double_free");
  const std::string sarif = to_sarif(findings);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("json.schemastore.org/sarif-2.1.0.json"),
            std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"psa\""), std::string::npos);
  EXPECT_NE(sarif.find("\"rules\""), std::string::npos);
  EXPECT_NE(sarif.find("\"results\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"PSA-DOUBLE-FREE\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\""), std::string::npos);
  EXPECT_NE(sarif.find("\"codeFlows\""), std::string::npos);
}

TEST(SarifOutput, ArtifactUriIsConfigurable) {
  const auto findings = findings_for("bug_lost_head");
  SarifOptions options;
  options.artifact_uri = "src/lost_head.c";
  const std::string sarif = to_sarif(findings, options);
  EXPECT_NE(sarif.find("\"uri\": \"src/lost_head.c\""), std::string::npos);
}

TEST(SarifOutput, EmptyFindingsYieldEmptyResultsArray) {
  const std::string sarif = to_sarif({});
  JsonParser parser{sarif};
  EXPECT_TRUE(parser.parse_document());
  EXPECT_NE(sarif.find("\"results\": []"), std::string::npos);
}

TEST(SarifOutput, EscapesSpecialCharactersInMessages) {
  std::vector<Finding> findings(1);
  findings[0].kind = CheckKind::kLeak;
  findings[0].severity = CheckSeverity::kWarning;
  findings[0].loc = {3, 1};
  findings[0].message = "quote \" backslash \\ newline \n tab \t done";
  findings[0].stmt = "x = y";
  const std::string sarif = to_sarif(findings);
  JsonParser parser{sarif};
  EXPECT_TRUE(parser.parse_document()) << sarif;
  EXPECT_NE(sarif.find("quote \\\" backslash \\\\ newline \\n tab \\t done"),
            std::string::npos);
}

}  // namespace
}  // namespace psa::checker
