// SARIF 2.1.0 output validation: the emitted log must be well-formed JSON
// (checked with the minimal RFC 8259 parser in tests/testing/json.hpp — the
// repo deliberately has no JSON dependency) and carry the required SARIF
// skeleton: version, tool.driver.name, rules, and one result per finding
// with ruleId, level, message and a physical location.
#include <gtest/gtest.h>

#include "checker/checker.hpp"
#include "checker/sarif.hpp"
#include "corpus/corpus.hpp"
#include "testing/json.hpp"

namespace psa::checker {
namespace {

std::vector<Finding> findings_for(std::string_view program_name) {
  const corpus::BuggyProgram* bug = corpus::find_buggy_program(program_name);
  EXPECT_NE(bug, nullptr);
  const auto program = analysis::prepare(bug->source);
  analysis::Options options;
  options.level = rsg::AnalysisLevel::kL2;
  options.types = &program.unit.types;
  const auto result = analysis::analyze_program(program, options);
  return run_checkers(program, result);
}

TEST(SarifOutput, IsWellFormedJson) {
  const auto findings = findings_for("bug_double_free");
  ASSERT_FALSE(findings.empty());
  const std::string sarif = to_sarif(findings);
  testing::JsonParser parser{sarif};
  EXPECT_TRUE(parser.parse_document()) << "invalid JSON near offset "
                                       << parser.pos << ":\n"
                                       << sarif;
}

TEST(SarifOutput, CompactModeIsAlsoWellFormed) {
  const auto findings = findings_for("bug_uaf_traversal");
  SarifOptions options;
  options.pretty = false;
  const std::string sarif = to_sarif(findings, options);
  testing::JsonParser parser{sarif};
  EXPECT_TRUE(parser.parse_document());
  EXPECT_EQ(sarif.find('\n'), sarif.size() - 1);  // single line + newline
}

TEST(SarifOutput, CarriesTheSarifSkeleton) {
  const auto findings = findings_for("bug_double_free");
  const std::string sarif = to_sarif(findings);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("json.schemastore.org/sarif-2.1.0.json"),
            std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"psa\""), std::string::npos);
  EXPECT_NE(sarif.find("\"rules\""), std::string::npos);
  EXPECT_NE(sarif.find("\"results\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"PSA-DOUBLE-FREE\""), std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\""), std::string::npos);
  EXPECT_NE(sarif.find("\"codeFlows\""), std::string::npos);
}

TEST(SarifOutput, ArtifactUriIsConfigurable) {
  const auto findings = findings_for("bug_lost_head");
  SarifOptions options;
  options.artifact_uri = "src/lost_head.c";
  const std::string sarif = to_sarif(findings, options);
  EXPECT_NE(sarif.find("\"uri\": \"src/lost_head.c\""), std::string::npos);
}

TEST(SarifOutput, EmptyFindingsYieldEmptyResultsArray) {
  const std::string sarif = to_sarif({});
  testing::JsonParser parser{sarif};
  EXPECT_TRUE(parser.parse_document());
  EXPECT_NE(sarif.find("\"results\": []"), std::string::npos);
}

TEST(SarifOutput, EscapesSpecialCharactersInMessages) {
  std::vector<Finding> findings(1);
  findings[0].kind = CheckKind::kLeak;
  findings[0].severity = CheckSeverity::kWarning;
  findings[0].loc = {3, 1};
  findings[0].message = "quote \" backslash \\ newline \n tab \t done";
  findings[0].stmt = "x = y";
  const std::string sarif = to_sarif(findings);
  testing::JsonParser parser{sarif};
  EXPECT_TRUE(parser.parse_document()) << sarif;
  EXPECT_NE(sarif.find("quote \\\" backslash \\\\ newline \\n tab \\t done"),
            std::string::npos);
}

}  // namespace
}  // namespace psa::checker
