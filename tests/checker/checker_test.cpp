// Behavioral tests of the memory-safety checkers: each defect class on a
// minimal program, assume-edge sensitivity, severity policy, options
// toggles, and the clean-corpus zero-false-positive guarantees.
#include <gtest/gtest.h>

#include "checker/checker.hpp"
#include "checker/sarif.hpp"
#include "corpus/corpus.hpp"

namespace psa::checker {
namespace {

using analysis::ProgramAnalysis;
using rsg::AnalysisLevel;

struct CheckRun {
  ProgramAnalysis program;
  analysis::AnalysisResult result;
  std::vector<Finding> findings;
};

CheckRun run_check(std::string_view source,
                   AnalysisLevel level = AnalysisLevel::kL2,
                   analysis::Options base = {}, CheckOptions checks = {}) {
  CheckRun out{analysis::prepare(source), {}, {}};
  base.level = level;
  base.types = &out.program.unit.types;
  out.result = analysis::analyze_program(out.program, base);
  out.findings = run_checkers(out.program, out.result, checks);
  return out;
}

std::vector<const Finding*> of_kind(const std::vector<Finding>& findings,
                                    CheckKind kind) {
  std::vector<const Finding*> out;
  for (const Finding& f : findings)
    if (f.kind == kind) out.push_back(&f);
  return out;
}

// --- NULL dereference ------------------------------------------------------

TEST(NullDerefCheck, UnguardedDerefOfMaybeNullIsReported) {
  const auto run = run_check(R"(
struct node { struct node *nxt; int v; };
void main() {
  struct node *p;
  int c;
  p = NULL; c = 0;
  if (c > 0) {
    p = malloc(sizeof(struct node));
  }
  p->nxt = NULL;
}
)");
  const auto findings = of_kind(run.findings, CheckKind::kNullDeref);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0]->loc.line, 10u);
  EXPECT_EQ(findings[0]->severity, CheckSeverity::kWarning);
  EXPECT_LT(findings[0]->graphs_bad, findings[0]->graphs_total);
}

TEST(NullDerefCheck, AssumeNotNullRefinementSuppressesFinding) {
  // The same maybe-NULL pointer, dereferenced only under its NULL test:
  // the assume(p != NULL) arm filters the unbound configuration, so the
  // incoming state at the dereference has no NULL member.
  const auto run = run_check(R"(
struct node { struct node *nxt; int v; };
void main() {
  struct node *p;
  int c;
  p = NULL; c = 0;
  if (c > 0) {
    p = malloc(sizeof(struct node));
  }
  if (p != NULL) {
    p->nxt = NULL;
  }
}
)");
  EXPECT_TRUE(of_kind(run.findings, CheckKind::kNullDeref).empty());
}

TEST(NullDerefCheck, DefiniteNullDerefIsError) {
  const auto run = run_check(R"(
struct node { struct node *nxt; int v; };
void main() {
  struct node *p;
  p = NULL;
  p->nxt = NULL;
}
)");
  const auto findings = of_kind(run.findings, CheckKind::kNullDeref);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0]->severity, CheckSeverity::kError);
  EXPECT_EQ(findings[0]->graphs_bad, findings[0]->graphs_total);
}

// --- use-after-free / double-free -----------------------------------------

TEST(UafCheck, DerefAfterFreeIsReportedWithFreedWitness) {
  const auto run = run_check(R"(
struct node { struct node *nxt; int v; };
void main() {
  struct node *p;
  p = malloc(sizeof(struct node));
  p->nxt = NULL;
  free(p);
  p->nxt = NULL;
}
)");
  const auto findings = of_kind(run.findings, CheckKind::kUseAfterFree);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0]->loc.line, 8u);
  EXPECT_EQ(findings[0]->severity, CheckSeverity::kError);
  EXPECT_NE(findings[0]->witness_node.find("FREED"), std::string::npos);
}

TEST(UafCheck, UseThroughAliasOfFreedCellIsReported) {
  const auto run = run_check(R"(
struct node { struct node *nxt; int v; };
void main() {
  struct node *p; struct node *q;
  p = malloc(sizeof(struct node));
  p->nxt = NULL;
  q = p;
  free(p);
  q->nxt = NULL;
}
)");
  const auto findings = of_kind(run.findings, CheckKind::kUseAfterFree);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0]->loc.line, 9u);
}

TEST(UafCheck, DoubleFreeIsReported) {
  const auto run = run_check(R"(
struct node { struct node *nxt; int v; };
void main() {
  struct node *p;
  p = malloc(sizeof(struct node));
  free(p);
  free(p);
}
)");
  const auto findings = of_kind(run.findings, CheckKind::kDoubleFree);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0]->loc.line, 7u);
  EXPECT_EQ(findings[0]->severity, CheckSeverity::kError);
}

TEST(UafCheck, FreeThenMallocReuseOfPvarIsClean) {
  const auto run = run_check(R"(
struct node { struct node *nxt; int v; };
void main() {
  struct node *p;
  p = malloc(sizeof(struct node));
  free(p);
  p = malloc(sizeof(struct node));
  p->nxt = NULL;
  free(p);
}
)");
  EXPECT_TRUE(of_kind(run.findings, CheckKind::kUseAfterFree).empty());
  EXPECT_TRUE(of_kind(run.findings, CheckKind::kDoubleFree).empty());
}

// --- leaks -----------------------------------------------------------------

TEST(LeakCheck, OverwritingLastReferenceIsReported) {
  const auto run = run_check(R"(
struct node { struct node *nxt; int v; };
void main() {
  struct node *p;
  p = malloc(sizeof(struct node));
  p = NULL;
}
)");
  const auto findings = of_kind(run.findings, CheckKind::kLeak);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0]->loc.line, 6u);
  // The message names the allocation site.
  EXPECT_NE(findings[0]->message.find("line 5"), std::string::npos);
}

TEST(LeakCheck, KillWithSurvivingAliasIsClean) {
  const auto run = run_check(R"(
struct node { struct node *nxt; int v; };
void main() {
  struct node *p; struct node *q;
  p = malloc(sizeof(struct node));
  q = p;
  p = NULL;
}
)");
  EXPECT_TRUE(of_kind(run.findings, CheckKind::kLeak).empty());
}

TEST(LeakCheck, KillOfFreedCellIsNotALeak) {
  const auto run = run_check(R"(
struct node { struct node *nxt; int v; };
void main() {
  struct node *p;
  p = malloc(sizeof(struct node));
  free(p);
  p = NULL;
}
)");
  EXPECT_TRUE(of_kind(run.findings, CheckKind::kLeak).empty());
  EXPECT_TRUE(of_kind(run.findings, CheckKind::kLeakAtExit).empty());
}

TEST(LeakCheck, SelectorOverwriteLosingCellIsReported) {
  const auto run = run_check(R"(
struct node { struct node *nxt; int v; };
void main() {
  struct node *a; struct node *b;
  a = malloc(sizeof(struct node));
  b = malloc(sizeof(struct node));
  a->nxt = b;
  b->nxt = NULL;
  b = NULL;
  a->nxt = NULL;
}
)");
  const auto findings = of_kind(run.findings, CheckKind::kLeak);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0]->loc.line, 10u);
}

TEST(LeakCheck, LiveAllocationAtExitIsNoted) {
  const auto run = run_check(R"(
struct node { struct node *nxt; int v; };
void main() {
  struct node *p;
  p = malloc(sizeof(struct node));
  p->nxt = NULL;
}
)");
  const auto findings = of_kind(run.findings, CheckKind::kLeakAtExit);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0]->severity, CheckSeverity::kNote);
  EXPECT_EQ(findings[0]->loc.line, 5u);  // reported at the malloc site
}

// --- witness traces --------------------------------------------------------

TEST(WitnessTrace, TraceEndsAtTheOffendingStatement) {
  const auto run = run_check(R"(
struct node { struct node *nxt; int v; };
void main() {
  struct node *p;
  p = malloc(sizeof(struct node));
  free(p);
  p->nxt = NULL;
}
)");
  const auto findings = of_kind(run.findings, CheckKind::kUseAfterFree);
  ASSERT_EQ(findings.size(), 1u);
  const auto& trace = findings[0]->trace;
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.back().loc.line, 7u);
  // The free that set up the defect is on the path.
  bool saw_free = false;
  for (const auto& step : trace) saw_free |= step.text == "free(p)";
  EXPECT_TRUE(saw_free);
}

TEST(WitnessTrace, TracesCanBeDisabled) {
  CheckOptions checks;
  checks.witness_traces = false;
  const auto run = run_check(R"(
struct node { struct node *nxt; int v; };
void main() {
  struct node *p;
  p = malloc(sizeof(struct node));
  free(p);
  p->nxt = NULL;
}
)",
                             AnalysisLevel::kL2, {}, checks);
  for (const Finding& f : run.findings) EXPECT_TRUE(f.trace.empty());
}

// --- options toggles -------------------------------------------------------

TEST(CheckOptionsTest, DisabledCheckersStaySilent) {
  const std::string_view source = R"(
struct node { struct node *nxt; int v; };
void main() {
  struct node *p;
  p = malloc(sizeof(struct node));
  free(p);
  p->nxt = NULL;
  p = NULL;
}
)";
  CheckOptions off;
  off.null_deref = false;
  off.use_after_free = false;
  off.leaks = false;
  off.exit_leaks = false;
  const auto run = run_check(source, AnalysisLevel::kL2, {}, off);
  EXPECT_TRUE(run.findings.empty());
}

// --- formatting ------------------------------------------------------------

TEST(FormatFindings, RendersRuleSeverityAndPath) {
  const auto run = run_check(R"(
struct node { struct node *nxt; int v; };
void main() {
  struct node *p;
  p = malloc(sizeof(struct node));
  free(p);
  free(p);
}
)");
  const std::string text = format_findings(run.findings, run.program);
  EXPECT_NE(text.find("[PSA-DOUBLE-FREE]"), std::string::npos);
  EXPECT_NE(text.find("error"), std::string::npos);
  EXPECT_NE(text.find("witness node:"), std::string::npos);
  EXPECT_NE(text.find("path:"), std::string::npos);
}

TEST(FormatFindings, EmptyFindingsSayNoFindings) {
  const std::vector<Finding> none;
  const auto run = run_check("struct node { struct node *nxt; };\nvoid main() { struct node *p; p = NULL; }");
  EXPECT_NE(format_findings(none, run.program).find("no findings"),
            std::string::npos);
}

// --- corpus-level guarantees ----------------------------------------------

TEST(BuggyCorpus, EverySeededDefectIsCaughtAtItsInjectionLineAtL3) {
  for (const corpus::BuggyProgram& bug : corpus::buggy_programs()) {
    const auto run =
        run_check(bug.source, AnalysisLevel::kL3);
    bool caught = false;
    for (const Finding& f : run.findings) {
      caught |= rule_id(f.kind) == bug.expected_rule &&
                f.loc.line == bug.defect_line;
    }
    EXPECT_TRUE(caught) << bug.name << ": seeded " << bug.expected_rule
                        << " at line " << bug.defect_line << " not reported";
  }
}

TEST(CleanCorpus, NoUafOrDoubleFreeFalsePositivesAtL3) {
  // The clean corpus includes two programs that free memory correctly
  // (queue drains with free; dll_delete frees an unlinked cell): the FREED
  // tracking must not flag either, nor any free-less program.
  for (const auto& prepared : corpus::prepare_all()) {
    ASSERT_TRUE(prepared.ok()) << prepared.program->name;
    // Skip the four big Table-1 codes: minutes of L3 runtime, and the
    // integration suites already cover their analysis. The free()-using
    // programs all stay.
    if (prepared.program->in_table1) continue;
    analysis::Options options;
    options.level = AnalysisLevel::kL3;
    options.types = &prepared.analysis->unit.types;
    const auto result = analysis::analyze_program(*prepared.analysis, options);
    const auto findings = run_checkers(*prepared.analysis, result);
    EXPECT_EQ(count_findings(findings, CheckKind::kUseAfterFree), 0u)
        << prepared.program->name;
    EXPECT_EQ(count_findings(findings, CheckKind::kDoubleFree), 0u)
        << prepared.program->name;
  }
}

TEST(CheckerOnPartialResults, HardFailedRunStillChecksAnalyzedPrefix) {
  // A hard-failed analysis leaves some per-node states empty; the checker
  // must skip those without crashing and still report from the rest.
  const corpus::BuggyProgram* bug =
      corpus::find_buggy_program("bug_double_free");
  ASSERT_NE(bug, nullptr);
  analysis::Options options;
  options.level = AnalysisLevel::kL1;
  options.max_node_visits = 4;  // trip almost immediately
  options.budget_policy = analysis::BudgetPolicy::kHardFail;
  const auto program = analysis::prepare(bug->source);
  const auto result = analysis::analyze_program(program, options);
  ASSERT_FALSE(result.converged());
  const auto findings = run_checkers(program, result);  // must not crash
  (void)findings;
}

// --- Salvage-mode confidence taint ----------------------------------------

CheckRun run_check_salvage(std::string_view source) {
  analysis::FrontendOptions frontend;
  frontend.salvage = true;
  CheckRun out{analysis::prepare(source, "main", frontend), {}, {}};
  analysis::Options base;
  base.level = AnalysisLevel::kL2;
  base.types = &out.program.unit.types;
  out.result = analysis::analyze_program(out.program, base);
  out.findings = run_checkers(out.program, out.result);
  return out;
}

TEST(SalvageTaint, FindingWithOnlyTaintedWitnessesIsDegradedNotDropped) {
  // The deref of p follows a havoc of p: every configuration that witnesses
  // the null dereference crossed havocked state, so the finding is reported
  // at degraded confidence — downgraded, never dropped.
  const auto run = run_check_salvage(R"(
struct node { struct node *nxt; int v; };
void main() {
  struct node *p;
  p = malloc(sizeof(struct node));
  p = (struct packet *)p;
  p->nxt = NULL;
}
)");
  const auto nulls = of_kind(run.findings, CheckKind::kNullDeref);
  ASSERT_EQ(nulls.size(), 1u);
  EXPECT_TRUE(nulls[0]->degraded);
  EXPECT_LE(nulls[0]->severity, CheckSeverity::kWarning);
  EXPECT_NE(nulls[0]->message.find("possible (degraded frontend)"),
            std::string::npos);
}

TEST(SalvageTaint, CleanWitnessKeepsFullConfidenceInAPartialUnit) {
  // Taint is per-witness, not unit-wide: a skipped sibling declaration does
  // not degrade findings whose witnesses never touch havocked state.
  const auto run = run_check_salvage(R"(
struct node { struct node *nxt; int v; };
void broken() { x = ; }
void main() {
  struct node *p;
  int c;
  p = NULL; c = 0;
  if (c > 0) {
    p = malloc(sizeof(struct node));
  }
  p->nxt = NULL;
}
)");
  EXPECT_EQ(run.program.salvage.skipped_decls, 1u);
  const auto nulls = of_kind(run.findings, CheckKind::kNullDeref);
  ASSERT_EQ(nulls.size(), 1u);
  EXPECT_FALSE(nulls[0]->degraded);
  EXPECT_EQ(nulls[0]->message.find("possible (degraded frontend)"),
            std::string::npos);
}

TEST(SalvageTaint, DegradedFindingCarriesSarifConfidenceProperties) {
  const auto run = run_check_salvage(R"(
struct node { struct node *nxt; int v; };
void main() {
  struct node *p;
  p = malloc(sizeof(struct node));
  p = (struct packet *)p;
  p->nxt = NULL;
}
)");
  const std::string sarif = to_sarif(run.findings);
  EXPECT_NE(sarif.find("\"degradedFrontend\""), std::string::npos);
  EXPECT_NE(sarif.find("\"confidence\""), std::string::npos);
}

}  // namespace
}  // namespace psa::checker
