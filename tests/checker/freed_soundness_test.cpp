// FREED-bit soundness fault injection (the governor_test pattern applied to
// the memory-safety checkers): run the buggy and free()-using corpus
// programs concretely, record every line where an execution really
// dereferenced freed memory, re-freed it, or dereferenced NULL — then
// demand the checker reports each such line, at every analysis level AND
// under every governor degradation rung (tiny memory budgets force
// widen/force-join/summarize; forced merges must widen FreeState to
// kMaybeFreed, never back to kLive, so no concrete event may escape).
#include <gtest/gtest.h>

#include <set>

#include "checker/checker.hpp"
#include "corpus/corpus.hpp"
#include "testing/concrete_oracle.hpp"

namespace psa::checker {
namespace {

using analysis::ProgramAnalysis;
using rsg::AnalysisLevel;

struct ConcreteEvents {
  std::set<std::uint32_t> null_deref;
  std::set<std::uint32_t> uaf;
  std::set<std::uint32_t> double_free;
};

ConcreteEvents sweep_concrete(const ProgramAnalysis& program, unsigned seeds) {
  ConcreteEvents events;
  for (unsigned seed = 0; seed < seeds; ++seed) {
    const auto outcome = oracle::run_concrete(program, seed);
    events.null_deref.insert(outcome.null_deref_lines.begin(),
                             outcome.null_deref_lines.end());
    events.uaf.insert(outcome.uaf_lines.begin(), outcome.uaf_lines.end());
    events.double_free.insert(outcome.double_free_lines.begin(),
                              outcome.double_free_lines.end());
  }
  return events;
}

std::set<std::uint32_t> reported_lines(const std::vector<Finding>& findings,
                                       CheckKind kind) {
  std::set<std::uint32_t> lines;
  for (const Finding& f : findings)
    if (f.kind == kind) lines.insert(f.loc.line);
  return lines;
}

/// Every concretely-observed defect line must carry the matching finding.
void expect_covers_events(std::string_view label,
                          const ConcreteEvents& events,
                          const std::vector<Finding>& findings) {
  const auto null_lines = reported_lines(findings, CheckKind::kNullDeref);
  const auto uaf_lines = reported_lines(findings, CheckKind::kUseAfterFree);
  const auto df_lines = reported_lines(findings, CheckKind::kDoubleFree);
  for (const std::uint32_t line : events.null_deref) {
    EXPECT_TRUE(null_lines.contains(line))
        << label << ": concrete NULL dereference at line " << line
        << " not reported (UNSOUND)";
  }
  for (const std::uint32_t line : events.uaf) {
    EXPECT_TRUE(uaf_lines.contains(line))
        << label << ": concrete use-after-free at line " << line
        << " not reported (UNSOUND)";
  }
  for (const std::uint32_t line : events.double_free) {
    EXPECT_TRUE(df_lines.contains(line))
        << label << ": concrete double free at line " << line
        << " not reported (UNSOUND)";
  }
}

/// The analysis configurations under test: the three levels converged, plus
/// degraded runs at every rung of the governor ladder (shrinking memory
/// budgets; kDegrade keeps the run alive and coarsens the states).
std::vector<std::pair<std::string, analysis::Options>> configurations() {
  std::vector<std::pair<std::string, analysis::Options>> out;
  for (const int level : {1, 2, 3}) {
    analysis::Options options;
    options.level = static_cast<AnalysisLevel>(level);
    out.emplace_back("L" + std::to_string(level), options);
  }
  for (const std::size_t budget : {200'000u, 60'000u, 20'000u}) {
    analysis::Options options;
    options.level = AnalysisLevel::kL2;
    options.memory_budget_bytes = budget;
    options.budget_policy = analysis::BudgetPolicy::kDegrade;
    out.emplace_back("L2/degraded-" + std::to_string(budget), options);
  }
  return out;
}

void run_soundness(std::string_view source, std::string_view name) {
  const ProgramAnalysis program = analysis::prepare(source);
  const ConcreteEvents events = sweep_concrete(program, 64);

  for (auto& [label, options] : configurations()) {
    options.types = &program.unit.types;
    const auto result = analysis::analyze_program(program, options);
    // Degraded runs must still have converged (that is the governor's
    // contract under kDegrade); hard failures would void the coverage claim.
    ASSERT_TRUE(result.converged())
        << name << "/" << label << ": " << analysis::to_string(result.status);
    const auto findings = run_checkers(program, result);
    expect_covers_events(std::string(name) + "/" + label, events, findings);
  }
}

TEST(FreedSoundness, BuggyCorpusEventsAreCoveredAtAllLevelsAndDegraded) {
  for (const corpus::BuggyProgram& bug : corpus::buggy_programs()) {
    run_soundness(bug.source, bug.name);
  }
}

TEST(FreedSoundness, CleanFreeingProgramsHaveNoConcreteEvents) {
  // queue and dll_delete free correctly: the concrete sweep itself must
  // observe no misuse (guards the test corpus, not the analysis).
  for (const std::string_view name : {"queue", "dll_delete"}) {
    const corpus::CorpusProgram* p = corpus::find_program(name);
    ASSERT_NE(p, nullptr);
    const ProgramAnalysis program = analysis::prepare(p->source);
    const ConcreteEvents events = sweep_concrete(program, 32);
    EXPECT_TRUE(events.uaf.empty()) << name;
    EXPECT_TRUE(events.double_free.empty()) << name;
    EXPECT_TRUE(events.null_deref.empty()) << name;
  }
}

TEST(FreedSoundness, ForcedMergeWidensFreeStateNotDrops) {
  // Direct domain check: merging a freed and a live node must yield
  // kMaybeFreed (never kLive) — the property the coverage above rests on.
  using rsg::FreeState;
  EXPECT_EQ(rsg::merge_free_states(FreeState::kFreed, FreeState::kLive),
            FreeState::kMaybeFreed);
  EXPECT_EQ(rsg::merge_free_states(FreeState::kLive, FreeState::kFreed),
            FreeState::kMaybeFreed);
  EXPECT_EQ(rsg::merge_free_states(FreeState::kFreed, FreeState::kFreed),
            FreeState::kFreed);
  EXPECT_EQ(rsg::merge_free_states(FreeState::kMaybeFreed, FreeState::kLive),
            FreeState::kMaybeFreed);
  EXPECT_TRUE(rsg::may_be_freed(FreeState::kMaybeFreed));
  EXPECT_TRUE(rsg::may_be_freed(FreeState::kFreed));
  EXPECT_FALSE(rsg::may_be_freed(FreeState::kLive));
}

}  // namespace
}  // namespace psa::checker
