// Integration: the destructive-update corpus programs (queue, DLL deletion,
// list merge, tree mirroring) — the operations §1 motivates ("generated,
// traversed, and modified").
#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "client/parallelism.hpp"
#include "client/queries.hpp"
#include "corpus/corpus.hpp"

namespace psa {
namespace {

using analysis::AnalysisResult;
using analysis::prepare;
using analysis::ProgramAnalysis;
using rsg::kNoNode;
using rsg::Rsg;

struct RunResult {
  ProgramAnalysis program;
  AnalysisResult result;

  const analysis::Rsrsg& exit_set() const { return result.at_exit(program.cfg); }
};

RunResult run(std::string_view name,
              rsg::AnalysisLevel level = rsg::AnalysisLevel::kL2) {
  RunResult r;
  r.program = prepare(corpus::find_program(name)->source);
  analysis::Options options;
  options.level = level;
  r.result = analysis::analyze_program(r.program, options);
  EXPECT_TRUE(r.result.converged()) << name;
  EXPECT_FALSE(r.exit_set().empty()) << name;
  return r;
}

TEST(QueueTest, FullyDrainedAtExit) {
  const RunResult r = run("queue");
  // The dequeue loop runs to head == NULL on every path.
  for (const Rsg& g : r.exit_set().graphs()) {
    EXPECT_EQ(g.pvar_target(r.program.symbol("head")), kNoNode);
  }
}

TEST(QueueTest, NeverShared) {
  const RunResult r = run("queue");
  EXPECT_FALSE(client::may_be_shared(r.program, r.exit_set(), "qnode"));
  EXPECT_FALSE(
      client::may_be_shared_via(r.program, r.exit_set(), "qnode", "nxt"));
}

TEST(QueueTest, MidProgramHeadTailAliasRepresented) {
  // After the build loop (before dequeuing) head may alias tail (the
  // one-element queue) and may not (longer queues): both must be abstractly
  // represented somewhere in the build loop's exit state. Find the
  // touch-clear of the first loop and inspect its RSRSG.
  const RunResult r = run("queue");
  const auto head = r.program.symbol("head");
  const auto tail = r.program.symbol("tail");
  for (cfg::NodeId id = 0; id < r.program.cfg.size(); ++id) {
    if (r.program.cfg.node(id).stmt.op != cfg::SimpleOp::kTouchClear) continue;
    if (r.program.cfg.node(id).stmt.loop_id != 1) continue;
    const auto& set = r.result.per_node[id];
    bool alias = false;
    bool no_alias = false;
    for (const Rsg& g : set.graphs()) {
      const auto h = g.pvar_target(head);
      const auto t = g.pvar_target(tail);
      if (h == kNoNode || t == kNoNode) continue;
      (h == t ? alias : no_alias) = true;
    }
    EXPECT_TRUE(alias);
    EXPECT_TRUE(no_alias);
    return;
  }
  FAIL() << "touch-clear of the build loop not found";
}

TEST(DllDeleteTest, ListStaysWellFormed) {
  const RunResult r = run("dll_delete");
  EXPECT_FALSE(
      client::may_be_shared_via(r.program, r.exit_set(), "dnode", "nxt"));
  EXPECT_FALSE(
      client::may_be_shared_via(r.program, r.exit_set(), "dnode", "prv"));
  // The victim was detached and collected: every graph keeps head bound.
  for (const Rsg& g : r.exit_set().graphs()) {
    EXPECT_NE(g.pvar_target(r.program.symbol("head")), kNoNode);
  }
}

TEST(DllDeleteTest, CycleLinksSurviveTheDeletion) {
  const RunResult r = run("dll_delete");
  const rsg::SelPair nxt_prv{r.program.symbol("nxt"), r.program.symbol("prv")};
  bool found = false;
  for (const Rsg& g : r.exit_set().graphs()) {
    for (const auto n : g.node_refs()) {
      found |= g.props(n).cyclelinks.contains(nxt_prv);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ListMergeTest, MergedListUnshared) {
  const RunResult r = run("list_merge");
  EXPECT_FALSE(client::may_be_shared(r.program, r.exit_set(), "node"));
  EXPECT_FALSE(
      client::may_be_shared_via(r.program, r.exit_set(), "node", "nxt"));
}

TEST(ListMergeTest, OutputIsAList) {
  const RunResult r = run("list_merge");
  const auto kind = client::classify_structure(r.program, r.exit_set(), "out");
  EXPECT_TRUE(kind == client::StructureKind::kAcyclicList ||
              kind == client::StructureKind::kUnreachable)
      << client::to_string(kind);
}

TEST(ListMergeTest, SourceHeadsNeverAlias) {
  // The two source cursors never denote the same location. (Whole-region
  // disjointness of the residual lists is not provable here: JOIN may fuse
  // an a-middle of one configuration with a b-middle of another — the
  // paper's own cross-graph summarization — making the regions overlap
  // abstractly.)
  const RunResult r = run("list_merge");
  EXPECT_FALSE(client::paths_may_alias(r.program, r.exit_set(), "a", "b"));
}

TEST(TreeMirrorTest, RootSurvivesTheMirror) {
  // The mirroring loop rebinds lft/rgt of every node (with a transient
  // double reference during each swap). This code needs the widening, which
  // keeps the transient sharing conservatively — so the strong assertions
  // here are convergence, feasibility, and the root staying rooted.
  const RunResult r = run("tree_mirror");
  for (const Rsg& g : r.exit_set().graphs()) {
    EXPECT_NE(g.pvar_target(r.program.symbol("root")), kNoNode);
  }
  // The traversal stack fully drains.
  for (const Rsg& g : r.exit_set().graphs()) {
    EXPECT_EQ(g.pvar_target(r.program.symbol("S")), kNoNode);
  }
}

TEST(TreeMirrorTest, AllLevelsConverge) {
  for (const auto level : {rsg::AnalysisLevel::kL1, rsg::AnalysisLevel::kL2,
                           rsg::AnalysisLevel::kL3}) {
    const RunResult r = run("tree_mirror", level);
    EXPECT_TRUE(r.result.converged()) << rsg::to_string(level);
  }
}

TEST(Em3dTest, GenuineSharingIsDetected) {
  // The one intentionally-shared corpus structure: several E-nodes may
  // depend on the same H-node. A sound analysis must NOT prove the H-nodes
  // unshared.
  const RunResult r = run("em3d_like");
  EXPECT_TRUE(
      client::may_be_shared_via(r.program, r.exit_set(), "hnode", "dep"));
  EXPECT_TRUE(client::may_be_shared(r.program, r.exit_set(), "hnode"));
  // The E list itself stays a plain unshared list.
  EXPECT_FALSE(
      client::may_be_shared_via(r.program, r.exit_set(), "enode", "nxt"));
}

TEST(Em3dTest, RelaxationLoopReportedSerial) {
  // The update loop writes through e->dep, which may alias across
  // iterations: the detector must not claim it parallel.
  const RunResult r = run("em3d_like");
  const auto loops = client::detect_parallel_loops(r.program, r.result);
  bool found_serial_update = false;
  for (const auto& lp : loops) {
    for (const auto& sel : lp.written_selectors) {
      // The relaxation loop writes the scalar field 'val' through 'dep'.
      if (sel == "val" && !lp.parallelizable) found_serial_update = true;
    }
  }
  EXPECT_TRUE(found_serial_update)
      << client::format_report(loops);
}

TEST(Em3dTest, AllLevelsAgreeOnTheSharing) {
  // Sharing is real: no level may refine it away.
  for (const auto level : {rsg::AnalysisLevel::kL1, rsg::AnalysisLevel::kL2,
                           rsg::AnalysisLevel::kL3}) {
    const RunResult r = run("em3d_like", level);
    EXPECT_TRUE(
        client::may_be_shared_via(r.program, r.exit_set(), "hnode", "dep"))
        << rsg::to_string(level);
  }
}

}  // namespace
}  // namespace psa
