// Salvage-mode soundness regression (docs/RESILIENCE.md).
//
// The concrete interpreter executes each dirty-corpus unit — playing the
// adversary at every kHavoc site, within the documented salvage envelope —
// and the abstract exit RSRSG of the salvaged analysis must cover every
// completed concrete run. Checked at L1, L2 and L3, and under deterministic
// governor degradation (the havoc transfer and the widening ladder compose).
#include <gtest/gtest.h>

#include <string_view>

#include "analysis/analyzer.hpp"
#include "corpus/corpus.hpp"
#include "testing/concrete_oracle.hpp"

namespace psa {
namespace {

analysis::ProgramAnalysis prepare_salvaged(std::string_view source) {
  analysis::FrontendOptions frontend;
  frontend.salvage = true;
  return analysis::prepare(source, "main", frontend);
}

void check_level(const analysis::ProgramAnalysis& program,
                 rsg::AnalysisLevel level, unsigned seeds) {
  analysis::Options options;
  options.level = level;
  options.types = &program.unit.types;
  options.max_node_visits = 200'000;
  const auto result = analysis::analyze_program(program, options);
  ASSERT_TRUE(result.converged());
  EXPECT_GT(oracle::expect_covers_concrete(program,
                                           result.at_exit(program.cfg), seeds),
            0);
}

class SalvageSoundnessSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(SalvageSoundnessSweep, SalvagedAbstractionCoversConcreteAtL1) {
  const auto program =
      prepare_salvaged(corpus::find_dirty_program(GetParam())->source);
  ASSERT_TRUE(program.salvage.degraded());
  check_level(program, rsg::AnalysisLevel::kL1, 40);
}

TEST_P(SalvageSoundnessSweep, SalvagedAbstractionCoversConcreteAtL2) {
  const auto program =
      prepare_salvaged(corpus::find_dirty_program(GetParam())->source);
  check_level(program, rsg::AnalysisLevel::kL2, 40);
}

TEST_P(SalvageSoundnessSweep, SalvagedAbstractionCoversConcreteAtL3) {
  const auto program =
      prepare_salvaged(corpus::find_dirty_program(GetParam())->source);
  check_level(program, rsg::AnalysisLevel::kL3, 40);
}

TEST_P(SalvageSoundnessSweep, GovernorDegradedSalvagedRunStaysSound) {
  // Deterministic degradation: a one-visit budget forces the widening
  // ladder on top of the havoc transfer. The result must still converge
  // and still cover the concrete adversary.
  const auto program =
      prepare_salvaged(corpus::find_dirty_program(GetParam())->source);
  analysis::Options options;
  options.level = rsg::AnalysisLevel::kL2;
  options.types = &program.unit.types;
  options.max_node_visits = 1;
  const auto result = analysis::analyze_program(program, options);
  ASSERT_EQ(result.status, analysis::AnalysisStatus::kConverged);
  ASSERT_TRUE(result.degraded());
  EXPECT_GT(oracle::expect_covers_concrete(program,
                                           result.at_exit(program.cfg), 40),
            0);
}

INSTANTIATE_TEST_SUITE_P(DirtyCorpus, SalvageSoundnessSweep,
                         ::testing::Values("dirty_sll_trace",
                                           "dirty_tree_goto", "dirty_dll_dot",
                                           "dirty_reverse_cast"));

// The golden degradation counts of every dirty program (also asserted end
// to end by scripts/salvage_smoke.sh through the real binary).
TEST(SalvageSoundnessTest, DirtyCorpusGoldenDegradationCounts) {
  for (const corpus::DirtyProgram& p : corpus::dirty_programs()) {
    const auto program = prepare_salvaged(p.source);
    EXPECT_EQ(program.salvage.havoc_sites, p.expected_havoc_sites) << p.name;
    EXPECT_EQ(program.salvage.skipped_decls, p.expected_skipped_decls)
        << p.name;
    EXPECT_EQ(program.salvage.functions_analyzable,
              p.expected_functions_analyzable)
        << p.name;
    EXPECT_EQ(program.salvage.functions_total, p.expected_functions_total)
        << p.name;
    EXPECT_TRUE(program.salvage.degraded()) << p.name;
    EXPECT_FALSE(program.salvage.diagnostics.empty()) << p.name;
  }
}

// Strict mode must reject every dirty program — the salvage frontend never
// changes what the strict frontend accepts.
TEST(SalvageSoundnessTest, StrictFrontendRejectsEveryDirtyProgram) {
  for (const corpus::DirtyProgram& p : corpus::dirty_programs()) {
    EXPECT_THROW(analysis::prepare(p.source), analysis::FrontendError)
        << p.name;
  }
}

}  // namespace
}  // namespace psa
