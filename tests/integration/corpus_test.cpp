// Integration: every corpus program runs through the full pipeline.
#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "checker/checker.hpp"
#include "client/queries.hpp"
#include "corpus/corpus.hpp"
#include "support/metrics.hpp"

namespace psa {
namespace {

using analysis::AnalysisResult;
using analysis::prepare;
using analysis::ProgramAnalysis;

TEST(CorpusTest, RegistryIsPopulated) {
  const auto& all = corpus::all_programs();
  EXPECT_GE(all.size(), 10u);
  int table1 = 0;
  for (const auto& p : all) table1 += p.in_table1 ? 1 : 0;
  EXPECT_EQ(table1, 4);  // the paper's four codes
  EXPECT_EQ(corpus::find_program("no_such_program"), nullptr);
  EXPECT_EQ(corpus::sparse_matvec().name, "sparse_matvec");
  EXPECT_EQ(corpus::sparse_matmat().name, "sparse_matmat");
  EXPECT_EQ(corpus::sparse_lu().name, "sparse_lu");
  EXPECT_EQ(corpus::barnes_hut().name, "barnes_hut");
}

TEST(CorpusTest, EveryProgramPassesTheFrontend) {
  for (const auto& p : corpus::all_programs()) {
    EXPECT_NO_THROW({
      const auto program = prepare(p.source);
      EXPECT_GT(program.cfg.size(), 2u) << p.name;
      EXPECT_FALSE(program.cfg.pointer_vars().empty()) << p.name;
    }) << p.name;
  }
}

// Parameterized over the corpus: L1 analysis converges (or hits a declared
// guard rail for the heavy LU case) with a sound, non-empty final RSRSG.
class CorpusAnalysisTest
    : public ::testing::TestWithParam<const corpus::CorpusProgram*> {};

TEST_P(CorpusAnalysisTest, L1AnalysisProducesExitState) {
  const corpus::CorpusProgram& p = *GetParam();
  const auto program = prepare(p.source);
  analysis::Options options;
  options.max_node_visits = 200'000;
  if (p.name == "sparse_lu") {
    // The heaviest code of the paper's Table 1 (12'15'' and an OOM at L2/L3
    // on their machine): bound the budget tightly and only require the
    // guard rail to fire cleanly. kHardFail keeps the historical abort;
    // the degraded-convergence path is covered by governor_test.cpp.
    options.max_node_visits = 5'000;
    options.budget_policy = analysis::BudgetPolicy::kHardFail;
    const auto bounded = analysis::analyze_program(program, options);
    EXPECT_EQ(bounded.status, analysis::AnalysisStatus::kIterationLimit);
    return;
  }
  const auto result = analysis::analyze_program(program, options);
  EXPECT_TRUE(result.converged()) << analysis::to_string(result.status);
  EXPECT_FALSE(result.at_exit(program.cfg).empty());
}

std::vector<const corpus::CorpusProgram*> corpus_pointers() {
  std::vector<const corpus::CorpusProgram*> out;
  for (const auto& p : corpus::all_programs()) out.push_back(&p);
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, CorpusAnalysisTest, ::testing::ValuesIn(corpus_pointers()),
    [](const ::testing::TestParamInfo<const corpus::CorpusProgram*>& info) {
      return std::string(info.param->name);
    });

TEST(CorpusTest, SparseMatVecShapeFacts) {
  const auto program = prepare(corpus::sparse_matvec().source);
  const auto result = analysis::analyze_program(program, {});
  ASSERT_TRUE(result.converged());
  const auto& at_exit = result.at_exit(program.cfg);
  ASSERT_FALSE(at_exit.empty());
  // Rows, elements, and both vectors end up unshared: the analysis proves
  // the structures are what the code means them to be.
  EXPECT_FALSE(client::may_be_shared(program, at_exit, "row"));
  EXPECT_FALSE(client::may_be_shared(program, at_exit, "elem"));
  EXPECT_FALSE(client::may_be_shared(program, at_exit, "vec"));
}

TEST(CorpusTest, SparseMatMatShapeFacts) {
  const auto program = prepare(corpus::sparse_matmat().source);
  analysis::Options options;
  options.max_node_visits = 500'000;
  const auto result = analysis::analyze_program(program, options);
  ASSERT_TRUE(result.converged());
  const auto& at_exit = result.at_exit(program.cfg);
  ASSERT_FALSE(at_exit.empty());
  EXPECT_FALSE(client::may_be_shared_via(program, at_exit, "elem", "nxtc"));
}

TEST(CorpusTest, NaryTreeChildListsUnshared) {
  const auto program = prepare(corpus::find_program("nary_tree")->source);
  const auto result = analysis::analyze_program(program, {});
  ASSERT_TRUE(result.converged());
  const auto& at_exit = result.at_exit(program.cfg);
  EXPECT_FALSE(client::may_be_shared_via(program, at_exit, "cell", "child"));
  EXPECT_FALSE(client::may_be_shared_via(program, at_exit, "cell", "sib"));
}

TEST(CorpusTest, TwoListsRemainDistinguished) {
  const auto program = prepare(corpus::find_program("two_lists")->source);
  const auto result = analysis::analyze_program(program, {});
  ASSERT_TRUE(result.converged());
  const auto& at_exit = result.at_exit(program.cfg);
  // The reference-pattern property separates the two heads at every level.
  EXPECT_FALSE(client::paths_may_alias(program, at_exit, "h->la", "h->lb"));
}

TEST(CorpusTest, VisitMarksEveryNodeMarkedOnce) {
  const auto program = prepare(corpus::find_program("visit_marks")->source);
  for (const auto level : {rsg::AnalysisLevel::kL2, rsg::AnalysisLevel::kL3}) {
    analysis::Options options;
    options.level = level;
    const auto result = analysis::analyze_program(program, options);
    ASSERT_TRUE(result.converged());
    const auto& at_exit = result.at_exit(program.cfg);
    // Each list node is referenced by at most one marker.
    EXPECT_FALSE(client::may_be_shared_via(program, at_exit, "node", "ref"))
        << rsg::to_string(level);
  }
}

TEST(CorpusTest, ListPipelinePreparesWithoutDegradation) {
  // The interprocedural witness: three helpers plus main, all in the
  // analyzable subset — no salvage, no havoc sites, four lowered CFGs.
  const auto program = prepare(corpus::find_program("list_pipeline")->source);
  EXPECT_FALSE(program.salvage.degraded());
  EXPECT_EQ(program.salvage.havoc_sites, 0u);
  EXPECT_EQ(program.unit_cfgs.size(), 4u);
}

TEST(CorpusTest, ListPipelineSummarizesEveryCallAndStaysClean) {
  const auto program = prepare(corpus::find_program("list_pipeline")->source);
#if PSA_METRICS
  const support::MetricsRegion region;
#endif
  const auto result = analysis::analyze_program(program, {});
  ASSERT_TRUE(result.converged());
  EXPECT_FALSE(result.degraded());
#if PSA_METRICS
  // The burn-down: before summaries, each of the five call sites was a
  // whole-graph havoc; now every one is a summary application.
  const auto delta = region.delta();
  EXPECT_EQ(delta[support::Counter::kCallHavocFallback], 0u);
  EXPECT_GE(delta[support::Counter::kSummaryApplied], 5u);
  EXPECT_GE(delta[support::Counter::kSummaryComputed], 3u);
#endif
  // Golden findings: exactly one note. release() is summarized, so the
  // region widens to maybe-freed rather than freed — the summary cannot
  // prove the teardown freed *every* cell, and the checkers honestly report
  // the residue as a may-still-be-live note. Crucially it is a full-
  // confidence finding (degraded == false): summaries, unlike the old call
  // havoc, taint nothing.
  const auto findings = checker::run_checkers(program, result);
  ASSERT_EQ(findings.size(), 1u)
      << checker::format_findings(findings, program);
  EXPECT_EQ(findings[0].kind, checker::CheckKind::kLeakAtExit);
  EXPECT_FALSE(findings[0].degraded);
}

}  // namespace
}  // namespace psa
