// Soundness cross-validation against a concrete interpreter.
//
// The gold-standard check: execute programs on a *real* heap, observe the
// concrete final store, and require the abstract exit RSRSG to cover it.
// The interpreter and the coverage checks live in testing/concrete_oracle.hpp
// (shared with the governor fault-injection suite); this file runs the
// corpus-wide sweeps plus the region-overlap spot check.
#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "analysis/analyzer.hpp"
#include "client/queries.hpp"
#include "corpus/corpus.hpp"
#include "testing/concrete_oracle.hpp"

namespace psa {
namespace {

using analysis::prepare;
using oracle::ConcreteOutcome;
using oracle::run_concrete;

void check_program(std::string_view source, unsigned seeds,
                   rsg::AnalysisLevel level) {
  const auto program = prepare(source);
  analysis::Options options;
  options.level = level;
  options.max_node_visits = 200'000;
  const auto result = analysis::analyze_program(program, options);
  ASSERT_TRUE(result.converged());
  const auto& at_exit = result.at_exit(program.cfg);

  // The sweep must have exercised something.
  EXPECT_GT(oracle::expect_covers_concrete(program, at_exit, seeds), 0);
}

class ConcreteSoundnessSweep
    : public ::testing::TestWithParam<const char*> {};

TEST_P(ConcreteSoundnessSweep, AbstractCoversConcreteAtL2) {
  check_program(corpus::find_program(GetParam())->source, 60,
                rsg::AnalysisLevel::kL2);
}

TEST_P(ConcreteSoundnessSweep, AbstractCoversConcreteAtL1) {
  check_program(corpus::find_program(GetParam())->source, 30,
                rsg::AnalysisLevel::kL1);
}

INSTANTIATE_TEST_SUITE_P(Corpus, ConcreteSoundnessSweep,
                         ::testing::Values("sll", "dll", "list_reverse",
                                           "queue", "dll_delete", "list_merge",
                                           "two_lists", "visit_marks",
                                           "em3d_like", "barnes_hut_small"));

TEST(ConcreteSoundnessTest, RegionOverlapCovered) {
  // Concretely b reaches a's location (b = a): the analysis must admit it.
  const auto program = prepare(R"(
    struct node { struct node *nxt; };
    void main() {
      struct node *a; struct node *b;
      a = malloc(struct node);
      b = a;
    }
  )");
  const auto result = analysis::analyze_program(program, {});
  const ConcreteOutcome outcome = run_concrete(program, 1);
  ASSERT_TRUE(outcome.completed);
  ASSERT_EQ(outcome.heap.get(program.symbol("a")),
            outcome.heap.get(program.symbol("b")));
  EXPECT_TRUE(client::regions_may_overlap(program, result.at_exit(program.cfg),
                                          "a", "b"));
}

}  // namespace
}  // namespace psa
