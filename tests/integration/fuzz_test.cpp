// Randomized program sweeps: generate syntactically-valid pointer programs
// (random mixes of the six simple statements under random control flow) and
// check that the analysis always converges, produces well-formed RSGs at
// every statement, and is deterministic.
#include <gtest/gtest.h>

#include <string>

#include "analysis/analyzer.hpp"
#include "testing/invariants.hpp"
#include "testing/program_gen.hpp"

namespace psa {
namespace {

using analysis::prepare;
using psa::testing::generate_program;
using rsg::Rsg;

class FuzzSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(FuzzSweep, RandomProgramsConvergeWithWellFormedStates) {
  const std::string source = generate_program(GetParam());
  SCOPED_TRACE(source);
  const auto program = prepare(source);
  analysis::Options options;
  options.level = rsg::AnalysisLevel::kL2;
  options.max_node_visits = 200'000;
  const auto result = analysis::analyze_program(program, options);
  ASSERT_TRUE(result.converged()) << analysis::to_string(result.status);
  for (std::size_t i = 0; i < result.per_node.size(); ++i) {
    for (const Rsg& g : result.per_node[i].graphs()) {
      testing::verify_rsg_invariants(g, program.interner(),
                                     "seed" + std::to_string(GetParam()) +
                                         "/stmt" + std::to_string(i));
    }
  }
}

TEST_P(FuzzSweep, RandomProgramsAreDeterministic) {
  const std::string source = generate_program(GetParam() + 1000);
  SCOPED_TRACE(source);
  const auto program = prepare(source);
  analysis::Options options;
  options.max_node_visits = 200'000;
  const auto r1 = analysis::analyze_program(program, options);
  const auto r2 = analysis::analyze_program(program, options);
  ASSERT_EQ(r1.status, r2.status);
  for (std::size_t i = 0; i < r1.per_node.size(); ++i) {
    EXPECT_TRUE(r1.per_node[i].equals(r2.per_node[i])) << "stmt " << i;
  }
}

TEST_P(FuzzSweep, RandomProgramsConvergeAtEveryLevel) {
  const std::string source = generate_program(GetParam() + 2000);
  SCOPED_TRACE(source);
  const auto program = prepare(source);
  for (const auto level : {rsg::AnalysisLevel::kL1, rsg::AnalysisLevel::kL2,
                           rsg::AnalysisLevel::kL3}) {
    analysis::Options options;
    options.level = level;
    options.max_node_visits = 200'000;
    const auto result = analysis::analyze_program(program, options);
    EXPECT_TRUE(result.converged())
        << rsg::to_string(level) << ": " << analysis::to_string(result.status);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Range(0u, 20u));

}  // namespace
}  // namespace psa
