// Randomized program sweeps: generate syntactically-valid pointer programs
// (random mixes of the six simple statements under random control flow) and
// check that the analysis always converges, produces well-formed RSGs at
// every statement, and is deterministic.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "analysis/analyzer.hpp"
#include "testing/invariants.hpp"

namespace psa {
namespace {

using analysis::prepare;
using rsg::Rsg;

/// Generate a random program over one struct with two selectors and four
/// pvars. Statements may dereference possibly-NULL pointers — the abstract
/// semantics drops those configurations, which is part of what we test.
std::string generate_program(unsigned seed) {
  std::mt19937 rng(seed);
  std::ostringstream os;
  os << "struct node { struct node *s0; struct node *s1; int v; };\n";
  os << "void main() {\n";
  os << "  struct node *p0; struct node *p1; struct node *p2; "
        "struct node *p3;\n";
  os << "  int i; int n;\n";
  os << "  p0 = NULL; p1 = NULL; p2 = NULL; p3 = NULL; i = 0; n = 10;\n";

  auto pvar = [&] { return "p" + std::to_string(rng() % 4); };
  auto sel = [&] { return "s" + std::to_string(rng() % 2); };

  int depth = 0;
  int open_loops = 0;
  const int statements = 12 + static_cast<int>(rng() % 18);
  for (int k = 0; k < statements; ++k) {
    const std::string pad(static_cast<std::size_t>(2 * (depth + 1)), ' ');
    switch (rng() % 10) {
      case 0:
        os << pad << pvar() << " = NULL;\n";
        break;
      case 1:
      case 2:
        os << pad << pvar() << " = malloc(sizeof(struct node));\n";
        break;
      case 3:
        os << pad << pvar() << " = " << pvar() << ";\n";
        break;
      case 4:
      case 5: {
        const std::string x = pvar();
        const std::string y = pvar();
        os << pad << "if (" << y << " != NULL) { " << x << " = " << y << "->"
           << sel() << "; }\n";
        break;
      }
      case 6: {
        const std::string x = pvar();
        os << pad << "if (" << x << " != NULL) { " << x << "->" << sel()
           << " = " << pvar() << "; }\n";
        break;
      }
      case 7: {
        const std::string x = pvar();
        os << pad << "if (" << x << " != NULL) { " << x << "->" << sel()
           << " = NULL; }\n";
        break;
      }
      case 8:
        if (depth < 2) {
          os << pad << "while (i < n) {\n";
          ++depth;
          ++open_loops;
        }
        break;
      default:
        if (open_loops > 0) {
          --depth;
          --open_loops;
          os << std::string(static_cast<std::size_t>(2 * (depth + 1)), ' ')
             << "i = i + 1;\n"
             << std::string(static_cast<std::size_t>(2 * (depth + 1)), ' ')
             << "}\n";
        }
        break;
    }
  }
  while (open_loops > 0) {
    --depth;
    --open_loops;
    os << std::string(static_cast<std::size_t>(2 * (depth + 1)), ' ')
       << "}\n";
  }
  os << "}\n";
  return os.str();
}

class FuzzSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(FuzzSweep, RandomProgramsConvergeWithWellFormedStates) {
  const std::string source = generate_program(GetParam());
  SCOPED_TRACE(source);
  const auto program = prepare(source);
  analysis::Options options;
  options.level = rsg::AnalysisLevel::kL2;
  options.max_node_visits = 200'000;
  const auto result = analysis::analyze_program(program, options);
  ASSERT_TRUE(result.converged()) << analysis::to_string(result.status);
  for (std::size_t i = 0; i < result.per_node.size(); ++i) {
    for (const Rsg& g : result.per_node[i].graphs()) {
      testing::verify_rsg_invariants(g, program.interner(),
                                     "seed" + std::to_string(GetParam()) +
                                         "/stmt" + std::to_string(i));
    }
  }
}

TEST_P(FuzzSweep, RandomProgramsAreDeterministic) {
  const std::string source = generate_program(GetParam() + 1000);
  SCOPED_TRACE(source);
  const auto program = prepare(source);
  analysis::Options options;
  options.max_node_visits = 200'000;
  const auto r1 = analysis::analyze_program(program, options);
  const auto r2 = analysis::analyze_program(program, options);
  ASSERT_EQ(r1.status, r2.status);
  for (std::size_t i = 0; i < r1.per_node.size(); ++i) {
    EXPECT_TRUE(r1.per_node[i].equals(r2.per_node[i])) << "stmt " << i;
  }
}

TEST_P(FuzzSweep, RandomProgramsConvergeAtEveryLevel) {
  const std::string source = generate_program(GetParam() + 2000);
  SCOPED_TRACE(source);
  const auto program = prepare(source);
  for (const auto level : {rsg::AnalysisLevel::kL1, rsg::AnalysisLevel::kL2,
                           rsg::AnalysisLevel::kL3}) {
    analysis::Options options;
    options.level = level;
    options.max_node_visits = 200'000;
    const auto result = analysis::analyze_program(program, options);
    EXPECT_TRUE(result.converged())
        << rsg::to_string(level) << ": " << analysis::to_string(result.status);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Range(0u, 20u));

}  // namespace
}  // namespace psa
