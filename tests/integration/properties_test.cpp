// Property-based integration sweeps: structural invariants of every RSG the
// engine produces, across corpus programs x analysis levels.
#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "corpus/corpus.hpp"
#include "rsg/canon.hpp"
#include "testing/invariants.hpp"

namespace psa {
namespace {

using analysis::prepare;
using rsg::Cardinality;
using rsg::NodeRef;
using rsg::Rsg;

using psa::testing::verify_rsg_invariants;

struct SweepParam {
  const char* program;
  rsg::AnalysisLevel level;
};

class InvariantSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(InvariantSweep, EveryProducedRsgIsWellFormed) {
  const auto& [name, level] = GetParam();
  const auto program = prepare(corpus::find_program(name)->source);
  analysis::Options options;
  options.level = level;
  options.max_node_visits = 100'000;
  const auto result = analysis::analyze_program(program, options);
  ASSERT_TRUE(result.converged());
  for (std::size_t i = 0; i < result.per_node.size(); ++i) {
    for (const Rsg& g : result.per_node[i].graphs()) {
      verify_rsg_invariants(
          g, program.interner(),
          std::string(name) + "/" + std::string(rsg::to_string(level)) +
              "/stmt" + std::to_string(i));
    }
  }
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> out;
  for (const char* name : {"sll", "dll", "list_reverse", "nary_tree",
                           "two_lists", "visit_marks", "barnes_hut_small"}) {
    for (const auto level : {rsg::AnalysisLevel::kL1, rsg::AnalysisLevel::kL2,
                             rsg::AnalysisLevel::kL3}) {
      out.push_back({name, level});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    CorpusTimesLevels, InvariantSweep, ::testing::ValuesIn(sweep_params()),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::string(info.param.program) + "_" +
             std::string(rsg::to_string(info.param.level));
    });

// Fixpoint idempotence: re-running the engine on the same input produces
// isomorphic per-statement RSRSGs (the equality oracle is sound in both
// directions across runs).
class IdempotenceSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(IdempotenceSweep, RepeatedAnalysisIsStable) {
  const auto program = prepare(corpus::find_program(GetParam())->source);
  const auto r1 = analysis::analyze_program(program, {});
  const auto r2 = analysis::analyze_program(program, {});
  ASSERT_TRUE(r1.converged());
  for (std::size_t i = 0; i < r1.per_node.size(); ++i) {
    ASSERT_TRUE(r1.per_node[i].equals(r2.per_node[i]));
    for (std::size_t k = 0; k < r1.per_node[i].graphs().size(); ++k) {
      // Fingerprints of equal sets must collide member-for-member.
      const auto fp = rsg::fingerprint(r1.per_node[i].graphs()[k]);
      bool matched = false;
      for (std::size_t j = 0; j < r2.per_node[i].graphs().size(); ++j) {
        matched |= fp == rsg::fingerprint(r2.per_node[i].graphs()[j]);
      }
      EXPECT_TRUE(matched);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, IdempotenceSweep,
                         ::testing::Values("sll", "dll", "list_reverse",
                                           "two_lists"));

// Soundness cross-check: L2/L3 never report sharing that L1 proves absent
// is *not* guaranteed (higher levels are more precise), but the reverse
// holds: anything proven unshared at L1 stays unshared at L2/L3 for these
// list codes.
class MonotonePrecisionSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(MonotonePrecisionSweep, HigherLevelsNeverLosePrecisionOnSharing) {
  const auto program = prepare(corpus::find_program(GetParam())->source);
  std::vector<bool> shared_any;
  for (const auto level : {rsg::AnalysisLevel::kL1, rsg::AnalysisLevel::kL2,
                           rsg::AnalysisLevel::kL3}) {
    analysis::Options options;
    options.level = level;
    const auto result = analysis::analyze_program(program, options);
    ASSERT_TRUE(result.converged());
    bool any = false;
    for (const Rsg& g : result.at_exit(program.cfg).graphs()) {
      for (const NodeRef n : g.node_refs()) any |= g.props(n).shared;
    }
    shared_any.push_back(any);
  }
  EXPECT_GE(shared_any[0], shared_any[1]);
  EXPECT_GE(shared_any[1], shared_any[2]);
}

INSTANTIATE_TEST_SUITE_P(Programs, MonotonePrecisionSweep,
                         ::testing::Values("sll", "list_reverse",
                                           "visit_marks"));

}  // namespace
}  // namespace psa
