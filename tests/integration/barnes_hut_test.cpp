// Integration: the Barnes-Hut codes (§5.1 / Fig. 3 of the paper).
//
// On the reduced code (pure paper semantics) the Fig. 3 shape facts hold;
// on the full code the analysis needs the widening and Table 1's *cost*
// behaviour is what we reproduce (see EXPERIMENTS.md for the comparison).
#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "client/parallelism.hpp"
#include "client/queries.hpp"
#include "corpus/corpus.hpp"

namespace psa {
namespace {

using analysis::AnalysisResult;
using analysis::prepare;
using analysis::ProgramAnalysis;

class BarnesHutSmallTest
    : public ::testing::TestWithParam<rsg::AnalysisLevel> {};

TEST_P(BarnesHutSmallTest, ConvergesWithPureSemantics) {
  const auto program = prepare(corpus::find_program("barnes_hut_small")->source);
  analysis::Options options;
  options.level = GetParam();
  options.widen_threshold = 0;  // no widening: the paper's exact semantics
  const auto result = analysis::analyze_program(program, options);
  EXPECT_TRUE(result.converged());
  EXPECT_FALSE(result.at_exit(program.cfg).empty());
}

TEST_P(BarnesHutSmallTest, Fig3ShapeFactsHold) {
  const auto program = prepare(corpus::find_program("barnes_hut_small")->source);
  analysis::Options options;
  options.level = GetParam();
  options.widen_threshold = 0;
  const auto result = analysis::analyze_program(program, options);
  ASSERT_TRUE(result.converged());
  const auto& at_exit = result.at_exit(program.cfg);
  ASSERT_FALSE(at_exit.empty());
  // Fig. 3 (b): "the summary node n6 fulfills SHSEL(n6, body) = false, in
  // line with the real data structure" — no body is referenced by two
  // leaves.
  EXPECT_FALSE(client::may_be_shared_via(program, at_exit, "body", "bd"));
  // The octree cells are not shared among themselves.
  EXPECT_FALSE(client::may_be_shared_via(program, at_exit, "cell", "child"));
  EXPECT_FALSE(client::may_be_shared_via(program, at_exit, "cell", "sib"));
}

INSTANTIATE_TEST_SUITE_P(Levels, BarnesHutSmallTest,
                         ::testing::Values(rsg::AnalysisLevel::kL1,
                                           rsg::AnalysisLevel::kL2,
                                           rsg::AnalysisLevel::kL3),
                         [](const auto& info) {
                           return std::string(rsg::to_string(info.param));
                         });

TEST(BarnesHutSmallTest, StepIiiParallelizable) {
  // §5.1: "the tree can be traversed and updated in parallel on step (iii)".
  const auto program = prepare(corpus::find_program("barnes_hut_small")->source);
  analysis::Options options;
  options.level = rsg::AnalysisLevel::kL3;
  options.widen_threshold = 0;
  const auto result = analysis::analyze_program(program, options);
  ASSERT_TRUE(result.converged());
  const auto loops = client::detect_parallel_loops(program, result);
  // The last loop scope opened is the (iii) stack traversal's innermost; the
  // outer per-body loop is the one the paper parallelizes — all must pass.
  bool any_with_writes = false;
  for (const auto& lp : loops) {
    if (!lp.written_selectors.empty()) any_with_writes = true;
    EXPECT_TRUE(lp.parallelizable) << "loop " << lp.loop_id;
  }
  EXPECT_TRUE(any_with_writes);
}

TEST(BarnesHutFullTest, ConvergesWithWidening) {
  const auto program = prepare(corpus::barnes_hut().source);
  for (const auto level : {rsg::AnalysisLevel::kL1, rsg::AnalysisLevel::kL2,
                           rsg::AnalysisLevel::kL3}) {
    analysis::Options options;
    options.level = level;
    options.max_node_visits = 200'000;
    const auto result = analysis::analyze_program(program, options);
    EXPECT_TRUE(result.converged()) << rsg::to_string(level);
    EXPECT_FALSE(result.at_exit(program.cfg).empty()) << rsg::to_string(level);
  }
}

TEST(BarnesHutFullTest, OctreeUnsharedThroughTreeSelectors) {
  const auto program = prepare(corpus::barnes_hut().source);
  analysis::Options options;
  options.level = rsg::AnalysisLevel::kL2;
  const auto result = analysis::analyze_program(program, options);
  ASSERT_TRUE(result.converged());
  const auto& at_exit = result.at_exit(program.cfg);
  EXPECT_FALSE(client::may_be_shared_via(program, at_exit, "cell", "child"));
  EXPECT_FALSE(client::may_be_shared_via(program, at_exit, "cell", "sib"));
}

TEST(BarnesHutFullTest, MemoryBudgetReproducesTable1Oom) {
  // The paper: "our compiler runs out of memory in L2 and L3 in our 128 MB
  // Pentium III" (for Sparse LU) — the same failure mode is reproducible on
  // any code by bounding the budget. kHardFail preserves the historical
  // abort; the default policy degrades instead (see governor_test.cpp).
  const auto program = prepare(corpus::barnes_hut().source);
  analysis::Options options;
  options.memory_budget_bytes = 256 * 1024;
  options.budget_policy = analysis::BudgetPolicy::kHardFail;
  const auto result = analysis::analyze_program(program, options);
  EXPECT_EQ(result.status, analysis::AnalysisStatus::kOutOfMemory);
}

}  // namespace
}  // namespace psa
