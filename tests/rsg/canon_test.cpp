// Fingerprint / isomorphism: the fixpoint's equality oracle.
#include "rsg/canon.hpp"

#include <gtest/gtest.h>

#include <random>

#include "testing/rsg_builder.hpp"

namespace psa::rsg {
namespace {

using psa::testing::RsgBuilder;

TEST(CanonTest, EmptyGraphsEqual) {
  Rsg a;
  Rsg b;
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  EXPECT_TRUE(rsg_equal(a, b));
}

TEST(CanonTest, NodeCountDifferenceDetected) {
  RsgBuilder a;
  a.pvar("x", a.node());
  RsgBuilder b(a.interner_ptr());
  const NodeRef n = b.node();
  b.pvar("x", n);
  b.link(n, "nxt", b.node());
  EXPECT_FALSE(rsg_equal(a.g, b.g));
}

TEST(CanonTest, IsomorphicUnderSlotPermutation) {
  // Same structure built in different node orders.
  RsgBuilder a;
  const NodeRef a1 = a.node();
  const NodeRef a2 = a.node(Cardinality::kMany);
  a.pvar("x", a1);
  a.link(a1, "nxt", a2).link(a2, "nxt", a2);

  RsgBuilder b(a.interner_ptr());
  const NodeRef b2 = b.node(Cardinality::kMany);  // summary first
  const NodeRef b1 = b.node();
  b.pvar("x", b1);
  b.link(b1, "nxt", b2).link(b2, "nxt", b2);

  EXPECT_EQ(fingerprint(a.g), fingerprint(b.g));
  EXPECT_TRUE(rsg_equal(a.g, b.g));
}

TEST(CanonTest, PropertyDifferenceDetected) {
  RsgBuilder a;
  a.pvar("x", a.node());
  RsgBuilder b(a.interner_ptr());
  const NodeRef n = b.node();
  b.pvar("x", n);
  b.shared(n);
  EXPECT_FALSE(rsg_equal(a.g, b.g));
  EXPECT_NE(fingerprint(a.g), fingerprint(b.g));
}

TEST(CanonTest, PvarBindingMatters) {
  RsgBuilder a;
  const NodeRef a1 = a.node();
  const NodeRef a2 = a.node();
  a.pvar("x", a1).pvar("y", a2).link(a1, "nxt", a2);
  RsgBuilder b(a.interner_ptr());
  const NodeRef b1 = b.node();
  const NodeRef b2 = b.node();
  b.pvar("x", b2).pvar("y", b1).link(b1, "nxt", b2);  // swapped roles
  EXPECT_FALSE(rsg_equal(a.g, b.g));
}

TEST(CanonTest, SelectorLabelsMatter) {
  RsgBuilder a;
  const NodeRef a1 = a.node();
  const NodeRef a2 = a.node();
  a.pvar("x", a1).link(a1, "lft", a2);
  RsgBuilder b(a.interner_ptr());
  const NodeRef b1 = b.node();
  const NodeRef b2 = b.node();
  b.pvar("x", b1).link(b1, "rgt", b2);
  EXPECT_FALSE(rsg_equal(a.g, b.g));
}

TEST(CanonTest, SymmetricGraphWithAutomorphism) {
  // x -> root with two indistinguishable children: still isomorphic to an
  // identically-built copy (forces the matcher through a symmetric orbit).
  auto make = [](RsgBuilder& b) {
    const NodeRef r = b.node();
    const NodeRef c1 = b.node(Cardinality::kMany);
    const NodeRef c2 = b.node(Cardinality::kMany);
    b.pvar("x", r);
    b.link(r, "nxt", c1).link(r, "nxt", c2);
    b.link(c1, "nxt", c2).link(c2, "nxt", c1);
  };
  RsgBuilder a;
  make(a);
  RsgBuilder b(a.interner_ptr());
  make(b);
  EXPECT_TRUE(rsg_equal(a.g, b.g));
}

TEST(CanonTest, DirectionalityDetected) {
  auto make = [](RsgBuilder& b, bool forward) {
    const NodeRef r = b.node();
    const NodeRef s = b.node();
    const NodeRef t = b.node();
    b.pvar("x", r).pvar("y", s).pvar("z", t);
    if (forward) {
      b.link(r, "nxt", s).link(s, "nxt", t);
    } else {
      b.link(t, "nxt", s).link(s, "nxt", r);
    }
  };
  RsgBuilder a;
  make(a, true);
  RsgBuilder b(a.interner_ptr());
  make(b, false);
  EXPECT_FALSE(rsg_equal(a.g, b.g));
}

TEST(CanonTest, FingerprintStableUnderCompaction) {
  RsgBuilder a;
  const NodeRef n1 = a.node();
  const NodeRef dead = a.node();
  const NodeRef n2 = a.node(Cardinality::kMany);
  a.pvar("x", n1).link(n1, "nxt", n2);
  a.g.remove_node(dead);
  const auto before = fingerprint(a.g);
  a.g.compact();
  EXPECT_EQ(fingerprint(a.g), before);
}

// Property sweep: random graph, random slot permutation (rebuild in a
// shuffled order) -> fingerprints and equality must agree.
class CanonPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(CanonPropertyTest, PermutationInvariance) {
  std::mt19937 rng(GetParam());
  const std::size_t n = 3 + rng() % 6;

  RsgBuilder a;
  std::vector<NodeRef> nodes_a;
  for (std::size_t i = 0; i < n; ++i) {
    nodes_a.push_back(
        a.node(rng() % 2 ? Cardinality::kOne : Cardinality::kMany));
  }
  a.pvar("x", nodes_a[0]);
  std::vector<std::tuple<std::size_t, const char*, std::size_t>> links;
  const char* sels[2] = {"nxt", "prv"};
  for (std::size_t i = 0; i < 2 * n; ++i) {
    links.emplace_back(rng() % n, sels[rng() % 2], rng() % n);
  }
  for (const auto& [f, s, t] : links) a.link(nodes_a[f], s, nodes_a[t]);

  // Rebuild with slots allocated in a shuffled order.
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  std::shuffle(perm.begin(), perm.end(), rng);

  RsgBuilder b(a.interner_ptr());
  std::vector<NodeRef> nodes_b(n);
  for (std::size_t slot = 0; slot < n; ++slot) {
    const std::size_t original = perm[slot];
    nodes_b[original] =
        b.node(a.g.props(nodes_a[original]).cardinality, 0);
  }
  b.pvar("x", nodes_b[0]);
  for (const auto& [f, s, t] : links) b.link(nodes_b[f], s, nodes_b[t]);

  EXPECT_EQ(fingerprint(a.g), fingerprint(b.g));
  EXPECT_TRUE(rsg_equal(a.g, b.g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonPropertyTest, ::testing::Range(0u, 24u));

// Property sweep: a single mutation must be detected.
class CanonMutationTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(CanonMutationTest, MutationDetected) {
  std::mt19937 rng(GetParam());
  RsgBuilder a;
  const std::size_t n = 4;
  std::vector<NodeRef> nodes;
  for (std::size_t i = 0; i < n; ++i) nodes.push_back(a.node());
  a.pvar("x", nodes[0]);
  a.link(nodes[0], "nxt", nodes[1]).link(nodes[1], "nxt", nodes[2]);
  a.link(nodes[2], "nxt", nodes[3]);

  Rsg mutated = a.g;
  switch (rng() % 3) {
    case 0:
      mutated.add_link(nodes[3], a.sym("nxt"), nodes[0]);
      break;
    case 1:
      mutated.props(nodes[1 + rng() % 3]).shared = true;
      break;
    default:
      mutated.props(nodes[1 + rng() % 3]).selin.insert(a.sym("nxt"));
      break;
  }
  EXPECT_FALSE(rsg_equal(a.g, mutated));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonMutationTest, ::testing::Range(0u, 12u));

}  // namespace
}  // namespace psa::rsg
