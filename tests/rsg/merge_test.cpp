// MERGE_NODES property-combination formulas (§3.1 of the paper).
#include <gtest/gtest.h>

#include "rsg/compat.hpp"
#include "testing/rsg_builder.hpp"

namespace psa::rsg {
namespace {

using psa::testing::RsgBuilder;

TEST(MergeNodesTest, DefiniteSetsIntersect) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  b.selin(a, "nxt").selin(a, "prv");
  b.selin(c, "nxt");
  const NodeProps m = merge_node_props(b.g, a, b.g, c, true);
  EXPECT_TRUE(m.selin.contains(b.sym("nxt")));
  EXPECT_FALSE(m.selin.contains(b.sym("prv")));
  // prv moves to the possible set: SELIN(n1) ∪ ... minus the new SELIN.
  EXPECT_TRUE(m.pos_selin.contains(b.sym("prv")));
}

TEST(MergeNodesTest, PossibleSetsAccumulate) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  b.pos_selout(a, "lft");
  b.pos_selout(c, "rgt");
  const NodeProps m = merge_node_props(b.g, a, b.g, c, true);
  EXPECT_TRUE(m.pos_selout.contains(b.sym("lft")));
  EXPECT_TRUE(m.pos_selout.contains(b.sym("rgt")));
  EXPECT_TRUE(m.selout.empty());
}

TEST(MergeNodesTest, DefiniteAndPossibleStayDisjoint) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  b.selout(a, "nxt");
  b.selout(c, "nxt");
  b.pos_selout(a, "prv");
  const NodeProps m = merge_node_props(b.g, a, b.g, c, true);
  EXPECT_TRUE(m.selout.contains(b.sym("nxt")));
  EXPECT_FALSE(m.pos_selout.contains(b.sym("nxt")));
  EXPECT_TRUE(m.pos_selout.contains(b.sym("prv")));
}

TEST(MergeNodesTest, SharedGrowsTouchShrinks) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  b.shared(a);
  b.touch(a, "p").touch(a, "q");
  b.touch(c, "p");
  const NodeProps m = merge_node_props(b.g, a, b.g, c, true);
  EXPECT_TRUE(m.shared);
  EXPECT_TRUE(m.touch.contains(b.sym("p")));
  EXPECT_FALSE(m.touch.contains(b.sym("q")));  // definite info: intersection
}

TEST(MergeNodesTest, ShselUnions) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  b.shsel(a, "nxt");
  b.shsel(c, "prv");
  const NodeProps m = merge_node_props(b.g, a, b.g, c, true);
  EXPECT_TRUE(m.shsel.contains(b.sym("nxt")));
  EXPECT_TRUE(m.shsel.contains(b.sym("prv")));
}

TEST(MergeNodesTest, CommonCycleLinksKept) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  b.cyclelink(a, "nxt", "prv");
  b.cyclelink(c, "nxt", "prv");
  const NodeProps m = merge_node_props(b.g, a, b.g, c, true);
  EXPECT_TRUE(m.cyclelinks.contains(SelPair{b.sym("nxt"), b.sym("prv")}));
}

TEST(MergeNodesTest, VacuousCycleLinkKept) {
  // <nxt, prv> of a is kept when c has no outgoing nxt link (the pair holds
  // vacuously for c's locations).
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  b.cyclelink(a, "nxt", "prv");
  const NodeProps m = merge_node_props(b.g, a, b.g, c, true);
  EXPECT_TRUE(m.cyclelinks.contains(SelPair{b.sym("nxt"), b.sym("prv")}));
}

TEST(MergeNodesTest, ContradictedCycleLinkDropped) {
  // c *does* have an outgoing nxt link and does not assert the pair: the
  // merged node cannot keep it.
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  const NodeRef d = b.node();
  b.cyclelink(a, "nxt", "prv");
  b.link(c, "nxt", d);
  const NodeProps m = merge_node_props(b.g, a, b.g, c, true);
  EXPECT_FALSE(m.cyclelinks.contains(SelPair{b.sym("nxt"), b.sym("prv")}));
}

TEST(MergeNodesTest, SameConfigurationAlwaysSummary) {
  RsgBuilder b;
  const NodeRef a = b.node(Cardinality::kOne);
  const NodeRef c = b.node(Cardinality::kOne);
  EXPECT_EQ(merge_node_props(b.g, a, b.g, c, true).cardinality,
            Cardinality::kMany);
}

TEST(MergeNodesTest, CrossConfigurationOnePlusOneStaysOne) {
  RsgBuilder b;
  const NodeRef a = b.node(Cardinality::kOne);
  const NodeRef c = b.node(Cardinality::kOne);
  EXPECT_EQ(merge_node_props(b.g, a, b.g, c, false).cardinality,
            Cardinality::kOne);
}

TEST(MergeNodesTest, ManyIsInfectious) {
  RsgBuilder b;
  const NodeRef a = b.node(Cardinality::kOne);
  const NodeRef c = b.node(Cardinality::kMany);
  EXPECT_EQ(merge_node_props(b.g, a, b.g, c, false).cardinality,
            Cardinality::kMany);
}

TEST(MergeNodesTest, MergeIsCommutativeOnProperties) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  b.selin(a, "nxt").pos_selin(a, "prv").shsel(a, "nxt");
  b.selin(c, "prv").pos_selout(c, "nxt").shared(c);
  const NodeProps ac = merge_node_props(b.g, a, b.g, c, true);
  const NodeProps ca = merge_node_props(b.g, c, b.g, a, true);
  EXPECT_EQ(ac.selin, ca.selin);
  EXPECT_EQ(ac.selout, ca.selout);
  EXPECT_EQ(ac.pos_selin, ca.pos_selin);
  EXPECT_EQ(ac.pos_selout, ca.pos_selout);
  EXPECT_EQ(ac.shared, ca.shared);
  EXPECT_EQ(ac.shsel, ca.shsel);
  EXPECT_EQ(ac.touch, ca.touch);
}

}  // namespace
}  // namespace psa::rsg
