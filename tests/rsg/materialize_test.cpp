// Materialization (focus): extracting the single location x->sel denotes
// out of a summary node (Fig. 1 (d) of the paper).
#include <gtest/gtest.h>

#include "rsg/ops.hpp"
#include "testing/rsg_builder.hpp"

namespace psa::rsg {
namespace {

using psa::testing::RsgBuilder;

/// x -> a -nxt-> m(summary) -nxt-> last, a singly-linked list spine.
struct ListWithSummary {
  RsgBuilder b;
  NodeRef a, m, last;

  ListWithSummary() {
    a = b.node(Cardinality::kOne);
    m = b.node(Cardinality::kMany);
    last = b.node(Cardinality::kOne);
    b.pvar("x", a);
    b.link(a, "nxt", m).selout(a, "nxt");
    b.link(m, "nxt", m).link(m, "nxt", last);
    b.selin(m, "nxt").selout(m, "nxt");
    b.selin(last, "nxt");
  }
};

TEST(MaterializeTest, CardinalityOneTargetPassesThrough) {
  RsgBuilder b;
  const NodeRef a = b.node(Cardinality::kOne);
  const NodeRef t = b.node(Cardinality::kOne);
  b.pvar("x", a).link(a, "nxt", t).selout(a, "nxt").selin(t, "nxt");
  const auto mats = materialize(b.g, a, b.sym("nxt"));
  ASSERT_EQ(mats.size(), 1u);
  EXPECT_EQ(mats[0].one_node, t);
  EXPECT_EQ(mats[0].graph.node_count(), 2u);
}

TEST(MaterializeTest, RequiresUniqueTarget) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  const NodeRef d = b.node();
  b.pvar("x", a).link(a, "nxt", c).link(a, "nxt", d);
  EXPECT_TRUE(materialize(b.g, a, b.sym("nxt")).empty());  // divide first
}

TEST(MaterializeTest, SummaryYieldsVariants) {
  ListWithSummary l;
  const auto mats = materialize(l.b.g, l.a, l.b.sym("nxt"));
  ASSERT_GE(mats.size(), 1u);
  ASSERT_LE(mats.size(), 2u);
  for (const auto& mat : mats) {
    // The focused node is cardinality one and is x->nxt's unique target.
    EXPECT_EQ(mat.graph.props(mat.one_node).cardinality, Cardinality::kOne);
    const auto targets = mat.graph.sel_targets(l.a, l.b.sym("nxt"));
    ASSERT_EQ(targets.size(), 1u);
    EXPECT_EQ(targets[0], mat.one_node);
  }
}

TEST(MaterializeTest, VariantAShrinksSummaryToOne) {
  ListWithSummary l;
  const auto mats = materialize(l.b.g, l.a, l.b.sym("nxt"));
  bool found_in_place = false;
  for (const auto& mat : mats) {
    if (mat.one_node == l.m) {
      found_in_place = true;
      EXPECT_EQ(mat.graph.props(l.m).cardinality, Cardinality::kOne);
    }
  }
  EXPECT_TRUE(found_in_place);
}

TEST(MaterializeTest, VariantBKeepsRest) {
  ListWithSummary l;
  const auto mats = materialize(l.b.g, l.a, l.b.sym("nxt"));
  bool found_extracted = false;
  for (const auto& mat : mats) {
    if (mat.one_node == l.m) continue;
    found_extracted = true;
    // The rest summary m survives, now reached through the extracted node.
    EXPECT_TRUE(mat.graph.alive(l.m));
    EXPECT_EQ(mat.graph.props(l.m).cardinality, Cardinality::kMany);
    EXPECT_TRUE(mat.graph.has_link(mat.one_node, l.b.sym("nxt"), l.m));
    // The focused reference moved: no direct a -> m link remains.
    EXPECT_FALSE(mat.graph.has_link(l.a, l.b.sym("nxt"), l.m));
  }
  EXPECT_TRUE(found_extracted);
}

TEST(MaterializeTest, NoSpuriousSelfLinkOnUnsharedExtraction) {
  // SHSEL(m, nxt) = false and the focused link is definite: the extracted
  // node must not keep a nxt self-loop (share pruning removes it).
  ListWithSummary l;
  const auto mats = materialize(l.b.g, l.a, l.b.sym("nxt"));
  for (const auto& mat : mats) {
    EXPECT_FALSE(
        mat.graph.has_link(mat.one_node, l.b.sym("nxt"), mat.one_node));
  }
}

TEST(MaterializeTest, ExtractedInheritsTouch) {
  ListWithSummary l;
  l.b.touch(l.m, "p");
  const auto mats = materialize(l.b.g, l.a, l.b.sym("nxt"));
  for (const auto& mat : mats) {
    EXPECT_TRUE(mat.graph.props(mat.one_node).touch.contains(l.b.sym("p")));
  }
}

TEST(MaterializeTest, DllMaterializationKeepsBackPointer) {
  // Doubly-linked spine: extraction must produce rest -prv-> extracted
  // (Fig. 1 (d): n2 -prv-> n4) and extracted -prv-> a.
  RsgBuilder b;
  const NodeRef a = b.node(Cardinality::kOne);
  const NodeRef m = b.node(Cardinality::kMany);
  b.pvar("x", a);
  b.link(a, "nxt", m).selout(a, "nxt");
  b.link(m, "nxt", m).link(m, "prv", m).link(m, "prv", a);
  b.selin(m, "nxt").selout(m, "prv");
  b.selin(a, "prv");
  b.cyclelink(a, "nxt", "prv");
  b.cyclelink(m, "nxt", "prv").cyclelink(m, "prv", "nxt");
  b.shared(m);

  const auto mats = materialize(b.g, a, b.sym("nxt"));
  ASSERT_FALSE(mats.empty());
  for (const auto& mat : mats) {
    const NodeRef e = mat.one_node;
    // The extracted first-middle points back to a.
    EXPECT_TRUE(mat.graph.has_link(e, b.sym("prv"), a));
    if (mat.graph.alive(m) && e != m) {
      // Rest points back to the extracted node via prv.
      EXPECT_TRUE(mat.graph.has_link(m, b.sym("prv"), e));
    }
  }
}

}  // namespace
}  // namespace psa::rsg
