// The complete Fig. 1 walkthrough: abstract interpretation of
// `x->nxt = NULL` over the doubly-linked-list RSG of Fig. 1 (a).
//
//  (a) x -> n1, summary middles n2, last n3; nxt/prv with cycle links.
//  (b) DIVIDE on (x, nxt): one graph per nxt-target of n1.
//  (c) PRUNE: cycle-link and share-based pruning delete the spurious links
//      (n3 -prv-> n1 in rsg'_1; n2 entirely in rsg'_2).
//  (d) materialization of n4 out of n2 in rsg''_1.
//  (e) the link removal itself (exercised end-to-end via the engine).
#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "rsg/ops.hpp"
#include "testing/rsg_builder.hpp"

namespace psa::rsg {
namespace {

using psa::testing::Fig1Dll;

TEST(Fig1Test, DivisionYieldsTwoVariants) {
  Fig1Dll f;
  const auto parts = divide(f.b.g, f.x, f.nxt);
  // n1 -nxt-> n2 (three or more elements) and n1 -nxt-> n3 (exactly two).
  ASSERT_EQ(parts.size(), 2u);
}

TEST(Fig1Test, LongVariantKeepsMiddlesAndPrunesSpuriousBackPointer) {
  Fig1Dll f;
  const auto parts = divide(f.b.g, f.x, f.nxt);
  const Rsg* with_middles = nullptr;
  for (const Rsg& p : parts) {
    if (p.node_count() == 3) with_middles = &p;
  }
  ASSERT_NE(with_middles, nullptr);
  const NodeRef n1 = with_middles->pvar_target(f.x);
  // n1's unique nxt target is the summary.
  const auto targets = with_middles->sel_targets(n1, f.nxt);
  ASSERT_EQ(targets.size(), 1u);
  const NodeRef n2 = targets[0];
  EXPECT_EQ(with_middles->props(n2).cardinality, Cardinality::kMany);
  // The paper's rsg'_1 pruning: n3 -prv-> n1 violates n3's cycle links
  // (n1's nxt no longer reaches n3 directly). Find n3 = the nxt-successor
  // of n2 that is not n2.
  NodeRef n3 = kNoNode;
  for (const NodeRef t : with_middles->sel_targets(n2, f.nxt)) {
    if (t != n2) n3 = t;
  }
  ASSERT_NE(n3, kNoNode);
  EXPECT_FALSE(with_middles->has_link(n3, f.prv, n1));
  // The legitimate back-pointer n2 -prv-> n1 stays.
  EXPECT_TRUE(with_middles->has_link(n2, f.prv, n1));
}

TEST(Fig1Test, ShortVariantRemovesSummaryEntirely) {
  // rsg''_2 of the paper: with n1 -nxt-> n3 chosen, n3 is not nxt-shared, so
  // n2's nxt reference to n3 is spurious; n2 becomes unreachable and dies.
  Fig1Dll f;
  const auto parts = divide(f.b.g, f.x, f.nxt);
  const Rsg* short_variant = nullptr;
  for (const Rsg& p : parts) {
    if (p.node_count() == 2) short_variant = &p;
  }
  ASSERT_NE(short_variant, nullptr);
  const NodeRef n1 = short_variant->pvar_target(f.x);
  const auto targets = short_variant->sel_targets(n1, f.nxt);
  ASSERT_EQ(targets.size(), 1u);
  const NodeRef n3 = targets[0];
  EXPECT_EQ(short_variant->props(n3).cardinality, Cardinality::kOne);
  // The two-element list: n3 points back at n1.
  EXPECT_TRUE(short_variant->has_link(n3, f.prv, n1));
}

TEST(Fig1Test, MaterializationExtractsN4) {
  Fig1Dll f;
  const auto parts = divide(f.b.g, f.x, f.nxt);
  const Rsg* with_middles = nullptr;
  for (const Rsg& p : parts) {
    if (p.node_count() == 3) with_middles = &p;
  }
  ASSERT_NE(with_middles, nullptr);
  const NodeRef n1 = with_middles->pvar_target(f.x);

  const auto mats = materialize(*with_middles, n1, f.nxt);
  ASSERT_FALSE(mats.empty());
  for (const auto& mat : mats) {
    const NodeRef n4 = mat.one_node;
    EXPECT_EQ(mat.graph.props(n4).cardinality, Cardinality::kOne);
    // Fig. 1 (d): n1 -nxt-> n4, n4 -prv-> n1.
    EXPECT_TRUE(mat.graph.has_link(n1, f.nxt, n4));
    EXPECT_TRUE(mat.graph.has_link(n4, f.prv, n1));
    // No spurious self links on the singleton.
    EXPECT_FALSE(mat.graph.has_link(n4, f.nxt, n4));
    EXPECT_FALSE(mat.graph.has_link(n4, f.prv, n4));
  }
}

TEST(Fig1Test, EndToEndTruncationViaEngine) {
  // Run the whole pipeline on a real program: build a DLL, then truncate it
  // after the first element. At the end, x's structure must be a single
  // element with nxt == NULL, and no graph may keep x's node nxt-linked.
  constexpr std::string_view kSource = R"(
    struct dnode { struct dnode *nxt; struct dnode *prv; int v; };
    void main() {
      struct dnode *list; struct dnode *tail; struct dnode *t;
      struct dnode *x;
      int i; int n;
      list = malloc(sizeof(struct dnode));
      list->nxt = NULL;
      list->prv = NULL;
      tail = list;
      i = 0; n = 10;
      while (i < n) {
        t = malloc(sizeof(struct dnode));
        t->nxt = NULL;
        t->prv = tail;
        tail->nxt = t;
        tail = t;
        i = i + 1;
      }
      t = NULL; tail = NULL;
      x = list;
      x->nxt = NULL;
    }
  )";
  const auto program = analysis::prepare(kSource);
  analysis::Options options;
  options.level = AnalysisLevel::kL2;
  const auto result = analysis::analyze_program(program, options);
  ASSERT_TRUE(result.converged());
  const auto& at_exit = result.at_exit(program.cfg);
  ASSERT_FALSE(at_exit.empty());
  const auto x = program.symbol("x");
  for (const Rsg& g : at_exit.graphs()) {
    const NodeRef xn = g.pvar_target(x);
    ASSERT_NE(xn, kNoNode);
    // x->nxt = NULL held at exit: no outgoing nxt link, selout without nxt.
    EXPECT_TRUE(g.sel_targets(xn, program.symbol("nxt")).empty());
    EXPECT_FALSE(g.props(xn).selout.contains(program.symbol("nxt")));
  }
}

TEST(Fig1Test, CycleLinksRecordedDuringDllConstruction) {
  // The engine must *discover* the nxt/prv cycle links while the program
  // builds the list (they are what Fig. 1's pruning runs on).
  constexpr std::string_view kSource = R"(
    struct dnode { struct dnode *nxt; struct dnode *prv; int v; };
    void main() {
      struct dnode *list; struct dnode *tail; struct dnode *t;
      int i; int n;
      list = malloc(sizeof(struct dnode));
      list->nxt = NULL;
      list->prv = NULL;
      tail = list;
      i = 0; n = 10;
      while (i < n) {
        t = malloc(sizeof(struct dnode));
        t->nxt = NULL;
        t->prv = tail;
        tail->nxt = t;
        tail = t;
        i = i + 1;
      }
      t = NULL;
    }
  )";
  const auto program = analysis::prepare(kSource);
  const auto result = analysis::analyze_program(program, {});
  ASSERT_TRUE(result.converged());
  const auto& at_exit = result.at_exit(program.cfg);
  ASSERT_FALSE(at_exit.empty());
  const SelPair nxt_prv{program.symbol("nxt"), program.symbol("prv")};
  bool found = false;
  for (const Rsg& g : at_exit.graphs()) {
    for (const NodeRef n : g.node_refs()) {
      if (g.props(n).cyclelinks.contains(nxt_prv)) found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace psa::rsg
