// Round-trip and corruption-tolerance suite for the snapshot wire format.
//
// The robustness contract under test: deserialize(serialize(g)) is
// canon-identical to g, and deserialization of hostile bytes — truncated,
// bit-flipped, wrong version, wrong checksum — throws SnapshotError with a
// diagnostic and never exhibits UB (this suite also runs under ASan/UBSan
// via the sanitize preset).
#include "rsg/serialize.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "rsg/canon.hpp"
#include "testing/program_gen.hpp"
#include "testing/rsg_builder.hpp"

namespace psa::rsg {
namespace {

using psa::testing::RsgBuilder;

Rsg sample_graph(RsgBuilder& b) {
  const auto head = b.node(Cardinality::kOne);
  const auto tail = b.node(Cardinality::kMany);
  b.pvar("head", head);
  b.link(head, "next", tail);
  b.link(tail, "next", tail);
  b.selout(head, "next");
  b.selin(tail, "next");
  b.shared(tail);
  b.cyclelink(tail, "next", "prev");
  b.touch(tail, "head");
  return b.g;
}

TEST(SerializeEnvelope, RoundTripsPayloadBytes) {
  const std::string payload = "hello snapshot";
  const std::string wrapped = wrap_snapshot(payload);
  EXPECT_EQ(unwrap_snapshot(wrapped), payload);
}

TEST(SerializeEnvelope, RejectsBadMagic) {
  std::string bytes = wrap_snapshot("payload");
  bytes[0] = 'X';
  EXPECT_THROW((void)unwrap_snapshot(bytes), SnapshotError);
}

TEST(SerializeEnvelope, RejectsWrongVersion) {
  std::string bytes = wrap_snapshot("payload");
  bytes[8] = static_cast<char>(kSnapshotVersion + 1);
  EXPECT_THROW((void)unwrap_snapshot(bytes), SnapshotError);
}

TEST(SerializeEnvelope, VersionIsPinnedAndPredecessorsAreRejected) {
  // v5: the metrics array grew by the durable-I/O counters (io_writes,
  // io_fsyncs, io_faults_injected, io_degradations — src/rsg/serialize.hpp).
  // A version bump without updating this pin is a wire-format change nobody
  // signed off on.
  EXPECT_EQ(kSnapshotVersion, 5u);
  // Every prior version (v1 pre-metrics, v2 pre-IPA, v3 pre-func-cache,
  // v4 pre-io-counters) must be rejected — stale cache entries and
  // checkpoints re-analyze rather than misparse.
  for (std::uint8_t old = 0; old < kSnapshotVersion; ++old) {
    std::string bytes = wrap_snapshot("payload");
    bytes[8] = static_cast<char>(old);
    EXPECT_THROW((void)unwrap_snapshot(bytes), SnapshotError)
        << "version " << static_cast<int>(old);
  }
}

TEST(SerializeEnvelope, RejectsWrongChecksum) {
  std::string bytes = wrap_snapshot("payload");
  bytes[24] = static_cast<char>(bytes[24] ^ 0x01);
  EXPECT_THROW((void)unwrap_snapshot(bytes), SnapshotError);
}

TEST(SerializeEnvelope, RejectsTruncationAtEveryLength) {
  const std::string bytes = wrap_snapshot("a payload long enough to cut");
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_THROW((void)unwrap_snapshot(bytes.substr(0, n)), SnapshotError)
        << "prefix length " << n;
  }
}

TEST(SerializeEnvelope, RejectsTrailingGarbage) {
  std::string bytes = wrap_snapshot("payload");
  bytes += "garbage";
  EXPECT_THROW((void)unwrap_snapshot(bytes), SnapshotError);
}

TEST(ByteReaderTest, CountRejectsImpossibleElementCounts) {
  ByteWriter w;
  w.u32(1'000'000);  // count claiming a million 8-byte records in 4 bytes
  w.u32(0);
  const std::string bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW((void)r.count("records", 8), SnapshotError);
}

TEST(ByteReaderTest, StrRejectsLengthBeyondBuffer) {
  ByteWriter w;
  w.u32(500);  // length prefix promising 500 bytes that are not there
  w.u8('x');
  const std::string bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW((void)r.str("name"), SnapshotError);
}

TEST(RsgRoundTrip, HandBuiltGraphIsCanonIdentical) {
  // Read back into the ORIGINATING interner: symbols resolve to the same
  // ids, so the round-trip is exactly the original graph.
  RsgBuilder b;
  const Rsg g = sample_graph(b);
  const std::string bytes = serialize_rsg(g, b.interner());

  const Rsg back = deserialize_rsg(bytes, *b.interner_ptr());
  EXPECT_TRUE(rsg_equal(g, back));
  EXPECT_EQ(fingerprint(g), fingerprint(back));
}

TEST(RsgRoundTrip, HavocTaintBitsRoundTrip) {
  // v2 of the wire format added the salvage-mode HAVOC taint: one byte per
  // node plus one graph-level byte. Both must survive the round-trip.
  RsgBuilder b;
  Rsg g = sample_graph(b);
  const auto refs = g.node_refs();
  ASSERT_GE(refs.size(), 2u);
  g.props(refs[0]).havoc = true;
  g.set_havoc(true);
  const std::string bytes = serialize_rsg(g, b.interner());

  const Rsg back = deserialize_rsg(bytes, *b.interner_ptr());
  EXPECT_TRUE(rsg_equal(g, back));
  EXPECT_TRUE(back.havoc());
  const auto back_refs = back.node_refs();
  EXPECT_TRUE(back.props(back_refs[0]).havoc);
  EXPECT_FALSE(back.props(back_refs[1]).havoc);
  // A graph without taint must not gain it.
  b.g.set_havoc(false);
  for (const NodeRef n : b.g.node_refs()) b.g.props(n).havoc = false;
  const Rsg clean = deserialize_rsg(serialize_rsg(b.g, b.interner()),
                                    *b.interner_ptr());
  EXPECT_FALSE(clean.havoc());
}

TEST(RsgRoundTrip, EmptyGraph) {
  support::Interner interner;
  const Rsg g;
  support::Interner fresh;
  const Rsg back = deserialize_rsg(serialize_rsg(g, interner), fresh);
  EXPECT_TRUE(rsg_equal(g, back));
}

TEST(RsgRoundTrip, SurvivesReinterningIntoADifferentInterner) {
  // Across interners symbol IDS may change (rsg_equal is id-based), but the
  // snapshot is canonical: the string table is written in first-use order of
  // the SPELLINGS, so re-serializing the re-interned graph reproduces the
  // original bytes exactly — even into a pre-polluted interner.
  RsgBuilder b;
  const Rsg g = sample_graph(b);
  const std::string bytes = serialize_rsg(g, b.interner());

  support::Interner fresh;
  for (int i = 0; i < 50; ++i) {
    (void)fresh.intern("pad" + std::to_string(i));
  }
  const Rsg back = deserialize_rsg(bytes, fresh);
  EXPECT_EQ(serialize_rsg(back, fresh), bytes);
}

TEST(RsgRoundTrip, FuzzGeneratedExitStatesAreCanonIdentical) {
  for (unsigned seed = 0; seed < 10; ++seed) {
    const std::string source = psa::testing::generate_program(seed);
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto program = analysis::prepare(source);
    analysis::Options options;
    options.level = rsg::AnalysisLevel::kL2;
    options.max_node_visits = 200'000;
    const auto result = analysis::analyze_program(program, options);
    ASSERT_TRUE(result.converged());
    for (const Rsg& g : result.at_exit(program.cfg).graphs()) {
      const std::string bytes = serialize_rsg(g, program.interner());
      // Same-interner round trip: exact.
      const Rsg back = deserialize_rsg(bytes, *program.unit.interner);
      EXPECT_TRUE(rsg_equal(g, back));
      // Cross-interner round trip: canonical bytes.
      support::Interner fresh;
      const Rsg reinterned = deserialize_rsg(bytes, fresh);
      EXPECT_EQ(serialize_rsg(reinterned, fresh), bytes);
    }
  }
}

// The payload of a graph snapshot is checksummed, so EVERY single-bit flip
// anywhere in the bytes must be detected (header flips break magic/version/
// size, payload flips break the checksum, checksum flips mismatch the
// payload) — and must never crash or read out of bounds.
TEST(RsgCorruption, EverySingleBitFlipIsRejected) {
  RsgBuilder b;
  const Rsg g = sample_graph(b);
  const std::string bytes = serialize_rsg(g, b.interner());

  support::Interner fresh;
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = bytes;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      EXPECT_THROW((void)deserialize_rsg(mutated, fresh), SnapshotError)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(RsgCorruption, TruncatedSnapshotsAreRejected) {
  RsgBuilder b;
  const Rsg g = sample_graph(b);
  const std::string bytes = serialize_rsg(g, b.interner());

  support::Interner fresh;
  for (std::size_t n = 0; n < bytes.size(); n += 3) {
    EXPECT_THROW((void)deserialize_rsg(bytes.substr(0, n), fresh),
                 SnapshotError)
        << "prefix length " << n;
  }
}

TEST(RsgCorruption, ValidEnvelopeAroundGarbagePayloadIsRejected) {
  // A well-formed envelope whose payload is noise: the structural validators
  // (symbol table, node refs, counts) must catch it.
  const std::string garbage(64, '\xff');
  const std::string bytes = wrap_snapshot(garbage);
  support::Interner fresh;
  EXPECT_THROW((void)deserialize_rsg(bytes, fresh), SnapshotError);
}

TEST(RsgCorruption, EmptyAndTinyInputsAreRejected) {
  support::Interner fresh;
  EXPECT_THROW((void)deserialize_rsg("", fresh), SnapshotError);
  EXPECT_THROW((void)deserialize_rsg("PSA", fresh), SnapshotError);
  EXPECT_THROW((void)deserialize_rsg(std::string(32, '\0'), fresh),
               SnapshotError);
}

}  // namespace
}  // namespace psa::rsg
