// Rsg graph basics: nodes, PL, NL, derived properties, gc, compaction.
#include "rsg/rsg.hpp"

#include <gtest/gtest.h>

#include "testing/rsg_builder.hpp"

namespace psa::rsg {
namespace {

using psa::testing::RsgBuilder;

TEST(RsgTest, EmptyGraph) {
  Rsg g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.link_count(), 0u);
  EXPECT_TRUE(g.pvar_links().empty());
}

TEST(RsgTest, AddNodeAndBindPvar) {
  RsgBuilder b;
  const NodeRef n = b.node();
  b.pvar("x", n);
  EXPECT_EQ(b.g.node_count(), 1u);
  EXPECT_EQ(b.g.pvar_target(b.sym("x")), n);
  EXPECT_EQ(b.g.pvar_target(b.sym("y")), kNoNode);
}

TEST(RsgTest, RebindPvarReplaces) {
  RsgBuilder b;
  const NodeRef n1 = b.node();
  const NodeRef n2 = b.node();
  b.pvar("x", n1);
  b.pvar("x", n2);
  EXPECT_EQ(b.g.pvar_target(b.sym("x")), n2);
  EXPECT_EQ(b.g.pvar_links().size(), 1u);
}

TEST(RsgTest, UnbindPvar) {
  RsgBuilder b;
  b.pvar("x", b.node());
  b.g.unbind_pvar(b.sym("x"));
  EXPECT_EQ(b.g.pvar_target(b.sym("x")), kNoNode);
}

TEST(RsgTest, LinksAreDeduplicated) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  EXPECT_TRUE(b.g.add_link(a, b.sym("nxt"), c));
  EXPECT_FALSE(b.g.add_link(a, b.sym("nxt"), c));
  EXPECT_EQ(b.g.link_count(), 1u);
}

TEST(RsgTest, InLinksMirrorOutLinks) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  b.link(a, "nxt", c).link(a, "prv", c).link(c, "nxt", a);
  const auto in_c = b.g.in_links(c);
  ASSERT_EQ(in_c.size(), 2u);
  EXPECT_EQ(in_c[0].source, a);
  const auto in_a = b.g.in_links(a);
  ASSERT_EQ(in_a.size(), 1u);
  EXPECT_EQ(in_a[0].source, c);
}

TEST(RsgTest, RemoveLinkUpdatesBothSides) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  b.link(a, "nxt", c);
  EXPECT_TRUE(b.g.remove_link(a, b.sym("nxt"), c));
  EXPECT_FALSE(b.g.remove_link(a, b.sym("nxt"), c));
  EXPECT_TRUE(b.g.in_links(c).empty());
  EXPECT_TRUE(b.g.out_links(a).empty());
}

TEST(RsgTest, SelTargets) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  const NodeRef d = b.node();
  b.link(a, "nxt", c).link(a, "nxt", d).link(a, "prv", c);
  EXPECT_EQ(b.g.sel_targets(a, b.sym("nxt")), (std::vector<NodeRef>{c, d}));
  EXPECT_EQ(b.g.sel_targets(a, b.sym("prv")), (std::vector<NodeRef>{c}));
}

TEST(RsgTest, RemoveNodeDetachesEverything) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  const NodeRef d = b.node();
  b.pvar("x", c);
  b.link(a, "nxt", c).link(c, "nxt", d).link(d, "prv", c);
  b.g.remove_node(c);
  EXPECT_FALSE(b.g.alive(c));
  EXPECT_EQ(b.g.node_count(), 2u);
  EXPECT_EQ(b.g.link_count(), 0u);
  EXPECT_EQ(b.g.pvar_target(b.sym("x")), kNoNode);
}

TEST(RsgTest, Spath0IsPvarSet) {
  RsgBuilder b;
  const NodeRef n = b.node();
  b.pvar("x", n).pvar("y", n);
  const auto sp = b.g.spath0(n);
  EXPECT_EQ(sp.size(), 2u);
  EXPECT_TRUE(sp.contains(b.sym("x")));
  EXPECT_TRUE(sp.contains(b.sym("y")));
}

TEST(RsgTest, Spath1IsOneStepPaths) {
  RsgBuilder b;
  const NodeRef h = b.node();
  const NodeRef n = b.node();
  b.pvar("x", h).link(h, "nxt", n);
  const auto sp = b.g.spath1(n);
  ASSERT_EQ(sp.size(), 1u);
  EXPECT_EQ(sp.begin()->pvar, b.sym("x"));
  EXPECT_EQ(sp.begin()->sel, b.sym("nxt"));
  EXPECT_TRUE(b.g.spath1(h).empty());
}

TEST(RsgTest, ComponentsPartitionByConnectivity) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  const NodeRef d = b.node();
  const NodeRef e = b.node();
  b.link(a, "nxt", c).link(d, "nxt", e);
  const auto comp = b.g.components();
  EXPECT_EQ(comp[a], comp[c]);
  EXPECT_EQ(comp[d], comp[e]);
  EXPECT_NE(comp[a], comp[d]);
}

TEST(RsgTest, GcRemovesUnreachable) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  const NodeRef orphan = b.node();
  b.pvar("x", a);
  b.link(a, "nxt", c);
  b.link(orphan, "nxt", c);  // garbage pointing into the live region
  EXPECT_TRUE(b.g.gc());
  EXPECT_FALSE(b.g.alive(orphan));
  EXPECT_TRUE(b.g.alive(a));
  EXPECT_TRUE(b.g.alive(c));
  EXPECT_FALSE(b.g.gc());  // second run is a no-op
}

TEST(RsgTest, GcDemotesOrphanedDefiniteSelin) {
  // A garbage node holds the only witness of c's definite selin: after gc
  // the claim must demote to the possible set, not doom the graph at the
  // next prune (the stack-pop regression of the Barnes-Hut codes).
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  const NodeRef garbage = b.node();
  b.pvar("x", a);
  b.link(a, "nxt", c);
  b.link(garbage, "ref", c);
  b.selin(c, "ref");
  b.g.gc();
  EXPECT_FALSE(b.g.alive(garbage));
  EXPECT_FALSE(b.g.props(c).selin.contains(b.sym("ref")));
  EXPECT_TRUE(b.g.props(c).pos_selin.contains(b.sym("ref")));
}

TEST(RsgTest, GcKeepsWitnessedDefiniteSelin) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  const NodeRef garbage = b.node();
  b.pvar("x", a);
  b.link(a, "ref", c);      // a surviving witness
  b.link(garbage, "ref", c);
  b.selin(c, "ref");
  b.g.gc();
  EXPECT_TRUE(b.g.props(c).selin.contains(b.sym("ref")));
}

TEST(RsgTest, GcDemotesOrphanedDefiniteSelout) {
  // A live node whose only sel-link led into garbage keeps pointing there in
  // reality; the definite selout must demote rather than doom the node.
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef island_root = b.node();
  b.pvar("x", a);
  b.pvar("y", island_root);
  b.link(a, "ref", island_root);
  b.selout(a, "ref");
  b.g.unbind_pvar(b.sym("y"));
  // island_root is still reachable via a -> nothing changes.
  b.g.gc();
  EXPECT_TRUE(b.g.props(a).selout.contains(b.sym("ref")));
  // Now cut the link's reachability: rebuild the scenario with the link
  // reversed (garbage -> alive was covered above; alive -> garbage requires
  // the target to be unreachable, impossible while the link exists), so the
  // selout demotion triggers when gc removes a *cycle* of garbage.
  RsgBuilder b2;
  const NodeRef live = b2.node();
  const NodeRef g1 = b2.node();
  b2.pvar("x", live);
  b2.link(g1, "nxt", g1);  // unreachable self-cycle
  b2.link(g1, "ref", live);
  b2.selout(g1, "ref");
  b2.g.gc();
  EXPECT_FALSE(b2.g.alive(g1));
  EXPECT_TRUE(b2.g.alive(live));
}

TEST(RsgTest, CompactRenumbersDensely) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  const NodeRef d = b.node();
  b.pvar("x", a);
  b.link(a, "nxt", d);
  b.g.remove_node(c);
  b.g.compact();
  EXPECT_EQ(b.g.node_capacity(), 2u);
  EXPECT_EQ(b.g.node_count(), 2u);
  const NodeRef na = b.g.pvar_target(b.sym("x"));
  ASSERT_NE(na, kNoNode);
  EXPECT_EQ(b.g.sel_targets(na, b.sym("nxt")).size(), 1u);
}

TEST(RsgTest, MaxInRefsCountsCardinality) {
  RsgBuilder b;
  const NodeRef one_src = b.node(Cardinality::kOne);
  const NodeRef many_src = b.node(Cardinality::kMany);
  const NodeRef t1 = b.node();
  const NodeRef t2 = b.node();
  b.link(one_src, "nxt", t1);
  EXPECT_EQ(b.g.max_in_refs(t1, b.sym("nxt")), 1);
  b.link(many_src, "nxt", t2);
  EXPECT_EQ(b.g.max_in_refs(t2, b.sym("nxt")), 2);  // summary counts as >= 2
  b.link(many_src, "nxt", t1);
  EXPECT_EQ(b.g.max_in_refs(t1, b.sym("nxt")), 2);
  EXPECT_EQ(b.g.max_in_refs(t1, b.sym("prv")), 0);
}

TEST(RsgTest, DefiniteLinkRequiresCardinalitySeloutUniqueness) {
  RsgBuilder b;
  const NodeRef a = b.node(Cardinality::kOne);
  const NodeRef m = b.node(Cardinality::kMany);
  const NodeRef t = b.node();
  const NodeRef t2 = b.node();
  b.link(a, "nxt", t);
  EXPECT_FALSE(b.g.definite_link(a, b.sym("nxt"), t));  // nxt not definite out
  b.selout(a, "nxt");
  EXPECT_TRUE(b.g.definite_link(a, b.sym("nxt"), t));
  b.link(a, "nxt", t2);  // no longer unique
  EXPECT_FALSE(b.g.definite_link(a, b.sym("nxt"), t));
  b.link(m, "nxt", t);
  b.selout(m, "nxt");
  EXPECT_FALSE(b.g.definite_link(m, b.sym("nxt"), t));  // summary source
}

TEST(RsgTest, CopyIsIndependent) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  b.pvar("x", a).link(a, "nxt", c);
  Rsg copy = b.g;
  copy.remove_link(a, b.sym("nxt"), c);
  EXPECT_EQ(b.g.link_count(), 1u);
  EXPECT_EQ(copy.link_count(), 0u);
}

TEST(RsgTest, FootprintGrowsWithContent) {
  RsgBuilder b;
  const std::size_t empty_bytes = b.g.footprint_bytes();
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  b.link(a, "nxt", c);
  EXPECT_GT(b.g.footprint_bytes(), empty_bytes);
}

TEST(RsgTest, DumpContainsPvarsAndLinks) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  b.pvar("head", a).link(a, "nxt", c);
  const std::string text = b.g.dump(b.interner());
  EXPECT_NE(text.find("head"), std::string::npos);
  EXPECT_NE(text.find("nxt"), std::string::npos);
}

TEST(RsgTest, ReachableFromPvars) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  const NodeRef island = b.node();
  b.pvar("x", a).link(a, "nxt", c);
  const auto seen = b.g.reachable_from_pvars();
  EXPECT_TRUE(seen[a]);
  EXPECT_TRUE(seen[c]);
  EXPECT_FALSE(seen[island]);
}

}  // namespace
}  // namespace psa::rsg
