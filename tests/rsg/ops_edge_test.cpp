// Edge cases of the RSG operations: self-links, pvar self-stores, chained
// compatibility in COMPRESS, empty graphs, level interactions.
#include <gtest/gtest.h>

#include "rsg/canon.hpp"
#include "rsg/ops.hpp"
#include "testing/rsg_builder.hpp"

namespace psa::rsg {
namespace {

using psa::testing::RsgBuilder;

constexpr LevelPolicy kL1{AnalysisLevel::kL1};
constexpr LevelPolicy kL2{AnalysisLevel::kL2};
constexpr LevelPolicy kL3{AnalysisLevel::kL3};

TEST(OpsEdgeTest, DivideOnSelfLink) {
  // x's node points to itself and to another node via nxt.
  RsgBuilder b;
  const NodeRef n = b.node();
  const NodeRef m = b.node();
  b.pvar("x", n).pvar("y", m);
  b.link(n, "nxt", n).link(n, "nxt", m);
  b.pos_selout(n, "nxt");
  const auto parts = divide(b.g, b.sym("x"), b.sym("nxt"));
  // Variants: null, self-target, m-target.
  ASSERT_EQ(parts.size(), 3u);
  int self_variants = 0;
  for (const Rsg& p : parts) {
    const NodeRef pn = p.pvar_target(b.sym("x"));
    const auto targets = p.sel_targets(pn, b.sym("nxt"));
    if (targets.size() == 1 && targets[0] == pn) ++self_variants;
  }
  EXPECT_EQ(self_variants, 1);
}

TEST(OpsEdgeTest, MaterializeSelfLinkedSummary) {
  // x -> n -nxt-> m where m only links to itself: a possibly-circular rest.
  RsgBuilder b;
  const NodeRef n = b.node();
  const NodeRef m = b.node(Cardinality::kMany);
  b.pvar("x", n);
  b.link(n, "nxt", m).selout(n, "nxt");
  b.link(m, "nxt", m);
  b.selin(m, "nxt");
  b.pos_selout(m, "nxt");
  b.shsel(m, "nxt").shared(m);  // permit genuine sharing: nothing prunable
  const auto mats = materialize(b.g, n, b.sym("nxt"));
  ASSERT_FALSE(mats.empty());
  for (const auto& mat : mats) {
    EXPECT_EQ(mat.graph.props(mat.one_node).cardinality, Cardinality::kOne);
    // The focused link exists and is unique.
    const auto targets = mat.graph.sel_targets(n, b.sym("nxt"));
    ASSERT_EQ(targets.size(), 1u);
    EXPECT_EQ(targets[0], mat.one_node);
  }
}

TEST(OpsEdgeTest, CompressChainsCompatibility) {
  // Three deep nodes pairwise compatible -> all summarize into one.
  RsgBuilder b;
  const NodeRef h = b.node();
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  const NodeRef d = b.node();
  b.pvar("x", h);
  b.link(h, "nxt", a).link(a, "nxt", c).link(c, "nxt", d).link(d, "nxt", a);
  for (const NodeRef n : {a, c, d}) {
    b.selin(n, "nxt");
    b.pos_selout(n, "nxt");
    b.shsel(n, "nxt").shared(n);  // self-consistent cyclic tail
  }
  compress(b.g, kL1);
  // h stays (pvar-pointed); a, c, d merge (same props, same component).
  EXPECT_EQ(b.g.node_count(), 2u);
}

TEST(OpsEdgeTest, CompressRespectsLevel) {
  // The node one step from the pvar merges with deeper nodes at L1 only.
  auto build = [](RsgBuilder& b) {
    const NodeRef h = b.node();
    const NodeRef second = b.node();
    const NodeRef deep = b.node();
    b.pvar("x", h);
    b.link(h, "nxt", second).link(second, "nxt", deep);
    b.selout(h, "nxt");
    for (const NodeRef n : {second, deep}) {
      b.selin(n, "nxt");
      b.pos_selout(n, "nxt");
    }
  };
  RsgBuilder l1;
  build(l1);
  compress(l1.g, kL1);
  EXPECT_EQ(l1.g.node_count(), 2u);  // second+deep summarized

  RsgBuilder l2(l1.interner_ptr());
  build(l2);
  compress(l2.g, kL2);
  EXPECT_EQ(l2.g.node_count(), 3u);  // C_SPATH1 keeps the second separate
}

TEST(OpsEdgeTest, CompressRespectsTouchOnlyAtL3) {
  auto build = [](RsgBuilder& b) {
    const NodeRef h = b.node();
    const NodeRef a = b.node();
    const NodeRef c = b.node();
    b.pvar("x", h);
    b.link(h, "nxt", a).link(h, "nxt", c);
    b.link(a, "nxt", c).link(c, "nxt", a);  // same component
    for (const NodeRef n : {a, c}) {
      b.pos_selin(n, "nxt");
      b.pos_selout(n, "nxt");
    }
    b.touch(a, "p");
  };
  RsgBuilder l2;
  build(l2);
  compress(l2.g, kL2);
  // L2 merges only if SPATH1 allows: both are one step from x via nxt.
  EXPECT_EQ(l2.g.node_count(), 2u);

  RsgBuilder l3(l2.interner_ptr());
  build(l3);
  compress(l3.g, kL3);
  EXPECT_EQ(l3.g.node_count(), 3u);  // TOUCH difference blocks the merge
}

TEST(OpsEdgeTest, JoinEmptyGraphs) {
  Rsg a;
  Rsg b;
  EXPECT_TRUE(compatible(a, b, kL1));
  const Rsg joined = join(a, b, kL1);
  EXPECT_EQ(joined.node_count(), 0u);
}

TEST(OpsEdgeTest, PruneEmptyGraphFeasible) {
  Rsg g;
  EXPECT_TRUE(prune(g));
}

TEST(OpsEdgeTest, CoarsenEmptyAndSingleton) {
  Rsg g;
  coarsen(g, kL1);
  EXPECT_EQ(g.node_count(), 0u);
  RsgBuilder b;
  b.pvar("x", b.node());
  coarsen(b.g, kL1);
  EXPECT_EQ(b.g.node_count(), 1u);
}

TEST(OpsEdgeTest, ForceJoinRequiresAliasEquality) {
  // force_join on alias-different graphs is a programming error upstream;
  // the widening layer guards it with alias_equal. Verify the guard's
  // building block here.
  RsgBuilder a;
  a.pvar("x", a.node());
  RsgBuilder b(a.interner_ptr());
  b.pvar("y", b.node());
  EXPECT_FALSE(alias_equal(a.g, b.g));
}

TEST(OpsEdgeTest, FingerprintOfWidenedFoldIsStable) {
  // coarsen is deterministic: applying it twice yields an isomorphic graph.
  RsgBuilder b;
  const NodeRef h = b.node();
  NodeRef prev = h;
  for (int i = 0; i < 4; ++i) {
    const NodeRef n = b.node(Cardinality::kMany);
    b.link(prev, "nxt", n);
    prev = n;
  }
  b.pvar("x", h);
  Rsg once = b.g;
  coarsen(once, kL1);
  Rsg twice = once;
  coarsen(twice, kL1);
  EXPECT_TRUE(rsg_equal(once, twice));
}

}  // namespace
}  // namespace psa::rsg
