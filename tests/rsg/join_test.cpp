// ALIAS / COMPATIBLE / JOIN (§4, §4.3) and the force-join widening.
#include <gtest/gtest.h>

#include "rsg/ops.hpp"
#include "testing/rsg_builder.hpp"

namespace psa::rsg {
namespace {

using psa::testing::RsgBuilder;

constexpr LevelPolicy kL1{AnalysisLevel::kL1};

TEST(AliasEqualTest, SameBindingsEqual) {
  RsgBuilder a;
  a.pvar("x", a.node()).pvar("y", a.node());
  RsgBuilder b(a.interner_ptr());
  b.pvar("x", b.node()).pvar("y", b.node());
  EXPECT_TRUE(alias_equal(a.g, b.g));
}

TEST(AliasEqualTest, DifferentBoundSetsDiffer) {
  RsgBuilder a;
  a.pvar("x", a.node());
  RsgBuilder b(a.interner_ptr());
  b.pvar("y", b.node());
  EXPECT_FALSE(alias_equal(a.g, b.g));
}

TEST(AliasEqualTest, PartitionMatters) {
  // In a, x and y alias; in b they do not.
  RsgBuilder a;
  const NodeRef n = a.node();
  a.pvar("x", n).pvar("y", n);
  RsgBuilder b(a.interner_ptr());
  b.pvar("x", b.node()).pvar("y", b.node());
  EXPECT_FALSE(alias_equal(a.g, b.g));
}

TEST(CompatibleTest, RequiresPerPvarNodeCompatibility) {
  RsgBuilder a;
  const NodeRef na = a.node();
  a.pvar("x", na);
  a.shared(na);
  RsgBuilder b(a.interner_ptr());
  b.pvar("x", b.node());
  EXPECT_TRUE(alias_equal(a.g, b.g));
  EXPECT_FALSE(compatible(a.g, b.g, kL1));  // SHARED differs on x's node
}

TEST(CompatibleTest, IdenticalShapesCompatible) {
  auto make = [](RsgBuilder& b) {
    const NodeRef h = b.node();
    const NodeRef t = b.node(Cardinality::kMany);
    b.pvar("x", h);
    b.link(h, "nxt", t).selout(h, "nxt").selin(t, "nxt");
  };
  RsgBuilder a;
  make(a);
  RsgBuilder b(a.interner_ptr());
  make(b);
  EXPECT_TRUE(compatible(a.g, b.g, kL1));
}

TEST(JoinTest, JoinOfIdenticalIsIsomorphic) {
  auto make = [](RsgBuilder& b) {
    const NodeRef h = b.node();
    const NodeRef t = b.node(Cardinality::kMany);
    b.pvar("x", h);
    b.link(h, "nxt", t).selout(h, "nxt").selin(t, "nxt");
    b.link(t, "nxt", t).pos_selout(t, "nxt");
  };
  RsgBuilder a;
  make(a);
  RsgBuilder b(a.interner_ptr());
  make(b);
  const Rsg joined = join(a.g, b.g, kL1);
  EXPECT_EQ(joined.node_count(), 2u);
  EXPECT_NE(joined.pvar_target(a.sym("x")), kNoNode);
}

TEST(JoinTest, OneAndTwoElementListsAreIncompatible) {
  // {x -> n} vs {x -> h -nxt-> t}: x's node definitely has nxt in one
  // configuration and definitely lacks it in the other — C_REFPAT keeps
  // them apart and the RSRSG holds both (exactly what the engine's sll
  // result shows: empty/one/longer lists as separate member graphs).
  RsgBuilder a;
  const NodeRef n = a.node();
  a.pvar("x", n);
  RsgBuilder b(a.interner_ptr());
  const NodeRef h = b.node();
  const NodeRef t = b.node();
  b.pvar("x", h);
  b.link(h, "nxt", t).selout(h, "nxt").selin(t, "nxt");
  EXPECT_TRUE(alias_equal(a.g, b.g));
  EXPECT_FALSE(compatible(a.g, b.g, kL1));
}

TEST(JoinTest, TwoAndThreeElementListsJoin) {
  // {x -> h -nxt-> t} joined with {x -> h' -nxt-> m -nxt-> t'}: the heads
  // and the lasts merge; the middle stays separate (its definite selout
  // cannot cover the last's).
  RsgBuilder a;
  const NodeRef h1 = a.node();
  const NodeRef t1 = a.node();
  a.pvar("x", h1);
  a.link(h1, "nxt", t1).selout(h1, "nxt").selin(t1, "nxt");

  RsgBuilder b(a.interner_ptr());
  const NodeRef h2 = b.node();
  const NodeRef m2 = b.node();
  const NodeRef t2 = b.node();
  b.pvar("x", h2);
  b.link(h2, "nxt", m2).selout(h2, "nxt").selin(m2, "nxt");
  b.link(m2, "nxt", t2).selout(m2, "nxt").selin(t2, "nxt");

  ASSERT_TRUE(compatible(a.g, b.g, kL1));
  const Rsg joined = join(a.g, b.g, kL1);
  const NodeRef xn = joined.pvar_target(a.sym("x"));
  ASSERT_NE(xn, kNoNode);
  EXPECT_TRUE(joined.props(xn).selout.contains(a.sym("nxt")));
  EXPECT_EQ(joined.node_count(), 3u);
}

TEST(JoinTest, CardinalityOnePreservedAcrossConfigs) {
  RsgBuilder a;
  a.pvar("x", a.node(Cardinality::kOne));
  RsgBuilder b(a.interner_ptr());
  b.pvar("x", b.node(Cardinality::kOne));
  const Rsg joined = join(a.g, b.g, kL1);
  EXPECT_EQ(joined.props(joined.pvar_target(a.sym("x"))).cardinality,
            Cardinality::kOne);
}

TEST(JoinTest, LinksOfBothInputsPreserved) {
  RsgBuilder a;
  const NodeRef ha = a.node();
  const NodeRef ta = a.node();
  a.pvar("x", ha).link(ha, "lft", ta);
  RsgBuilder b(a.interner_ptr());
  const NodeRef hb = b.node();
  const NodeRef tb = b.node();
  b.pvar("x", hb).link(hb, "rgt", tb);
  const Rsg joined = join(a.g, b.g, kL1);
  const NodeRef xn = joined.pvar_target(a.sym("x"));
  EXPECT_FALSE(joined.sel_targets(xn, a.sym("lft")).empty());
  EXPECT_FALSE(joined.sel_targets(xn, a.sym("rgt")).empty());
}

TEST(ForceJoinTest, FusesIncompatibleAliasEqualGraphs) {
  RsgBuilder a;
  const NodeRef na = a.node();
  a.pvar("x", na);
  a.shared(na);  // makes the graphs COMPATIBLE-incompatible
  RsgBuilder b(a.interner_ptr());
  b.pvar("x", b.node());
  ASSERT_FALSE(compatible(a.g, b.g, kL1));
  const Rsg fused = force_join(a.g, b.g, kL1);
  const NodeRef xn = fused.pvar_target(a.sym("x"));
  ASSERT_NE(xn, kNoNode);
  // Conservative direction: SHARED grows.
  EXPECT_TRUE(fused.props(xn).shared);
}

TEST(ForceJoinTest, TouchIntersects) {
  RsgBuilder a;
  const NodeRef na = a.node();
  a.pvar("x", na).touch(na, "p").touch(na, "q");
  RsgBuilder b(a.interner_ptr());
  const NodeRef nb = b.node();
  b.pvar("x", nb).touch(nb, "p");
  const Rsg fused = force_join(a.g, b.g, LevelPolicy{AnalysisLevel::kL3});
  const NodeRef xn = fused.pvar_target(a.sym("x"));
  EXPECT_TRUE(fused.props(xn).touch.contains(a.sym("p")));
  EXPECT_FALSE(fused.props(xn).touch.contains(a.sym("q")));
}

TEST(CoarsenTest, BoundsByTypeAndSpath0) {
  RsgBuilder b;
  const NodeRef h = b.node();
  // Five same-typed deep nodes with assorted refpats.
  NodeRef prev = h;
  for (int i = 0; i < 5; ++i) {
    const NodeRef n = b.node(i % 2 == 0 ? Cardinality::kOne
                                        : Cardinality::kMany);
    b.link(prev, "nxt", n);
    if (i % 2 == 0) b.pos_selin(n, "prv");
    prev = n;
  }
  b.pvar("x", h);
  coarsen(b.g, kL1);
  // All deep nodes share (type, spath0 = {}): at most the pvar node plus one
  // summary remain... except the node one step from x may stay distinct via
  // compress-level sharing bits; allow a small bound.
  EXPECT_LE(b.g.node_count(), 3u);
  EXPECT_NE(b.g.pvar_target(b.sym("x")), kNoNode);
}

TEST(CoarsenTest, PvarNodesKeepIdentity) {
  RsgBuilder b;
  const NodeRef h1 = b.node();
  const NodeRef h2 = b.node();
  b.pvar("x", h1).pvar("y", h2);
  b.link(h1, "nxt", h2);
  coarsen(b.g, kL1);
  EXPECT_NE(b.g.pvar_target(b.sym("x")), b.g.pvar_target(b.sym("y")));
}

}  // namespace
}  // namespace psa::rsg
