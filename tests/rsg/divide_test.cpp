// DIVIDE (§4.1): one graph per x->sel target plus the NULL variant.
#include <gtest/gtest.h>

#include "rsg/ops.hpp"
#include "testing/rsg_builder.hpp"

namespace psa::rsg {
namespace {

using psa::testing::RsgBuilder;

TEST(DivideTest, UnboundPvarYieldsNothing) {
  RsgBuilder b;
  b.node();
  const auto parts = divide(b.g, b.sym("x"), b.sym("nxt"));
  EXPECT_TRUE(parts.empty());
}

TEST(DivideTest, NoLinkDefiniteOutYieldsNothing) {
  // selout says nxt definitely exists but the graph has no such link: the
  // configuration is contradictory.
  RsgBuilder b;
  const NodeRef a = b.node();
  b.pvar("x", a).selout(a, "nxt");
  const auto parts = divide(b.g, b.sym("x"), b.sym("nxt"));
  EXPECT_TRUE(parts.empty());
}

TEST(DivideTest, NoLinkNoSeloutYieldsNullVariantOnly) {
  RsgBuilder b;
  const NodeRef a = b.node();
  b.pvar("x", a);
  const auto parts = divide(b.g, b.sym("x"), b.sym("nxt"));
  ASSERT_EQ(parts.size(), 1u);
  const NodeRef n = parts[0].pvar_target(b.sym("x"));
  EXPECT_TRUE(parts[0].sel_targets(n, b.sym("nxt")).empty());
}

TEST(DivideTest, TwoTargetsDefiniteYieldTwoVariants) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  const NodeRef d = b.node();
  b.pvar("x", a).pvar("c", c).pvar("d", d);
  b.link(a, "nxt", c).link(a, "nxt", d);
  b.selout(a, "nxt");
  const auto parts = divide(b.g, b.sym("x"), b.sym("nxt"));
  ASSERT_EQ(parts.size(), 2u);
  for (const Rsg& part : parts) {
    const NodeRef n = part.pvar_target(b.sym("x"));
    EXPECT_EQ(part.sel_targets(n, b.sym("nxt")).size(), 1u);
    // The chosen link becomes definite.
    EXPECT_TRUE(part.props(n).selout.contains(b.sym("nxt")));
  }
}

TEST(DivideTest, PossibleOutAddsNullVariant) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  b.pvar("x", a).pvar("y", c);
  b.link(a, "nxt", c);
  b.pos_selout(a, "nxt");
  const auto parts = divide(b.g, b.sym("x"), b.sym("nxt"));
  ASSERT_EQ(parts.size(), 2u);
  int with_link = 0;
  int without_link = 0;
  for (const Rsg& part : parts) {
    const NodeRef n = part.pvar_target(b.sym("x"));
    if (part.sel_targets(n, b.sym("nxt")).empty()) {
      ++without_link;
      EXPECT_FALSE(part.props(n).pos_selout.contains(b.sym("nxt")));
    } else {
      ++with_link;
    }
  }
  EXPECT_EQ(with_link, 1);
  EXPECT_EQ(without_link, 1);
}

TEST(DivideTest, OtherSelectorsUntouched) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  const NodeRef d = b.node();
  b.pvar("x", a).pvar("y", d);
  b.link(a, "nxt", c).link(a, "prv", d);
  b.selout(a, "nxt").selout(a, "prv");
  const auto parts = divide(b.g, b.sym("x"), b.sym("nxt"));
  ASSERT_EQ(parts.size(), 1u);
  const NodeRef n = parts[0].pvar_target(b.sym("x"));
  EXPECT_EQ(parts[0].sel_targets(n, b.sym("prv")).size(), 1u);
}

TEST(DivideTest, UnchosenTargetMayBePruned) {
  // The unchosen target's definite selin loses its only witness: that
  // variant removes the node entirely (Fig. 1's n2 removal in rsg''_2).
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node(Cardinality::kMany);
  const NodeRef d = b.node();
  b.pvar("x", a);
  b.link(a, "nxt", c).link(a, "nxt", d);
  b.pos_selout(a, "nxt");  // even allows the null variant
  b.selin(c, "nxt");
  b.selin(d, "nxt");
  const auto parts = divide(b.g, b.sym("x"), b.sym("nxt"));
  // Variants: null (both c and d die), choose-c (d dies), choose-d (c dies).
  ASSERT_EQ(parts.size(), 3u);
  for (const Rsg& part : parts) {
    EXPECT_LE(part.node_count(), 2u);
  }
}

TEST(DivideTest, InputGraphUnmodified) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  const NodeRef d = b.node();
  b.pvar("x", a).pvar("c", c).pvar("d", d);
  b.link(a, "nxt", c).link(a, "nxt", d);
  b.selout(a, "nxt");
  (void)divide(b.g, b.sym("x"), b.sym("nxt"));
  EXPECT_EQ(b.g.sel_targets(a, b.sym("nxt")).size(), 2u);
}

}  // namespace
}  // namespace psa::rsg
