#include "rsg/level.hpp"

#include <gtest/gtest.h>

namespace psa::rsg {
namespace {

TEST(LevelTest, Names) {
  EXPECT_EQ(to_string(AnalysisLevel::kL1), "L1");
  EXPECT_EQ(to_string(AnalysisLevel::kL2), "L2");
  EXPECT_EQ(to_string(AnalysisLevel::kL3), "L3");
}

TEST(LevelTest, PolicyKnobs) {
  // L1: C_SPATH0 only, no TOUCH. L2: C_SPATH1. L3: C_SPATH1 + TOUCH.
  constexpr LevelPolicy l1{AnalysisLevel::kL1};
  constexpr LevelPolicy l2{AnalysisLevel::kL2};
  constexpr LevelPolicy l3{AnalysisLevel::kL3};
  static_assert(!l1.use_spath1() && !l1.use_touch());
  static_assert(l2.use_spath1() && !l2.use_touch());
  static_assert(l3.use_spath1() && l3.use_touch());
  SUCCEED();
}

TEST(LevelTest, DefaultPolicyIsL1) {
  constexpr LevelPolicy def{};
  static_assert(def.level == AnalysisLevel::kL1);
  SUCCEED();
}

}  // namespace
}  // namespace psa::rsg
