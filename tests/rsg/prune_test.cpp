// PRUNE (§4.2): refpat node pruning, cycle-link link pruning, share-based
// pruning, sharing refinement, infeasibility detection.
#include <gtest/gtest.h>

#include "rsg/ops.hpp"
#include "testing/rsg_builder.hpp"

namespace psa::rsg {
namespace {

using psa::testing::RsgBuilder;

TEST(RefineSharingTest, ClearsUnsupportedShared) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  b.pvar("x", a).link(a, "nxt", c);
  b.shared(c);
  EXPECT_TRUE(refine_sharing(b.g));
  EXPECT_FALSE(b.g.props(c).shared);
}

TEST(RefineSharingTest, KeepsSupportedShared) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef d = b.node();
  const NodeRef c = b.node();
  b.pvar("x", a).pvar("y", d);
  b.link(a, "nxt", c).link(d, "nxt", c);
  b.shared(c).shsel(c, "nxt");
  refine_sharing(b.g);
  EXPECT_TRUE(b.g.props(c).shared);
  EXPECT_TRUE(b.g.props(c).shsel.contains(b.sym("nxt")));
}

TEST(RefineSharingTest, SummarySourceBlocksClearing) {
  RsgBuilder b;
  const NodeRef m = b.node(Cardinality::kMany);
  const NodeRef c = b.node();
  b.pvar("x", m).link(m, "nxt", c);
  b.shsel(c, "nxt");
  refine_sharing(b.g);
  EXPECT_TRUE(b.g.props(c).shsel.contains(b.sym("nxt")));
}

TEST(PruneTest, NPruneRemovesUnsatisfiableSelout) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  b.pvar("x", a).link(a, "nxt", c);
  b.selout(c, "nxt");  // definite out-selector with no link: impossible node
  EXPECT_TRUE(prune(b.g));
  EXPECT_FALSE(b.g.alive(c));
  EXPECT_TRUE(b.g.alive(a));
}

TEST(PruneTest, NPruneRemovesUnsatisfiableSelin) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  b.pvar("x", a).link(a, "nxt", c);
  b.selin(c, "prv");  // nothing references c via prv
  EXPECT_TRUE(prune(b.g));
  EXPECT_FALSE(b.g.alive(c));
}

TEST(PruneTest, PossibleSetsDoNotPrune) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  b.pvar("x", a).link(a, "nxt", c);
  b.pos_selout(c, "nxt").pos_selin(c, "prv");
  EXPECT_TRUE(prune(b.g));
  EXPECT_TRUE(b.g.alive(c));
}

TEST(PruneTest, InfeasibleWhenPvarNodePruned) {
  RsgBuilder b;
  const NodeRef a = b.node();
  b.pvar("x", a);
  b.selout(a, "nxt");  // x's node cannot exist
  EXPECT_FALSE(prune(b.g));
}

TEST(PruneTest, CycleLinkPrunesContradictedLink) {
  // a has cycle link <nxt, prv> but c does not point back via prv: the link
  // a -nxt-> c is impossible.
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  const NodeRef d = b.node();
  b.pvar("x", a).pvar("y", c).pvar("z", d);
  b.link(a, "nxt", c).link(a, "nxt", d);
  b.link(d, "prv", a);
  b.cyclelink(a, "nxt", "prv");
  EXPECT_TRUE(prune(b.g));
  EXPECT_FALSE(b.g.has_link(a, b.sym("nxt"), c));
  EXPECT_TRUE(b.g.has_link(a, b.sym("nxt"), d));
}

TEST(PruneTest, SharePruneRemovesSecondSelLink) {
  // t is not SHSEL-shared via nxt and a's link is definite: the summary's
  // may-link to t is spurious (the paper's n2 -nxt-> n3 removal).
  RsgBuilder b;
  const NodeRef a = b.node(Cardinality::kOne);
  const NodeRef m = b.node(Cardinality::kMany);
  const NodeRef t = b.node(Cardinality::kOne);
  b.pvar("x", a);
  b.link(a, "nxt", t).selout(a, "nxt");
  b.link(a, "prv", m);  // keep m reachable
  b.link(m, "nxt", t);
  b.selin(t, "nxt");
  EXPECT_TRUE(prune(b.g, PruneOptions{.share_pruning = true}));
  EXPECT_FALSE(b.g.has_link(m, b.sym("nxt"), t));
  EXPECT_TRUE(b.g.has_link(a, b.sym("nxt"), t));
}

TEST(PruneTest, SharePruneDisabledKeepsLink) {
  RsgBuilder b;
  const NodeRef a = b.node(Cardinality::kOne);
  const NodeRef m = b.node(Cardinality::kMany);
  const NodeRef t = b.node(Cardinality::kOne);
  b.pvar("x", a);
  b.link(a, "nxt", t).selout(a, "nxt");
  b.link(a, "prv", m);
  b.link(m, "nxt", t);
  b.selin(t, "nxt");
  EXPECT_TRUE(prune(b.g, PruneOptions{.share_pruning = false}));
  EXPECT_TRUE(b.g.has_link(m, b.sym("nxt"), t));
}

TEST(PruneTest, SharePruneRespectsShselTrue) {
  // When t *is* possibly shared via nxt, both links must stay.
  RsgBuilder b;
  const NodeRef a = b.node(Cardinality::kOne);
  const NodeRef m = b.node(Cardinality::kMany);
  const NodeRef t = b.node(Cardinality::kOne);
  b.pvar("x", a);
  b.link(a, "nxt", t).selout(a, "nxt");
  b.link(a, "prv", m);
  b.link(m, "nxt", t);
  b.selin(t, "nxt").shsel(t, "nxt").shared(t);
  EXPECT_TRUE(prune(b.g));
  EXPECT_TRUE(b.g.has_link(m, b.sym("nxt"), t));
}

TEST(PruneTest, SharedFalseRuleCutsCrossSelectorLinks) {
  // SHARED(t) = false allows at most one heap reference in total; a definite
  // nxt-link makes the summary's ref-link spurious.
  RsgBuilder b;
  const NodeRef a = b.node(Cardinality::kOne);
  const NodeRef m = b.node(Cardinality::kMany);
  const NodeRef t = b.node(Cardinality::kOne);
  b.pvar("x", a);
  b.link(a, "nxt", t).selout(a, "nxt");
  b.link(a, "aux", m);
  b.link(m, "ref", t);
  EXPECT_TRUE(prune(b.g));
  EXPECT_FALSE(b.g.has_link(m, b.sym("ref"), t));
}

TEST(PruneTest, IterativeCascade) {
  // Removing one link makes a node unreachable, whose removal must cascade.
  RsgBuilder b;
  const NodeRef a = b.node(Cardinality::kOne);
  const NodeRef c = b.node(Cardinality::kOne);
  const NodeRef d = b.node(Cardinality::kOne);
  b.pvar("x", a);
  b.link(a, "nxt", c);
  b.link(c, "nxt", d);
  b.cyclelink(a, "nxt", "prv");  // c does not point back: a->c dies
  EXPECT_TRUE(prune(b.g));
  // c and d both unreachable afterwards.
  EXPECT_FALSE(b.g.alive(c));
  EXPECT_FALSE(b.g.alive(d));
  EXPECT_TRUE(b.g.alive(a));
}

TEST(PruneTest, StableGraphUntouched) {
  RsgBuilder b;
  const NodeRef a = b.node(Cardinality::kOne);
  const NodeRef c = b.node(Cardinality::kMany);
  b.pvar("x", a);
  b.link(a, "nxt", c).selout(a, "nxt").selin(c, "nxt");
  b.link(c, "nxt", c).pos_selout(c, "nxt");
  const std::size_t links = b.g.link_count();
  EXPECT_TRUE(prune(b.g));
  EXPECT_EQ(b.g.link_count(), links);
  EXPECT_EQ(b.g.node_count(), 2u);
}

}  // namespace
}  // namespace psa::rsg
