// Compatibility functions: C_SPATH / C_REFPAT / C_NODES / C_NODES_RSG.
#include "rsg/compat.hpp"

#include <gtest/gtest.h>

#include "testing/rsg_builder.hpp"

namespace psa::rsg {
namespace {

using psa::testing::RsgBuilder;

constexpr LevelPolicy kL1{AnalysisLevel::kL1};
constexpr LevelPolicy kL2{AnalysisLevel::kL2};
constexpr LevelPolicy kL3{AnalysisLevel::kL3};

TEST(CSpathTest, L1ComparesZeroLengthOnly) {
  RsgBuilder b;
  const NodeRef h = b.node();
  const NodeRef second = b.node();
  const NodeRef third = b.node();
  b.pvar("p", h).link(h, "nxt", second).link(second, "nxt", third);

  const auto ctx = compute_compat_contexts(b.g);
  // second (1 step from p) and third (2 steps): same zero-length SPATH (both
  // empty), so L1 considers them compatible.
  EXPECT_TRUE(c_spath(ctx[second], ctx[third], kL1));
  // L2 additionally needs a shared one-length path; second has <p,nxt>,
  // third has none.
  EXPECT_FALSE(c_spath(ctx[second], ctx[third], kL2));
  // The head (pvar-pointed) never matches the others at any level.
  EXPECT_FALSE(c_spath(ctx[h], ctx[second], kL1));
}

TEST(CSpathTest, L2VacuouslyCompatibleWhenBothDeep) {
  RsgBuilder b;
  const NodeRef h = b.node();
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  const NodeRef d = b.node();
  b.pvar("p", h).link(h, "nxt", a).link(a, "nxt", c).link(c, "nxt", d);
  const auto ctx = compute_compat_contexts(b.g);
  // c and d are both >= 2 steps away: one-length sets both empty.
  EXPECT_TRUE(c_spath(ctx[c], ctx[d], kL2));
}

TEST(CSpathTest, L2SharedOneLengthPath) {
  RsgBuilder b;
  const NodeRef h = b.node();
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  b.pvar("p", h).link(h, "nxt", a).link(h, "nxt", c);
  const auto ctx = compute_compat_contexts(b.g);
  // Both reached via <p,nxt>: share a one-length path.
  EXPECT_TRUE(c_spath(ctx[a], ctx[c], kL2));
}

TEST(CRefpatTest, EqualPatternsAreCompatible) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  b.selin(a, "nxt").selout(a, "nxt");
  b.selin(c, "nxt").selout(c, "nxt");
  EXPECT_TRUE(c_refpat(b.g.props(a), b.g.props(c)));
}

TEST(CRefpatTest, DefiniteVsImpossibleSeparates) {
  // A list's last element (selout = {prv}) vs its middles (selout =
  // {nxt, prv}): the middles definitely have nxt, the last cannot.
  RsgBuilder b;
  const NodeRef middle = b.node();
  const NodeRef last = b.node();
  b.selout(middle, "nxt").selout(middle, "prv");
  b.selout(last, "prv");
  EXPECT_FALSE(c_refpat(b.g.props(middle), b.g.props(last)));
}

TEST(CRefpatTest, DefiniteCoveredByPossibleIsCompatible) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  b.selout(a, "nxt");
  b.pos_selout(c, "nxt");  // c possibly has nxt: compatible with definite
  EXPECT_TRUE(c_refpat(b.g.props(a), b.g.props(c)));
}

TEST(CNodesTest, RequiresSameType) {
  RsgBuilder b;
  const NodeRef a = b.node(Cardinality::kOne, /*type=*/0);
  const NodeRef c = b.node(Cardinality::kOne, /*type=*/1);
  const auto ctx = compute_compat_contexts(b.g);
  EXPECT_FALSE(c_nodes(b.g.props(a), ctx[a], b.g.props(c), ctx[c], kL1));
}

TEST(CNodesTest, RequiresSameSharing) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  b.shared(a);
  const auto ctx = compute_compat_contexts(b.g);
  EXPECT_FALSE(c_nodes(b.g.props(a), ctx[a], b.g.props(c), ctx[c], kL1));
}

TEST(CNodesTest, RequiresSameShsel) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  b.shsel(a, "nxt");
  const auto ctx = compute_compat_contexts(b.g);
  EXPECT_FALSE(c_nodes(b.g.props(a), ctx[a], b.g.props(c), ctx[c], kL1));
}

TEST(CNodesTest, TouchComparedOnlyAtL3) {
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  b.touch(a, "p");
  const auto ctx = compute_compat_contexts(b.g);
  EXPECT_TRUE(c_nodes(b.g.props(a), ctx[a], b.g.props(c), ctx[c], kL1));
  EXPECT_TRUE(c_nodes(b.g.props(a), ctx[a], b.g.props(c), ctx[c], kL2));
  EXPECT_FALSE(c_nodes(b.g.props(a), ctx[a], b.g.props(c), ctx[c], kL3));
}

TEST(CNodesRsgTest, AddsStructureRequirement) {
  // Two isolated nodes (distinct components) are C_NODES-compatible but not
  // C_NODES_RSG-compatible.
  RsgBuilder b;
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  const auto ctx = compute_compat_contexts(b.g);
  EXPECT_TRUE(c_nodes(b.g.props(a), ctx[a], b.g.props(c), ctx[c], kL1));
  EXPECT_FALSE(c_nodes_rsg(b.g.props(a), ctx[a], b.g.props(c), ctx[c], kL1));
}

TEST(CNodesRsgTest, SameComponentCompatible) {
  RsgBuilder b;
  const NodeRef h = b.node();
  const NodeRef a = b.node();
  const NodeRef c = b.node();
  const NodeRef d = b.node();
  b.pvar("p", h).link(h, "nxt", a).link(a, "nxt", c).link(c, "nxt", d);
  b.selin(c, "nxt").selin(d, "nxt");
  b.selout(c, "nxt");
  b.pos_selout(d, "nxt");
  const auto ctx = compute_compat_contexts(b.g);
  EXPECT_TRUE(c_nodes_rsg(b.g.props(c), ctx[c], b.g.props(d), ctx[d], kL1));
}

}  // namespace
}  // namespace psa::rsg
