// Call graph construction and Tarjan SCC condensation over lowered CFGs.
#include "ipa/callgraph.hpp"

#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"

namespace psa::ipa {
namespace {

std::vector<CallGraphNode> nodes_of(const analysis::ProgramAnalysis& program) {
  std::vector<CallGraphNode> nodes;
  for (const auto& fc : program.unit_cfgs) nodes.push_back({fc.name, &fc.cfg});
  return nodes;
}

std::size_t index_of(const analysis::ProgramAnalysis& program,
                     std::string_view name) {
  const support::Symbol sym = program.symbol(name);
  for (std::size_t i = 0; i < program.unit_cfgs.size(); ++i) {
    if (program.unit_cfgs[i].name == sym) return i;
  }
  ADD_FAILURE() << "function not lowered: " << name;
  return static_cast<std::size_t>(-1);
}

/// Position of the SCC containing function index `idx` in the bottom-up
/// order.
std::size_t scc_position(const CallGraph& cg, std::size_t idx) {
  for (std::size_t k = 0; k < cg.sccs().size(); ++k) {
    for (const std::size_t v : cg.sccs()[k]) {
      if (v == idx) return k;
    }
  }
  ADD_FAILURE() << "function " << idx << " in no SCC";
  return static_cast<std::size_t>(-1);
}

TEST(CallGraphTest, StraightLineChainComesOutCalleeFirst) {
  const auto program = analysis::prepare(R"(
    struct node { struct node *nxt; };
    struct node *leaf(struct node *l) { return l; }
    struct node *mid(struct node *l) { struct node *r; r = leaf(l); return r; }
    void main() {
      struct node *p;
      p = NULL;
      p = mid(p);
    }
  )");
  ASSERT_EQ(program.unit_cfgs.size(), 3u);
  const CallGraph cg(nodes_of(program));
  ASSERT_EQ(cg.sccs().size(), 3u);
  // Bottom-up: every SCC follows the SCCs of its callees.
  EXPECT_LT(scc_position(cg, index_of(program, "leaf")),
            scc_position(cg, index_of(program, "mid")));
  EXPECT_LT(scc_position(cg, index_of(program, "mid")),
            scc_position(cg, index_of(program, "main")));
  for (const auto& scc : cg.sccs()) EXPECT_FALSE(cg.recursive(scc));
}

TEST(CallGraphTest, SelfRecursionIsASingletonRecursiveScc) {
  const auto program = analysis::prepare(R"(
    struct node { struct node *nxt; };
    struct node *walk(struct node *l) {
      struct node *r;
      if (l == NULL) { return NULL; }
      r = walk(l->nxt);
      return r;
    }
    void main() {
      struct node *p;
      p = malloc(struct node);
      p = walk(p);
    }
  )");
  const CallGraph cg(nodes_of(program));
  const std::size_t walk = index_of(program, "walk");
  bool found = false;
  for (const auto& scc : cg.sccs()) {
    if (scc.size() == 1 && scc.front() == walk) {
      EXPECT_TRUE(cg.recursive(scc));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CallGraphTest, MutualRecursionFusesIntoOneScc) {
  const auto program = analysis::prepare(R"(
    struct node { struct node *nxt; };
    struct node *odd(struct node *l) {
      struct node *r;
      if (l == NULL) { return NULL; }
      r = even(l->nxt);
      return r;
    }
    struct node *even(struct node *l) {
      struct node *r;
      if (l == NULL) { return NULL; }
      r = odd(l->nxt);
      return r;
    }
    void main() {
      struct node *p;
      p = NULL;
      p = odd(p);
    }
  )");
  const CallGraph cg(nodes_of(program));
  const std::size_t odd = index_of(program, "odd");
  const std::size_t even = index_of(program, "even");
  bool fused = false;
  for (const auto& scc : cg.sccs()) {
    if (scc.size() == 2) {
      EXPECT_TRUE(cg.recursive(scc));
      EXPECT_TRUE((scc[0] == std::min(odd, even) &&
                   scc[1] == std::max(odd, even)));
      fused = true;
    }
  }
  EXPECT_TRUE(fused);
  // main's SCC comes after the recursive pair.
  EXPECT_GT(scc_position(cg, index_of(program, "main")),
            scc_position(cg, odd));
}

TEST(CallGraphTest, DuplicateCallSitesCollapseToOneEdge) {
  const auto program = analysis::prepare(R"(
    struct node { struct node *nxt; };
    struct node *mk() { struct node *t; t = malloc(struct node); return t; }
    void main() {
      struct node *a; struct node *b;
      a = mk();
      b = mk();
    }
  )");
  const CallGraph cg(nodes_of(program));
  const std::size_t main_i = index_of(program, "main");
  ASSERT_LT(main_i, cg.edges().size());
  EXPECT_EQ(cg.edges()[main_i].size(), 1u);
}

TEST(CallGraphTest, DeepCallChainDoesNotOverflowTheStack) {
  // A 200k-deep straight chain f0 -> f1 -> ... would blow the native stack
  // under a recursive Tarjan; the iterative walk must condense it and keep
  // the bottom-up order (the chain's leaf comes out first).
  constexpr std::size_t kDepth = 200000;
  std::vector<std::vector<std::size_t>> edges(kDepth);
  for (std::size_t i = 0; i + 1 < kDepth; ++i) edges[i].push_back(i + 1);
  const CallGraph cg(std::move(edges));
  ASSERT_EQ(cg.sccs().size(), kDepth);
  EXPECT_EQ(cg.sccs().front().front(), kDepth - 1);
  EXPECT_EQ(cg.sccs().back().front(), 0u);
  for (const auto& scc : cg.sccs()) EXPECT_FALSE(cg.recursive(scc));
}

TEST(CallGraphTest, DeepChainIntoACycleCondensesIteratively) {
  // Same depth, but the chain lands in a 2-cycle at the bottom: the cycle
  // must fuse into one recursive SCC and still come out first.
  constexpr std::size_t kDepth = 100000;
  std::vector<std::vector<std::size_t>> edges(kDepth);
  for (std::size_t i = 0; i + 1 < kDepth; ++i) edges[i].push_back(i + 1);
  edges[kDepth - 1].push_back(kDepth - 2);  // close the bottom cycle
  const CallGraph cg(std::move(edges));
  ASSERT_EQ(cg.sccs().size(), kDepth - 1);
  ASSERT_EQ(cg.sccs().front().size(), 2u);
  EXPECT_TRUE(cg.recursive(cg.sccs().front()));
  EXPECT_EQ(cg.sccs().back().front(), 0u);
}

}  // namespace
}  // namespace psa::ipa
