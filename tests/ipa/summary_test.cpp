// Function-summary computation and the kCall transfer, end to end: clean
// in-unit calls are summarized (no havoc, full checker confidence), unusable
// summaries fall back to the sound havoc transfer, and summarized results
// stay sound against the concrete interpreter at every level.
#include "ipa/summarize.hpp"

#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "checker/checker.hpp"
#include "support/metrics.hpp"
#include "testing/concrete_oracle.hpp"

namespace psa::ipa {
namespace {

using analysis::AnalysisResult;
using analysis::Options;
using analysis::ProgramAnalysis;

/// The multi-function list pipeline: build, fold, release — every call is a
/// clean in-unit call, so nothing in this unit ever havocs.
constexpr std::string_view kListPipeline = R"(
  struct node { struct node *nxt; int val; };
  struct node *push(struct node *list) {
    struct node *t;
    t = malloc(struct node);
    t->nxt = list;
    t->val = 1;
    return t;
  }
  int sum(struct node *list) {
    struct node *p;
    int acc;
    acc = 0;
    p = list;
    while (p != NULL) {
      acc = acc + p->val;
      p = p->nxt;
    }
    return acc;
  }
  void release(struct node *list) {
    struct node *t;
    while (list != NULL) {
      t = list;
      list = list->nxt;
      free(t);
    }
  }
  void main() {
    struct node *l;
    int i;
    int total;
    l = NULL;
    i = 0;
    while (i < 3) {
      l = push(l);
      i = i + 1;
    }
    total = sum(l);
    release(l);
  }
)";

const FunctionSummary& summary_of(const SummaryTable& table,
                                  const ProgramAnalysis& program,
                                  std::string_view name) {
  const auto it = table.find(program.symbol(name));
  EXPECT_NE(it, table.end()) << "no summary for " << name;
  return it->second;
}

TEST(SummaryTest, ProjectionsMatchTheCalleesEffects) {
  const ProgramAnalysis program = analysis::prepare(kListPipeline);
  ASSERT_EQ(program.unit_cfgs.size(), 4u);
  const SummaryTable table = compute_summaries(program, {});

  // push: allocates and returns a fresh cell; the store t->nxt = list
  // writes a field of its *own* allocation, which is not a caller-visible
  // mutation.
  const FunctionSummary& push = summary_of(table, program, "push");
  ASSERT_TRUE(push.analyzed);
  EXPECT_FALSE(push.havoc_tainted);
  EXPECT_FALSE(push.mutates_heap);
  EXPECT_FALSE(push.may_free);
  EXPECT_EQ(push.ret_kinds, kRetFresh);
  EXPECT_EQ(push.alloc_types.size(), 1u);
  EXPECT_EQ(push.params.size(), 1u);

  // sum only reads; release frees argument-reachable cells.
  const FunctionSummary& sum = summary_of(table, program, "sum");
  ASSERT_TRUE(sum.analyzed);
  EXPECT_FALSE(sum.mutates_heap);
  EXPECT_FALSE(sum.may_free);
  const FunctionSummary& release = summary_of(table, program, "release");
  ASSERT_TRUE(release.analyzed);
  EXPECT_TRUE(release.may_free);
}

TEST(SummaryTest, ParamWritingCalleeIsAMutator) {
  const ProgramAnalysis program = analysis::prepare(R"(
    struct node { struct node *nxt; };
    void link(struct node *a, struct node *b) { a->nxt = b; }
    void main() {
      struct node *x; struct node *y;
      x = malloc(struct node);
      y = malloc(struct node);
      link(x, y);
    }
  )");
  const SummaryTable table = compute_summaries(program, {});
  const FunctionSummary& link = summary_of(table, program, "link");
  ASSERT_TRUE(link.analyzed);
  EXPECT_TRUE(link.mutates_heap);
  EXPECT_FALSE(link.may_free);
  EXPECT_FALSE(link.havoc_tainted);
}

TEST(SummaryTest, IdentityReturnIsParamDerivedAndNullPathIsNull) {
  const ProgramAnalysis program = analysis::prepare(R"(
    struct node { struct node *nxt; };
    struct node *second_or_null(struct node *l) {
      struct node *r;
      if (l == NULL) { return NULL; }
      r = l->nxt;
      return r;
    }
    void main() {
      struct node *p; struct node *q;
      p = malloc(struct node);
      q = second_or_null(p);
    }
  )");
  const SummaryTable table = compute_summaries(program, {});
  const FunctionSummary& f = summary_of(table, program, "second_or_null");
  ASSERT_TRUE(f.analyzed);
  EXPECT_NE(f.ret_kinds & kRetNull, 0);
  EXPECT_NE(f.ret_kinds & kRetParamDerived, 0);
  EXPECT_EQ(f.ret_kinds & kRetFresh, 0);
}

TEST(SummaryTest, RecursiveSccReachesAStableSummary) {
  const ProgramAnalysis program = analysis::prepare(R"(
    struct node { struct node *nxt; };
    struct node *last(struct node *l) {
      struct node *r;
      if (l == NULL) { return NULL; }
      if (l->nxt == NULL) { return l; }
      r = last(l->nxt);
      return r;
    }
    void main() {
      struct node *p; struct node *e;
      p = malloc(struct node);
      e = last(p);
    }
  )");
#if PSA_METRICS
  const support::MetricsRegion region;
#endif
  const SummaryTable table = compute_summaries(program, {});
  const FunctionSummary& last = summary_of(table, program, "last");
  ASSERT_TRUE(last.analyzed);
  EXPECT_NE(last.ret_kinds & kRetNull, 0);
  EXPECT_NE(last.ret_kinds & kRetParamDerived, 0);
#if PSA_METRICS
  const support::MetricsSnapshot delta = region.delta();
  // At least two Kleene passes: one that grows, one that proves stability.
  EXPECT_GE(delta[support::Counter::kSummaryFixpointIters], 2u);
  EXPECT_GE(delta[support::Counter::kSummaryComputed], 2u);
#endif
}

#if PSA_METRICS
TEST(SummaryTest, CleanUnitAnalyzesWithoutAnyHavocFallback) {
  const ProgramAnalysis program = analysis::prepare(kListPipeline);
  EXPECT_EQ(program.salvage.havoc_sites, 0u);
  const support::MetricsRegion region;
  const AnalysisResult result = analysis::analyze_program(program, {});
  ASSERT_TRUE(result.converged());
  const support::MetricsSnapshot delta = region.delta();
  EXPECT_EQ(delta[support::Counter::kCallHavocFallback], 0u);
  EXPECT_GE(delta[support::Counter::kSummaryComputed], 3u);
  EXPECT_GE(delta[support::Counter::kSummaryApplied], 3u);
  // Clean summaries taint nothing: every exit configuration keeps full
  // confidence.
  for (const rsg::Rsg& g : result.at_exit(program.cfg).graphs()) {
    EXPECT_FALSE(g.havoc());
  }
}

TEST(SummaryTest, DisablingSummariesRestoresTheHavocFallback) {
  const ProgramAnalysis program = analysis::prepare(kListPipeline);
  Options options;
  options.enable_summaries = false;
  const support::MetricsRegion region;
  const AnalysisResult result = analysis::analyze_program(program, options);
  ASSERT_TRUE(result.converged());
  const support::MetricsSnapshot delta = region.delta();
  EXPECT_EQ(delta[support::Counter::kSummaryComputed], 0u);
  EXPECT_EQ(delta[support::Counter::kSummaryApplied], 0u);
  EXPECT_GE(delta[support::Counter::kCallHavocFallback], 3u);
}

TEST(SummaryTest, OverBudgetSccFallsBackToHavocSoundly) {
  const ProgramAnalysis program = analysis::prepare(R"(
    struct node { struct node *nxt; };
    struct node *spin(struct node *l) {
      struct node *r;
      if (l == NULL) { return NULL; }
      r = spin(l->nxt);
      return r;
    }
    void main() {
      struct node *p; struct node *q;
      p = malloc(struct node);
      q = spin(p);
    }
  )");
  Options options;
  options.max_summary_iters = 0;  // the SCC can never stabilize
  const support::MetricsRegion region;
  const AnalysisResult result = analysis::analyze_program(program, options);
  ASSERT_TRUE(result.converged());
  const support::MetricsSnapshot delta = region.delta();
  EXPECT_GE(delta[support::Counter::kCallHavocFallback], 1u);
  EXPECT_EQ(delta[support::Counter::kSummaryApplied], 0u);
  // The fallback is a genuine degradation: exit states carry the taint.
  bool any_tainted = false;
  for (const rsg::Rsg& g : result.at_exit(program.cfg).graphs()) {
    any_tainted |= g.havoc();
  }
  EXPECT_TRUE(any_tainted);
}
#endif  // PSA_METRICS

TEST(SummaryTest, WrapperOfUnanalyzedFreeingCalleeDegradesToFallback) {
  // spin() frees argument-reachable cells but its SCC can never stabilize
  // under max_summary_iters = 0, so its summary is unanalyzed. wrap() is a
  // thin wrapper around it: projecting wrap as analyzed would claim
  // may_free == false (and drop spin's alloc sites), hiding use-after-free
  // at wrap's call sites. The wrapper must degrade to unanalyzed too, so
  // its callers take the sound havoc fallback.
  const ProgramAnalysis program = analysis::prepare(R"(
    struct node { struct node *nxt; };
    void spin(struct node *l) {
      struct node *t;
      if (l != NULL) {
        t = l->nxt;
        free(l);
        spin(t);
      }
    }
    void wrap(struct node *l) {
      spin(l);
    }
    void main() {
      struct node *x; struct node *p;
      x = malloc(struct node);
      wrap(x);
      p = x->nxt;
    }
  )");
  Options options;
  options.max_summary_iters = 0;
  const SummaryTable table = compute_summaries(program, options);
  EXPECT_FALSE(summary_of(table, program, "spin").analyzed);
  EXPECT_FALSE(summary_of(table, program, "wrap").analyzed);

  // End to end: the load through x after wrap(x) must surface as a
  // use-after-free — the fallback widens the region to maybe-freed.
  const AnalysisResult result = analysis::analyze_program(program, options);
  ASSERT_TRUE(result.converged());
  const auto findings = checker::run_checkers(program, result);
  EXPECT_GE(checker::count_findings(findings, checker::CheckKind::kUseAfterFree),
            1u);
}

TEST(SummaryTest, CheckerKeepsFullConfidenceThroughCleanSummaries) {
  // main leaks the list push() built: a real finding whose witness flows
  // through a summarized call — it must NOT be downgraded to "possible".
  const ProgramAnalysis program = analysis::prepare(R"(
    struct node { struct node *nxt; };
    struct node *push(struct node *list) {
      struct node *t;
      t = malloc(struct node);
      t->nxt = list;
      return t;
    }
    void main() {
      struct node *l;
      l = NULL;
      l = push(l);
      l = NULL;
    }
  )");
  const AnalysisResult result = analysis::analyze_program(program, {});
  ASSERT_TRUE(result.converged());
  const auto findings = checker::run_checkers(program, result);
  std::size_t leaks = 0;
  for (const auto& f : findings) {
    if (f.kind == checker::CheckKind::kLeak ||
        f.kind == checker::CheckKind::kLeakAtExit) {
      ++leaks;
      EXPECT_FALSE(f.degraded)
          << "summary-derived witness lost full confidence";
    }
  }
  EXPECT_GE(leaks, 1u);
}

TEST(SummaryTest, FreeingCalleeWidensTheRegionForTheCheckers) {
  // release() frees the list; the later load through l must surface as a
  // may-use-after-free — the summary's may_free bit carries the effect
  // across the call.
  const ProgramAnalysis program = analysis::prepare(R"(
    struct node { struct node *nxt; };
    void release(struct node *list) {
      struct node *t;
      while (list != NULL) {
        t = list;
        list = list->nxt;
        free(t);
      }
    }
    void main() {
      struct node *l; struct node *p;
      l = malloc(struct node);
      release(l);
      p = l->nxt;
    }
  )");
  const AnalysisResult result = analysis::analyze_program(program, {});
  ASSERT_TRUE(result.converged());
  const auto findings = checker::run_checkers(program, result);
  EXPECT_GE(checker::count_findings(findings, checker::CheckKind::kUseAfterFree),
            1u);
}

// ---------------------------------------------------------------------------
// Soundness: the summarized whole-unit result covers the cross-function
// concrete interpreter at every level and under governor degradation.
// ---------------------------------------------------------------------------

class SummarySoundness : public testing::TestWithParam<rsg::AnalysisLevel> {};

TEST_P(SummarySoundness, SummarizedRunCoversConcreteExecutions) {
  const ProgramAnalysis program = analysis::prepare(kListPipeline);
  Options options;
  options.level = GetParam();
  const AnalysisResult result = analysis::analyze_program(program, options);
  ASSERT_TRUE(result.converged());
  const int checked = oracle::expect_covers_concrete(
      program, result.at_exit(program.cfg), /*seeds=*/40);
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Levels, SummarySoundness,
                         testing::Values(rsg::AnalysisLevel::kL1,
                                         rsg::AnalysisLevel::kL2,
                                         rsg::AnalysisLevel::kL3),
                         [](const auto& info) {
                           switch (info.param) {
                             case rsg::AnalysisLevel::kL1: return "L1";
                             case rsg::AnalysisLevel::kL2: return "L2";
                             case rsg::AnalysisLevel::kL3: return "L3";
                           }
                           return "unknown";
                         });

TEST(SummarySoundnessTest, GovernorDegradedSummarizedRunStaysSound) {
  const ProgramAnalysis program = analysis::prepare(kListPipeline);
  Options options;
  options.level = rsg::AnalysisLevel::kL2;
  options.max_node_visits = 40;  // forces the visit ladder mid-fixpoint
  const AnalysisResult result = analysis::analyze_program(program, options);
  ASSERT_TRUE(result.converged());
  EXPECT_TRUE(result.degraded());
  const int checked = oracle::expect_covers_concrete(
      program, result.at_exit(program.cfg), /*seeds=*/40);
  EXPECT_GT(checked, 0);
}

TEST(SummarySoundnessTest, FallbackRunStaysSoundAgainstTheRealCallee) {
  // Summaries off: every call site takes the havoc fallback while the
  // concrete interpreter still executes the real callee bodies (including
  // release()'s frees) — the fallback envelope must cover them.
  const ProgramAnalysis program = analysis::prepare(kListPipeline);
  Options options;
  options.enable_summaries = false;
  const AnalysisResult result = analysis::analyze_program(program, options);
  ASSERT_TRUE(result.converged());
  const int checked = oracle::expect_covers_concrete(
      program, result.at_exit(program.cfg), /*seeds=*/40);
  EXPECT_GT(checked, 0);
}

}  // namespace
}  // namespace psa::ipa
