# Empty dependencies file for psa_lang.
# This may be replaced when dependencies are built.
