file(REMOVE_RECURSE
  "libpsa_lang.a"
)
