file(REMOVE_RECURSE
  "CMakeFiles/psa_lang.dir/ast.cpp.o"
  "CMakeFiles/psa_lang.dir/ast.cpp.o.d"
  "CMakeFiles/psa_lang.dir/lexer.cpp.o"
  "CMakeFiles/psa_lang.dir/lexer.cpp.o.d"
  "CMakeFiles/psa_lang.dir/parser.cpp.o"
  "CMakeFiles/psa_lang.dir/parser.cpp.o.d"
  "CMakeFiles/psa_lang.dir/sema.cpp.o"
  "CMakeFiles/psa_lang.dir/sema.cpp.o.d"
  "CMakeFiles/psa_lang.dir/types.cpp.o"
  "CMakeFiles/psa_lang.dir/types.cpp.o.d"
  "libpsa_lang.a"
  "libpsa_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psa_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
