# Empty compiler generated dependencies file for psa_rsg.
# This may be replaced when dependencies are built.
