
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rsg/canon.cpp" "src/rsg/CMakeFiles/psa_rsg.dir/canon.cpp.o" "gcc" "src/rsg/CMakeFiles/psa_rsg.dir/canon.cpp.o.d"
  "/root/repo/src/rsg/compat.cpp" "src/rsg/CMakeFiles/psa_rsg.dir/compat.cpp.o" "gcc" "src/rsg/CMakeFiles/psa_rsg.dir/compat.cpp.o.d"
  "/root/repo/src/rsg/compress.cpp" "src/rsg/CMakeFiles/psa_rsg.dir/compress.cpp.o" "gcc" "src/rsg/CMakeFiles/psa_rsg.dir/compress.cpp.o.d"
  "/root/repo/src/rsg/join.cpp" "src/rsg/CMakeFiles/psa_rsg.dir/join.cpp.o" "gcc" "src/rsg/CMakeFiles/psa_rsg.dir/join.cpp.o.d"
  "/root/repo/src/rsg/prune.cpp" "src/rsg/CMakeFiles/psa_rsg.dir/prune.cpp.o" "gcc" "src/rsg/CMakeFiles/psa_rsg.dir/prune.cpp.o.d"
  "/root/repo/src/rsg/rsg.cpp" "src/rsg/CMakeFiles/psa_rsg.dir/rsg.cpp.o" "gcc" "src/rsg/CMakeFiles/psa_rsg.dir/rsg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/psa_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/psa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
