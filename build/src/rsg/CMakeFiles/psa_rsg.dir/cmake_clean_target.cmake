file(REMOVE_RECURSE
  "libpsa_rsg.a"
)
