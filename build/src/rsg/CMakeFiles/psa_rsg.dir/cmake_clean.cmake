file(REMOVE_RECURSE
  "CMakeFiles/psa_rsg.dir/canon.cpp.o"
  "CMakeFiles/psa_rsg.dir/canon.cpp.o.d"
  "CMakeFiles/psa_rsg.dir/compat.cpp.o"
  "CMakeFiles/psa_rsg.dir/compat.cpp.o.d"
  "CMakeFiles/psa_rsg.dir/compress.cpp.o"
  "CMakeFiles/psa_rsg.dir/compress.cpp.o.d"
  "CMakeFiles/psa_rsg.dir/join.cpp.o"
  "CMakeFiles/psa_rsg.dir/join.cpp.o.d"
  "CMakeFiles/psa_rsg.dir/prune.cpp.o"
  "CMakeFiles/psa_rsg.dir/prune.cpp.o.d"
  "CMakeFiles/psa_rsg.dir/rsg.cpp.o"
  "CMakeFiles/psa_rsg.dir/rsg.cpp.o.d"
  "libpsa_rsg.a"
  "libpsa_rsg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psa_rsg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
