# Empty dependencies file for psa_corpus.
# This may be replaced when dependencies are built.
