file(REMOVE_RECURSE
  "libpsa_corpus.a"
)
