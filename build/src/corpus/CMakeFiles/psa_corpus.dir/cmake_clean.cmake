file(REMOVE_RECURSE
  "CMakeFiles/psa_corpus.dir/corpus.cpp.o"
  "CMakeFiles/psa_corpus.dir/corpus.cpp.o.d"
  "libpsa_corpus.a"
  "libpsa_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psa_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
