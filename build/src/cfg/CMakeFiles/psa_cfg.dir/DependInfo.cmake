
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfg/cfg.cpp" "src/cfg/CMakeFiles/psa_cfg.dir/cfg.cpp.o" "gcc" "src/cfg/CMakeFiles/psa_cfg.dir/cfg.cpp.o.d"
  "/root/repo/src/cfg/induction.cpp" "src/cfg/CMakeFiles/psa_cfg.dir/induction.cpp.o" "gcc" "src/cfg/CMakeFiles/psa_cfg.dir/induction.cpp.o.d"
  "/root/repo/src/cfg/loops.cpp" "src/cfg/CMakeFiles/psa_cfg.dir/loops.cpp.o" "gcc" "src/cfg/CMakeFiles/psa_cfg.dir/loops.cpp.o.d"
  "/root/repo/src/cfg/simple_stmt.cpp" "src/cfg/CMakeFiles/psa_cfg.dir/simple_stmt.cpp.o" "gcc" "src/cfg/CMakeFiles/psa_cfg.dir/simple_stmt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/psa_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/psa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
