# Empty dependencies file for psa_cfg.
# This may be replaced when dependencies are built.
