file(REMOVE_RECURSE
  "libpsa_cfg.a"
)
