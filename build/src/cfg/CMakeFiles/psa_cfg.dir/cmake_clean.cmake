file(REMOVE_RECURSE
  "CMakeFiles/psa_cfg.dir/cfg.cpp.o"
  "CMakeFiles/psa_cfg.dir/cfg.cpp.o.d"
  "CMakeFiles/psa_cfg.dir/induction.cpp.o"
  "CMakeFiles/psa_cfg.dir/induction.cpp.o.d"
  "CMakeFiles/psa_cfg.dir/loops.cpp.o"
  "CMakeFiles/psa_cfg.dir/loops.cpp.o.d"
  "CMakeFiles/psa_cfg.dir/simple_stmt.cpp.o"
  "CMakeFiles/psa_cfg.dir/simple_stmt.cpp.o.d"
  "libpsa_cfg.a"
  "libpsa_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psa_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
