file(REMOVE_RECURSE
  "CMakeFiles/psa_support.dir/diagnostics.cpp.o"
  "CMakeFiles/psa_support.dir/diagnostics.cpp.o.d"
  "CMakeFiles/psa_support.dir/interner.cpp.o"
  "CMakeFiles/psa_support.dir/interner.cpp.o.d"
  "CMakeFiles/psa_support.dir/memory_stats.cpp.o"
  "CMakeFiles/psa_support.dir/memory_stats.cpp.o.d"
  "CMakeFiles/psa_support.dir/thread_pool.cpp.o"
  "CMakeFiles/psa_support.dir/thread_pool.cpp.o.d"
  "libpsa_support.a"
  "libpsa_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psa_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
