file(REMOVE_RECURSE
  "libpsa_support.a"
)
