# Empty compiler generated dependencies file for psa_support.
# This may be replaced when dependencies are built.
