file(REMOVE_RECURSE
  "CMakeFiles/psa_client.dir/dot.cpp.o"
  "CMakeFiles/psa_client.dir/dot.cpp.o.d"
  "CMakeFiles/psa_client.dir/parallelism.cpp.o"
  "CMakeFiles/psa_client.dir/parallelism.cpp.o.d"
  "CMakeFiles/psa_client.dir/queries.cpp.o"
  "CMakeFiles/psa_client.dir/queries.cpp.o.d"
  "CMakeFiles/psa_client.dir/report.cpp.o"
  "CMakeFiles/psa_client.dir/report.cpp.o.d"
  "libpsa_client.a"
  "libpsa_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psa_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
