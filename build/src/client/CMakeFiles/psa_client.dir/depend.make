# Empty dependencies file for psa_client.
# This may be replaced when dependencies are built.
