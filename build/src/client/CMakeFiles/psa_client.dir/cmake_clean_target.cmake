file(REMOVE_RECURSE
  "libpsa_client.a"
)
