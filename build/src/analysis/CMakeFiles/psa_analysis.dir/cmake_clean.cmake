file(REMOVE_RECURSE
  "CMakeFiles/psa_analysis.dir/analyzer.cpp.o"
  "CMakeFiles/psa_analysis.dir/analyzer.cpp.o.d"
  "CMakeFiles/psa_analysis.dir/engine.cpp.o"
  "CMakeFiles/psa_analysis.dir/engine.cpp.o.d"
  "CMakeFiles/psa_analysis.dir/progressive.cpp.o"
  "CMakeFiles/psa_analysis.dir/progressive.cpp.o.d"
  "CMakeFiles/psa_analysis.dir/rsrsg.cpp.o"
  "CMakeFiles/psa_analysis.dir/rsrsg.cpp.o.d"
  "CMakeFiles/psa_analysis.dir/semantics.cpp.o"
  "CMakeFiles/psa_analysis.dir/semantics.cpp.o.d"
  "libpsa_analysis.a"
  "libpsa_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psa_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
