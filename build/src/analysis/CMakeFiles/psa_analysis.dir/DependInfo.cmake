
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/analyzer.cpp" "src/analysis/CMakeFiles/psa_analysis.dir/analyzer.cpp.o" "gcc" "src/analysis/CMakeFiles/psa_analysis.dir/analyzer.cpp.o.d"
  "/root/repo/src/analysis/engine.cpp" "src/analysis/CMakeFiles/psa_analysis.dir/engine.cpp.o" "gcc" "src/analysis/CMakeFiles/psa_analysis.dir/engine.cpp.o.d"
  "/root/repo/src/analysis/progressive.cpp" "src/analysis/CMakeFiles/psa_analysis.dir/progressive.cpp.o" "gcc" "src/analysis/CMakeFiles/psa_analysis.dir/progressive.cpp.o.d"
  "/root/repo/src/analysis/rsrsg.cpp" "src/analysis/CMakeFiles/psa_analysis.dir/rsrsg.cpp.o" "gcc" "src/analysis/CMakeFiles/psa_analysis.dir/rsrsg.cpp.o.d"
  "/root/repo/src/analysis/semantics.cpp" "src/analysis/CMakeFiles/psa_analysis.dir/semantics.cpp.o" "gcc" "src/analysis/CMakeFiles/psa_analysis.dir/semantics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rsg/CMakeFiles/psa_rsg.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/psa_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/psa_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/psa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
