file(REMOVE_RECURSE
  "CMakeFiles/cfg_tests.dir/cfg/cfg_structure_test.cpp.o"
  "CMakeFiles/cfg_tests.dir/cfg/cfg_structure_test.cpp.o.d"
  "CMakeFiles/cfg_tests.dir/cfg/induction_test.cpp.o"
  "CMakeFiles/cfg_tests.dir/cfg/induction_test.cpp.o.d"
  "CMakeFiles/cfg_tests.dir/cfg/lowering_test.cpp.o"
  "CMakeFiles/cfg_tests.dir/cfg/lowering_test.cpp.o.d"
  "CMakeFiles/cfg_tests.dir/cfg/simple_stmt_test.cpp.o"
  "CMakeFiles/cfg_tests.dir/cfg/simple_stmt_test.cpp.o.d"
  "cfg_tests"
  "cfg_tests.pdb"
  "cfg_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfg_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
