file(REMOVE_RECURSE
  "CMakeFiles/analysis_tests.dir/analysis/analyzer_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/analyzer_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/engine_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/engine_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/progressive_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/progressive_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/rsrsg_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/rsrsg_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/semantics_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/semantics_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/touch_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/touch_test.cpp.o.d"
  "CMakeFiles/analysis_tests.dir/analysis/transfer_unit_test.cpp.o"
  "CMakeFiles/analysis_tests.dir/analysis/transfer_unit_test.cpp.o.d"
  "analysis_tests"
  "analysis_tests.pdb"
  "analysis_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
