file(REMOVE_RECURSE
  "CMakeFiles/rsg_tests.dir/rsg/canon_test.cpp.o"
  "CMakeFiles/rsg_tests.dir/rsg/canon_test.cpp.o.d"
  "CMakeFiles/rsg_tests.dir/rsg/compat_test.cpp.o"
  "CMakeFiles/rsg_tests.dir/rsg/compat_test.cpp.o.d"
  "CMakeFiles/rsg_tests.dir/rsg/divide_test.cpp.o"
  "CMakeFiles/rsg_tests.dir/rsg/divide_test.cpp.o.d"
  "CMakeFiles/rsg_tests.dir/rsg/fig1_walkthrough_test.cpp.o"
  "CMakeFiles/rsg_tests.dir/rsg/fig1_walkthrough_test.cpp.o.d"
  "CMakeFiles/rsg_tests.dir/rsg/join_test.cpp.o"
  "CMakeFiles/rsg_tests.dir/rsg/join_test.cpp.o.d"
  "CMakeFiles/rsg_tests.dir/rsg/level_test.cpp.o"
  "CMakeFiles/rsg_tests.dir/rsg/level_test.cpp.o.d"
  "CMakeFiles/rsg_tests.dir/rsg/materialize_test.cpp.o"
  "CMakeFiles/rsg_tests.dir/rsg/materialize_test.cpp.o.d"
  "CMakeFiles/rsg_tests.dir/rsg/merge_test.cpp.o"
  "CMakeFiles/rsg_tests.dir/rsg/merge_test.cpp.o.d"
  "CMakeFiles/rsg_tests.dir/rsg/ops_edge_test.cpp.o"
  "CMakeFiles/rsg_tests.dir/rsg/ops_edge_test.cpp.o.d"
  "CMakeFiles/rsg_tests.dir/rsg/prune_test.cpp.o"
  "CMakeFiles/rsg_tests.dir/rsg/prune_test.cpp.o.d"
  "CMakeFiles/rsg_tests.dir/rsg/rsg_test.cpp.o"
  "CMakeFiles/rsg_tests.dir/rsg/rsg_test.cpp.o.d"
  "rsg_tests"
  "rsg_tests.pdb"
  "rsg_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsg_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
