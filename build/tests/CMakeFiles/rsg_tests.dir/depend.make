# Empty dependencies file for rsg_tests.
# This may be replaced when dependencies are built.
