
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rsg/canon_test.cpp" "tests/CMakeFiles/rsg_tests.dir/rsg/canon_test.cpp.o" "gcc" "tests/CMakeFiles/rsg_tests.dir/rsg/canon_test.cpp.o.d"
  "/root/repo/tests/rsg/compat_test.cpp" "tests/CMakeFiles/rsg_tests.dir/rsg/compat_test.cpp.o" "gcc" "tests/CMakeFiles/rsg_tests.dir/rsg/compat_test.cpp.o.d"
  "/root/repo/tests/rsg/divide_test.cpp" "tests/CMakeFiles/rsg_tests.dir/rsg/divide_test.cpp.o" "gcc" "tests/CMakeFiles/rsg_tests.dir/rsg/divide_test.cpp.o.d"
  "/root/repo/tests/rsg/fig1_walkthrough_test.cpp" "tests/CMakeFiles/rsg_tests.dir/rsg/fig1_walkthrough_test.cpp.o" "gcc" "tests/CMakeFiles/rsg_tests.dir/rsg/fig1_walkthrough_test.cpp.o.d"
  "/root/repo/tests/rsg/join_test.cpp" "tests/CMakeFiles/rsg_tests.dir/rsg/join_test.cpp.o" "gcc" "tests/CMakeFiles/rsg_tests.dir/rsg/join_test.cpp.o.d"
  "/root/repo/tests/rsg/level_test.cpp" "tests/CMakeFiles/rsg_tests.dir/rsg/level_test.cpp.o" "gcc" "tests/CMakeFiles/rsg_tests.dir/rsg/level_test.cpp.o.d"
  "/root/repo/tests/rsg/materialize_test.cpp" "tests/CMakeFiles/rsg_tests.dir/rsg/materialize_test.cpp.o" "gcc" "tests/CMakeFiles/rsg_tests.dir/rsg/materialize_test.cpp.o.d"
  "/root/repo/tests/rsg/merge_test.cpp" "tests/CMakeFiles/rsg_tests.dir/rsg/merge_test.cpp.o" "gcc" "tests/CMakeFiles/rsg_tests.dir/rsg/merge_test.cpp.o.d"
  "/root/repo/tests/rsg/ops_edge_test.cpp" "tests/CMakeFiles/rsg_tests.dir/rsg/ops_edge_test.cpp.o" "gcc" "tests/CMakeFiles/rsg_tests.dir/rsg/ops_edge_test.cpp.o.d"
  "/root/repo/tests/rsg/prune_test.cpp" "tests/CMakeFiles/rsg_tests.dir/rsg/prune_test.cpp.o" "gcc" "tests/CMakeFiles/rsg_tests.dir/rsg/prune_test.cpp.o.d"
  "/root/repo/tests/rsg/rsg_test.cpp" "tests/CMakeFiles/rsg_tests.dir/rsg/rsg_test.cpp.o" "gcc" "tests/CMakeFiles/rsg_tests.dir/rsg/rsg_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/psa_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/psa_client.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/psa_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/rsg/CMakeFiles/psa_rsg.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/psa_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/psa_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/psa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
