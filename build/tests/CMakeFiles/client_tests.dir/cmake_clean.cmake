file(REMOVE_RECURSE
  "CMakeFiles/client_tests.dir/client/dot_test.cpp.o"
  "CMakeFiles/client_tests.dir/client/dot_test.cpp.o.d"
  "CMakeFiles/client_tests.dir/client/parallelism_test.cpp.o"
  "CMakeFiles/client_tests.dir/client/parallelism_test.cpp.o.d"
  "CMakeFiles/client_tests.dir/client/queries_test.cpp.o"
  "CMakeFiles/client_tests.dir/client/queries_test.cpp.o.d"
  "CMakeFiles/client_tests.dir/client/report_test.cpp.o"
  "CMakeFiles/client_tests.dir/client/report_test.cpp.o.d"
  "client_tests"
  "client_tests.pdb"
  "client_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
