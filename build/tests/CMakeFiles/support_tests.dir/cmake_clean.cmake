file(REMOVE_RECURSE
  "CMakeFiles/support_tests.dir/support/diagnostics_test.cpp.o"
  "CMakeFiles/support_tests.dir/support/diagnostics_test.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/hash_test.cpp.o"
  "CMakeFiles/support_tests.dir/support/hash_test.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/interner_test.cpp.o"
  "CMakeFiles/support_tests.dir/support/interner_test.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/memory_stats_test.cpp.o"
  "CMakeFiles/support_tests.dir/support/memory_stats_test.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/small_set_test.cpp.o"
  "CMakeFiles/support_tests.dir/support/small_set_test.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/thread_pool_test.cpp.o"
  "CMakeFiles/support_tests.dir/support/thread_pool_test.cpp.o.d"
  "CMakeFiles/support_tests.dir/support/timer_test.cpp.o"
  "CMakeFiles/support_tests.dir/support/timer_test.cpp.o.d"
  "support_tests"
  "support_tests.pdb"
  "support_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
