# Empty dependencies file for fig1_dll_walkthrough.
# This may be replaced when dependencies are built.
