# Empty dependencies file for psa_cli.
# This may be replaced when dependencies are built.
