file(REMOVE_RECURSE
  "CMakeFiles/psa_cli.dir/psa_cli.cpp.o"
  "CMakeFiles/psa_cli.dir/psa_cli.cpp.o.d"
  "psa_cli"
  "psa_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psa_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
