# Empty compiler generated dependencies file for parallelism_report.
# This may be replaced when dependencies are built.
