file(REMOVE_RECURSE
  "CMakeFiles/parallelism_report.dir/parallelism_report.cpp.o"
  "CMakeFiles/parallelism_report.dir/parallelism_report.cpp.o.d"
  "parallelism_report"
  "parallelism_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallelism_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
