file(REMOVE_RECURSE
  "CMakeFiles/barnes_hut_progressive.dir/barnes_hut_progressive.cpp.o"
  "CMakeFiles/barnes_hut_progressive.dir/barnes_hut_progressive.cpp.o.d"
  "barnes_hut_progressive"
  "barnes_hut_progressive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barnes_hut_progressive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
