# Empty dependencies file for barnes_hut_progressive.
# This may be replaced when dependencies are built.
