# Empty dependencies file for parallel_transfer.
# This may be replaced when dependencies are built.
