# Empty compiler generated dependencies file for fig3_barnes_hut.
# This may be replaced when dependencies are built.
