file(REMOVE_RECURSE
  "CMakeFiles/fig3_barnes_hut.dir/fig3_barnes_hut.cpp.o"
  "CMakeFiles/fig3_barnes_hut.dir/fig3_barnes_hut.cpp.o.d"
  "fig3_barnes_hut"
  "fig3_barnes_hut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_barnes_hut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
