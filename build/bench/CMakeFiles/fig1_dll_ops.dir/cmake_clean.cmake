file(REMOVE_RECURSE
  "CMakeFiles/fig1_dll_ops.dir/fig1_dll_ops.cpp.o"
  "CMakeFiles/fig1_dll_ops.dir/fig1_dll_ops.cpp.o.d"
  "fig1_dll_ops"
  "fig1_dll_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_dll_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
