
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig1_dll_ops.cpp" "bench/CMakeFiles/fig1_dll_ops.dir/fig1_dll_ops.cpp.o" "gcc" "bench/CMakeFiles/fig1_dll_ops.dir/fig1_dll_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/psa_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/psa_client.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/psa_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/rsg/CMakeFiles/psa_rsg.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/psa_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/psa_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/psa_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
