# Empty compiler generated dependencies file for fig1_dll_ops.
# This may be replaced when dependencies are built.
