# Empty compiler generated dependencies file for ablation_widening.
# This may be replaced when dependencies are built.
