file(REMOVE_RECURSE
  "CMakeFiles/ablation_widening.dir/ablation_widening.cpp.o"
  "CMakeFiles/ablation_widening.dir/ablation_widening.cpp.o.d"
  "ablation_widening"
  "ablation_widening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_widening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
