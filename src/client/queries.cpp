#include "client/queries.hpp"

#include <algorithm>

namespace psa::client {

using rsg::Cardinality;
using rsg::kNoNode;
using rsg::NodeRef;
using rsg::Rsg;

std::optional<lang::StructId> struct_id(const ProgramAnalysis& program,
                                        std::string_view struct_name) {
  const Symbol sym = program.unit.interner->lookup(struct_name);
  if (!sym.valid()) return std::nullopt;
  return program.unit.types.find_struct(sym);
}

bool may_be_shared_via(const ProgramAnalysis& program, const Rsrsg& set,
                       std::string_view struct_name, std::string_view sel) {
  const auto sid = struct_id(program, struct_name);
  const Symbol sel_sym = program.unit.interner->lookup(sel);
  if (!sid || !sel_sym.valid()) return false;
  for (const Rsg& g : set.graphs()) {
    for (const NodeRef n : g.node_refs()) {
      if (g.props(n).type == *sid && g.props(n).shsel.contains(sel_sym))
        return true;
    }
  }
  return false;
}

bool may_be_shared(const ProgramAnalysis& program, const Rsrsg& set,
                   std::string_view struct_name) {
  const auto sid = struct_id(program, struct_name);
  if (!sid) return false;
  for (const Rsg& g : set.graphs()) {
    for (const NodeRef n : g.node_refs()) {
      if (g.props(n).type == *sid && g.props(n).shared) return true;
    }
  }
  return false;
}

bool may_alias(const ProgramAnalysis& program, const Rsrsg& set,
               std::string_view a, std::string_view b) {
  const Symbol sa = program.unit.interner->lookup(a);
  const Symbol sb = program.unit.interner->lookup(b);
  if (!sa.valid() || !sb.valid()) return false;
  for (const Rsg& g : set.graphs()) {
    const NodeRef na = g.pvar_target(sa);
    if (na != kNoNode && na == g.pvar_target(sb)) return true;
  }
  return false;
}

bool may_be_null(const ProgramAnalysis& program, const Rsrsg& set,
                 std::string_view pvar) {
  const Symbol sym = program.unit.interner->lookup(pvar);
  if (!sym.valid()) return true;
  for (const Rsg& g : set.graphs()) {
    if (g.pvar_target(sym) == kNoNode) return true;
  }
  return set.empty();
}

namespace {

/// Node set named by an access path "pvar(->sel)*" in one graph: start at
/// the pvar's node and fan out through each selector step over may-links.
std::vector<NodeRef> path_roots(const ProgramAnalysis& program, const Rsg& g,
                                std::string_view path) {
  std::string_view rest = path;
  const auto next_component = [&rest]() {
    const auto arrow = rest.find("->");
    std::string_view head = rest;
    if (arrow == std::string_view::npos) {
      rest = {};
    } else {
      head = rest.substr(0, arrow);
      rest = rest.substr(arrow + 2);
    }
    return head;
  };

  const Symbol pvar_sym = program.unit.interner->lookup(next_component());
  if (!pvar_sym.valid()) return {};
  const NodeRef base = g.pvar_target(pvar_sym);
  if (base == rsg::kNoNode) return {};

  std::vector<NodeRef> frontier{base};
  while (!rest.empty()) {
    const Symbol sel_sym = program.unit.interner->lookup(next_component());
    if (!sel_sym.valid()) return {};
    std::vector<NodeRef> next;
    for (const NodeRef n : frontier) {
      for (const NodeRef t : g.sel_targets(n, sel_sym)) {
        if (std::find(next.begin(), next.end(), t) == next.end())
          next.push_back(t);
      }
    }
    frontier = std::move(next);
  }
  return frontier;
}

std::vector<bool> reach_from(const Rsg& g, const std::vector<NodeRef>& roots) {
  std::vector<bool> seen(g.node_capacity(), false);
  std::vector<NodeRef> work(roots);
  for (const NodeRef r : roots) seen[r] = true;
  while (!work.empty()) {
    const NodeRef n = work.back();
    work.pop_back();
    for (const rsg::Link& l : g.out_links(n)) {
      if (!seen[l.target]) {
        seen[l.target] = true;
        work.push_back(l.target);
      }
    }
  }
  return seen;
}

}  // namespace

bool regions_may_overlap(const ProgramAnalysis& program, const Rsrsg& set,
                         std::string_view path_a, std::string_view path_b) {
  for (const Rsg& g : set.graphs()) {
    const auto roots_a = path_roots(program, g, path_a);
    const auto roots_b = path_roots(program, g, path_b);
    if (roots_a.empty() || roots_b.empty()) continue;
    const auto seen_a = reach_from(g, roots_a);
    const auto seen_b = reach_from(g, roots_b);
    for (std::size_t i = 0; i < seen_a.size(); ++i) {
      if (seen_a[i] && seen_b[i]) return true;
    }
  }
  return false;
}

bool paths_may_alias(const ProgramAnalysis& program, const Rsrsg& set,
                     std::string_view path_a, std::string_view path_b) {
  for (const Rsg& g : set.graphs()) {
    const auto roots_a = path_roots(program, g, path_a);
    const auto roots_b = path_roots(program, g, path_b);
    for (const NodeRef a : roots_a) {
      for (const NodeRef b : roots_b) {
        if (a == b) return true;
      }
    }
  }
  return false;
}

std::string_view to_string(StructureKind kind) {
  switch (kind) {
    case StructureKind::kUnreachable: return "unreachable";
    case StructureKind::kAcyclicList: return "acyclic list";
    case StructureKind::kTree: return "tree";
    case StructureKind::kDag: return "dag";
    case StructureKind::kCyclic: return "possibly cyclic";
  }
  return "?";
}

namespace {

/// Does the subgraph reachable from `root` contain a directed cycle made of
/// links that are not paired by a CYCLELINK of their source (a cycle-link
/// pair is a structural back-pointer, e.g. a doubly-linked list's prv)?
bool has_unexplained_cycle(const Rsg& g, NodeRef root) {
  // Iterative DFS with colors over the filtered link relation.
  std::vector<std::uint8_t> color(g.node_capacity(), 0);  // 0 new 1 open 2 done
  struct Frame {
    NodeRef node;
    std::size_t next_link = 0;
  };
  std::vector<Frame> stack{{root, 0}};
  color[root] = 1;
  auto filtered = [&](NodeRef n) {
    std::vector<rsg::Link> out;
    for (const rsg::Link& l : g.out_links(n)) {
      bool is_backpointer = false;
      // A link n -sel-> t is a back-pointer when some cycle link <s, sel> of
      // t routes it back (t.s went forward, our sel returns).
      for (const rsg::SelPair cl : g.props(l.target).cyclelinks) {
        if (cl.back == l.sel && g.has_link(l.target, cl.out, n)) {
          is_backpointer = true;
          break;
        }
      }
      // Equally, <sel, s> on n marks sel as the forward half of a pair; a
      // pure back-edge is one whose forward partner exists on the target.
      if (!is_backpointer) out.push_back(l);
    }
    return out;
  };

  while (!stack.empty()) {
    Frame& f = stack.back();
    const auto links = filtered(f.node);
    if (f.next_link < links.size()) {
      const NodeRef t = links[f.next_link++].target;
      // A summary self-link represents a chain of distinct locations, not a
      // cycle, unless SHSEL says the selector may share.
      if (t == f.node && g.props(f.node).cardinality == Cardinality::kMany) {
        const Symbol sel = links[f.next_link - 1].sel;
        if (!g.props(f.node).shsel.contains(sel)) continue;
      }
      if (color[t] == 1) return true;
      if (color[t] == 0) {
        color[t] = 1;
        stack.push_back(Frame{t, 0});
      }
    } else {
      color[f.node] = 2;
      stack.pop_back();
    }
  }
  return false;
}

StructureKind classify_one(const Rsg& g, NodeRef root) {
  // Reachable subgraph from root.
  std::vector<NodeRef> reach;
  std::vector<bool> seen(g.node_capacity(), false);
  std::vector<NodeRef> work{root};
  seen[root] = true;
  while (!work.empty()) {
    const NodeRef n = work.back();
    work.pop_back();
    reach.push_back(n);
    for (const rsg::Link& l : g.out_links(n)) {
      if (!seen[l.target]) {
        seen[l.target] = true;
        work.push_back(l.target);
      }
    }
  }

  bool any_sharing = false;
  bool list_shaped = true;
  for (const NodeRef n : reach) {
    const auto& p = g.props(n);
    // Sharing not explained by a cycle-link back-pointer counts. A selector
    // that is the returning half of a cycle-link pair (e.g. a DLL's prv) is
    // structural, not cross-path aliasing.
    auto is_backpointer_sel = [&](Symbol s) {
      for (const rsg::SelPair cl : p.cyclelinks) {
        if (cl.back == s) return true;
      }
      return false;
    };
    for (const Symbol s : p.shsel) {
      if (!is_backpointer_sel(s)) any_sharing = true;
    }
    if (p.shared && p.shsel.empty() && p.cyclelinks.empty()) any_sharing = true;

    // "List-shaped": at most one *forward* out-selector per node (links
    // whose selector returns along a cycle-link pair of the target are
    // back-pointers and do not count).
    support::SmallSet<Symbol> forward_sels;
    for (const rsg::Link& l : g.out_links(n)) {
      bool backpointer = false;
      for (const rsg::SelPair cl : g.props(l.target).cyclelinks) {
        if (cl.back == l.sel && g.has_link(l.target, cl.out, n)) {
          backpointer = true;
          break;
        }
      }
      if (!backpointer) forward_sels.insert(l.sel);
    }
    if (forward_sels.size() > 1) list_shaped = false;
  }

  if (has_unexplained_cycle(g, root)) return StructureKind::kCyclic;
  if (any_sharing) return StructureKind::kDag;
  if (list_shaped) return StructureKind::kAcyclicList;
  return StructureKind::kTree;
}

}  // namespace

StructureKind classify_structure(const ProgramAnalysis& program,
                                 const Rsrsg& set, std::string_view pvar) {
  const Symbol sym = program.unit.interner->lookup(pvar);
  if (!sym.valid()) return StructureKind::kUnreachable;

  StructureKind worst = StructureKind::kUnreachable;
  for (const Rsg& g : set.graphs()) {
    const NodeRef root = g.pvar_target(sym);
    if (root == kNoNode) continue;
    const StructureKind k = classify_one(g, root);
    if (static_cast<int>(k) > static_cast<int>(worst)) worst = k;
  }
  return worst;
}

SetStats stats(const Rsrsg& set) {
  SetStats s;
  s.graphs = set.size();
  s.bytes = set.footprint_bytes();
  for (const Rsg& g : set.graphs()) {
    s.nodes += g.node_count();
    s.links += g.link_count();
  }
  return s;
}

}  // namespace psa::client
