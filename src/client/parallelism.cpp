#include "client/parallelism.hpp"

#include <algorithm>
#include <sstream>

namespace psa::client {

using analysis::AnalysisResult;
using analysis::ProgramAnalysis;
using cfg::SimpleOp;
using rsg::NodeRef;
using rsg::Rsg;
using support::SmallSet;
using support::Symbol;

namespace {

struct BodyAccesses {
  SmallSet<Symbol> traversal_sels;   // selectors dereferenced by loads
  SmallSet<Symbol> written_sels;     // selectors assigned (ptr or scalar)
  std::vector<cfg::NodeId> writes;   // the write statements themselves
};

BodyAccesses collect_accesses(const ProgramAnalysis& program,
                              const cfg::LoopScope& loop) {
  BodyAccesses out;
  for (const cfg::NodeId id : loop.members) {
    const cfg::SimpleStmt& s = program.cfg.node(id).stmt;
    switch (s.op) {
      case SimpleOp::kLoad:
        out.traversal_sels.insert(s.sel);
        break;
      case SimpleOp::kStore:
      case SimpleOp::kStoreNull:
      case SimpleOp::kFieldWrite:
        out.written_sels.insert(s.sel);
        out.writes.push_back(id);
        break;
      default:
        break;
    }
  }
  return out;
}

}  // namespace

std::vector<LoopParallelism> detect_parallel_loops(
    const ProgramAnalysis& program, const AnalysisResult& result) {
  std::vector<LoopParallelism> out;
  const auto& interner = *program.unit.interner;

  for (const cfg::LoopScope& loop : program.cfg.loop_scopes()) {
    LoopParallelism lp;
    lp.loop_id = loop.id;
    lp.loc = loop.loc;

    const BodyAccesses acc = collect_accesses(program, loop);
    for (const Symbol s : acc.traversal_sels)
      lp.traversal_selectors.emplace_back(interner.spelling(s));
    for (const Symbol s : acc.written_sels)
      lp.written_selectors.emplace_back(interner.spelling(s));

    // Criterion: at every write statement of the body, the written location
    // (the node its base pvar references in the statement's RSRSG) must not
    // be reachable a second time through any traversal selector — i.e.
    // SHSEL(n, sel) = false for every traversal sel, unless sel is the
    // returning half of one of n's cycle-link pairs (a structural
    // back-pointer such as a DLL's prv).
    bool ok = true;
    bool reached = false;
    for (const cfg::NodeId w : acc.writes) {
      const cfg::SimpleStmt& ws = program.cfg.node(w).stmt;
      const analysis::Rsrsg& at_write = result.per_node[w];
      reached |= !at_write.empty();
      for (const Rsg& g : at_write.graphs()) {
        const NodeRef n = g.pvar_target(ws.x);
        if (n == rsg::kNoNode) continue;
        const rsg::NodeProps& p = g.props(n);
        for (const Symbol sel : acc.traversal_sels) {
          if (!p.shsel.contains(sel)) continue;
          bool backpointer = false;
          for (const rsg::SelPair cl : p.cyclelinks) {
            if (cl.back == sel) backpointer = true;
          }
          if (backpointer) continue;
          std::ostringstream os;
          os << "location written by '" << to_string(ws, interner)
             << "' may be reached twice via '" << interner.spelling(sel)
             << "' (SHSEL = true)";
          lp.conflicts.push_back(os.str());
          ok = false;
        }
      }
    }
    if (!reached && !acc.writes.empty()) {
      lp.conflicts.emplace_back("loop unreachable in the abstract semantics");
    }

    // De-duplicate conflict messages.
    std::sort(lp.conflicts.begin(), lp.conflicts.end());
    lp.conflicts.erase(std::unique(lp.conflicts.begin(), lp.conflicts.end()),
                       lp.conflicts.end());
    lp.parallelizable = ok;
    out.push_back(std::move(lp));
  }
  return out;
}

std::string annotate_source(std::string_view source,
                            const std::vector<LoopParallelism>& loops) {
  // Split into lines, remembering 1-based indices.
  std::vector<std::string_view> lines;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    const std::size_t nl = source.find('\n', pos);
    if (nl == std::string_view::npos) {
      lines.push_back(source.substr(pos));
      break;
    }
    lines.push_back(source.substr(pos, nl - pos));
    pos = nl + 1;
  }

  // One annotation per line (the innermost loop wins on collisions).
  std::vector<const LoopParallelism*> per_line(lines.size() + 2, nullptr);
  for (const LoopParallelism& lp : loops) {
    if (lp.loc.line == 0 || lp.loc.line > lines.size()) continue;
    per_line[lp.loc.line] = &lp;
  }

  std::ostringstream os;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::size_t line_no = i + 1;
    if (const LoopParallelism* lp = per_line[line_no]) {
      const std::string_view line = lines[i];
      const std::size_t indent = line.find_first_not_of(" \t");
      const std::string_view pad =
          indent == std::string_view::npos ? "" : line.substr(0, indent);
      if (lp->parallelizable) {
        os << pad << "#pragma omp parallel for  /* psa: independent data "
                     "regions */\n";
      } else {
        os << pad << "/* psa: serial — ";
        for (std::size_t c = 0; c < lp->conflicts.size(); ++c) {
          if (c != 0) os << "; ";
          os << lp->conflicts[c];
        }
        os << " */\n";
      }
    }
    os << lines[i];
    if (i + 1 < lines.size()) os << '\n';
  }
  return os.str();
}

std::string format_report(const std::vector<LoopParallelism>& loops) {
  std::ostringstream os;
  os << "loop  line  parallelizable  detail\n";
  for (const LoopParallelism& lp : loops) {
    os << "  L" << lp.loop_id << "   " << lp.loc.line << "     "
       << (lp.parallelizable ? "YES" : "no ") << "       ";
    if (lp.conflicts.empty()) {
      os << "independent data regions";
    } else {
      for (std::size_t i = 0; i < lp.conflicts.size(); ++i) {
        if (i != 0) os << "; ";
        os << lp.conflicts[i];
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace psa::client
