// Shape queries over analysis results.
//
// These are the predicates a client pass (or the progressive driver's
// accuracy criteria) evaluates on RSRSGs: sharing of a struct type through a
// selector, aliasing of pvars, reachability, structure classification
// (list / tree / cyclic), and TOUCH inspection. §5.1 of the paper phrases
// its Barnes-Hut findings exactly in these terms ("the summary node n6
// fulfills SHSEL(n6, body) = false").
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"

namespace psa::client {

using analysis::AnalysisResult;
using analysis::ProgramAnalysis;
using analysis::Rsrsg;
using support::Symbol;

/// Resolve a struct name to its id; empty when unknown.
[[nodiscard]] std::optional<lang::StructId> struct_id(
    const ProgramAnalysis& program, std::string_view struct_name);

/// SHSEL query: may any location of struct `struct_name` be referenced more
/// than once via `sel` in any graph of `set`? (False is the strong result.)
[[nodiscard]] bool may_be_shared_via(const ProgramAnalysis& program,
                                     const Rsrsg& set,
                                     std::string_view struct_name,
                                     std::string_view sel);

/// SHARED query over all selectors.
[[nodiscard]] bool may_be_shared(const ProgramAnalysis& program,
                                 const Rsrsg& set,
                                 std::string_view struct_name);

/// May `a` and `b` reference the same location in some graph of `set`?
[[nodiscard]] bool may_alias(const ProgramAnalysis& program, const Rsrsg& set,
                             std::string_view a, std::string_view b);

/// May `pvar` be NULL (unbound) in some graph of `set`?
[[nodiscard]] bool may_be_null(const ProgramAnalysis& program, const Rsrsg& set,
                               std::string_view pvar);

/// May the heap regions reachable from two access paths overlap in some
/// graph of `set`? Paths are "pvar" or "pvar->sel" (one selector step) —
/// the disjoint-data-regions question the paper's §1 motivates. Returns
/// false only when every graph proves the regions disjoint.
[[nodiscard]] bool regions_may_overlap(const ProgramAnalysis& program,
                                       const Rsrsg& set, std::string_view path_a,
                                       std::string_view path_b);

/// May the two access paths denote the same location — i.e. do their target
/// node sets intersect in some graph? (Weaker than regions_may_overlap: the
/// paths themselves, not everything reachable from them.) Nodes exactly one
/// selector step from a pvar are what C_SPATH1 keeps apart, so this query is
/// the canonical L1-vs-L2 precision probe.
[[nodiscard]] bool paths_may_alias(const ProgramAnalysis& program,
                                   const Rsrsg& set, std::string_view path_a,
                                   std::string_view path_b);

/// Classification of the data structure reachable from a pvar, computed on
/// every graph of the set and reduced to the weakest claim.
enum class StructureKind : std::uint8_t {
  kUnreachable,  // pvar unbound in every graph
  kAcyclicList,  // out-degree <= 1 per traversal selector, no sharing, no cycle
  kTree,         // no sharing (except cycle-link back-pointers), no cycle
  kDag,          // sharing but no cycle (other than cycle-link pairs)
  kCyclic,       // may contain a cycle not explained by cycle-link pairs
};

[[nodiscard]] std::string_view to_string(StructureKind kind);

/// Classify what `pvar` references at the end of the function.
[[nodiscard]] StructureKind classify_structure(const ProgramAnalysis& program,
                                               const Rsrsg& set,
                                               std::string_view pvar);

/// Statistics of an RSRSG (for reports and the Table-1 harness).
struct SetStats {
  std::size_t graphs = 0;
  std::size_t nodes = 0;
  std::size_t links = 0;
  std::size_t bytes = 0;
};
[[nodiscard]] SetStats stats(const Rsrsg& set);

}  // namespace psa::client
