#include "client/dot.hpp"

#include <sstream>

namespace psa::client {

using rsg::Cardinality;
using rsg::NodeRef;
using rsg::Rsg;
using support::Symbol;

namespace {

void emit_rsg(std::ostringstream& os, const Rsg& g,
              const support::Interner& in, const std::string& prefix) {
  for (const NodeRef n : g.node_refs()) {
    const auto& p = g.props(n);
    os << "  " << prefix << "n" << n << " [label=\"n" << n;
    if (p.shared) os << "\\nSHARED";
    if (!p.shsel.empty()) {
      os << "\\nSHSEL:";
      for (const Symbol s : p.shsel) os << ' ' << in.spelling(s);
    }
    if (!p.touch.empty()) {
      os << "\\nTOUCH:";
      for (const Symbol s : p.touch) os << ' ' << in.spelling(s);
    }
    os << '"';
    if (p.cardinality == Cardinality::kMany) os << ", peripheries=2";
    os << "];\n";
  }
  for (const auto& [pvar, n] : g.pvar_links()) {
    os << "  " << prefix << "pv_" << pvar.id() << " [label=\""
       << in.spelling(pvar) << "\", shape=box];\n";
    os << "  " << prefix << "pv_" << pvar.id() << " -> " << prefix << "n" << n
       << ";\n";
  }
  for (const NodeRef n : g.node_refs()) {
    for (const rsg::Link& l : g.out_links(n)) {
      os << "  " << prefix << "n" << n << " -> " << prefix << "n" << l.target
         << " [label=\"" << in.spelling(l.sel) << "\"];\n";
    }
  }
}

}  // namespace

std::string to_dot(const Rsg& g, const support::Interner& in,
                   std::string_view graph_name) {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n  rankdir=LR;\n";
  emit_rsg(os, g, in, "");
  os << "}\n";
  return os.str();
}

std::string to_dot(const analysis::Rsrsg& set, const support::Interner& in,
                   std::string_view graph_name) {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n  rankdir=LR;\n";
  for (std::size_t i = 0; i < set.graphs().size(); ++i) {
    os << "  subgraph cluster_" << i << " {\n    label=\"rsg " << i << "\";\n";
    std::ostringstream body;
    emit_rsg(body, set.graphs()[i], in, "g" + std::to_string(i) + "_");
    os << body.str() << "  }\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace psa::client
