#include "client/report.hpp"

#include <sstream>

#include "client/parallelism.hpp"
#include "client/queries.hpp"

namespace psa::client {

namespace {

void append_sharing_facts(std::ostringstream& os,
                          const analysis::ProgramAnalysis& program,
                          const analysis::Rsrsg& at_exit) {
  const auto& interner = *program.unit.interner;
  os << "sharing facts at exit (struct x selector -> may be referenced "
        "twice?):\n";
  for (std::size_t i = 0; i < program.unit.types.struct_count(); ++i) {
    const auto id = static_cast<lang::StructId>(i);
    const auto& decl = program.unit.types.struct_decl(id);
    const std::string struct_name{interner.spelling(decl.name)};
    const bool shared = may_be_shared(program, at_exit, struct_name);
    os << "  struct " << struct_name << ": SHARED="
       << (shared ? "maybe" : "no");
    for (const auto& selectors = program.unit.types.all_selectors();
         const auto sel : selectors) {
      const std::string sel_name{interner.spelling(sel)};
      if (may_be_shared_via(program, at_exit, struct_name, sel_name)) {
        os << " SHSEL(" << sel_name << ")=maybe";
      }
    }
    os << '\n';
  }
}

}  // namespace

std::string format_analysis_report(const analysis::ProgramAnalysis& program,
                                   const analysis::AnalysisResult& result,
                                   const ReportOptions& options) {
  std::ostringstream os;
  const auto& interner = *program.unit.interner;

  os << "analysis: " << analysis::to_string(result.status) << " in "
     << result.seconds << " s, " << result.node_visits
     << " statement visits, peak " << result.peak_bytes()
     << " bytes of RSG storage\n";
  if (options.degradation && result.degraded()) {
    os << "degradation: " << result.degradation.summary() << '\n'
       << "  (degraded states are sound over-approximations; precision, not "
          "safety, was traded)\n";
  }
  os << "cfg: " << program.cfg.size() << " statements, "
     << program.cfg.pointer_vars().size() << " pvars, "
     << program.cfg.loop_scopes().size() << " loops\n";

  if (options.per_statement) {
    os << "\nper-statement RSRSGs:\n";
    for (cfg::NodeId id = 0; id < program.cfg.size(); ++id) {
      const auto& set = result.per_node[id];
      os << '#' << id << " (line " << program.cfg.node(id).stmt.loc.line
         << ") " << cfg::to_string(program.cfg.node(id).stmt, interner)
         << ": " << set.size() << " graph(s), " << set.total_nodes()
         << " node(s)\n";
    }
  }

  const auto& at_exit = result.at_exit(program.cfg);
  os << "\nexit state: " << at_exit.size() << " graph(s), "
     << at_exit.total_nodes() << " node(s)\n";

  if (options.sharing && !at_exit.empty()) {
    os << '\n';
    append_sharing_facts(os, program, at_exit);
  }

  if (options.parallelism) {
    os << "\nloop parallelism:\n"
       << format_report(detect_parallel_loops(program, result));
  }

  return os.str();
}

}  // namespace psa::client
