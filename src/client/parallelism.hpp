// Loop-parallelism detection — the client pass the paper motivates.
//
// §1: "a subsequent analysis would detect whether or not certain sections of
// the code can be parallelized because they access independent data
// regions"; §5.1 concludes that after L3 "a subsequent analysis of the code
// can state that the tree can be traversed and updated in parallel on step
// (iii)". The paper leaves that pass to future work; we implement the
// natural criterion over RSRSGs:
//
//   A loop is parallelizable when, at every write statement of its body
//   (pointer stores and scalar field writes alike), the written location —
//   the node the statement's base pvar references in that statement's RSRSG
//   — cannot be reached a second time through any selector the loop's loads
//   dereference: SHSEL(n, sel) = false for every traversal selector, unless
//   sel is the returning half of one of n's cycle-link pairs (a structural
//   back-pointer such as a DLL's prv).
//
// Limitations (documented): reads are only protected insofar as the read
// location is also written somewhere in the loop; loops whose iterations
// deliberately read their neighbours (p->nxt->val) while writing p are
// reported parallel even though a loop-carried read-after-write exists; and
// circular-list traversals terminated by pointer comparison are outside the
// corpus subset.
#pragma once

#include <string>
#include <vector>

#include "analysis/analyzer.hpp"

namespace psa::client {

struct LoopParallelism {
  std::uint32_t loop_id = 0;
  support::SourceLoc loc;
  bool parallelizable = false;
  /// Traversal selectors (loads) and written selectors (stores) of the body.
  std::vector<std::string> traversal_selectors;
  std::vector<std::string> written_selectors;
  /// Human-readable reasons when not parallelizable.
  std::vector<std::string> conflicts;
};

/// Analyze every loop of the program against `result`.
[[nodiscard]] std::vector<LoopParallelism> detect_parallel_loops(
    const analysis::ProgramAnalysis& program,
    const analysis::AnalysisResult& result);

/// Render a report table.
[[nodiscard]] std::string format_report(
    const std::vector<LoopParallelism>& loops);

/// The paper's stated next step ("automatic generation of parallel code"):
/// return `source` with an OpenMP `#pragma omp parallel for`-style comment
/// inserted above every loop the detector proved parallelizable, and a
/// `// psa: serial — <reason>` note above every loop it could not. Lines are
/// matched by the loop's source location.
[[nodiscard]] std::string annotate_source(
    std::string_view source, const std::vector<LoopParallelism>& loops);

}  // namespace psa::client
