// Textual analysis reports: everything the CLI and the examples print about
// one analyzed function — per-statement RSRSG sizes, exit-state shape facts,
// loop parallelism, and resource usage.
#pragma once

#include <string>

#include "analysis/analyzer.hpp"

namespace psa::client {

struct ReportOptions {
  /// Dump the RSRSG of every statement (verbose) instead of the exit only.
  bool per_statement = false;
  /// Include the loop-parallelism table.
  bool parallelism = true;
  /// Include per-struct sharing facts.
  bool sharing = true;
  /// Include the governor's degradation section when a budget tripped.
  bool degradation = true;
};

/// Render a human-readable report of one analysis run.
[[nodiscard]] std::string format_analysis_report(
    const analysis::ProgramAnalysis& program,
    const analysis::AnalysisResult& result, const ReportOptions& options = {});

}  // namespace psa::client
