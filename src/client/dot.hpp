// Graphviz export of RSGs and RSRSGs (the pictures of Fig. 1 and Fig. 3).
#pragma once

#include <string>

#include "analysis/rsrsg.hpp"
#include "rsg/rsg.hpp"
#include "support/interner.hpp"

namespace psa::client {

/// One RSG as a DOT digraph. Summary nodes are drawn as double circles,
/// pvars as boxes; SHARED/SHSEL annotations appear in the node label.
[[nodiscard]] std::string to_dot(const rsg::Rsg& g,
                                 const support::Interner& interner,
                                 std::string_view graph_name = "rsg");

/// A whole RSRSG as one DOT file with a cluster per member graph.
[[nodiscard]] std::string to_dot(const analysis::Rsrsg& set,
                                 const support::Interner& interner,
                                 std::string_view graph_name = "rsrsg");

}  // namespace psa::client
