// Implementation of the memory-safety checkers (see checker.hpp).
#include "checker/checker.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <queue>
#include <sstream>

#include "support/metrics.hpp"

namespace psa::checker {

std::string_view to_string(CheckKind kind) {
  switch (kind) {
    case CheckKind::kNullDeref: return "null-dereference";
    case CheckKind::kUseAfterFree: return "use-after-free";
    case CheckKind::kDoubleFree: return "double-free";
    case CheckKind::kLeak: return "memory-leak";
    case CheckKind::kLeakAtExit: return "leak-at-exit";
  }
  return "?";
}

std::string_view to_string(CheckSeverity severity) {
  switch (severity) {
    case CheckSeverity::kNote: return "note";
    case CheckSeverity::kWarning: return "warning";
    case CheckSeverity::kError: return "error";
  }
  return "?";
}

std::string_view rule_id(CheckKind kind) {
  switch (kind) {
    case CheckKind::kNullDeref: return "PSA-NULL-DEREF";
    case CheckKind::kUseAfterFree: return "PSA-USE-AFTER-FREE";
    case CheckKind::kDoubleFree: return "PSA-DOUBLE-FREE";
    case CheckKind::kLeak: return "PSA-LEAK";
    case CheckKind::kLeakAtExit: return "PSA-LEAK-AT-EXIT";
  }
  return "PSA-UNKNOWN";
}

namespace {

using cfg::NodeId;
using cfg::SimpleOp;
using rsg::FreeState;
using rsg::kNoNode;
using rsg::NodeRef;
using rsg::Rsg;
using support::Symbol;

/// The pvar a statement dereferences, when it dereferences one.
std::optional<Symbol> deref_base(const cfg::SimpleStmt& stmt) {
  switch (stmt.op) {
    case SimpleOp::kLoad:
      return stmt.y;  // x = y->sel
    case SimpleOp::kStore:
    case SimpleOp::kStoreNull:
    case SimpleOp::kFieldRead:
    case SimpleOp::kFieldWrite:
      return stmt.x;  // x->sel = ...   /   ... = x->sel
    default:
      return std::nullopt;
  }
}

/// Render one abstract node for a witness: type, cardinality, sharing bits,
/// FREE state, zero-length SPATH (referencing pvars) and alloc sites.
std::string render_node(const ProgramAnalysis& program, const Rsg& g,
                        NodeRef n) {
  const rsg::NodeProps& props = g.props(n);
  const support::Interner& in = program.interner();
  std::ostringstream os;
  os << "struct "
     << in.spelling(program.unit.types.struct_decl(props.type).name);
  os << ", card="
     << (props.cardinality == rsg::Cardinality::kOne ? "one" : "many");
  if (props.shared) os << ", SHARED";
  if (!props.shsel.empty()) {
    os << ", SHSEL{";
    bool first = true;
    for (const Symbol s : props.shsel) {
      os << (first ? "" : " ") << in.spelling(s);
      first = false;
    }
    os << "}";
  }
  switch (props.free_state) {
    case FreeState::kLive: break;
    case FreeState::kFreed: os << ", FREED"; break;
    case FreeState::kMaybeFreed: os << ", MAYBE-FREED"; break;
  }
  const auto pvars = g.pvars_of(n);
  if (!pvars.empty()) {
    os << ", SPATH0{";
    bool first = true;
    for (const Symbol s : pvars) {
      os << (first ? "" : " ") << in.spelling(s);
      first = false;
    }
    os << "}";
  }
  if (!props.alloc_sites.empty()) {
    os << ", alloc@{";
    bool first = true;
    for (const std::uint32_t line : props.alloc_sites) {
      os << (first ? "" : " ") << "line " << line;
      first = false;
    }
    os << "}";
  }
  return os.str();
}

/// Comma-joined alloc-site lines of a node ("line 3, line 7"), or "" when
/// the node carries none (e.g. after a widened merge dropped nothing — alloc
/// sites only grow, so empty means the node was never malloc-stamped).
std::string alloc_sites_of(const Rsg& g, NodeRef n) {
  std::ostringstream os;
  bool first = true;
  for (const std::uint32_t line : g.props(n).alloc_sites) {
    os << (first ? "" : ", ") << "line " << line;
    first = false;
  }
  return os.str();
}

/// Worth showing on a witness trace: statements with pointer semantics plus
/// the branch refinements that shaped the incoming state.
bool trace_relevant(const cfg::SimpleStmt& stmt) {
  switch (stmt.op) {
    case SimpleOp::kPtrNull:
    case SimpleOp::kPtrMalloc:
    case SimpleOp::kPtrCopy:
    case SimpleOp::kStoreNull:
    case SimpleOp::kStore:
    case SimpleOp::kLoad:
    case SimpleOp::kFree:
    case SimpleOp::kFieldRead:
    case SimpleOp::kFieldWrite:
    case SimpleOp::kAssumeNull:
    case SimpleOp::kAssumeNotNull:
      return true;
    default:
      return false;
  }
}

/// BFS shortest CFG path entry -> site, rendered as trace steps (relevant
/// statements only, truncated at the front to `max_steps`).
std::vector<TraceStep> witness_trace(const ProgramAnalysis& program,
                                     NodeId site, std::size_t max_steps) {
  const cfg::Cfg& cfg = program.cfg;
  std::vector<NodeId> parent(cfg.size(), cfg::kInvalidNode);
  std::vector<bool> seen(cfg.size(), false);
  std::queue<NodeId> work;
  work.push(cfg.entry());
  seen[cfg.entry()] = true;
  while (!work.empty() && !seen[site]) {
    const NodeId cur = work.front();
    work.pop();
    for (const NodeId next : cfg.node(cur).succs) {
      if (seen[next]) continue;
      seen[next] = true;
      parent[next] = cur;
      work.push(next);
    }
  }
  if (!seen[site]) return {};  // unreachable statement

  std::vector<NodeId> path;
  for (NodeId cur = site; cur != cfg::kInvalidNode; cur = parent[cur])
    path.push_back(cur);
  std::reverse(path.begin(), path.end());

  std::vector<TraceStep> steps;
  for (const NodeId id : path) {
    const cfg::SimpleStmt& stmt = cfg.node(id).stmt;
    if (!trace_relevant(stmt) || !stmt.loc.valid()) continue;
    steps.push_back({stmt.loc, cfg::to_string(stmt, program.interner())});
  }
  if (max_steps > 0 && steps.size() > max_steps) {
    const std::size_t dropped = steps.size() - max_steps;
    steps.erase(steps.begin(),
                steps.begin() + static_cast<std::ptrdiff_t>(dropped));
    steps.insert(steps.begin(),
                 TraceStep{{}, "... (" + std::to_string(dropped) +
                                   " earlier steps omitted)"});
  }
  return steps;
}

/// The incoming abstract state of a statement: union of the predecessors'
/// outputs; the entry executes on the single empty graph (mirrors the
/// engine's own input construction).
std::vector<const Rsg*> incoming_graphs(const ProgramAnalysis& program,
                                        const AnalysisResult& result,
                                        NodeId id, const Rsg& empty) {
  std::vector<const Rsg*> in;
  if (id == program.cfg.entry()) {
    in.push_back(&empty);
    return in;
  }
  for (const NodeId pred : program.cfg.node(id).preds) {
    for (const Rsg& g : result.per_node[pred].graphs()) in.push_back(&g);
  }
  return in;
}

/// Does killing `victim`'s reachability witness leave it unreachable? The
/// caller mutates a copy of the graph (unbinding a pvar / removing a link)
/// and asks whether `victim` — identified by ref in that copy — died.
bool unreachable_in(const Rsg& g, NodeRef victim) {
  const std::vector<bool> reach = g.reachable_from_pvars();
  return !reach[victim];
}

struct Checker {
  const ProgramAnalysis& program;
  const AnalysisResult& result;
  const CheckOptions& options;
  std::vector<Finding> findings;

  void add(CheckKind kind, CheckSeverity severity, NodeId site,
           std::string message, std::string witness, std::size_t bad,
           std::size_t total, bool degraded = false) {
    Finding f;
    f.kind = kind;
    f.severity = severity;
    f.site = site;
    const cfg::SimpleStmt& stmt = program.cfg.node(site).stmt;
    f.loc = stmt.loc;
    f.stmt = cfg::to_string(stmt, program.interner());
    f.message = std::move(message);
    f.witness_node = std::move(witness);
    f.graphs_bad = bad;
    f.graphs_total = total;
    f.degraded = degraded;
    if (degraded) {
      // Confidence taint: no untainted configuration witnesses the defect,
      // so a havoc over-approximation may have fabricated it. Downgrade but
      // never drop.
      if (f.severity == CheckSeverity::kError)
        f.severity = CheckSeverity::kWarning;
      f.message += " — possible (degraded frontend)";
    }
    if (options.witness_traces)
      f.trace = witness_trace(program, site, options.max_trace_steps);
    findings.push_back(std::move(f));
  }

  /// A configuration's defect witness is havoc-tainted when the graph went
  /// through a havoc transfer (graph bit survives JOIN) or the specific
  /// witness node carries the taint (node bit survives COMPRESS merges).
  static bool tainted_witness(const Rsg& g, NodeRef n) {
    if (g.havoc()) return true;
    return n != kNoNode && g.props(n).havoc;
  }

  [[nodiscard]] std::string_view spell(Symbol s) const {
    return program.interner().spelling(s);
  }

  // --- NULL dereference + use-after-free at dereference sites -------------

  void check_deref(NodeId id, const std::vector<const Rsg*>& in) {
    const cfg::SimpleStmt& stmt = program.cfg.node(id).stmt;
    const auto base = deref_base(stmt);
    if (!base) return;

    std::size_t null_bad = 0;
    std::size_t null_clean = 0;
    std::size_t freed_bad = 0;
    std::size_t freed_clean = 0;
    bool all_freed_definite = true;
    std::string witness;
    for (const Rsg* g : in) {
      const NodeRef n = g->pvar_target(*base);
      if (n == kNoNode) {
        ++null_bad;
        if (!tainted_witness(*g, n)) ++null_clean;
        continue;
      }
      if (rsg::may_be_freed(g->props(n).free_state)) {
        ++freed_bad;
        if (!tainted_witness(*g, n)) ++freed_clean;
        all_freed_definite &=
            g->props(n).free_state == FreeState::kFreed;
        if (witness.empty()) witness = render_node(program, *g, n);
      }
    }

    if (options.null_deref && null_bad > 0) {
      const bool definite = null_bad == in.size();
      std::ostringstream msg;
      msg << "dereference of '" << spell(*base) << "' which "
          << (definite ? "is" : "may be") << " NULL (" << null_bad << " of "
          << in.size() << " incoming configurations)";
      add(CheckKind::kNullDeref,
          definite ? CheckSeverity::kError : CheckSeverity::kWarning, id,
          msg.str(), /*witness=*/"", null_bad, in.size(),
          /*degraded=*/null_clean == 0);
    }
    if (options.use_after_free && freed_bad > 0) {
      const bool definite =
          freed_bad == in.size() && all_freed_definite;
      std::ostringstream msg;
      msg << "use of '" << spell(*base) << "' after free ("
          << freed_bad << " of " << in.size()
          << " incoming configurations reference freed memory)";
      add(CheckKind::kUseAfterFree,
          definite ? CheckSeverity::kError : CheckSeverity::kWarning, id,
          msg.str(), std::move(witness), freed_bad, in.size(),
          /*degraded=*/freed_clean == 0);
    }
  }

  // --- double free ---------------------------------------------------------

  void check_free(NodeId id, const std::vector<const Rsg*>& in) {
    const cfg::SimpleStmt& stmt = program.cfg.node(id).stmt;
    if (stmt.op != SimpleOp::kFree || !options.use_after_free) return;

    std::size_t bad = 0;
    std::size_t clean = 0;
    bool all_definite = true;
    std::string witness;
    for (const Rsg* g : in) {
      const NodeRef n = g->pvar_target(stmt.x);
      if (n == kNoNode) continue;  // free(NULL) is well-defined
      if (!rsg::may_be_freed(g->props(n).free_state)) continue;
      ++bad;
      if (!tainted_witness(*g, n)) ++clean;
      all_definite &= g->props(n).free_state == FreeState::kFreed;
      if (witness.empty()) witness = render_node(program, *g, n);
    }
    if (bad == 0) return;
    const bool definite = bad == in.size() && all_definite;
    std::ostringstream msg;
    msg << "double free of '" << spell(stmt.x) << "' (" << bad << " of "
        << in.size() << " incoming configurations already freed it)";
    add(CheckKind::kDoubleFree,
        definite ? CheckSeverity::kError : CheckSeverity::kWarning, id,
        msg.str(), std::move(witness), bad, in.size(),
        /*degraded=*/clean == 0);
  }

  // --- leaks at reference kills -------------------------------------------

  /// Record the victims (per incoming graph) a statement's kill makes
  /// unreachable, then fold them into at most one finding for the site.
  void check_leak(NodeId id, const std::vector<const Rsg*>& in) {
    if (!options.leaks) return;
    const cfg::SimpleStmt& stmt = program.cfg.node(id).stmt;

    std::size_t bad = 0;
    std::size_t clean = 0;
    std::string witness;
    std::string sites;
    for (const Rsg* g : in) {
      const NodeRef victim = leaked_victim(stmt, *g);
      if (victim == kNoNode) continue;
      ++bad;
      if (!tainted_witness(*g, victim)) ++clean;
      if (witness.empty()) {
        witness = render_node(program, *g, victim);
        sites = alloc_sites_of(*g, victim);
      }
    }
    if (bad == 0) return;

    std::ostringstream msg;
    msg << "last reference to heap memory";
    if (!sites.empty()) msg << " allocated at " << sites;
    msg << " is lost here (" << bad << " of " << in.size()
        << " incoming configurations)";
    add(CheckKind::kLeak, CheckSeverity::kWarning, id, msg.str(),
        std::move(witness), bad, in.size(), /*degraded=*/clean == 0);
  }

  /// The node `stmt` makes unreachable in `g`, or kNoNode. Simulates only
  /// the *kill* half of the statement on a copy (unbinding the destination
  /// pvar / removing the overwritten link); the gen half can resurrect the
  /// victim only in the cases handled explicitly below.
  [[nodiscard]] NodeRef leaked_victim(const cfg::SimpleStmt& stmt,
                                      const Rsg& g) const {
    switch (stmt.op) {
      case SimpleOp::kPtrNull:
      case SimpleOp::kPtrMalloc:
      case SimpleOp::kPtrCopy:
      case SimpleOp::kLoad: {
        const NodeRef old = g.pvar_target(stmt.x);
        if (old == kNoNode) return kNoNode;
        if (g.props(old).free_state == FreeState::kFreed)
          return kNoNode;  // freed memory cannot leak
        // x = x is a no-op; x = x->sel handled below.
        if (stmt.op == SimpleOp::kPtrCopy && stmt.x == stmt.y) return kNoNode;
        Rsg sim = g;
        sim.unbind_pvar(stmt.x);
        if (!unreachable_in(sim, old)) return kNoNode;
        // x = y->sel may rebind x to the victim itself: no leak when that
        // rebinding is certain (definite unique sel-target).
        if (stmt.op == SimpleOp::kLoad) {
          const NodeRef yn = g.pvar_target(stmt.y);
          if (yn != kNoNode && g.definite_link(yn, stmt.sel, old))
            return kNoNode;
        }
        return old;
      }
      case SimpleOp::kStoreNull:
      case SimpleOp::kStore: {
        const NodeRef xn = g.pvar_target(stmt.x);
        if (xn == kNoNode) return kNoNode;
        for (const NodeRef t : g.sel_targets(xn, stmt.sel)) {
          if (g.props(t).free_state == FreeState::kFreed) continue;
          Rsg sim = g;
          sim.remove_link(xn, stmt.sel, t);
          if (unreachable_in(sim, t)) return t;
        }
        return kNoNode;
      }
      default:
        return kNoNode;
    }
  }

  // --- leaks at function exit ---------------------------------------------

  void check_exit_leaks() {
    if (!options.exit_leaks) return;
    const NodeId exit = program.cfg.exit();
    const auto& set = result.per_node[exit];
    if (set.empty()) return;

    // One finding per allocation site still live in some exit graph; nodes
    // without a recorded site fold into a line-0 bucket reported at exit.
    struct ExitSlot {
      std::size_t bad = 0;
      bool clean = false;  // some untainted witness exists
      std::string witness;
    };
    std::map<std::uint32_t, ExitSlot> by_line;
    for (const Rsg& g : set.graphs()) {
      for (const NodeRef n : g.node_refs()) {
        const rsg::NodeProps& props = g.props(n);
        if (props.free_state == FreeState::kFreed) continue;
        auto note = [&](std::uint32_t line) {
          ExitSlot& slot = by_line[line];
          ++slot.bad;
          if (!tainted_witness(g, n)) slot.clean = true;
          if (slot.witness.empty()) slot.witness = render_node(program, g, n);
        };
        if (props.alloc_sites.empty()) {
          note(0);
        } else {
          for (const std::uint32_t line : props.alloc_sites) note(line);
        }
      }
    }

    for (auto& [line, slot] : by_line) {
      Finding f;
      f.kind = CheckKind::kLeakAtExit;
      f.severity = CheckSeverity::kNote;
      f.site = exit;
      f.loc = line == 0 ? program.cfg.node(exit).stmt.loc
                        : support::SourceLoc{line, 1};
      f.stmt = "<function exit>";
      std::ostringstream msg;
      if (line == 0) {
        msg << "heap memory may still be live at function exit";
      } else {
        msg << "memory allocated at line " << line
            << " may still be live at function exit (never freed)";
      }
      f.message = msg.str();
      if (!slot.clean) f.message += " — possible (degraded frontend)";
      f.degraded = !slot.clean;
      f.witness_node = std::move(slot.witness);
      f.graphs_bad = slot.bad;
      f.graphs_total = set.size();
      findings.push_back(std::move(f));
    }
  }

  void run() {
    const Rsg empty;
    for (NodeId id = 0; id < program.cfg.size(); ++id) {
      const auto in = incoming_graphs(program, result, id, empty);
      if (in.empty()) continue;  // unreachable / not analyzed (partial run)
      check_deref(id, in);
      check_free(id, in);
      check_leak(id, in);
    }
    check_exit_leaks();

    std::sort(findings.begin(), findings.end(),
              [](const Finding& a, const Finding& b) {
                if (a.loc.line != b.loc.line) return a.loc.line < b.loc.line;
                if (a.loc.column != b.loc.column)
                  return a.loc.column < b.loc.column;
                return static_cast<int>(a.kind) < static_cast<int>(b.kind);
              });
  }
};

}  // namespace

std::vector<Finding> run_checkers(const ProgramAnalysis& program,
                                  const AnalysisResult& result,
                                  const CheckOptions& options) {
  PSA_PHASE_TIMER(checker_timer, support::Counter::kPhaseCheckerWallNs,
                  support::Counter::kPhaseCheckerCpuNs);
  Checker checker{program, result, options, {}};
  checker.run();
  return std::move(checker.findings);
}

std::string format_findings(const std::vector<Finding>& findings,
                            const ProgramAnalysis& program) {
  (void)program;
  std::ostringstream os;
  for (const Finding& f : findings) {
    os << f.loc.line << ":" << f.loc.column << ": " << to_string(f.severity)
       << ": [" << rule_id(f.kind) << "] " << f.message << "\n";
    os << "    at: " << f.stmt << "\n";
    if (!f.witness_node.empty())
      os << "    witness node: " << f.witness_node << "\n";
    if (!f.trace.empty()) {
      os << "    path:\n";
      for (const TraceStep& step : f.trace) {
        os << "      ";
        if (step.loc.valid()) os << "line " << step.loc.line << ": ";
        os << step.text << "\n";
      }
    }
  }
  if (findings.empty()) os << "no findings\n";
  return os.str();
}

std::size_t count_findings(const std::vector<Finding>& findings,
                           CheckKind kind) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [kind](const Finding& f) { return f.kind == kind; }));
}

}  // namespace psa::checker
