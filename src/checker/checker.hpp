// Memory-safety checkers over the RSRSG fixpoint.
//
// A post-analysis pass: given the per-statement RSRSGs computed by the
// engine, walk the CFG once and emit flow-sensitive diagnostics:
//
//   PSA-NULL-DEREF    the base pvar of a load/store may be NULL (unbound)
//                     in some incoming configuration. Assume-edge
//                     refinements are respected for free because the
//                     incoming state is the union of the *predecessor*
//                     outputs, after any kAssumeNull/kAssumeNotNull filter.
//   PSA-USE-AFTER-FREE  the base pvar may reference a node whose FREE
//                     state is kFreed/kMaybeFreed (see rsg/properties.hpp).
//   PSA-DOUBLE-FREE   free(x) where x may reference an already-freed node.
//   PSA-LEAK          a statement kills the last reference (pvar binding or
//                     overwritten selector link) to a non-freed node: the
//                     represented locations become unreachable.
//   PSA-LEAK-AT-EXIT  a non-freed allocation is still live when the
//                     function returns (reported at its malloc site).
//
// Severity policy: a defect present in *every* incoming configuration is an
// error (it happens on all abstracted paths); present in only some is a
// warning (may happen). Exit-leaks are notes — for many corpus functions
// leaving the structure alive at exit is the intended behaviour.
//
// Soundness caveats are documented in docs/CHECKERS.md: the checkers are
// sound for may-questions relative to the abstraction (no concrete
// NULL-deref / use-after-free / double-free at a checked site escapes a
// finding, including after governor degradation, because forced merges only
// widen FreeState toward kMaybeFreed), while leak findings are may-leaks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"

namespace psa::checker {

using analysis::AnalysisResult;
using analysis::ProgramAnalysis;

enum class CheckKind : std::uint8_t {
  kNullDeref,
  kUseAfterFree,
  kDoubleFree,
  kLeak,
  kLeakAtExit,
};

enum class CheckSeverity : std::uint8_t { kNote, kWarning, kError };

[[nodiscard]] std::string_view to_string(CheckKind kind);
[[nodiscard]] std::string_view to_string(CheckSeverity severity);
/// Stable rule identifier, e.g. "PSA-NULL-DEREF" (used as the SARIF ruleId).
[[nodiscard]] std::string_view rule_id(CheckKind kind);

/// One step of a witness trace: a CFG statement on a shortest control-flow
/// path from the function entry to the finding site.
struct TraceStep {
  support::SourceLoc loc;
  std::string text;  // pretty-printed lowered statement
};

struct Finding {
  CheckKind kind = CheckKind::kNullDeref;
  CheckSeverity severity = CheckSeverity::kWarning;
  cfg::NodeId site = cfg::kInvalidNode;
  support::SourceLoc loc;
  std::string stmt;     // pretty-printed offending statement
  std::string message;  // one-line diagnostic
  /// Rendering of the offending abstract node (type, cardinality, SHARED /
  /// SHSEL bits, FREE state, SPATH pvars, alloc sites) from one witness
  /// configuration; empty when the defect is "pvar unbound".
  std::string witness_node;
  /// Shortest entry-to-site CFG path (possibly truncated at the front).
  std::vector<TraceStep> trace;
  /// How many of the incoming configurations exhibit the defect.
  std::size_t graphs_bad = 0;
  std::size_t graphs_total = 0;
  /// Every witnessing configuration was havoc-tainted (salvage-mode
  /// frontend, see docs/RESILIENCE.md): the defect may be an artifact of
  /// the sound over-approximation of unsupported code. Degraded findings
  /// are reported at most at kWarning and flagged "possible (degraded
  /// frontend)" — never dropped. A single untainted witness keeps the
  /// finding at full confidence.
  bool degraded = false;
};

struct CheckOptions {
  bool null_deref = true;
  bool use_after_free = true;  // also covers double-free
  bool leaks = true;
  bool exit_leaks = true;
  /// Attach entry-to-site witness traces (BFS shortest path).
  bool witness_traces = true;
  /// Keep at most this many steps per trace (the tail, nearest the site).
  std::size_t max_trace_steps = 24;
};

/// Run every enabled checker over the fixpoint result. Findings are sorted
/// by source location, then kind. Works on partial (hard-failed) results
/// too: statements whose incoming state is empty are skipped.
[[nodiscard]] std::vector<Finding> run_checkers(const ProgramAnalysis& program,
                                                const AnalysisResult& result,
                                                const CheckOptions& options = {});

/// Human-readable rendering, one block per finding:
///   <line>:<col>: <severity>: [<rule>] <message>
///      at: <stmt>   witness: <node>   trace: ...
[[nodiscard]] std::string format_findings(const std::vector<Finding>& findings,
                                          const ProgramAnalysis& program);

/// Count findings of one kind (for tests and reports).
[[nodiscard]] std::size_t count_findings(const std::vector<Finding>& findings,
                                         CheckKind kind);

}  // namespace psa::checker
