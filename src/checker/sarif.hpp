// SARIF 2.1.0 serialization of checker findings.
//
// Emits the minimal valid subset of the Static Analysis Results Interchange
// Format (OASIS sarif-2.1.0, schema
// https://json.schemastore.org/sarif-2.1.0.json): one run, a tool.driver
// with one reportingDescriptor per rule, and one result per finding with
// level, message, physical location and a codeFlow carrying the witness
// trace. Viewers (VS Code SARIF extension, GitHub code scanning) can load
// the output directly.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "checker/checker.hpp"

namespace psa::checker {

struct SarifOptions {
  /// artifactLocation.uri of every result (the analyzed source buffer).
  std::string artifact_uri = "input.c";
  std::string tool_name = "psa";
  std::string tool_version = "0.2.0";
  /// Pretty-print with two-space indentation (machine consumers accept both).
  bool pretty = true;
};

/// Serialize `findings` as a complete SARIF 2.1.0 log (one run).
[[nodiscard]] std::string to_sarif(const std::vector<Finding>& findings,
                                   const SarifOptions& options = {});

}  // namespace psa::checker
