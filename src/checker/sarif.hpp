// SARIF 2.1.0 serialization of checker findings.
//
// Emits the minimal valid subset of the Static Analysis Results Interchange
// Format (OASIS sarif-2.1.0, schema
// https://json.schemastore.org/sarif-2.1.0.json): one run, a tool.driver
// with one reportingDescriptor per rule, and one result per finding with
// level, message, physical location and a codeFlow carrying the witness
// trace. Viewers (VS Code SARIF extension, GitHub code scanning) can load
// the output directly.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "checker/checker.hpp"

namespace psa::checker {

struct SarifOptions {
  /// artifactLocation.uri of every result (the analyzed source buffer).
  std::string artifact_uri = "input.c";
  std::string tool_name = "psa";
  std::string tool_version = "0.2.0";
  /// Pretty-print with two-space indentation (machine consumers accept both).
  bool pretty = true;
};

/// Serialize `findings` as a complete SARIF 2.1.0 log (one run).
[[nodiscard]] std::string to_sarif(const std::vector<Finding>& findings,
                                   const SarifOptions& options = {});

/// Findings of one analysis unit (one artifact) inside a batch run.
struct ArtifactFindings {
  /// artifactLocation.uri of this unit's results.
  std::string artifact_uri;
  std::vector<Finding> findings;
};

/// Merge the findings of many units — including the partial yield of a batch
/// whose other units crashed or were quarantined — into ONE SARIF log with a
/// single run, attributing each result to its own artifact.
/// `options.artifact_uri` is ignored; each group carries its own.
[[nodiscard]] std::string to_sarif_batch(
    const std::vector<ArtifactFindings>& batch, const SarifOptions& options = {});

}  // namespace psa::checker
