// SARIF 2.1.0 writer (see sarif.hpp). Hand-rolled JSON emission — the
// subset is small and fixed, and the repo deliberately has no JSON
// dependency.
#include "checker/sarif.hpp"

#include <array>
#include <sstream>

namespace psa::checker {

namespace {

/// JSON string escaping per RFC 8259 (control characters as \u00XX).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += hex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Tiny streaming JSON writer: tracks nesting and comma placement so the
/// SARIF structure below stays readable.
class JsonWriter {
 public:
  explicit JsonWriter(bool pretty) : pretty_(pretty) {}

  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  void key(std::string_view k) {
    comma();
    newline();
    os_ << '"' << json_escape(k) << "\":";
    if (pretty_) os_ << ' ';
    pending_value_ = true;
  }

  void value(std::string_view v) {
    comma();
    newline();
    os_ << '"' << json_escape(v) << '"';
    first_ = false;
  }
  void value(std::uint64_t v) {
    comma();
    newline();
    os_ << v;
    first_ = false;
  }
  /// Deliberately not an overload of value(): a string literal would
  /// pointer-convert to bool and win overload resolution.
  void value_bool(bool v) {
    comma();
    newline();
    os_ << (v ? "true" : "false");
    first_ = false;
  }

  [[nodiscard]] std::string str() const { return os_.str(); }

 private:
  void open(char c) {
    comma();
    newline();
    os_ << c;
    ++depth_;
    first_ = true;
  }
  void close(char c) {
    --depth_;
    if (!first_ && pretty_) {
      os_ << '\n';
      indent();
    }
    os_ << c;
    first_ = false;
  }
  void comma() {
    if (pending_value_) {
      pending_value_ = false;
      was_key_ = true;
      return;
    }
    if (!first_) os_ << ',';
    was_key_ = false;
  }
  void newline() {
    if (was_key_) {
      was_key_ = false;
      return;
    }
    if (pretty_ && depth_ > 0) {
      os_ << '\n';
      indent();
    }
  }
  void indent() {
    for (int i = 0; i < depth_; ++i) os_ << "  ";
  }

  std::ostringstream os_;
  bool pretty_;
  int depth_ = 0;
  bool first_ = true;
  bool pending_value_ = false;
  bool was_key_ = false;
};

constexpr std::array<CheckKind, 5> kAllKinds = {
    CheckKind::kNullDeref, CheckKind::kUseAfterFree, CheckKind::kDoubleFree,
    CheckKind::kLeak, CheckKind::kLeakAtExit};

std::string_view rule_description(CheckKind kind) {
  switch (kind) {
    case CheckKind::kNullDeref:
      return "Dereference of a pointer that may be NULL.";
    case CheckKind::kUseAfterFree:
      return "Dereference of a pointer to memory that may have been freed.";
    case CheckKind::kDoubleFree:
      return "free() of memory that may already have been freed.";
    case CheckKind::kLeak:
      return "The last reference to a heap allocation is lost.";
    case CheckKind::kLeakAtExit:
      return "A heap allocation may still be live at function exit.";
  }
  return "";
}

std::string_view sarif_level(CheckSeverity severity) {
  switch (severity) {
    case CheckSeverity::kNote: return "note";
    case CheckSeverity::kWarning: return "warning";
    case CheckSeverity::kError: return "error";
  }
  return "none";
}

std::size_t rule_index(CheckKind kind) {
  for (std::size_t i = 0; i < kAllKinds.size(); ++i)
    if (kAllKinds[i] == kind) return i;
  return 0;
}

void write_location(JsonWriter& w, std::string_view artifact_uri,
                    support::SourceLoc loc) {
  w.begin_object();
  w.key("physicalLocation");
  w.begin_object();
  w.key("artifactLocation");
  w.begin_object();
  w.key("uri");
  w.value(artifact_uri);
  w.end_object();
  if (loc.valid()) {
    w.key("region");
    w.begin_object();
    w.key("startLine");
    w.value(static_cast<std::uint64_t>(loc.line));
    w.key("startColumn");
    w.value(static_cast<std::uint64_t>(loc.column == 0 ? 1 : loc.column));
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

void write_result(JsonWriter& w, std::string_view artifact_uri,
                  const Finding& f) {
  w.begin_object();
  w.key("ruleId");
  w.value(rule_id(f.kind));
  w.key("ruleIndex");
  w.value(static_cast<std::uint64_t>(rule_index(f.kind)));
  w.key("level");
  w.value(sarif_level(f.severity));
  w.key("message");
  w.begin_object();
  w.key("text");
  std::string text(f.message);
  if (!f.witness_node.empty()) text += " [witness: " + f.witness_node + "]";
  w.value(text);
  w.end_object();
  w.key("locations");
  w.begin_array();
  write_location(w, artifact_uri, f.loc);
  w.end_array();
  if (f.degraded) {
    // Salvage-mode confidence taint (partialFingerprints-adjacent): every
    // witness of this result went through a havoc over-approximation of
    // unsupported code, so the defect is possible rather than established.
    w.key("properties");
    w.begin_object();
    w.key("degradedFrontend");
    w.value_bool(true);
    w.key("confidence");
    w.value("possible");
    w.end_object();
  }
  if (!f.trace.empty()) {
    w.key("codeFlows");
    w.begin_array();
    w.begin_object();
    w.key("threadFlows");
    w.begin_array();
    w.begin_object();
    w.key("locations");
    w.begin_array();
    for (const TraceStep& step : f.trace) {
      w.begin_object();
      w.key("location");
      w.begin_object();
      w.key("physicalLocation");
      w.begin_object();
      w.key("artifactLocation");
      w.begin_object();
      w.key("uri");
      w.value(artifact_uri);
      w.end_object();
      if (step.loc.valid()) {
        w.key("region");
        w.begin_object();
        w.key("startLine");
        w.value(static_cast<std::uint64_t>(step.loc.line));
        w.end_object();
      }
      w.end_object();
      w.key("message");
      w.begin_object();
      w.key("text");
      w.value(step.text);
      w.end_object();
      w.end_object();
      w.end_object();
    }
    w.end_array();
    w.end_object();
    w.end_array();
    w.end_object();
    w.end_array();
  }
  w.end_object();
}

}  // namespace

std::string to_sarif_batch(const std::vector<ArtifactFindings>& batch,
                           const SarifOptions& options) {
  JsonWriter w(options.pretty);
  w.begin_object();
  w.key("$schema");
  w.value("https://json.schemastore.org/sarif-2.1.0.json");
  w.key("version");
  w.value("2.1.0");
  w.key("runs");
  w.begin_array();
  w.begin_object();

  w.key("tool");
  w.begin_object();
  w.key("driver");
  w.begin_object();
  w.key("name");
  w.value(options.tool_name);
  w.key("version");
  w.value(options.tool_version);
  w.key("informationUri");
  w.value("https://doi.org/10.1109/ICPP.2001.952041");
  w.key("rules");
  w.begin_array();
  for (const CheckKind kind : kAllKinds) {
    w.begin_object();
    w.key("id");
    w.value(rule_id(kind));
    w.key("name");
    w.value(to_string(kind));
    w.key("shortDescription");
    w.begin_object();
    w.key("text");
    w.value(rule_description(kind));
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();

  w.key("results");
  w.begin_array();
  for (const ArtifactFindings& group : batch) {
    for (const Finding& f : group.findings) {
      write_result(w, group.artifact_uri, f);
    }
  }
  w.end_array();

  w.end_object();
  w.end_array();
  w.end_object();
  std::string out = w.str();
  out += '\n';
  return out;
}

std::string to_sarif(const std::vector<Finding>& findings,
                     const SarifOptions& options) {
  std::vector<ArtifactFindings> batch(1);
  batch[0].artifact_uri = options.artifact_uri;
  batch[0].findings = findings;
  return to_sarif_batch(batch, options);
}

}  // namespace psa::checker
