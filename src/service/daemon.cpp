#include "service/daemon.hpp"

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "cache/cache.hpp"
#include "driver/fault.hpp"
#include "driver/supervisor.hpp"
#include "rsg/serialize.hpp"
#include "service/protocol.hpp"
#include "support/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PSA_SERVICE_HAS_SOCKETS 1
#include <csignal>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>
#if defined(__linux__)
#include <sys/prctl.h>
#endif
#else
#define PSA_SERVICE_HAS_SOCKETS 0
#endif

namespace psa::service {

#if PSA_SERVICE_HAS_SOCKETS

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

volatile std::sig_atomic_t g_drain_requested = 0;

void on_term_signal(int) { g_drain_requested = 1; }

void log_line(const DaemonOptions& options, const std::string& line) {
  if (options.log) options.log(line);
}

/// Append-only request journal next to the cache (or the socket). Best
/// effort: journal failures never fail the daemon.
class ServiceJournal {
 public:
  explicit ServiceJournal(const DaemonOptions& options) {
    const std::string dir =
        options.cache_dir.empty()
            ? fs::path(options.socket_path).parent_path().string()
            : options.cache_dir;
    if (dir.empty()) return;
    path_ = (fs::path(dir) / "service.journal").string();
    std::ofstream out(path_, std::ios::app);
    if (out) out << "psa-service-journal v1\n" << std::flush;
  }

  void record(const std::string& line) {
    if (path_.empty()) return;
    std::ofstream out(path_, std::ios::app);
    if (out) out << line << '\n' << std::flush;
  }

  /// The drain marker: a journal whose last line is "sealed" belonged to a
  /// daemon that exited gracefully with no request in flight.
  void seal() { record("sealed"); }

 private:
  std::string path_;
};

struct Handler {
  pid_t pid = -1;
  int conn_fd = -1;  // the parent's copy, for crash/deadline error frames
  Clock::time_point start;
  bool deadline_killed = false;
};

/// Bind the listening socket, recovering a stale socket file (bind says
/// in-use but nobody accepts connections there). -1 on failure.
int bind_listener(const DaemonOptions& options, std::string* error) {
  struct sockaddr_un addr {};
  addr.sun_family = AF_UNIX;
  if (options.socket_path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path too long: " + options.socket_path;
    return -1;
  }
  std::memcpy(addr.sun_path, options.socket_path.c_str(),
              options.socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = "cannot create socket";
    return -1;
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) !=
      0) {
    if (errno != EADDRINUSE) {
      *error = "cannot bind " + options.socket_path;
      ::close(fd);
      return -1;
    }
    // A socket file exists. A live daemon answers a connect; a dead one
    // refuses — then the file is stale and safe to reclaim.
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    const bool live =
        probe >= 0 &&
        ::connect(probe, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof addr) == 0;
    if (probe >= 0) ::close(probe);
    if (live) {
      *error = "another daemon is already serving " + options.socket_path;
      ::close(fd);
      return -1;
    }
    ::unlink(options.socket_path.c_str());
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) !=
        0) {
      *error = "cannot rebind " + options.socket_path;
      ::close(fd);
      return -1;
    }
  }
  if (::listen(fd, 64) != 0) {
    *error = "cannot listen on " + options.socket_path;
    ::close(fd);
    ::unlink(options.socket_path.c_str());
    return -1;
  }
  return fd;
}

/// The handler-child body: one request, one reply, exit. Never returns.
[[noreturn]] void run_handler(int conn_fd, const DaemonOptions& options) {
#if defined(__linux__)
  // Die with the daemon: a SIGKILLed daemon must leave no orphan handlers
  // (the client then sees a reset and falls back to local analysis).
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  std::string error;
  Frame frame;
  if (!recv_frame(conn_fd, frame, options.io_timeout_ms, &error)) {
    ::_exit(0);  // client went away or sent garbage; nothing to answer
  }
  if (frame.type == MsgType::kPing) {
    (void)send_frame(conn_fd, MsgType::kPong, "", options.io_timeout_ms,
                     &error);
    ::_exit(0);
  }
  if (frame.type != MsgType::kRequest) {
    (void)send_frame(conn_fd, MsgType::kError, "expected a request frame",
                     options.io_timeout_ms, &error);
    ::_exit(0);
  }

  try {
    const ServiceRequest request = decode_request(frame.body);

    // PSA_FAULT_AT sockdrop (docs/SERVICE.md): hang up without replying, as
    // a handler dying between accept and reply would. The client must treat
    // it as a connection reset — retry, then fall back.
    for (const driver::AnalysisUnit& unit : request.units) {
      if (driver::FaultPlan::from_env().for_unit(unit.name) ==
          driver::FaultKind::kSockDrop) {
        ::close(conn_fd);
        ::_exit(0);
      }
    }

    driver::BatchOptions batch;
    batch.isolate = true;
    batch.jobs = options.jobs;
    batch.cache_dir = options.cache_dir;
    batch.engine = request.engine;
    batch.check = request.check;
    batch.strict_frontend = request.strict_frontend;
    batch.unit_timeout_ms = request.unit_timeout_ms;
    const driver::BatchResult result = driver::run_batch(request.units, batch);

    (void)send_frame(conn_fd, MsgType::kResponse, encode_response(result),
                     options.io_timeout_ms, &error);
    ::_exit(0);
  } catch (const rsg::SnapshotError& e) {
    (void)send_frame(conn_fd, MsgType::kError, e.what(),
                     options.io_timeout_ms, &error);
    ::_exit(0);
  } catch (const std::exception& e) {
    (void)send_frame(conn_fd, MsgType::kError, e.what(),
                     options.io_timeout_ms, &error);
    ::_exit(1);
  }
}

/// Best-effort error frame on the parent's fd copy after a handler died
/// without replying. A short timeout: the client may already be gone.
void send_handler_error(int conn_fd, std::string_view what) {
  std::string error;
  (void)send_frame(conn_fd, MsgType::kError, what, 1000, &error);
}

}  // namespace

int run_daemon(const DaemonOptions& options) {
  std::string error;

  // Open + recover the cache before accepting anything, so a torn directory
  // (crashed previous daemon) is repaired exactly once, up front.
  if (!options.cache_dir.empty()) {
    try {
      cache::ResultCache cache(options.cache_dir);
      const cache::ResultCache::RecoveryReport recovered = cache.recover();
      std::ostringstream line;
      line << "serve: cache " << options.cache_dir << ": "
           << recovered.entries_kept << " entries";
      if (!recovered.clean()) {
        line << ", swept " << recovered.tmp_removed << " tmp, quarantined "
             << recovered.quarantined;
      }
      log_line(options, line.str());
    } catch (const std::exception& e) {
      log_line(options, std::string("serve: ") + e.what());
      return 1;
    }
  }

  const int listen_fd = bind_listener(options, &error);
  if (listen_fd < 0) {
    log_line(options, "serve: " + error);
    return 1;
  }

  std::signal(SIGPIPE, SIG_IGN);
  g_drain_requested = 0;
  std::signal(SIGTERM, on_term_signal);
  std::signal(SIGINT, on_term_signal);

  ServiceJournal journal(options);
  journal.record("start inflight=" + std::to_string(options.max_inflight));
  log_line(options, "serve: listening on " + options.socket_path);

  std::vector<Handler> handlers;

  const auto reap = [&](bool killing_overdue) {
    for (std::size_t h = 0; h < handlers.size();) {
      Handler& handler = handlers[h];

      if (killing_overdue && options.request_deadline_ms > 0 &&
          !handler.deadline_killed) {
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - handler.start)
                .count();
        if (elapsed >= static_cast<std::int64_t>(options.request_deadline_ms)) {
          handler.deadline_killed = true;
          ::kill(handler.pid, SIGKILL);
          log_line(options, "serve: request deadline exceeded, killed handler");
        }
      }

      int status = 0;
      const pid_t r = ::waitpid(handler.pid, &status, WNOHANG);
      if (r != handler.pid) {
        ++h;
        continue;
      }
      const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
      if (handler.deadline_killed) {
        send_handler_error(handler.conn_fd, "request deadline exceeded");
        journal.record("done deadline");
      } else if (!clean) {
        // The handler crashed (or exited reporting failure) before/while
        // replying: the client must hear an explicit error, not silence.
        send_handler_error(handler.conn_fd, "request handler died");
        journal.record("done crashed");
      } else {
        journal.record("done ok");
      }
      PSA_COUNT_N(support::Counter::kPhaseRequestWallNs,
                  static_cast<std::uint64_t>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          Clock::now() - handler.start)
                          .count()));
      ::close(handler.conn_fd);
      handlers.erase(handlers.begin() + static_cast<std::ptrdiff_t>(h));
    }
  };

  while (g_drain_requested == 0) {
    reap(/*killing_overdue=*/true);

    struct pollfd p {};
    p.fd = listen_fd;
    p.events = POLLIN;
    const int ready = ::poll(&p, 1, 50);
    if (ready <= 0) continue;  // timeout or EINTR: loop re-checks drain flag

    const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    if (conn_fd < 0) continue;

    if (handlers.size() >= std::max<std::size_t>(1, options.max_inflight)) {
      // Bounded-queue backpressure: shed explicitly so the client backs off
      // instead of stacking requests behind a saturated daemon.
      PSA_COUNT(support::Counter::kServiceBusyRejections);
      journal.record("busy");
      log_line(options, "serve: busy, shedding request");
      std::string send_error;
      (void)send_frame(conn_fd, MsgType::kBusy, "", 1000, &send_error);
      ::close(conn_fd);
      continue;
    }

    PSA_COUNT(support::Counter::kServiceRequests);
    journal.record("accept");
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::close(listen_fd);
      run_handler(conn_fd, options);
    }
    if (pid < 0) {
      send_handler_error(conn_fd, "cannot fork request handler");
      ::close(conn_fd);
      journal.record("done forkfail");
      continue;
    }
    Handler handler;
    handler.pid = pid;
    handler.conn_fd = conn_fd;
    handler.start = Clock::now();
    handlers.push_back(handler);
  }

  // Graceful drain: stop accepting, let in-flight requests finish, then
  // seal. The socket disappears first so new clients fail fast to their
  // local fallback instead of connecting to a daemon that won't answer.
  log_line(options, "serve: drain requested");
  ::close(listen_fd);
  ::unlink(options.socket_path.c_str());
  const Clock::time_point drain_deadline =
      Clock::now() + std::chrono::milliseconds(options.drain_grace_ms);
  while (!handlers.empty() && Clock::now() < drain_deadline) {
    reap(/*killing_overdue=*/true);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (Handler& handler : handlers) {
    // Past the grace period: the drain must terminate anyway.
    ::kill(handler.pid, SIGKILL);
    ::waitpid(handler.pid, nullptr, 0);
    send_handler_error(handler.conn_fd, "daemon draining");
    ::close(handler.conn_fd);
  }
  handlers.clear();
  journal.seal();
  log_line(options, "serve: drained, journal sealed");
  return 0;
}

#else  // !PSA_SERVICE_HAS_SOCKETS

int run_daemon(const DaemonOptions& options) {
  if (options.log) options.log("serve: sockets unsupported on this platform");
  return 1;
}

#endif

}  // namespace psa::service
