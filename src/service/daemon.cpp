#include "service/daemon.hpp"

#include <chrono>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "cache/cache.hpp"
#include "driver/fault.hpp"
#include "driver/supervisor.hpp"
#include "rsg/serialize.hpp"
#include "service/protocol.hpp"
#include "support/io.hpp"
#include "support/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PSA_SERVICE_HAS_SOCKETS 1
#include <csignal>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>
#if defined(__linux__)
#include <sys/prctl.h>
#endif
#else
#define PSA_SERVICE_HAS_SOCKETS 0
#endif

namespace psa::service {

#if PSA_SERVICE_HAS_SOCKETS

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

volatile std::sig_atomic_t g_drain_requested = 0;

void on_term_signal(int) { g_drain_requested = 1; }

/// Scoped SIGPIPE-ignore with sigaction save/restore. The protocol layer's
/// MSG_NOSIGNAL already makes our own sends SIGPIPE-free; this is
/// defense-in-depth for anything a handler's children write to an inherited
/// fd — and unlike the old `std::signal(SIGPIPE, SIG_IGN)` it hands the
/// process's previous disposition back when run_daemon returns, so a host
/// embedding the daemon keeps its own signal setup.
class ScopedSigpipeIgnore {
 public:
  ScopedSigpipeIgnore() {
    struct sigaction ignore {};
    ignore.sa_handler = SIG_IGN;
    ::sigemptyset(&ignore.sa_mask);
    saved_ok_ = ::sigaction(SIGPIPE, &ignore, &saved_) == 0;
  }
  ~ScopedSigpipeIgnore() {
    if (saved_ok_) (void)::sigaction(SIGPIPE, &saved_, nullptr);
  }
  ScopedSigpipeIgnore(const ScopedSigpipeIgnore&) = delete;
  ScopedSigpipeIgnore& operator=(const ScopedSigpipeIgnore&) = delete;

 private:
  struct sigaction saved_ {};
  bool saved_ok_ = false;
};

void log_line(const DaemonOptions& options, const std::string& line) {
  if (options.log) options.log(line);
}

/// Append-only request journal next to the cache (or the socket). Journal
/// failures never fail the daemon — but they are no longer silent either:
/// each dropped record is counted as an io degradation and logged once.
class ServiceJournal {
 public:
  explicit ServiceJournal(const DaemonOptions& options) : options_(&options) {
    const std::string dir =
        options.cache_dir.empty()
            ? fs::path(options.socket_path).parent_path().string()
            : options.cache_dir;
    if (dir.empty()) return;
    path_ = (fs::path(dir) / "service.journal").string();
    record("psa-service-journal v1");
  }

  void record(const std::string& line) {
    if (path_.empty()) return;
    const auto result = support::io::checked_append(path_, line + '\n');
    if (!result) {
      PSA_COUNT(support::Counter::kIoDegradations);
      log_line(*options_, "service journal degraded: " + result.error);
    }
  }

  /// The drain marker: a journal whose last line is "sealed" belonged to a
  /// daemon that exited gracefully with no request in flight.
  void seal() { record("sealed"); }

 private:
  const DaemonOptions* options_;
  std::string path_;
};

struct Handler {
  pid_t pid = -1;
  int conn_fd = -1;  // the parent's copy, for crash/deadline error frames
  Clock::time_point start;
  bool deadline_killed = false;
};

/// Bind the listening socket, recovering a stale socket file (bind says
/// in-use but nobody accepts connections there). -1 on failure.
int bind_listener(const DaemonOptions& options, std::string* error) {
  struct sockaddr_un addr {};
  addr.sun_family = AF_UNIX;
  if (options.socket_path.size() >= sizeof(addr.sun_path)) {
    *error = "socket path too long: " + options.socket_path;
    return -1;
  }
  std::memcpy(addr.sun_path, options.socket_path.c_str(),
              options.socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = "cannot create socket";
    return -1;
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) !=
      0) {
    if (errno != EADDRINUSE) {
      *error = "cannot bind " + options.socket_path;
      ::close(fd);
      return -1;
    }
    // A socket file exists. A live daemon answers a connect; a dead one
    // refuses — then the file is stale and safe to reclaim.
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    const bool live =
        probe >= 0 &&
        ::connect(probe, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof addr) == 0;
    if (probe >= 0) ::close(probe);
    if (live) {
      *error = "another daemon is already serving " + options.socket_path;
      ::close(fd);
      return -1;
    }
    ::unlink(options.socket_path.c_str());
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) !=
        0) {
      *error = "cannot rebind " + options.socket_path;
      ::close(fd);
      return -1;
    }
  }
  if (::listen(fd, 64) != 0) {
    *error = "cannot listen on " + options.socket_path;
    ::close(fd);
    ::unlink(options.socket_path.c_str());
    return -1;
  }
  return fd;
}

/// The handler-child body: one request in, a stream of frames out, exit.
/// Never returns.
[[noreturn]] void run_handler(int conn_fd, const DaemonOptions& options) {
#if defined(__linux__)
  // Die with the daemon: a SIGKILLed daemon must leave no orphan handlers
  // (the client then sees the stream tear and reconnects or falls back).
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  std::string error;
  Frame frame;
  if (!recv_frame(conn_fd, frame, options.io_timeout_ms, &error)) {
    ::_exit(0);  // client went away or sent garbage; nothing to answer
  }
  if (frame.type == MsgType::kPing) {
    (void)send_frame(conn_fd, MsgType::kPong, "", options.io_timeout_ms,
                     &error);
    ::_exit(0);
  }
  if (frame.type != MsgType::kRequest) {
    (void)send_frame(conn_fd, MsgType::kError, "expected a request frame",
                     options.io_timeout_ms, &error);
    ::_exit(0);
  }

  try {
    const ServiceRequest request = decode_request(frame.body);
    const driver::FaultPlan plan = driver::FaultPlan::from_env();

    // PSA_FAULT_AT sockdrop (docs/SERVICE.md): hang up without replying, as
    // a handler dying between accept and the first frame would. The client
    // must treat it as a connection reset — retry, then fall back.
    for (const driver::AnalysisUnit& unit : request.units) {
      if (plan.for_unit(unit.name) == driver::FaultKind::kSockDrop) {
        ::close(conn_fd);
        ::_exit(0);
      }
    }

    driver::BatchOptions batch;
    batch.isolate = true;
    batch.jobs = options.jobs;
    batch.cache_dir = options.cache_dir;
    batch.engine = request.engine;
    batch.check = request.check;
    batch.strict_frontend = request.strict_frontend;
    batch.unit_timeout_ms = request.unit_timeout_ms;
    // Sweeping is the daemon parent's job (one sweeper, post-reap) — a
    // handler bounding the cache mid-batch could evict its own warm entries.

    const std::uint64_t total = request.units.size();
    std::uint64_t seq = 0;        // shared by unit/heartbeat/summary frames
    std::uint64_t done = 0;       // settled units (for heartbeats)
    std::uint64_t streamed = 0;   // unit_result frames actually delivered
    bool client_gone = false;
    Clock::time_point last_frame = Clock::now();

    // Deliver pre-encoded frame bytes. On a send failure the client is gone
    // (reset, or its own timeout): stop streaming but KEEP COMPUTING — every
    // finished unit still lands in the shared cache, which is what makes the
    // reconnecting client's re-request cheap.
    const auto stream_bytes = [&](const std::string& bytes) {
      if (client_gone) return;
      std::string send_error;
      if (!send_bytes(conn_fd, bytes, options.io_timeout_ms, &send_error)) {
        client_gone = true;
        return;
      }
      PSA_COUNT(support::Counter::kStreamFrames);
      last_frame = Clock::now();
    };

    batch.on_unit_done = [&](std::size_t index,
                             const driver::UnitReport& report) {
      ++done;
      const std::string bytes = encode_frame(
          MsgType::kUnitResult,
          encode_unit_result(++seq, static_cast<std::uint32_t>(index),
                             report));
      if (plan.for_unit(report.unit.name) == driver::FaultKind::kStreamTear) {
        // PSA_FAULT_AT streamtear: half a frame, then hangup — the worst
        // mid-stream death. The client must discard the torn bytes, keep
        // every already-validated unit, and resume over a fresh connection.
        std::string send_error;
        (void)send_bytes(conn_fd,
                         std::string_view(bytes).substr(0, bytes.size() / 2),
                         options.io_timeout_ms, &send_error);
        ::shutdown(conn_fd, SHUT_RDWR);
        ::close(conn_fd);
        ::_exit(0);
      }
      stream_bytes(bytes);
      if (!client_gone) ++streamed;
    };

    batch.on_tick = [&]() {
      if (client_gone || options.heartbeat_ms == 0) return;
      const auto quiet =
          std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                last_frame)
              .count();
      if (quiet < static_cast<std::int64_t>(options.heartbeat_ms)) return;
      HeartbeatFrame hb;
      hb.seq = ++seq;
      hb.units_done = done;
      hb.units_total = total;
      stream_bytes(encode_frame(MsgType::kHeartbeat, encode_heartbeat(hb)));
    };

    const driver::BatchResult result = driver::run_batch(request.units, batch);

    if (!client_gone) {
      SummaryFrame summary;
      summary.seq = ++seq;
      summary.isolated = result.isolated;
      summary.units_total = total;
      summary.units_streamed = streamed;
      stream_bytes(encode_frame(MsgType::kSummary, encode_summary(summary)));
    }
    ::_exit(0);
  } catch (const rsg::SnapshotError& e) {
    (void)send_frame(conn_fd, MsgType::kError, e.what(),
                     options.io_timeout_ms, &error);
    ::_exit(0);
  } catch (const std::exception& e) {
    (void)send_frame(conn_fd, MsgType::kError, e.what(),
                     options.io_timeout_ms, &error);
    ::_exit(1);
  }
}

/// Best-effort error frame on the parent's fd copy after a handler died
/// without replying. A short timeout: the client may already be gone.
void send_handler_error(int conn_fd, std::string_view what) {
  std::string error;
  (void)send_frame(conn_fd, MsgType::kError, what, 1000, &error);
}

}  // namespace

int run_daemon(const DaemonOptions& options) {
  std::string error;

  // Open + recover the cache before accepting anything, so a torn directory
  // (crashed previous daemon) is repaired exactly once, up front. The
  // handle stays open for the daemon's life: the parent is the sweeper.
  std::optional<cache::ResultCache> cache;
  cache::ResultCache::SweepLimits sweep_limits;
  sweep_limits.max_bytes = options.cache_max_bytes;
  sweep_limits.max_age_ms = options.cache_max_age_ms;
  const auto sweep_cache = [&](std::string_view when) {
    if (!cache || !sweep_limits.bounded()) return;
    const cache::ResultCache::SweepReport swept = cache->sweep(sweep_limits);
    if (!swept.ran) return;  // a concurrent sweeper holds the lock
    if (swept.evicted > 0 || swept.quarantined > 0) {
      std::ostringstream line;
      line << "serve: cache sweep (" << when << "): " << swept.evicted
           << " evicted, " << swept.quarantined << " quarantined, "
           << swept.bytes_after << " bytes kept";
      log_line(options, line.str());
    }
  };
  if (!options.cache_dir.empty()) {
    try {
      cache.emplace(options.cache_dir);
      const cache::ResultCache::RecoveryReport recovered = cache->recover();
      std::ostringstream line;
      line << "serve: cache " << options.cache_dir << ": "
           << recovered.entries_kept << " entries";
      if (!recovered.clean()) {
        line << ", swept " << recovered.tmp_removed << " tmp, quarantined "
             << recovered.quarantined;
      }
      log_line(options, line.str());
      sweep_cache("startup");
    } catch (const std::exception& e) {
      // Serve uncached rather than not at all: an unusable cache directory
      // costs warm-probe speed, never availability or correctness.
      PSA_COUNT(support::Counter::kIoDegradations);
      log_line(options, std::string("serve: cache unavailable, serving "
                                    "uncached: ") +
                            e.what());
      cache.reset();
    }
  }

  // Create the fork-shared io op counter before the first handler fork, so
  // the daemon tree numbers durable ops in one stream.
  support::io::ensure_initialized();

  const int listen_fd = bind_listener(options, &error);
  if (listen_fd < 0) {
    log_line(options, "serve: " + error);
    return 1;
  }

  const ScopedSigpipeIgnore sigpipe_guard;
  g_drain_requested = 0;
  std::signal(SIGTERM, on_term_signal);
  std::signal(SIGINT, on_term_signal);

  ServiceJournal journal(options);
  journal.record("start inflight=" + std::to_string(options.max_inflight) +
                 " queue=" + std::to_string(options.max_queued));
  log_line(options, "serve: listening on " + options.socket_path);

  const std::size_t max_inflight = std::max<std::size_t>(1, options.max_inflight);
  std::vector<Handler> handlers;
  std::deque<int> pending;  // accepted fds waiting for a handler slot (FIFO)

  const auto spawn = [&](int conn_fd) {
    PSA_COUNT(support::Counter::kServiceRequests);
    journal.record("accept");
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::close(listen_fd);
      run_handler(conn_fd, options);
    }
    if (pid < 0) {
      send_handler_error(conn_fd, "cannot fork request handler");
      ::close(conn_fd);
      journal.record("done forkfail");
      return;
    }
    Handler handler;
    handler.pid = pid;
    handler.conn_fd = conn_fd;
    handler.start = Clock::now();
    handlers.push_back(handler);
  };

  const auto reap = [&](bool killing_overdue) {
    bool reaped = false;
    for (std::size_t h = 0; h < handlers.size();) {
      Handler& handler = handlers[h];

      if (killing_overdue && options.request_deadline_ms > 0 &&
          !handler.deadline_killed) {
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - handler.start)
                .count();
        if (elapsed >= static_cast<std::int64_t>(options.request_deadline_ms)) {
          handler.deadline_killed = true;
          ::kill(handler.pid, SIGKILL);
          log_line(options, "serve: request deadline exceeded, killed handler");
        }
      }

      int status = 0;
      const pid_t r = ::waitpid(handler.pid, &status, WNOHANG);
      if (r != handler.pid) {
        ++h;
        continue;
      }
      const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
      if (handler.deadline_killed) {
        send_handler_error(handler.conn_fd, "request deadline exceeded");
        journal.record("done deadline");
      } else if (!clean) {
        // The handler crashed (or exited reporting failure) mid-stream: the
        // client must hear an explicit error, not silence.
        send_handler_error(handler.conn_fd, "request handler died");
        journal.record("done crashed");
      } else {
        journal.record("done ok");
      }
      PSA_COUNT_N(support::Counter::kPhaseRequestWallNs,
                  static_cast<std::uint64_t>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          Clock::now() - handler.start)
                          .count()));
      ::close(handler.conn_fd);
      handlers.erase(handlers.begin() + static_cast<std::ptrdiff_t>(h));
      reaped = true;
    }
    if (reaped) sweep_cache("post-request");
    // Freed slots pull waiting connections FIFO — the multiplexing step.
    while (handlers.size() < max_inflight && !pending.empty()) {
      const int conn_fd = pending.front();
      pending.pop_front();
      spawn(conn_fd);
    }
  };

  while (g_drain_requested == 0) {
    reap(/*killing_overdue=*/true);

    struct pollfd p {};
    p.fd = listen_fd;
    p.events = POLLIN;
    const int ready = ::poll(&p, 1, 50);
    if (ready <= 0) continue;  // timeout or EINTR: loop re-checks drain flag

    const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    if (conn_fd < 0) continue;

    if (handlers.size() < max_inflight) {
      spawn(conn_fd);
      continue;
    }
    if (pending.size() < options.max_queued) {
      // Park the connection; its request bytes sit in the socket buffer and
      // the handler reads them when a slot frees up. The client just sees a
      // longer wait for its first frame.
      journal.record("queued");
      log_line(options, "serve: saturated, queued connection (" +
                            std::to_string(pending.size() + 1) + " waiting)");
      pending.push_back(conn_fd);
      continue;
    }
    // Past both caps: shed explicitly so the client backs off instead of
    // stacking unboundedly behind a saturated daemon.
    PSA_COUNT(support::Counter::kServiceBusyRejections);
    journal.record("busy");
    log_line(options, "serve: busy, shedding request");
    std::string send_error;
    (void)send_frame(conn_fd, MsgType::kBusy, "", 1000, &send_error);
    ::close(conn_fd);
  }

  // Graceful drain: stop accepting, let in-flight requests finish, then
  // seal. The socket disappears first so new clients fail fast to their
  // local fallback instead of connecting to a daemon that won't answer.
  log_line(options, "serve: drain requested");
  ::close(listen_fd);
  ::unlink(options.socket_path.c_str());
  for (const int conn_fd : pending) {
    // Still-queued connections never got a handler; answer them explicitly.
    send_handler_error(conn_fd, "daemon draining");
    ::close(conn_fd);
  }
  pending.clear();
  const Clock::time_point drain_deadline =
      Clock::now() + std::chrono::milliseconds(options.drain_grace_ms);
  while (!handlers.empty() && Clock::now() < drain_deadline) {
    reap(/*killing_overdue=*/true);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (Handler& handler : handlers) {
    // Past the grace period: the drain must terminate anyway.
    ::kill(handler.pid, SIGKILL);
    ::waitpid(handler.pid, nullptr, 0);
    send_handler_error(handler.conn_fd, "daemon draining");
    ::close(handler.conn_fd);
  }
  handlers.clear();
  journal.seal();
  log_line(options, "serve: drained, journal sealed");
  return 0;
}

#else  // !PSA_SERVICE_HAS_SOCKETS

int run_daemon(const DaemonOptions& options) {
  if (options.log) options.log("serve: sockets unsupported on this platform");
  return 1;
}

#endif

}  // namespace psa::service
