// The streaming analysis-service client (psa_cli --connect, docs/SERVICE.md).
//
// Sends one batch request to a daemon and consumes the PSARPC2 reply stream:
// unit results are accepted (and journaled) the moment they arrive, not when
// the batch ends. The availability contract is absolute: a dead, busy,
// crashing, draining or mid-stream-dying daemon NEVER fails the caller's
// build, and never costs it work already received —
//   * every validated unit_result frame is kept immediately; with
//     --checkpoint it is also journaled into the PSASNAP1 checkpoint
//     (driver/checkpoint.hpp) as it arrives, so even killing the CLIENT
//     mid-stream preserves the streamed units for a --resume run;
//   * a torn stream (daemon SIGKILLed, handler crash, reset, timeout) is
//     counted as a reconnect: the client backs off, reconnects, and
//     re-requests ONLY the units it has not yet received (counted as
//     resumed_units) — a daemon killed after streaming k of n units costs
//     at most the in-flight remainder, never the k;
//   * `busy` frames, connection failures and undecodable frames are retried
//     with jittered exponential backoff (counted as service_retries);
//   * when the retry budget is exhausted, the client falls back to running
//     exactly the still-missing units in-process through the same
//     driver::run_batch with the same options, and merges them with the
//     streamed results in input order — so the final report is
//     byte-identical to what an uninterrupted daemon (or a pure-local run)
//     would have produced.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "driver/supervisor.hpp"
#include "driver/unit.hpp"

namespace psa::service {

struct ClientOptions {
  /// Daemon socket path.
  std::string socket_path;
  /// Connection attempts before falling back (>= 1). A reconnect after a
  /// mid-stream tear consumes one attempt, like any other retry.
  int max_attempts = 5;
  /// Exponential backoff between attempts: base doubles per retry, capped,
  /// with +/-50% deterministic jitter so a fleet of clients desynchronizes.
  std::uint64_t backoff_base_ms = 50;
  std::uint64_t backoff_cap_ms = 2000;
  /// Per-frame socket I/O timeout. The daemon's heartbeat frames keep a
  /// healthy-but-slow stream inside this budget.
  std::uint64_t io_timeout_ms = 60'000;
  /// Allow the in-process fallback. Off only for tests that must observe a
  /// hard service failure.
  bool fallback = true;
  /// Progress log (streamed / retry / fallback lines); null = quiet.
  std::function<void(const std::string&)> log;
};

struct RequestOutcome {
  driver::BatchResult result;
  /// True when every unit came from the daemon; false as soon as the local
  /// fallback computed any of them.
  bool via_service = false;
  /// Connection attempts consumed (for tests and logs).
  int attempts = 0;
  /// Streams that tore mid-flight and were re-established (or re-tried).
  int reconnects = 0;
  /// Unit results received over the wire, across all attempts.
  std::size_t streamed_units = 0;
  /// With fallback disabled and no complete service reply: why.
  std::string error;
};

/// Run `units` via the daemon at `client.socket_path`, falling back to a
/// local driver::run_batch over whatever units the stream(s) did not
/// deliver. `batch` supplies both the request parameters sent to the daemon
/// (engine, check, strict_frontend, unit_timeout_ms) and the fallback
/// configuration; its checkpoint_dir (when set) additionally journals every
/// streamed unit as it arrives.
[[nodiscard]] RequestOutcome run_request(
    const std::vector<driver::AnalysisUnit>& units,
    const driver::BatchOptions& batch, const ClientOptions& client);

}  // namespace psa::service
