// The thin analysis-service client (psa_cli --connect, docs/SERVICE.md).
//
// Sends one batch request to a daemon and returns the decoded BatchResult.
// The availability contract is absolute: a dead, busy, crashing or draining
// daemon NEVER fails the caller's build —
//   * `busy` frames, connection failures and resets are retried with
//     jittered exponential backoff (counted as service_retries);
//   * when the retry budget is exhausted (or the response is undecodable),
//     the client falls back to running the batch in-process through the
//     same driver::run_batch with the same options, so the report it
//     returns is byte-identical to what a healthy daemon would have sent.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "driver/supervisor.hpp"
#include "driver/unit.hpp"

namespace psa::service {

struct ClientOptions {
  /// Daemon socket path.
  std::string socket_path;
  /// Connection attempts before falling back (>= 1).
  int max_attempts = 5;
  /// Exponential backoff between attempts: base doubles per retry, capped,
  /// with +/-50% deterministic jitter so a fleet of clients desynchronizes.
  std::uint64_t backoff_base_ms = 50;
  std::uint64_t backoff_cap_ms = 2000;
  /// Per-frame socket I/O timeout.
  std::uint64_t io_timeout_ms = 60'000;
  /// Allow the in-process fallback. Off only for tests that must observe a
  /// hard service failure.
  bool fallback = true;
  /// Progress log (retry / fallback lines); null = quiet.
  std::function<void(const std::string&)> log;
};

struct RequestOutcome {
  driver::BatchResult result;
  /// True when the result came from the daemon; false for the local
  /// fallback.
  bool via_service = false;
  /// Connection attempts consumed (for tests and logs).
  int attempts = 0;
  /// With fallback disabled and no service reply: why.
  std::string error;
};

/// Run `units` via the daemon at `client.socket_path`, falling back to a
/// local driver::run_batch(units, batch) when the service cannot answer.
/// `batch` supplies both the request parameters sent to the daemon (engine,
/// check, strict_frontend, unit_timeout_ms) and the fallback configuration.
[[nodiscard]] RequestOutcome run_request(
    const std::vector<driver::AnalysisUnit>& units,
    const driver::BatchOptions& batch, const ClientOptions& client);

}  // namespace psa::service
