// The psa analysis-service wire protocol (docs/SERVICE.md).
//
// Length-prefixed, checksummed frames over a unix-domain stream socket:
//
//   offset  size  field
//   0       8     magic "PSARPC1\n"
//   8       1     message type (MsgType)
//   9       8     body size in bytes (little-endian u64, capped)
//   17      8     FNV-1a 64-bit checksum of the body
//   25      n     body
//
// Bodies are built from the same bounds-checked little-endian primitives as
// the snapshot format (rsg::ByteWriter / ByteReader), and per-unit results
// travel as full PSASNAP1-enveloped UnitPayload bytes — so a response is
// validated twice: once at the frame checksum, once per payload envelope.
//
// Robustness contract: recv_frame never trusts the peer. The magic and type
// are validated, the body size is capped (kMaxFrameBody) before any
// allocation, the checksum is verified before the body is handed to a
// decoder, and the decoders themselves throw rsg::SnapshotError on any
// malformed field rather than exhibiting UB. A frame-level failure returns
// false with a diagnostic; it never kills the caller.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "driver/supervisor.hpp"
#include "driver/unit.hpp"

namespace psa::service {

enum class MsgType : std::uint8_t {
  kRequest = 1,   // client -> daemon: a batch to analyze
  kResponse = 2,  // daemon -> client: the batch result
  kBusy = 3,      // daemon -> client: load shed, retry with backoff
  kError = 4,     // daemon -> client: request failed (handler crash, decode)
  kPing = 5,      // client -> daemon: liveness probe
  kPong = 6,      // daemon -> client: liveness reply
};

[[nodiscard]] std::string_view to_string(MsgType type);

/// Upper bound on a frame body, enforced before allocation on receive: a
/// corrupt or hostile length field must not drive a pathological allocation.
inline constexpr std::uint64_t kMaxFrameBody = 256ull << 20;  // 256 MiB

struct Frame {
  MsgType type = MsgType::kError;
  std::string body;
};

/// Write one frame to `fd`, honoring `timeout_ms` per poll (0 = no timeout).
/// Returns false (with a diagnostic in `error`) on timeout or I/O failure;
/// never throws, never raises SIGPIPE (callers ignore it process-wide).
bool send_frame(int fd, MsgType type, std::string_view body,
                std::uint64_t timeout_ms, std::string* error);

/// Read one validated frame from `fd`. False on timeout, EOF, bad magic,
/// oversized body or checksum mismatch — with the reason in `error`.
bool recv_frame(int fd, Frame& out, std::uint64_t timeout_ms,
                std::string* error);

// --- Request / response bodies ----------------------------------------------

/// One batch analysis request. Carries everything the daemon needs to run
/// driver::run_batch on its side: the units and the engine/checker options.
/// Scheduling knobs (jobs, cache dir, isolation) are the daemon's own
/// configuration — a client cannot steer them.
struct ServiceRequest {
  std::vector<driver::AnalysisUnit> units;
  analysis::Options engine;
  bool check = false;
  bool strict_frontend = false;
  std::uint64_t unit_timeout_ms = 0;
};

[[nodiscard]] std::string encode_request(const ServiceRequest& request);
/// Throws rsg::SnapshotError on any malformed field.
[[nodiscard]] ServiceRequest decode_request(std::string_view body);

/// Encode a completed batch: per unit, the identity, the structured outcome
/// and (when present) the full serialized UnitPayload bytes.
[[nodiscard]] std::string encode_response(const driver::BatchResult& result);
/// Throws rsg::SnapshotError on any malformed field (including a payload
/// whose own envelope fails validation).
[[nodiscard]] driver::BatchResult decode_response(std::string_view body);

}  // namespace psa::service
