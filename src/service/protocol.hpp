// The psa analysis-service wire protocol, version 2 (docs/SERVICE.md).
//
// Length-prefixed, checksummed frames over a unix-domain stream socket:
//
//   offset  size  field
//   0       8     magic "PSARPC2\n"
//   8       1     message type (MsgType)
//   9       8     body size in bytes (little-endian u64, capped)
//   17      8     FNV-1a 64-bit checksum of the body
//   25      n     body
//
// PSARPC2 is a STREAMING protocol: instead of PSARPC1's single batch
// response, the daemon answers a request with a sequence of frames —
//
//   request ->                               (client)
//   <- unit_result* | heartbeat*             (daemon, interleaved)
//   <- summary                               (daemon, terminal)
//
// Every daemon->client stream frame carries a strictly increasing sequence
// number shared across unit_result / heartbeat / summary, so the client can
// reject replays and reordering. A stream that ends (EOF, reset, checksum
// failure, timeout) before the summary frame is TORN: the client keeps every
// unit_result it already validated and re-requests only the unfinished units
// (service/client.hpp). Type 2 (the PSARPC1 batch response) is retired; its
// number is never reused.
//
// Bodies are built from the same bounds-checked little-endian primitives as
// the snapshot format (rsg::ByteWriter / ByteReader), and per-unit results
// travel as full PSASNAP1-enveloped UnitPayload bytes — so a unit result is
// validated twice: once at the frame checksum, once per payload envelope.
//
// Robustness contract: recv_frame never trusts the peer. The magic and type
// are validated, the body size is capped (kMaxFrameBody) before any
// allocation, the checksum is verified before the body is handed to a
// decoder, and the decoders themselves throw rsg::SnapshotError on any
// malformed field rather than exhibiting UB. A frame-level failure returns
// false with a diagnostic; it never kills the caller. Sends use MSG_NOSIGNAL
// — a peer that hangs up costs an error return, never a process-wide
// SIGPIPE (so neither the client nor the daemon touches the caller's signal
// dispositions for correctness).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "driver/supervisor.hpp"
#include "driver/unit.hpp"

namespace psa::service {

enum class MsgType : std::uint8_t {
  kRequest = 1,     // client -> daemon: a batch to analyze
                    // (2 was the PSARPC1 batch response; retired)
  kBusy = 3,        // daemon -> client: load shed, retry with backoff
  kError = 4,       // daemon -> client: request failed (handler crash, decode)
  kPing = 5,        // client -> daemon: liveness probe
  kPong = 6,        // daemon -> client: liveness reply
  kUnitResult = 7,  // daemon -> client: one finished unit (streamed)
  kHeartbeat = 8,   // daemon -> client: liveness while the batch runs
  kSummary = 9,     // daemon -> client: terminal frame of a batch stream
};

[[nodiscard]] std::string_view to_string(MsgType type);

/// Upper bound on a frame body, enforced before allocation on receive: a
/// corrupt or hostile length field must not drive a pathological allocation.
inline constexpr std::uint64_t kMaxFrameBody = 256ull << 20;  // 256 MiB

struct Frame {
  MsgType type = MsgType::kError;
  std::string body;
};

/// Raw frame bytes (header + checksum + body) of one frame. send_frame is
/// encode_frame + send_bytes; the daemon's streamtear fault point sends a
/// strict prefix of these bytes and hangs up.
[[nodiscard]] std::string encode_frame(MsgType type, std::string_view body);

/// Write pre-encoded bytes to `fd`, honoring `timeout_ms` per poll (0 = no
/// timeout). Returns false (with a diagnostic in `error`) on timeout or I/O
/// failure; never throws, never raises SIGPIPE (MSG_NOSIGNAL).
bool send_bytes(int fd, std::string_view bytes, std::uint64_t timeout_ms,
                std::string* error);

/// Write one frame to `fd`. Same contract as send_bytes.
bool send_frame(int fd, MsgType type, std::string_view body,
                std::uint64_t timeout_ms, std::string* error);

/// Read one validated frame from `fd`. False on timeout, EOF, bad magic,
/// unknown/retired type, oversized body or checksum mismatch — with the
/// reason in `error`.
bool recv_frame(int fd, Frame& out, std::uint64_t timeout_ms,
                std::string* error);

// --- Request / stream bodies ------------------------------------------------

/// One batch analysis request. Carries everything the daemon needs to run
/// driver::run_batch on its side: the units and the engine/checker options.
/// Scheduling knobs (jobs, cache dir, isolation) are the daemon's own
/// configuration — a client cannot steer them.
struct ServiceRequest {
  std::vector<driver::AnalysisUnit> units;
  analysis::Options engine;
  bool check = false;
  bool strict_frontend = false;
  std::uint64_t unit_timeout_ms = 0;
};

[[nodiscard]] std::string encode_request(const ServiceRequest& request);
/// Throws rsg::SnapshotError on any malformed field.
[[nodiscard]] ServiceRequest decode_request(std::string_view body);

/// One streamed unit result: the unit's index in the REQUEST it answers
/// (not any global order), its identity, structured outcome and — when the
/// unit completed — the full serialized UnitPayload bytes.
struct UnitResultFrame {
  std::uint64_t seq = 0;         // strictly increasing per stream, from 1
  std::uint32_t unit_index = 0;  // index into the request's unit list
  driver::UnitReport report;
  /// The raw PSASNAP1 payload bytes as they crossed the wire (empty when the
  /// unit carries no payload). Already deep-validated into report.payload;
  /// kept verbatim so the client can journal them into its checkpoint
  /// without a re-serialization round trip.
  std::string payload_bytes;
};

[[nodiscard]] std::string encode_unit_result(std::uint64_t seq,
                                             std::uint32_t unit_index,
                                             const driver::UnitReport& report);
/// Throws rsg::SnapshotError on any malformed field (including a payload
/// whose own envelope fails validation).
[[nodiscard]] UnitResultFrame decode_unit_result(std::string_view body);

/// Liveness while the daemon's batch runs: proves the stream is alive
/// between unit results so the client's per-frame timeout never fires on a
/// slow (but healthy) unit.
struct HeartbeatFrame {
  std::uint64_t seq = 0;
  std::uint64_t units_done = 0;
  std::uint64_t units_total = 0;
};

[[nodiscard]] std::string encode_heartbeat(const HeartbeatFrame& frame);
[[nodiscard]] HeartbeatFrame decode_heartbeat(std::string_view body);

/// Terminal frame of a stream: the batch is complete. A client holding
/// fewer than units_total results after the summary re-requests the gap.
struct SummaryFrame {
  std::uint64_t seq = 0;
  bool isolated = false;
  std::uint64_t units_total = 0;     // units in the answered request
  std::uint64_t units_streamed = 0;  // unit_result frames sent before this
};

[[nodiscard]] std::string encode_summary(const SummaryFrame& frame);
[[nodiscard]] SummaryFrame decode_summary(std::string_view body);

}  // namespace psa::service
