#include "service/protocol.hpp"

#include <chrono>
#include <cstring>

#include "driver/payload.hpp"
#include "rsg/serialize.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PSA_SERVICE_HAS_SOCKETS 1
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define PSA_SERVICE_HAS_SOCKETS 0
#endif

namespace psa::service {

namespace {

constexpr char kMagic[8] = {'P', 'S', 'A', 'R', 'P', 'C', '2', '\n'};
constexpr std::size_t kHeaderSize = 8 + 1 + 8 + 8;
constexpr std::uint32_t kBodyVersion = 2;

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void fail(std::string* error, std::string_view what) {
  if (error != nullptr) *error = std::string(what);
}

bool known_type(std::uint8_t type) {
  switch (static_cast<MsgType>(type)) {
    case MsgType::kRequest:
    case MsgType::kBusy:
    case MsgType::kError:
    case MsgType::kPing:
    case MsgType::kPong:
    case MsgType::kUnitResult:
    case MsgType::kHeartbeat:
    case MsgType::kSummary:
      return true;
  }
  return false;  // includes the retired PSARPC1 batch response (2)
}

#if PSA_SERVICE_HAS_SOCKETS

using Clock = std::chrono::steady_clock;

/// Poll `fd` for `events` within the remaining deadline. 1 ready, 0 timeout,
/// -1 error.
int wait_ready(int fd, short events, Clock::time_point deadline,
               bool has_deadline) {
  while (true) {
    int wait_ms = -1;
    if (has_deadline) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - Clock::now())
                            .count();
      if (left <= 0) return 0;
      wait_ms = static_cast<int>(left);
    }
    struct pollfd p {};
    p.fd = fd;
    p.events = events;
    const int r = ::poll(&p, 1, wait_ms);
    if (r > 0) return 1;
    if (r == 0) return 0;
    if (errno == EINTR) continue;
    return -1;
  }
}

/// Flip `fd` to O_NONBLOCK for the duration of an I/O loop. Without this a
/// poll deadline is theater: a blocking stream-socket write() does not
/// return after the buffer fills — it blocks until the peer drains, so one
/// stalled peer would wedge the writer forever.
class ScopedNonblock {
 public:
  explicit ScopedNonblock(int fd)
      : fd_(fd), flags_(::fcntl(fd, F_GETFL, 0)) {
    if (flags_ >= 0 && (flags_ & O_NONBLOCK) == 0) {
      (void)::fcntl(fd_, F_SETFL, flags_ | O_NONBLOCK);
      restore_ = true;
    }
  }
  ~ScopedNonblock() {
    if (restore_) (void)::fcntl(fd_, F_SETFL, flags_);
  }
  ScopedNonblock(const ScopedNonblock&) = delete;
  ScopedNonblock& operator=(const ScopedNonblock&) = delete;

 private:
  int fd_;
  int flags_;
  bool restore_ = false;
};

bool write_all(int fd, std::string_view bytes, std::uint64_t timeout_ms,
               std::string* error) {
  const ScopedNonblock nonblock(fd);
  const bool has_deadline = timeout_ms > 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const int ready = wait_ready(fd, POLLOUT, deadline, has_deadline);
    if (ready == 0) {
      fail(error, "send timeout");
      return false;
    }
    if (ready < 0) {
      fail(error, "send poll failed");
      return false;
    }
    // MSG_NOSIGNAL: a hung-up peer yields EPIPE here instead of a
    // process-wide SIGPIPE — the protocol layer must never require callers
    // to adjust their signal dispositions (service/client.hpp regression).
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
    fail(error, "connection closed while sending");
    return false;
  }
  return true;
}

bool read_all(int fd, char* buf, std::size_t size, std::uint64_t timeout_ms,
              std::string* error) {
  const ScopedNonblock nonblock(fd);
  const bool has_deadline = timeout_ms > 0;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t off = 0;
  while (off < size) {
    const int ready = wait_ready(fd, POLLIN, deadline, has_deadline);
    if (ready == 0) {
      fail(error, "receive timeout");
      return false;
    }
    if (ready < 0) {
      fail(error, "receive poll failed");
      return false;
    }
    const ssize_t n = ::read(fd, buf + off, size - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
    fail(error, off == 0 ? "connection closed" : "connection reset mid-frame");
    return false;
  }
  return true;
}

#endif  // PSA_SERVICE_HAS_SOCKETS

void append_unit(rsg::ByteWriter& out, const driver::AnalysisUnit& unit) {
  out.str(unit.name);
  out.str(unit.function);
  out.str(unit.source);
  out.str(unit.source_path);
}

driver::AnalysisUnit read_unit(rsg::ByteReader& in) {
  driver::AnalysisUnit unit;
  unit.name = std::string(in.str("unit name"));
  unit.function = std::string(in.str("unit function"));
  unit.source = std::string(in.str("unit source"));
  unit.source_path = std::string(in.str("unit source path"));
  return unit;
}

void append_unit_report(rsg::ByteWriter& out,
                        const driver::UnitReport& report) {
  append_unit(out, report.unit);
  out.u8(static_cast<std::uint8_t>(report.outcome.kind));
  out.u64(static_cast<std::uint64_t>(
      static_cast<std::int64_t>(report.outcome.exit_code)));
  out.u64(static_cast<std::uint64_t>(
      static_cast<std::int64_t>(report.outcome.signal)));
  out.u32(static_cast<std::uint32_t>(report.outcome.attempts));
  out.u8(report.outcome.quarantined ? 1 : 0);
  out.u8(report.outcome.from_checkpoint ? 1 : 0);
  out.str(report.outcome.detail);
  if (report.payload && report.payload->interner) {
    out.u8(1);
    out.str(driver::serialize_unit_payload(*report.payload,
                                           *report.payload->interner));
  } else {
    out.u8(0);
  }
}

/// Decodes one unit report; the raw payload bytes (when present) are copied
/// into `payload_bytes` verbatim in addition to being deep-validated into
/// the report, so stream consumers can journal them without re-serializing.
driver::UnitReport read_unit_report(rsg::ByteReader& in,
                                    std::string* payload_bytes) {
  driver::UnitReport report;
  report.unit = read_unit(in);
  const std::uint8_t kind = in.u8("outcome kind");
  if (kind > static_cast<std::uint8_t>(driver::UnitOutcomeKind::kPartial)) {
    throw rsg::SnapshotError("outcome kind out of range");
  }
  report.outcome.kind = static_cast<driver::UnitOutcomeKind>(kind);
  report.outcome.exit_code = static_cast<int>(
      static_cast<std::int64_t>(in.u64("outcome exit code")));
  report.outcome.signal = static_cast<int>(
      static_cast<std::int64_t>(in.u64("outcome signal")));
  report.outcome.attempts = static_cast<int>(in.u32("outcome attempts"));
  report.outcome.quarantined = in.u8("outcome quarantined") != 0;
  report.outcome.from_checkpoint = in.u8("outcome from_checkpoint") != 0;
  report.outcome.detail = std::string(in.str("outcome detail"));
  if (in.u8("payload present") != 0) {
    // Second validation layer: the payload's own PSASNAP1 envelope and
    // bounds-checked records.
    const std::string_view bytes = in.str("payload bytes");
    report.payload = driver::deserialize_unit_payload(bytes);
    if (payload_bytes != nullptr) *payload_bytes = std::string(bytes);
  }
  return report;
}

}  // namespace

std::string_view to_string(MsgType type) {
  switch (type) {
    case MsgType::kRequest: return "request";
    case MsgType::kBusy: return "busy";
    case MsgType::kError: return "error";
    case MsgType::kPing: return "ping";
    case MsgType::kPong: return "pong";
    case MsgType::kUnitResult: return "unit_result";
    case MsgType::kHeartbeat: return "heartbeat";
    case MsgType::kSummary: return "summary";
  }
  return "?";
}

std::string encode_frame(MsgType type, std::string_view body) {
  std::string frame;
  frame.reserve(kHeaderSize + body.size());
  frame.append(kMagic, sizeof kMagic);
  frame.push_back(static_cast<char>(type));
  put_u64(frame, body.size());
  put_u64(frame, rsg::snapshot_checksum(body));
  frame.append(body);
  return frame;
}

bool send_bytes(int fd, std::string_view bytes, std::uint64_t timeout_ms,
                std::string* error) {
#if PSA_SERVICE_HAS_SOCKETS
  return write_all(fd, bytes, timeout_ms, error);
#else
  (void)fd;
  (void)bytes;
  (void)timeout_ms;
  fail(error, "sockets unsupported on this platform");
  return false;
#endif
}

bool send_frame(int fd, MsgType type, std::string_view body,
                std::uint64_t timeout_ms, std::string* error) {
  return send_bytes(fd, encode_frame(type, body), timeout_ms, error);
}

bool recv_frame(int fd, Frame& out, std::uint64_t timeout_ms,
                std::string* error) {
#if PSA_SERVICE_HAS_SOCKETS
  char header[kHeaderSize];
  if (!read_all(fd, header, sizeof header, timeout_ms, error)) return false;
  if (std::memcmp(header, kMagic, sizeof kMagic) != 0) {
    fail(error, "bad frame magic");
    return false;
  }
  const auto type = static_cast<std::uint8_t>(header[8]);
  if (!known_type(type)) {
    fail(error, "unknown frame type");
    return false;
  }
  const unsigned char* p = reinterpret_cast<const unsigned char*>(header);
  const std::uint64_t size = get_u64(p + 9);
  const std::uint64_t checksum = get_u64(p + 17);
  if (size > kMaxFrameBody) {
    fail(error, "frame body exceeds cap");
    return false;
  }
  std::string body(static_cast<std::size_t>(size), '\0');
  if (size > 0 &&
      !read_all(fd, body.data(), body.size(), timeout_ms, error)) {
    return false;
  }
  if (rsg::snapshot_checksum(body) != checksum) {
    fail(error, "frame checksum mismatch");
    return false;
  }
  out.type = static_cast<MsgType>(type);
  out.body = std::move(body);
  return true;
#else
  (void)fd;
  (void)out;
  (void)timeout_ms;
  fail(error, "sockets unsupported on this platform");
  return false;
#endif
}

std::string encode_request(const ServiceRequest& request) {
  rsg::ByteWriter out;
  out.u32(kBodyVersion);
  out.u32(static_cast<std::uint32_t>(request.units.size()));
  for (const driver::AnalysisUnit& unit : request.units) {
    append_unit(out, unit);
  }
  out.u8(static_cast<std::uint8_t>(request.engine.level));
  out.u8(request.engine.enable_join ? 1 : 0);
  out.u8(request.engine.share_pruning ? 1 : 0);
  out.u64(request.engine.widen_threshold);
  out.u64(request.engine.max_rsgs_per_set);
  out.u64(request.engine.max_node_visits);
  out.u64(request.engine.memory_budget_bytes);
  out.u64(request.engine.deadline_ms);
  out.u8(static_cast<std::uint8_t>(request.engine.budget_policy));
  out.u64(request.engine.threads);
  out.u8(request.check ? 1 : 0);
  out.u8(request.strict_frontend ? 1 : 0);
  out.u64(request.unit_timeout_ms);
  return out.take();
}

ServiceRequest decode_request(std::string_view body) {
  rsg::ByteReader in(body);
  if (in.u32("request version") != kBodyVersion) {
    throw rsg::SnapshotError("unsupported request version");
  }
  ServiceRequest request;
  const std::uint32_t n = in.count("unit count", 4);
  request.units.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) request.units.push_back(read_unit(in));
  const std::uint8_t level = in.u8("engine level");
  if (level < 1 || level > 3) {
    throw rsg::SnapshotError("engine level out of range");
  }
  request.engine.level = static_cast<rsg::AnalysisLevel>(level);
  request.engine.enable_join = in.u8("enable_join") != 0;
  request.engine.share_pruning = in.u8("share_pruning") != 0;
  request.engine.widen_threshold =
      static_cast<std::size_t>(in.u64("widen_threshold"));
  request.engine.max_rsgs_per_set =
      static_cast<std::size_t>(in.u64("max_rsgs_per_set"));
  request.engine.max_node_visits = in.u64("max_node_visits");
  request.engine.memory_budget_bytes =
      static_cast<std::size_t>(in.u64("memory_budget_bytes"));
  request.engine.deadline_ms = in.u64("deadline_ms");
  const std::uint8_t policy = in.u8("budget_policy");
  if (policy > static_cast<std::uint8_t>(analysis::BudgetPolicy::kHardFail)) {
    throw rsg::SnapshotError("budget policy out of range");
  }
  request.engine.budget_policy = static_cast<analysis::BudgetPolicy>(policy);
  request.engine.threads = static_cast<std::size_t>(in.u64("threads"));
  request.check = in.u8("check") != 0;
  request.strict_frontend = in.u8("strict_frontend") != 0;
  request.unit_timeout_ms = in.u64("unit_timeout_ms");
  in.expect_end("request body");
  return request;
}

std::string encode_unit_result(std::uint64_t seq, std::uint32_t unit_index,
                               const driver::UnitReport& report) {
  rsg::ByteWriter out;
  out.u32(kBodyVersion);
  out.u64(seq);
  out.u32(unit_index);
  append_unit_report(out, report);
  return out.take();
}

UnitResultFrame decode_unit_result(std::string_view body) {
  rsg::ByteReader in(body);
  if (in.u32("unit result version") != kBodyVersion) {
    throw rsg::SnapshotError("unsupported unit result version");
  }
  UnitResultFrame frame;
  frame.seq = in.u64("unit result seq");
  frame.unit_index = in.u32("unit result index");
  frame.report = read_unit_report(in, &frame.payload_bytes);
  in.expect_end("unit result body");
  return frame;
}

std::string encode_heartbeat(const HeartbeatFrame& frame) {
  rsg::ByteWriter out;
  out.u32(kBodyVersion);
  out.u64(frame.seq);
  out.u64(frame.units_done);
  out.u64(frame.units_total);
  return out.take();
}

HeartbeatFrame decode_heartbeat(std::string_view body) {
  rsg::ByteReader in(body);
  if (in.u32("heartbeat version") != kBodyVersion) {
    throw rsg::SnapshotError("unsupported heartbeat version");
  }
  HeartbeatFrame frame;
  frame.seq = in.u64("heartbeat seq");
  frame.units_done = in.u64("heartbeat units_done");
  frame.units_total = in.u64("heartbeat units_total");
  in.expect_end("heartbeat body");
  return frame;
}

std::string encode_summary(const SummaryFrame& frame) {
  rsg::ByteWriter out;
  out.u32(kBodyVersion);
  out.u64(frame.seq);
  out.u8(frame.isolated ? 1 : 0);
  out.u64(frame.units_total);
  out.u64(frame.units_streamed);
  return out.take();
}

SummaryFrame decode_summary(std::string_view body) {
  rsg::ByteReader in(body);
  if (in.u32("summary version") != kBodyVersion) {
    throw rsg::SnapshotError("unsupported summary version");
  }
  SummaryFrame frame;
  frame.seq = in.u64("summary seq");
  frame.isolated = in.u8("summary isolated") != 0;
  frame.units_total = in.u64("summary units_total");
  frame.units_streamed = in.u64("summary units_streamed");
  in.expect_end("summary body");
  return frame;
}

}  // namespace psa::service
