// The persistent analysis daemon (psa_cli --serve, docs/SERVICE.md).
//
// A single-threaded accept loop on a unix-domain socket, with the result
// cache resident. Each accepted request is handled in a forked child (the
// daemon itself stays single-threaded, so forking is safe), which runs the
// batch through the crash-isolated supervisor and STREAMS the reply
// (PSARPC2): one unit_result frame the moment each unit settles, heartbeat
// frames while long units run, and a terminal summary frame. The parent
// keeps its copy of every connection fd, so a handler that crashes still
// costs the client only an error frame — never a silent hang.
//
// Robustness envelope:
//   * multiplexing: up to max_inflight handlers run concurrently; the next
//     max_queued connections wait in an accept queue (their clients block on
//     the first frame) and are spawned FIFO as handlers finish. Only a
//     connection past BOTH caps is shed with an immediate `busy` frame
//     (counted as service_busy_rejections) — bounded memory, no unbounded
//     pile-up behind a saturated daemon;
//   * streaming: a client that disappears mid-stream stops receiving frames
//     but the handler keeps computing — every finished unit still lands in
//     the shared result cache, so the reconnecting client's re-request hits
//     warm entries instead of recomputing;
//   * per-request deadline: a handler that exceeds request_deadline_ms is
//     SIGKILLed and its client gets an error frame;
//   * worker crashes: contained twice — per unit by the supervisor's fork
//     isolation inside the handler, and per request by the handler fork
//     itself;
//   * bounded cache: with cache_max_bytes / cache_max_age_ms set, the parent
//     sweeps the cache (cache::ResultCache::sweep) at startup and after
//     handlers finish — concurrent daemons sharing a --cache-dir serialize
//     on the sweep's advisory lock;
//   * graceful drain: SIGTERM (or SIGINT) stops accepting, lets in-flight
//     handlers finish within drain_grace_ms, answers still-queued
//     connections with an error frame, seals the service journal with a
//     final "sealed" line, removes the socket and exits 0;
//   * stale socket: a leftover socket file from a dead daemon (connect
//     refused) is unlinked and rebound; a live daemon on the same path is a
//     startup error;
//   * handlers die with the daemon (PDEATHSIG), so a SIGKILLed daemon leaves
//     no orphans — clients see the stream tear, reconnect with backoff, and
//     re-request only their unfinished units (service/client.hpp);
//   * signal hygiene: SIGPIPE safety comes from MSG_NOSIGNAL inside the
//     protocol layer; the daemon's own SIGPIPE-ignore is scoped and the
//     previous disposition is restored on return, so embedding run_daemon in
//     a larger process never clobbers the host's handlers.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "analysis/engine.hpp"

namespace psa::service {

struct DaemonOptions {
  /// Unix-domain socket path to bind.
  std::string socket_path;
  /// Result cache directory handed to every handler's supervisor; empty
  /// disables caching. The `service.journal` lives here too (when set).
  std::string cache_dir;
  /// Bounded-cache policy, swept by the daemon parent at startup and after
  /// handlers finish (cache::ResultCache::SweepLimits semantics; zeros =
  /// unbounded). CLI: --cache-max-bytes / --cache-max-age.
  std::uint64_t cache_max_bytes = 0;
  std::uint64_t cache_max_age_ms = 0;
  /// Handler concurrency cap. Env override: PSA_SERVE_INFLIGHT.
  std::size_t max_inflight = 2;
  /// Accepted connections allowed to wait for a free handler slot before new
  /// ones are shed with `busy`. Env override: PSA_SERVE_QUEUE.
  std::size_t max_queued = 16;
  /// Worker concurrency inside each handler's supervisor.
  std::size_t jobs = 1;
  /// Minimum quiet time before a handler emits a heartbeat frame (liveness
  /// while a slow unit runs); 0 disables heartbeats. Env override:
  /// PSA_SERVE_HEARTBEAT_MS.
  std::uint64_t heartbeat_ms = 1000;
  /// Whole-request wall-clock deadline in ms; 0 disables. A handler past it
  /// is SIGKILLed and the client gets an error frame. Env override:
  /// PSA_SERVE_REQUEST_DEADLINE_MS.
  std::uint64_t request_deadline_ms = 0;
  /// How long a SIGTERM drain waits for in-flight handlers before SIGKILL.
  std::uint64_t drain_grace_ms = 30'000;
  /// Per-frame socket I/O timeout for handlers.
  std::uint64_t io_timeout_ms = 30'000;
  /// Progress log (start / accept / queued / busy / done / drain lines);
  /// null = quiet.
  std::function<void(const std::string&)> log;
};

/// Run the daemon until SIGTERM/SIGINT. Returns a process exit code: 0 after
/// a graceful drain, 1 on a setup failure (bad socket path, bind failure,
/// unusable cache dir, platform without sockets).
[[nodiscard]] int run_daemon(const DaemonOptions& options);

}  // namespace psa::service
