// The persistent analysis daemon (psa_cli --serve, docs/SERVICE.md).
//
// A single-threaded accept loop on a unix-domain socket, with the result
// cache resident. Each accepted request is handled in a forked child (the
// daemon itself stays single-threaded, so forking is safe), which runs the
// batch through the crash-isolated supervisor and replies with one response
// frame. The parent keeps its copy of every connection fd, so a handler that
// crashes still costs the client only an error frame — never a silent hang.
//
// Robustness envelope:
//   * load shedding: when max_inflight handlers are already running, a new
//     connection gets an immediate `busy` frame (counted as
//     service_busy_rejections) instead of queueing unboundedly;
//   * per-request deadline: a handler that exceeds request_deadline_ms is
//     SIGKILLed and its client gets an error frame;
//   * worker crashes: contained twice — per unit by the supervisor's fork
//     isolation inside the handler, and per request by the handler fork
//     itself;
//   * graceful drain: SIGTERM (or SIGINT) stops accepting, lets in-flight
//     handlers finish within drain_grace_ms, seals the service journal with
//     a final "sealed" line, removes the socket and exits 0;
//   * stale socket: a leftover socket file from a dead daemon (connect
//     refused) is unlinked and rebound; a live daemon on the same path is a
//     startup error;
//   * handlers die with the daemon (PDEATHSIG), so a SIGKILLed daemon leaves
//     no orphans — clients see the connection reset and fall back to local
//     analysis (service/client.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "analysis/engine.hpp"

namespace psa::service {

struct DaemonOptions {
  /// Unix-domain socket path to bind.
  std::string socket_path;
  /// Result cache directory handed to every handler's supervisor; empty
  /// disables caching. The `service.journal` lives here too (when set).
  std::string cache_dir;
  /// Handler concurrency cap; connections beyond it are shed with `busy`.
  /// Env override: PSA_SERVE_INFLIGHT.
  std::size_t max_inflight = 2;
  /// Worker concurrency inside each handler's supervisor.
  std::size_t jobs = 1;
  /// Whole-request wall-clock deadline in ms; 0 disables. A handler past it
  /// is SIGKILLed and the client gets an error frame. Env override:
  /// PSA_SERVE_REQUEST_DEADLINE_MS.
  std::uint64_t request_deadline_ms = 0;
  /// How long a SIGTERM drain waits for in-flight handlers before SIGKILL.
  std::uint64_t drain_grace_ms = 30'000;
  /// Per-frame socket I/O timeout for handlers.
  std::uint64_t io_timeout_ms = 30'000;
  /// Progress log (start / accept / busy / done / drain lines); null = quiet.
  std::function<void(const std::string&)> log;
};

/// Run the daemon until SIGTERM/SIGINT. Returns a process exit code: 0 after
/// a graceful drain, 1 on a setup failure (bad socket path, bind failure,
/// unusable cache dir, platform without sockets).
[[nodiscard]] int run_daemon(const DaemonOptions& options);

}  // namespace psa::service
