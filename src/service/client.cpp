#include "service/client.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "rsg/serialize.hpp"
#include "service/protocol.hpp"
#include "support/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PSA_SERVICE_HAS_SOCKETS 1
#include <csignal>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define PSA_SERVICE_HAS_SOCKETS 0
#endif

namespace psa::service {

namespace {

void log_line(const ClientOptions& options, const std::string& line) {
  if (options.log) options.log(line);
}

#if PSA_SERVICE_HAS_SOCKETS

int connect_unix(const std::string& path) {
  struct sockaddr_un addr {};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Deterministic per-process jitter stream (splitmix64 over pid + attempt):
/// no wall clock, but distinct processes still desynchronize.
std::uint64_t jitter_bits(int attempt) {
  std::uint64_t x = static_cast<std::uint64_t>(::getpid()) * 0x9e3779b97f4a7c15ull +
                    static_cast<std::uint64_t>(attempt);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

#endif  // PSA_SERVICE_HAS_SOCKETS

void backoff_sleep(const ClientOptions& options, int attempt) {
#if PSA_SERVICE_HAS_SOCKETS
  std::uint64_t delay = options.backoff_base_ms;
  for (int i = 1; i < attempt; ++i) {
    delay = std::min(options.backoff_cap_ms, delay * 2);
  }
  // +/-50% jitter, floor 1ms, so retry waves from many clients spread out.
  const std::uint64_t half = std::max<std::uint64_t>(1, delay / 2);
  delay = half + jitter_bits(attempt) % (delay - half + 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(delay));
#else
  (void)options;
  (void)attempt;
#endif
}

}  // namespace

RequestOutcome run_request(const std::vector<driver::AnalysisUnit>& units,
                           const driver::BatchOptions& batch,
                           const ClientOptions& client) {
  RequestOutcome outcome;

#if PSA_SERVICE_HAS_SOCKETS
  std::signal(SIGPIPE, SIG_IGN);

  ServiceRequest request;
  request.units = units;
  request.engine = batch.engine;
  request.check = batch.check;
  request.strict_frontend = batch.strict_frontend;
  request.unit_timeout_ms = batch.unit_timeout_ms;
  const std::string body = encode_request(request);

  const int max_attempts = std::max(1, client.max_attempts);
  std::string last_error = "no attempt made";
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      PSA_COUNT(support::Counter::kServiceRetries);
      backoff_sleep(client, attempt - 1);
    }
    outcome.attempts = attempt;

    const int fd = connect_unix(client.socket_path);
    if (fd < 0) {
      last_error = "cannot connect to " + client.socket_path;
      log_line(client, "connect: " + last_error + " (attempt " +
                           std::to_string(attempt) + ")");
      continue;
    }

    std::string error;
    Frame reply;
    const bool ok =
        send_frame(fd, MsgType::kRequest, body, client.io_timeout_ms,
                   &error) &&
        recv_frame(fd, reply, client.io_timeout_ms, &error);
    ::close(fd);

    if (!ok) {
      // Dead handler, reset, timeout: indistinguishable from the client's
      // side and all retryable.
      last_error = error;
      log_line(client, "connect: " + error + " (attempt " +
                           std::to_string(attempt) + ")");
      continue;
    }
    if (reply.type == MsgType::kBusy) {
      last_error = "daemon busy";
      log_line(client, "connect: daemon busy (attempt " +
                           std::to_string(attempt) + ")");
      continue;
    }
    if (reply.type == MsgType::kError) {
      last_error = "daemon error: " + reply.body;
      log_line(client, "connect: " + last_error + " (attempt " +
                           std::to_string(attempt) + ")");
      continue;
    }
    if (reply.type != MsgType::kResponse) {
      last_error = "unexpected reply frame";
      continue;
    }
    try {
      outcome.result = decode_response(reply.body);
      outcome.via_service = true;
      return outcome;
    } catch (const rsg::SnapshotError& e) {
      last_error = std::string("undecodable response: ") + e.what();
      log_line(client, "connect: " + last_error);
      continue;
    }
  }
#else
  std::string last_error = "sockets unsupported on this platform";
#endif

  if (!client.fallback) {
    outcome.error = last_error;
    return outcome;
  }

  // The availability contract: a dead daemon never fails a build. Run the
  // exact same batch locally — same options, isolation included — so the
  // report is byte-identical to the daemon's.
  log_line(client, "connect: service unavailable (" + last_error +
                       "), analyzing locally");
  outcome.result = driver::run_batch(units, batch);
  outcome.via_service = false;
  return outcome;
}

}  // namespace psa::service
