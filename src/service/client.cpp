#include "service/client.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <thread>

#include "driver/checkpoint.hpp"
#include "rsg/serialize.hpp"
#include "service/protocol.hpp"
#include "support/io.hpp"
#include "support/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define PSA_SERVICE_HAS_SOCKETS 1
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define PSA_SERVICE_HAS_SOCKETS 0
#endif

namespace psa::service {

namespace {

void log_line(const ClientOptions& options, const std::string& line) {
  if (options.log) options.log(line);
}

#if PSA_SERVICE_HAS_SOCKETS

int connect_unix(const std::string& path) {
  struct sockaddr_un addr {};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Deterministic per-process jitter stream (splitmix64 over pid + attempt):
/// no wall clock, but distinct processes still desynchronize.
std::uint64_t jitter_bits(int attempt) {
  std::uint64_t x = static_cast<std::uint64_t>(::getpid()) * 0x9e3779b97f4a7c15ull +
                    static_cast<std::uint64_t>(attempt);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

#endif  // PSA_SERVICE_HAS_SOCKETS

void backoff_sleep(const ClientOptions& options, int attempt) {
#if PSA_SERVICE_HAS_SOCKETS
  std::uint64_t delay = options.backoff_base_ms;
  for (int i = 1; i < attempt; ++i) {
    delay = std::min(options.backoff_cap_ms, delay * 2);
  }
  // +/-50% jitter, floor 1ms, so retry waves from many clients spread out.
  const std::uint64_t half = std::max<std::uint64_t>(1, delay / 2);
  delay = half + jitter_bits(attempt) % (delay - half + 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(delay));
#else
  (void)options;
  (void)attempt;
#endif
}

#if PSA_SERVICE_HAS_SOCKETS

/// Journal one streamed unit into the checkpoint exactly as a local
/// supervisor would have: attempt line, snapshot (durable tmp-then-rename
/// via support/io, so a client killed mid-write leaves no trusted
/// half-snapshot), outcome line. A failure degrades to "streamed but not
/// journaled" — never a failed unit — and returns false so the caller can
/// count and log it once.
bool journal_streamed_unit(driver::Checkpoint& checkpoint,
                           const driver::UnitReport& report,
                           const std::string& payload_bytes) {
  const std::string key = driver::unit_key(report.unit);
  bool durable =
      checkpoint.record_attempt(key, std::max(1, report.outcome.attempts));
  if (!payload_bytes.empty()) {
    const auto written = support::io::atomic_write(
        checkpoint.snapshot_tmp_path(key), checkpoint.snapshot_path(key),
        payload_bytes);
    if (!written) {
      PSA_COUNT(support::Counter::kIoDegradations);
      durable = false;
    }
  }
  if (!checkpoint.record_outcome(key, report.outcome)) durable = false;
  return durable;
}

#endif  // PSA_SERVICE_HAS_SOCKETS

}  // namespace

RequestOutcome run_request(const std::vector<driver::AnalysisUnit>& units,
                           const driver::BatchOptions& batch,
                           const ClientOptions& client) {
  RequestOutcome outcome;

#if PSA_SERVICE_HAS_SOCKETS
  if (units.empty()) {
    outcome.result = driver::run_batch(units, batch);
    outcome.via_service = false;
    return outcome;
  }

  // Results by ORIGINAL index: the stream delivers units in settle order
  // (and across reconnects, in fragments), but the final report must be in
  // input order and byte-identical to an uninterrupted run.
  std::vector<std::optional<driver::UnitReport>> results(units.size());
  std::vector<std::size_t> remaining;
  remaining.reserve(units.size());
  for (std::size_t i = 0; i < units.size(); ++i) remaining.push_back(i);
  bool isolated = true;  // AND over every source that contributed results

  // As-they-arrive journaling: with --checkpoint, a streamed unit is on disk
  // before the next frame is read, so killing the client (or losing the
  // daemon AND the fallback) still leaves a resumable checkpoint.
  std::optional<driver::Checkpoint> checkpoint;
  if (!batch.checkpoint_dir.empty()) {
    try {
      checkpoint.emplace(batch.checkpoint_dir, batch.resume);
      for (const std::string& note : checkpoint->recovery_notes()) {
        log_line(client, note);
      }
    } catch (const std::exception& e) {
      log_line(client, std::string("connect: checkpoint unavailable (") +
                           e.what() + "), streaming without journaling");
    }
  }

  const std::size_t total = units.size();
  std::size_t finished = 0;
  const int max_attempts = std::max(1, client.max_attempts);
  std::string last_error = "no attempt made";
  for (int attempt = 1; attempt <= max_attempts && !remaining.empty();
       ++attempt) {
    if (attempt > 1) {
      PSA_COUNT(support::Counter::kServiceRetries);
      backoff_sleep(client, attempt - 1);
    }
    outcome.attempts = attempt;

    const int fd = connect_unix(client.socket_path);
    if (fd < 0) {
      last_error = "cannot connect to " + client.socket_path;
      log_line(client, "connect: " + last_error + " (attempt " +
                           std::to_string(attempt) + ")");
      continue;
    }

    // Resume semantics live in the request itself: only the units this
    // client has not yet received are asked for.
    ServiceRequest request;
    request.units.reserve(remaining.size());
    for (const std::size_t idx : remaining) request.units.push_back(units[idx]);
    request.engine = batch.engine;
    request.check = batch.check;
    request.strict_frontend = batch.strict_frontend;
    request.unit_timeout_ms = batch.unit_timeout_ms;

    std::string error;
    bool torn = false;           // stream broke without a summary
    bool summary_seen = false;
    std::uint64_t last_seq = 0;  // stream frames must strictly increase
    if (!send_frame(fd, MsgType::kRequest, encode_request(request),
                    client.io_timeout_ms, &error)) {
      last_error = error;
      torn = true;
    } else {
      while (true) {
        Frame reply;
        if (!recv_frame(fd, reply, client.io_timeout_ms, &error)) {
          // Dead daemon, SIGKILLed handler, reset, torn half-frame, timeout:
          // indistinguishable from this side, and all resumable.
          last_error = error;
          torn = true;
          break;
        }
        if (reply.type == MsgType::kBusy) {
          last_error = "daemon busy";
          break;
        }
        if (reply.type == MsgType::kError) {
          last_error = "daemon error: " + reply.body;
          break;
        }
        try {
          if (reply.type == MsgType::kHeartbeat) {
            const HeartbeatFrame heartbeat = decode_heartbeat(reply.body);
            if (heartbeat.seq <= last_seq) {
              throw rsg::SnapshotError("stream sequence not increasing");
            }
            last_seq = heartbeat.seq;
            continue;
          }
          if (reply.type == MsgType::kUnitResult) {
            UnitResultFrame unit_result = decode_unit_result(reply.body);
            if (unit_result.seq <= last_seq) {
              throw rsg::SnapshotError("stream sequence not increasing");
            }
            last_seq = unit_result.seq;
            if (unit_result.unit_index >= remaining.size()) {
              throw rsg::SnapshotError("unit index out of request range");
            }
            const std::size_t orig = remaining[unit_result.unit_index];
            if (unit_result.report.unit.name != units[orig].name) {
              throw rsg::SnapshotError("unit identity mismatch in stream");
            }
            if (!results[orig]) {
              if (checkpoint &&
                  !journal_streamed_unit(*checkpoint, unit_result.report,
                                         unit_result.payload_bytes)) {
                log_line(client, "connect: checkpoint degraded for " +
                                     units[orig].name +
                                     " (resume would re-run it)");
              }
              results[orig] = std::move(unit_result.report);
              ++finished;
              ++outcome.streamed_units;
              log_line(client, "connect: streamed " + units[orig].name + " (" +
                                   std::to_string(finished) + "/" +
                                   std::to_string(total) + ")");
            }
            continue;
          }
          if (reply.type == MsgType::kSummary) {
            const SummaryFrame summary = decode_summary(reply.body);
            if (summary.seq <= last_seq) {
              throw rsg::SnapshotError("stream sequence not increasing");
            }
            summary_seen = true;
            isolated = isolated && summary.isolated;
            break;
          }
          last_error = "unexpected reply frame";
          torn = true;
          break;
        } catch (const rsg::SnapshotError& e) {
          // A frame that passed the checksum but not the decoder is as
          // untrustworthy as a torn one: drop the stream, keep the units
          // validated before it, resume on a fresh connection.
          last_error = std::string("undecodable stream frame: ") + e.what();
          torn = true;
          break;
        }
      }
    }
    ::close(fd);

    std::vector<std::size_t> still;
    for (const std::size_t idx : remaining) {
      if (!results[idx]) still.push_back(idx);
    }
    if (summary_seen && !still.empty()) {
      // The daemon declared the batch complete but this client is missing
      // units — a protocol anomaly; treat like any retryable failure.
      last_error = "summary frame with units missing";
    }
    if (torn) {
      outcome.reconnects += 1;
      PSA_COUNT(support::Counter::kReconnects);
      PSA_COUNT_N(support::Counter::kResumedUnits, finished);
      log_line(client, "connect: stream torn (" + last_error + "), retained " +
                           std::to_string(finished) + "/" +
                           std::to_string(total) + " units, " +
                           std::to_string(still.size()) + " outstanding");
    }
    remaining = std::move(still);
  }

  if (remaining.empty()) {
    outcome.via_service = true;
  } else {
#else
  std::string last_error = "sockets unsupported on this platform";
  std::vector<std::optional<driver::UnitReport>> results(units.size());
  std::vector<std::size_t> remaining;
  for (std::size_t i = 0; i < units.size(); ++i) remaining.push_back(i);
  bool isolated = true;
  {
#endif
    if (!client.fallback) {
      outcome.error = last_error;
      return outcome;
    }

    // The availability contract: a dead daemon never fails a build — and a
    // torn one never discards streamed work. Run exactly the still-missing
    // units locally with the same options, isolation included.
    log_line(client, "connect: service unavailable (" + last_error +
                         "), analyzing " + std::to_string(remaining.size()) +
                         " remaining units locally");
    std::vector<driver::AnalysisUnit> fallback_units;
    fallback_units.reserve(remaining.size());
    for (const std::size_t idx : remaining) {
      fallback_units.push_back(units[idx]);
    }
    driver::BatchOptions fallback_batch = batch;
#if PSA_SERVICE_HAS_SOCKETS
    if (checkpoint) {
      // The client already opened (and, without --resume, cleared) the
      // checkpoint and journaled the streamed units into it. The fallback
      // must RESUME that directory — reopening it fresh would erase them.
      // The missing units have no journal entries, so none of them are
      // spuriously served from disk.
      fallback_batch.resume = true;
      checkpoint.reset();  // hand the journal over to the supervisor
    }
#endif
    const driver::BatchResult local =
        driver::run_batch(fallback_units, fallback_batch);
    isolated = isolated && local.isolated;
    for (std::size_t i = 0;
         i < local.units.size() && i < remaining.size(); ++i) {
      results[remaining[i]] = local.units[i];
    }
    outcome.via_service = false;
  }

  driver::BatchResult assembled;
  assembled.isolated = isolated;
  assembled.units.reserve(units.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (results[i]) {
      assembled.units.push_back(std::move(*results[i]));
    } else {
      // Unreachable unless the fallback itself under-reported; surface the
      // unit as failed rather than silently dropping it from the report.
      driver::UnitReport missing;
      missing.unit = units[i];
      missing.outcome.kind = driver::UnitOutcomeKind::kExit;
      missing.outcome.detail = "unit missing from service stream and fallback";
      assembled.units.push_back(std::move(missing));
    }
  }
  outcome.result = std::move(assembled);
  return outcome;
}

}  // namespace psa::service
