// Function summaries for the interprocedural analysis (docs/ALGORITHMS.md).
//
// A summary is the caller-visible projection of a callee's effect, computed
// once per function (bottom-up over the call-graph SCCs, see summarize.hpp)
// and applied at every call site by the kCall transfer in
// analysis/semantics.cpp. The language subset has no globals, so everything
// a callee can reach — and therefore everything it can mutate — is the heap
// region reachable from its struct-pointer arguments. That makes a small,
// reusable record sufficient:
//
//   mutates_heap   the callee may write a pointer field of an argument-
//                  reachable cell. The call site then region-havocs the
//                  argument-reachable subgraph (rsg::summarize_region) —
//                  still far more precise than the whole-graph havoc of the
//                  PR 5 salvage lowering, which also destroys state the
//                  callee could never see.
//   may_free       the callee may free an argument-reachable cell; the
//                  region's live nodes widen to kMaybeFreed.
//   alloc_types    struct types (with callee source lines) the callee may
//                  allocate and link into caller-visible memory.
//   ret_kinds      what the returned struct pointer can be: NULL, a cell
//                  already in the argument region, and/or a fresh cell.
//   havoc_tainted  the callee's own analysis degraded (a havoc fallback or a
//                  governor rung fired inside it); call sites propagate the
//                  taint so checker findings stay "possible", exactly as the
//                  salvage envelope demands. Clean summaries set no taint —
//                  summary-derived witnesses keep full confidence.
//
// `analyzed == false` marks a function whose summary could not be computed
// (over-budget SCC fixpoint, non-converged run): call sites fall back to the
// sound kHavoc transfer and count kCallHavocFallback.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "lang/types.hpp"
#include "support/interner.hpp"

namespace psa::ipa {

using support::Symbol;

/// Bitmask of possible return-value origins for a struct-pointer-returning
/// callee, extracted from the __ret pvar binding in its exit states.
inline constexpr std::uint8_t kRetNull = 1;          // __ret unbound
inline constexpr std::uint8_t kRetParamDerived = 2;  // argument-reachable cell
inline constexpr std::uint8_t kRetFresh = 4;         // callee-allocated cell

struct FunctionSummary {
  Symbol function;
  /// Struct-pointer parameters in declaration order; kCall arg pvars bind to
  /// these positionally.
  std::vector<Symbol> params;

  /// False: no usable summary (call sites take the havoc fallback).
  bool analyzed = false;
  /// The callee's own analysis degraded; applied summaries taint the graph.
  bool havoc_tainted = false;
  /// The callee may write a pointer field of an argument-reachable cell.
  bool mutates_heap = false;
  /// The callee may free an argument-reachable cell.
  bool may_free = false;

  /// Struct types the callee (or its callees) may allocate, keyed by
  /// raw(StructId), each with the malloc source lines for leak findings.
  std::map<std::uint32_t, std::set<std::uint32_t>> alloc_types;

  /// kRet* bitmask; 0 when the callee never completes or has no
  /// struct-pointer return type.
  std::uint8_t ret_kinds = 0;
  std::optional<lang::StructId> ret_type;
  /// A kRetFresh return value may already be freed (the callee freed its own
  /// allocation before returning it). Param-derived returns don't need this:
  /// freeing an argument-reachable cell sets may_free, which widens the
  /// whole region.
  bool ret_maybe_freed = false;

  friend bool operator==(const FunctionSummary&,
                         const FunctionSummary&) = default;
};

/// Callee name -> summary. std::map keeps iteration deterministic (Symbol
/// ids follow interning order, which is a function of the source).
using SummaryTable = std::map<Symbol, FunctionSummary>;

}  // namespace psa::ipa
