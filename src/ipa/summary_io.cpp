#include "ipa/summary_io.hpp"

#include "rsg/serialize.hpp"

namespace psa::ipa {

namespace {

constexpr std::string_view kSummaryMagic = "psa-func-summary v1";

/// The canonical byte form: fixed field order, spellings for symbols, raw
/// u32 for struct ids (see header). Shared by the wire form and the hash so
/// they can never disagree about summary identity.
void write_summary_body(rsg::ByteWriter& out, const FunctionSummary& s,
                        const support::Interner& interner) {
  out.str(kSummaryMagic);
  out.str(s.function.valid() ? interner.spelling(s.function) : "");
  out.u32(static_cast<std::uint32_t>(s.params.size()));
  for (const Symbol p : s.params) {
    out.str(p.valid() ? interner.spelling(p) : "");
  }
  out.u8(s.analyzed ? 1 : 0);
  out.u8(s.havoc_tainted ? 1 : 0);
  out.u8(s.mutates_heap ? 1 : 0);
  out.u8(s.may_free ? 1 : 0);
  out.u32(static_cast<std::uint32_t>(s.alloc_types.size()));
  for (const auto& [type_raw, lines] : s.alloc_types) {
    out.u32(type_raw);
    out.u32(static_cast<std::uint32_t>(lines.size()));
    for (const std::uint32_t line : lines) out.u32(line);
  }
  out.u8(s.ret_kinds);
  out.u8(s.ret_type.has_value() ? 1 : 0);
  out.u32(s.ret_type.has_value() ? lang::raw(*s.ret_type) : 0);
  out.u8(s.ret_maybe_freed ? 1 : 0);
}

/// Resolve a serialized spelling against the current unit's interner. An
/// unresolvable non-empty spelling means the entry does not belong to this
/// unit (hash collision or corruption): payload skew, not a soft miss.
Symbol resolve(std::string_view spelling, const support::Interner& interner) {
  if (spelling.empty()) return Symbol{};
  const Symbol sym = interner.lookup(spelling);
  if (!sym.valid()) {
    throw rsg::SnapshotError("summary symbol not interned in this unit");
  }
  return sym;
}

}  // namespace

std::string serialize_summary(const FunctionSummary& summary,
                              const support::Interner& interner) {
  rsg::ByteWriter out;
  write_summary_body(out, summary, interner);
  return rsg::wrap_snapshot(out.take());
}

FunctionSummary deserialize_summary(std::string_view bytes,
                                    const support::Interner& interner) {
  const std::string_view payload = rsg::unwrap_snapshot(bytes);
  rsg::ByteReader in(payload);
  if (in.str("summary magic") != kSummaryMagic) {
    throw rsg::SnapshotError("not a function-summary entry");
  }
  FunctionSummary s;
  s.function = resolve(in.str("summary function"), interner);
  const std::uint32_t nparams = in.count("summary params", 4);
  s.params.reserve(nparams);
  for (std::uint32_t i = 0; i < nparams; ++i) {
    s.params.push_back(resolve(in.str("summary param"), interner));
  }
  s.analyzed = in.u8("summary analyzed") != 0;
  s.havoc_tainted = in.u8("summary havoc_tainted") != 0;
  s.mutates_heap = in.u8("summary mutates_heap") != 0;
  s.may_free = in.u8("summary may_free") != 0;
  const std::uint32_t ntypes = in.count("summary alloc_types", 8);
  for (std::uint32_t i = 0; i < ntypes; ++i) {
    const std::uint32_t type_raw = in.u32("summary alloc type");
    auto& lines = s.alloc_types[type_raw];
    const std::uint32_t nlines = in.count("summary alloc lines", 4);
    for (std::uint32_t j = 0; j < nlines; ++j) {
      lines.insert(in.u32("summary alloc line"));
    }
  }
  s.ret_kinds = in.u8("summary ret_kinds");
  const bool has_ret_type = in.u8("summary has ret_type") != 0;
  const std::uint32_t ret_type_raw = in.u32("summary ret_type");
  if (has_ret_type) s.ret_type = static_cast<lang::StructId>(ret_type_raw);
  s.ret_maybe_freed = in.u8("summary ret_maybe_freed") != 0;
  in.expect_end("summary entry");
  return s;
}

std::uint64_t summary_hash(const FunctionSummary& summary,
                           const support::Interner& interner) {
  rsg::ByteWriter out;
  write_summary_body(out, summary, interner);
  return rsg::snapshot_checksum(out.bytes());
}

}  // namespace psa::ipa
