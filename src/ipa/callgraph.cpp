#include "ipa/callgraph.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace psa::ipa {

namespace {
constexpr std::uint32_t kUnvisited = std::numeric_limits<std::uint32_t>::max();
}  // namespace

CallGraph::CallGraph(const std::vector<CallGraphNode>& functions) {
  const std::size_t n = functions.size();
  edges_.resize(n);

  // Resolve callees by name, first definition winning — the same rule sema
  // uses, so a kCall statement always maps to the summary that will be
  // computed for it. (emplace keeps the first index on duplicate names.)
  std::unordered_map<Symbol, std::size_t> by_name;
  by_name.reserve(n);
  for (std::size_t j = 0; j < n; ++j) by_name.emplace(functions[j].name, j);

  for (std::size_t i = 0; i < n; ++i) {
    if (functions[i].cfg == nullptr) continue;
    for (const cfg::CfgNode& node : functions[i].cfg->nodes()) {
      if (node.stmt.op != cfg::SimpleOp::kCall) continue;
      const auto it = by_name.find(node.stmt.callee);
      if (it != by_name.end()) edges_[i].push_back(it->second);
    }
    std::sort(edges_[i].begin(), edges_[i].end());
    edges_[i].erase(std::unique(edges_[i].begin(), edges_[i].end()),
                    edges_[i].end());
  }

  condense();
}

CallGraph::CallGraph(std::vector<std::vector<std::size_t>> edges)
    : edges_(std::move(edges)) {
  condense();
}

void CallGraph::condense() {
  const std::size_t n = edges_.size();
  index_.assign(n, kUnvisited);
  lowlink_.assign(n, 0);
  on_stack_.assign(n, false);
  for (std::size_t v = 0; v < n; ++v) {
    if (index_[v] == kUnvisited) strongconnect(v);
  }
}

// Iterative Tarjan: an explicit frame stack instead of native recursion, so
// a unit-long call chain cannot overflow the process stack.
void CallGraph::strongconnect(std::size_t root) {
  struct Frame {
    std::size_t v;
    std::size_t next_edge;  // resume point into edges_[v]
  };
  std::vector<Frame> frames;
  frames.push_back({root, 0});
  index_[root] = lowlink_[root] = next_index_++;
  stack_.push_back(root);
  on_stack_[root] = true;

  while (!frames.empty()) {
    const std::size_t v = frames.back().v;
    if (frames.back().next_edge < edges_[v].size()) {
      const std::size_t w = edges_[v][frames.back().next_edge++];
      if (index_[w] == kUnvisited) {
        index_[w] = lowlink_[w] = next_index_++;
        stack_.push_back(w);
        on_stack_[w] = true;
        frames.push_back({w, 0});
      } else if (on_stack_[w]) {
        lowlink_[v] = std::min(lowlink_[v], index_[w]);
      }
      continue;
    }

    // All of v's edges explored: close its SCC if v is the root, then fold
    // its lowlink into the caller (the post-recursion min of the recursive
    // formulation).
    if (lowlink_[v] == index_[v]) {
      std::vector<std::size_t> scc;
      std::size_t w;
      do {
        w = stack_.back();
        stack_.pop_back();
        on_stack_[w] = false;
        scc.push_back(w);
      } while (w != v);
      std::sort(scc.begin(), scc.end());
      sccs_.push_back(std::move(scc));
    }
    frames.pop_back();
    if (!frames.empty()) {
      const std::size_t parent = frames.back().v;
      lowlink_[parent] = std::min(lowlink_[parent], lowlink_[v]);
    }
  }
}

bool CallGraph::recursive(const std::vector<std::size_t>& scc) const {
  if (scc.size() > 1) return true;
  if (scc.empty()) return false;
  const std::size_t v = scc.front();
  return std::find(edges_[v].begin(), edges_[v].end(), v) != edges_[v].end();
}

}  // namespace psa::ipa
