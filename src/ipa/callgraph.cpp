#include "ipa/callgraph.hpp"

#include <algorithm>
#include <limits>

namespace psa::ipa {

namespace {
constexpr std::uint32_t kUnvisited = std::numeric_limits<std::uint32_t>::max();
}  // namespace

CallGraph::CallGraph(const std::vector<CallGraphNode>& functions) {
  const std::size_t n = functions.size();
  edges_.resize(n);

  // Resolve callees by name, first definition winning — the same rule sema
  // uses, so a kCall statement always maps to the summary that will be
  // computed for it.
  auto resolve = [&](Symbol name) -> std::size_t {
    for (std::size_t j = 0; j < n; ++j) {
      if (functions[j].name == name) return j;
    }
    return n;
  };

  for (std::size_t i = 0; i < n; ++i) {
    if (functions[i].cfg == nullptr) continue;
    for (const cfg::CfgNode& node : functions[i].cfg->nodes()) {
      if (node.stmt.op != cfg::SimpleOp::kCall) continue;
      const std::size_t j = resolve(node.stmt.callee);
      if (j < n) edges_[i].push_back(j);
    }
    std::sort(edges_[i].begin(), edges_[i].end());
    edges_[i].erase(std::unique(edges_[i].begin(), edges_[i].end()),
                    edges_[i].end());
  }

  index_.assign(n, kUnvisited);
  lowlink_.assign(n, 0);
  on_stack_.assign(n, false);
  for (std::size_t v = 0; v < n; ++v) {
    if (index_[v] == kUnvisited) strongconnect(v);
  }
}

void CallGraph::strongconnect(std::size_t v) {
  index_[v] = lowlink_[v] = next_index_++;
  stack_.push_back(v);
  on_stack_[v] = true;

  for (const std::size_t w : edges_[v]) {
    if (index_[w] == kUnvisited) {
      strongconnect(w);
      lowlink_[v] = std::min(lowlink_[v], lowlink_[w]);
    } else if (on_stack_[w]) {
      lowlink_[v] = std::min(lowlink_[v], index_[w]);
    }
  }

  if (lowlink_[v] == index_[v]) {
    std::vector<std::size_t> scc;
    std::size_t w;
    do {
      w = stack_.back();
      stack_.pop_back();
      on_stack_[w] = false;
      scc.push_back(w);
    } while (w != v);
    std::sort(scc.begin(), scc.end());
    sccs_.push_back(std::move(scc));
  }
}

bool CallGraph::recursive(const std::vector<std::size_t>& scc) const {
  if (scc.size() > 1) return true;
  if (scc.empty()) return false;
  const std::size_t v = scc.front();
  return std::find(edges_[v].begin(), edges_[v].end(), v) != edges_[v].end();
}

}  // namespace psa::ipa
