// Call graph + Tarjan SCC condensation over the lowered CFGs of one unit.
//
// Nodes are the unit's analyzable functions; an edge f -> g exists when f's
// CFG contains a kCall statement naming g. Extern callees never appear (sema
// only marks in-unit calls summarizable, and their call sites take the havoc
// fallback regardless). The SCCs come out in bottom-up (callee-first) order,
// which is exactly the order the summary computation needs: every call edge
// leaving an SCC targets an SCC whose summaries are already final.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cfg/cfg.hpp"
#include "support/interner.hpp"

namespace psa::ipa {

using support::Symbol;

/// One function of the unit, by name, with its lowered CFG.
struct CallGraphNode {
  Symbol name;
  const cfg::Cfg* cfg = nullptr;
};

class CallGraph {
 public:
  explicit CallGraph(const std::vector<CallGraphNode>& functions);

  /// Condense a pre-resolved adjacency list (callee indices per caller).
  /// Used by tests to exercise graph shapes a parsed unit cannot reach
  /// cheaply (e.g. call chains deep enough to overflow a recursive walk).
  explicit CallGraph(std::vector<std::vector<std::size_t>> edges);

  /// Strongly connected components in bottom-up order (Tarjan pop order:
  /// all call edges leaving an SCC go to an earlier entry of this list).
  /// Members are indices into the constructor's `functions`, sorted
  /// ascending within each SCC for determinism.
  [[nodiscard]] const std::vector<std::vector<std::size_t>>& sccs() const {
    return sccs_;
  }

  /// Deduplicated call edges: edges()[caller] = callee indices.
  [[nodiscard]] const std::vector<std::vector<std::size_t>>& edges() const {
    return edges_;
  }

  /// True when the SCC carries an internal call edge (self- or mutual
  /// recursion): its summaries need a Kleene fixpoint instead of one pass.
  [[nodiscard]] bool recursive(const std::vector<std::size_t>& scc) const;

 private:
  void condense();
  void strongconnect(std::size_t v);

  std::vector<std::vector<std::size_t>> edges_;
  std::vector<std::vector<std::size_t>> sccs_;

  // Tarjan state (live only during construction).
  std::vector<std::uint32_t> index_;
  std::vector<std::uint32_t> lowlink_;
  std::vector<bool> on_stack_;
  std::vector<std::size_t> stack_;
  std::uint32_t next_index_ = 0;
};

}  // namespace psa::ipa
