// Bottom-up summary computation over the call-graph SCCs (docs/ALGORITHMS.md).
//
// Every analyzable function of the unit is analyzed once (non-recursive
// case) or Kleene-iterated to a stable summary table (recursive SCCs, capped
// at Options::max_summary_iters) in callee-first order, so each analysis run
// already has final summaries for every call that leaves its SCC. The
// per-callee run starts from the entry abstraction of its struct-pointer
// parameters (analysis::bind_unknown_param) and is budgeted by
// Options::summary_visit_budget; a run that fails to converge — or an SCC
// whose iteration cap trips — leaves `analyzed == false`, and the kCall
// transfer havoc-falls-back at those sites.
#pragma once

#include "analysis/analyzer.hpp"
#include "ipa/summary.hpp"

namespace psa::ipa {

/// Compute the summary table for every function in `program.unit_cfgs`.
/// `options` provides the analysis level, budgets and IPA knobs; its
/// `summaries`/`entry_states` fields are ignored (they are outputs of this
/// pass, not inputs).
[[nodiscard]] SummaryTable compute_summaries(
    const analysis::ProgramAnalysis& program,
    const analysis::Options& options);

}  // namespace psa::ipa
