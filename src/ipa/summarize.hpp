// Bottom-up summary computation over the call-graph SCCs (docs/ALGORITHMS.md).
//
// Every analyzable function of the unit is analyzed once (non-recursive
// case) or Kleene-iterated to a stable summary table (recursive SCCs, capped
// at Options::max_summary_iters) in callee-first order, so each analysis run
// already has final summaries for every call that leaves its SCC. The
// per-callee run starts from the entry abstraction of its struct-pointer
// parameters (analysis::bind_unknown_param) and is budgeted by
// Options::summary_visit_budget; a run that fails to converge — or an SCC
// whose iteration cap trips — leaves `analyzed == false`, and the kCall
// transfer havoc-falls-back at those sites.
//
// The incremental cache tier (docs/CACHING.md) plugs in through
// SummaryReuse: because SCCs are processed callee-first, a reuse provider is
// always offered a function *after* its direct callees' summaries are final
// in the table — exactly the information a content-addressed per-function
// key needs. Recursive SCCs are never offered for reuse: their summaries are
// a property of the whole SCC's Kleene fixpoint, so the SCC is the recompute
// unit and its member entries are not cached.
#pragma once

#include <optional>
#include <vector>

#include "analysis/analyzer.hpp"
#include "ipa/summary.hpp"

namespace psa::ipa {

/// Cache hook for per-function summary reuse. Implemented by the driver's
/// incremental layer (driver/incremental.hpp); compute_summaries only
/// guarantees the call discipline documented above.
class SummaryReuse {
 public:
  virtual ~SummaryReuse() = default;

  /// Offered before `fn`'s summary fixpoint runs; `table` already holds the
  /// final summaries of every function processed so far (in particular all
  /// of `fn`'s direct callees outside its SCC). Returning a summary skips
  /// the computation entirely.
  [[nodiscard]] virtual std::optional<FunctionSummary> lookup(
      const analysis::FunctionCfg& fn, const SummaryTable& table) = 0;

  /// Offered after `fn`'s summary was computed (only for functions that were
  /// eligible for lookup). `table` is the same callee context the lookup
  /// saw — NOT yet including `fn` itself.
  virtual void store(const analysis::FunctionCfg& fn,
                     const SummaryTable& table,
                     const FunctionSummary& summary) = 0;
};

/// Compute the summary table for every function in `program.unit_cfgs`.
/// `options` provides the analysis level, budgets and IPA knobs; its
/// `summaries`/`entry_states` fields are ignored (they are outputs of this
/// pass, not inputs).
[[nodiscard]] SummaryTable compute_summaries(
    const analysis::ProgramAnalysis& program,
    const analysis::Options& options);

/// Incremental form: same bottom-up pass, but each non-recursive function is
/// first offered to `reuse` (either argument may be null — both null is the
/// plain overload). When `roots` is non-null, only functions transitively
/// reachable from those callee names are processed at all — the demand set
/// of a target whose direct callees are `roots`; everything else is skipped
/// (its summary could never be consulted), keeping the probe count equal to
/// the number of summaries the analysis can actually use.
[[nodiscard]] SummaryTable compute_summaries(
    const analysis::ProgramAnalysis& program, const analysis::Options& options,
    SummaryReuse* reuse, const std::vector<Symbol>* roots);

}  // namespace psa::ipa
