// Stable serialization and content hashing for FunctionSummary values
// (docs/CACHING.md).
//
// The function-granular cache tier needs two things from a summary beyond
// what summary.hpp provides:
//
//   * a wire form, so a computed summary can be stored as its own cache
//     entry (PSASNAP1-enveloped like every other on-disk artifact) and
//     loaded back on the next run without re-running the callee's fixpoint;
//   * a content hash, so a *caller's* cache key can say "I was computed
//     against callees whose observable behavior hashed to H". This is the
//     cascade cutoff of the incremental design: an edit that changes a
//     callee's body but not its summary bytes re-runs only the callee —
//     every caller's key is unchanged and its entry still hits.
//
// Both are spelling-based: symbols are written as their interned spellings
// (symbol ids are an artifact of interning order and differ across edited
// sources), while StructIds stay raw — every cache key folds the full struct
// table, so two runs that agree on the key prefix agree on struct numbering.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "ipa/summary.hpp"

namespace psa::ipa {

/// PSASNAP1-enveloped wire form of one summary. Deterministic: two equal
/// summaries over the same interner serialize identically.
[[nodiscard]] std::string serialize_summary(const FunctionSummary& summary,
                                            const support::Interner& interner);

/// Parse an enveloped summary back. Symbols are resolved against `interner`
/// by spelling; a spelling the current unit does not intern (the function or
/// a parameter was renamed away) throws rsg::SnapshotError like any other
/// payload skew — the caller treats the entry as invalid and recomputes.
[[nodiscard]] FunctionSummary deserialize_summary(
    std::string_view bytes, const support::Interner& interner);

/// 64-bit FNV-1a over the summary's canonical (un-enveloped) byte form.
/// Equal summaries hash equal; the cache keys treat this as the summary's
/// identity, so "hash unchanged" is what stops an invalidation cascade.
[[nodiscard]] std::uint64_t summary_hash(const FunctionSummary& summary,
                                         const support::Interner& interner);

}  // namespace psa::ipa
