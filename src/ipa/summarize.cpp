#include "ipa/summarize.hpp"

#include <set>
#include <vector>

#include "analysis/semantics.hpp"
#include "ipa/callgraph.hpp"
#include "support/metrics.hpp"

namespace psa::ipa {

namespace {

using analysis::FunctionCfg;
using analysis::ProgramAnalysis;
using rsg::NodeRef;
using rsg::Rsg;

/// May the heap region reachable from `roots` contain a cell that derives
/// from the function's own caller (a havoc-marked node of the summary run)?
/// BFS over may-links — the same closure the kCall transfer uses.
bool may_reach_marked(const Rsg& g, const std::vector<support::Symbol>& roots) {
  std::set<NodeRef> seen;
  std::vector<NodeRef> work;
  for (const support::Symbol r : roots) {
    const NodeRef t = g.pvar_target(r);
    if (t != rsg::kNoNode && seen.insert(t).second) work.push_back(t);
  }
  while (!work.empty()) {
    const NodeRef n = work.back();
    work.pop_back();
    if (g.props(n).havoc) return true;
    for (const rsg::Link& l : g.out_links(n)) {
      if (seen.insert(l.target).second) work.push_back(l.target);
    }
  }
  return false;
}

bool any_marked(const Rsg& g) {
  for (const NodeRef n : g.node_refs()) {
    if (g.props(n).havoc) return true;
  }
  return false;
}

/// Pointwise widening join: the Kleene iteration over a recursive SCC must
/// ascend, so each recomputed summary is folded into its predecessor
/// (booleans OR, sets union) instead of replacing it.
FunctionSummary join(FunctionSummary a, const FunctionSummary& b) {
  a.analyzed = a.analyzed && b.analyzed;
  a.havoc_tainted |= b.havoc_tainted;
  a.mutates_heap |= b.mutates_heap;
  a.may_free |= b.may_free;
  for (const auto& [type_raw, lines] : b.alloc_types) {
    a.alloc_types[type_raw].insert(lines.begin(), lines.end());
  }
  a.ret_kinds |= b.ret_kinds;
  a.ret_maybe_freed |= b.ret_maybe_freed;
  return a;
}

/// Analyze one function from its abstracted entry states and project the
/// result onto a caller-visible summary. `table` holds the summaries of
/// every already-processed callee (final for SCCs below, the current Kleene
/// iterate for SCC siblings).
FunctionSummary summarize_one(const ProgramAnalysis& program,
                              const FunctionCfg& fc,
                              const lang::FunctionInfo& info,
                              const analysis::Options& base,
                              const SummaryTable& table) {
  FunctionSummary s;
  s.function = fc.name;
  if (info.decl->return_type.is_struct_pointer()) {
    s.ret_type = *info.decl->return_type.struct_id;
  }
  for (const lang::Param& p : info.decl->params) {
    if (p.type.is_struct_pointer()) s.params.push_back(p.name);
  }

  // Selector universe of this CFG — same construction as the engine's.
  std::vector<support::Symbol> selectors;
  {
    std::set<support::Symbol> sels;
    for (const cfg::CfgNode& node : fc.cfg.nodes()) {
      if (node.stmt.sel.valid()) sels.insert(node.stmt.sel);
    }
    selectors.assign(sels.begin(), sels.end());
  }

  analysis::TransferContext ctx;
  ctx.policy = base.policy();
  ctx.prune = base.prune_options();
  ctx.cfg = &fc.cfg;
  ctx.induction = &fc.induction;
  ctx.types = &program.unit.types;
  ctx.selectors = &selectors;

  // Entry abstraction: each struct-pointer parameter bound to an unknown
  // caller value (NULL / alias / fresh ⊤), cross product over the
  // parameters. The node-level havoc marks these bindings carry are the
  // "derives from caller memory" markers every projection below keys on.
  std::vector<Rsg> entry_states;
  entry_states.emplace_back();
  for (const support::Symbol param : s.params) {
    const auto it = info.variables.find(param);
    if (it == info.variables.end() || !it->second.struct_id.has_value()) {
      continue;
    }
    std::vector<Rsg> next;
    for (const Rsg& g : entry_states) {
      for (Rsg& v :
           analysis::bind_unknown_param(g, param, *it->second.struct_id, ctx)) {
        next.push_back(std::move(v));
      }
    }
    entry_states = std::move(next);
  }

  analysis::Options opts = base;
  opts.types = &program.unit.types;
  opts.summaries = &table;
  opts.entry_states = &entry_states;
  opts.max_node_visits = base.summary_visit_budget;
  // Summary runs are budgeted by visits alone: a wall-clock deadline would
  // make the table — and everything cached from it — nondeterministic.
  opts.deadline_ms = 0;

  const analysis::AnalysisResult res =
      analysis::analyze_cfg(fc.cfg, fc.induction, opts);
  if (!res.converged()) return s;  // analyzed stays false: havoc fallback
  s.analyzed = true;
  s.havoc_tainted = res.degraded();

  // Caller-visible effects, judged against the abstract states *before*
  // each statement (the union of its predecessors' outputs; the entry's
  // input is the entry abstraction).
  std::vector<const Rsg*> inputs;
  const auto collect_inputs = [&](cfg::NodeId id) {
    inputs.clear();
    if (id == fc.cfg.entry()) {
      for (const Rsg& g : entry_states) inputs.push_back(&g);
    }
    for (const cfg::NodeId p : fc.cfg.node(id).preds) {
      for (const Rsg& g : res.per_node[p].graphs()) inputs.push_back(&g);
    }
  };

  for (cfg::NodeId id = 0; id < fc.cfg.size(); ++id) {
    const cfg::SimpleStmt& stmt = fc.cfg.node(id).stmt;
    switch (stmt.op) {
      case cfg::SimpleOp::kStore:
      case cfg::SimpleOp::kStoreNull: {
        // A pointer-field write mutates caller-visible memory iff the base
        // may target a caller-derived cell. Writes into cells the callee
        // allocated itself (unmarked) are invisible until those cells are
        // linked in — and the linking store has a marked base.
        collect_inputs(id);
        for (const Rsg* g : inputs) {
          const NodeRef t = g->pvar_target(stmt.x);
          if (t != rsg::kNoNode && g->props(t).havoc) {
            s.mutates_heap = true;
            break;
          }
        }
        break;
      }
      case cfg::SimpleOp::kFree: {
        collect_inputs(id);
        for (const Rsg* g : inputs) {
          const NodeRef t = g->pvar_target(stmt.x);
          if (t != rsg::kNoNode && g->props(t).havoc) {
            s.may_free = true;
            break;
          }
        }
        break;
      }
      case cfg::SimpleOp::kPtrMalloc:
        s.alloc_types[lang::raw(stmt.type)].insert(stmt.loc.line);
        break;
      case cfg::SimpleOp::kHavoc:
        // A salvaged unknown construct (extern call, unsupported statement).
        // Global form: the unknown code may rewrite any reachable cell — if
        // any caller-derived cell is live here, report a mutation. The
        // rebind form only reassigns a local pvar. Either way the run's
        // exit states carry the graph taint, so havoc_tainted follows below.
        if (!stmt.x.valid()) {
          collect_inputs(id);
          for (const Rsg* g : inputs) {
            if (any_marked(*g)) {
              s.mutates_heap = true;
              break;
            }
          }
        }
        break;
      case cfg::SimpleOp::kCall: {
        // Effects propagate from the callee's summary, but only when the
        // arguments can actually carry caller memory into it. A missing or
        // unanalyzed callee took exec_call_fallback inside this very run —
        // real in-unit code that may free or allocate caller-reachable
        // memory, neither of which this projection can represent (may_free
        // would stay false, alloc sites would vanish). If the site is
        // reachable at all, degrade the whole summary to unanalyzed so this
        // function's own call sites take the same sound fallback instead of
        // an under-approximating summary.
        const auto it = table.find(stmt.callee);
        if (it == table.end() || !it->second.analyzed) {
          collect_inputs(id);
          if (!inputs.empty()) {
            s.analyzed = false;
            return s;
          }
          break;
        }
        const FunctionSummary& cs = it->second;
        for (const auto& [type_raw, lines] : cs.alloc_types) {
          s.alloc_types[type_raw].insert(lines.begin(), lines.end());
        }
        if (cs.mutates_heap || cs.may_free) {
          collect_inputs(id);
          for (const Rsg* g : inputs) {
            if (may_reach_marked(*g, stmt.args)) {
              if (cs.mutates_heap) s.mutates_heap = true;
              if (cs.may_free) s.may_free = true;
              break;
            }
          }
        }
        break;
      }
      default:
        break;
    }
  }

  // Return-value projection from the __ret binding of the exit states. An
  // empty exit RSRSG (the function cannot complete on any feasible path)
  // leaves ret_kinds == 0 — the call site's continuation is unreachable.
  const support::Symbol ret_sym = program.unit.interner->lookup("__ret");
  for (const Rsg& g : res.at_exit(fc.cfg).graphs()) {
    if (g.havoc()) s.havoc_tainted = true;
    if (!s.ret_type.has_value() || !ret_sym.valid()) continue;
    const NodeRef t = g.pvar_target(ret_sym);
    if (t == rsg::kNoNode) {
      s.ret_kinds |= kRetNull;
    } else if (g.props(t).havoc) {
      s.ret_kinds |= kRetParamDerived;
    } else {
      s.ret_kinds |= kRetFresh;
      if (g.props(t).free_state != rsg::FreeState::kLive) {
        s.ret_maybe_freed = true;
      }
    }
  }
  return s;
}

}  // namespace

SummaryTable compute_summaries(const ProgramAnalysis& program,
                               const analysis::Options& options) {
  return compute_summaries(program, options, nullptr, nullptr);
}

SummaryTable compute_summaries(const ProgramAnalysis& program,
                               const analysis::Options& options,
                               SummaryReuse* reuse,
                               const std::vector<Symbol>* roots) {
  std::vector<CallGraphNode> nodes;
  nodes.reserve(program.unit_cfgs.size());
  for (const FunctionCfg& fc : program.unit_cfgs) {
    nodes.push_back({fc.name, &fc.cfg});
  }
  const CallGraph cg(nodes);

  // Demand filter: with explicit roots, only functions transitively
  // reachable from them can ever have their summary consulted — either
  // directly by the target's kCall transfers or indirectly while computing
  // a demanded caller's summary. Everything else is skipped outright.
  std::vector<bool> demanded(program.unit_cfgs.size(), roots == nullptr);
  if (roots != nullptr) {
    std::vector<std::size_t> work;
    for (const Symbol root : *roots) {
      for (std::size_t i = 0; i < program.unit_cfgs.size(); ++i) {
        if (program.unit_cfgs[i].name == root && !demanded[i]) {
          demanded[i] = true;
          work.push_back(i);
        }
      }
    }
    while (!work.empty()) {
      const std::size_t caller = work.back();
      work.pop_back();
      for (const std::size_t callee : cg.edges()[caller]) {
        if (!demanded[callee]) {
          demanded[callee] = true;
          work.push_back(callee);
        }
      }
    }
  }
  const auto scc_demanded = [&](const std::vector<std::size_t>& scc) {
    for (const std::size_t i : scc) {
      if (demanded[i]) return true;
    }
    return false;
  };

  SummaryTable table;
  for (const auto& scc : cg.sccs()) {
    if (!scc_demanded(scc)) continue;
    if (!cg.recursive(scc)) {
      const FunctionCfg& fc = program.unit_cfgs[scc.front()];
      const lang::FunctionInfo* info = program.sema.find(fc.name);
      if (info == nullptr) continue;
      if (reuse != nullptr) {
        if (std::optional<FunctionSummary> cached = reuse->lookup(fc, table)) {
          table[fc.name] = std::move(*cached);
          continue;
        }
      }
      FunctionSummary s = summarize_one(program, fc, *info, options, table);
      if (s.analyzed) PSA_COUNT(support::Counter::kSummaryComputed);
      if (reuse != nullptr) reuse->store(fc, table, s);
      table[fc.name] = std::move(s);
      continue;
    }

    // Recursive SCC: Kleene iteration from the bottom summary ("touches
    // nothing, never completes"). Every field only grows under `join`, so
    // the chain ascends in a finite lattice; the cap bounds the cost and an
    // over-cap cycle degrades the *whole* SCC to the havoc fallback —
    // partial tables would mix iterates of different fixpoints.
    for (const std::size_t i : scc) {
      const FunctionCfg& fc = program.unit_cfgs[i];
      FunctionSummary bottom;
      bottom.function = fc.name;
      bottom.analyzed = true;
      if (const lang::FunctionInfo* info = program.sema.find(fc.name)) {
        if (info->decl->return_type.is_struct_pointer()) {
          bottom.ret_type = *info->decl->return_type.struct_id;
        }
        for (const lang::Param& p : info->decl->params) {
          if (p.type.is_struct_pointer()) bottom.params.push_back(p.name);
        }
      }
      table[fc.name] = std::move(bottom);
    }
    bool stable = false;
    bool failed = false;
    for (std::size_t iter = 0; iter < options.max_summary_iters && !stable;
         ++iter) {
      PSA_COUNT(support::Counter::kSummaryFixpointIters);
      stable = true;
      for (const std::size_t i : scc) {
        const FunctionCfg& fc = program.unit_cfgs[i];
        const lang::FunctionInfo* info = program.sema.find(fc.name);
        if (info == nullptr) {
          failed = true;
          break;
        }
        FunctionSummary next = summarize_one(program, fc, *info, options, table);
        if (!next.analyzed) {
          failed = true;
          break;
        }
        FunctionSummary merged = join(table[fc.name], next);
        if (!(merged == table[fc.name])) {
          stable = false;
          table[fc.name] = std::move(merged);
        }
      }
      if (failed) break;
    }
    if (failed || !stable) {
      for (const std::size_t i : scc) {
        const FunctionCfg& fc = program.unit_cfgs[i];
        FunctionSummary unanalyzed;
        unanalyzed.function = fc.name;
        table[fc.name] = std::move(unanalyzed);
      }
    } else {
      for (std::size_t k = 0; k < scc.size(); ++k) {
        PSA_COUNT(support::Counter::kSummaryComputed);
      }
    }
  }
  return table;
}

}  // namespace psa::ipa
