// Hand-written lexer for the analyzed C subset.
#pragma once

#include <string_view>
#include <vector>

#include "lang/token.hpp"
#include "support/diagnostics.hpp"

namespace psa::lang {

class Lexer {
 public:
  /// `source` must outlive the produced tokens (their text fields view it).
  Lexer(std::string_view source, support::DiagnosticEngine& diags);

  /// Tokenize the whole buffer; the last token is always kEof.
  [[nodiscard]] std::vector<Token> lex_all();

 private:
  [[nodiscard]] Token next();
  [[nodiscard]] char peek(std::size_t ahead = 0) const;
  char advance();
  [[nodiscard]] bool match(char expected);
  void skip_trivia();
  [[nodiscard]] support::SourceLoc location() const;
  Token make(TokenKind kind, std::size_t begin) const;

  std::string_view source_;
  support::DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
};

}  // namespace psa::lang
