#include "lang/ast.hpp"

#include <sstream>

namespace psa::lang {

ExprPtr make_expr(ExprKind kind, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->loc = loc;
  return e;
}

StmtPtr make_stmt(StmtKind kind, SourceLoc loc) {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  s->loc = loc;
  return s;
}

const FunctionDecl* TranslationUnit::find_function(std::string_view name) const {
  const Symbol sym = interner->lookup(name);
  if (!sym.valid()) return nullptr;
  for (const auto& f : functions)
    if (f.name == sym) return &f;
  return nullptr;
}

namespace {

std::string_view unary_op_name(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNeg: return "-";
    case UnaryOp::kNot: return "!";
    case UnaryOp::kDeref: return "*";
    case UnaryOp::kAddrOf: return "&";
  }
  return "?";
}

std::string_view binary_op_name(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "&&";
    case BinaryOp::kOr: return "||";
  }
  return "?";
}

}  // namespace

std::string dump_expr(const Expr& expr, const support::Interner& in) {
  std::ostringstream os;
  switch (expr.kind) {
    case ExprKind::kIntLit:
    case ExprKind::kFloatLit:
      os << expr.literal;
      break;
    case ExprKind::kStringLit:
      os << expr.literal;
      break;
    case ExprKind::kNullLit:
      os << "NULL";
      break;
    case ExprKind::kVarRef:
      os << in.spelling(expr.name);
      break;
    case ExprKind::kFieldAccess:
      os << dump_expr(*expr.lhs, in) << (expr.via_arrow ? "->" : ".")
         << in.spelling(expr.name);
      break;
    case ExprKind::kUnary:
      os << unary_op_name(expr.unary_op) << '(' << dump_expr(*expr.lhs, in)
         << ')';
      break;
    case ExprKind::kBinary:
      os << '(' << dump_expr(*expr.lhs, in) << ' '
         << binary_op_name(expr.binary_op) << ' ' << dump_expr(*expr.rhs, in)
         << ')';
      break;
    case ExprKind::kMalloc:
      os << "malloc(struct " << in.spelling(expr.type_name) << ')';
      break;
    case ExprKind::kSizeof:
      os << "sizeof(struct " << in.spelling(expr.type_name) << ')';
      break;
    case ExprKind::kCall: {
      os << in.spelling(expr.name) << '(';
      bool first = true;
      for (const auto& a : expr.args) {
        if (!first) os << ", ";
        first = false;
        os << dump_expr(*a, in);
      }
      os << ')';
      break;
    }
    case ExprKind::kCast:
      os << "(struct " << in.spelling(expr.type_name) << "*)"
         << dump_expr(*expr.lhs, in);
      break;
  }
  return os.str();
}

std::string dump_stmt(const Stmt& stmt, const support::Interner& in, int indent) {
  std::ostringstream os;
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  switch (stmt.kind) {
    case StmtKind::kDecl:
      for (const auto& d : stmt.decls) {
        os << pad << "decl " << in.spelling(d.name);
        if (d.init) os << " = " << dump_expr(*d.init, in);
        os << '\n';
      }
      break;
    case StmtKind::kAssign:
      os << pad << dump_expr(*stmt.lhs, in) << " = " << dump_expr(*stmt.rhs, in)
         << '\n';
      break;
    case StmtKind::kExpr:
      os << pad << dump_expr(*stmt.lhs, in) << '\n';
      break;
    case StmtKind::kIf:
      os << pad << "if " << dump_expr(*stmt.cond, in) << '\n'
         << dump_stmt(*stmt.then_body, in, indent + 1);
      if (stmt.else_body)
        os << pad << "else\n" << dump_stmt(*stmt.else_body, in, indent + 1);
      break;
    case StmtKind::kWhile:
      os << pad << "while " << dump_expr(*stmt.cond, in) << '\n'
         << dump_stmt(*stmt.then_body, in, indent + 1);
      break;
    case StmtKind::kDoWhile:
      os << pad << "do\n" << dump_stmt(*stmt.then_body, in, indent + 1) << pad
         << "while " << dump_expr(*stmt.cond, in) << '\n';
      break;
    case StmtKind::kFor:
      os << pad << "for\n";
      if (stmt.init) os << dump_stmt(*stmt.init, in, indent + 1);
      if (stmt.cond) os << pad << "  cond " << dump_expr(*stmt.cond, in) << '\n';
      if (stmt.step) os << dump_stmt(*stmt.step, in, indent + 1);
      os << dump_stmt(*stmt.then_body, in, indent + 1);
      break;
    case StmtKind::kBlock:
      os << pad << "{\n";
      for (const auto& s : stmt.body) os << dump_stmt(*s, in, indent + 1);
      os << pad << "}\n";
      break;
    case StmtKind::kReturn:
      os << pad << "return";
      if (stmt.lhs) os << ' ' << dump_expr(*stmt.lhs, in);
      os << '\n';
      break;
    case StmtKind::kBreak:
      os << pad << "break\n";
      break;
    case StmtKind::kContinue:
      os << pad << "continue\n";
      break;
    case StmtKind::kFree:
      os << pad << "free(" << dump_expr(*stmt.lhs, in) << ")\n";
      break;
    case StmtKind::kEmpty:
      os << pad << ";\n";
      break;
  }
  return os.str();
}

}  // namespace psa::lang
