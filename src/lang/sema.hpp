// Semantic analysis for the analyzed C subset.
//
// Resolves variable and field types, checks that every shape-relevant
// expression is an access path the analysis can lower (var, var->sel,
// var->sel->sel, ...), resolves the struct type of each malloc from its
// syntactic context, and collects the function's pointer variables (the P
// set of the RSGs).
//
// Shadowing of a pointer variable is rejected: the analysis identifies pvars
// by name within a function, so shadowing would conflate distinct variables.
#pragma once

#include <unordered_map>
#include <vector>

#include "lang/ast.hpp"
#include "support/diagnostics.hpp"

namespace psa::lang {

/// Per-function semantic information consumed by the CFG builder.
struct FunctionInfo {
  const FunctionDecl* decl = nullptr;
  /// All variables (params + locals) with their resolved types.
  std::unordered_map<Symbol, Type> variables;
  /// The struct-pointer variables, sorted by symbol id — the analysis's P set.
  std::vector<Symbol> pointer_vars;
};

/// Result of analyzing a TranslationUnit.
struct SemaResult {
  std::vector<FunctionInfo> functions;

  [[nodiscard]] const FunctionInfo* find(Symbol name) const {
    for (const auto& f : functions)
      if (f.decl->name == name) return &f;
    return nullptr;
  }
};

/// Run semantic analysis. Mutates the AST in place (fills Expr::type and
/// resolves malloc type names). Errors are reported to `diags`.
[[nodiscard]] SemaResult analyze(TranslationUnit& unit,
                                 support::DiagnosticEngine& diags);

}  // namespace psa::lang
