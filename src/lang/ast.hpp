// Abstract syntax tree for the analyzed C subset.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lang/types.hpp"
#include "support/diagnostics.hpp"
#include "support/interner.hpp"

namespace psa::lang {

using support::SourceLoc;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : std::uint8_t {
  kIntLit,
  kFloatLit,
  kStringLit,
  kNullLit,
  kVarRef,
  kFieldAccess,  // base->field or base.field
  kUnary,
  kBinary,
  kMalloc,
  kSizeof,
  kCall,
  kCast,
};

enum class UnaryOp : std::uint8_t { kNeg, kNot, kDeref, kAddrOf };
enum class BinaryOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kGt, kLe, kGe,
  kAnd, kOr,
};

struct Expr {
  ExprKind kind;
  SourceLoc loc;

  // kIntLit / kFloatLit / kStringLit.
  std::string literal;

  // kVarRef / kFieldAccess (field name) / kCall (callee name).
  Symbol name;

  // kFieldAccess: true for '->', false for '.'.
  bool via_arrow = false;

  // kMalloc / kSizeof / kCast: the named struct type.
  Symbol type_name;

  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;

  ExprPtr lhs;                 // unary operand / field base / cast operand
  ExprPtr rhs;                 // binary rhs
  std::vector<ExprPtr> args;   // kCall

  // Filled in by Sema.
  Type type;
  /// Salvage mode: sema flagged this expression as outside the analyzable
  /// subset (the diagnostic was recorded as Severity::kUnsupported). The CFG
  /// builder lowers statements containing such expressions to kHavoc.
  bool unsupported = false;
  /// kCall only: sema resolved the callee to an in-unit function with a
  /// matching signature, so the CFG builder may lower the call to a kCall
  /// statement and the engine may apply a function summary instead of the
  /// havoc over-approximation.
  bool summarizable = false;
};

[[nodiscard]] ExprPtr make_expr(ExprKind kind, SourceLoc loc);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind : std::uint8_t {
  kDecl,       // local variable declarations (possibly with initializer)
  kAssign,     // lhs = rhs; (also += / -= forms, desugared by the parser)
  kExpr,       // expression statement (calls, ++ etc.)
  kIf,
  kWhile,
  kDoWhile,
  kFor,
  kBlock,
  kReturn,
  kBreak,
  kContinue,
  kFree,       // free(expr);
  kEmpty,
};

struct VarDecl {
  Symbol name;
  Type type;
  ExprPtr init;  // may be null
  SourceLoc loc;
};

struct Stmt {
  StmtKind kind;
  SourceLoc loc;

  std::vector<VarDecl> decls;  // kDecl

  ExprPtr lhs;   // kAssign target; kFree operand; kReturn value; kExpr expr
  ExprPtr rhs;   // kAssign value

  ExprPtr cond;  // kIf / kWhile / kDoWhile / kFor
  StmtPtr init;  // kFor
  StmtPtr step;  // kFor

  StmtPtr then_body;  // kIf then / loop body
  StmtPtr else_body;  // kIf else

  std::vector<StmtPtr> body;  // kBlock
};

[[nodiscard]] StmtPtr make_stmt(StmtKind kind, SourceLoc loc);

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

struct Param {
  Symbol name;
  Type type;
};

struct FunctionDecl {
  Symbol name;
  Type return_type;
  std::vector<Param> params;
  StmtPtr body;  // always a kBlock
  SourceLoc loc;
};

/// A declaration the salvage-mode parser could not parse: the tokens were
/// skipped (balanced-brace recovery) and the diagnostics it produced were
/// demoted to Severity::kUnsupported and attached here. The rest of the unit
/// parses as if the declaration were absent.
struct SkippedDecl {
  Symbol name;  // best-effort: the declared identifier, may be invalid
  SourceLoc loc;
  std::vector<support::Diagnostic> diagnostics;
};

/// A parsed translation unit: struct declarations live in the TypeTable, the
/// functions here. The interner is shared with every later phase.
struct TranslationUnit {
  std::shared_ptr<support::Interner> interner;
  TypeTable types;
  std::vector<FunctionDecl> functions;
  /// Salvage mode: declarations stubbed out by parser or sema recovery.
  std::vector<SkippedDecl> skipped;

  [[nodiscard]] const FunctionDecl* find_function(std::string_view name) const;
};

/// Render an AST for debugging / golden tests.
[[nodiscard]] std::string dump_stmt(const Stmt& stmt, const support::Interner& in,
                                    int indent = 0);
[[nodiscard]] std::string dump_expr(const Expr& expr, const support::Interner& in);

}  // namespace psa::lang
