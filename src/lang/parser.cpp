#include "lang/parser.hpp"

#include <cassert>
#include <sstream>

#include "lang/lexer.hpp"

namespace psa::lang {

Parser::Parser(std::vector<Token> tokens,
               std::shared_ptr<support::Interner> interner,
               support::DiagnosticEngine& diags)
    : tokens_(std::move(tokens)), interner_(std::move(interner)), diags_(diags) {
  assert(!tokens_.empty() && tokens_.back().kind == TokenKind::kEof);
}

const Token& Parser::peek(std::size_t ahead) const {
  const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
  return tokens_[i];
}

const Token& Parser::advance() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::check(TokenKind kind) const { return peek().kind == kind; }

bool Parser::accept(TokenKind kind) {
  if (!check(kind)) return false;
  advance();
  return true;
}

const Token& Parser::expect(TokenKind kind, std::string_view context) {
  if (check(kind)) return advance();
  std::ostringstream os;
  os << "expected " << token_kind_name(kind) << " " << context << ", found "
     << token_kind_name(peek().kind);
  diags_.error(peek().loc, os.str());
  return peek();  // do not consume; synchronize() recovers
}

void Parser::synchronize() {
  // Skip to the next statement/declaration boundary.
  while (!check(TokenKind::kEof)) {
    if (accept(TokenKind::kSemicolon)) return;
    if (check(TokenKind::kRBrace)) return;
    advance();
  }
}

std::size_t Parser::find_decl_end(std::size_t from) const {
  std::size_t i = from;
  int depth = 0;
  bool seen_brace = false;
  while (tokens_[i].kind != TokenKind::kEof) {
    const TokenKind k = tokens_[i].kind;
    if (k == TokenKind::kLBrace) {
      ++depth;
      seen_brace = true;
    } else if (k == TokenKind::kRBrace) {
      if (depth > 0) --depth;
      if (seen_brace && depth == 0) {
        // Struct declarations end "};": swallow the trailing semicolon.
        if (tokens_[i + 1].kind == TokenKind::kSemicolon) return i + 2;
        return i + 1;
      }
    } else if (k == TokenKind::kSemicolon && !seen_brace && depth == 0) {
      return i + 1;
    }
    ++i;
  }
  return i;
}

Symbol Parser::decl_name_hint(std::size_t from, std::size_t end) const {
  for (std::size_t i = from; i < end && i < tokens_.size(); ++i) {
    if (tokens_[i].kind == TokenKind::kIdentifier) {
      return interner_->intern(tokens_[i].text);
    }
  }
  return Symbol();
}

TranslationUnit Parser::parse_unit() {
  TranslationUnit unit;
  unit.interner = interner_;
  while (!check(TokenKind::kEof)) {
    if (!diags_.salvage() && diags_.error_count() > 50) break;  // error cascade
    const std::size_t start = pos_;
    const std::size_t diag_mark = diags_.size();
    const std::size_t error_mark = diags_.error_count();
    const std::size_t function_mark = unit.functions.size();
    if (check(TokenKind::kKwStruct) && peek(1).kind == TokenKind::kIdentifier &&
        peek(2).kind == TokenKind::kLBrace) {
      parse_struct_decl(unit);
    } else if (looks_like_type()) {
      parse_function(unit);
    } else {
      diags_.error(peek().loc, "expected struct declaration or function");
      // Skip the whole stray declaration, never stopping unconsumed on a '}'
      // (the old synchronize() did, re-erroring on the same token until the
      // cascade cap silently swallowed every later declaration's
      // diagnostics).
      pos_ = find_decl_end(start);
      continue;
    }
    if (diags_.salvage() && diags_.error_count() > error_mark) {
      // Salvage: this declaration did not parse — stub it instead of
      // poisoning the unit. Its syntax errors become attached kUnsupported
      // notes, the token stream re-syncs at the declaration's balanced end,
      // and whatever partial FunctionDecl was produced is discarded.
      unit.functions.resize(function_mark);
      diags_.demote_errors_from(diag_mark);
      SkippedDecl skipped;
      const std::size_t end = find_decl_end(start);
      skipped.loc = tokens_[start].loc;
      skipped.name = decl_name_hint(start, end);
      for (std::size_t i = diag_mark; i < diags_.size(); ++i) {
        skipped.diagnostics.push_back(diags_.all()[i]);
      }
      unit.skipped.push_back(std::move(skipped));
      // Re-sync at the declaration's syntactic boundary whether recovery
      // undershot (stopped mid-body) or overshot (swallowed into the next
      // declaration). `end > start` always, so the loop makes progress.
      pos_ = end;
    }
  }
  return unit;
}

bool Parser::looks_like_type() const {
  switch (peek().kind) {
    case TokenKind::kKwInt:
    case TokenKind::kKwFloat:
    case TokenKind::kKwDouble:
    case TokenKind::kKwChar:
    case TokenKind::kKwVoid:
    case TokenKind::kKwLong:
    case TokenKind::kKwUnsigned:
      return true;
    case TokenKind::kKwStruct:
      return peek(1).kind == TokenKind::kIdentifier;
    default:
      return false;
  }
}

Type Parser::parse_type_spec(TranslationUnit& unit) {
  // 'unsigned' and 'long' prefixes collapse into int.
  while (check(TokenKind::kKwUnsigned) || check(TokenKind::kKwLong)) advance();

  switch (peek().kind) {
    case TokenKind::kKwInt:
      advance();
      return Type::scalar_type(ScalarKind::kInt);
    case TokenKind::kKwFloat:
      advance();
      return Type::scalar_type(ScalarKind::kFloat);
    case TokenKind::kKwDouble:
      advance();
      return Type::scalar_type(ScalarKind::kDouble);
    case TokenKind::kKwChar:
      advance();
      return Type::scalar_type(ScalarKind::kChar);
    case TokenKind::kKwVoid:
      advance();
      return Type::scalar_type(ScalarKind::kVoid);
    case TokenKind::kKwStruct: {
      advance();
      const Token& name = expect(TokenKind::kIdentifier, "after 'struct'");
      const Symbol sym = interner_->intern(name.text);
      const StructId id = unit.types.declare_struct(sym);
      return Type::struct_type(id);
    }
    default:
      // Bare 'long'/'unsigned' already consumed above counts as int.
      return Type::scalar_type(ScalarKind::kInt);
  }
}

Type Parser::apply_pointers(Type base) {
  int stars = 0;
  while (accept(TokenKind::kStar)) ++stars;
  if (stars == 0) return base;
  if (stars > 1) {
    diags_.error(peek().loc,
                 "multi-level pointers are not supported by the shape analysis");
  }
  if (base.kind == Type::Kind::kStruct) {
    return Type::pointer_to_struct(*base.struct_id);
  }
  return Type::pointer_to_scalar(base.scalar);
}

void Parser::parse_struct_decl(TranslationUnit& unit) {
  expect(TokenKind::kKwStruct, "at struct declaration");
  const Token& name = expect(TokenKind::kIdentifier, "after 'struct'");
  const Symbol name_sym = interner_->intern(name.text);
  const StructId id = unit.types.declare_struct(name_sym);
  expect(TokenKind::kLBrace, "to open struct body");

  // Fields accumulate locally: parsing a field of type `struct X*` may
  // forward-declare X, growing the struct table and invalidating references
  // into it.
  std::vector<Field> fields;

  while (!check(TokenKind::kRBrace) && !check(TokenKind::kEof)) {
    const Type base = parse_type_spec(unit);
    do {
      const Type field_type = apply_pointers(base);
      const Token& fname = expect(TokenKind::kIdentifier, "as field name");
      if (field_type.kind == Type::Kind::kStruct) {
        diags_.error(fname.loc,
                     "by-value struct fields are not supported; use a pointer");
      }
      Field f;
      f.name = interner_->intern(fname.text);
      f.type = field_type;
      fields.push_back(f);
      // Fixed-size scalar arrays are accepted and treated as scalars.
      if (accept(TokenKind::kLBracket)) {
        expect(TokenKind::kIntLiteral, "as array size");
        expect(TokenKind::kRBracket, "to close array size");
      }
    } while (accept(TokenKind::kComma));
    expect(TokenKind::kSemicolon, "after field declaration");
  }
  expect(TokenKind::kRBrace, "to close struct body");
  expect(TokenKind::kSemicolon, "after struct declaration");

  // Re-declaration completes a forward reference.
  unit.types.struct_decl(id).fields = std::move(fields);
}

void Parser::parse_function(TranslationUnit& unit) {
  const Type ret_base = parse_type_spec(unit);
  const Type ret_type = apply_pointers(ret_base);
  const Token& name = expect(TokenKind::kIdentifier, "as function name");

  FunctionDecl fn;
  fn.name = interner_->intern(name.text);
  fn.return_type = ret_type;
  fn.loc = name.loc;

  expect(TokenKind::kLParen, "to open parameter list");
  if (!check(TokenKind::kRParen)) {
    if (check(TokenKind::kKwVoid) && peek(1).kind == TokenKind::kRParen) {
      advance();
    } else {
      do {
        const Type base = parse_type_spec(unit);
        const Type ty = apply_pointers(base);
        const Token& pname = expect(TokenKind::kIdentifier, "as parameter name");
        if (ty.kind == Type::Kind::kStruct) {
          diags_.error(
              pname.loc,
              "by-value struct parameters are not supported; use a pointer");
        }
        fn.params.push_back(Param{interner_->intern(pname.text), ty});
      } while (accept(TokenKind::kComma));
    }
  }
  expect(TokenKind::kRParen, "to close parameter list");
  fn.body = parse_block(unit);
  unit.functions.push_back(std::move(fn));
}

StmtPtr Parser::parse_block(TranslationUnit& unit) {
  const SourceLoc loc = peek().loc;
  expect(TokenKind::kLBrace, "to open block");
  auto block = make_stmt(StmtKind::kBlock, loc);
  while (!check(TokenKind::kRBrace) && !check(TokenKind::kEof)) {
    if (diags_.error_count() > 50) break;
    block->body.push_back(parse_stmt(unit));
  }
  expect(TokenKind::kRBrace, "to close block");
  return block;
}

StmtPtr Parser::parse_decl_stmt(TranslationUnit& unit) {
  const SourceLoc loc = peek().loc;
  auto stmt = make_stmt(StmtKind::kDecl, loc);
  const Type base = parse_type_spec(unit);
  do {
    const Type ty = apply_pointers(base);
    const Token& name = expect(TokenKind::kIdentifier, "as variable name");
    VarDecl d;
    d.name = interner_->intern(name.text);
    d.type = ty;
    d.loc = name.loc;
    if (ty.kind == Type::Kind::kStruct) {
      diags_.error(name.loc,
                   "by-value struct locals are not supported; use a pointer");
    }
    if (accept(TokenKind::kLBracket)) {  // scalar arrays treated as opaque
      expect(TokenKind::kIntLiteral, "as array size");
      expect(TokenKind::kRBracket, "to close array size");
    }
    if (accept(TokenKind::kAssign)) d.init = parse_expr(unit);
    stmt->decls.push_back(std::move(d));
  } while (accept(TokenKind::kComma));
  expect(TokenKind::kSemicolon, "after declaration");
  return stmt;
}

StmtPtr Parser::parse_stmt(TranslationUnit& unit) {
  const SourceLoc loc = peek().loc;
  switch (peek().kind) {
    case TokenKind::kLBrace:
      return parse_block(unit);
    case TokenKind::kSemicolon:
      advance();
      return make_stmt(StmtKind::kEmpty, loc);
    case TokenKind::kKwIf: {
      advance();
      expect(TokenKind::kLParen, "after 'if'");
      auto stmt = make_stmt(StmtKind::kIf, loc);
      stmt->cond = parse_expr(unit);
      expect(TokenKind::kRParen, "after if condition");
      stmt->then_body = parse_stmt(unit);
      if (accept(TokenKind::kKwElse)) stmt->else_body = parse_stmt(unit);
      return stmt;
    }
    case TokenKind::kKwWhile: {
      advance();
      expect(TokenKind::kLParen, "after 'while'");
      auto stmt = make_stmt(StmtKind::kWhile, loc);
      stmt->cond = parse_expr(unit);
      expect(TokenKind::kRParen, "after while condition");
      stmt->then_body = parse_stmt(unit);
      return stmt;
    }
    case TokenKind::kKwDo: {
      advance();
      auto stmt = make_stmt(StmtKind::kDoWhile, loc);
      stmt->then_body = parse_stmt(unit);
      expect(TokenKind::kKwWhile, "after do body");
      expect(TokenKind::kLParen, "after 'while'");
      stmt->cond = parse_expr(unit);
      expect(TokenKind::kRParen, "after do-while condition");
      expect(TokenKind::kSemicolon, "after do-while");
      return stmt;
    }
    case TokenKind::kKwFor: {
      advance();
      expect(TokenKind::kLParen, "after 'for'");
      auto stmt = make_stmt(StmtKind::kFor, loc);
      if (!check(TokenKind::kSemicolon)) {
        if (looks_like_type()) {
          stmt->init = parse_decl_stmt(unit);  // consumes ';'
        } else {
          stmt->init = parse_expr_or_assign_stmt(unit, /*expect_semicolon=*/true);
        }
      } else {
        advance();
      }
      if (!check(TokenKind::kSemicolon)) stmt->cond = parse_expr(unit);
      expect(TokenKind::kSemicolon, "after for condition");
      if (!check(TokenKind::kRParen))
        stmt->step = parse_expr_or_assign_stmt(unit, /*expect_semicolon=*/false);
      expect(TokenKind::kRParen, "after for clauses");
      stmt->then_body = parse_stmt(unit);
      return stmt;
    }
    case TokenKind::kKwReturn: {
      advance();
      auto stmt = make_stmt(StmtKind::kReturn, loc);
      if (!check(TokenKind::kSemicolon)) stmt->lhs = parse_expr(unit);
      expect(TokenKind::kSemicolon, "after return");
      return stmt;
    }
    case TokenKind::kKwBreak:
      advance();
      expect(TokenKind::kSemicolon, "after 'break'");
      return make_stmt(StmtKind::kBreak, loc);
    case TokenKind::kKwContinue:
      advance();
      expect(TokenKind::kSemicolon, "after 'continue'");
      return make_stmt(StmtKind::kContinue, loc);
    case TokenKind::kKwFree: {
      advance();
      expect(TokenKind::kLParen, "after 'free'");
      auto stmt = make_stmt(StmtKind::kFree, loc);
      stmt->lhs = parse_expr(unit);
      expect(TokenKind::kRParen, "after free argument");
      expect(TokenKind::kSemicolon, "after free");
      return stmt;
    }
    default:
      if (looks_like_type()) return parse_decl_stmt(unit);
      return parse_expr_or_assign_stmt(unit, /*expect_semicolon=*/true);
  }
}

StmtPtr Parser::parse_expr_or_assign_stmt(TranslationUnit& unit,
                                          bool expect_semicolon) {
  const SourceLoc loc = peek().loc;
  ExprPtr lhs = parse_expr(unit);

  auto finish = [&](StmtPtr stmt) {
    if (expect_semicolon) expect(TokenKind::kSemicolon, "after statement");
    return stmt;
  };

  auto clone_var_ref = [&](const Expr& e) {
    auto copy = make_expr(ExprKind::kVarRef, e.loc);
    copy->name = e.name;
    return copy;
  };

  if (check(TokenKind::kAssign) || check(TokenKind::kPlusAssign) ||
      check(TokenKind::kMinusAssign)) {
    const TokenKind op = advance().kind;
    ExprPtr rhs = parse_expr(unit);
    auto stmt = make_stmt(StmtKind::kAssign, loc);
    if (op != TokenKind::kAssign) {
      // Desugar `x += e` to `x = x + e` (compound targets must be re-readable;
      // we only allow simple variables there).
      if (lhs->kind != ExprKind::kVarRef) {
        diags_.error(loc, "compound assignment target must be a variable");
      }
      auto bin = make_expr(ExprKind::kBinary, loc);
      bin->binary_op =
          op == TokenKind::kPlusAssign ? BinaryOp::kAdd : BinaryOp::kSub;
      bin->lhs = clone_var_ref(*lhs);
      bin->rhs = std::move(rhs);
      rhs = std::move(bin);
    }
    stmt->lhs = std::move(lhs);
    stmt->rhs = std::move(rhs);
    return finish(std::move(stmt));
  }

  if (check(TokenKind::kPlusPlus) || check(TokenKind::kMinusMinus)) {
    const TokenKind op = advance().kind;
    if (lhs->kind != ExprKind::kVarRef) {
      diags_.error(loc, "++/-- target must be a variable");
    }
    auto one = make_expr(ExprKind::kIntLit, loc);
    one->literal = "1";
    auto bin = make_expr(ExprKind::kBinary, loc);
    bin->binary_op =
        op == TokenKind::kPlusPlus ? BinaryOp::kAdd : BinaryOp::kSub;
    bin->lhs = clone_var_ref(*lhs);
    bin->rhs = std::move(one);
    auto stmt = make_stmt(StmtKind::kAssign, loc);
    stmt->lhs = std::move(lhs);
    stmt->rhs = std::move(bin);
    return finish(std::move(stmt));
  }

  auto stmt = make_stmt(StmtKind::kExpr, loc);
  stmt->lhs = std::move(lhs);
  return finish(std::move(stmt));
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

ExprPtr Parser::parse_expr(TranslationUnit& unit) { return parse_or(unit); }

ExprPtr Parser::parse_or(TranslationUnit& unit) {
  ExprPtr lhs = parse_and(unit);
  while (check(TokenKind::kOrOr)) {
    const SourceLoc loc = advance().loc;
    auto e = make_expr(ExprKind::kBinary, loc);
    e->binary_op = BinaryOp::kOr;
    e->lhs = std::move(lhs);
    e->rhs = parse_and(unit);
    lhs = std::move(e);
  }
  return lhs;
}

ExprPtr Parser::parse_and(TranslationUnit& unit) {
  ExprPtr lhs = parse_equality(unit);
  while (check(TokenKind::kAndAnd)) {
    const SourceLoc loc = advance().loc;
    auto e = make_expr(ExprKind::kBinary, loc);
    e->binary_op = BinaryOp::kAnd;
    e->lhs = std::move(lhs);
    e->rhs = parse_equality(unit);
    lhs = std::move(e);
  }
  return lhs;
}

ExprPtr Parser::parse_equality(TranslationUnit& unit) {
  ExprPtr lhs = parse_relational(unit);
  while (check(TokenKind::kEq) || check(TokenKind::kNe)) {
    const TokenKind op = peek().kind;
    const SourceLoc loc = advance().loc;
    auto e = make_expr(ExprKind::kBinary, loc);
    e->binary_op = op == TokenKind::kEq ? BinaryOp::kEq : BinaryOp::kNe;
    e->lhs = std::move(lhs);
    e->rhs = parse_relational(unit);
    lhs = std::move(e);
  }
  return lhs;
}

ExprPtr Parser::parse_relational(TranslationUnit& unit) {
  ExprPtr lhs = parse_additive(unit);
  while (check(TokenKind::kLt) || check(TokenKind::kGt) ||
         check(TokenKind::kLe) || check(TokenKind::kGe)) {
    const TokenKind op = peek().kind;
    const SourceLoc loc = advance().loc;
    auto e = make_expr(ExprKind::kBinary, loc);
    switch (op) {
      case TokenKind::kLt: e->binary_op = BinaryOp::kLt; break;
      case TokenKind::kGt: e->binary_op = BinaryOp::kGt; break;
      case TokenKind::kLe: e->binary_op = BinaryOp::kLe; break;
      default: e->binary_op = BinaryOp::kGe; break;
    }
    e->lhs = std::move(lhs);
    e->rhs = parse_additive(unit);
    lhs = std::move(e);
  }
  return lhs;
}

ExprPtr Parser::parse_additive(TranslationUnit& unit) {
  ExprPtr lhs = parse_multiplicative(unit);
  while (check(TokenKind::kPlus) || check(TokenKind::kMinus)) {
    const TokenKind op = peek().kind;
    const SourceLoc loc = advance().loc;
    auto e = make_expr(ExprKind::kBinary, loc);
    e->binary_op = op == TokenKind::kPlus ? BinaryOp::kAdd : BinaryOp::kSub;
    e->lhs = std::move(lhs);
    e->rhs = parse_multiplicative(unit);
    lhs = std::move(e);
  }
  return lhs;
}

ExprPtr Parser::parse_multiplicative(TranslationUnit& unit) {
  ExprPtr lhs = parse_unary(unit);
  while (check(TokenKind::kStar) || check(TokenKind::kSlash) ||
         check(TokenKind::kPercent)) {
    const TokenKind op = peek().kind;
    const SourceLoc loc = advance().loc;
    auto e = make_expr(ExprKind::kBinary, loc);
    switch (op) {
      case TokenKind::kStar: e->binary_op = BinaryOp::kMul; break;
      case TokenKind::kSlash: e->binary_op = BinaryOp::kDiv; break;
      default: e->binary_op = BinaryOp::kMod; break;
    }
    e->lhs = std::move(lhs);
    e->rhs = parse_unary(unit);
    lhs = std::move(e);
  }
  return lhs;
}

ExprPtr Parser::parse_unary(TranslationUnit& unit) {
  const SourceLoc loc = peek().loc;
  // Cast to struct pointer: '(' 'struct' IDENT '*' ')' unary
  if (check(TokenKind::kLParen) && peek(1).kind == TokenKind::kKwStruct &&
      peek(2).kind == TokenKind::kIdentifier &&
      peek(3).kind == TokenKind::kStar && peek(4).kind == TokenKind::kRParen) {
    advance();  // (
    advance();  // struct
    const Token& name = advance();
    advance();  // *
    advance();  // )
    auto cast = make_expr(ExprKind::kCast, loc);
    cast->type_name = interner_->intern(name.text);
    cast->lhs = parse_unary(unit);
    return cast;
  }

  if (accept(TokenKind::kMinus)) {
    auto e = make_expr(ExprKind::kUnary, loc);
    e->unary_op = UnaryOp::kNeg;
    e->lhs = parse_unary(unit);
    return e;
  }
  if (accept(TokenKind::kNot)) {
    auto e = make_expr(ExprKind::kUnary, loc);
    e->unary_op = UnaryOp::kNot;
    e->lhs = parse_unary(unit);
    return e;
  }
  if (accept(TokenKind::kStar)) {
    auto e = make_expr(ExprKind::kUnary, loc);
    e->unary_op = UnaryOp::kDeref;
    e->lhs = parse_unary(unit);
    return e;
  }
  if (accept(TokenKind::kAmp)) {
    auto e = make_expr(ExprKind::kUnary, loc);
    e->unary_op = UnaryOp::kAddrOf;
    e->lhs = parse_unary(unit);
    return e;
  }
  return parse_postfix(unit);
}

ExprPtr Parser::parse_postfix(TranslationUnit& unit) {
  ExprPtr e = parse_primary(unit);
  for (;;) {
    if (check(TokenKind::kArrow) || check(TokenKind::kDot)) {
      const bool arrow = peek().kind == TokenKind::kArrow;
      const SourceLoc loc = advance().loc;
      const Token& field = expect(TokenKind::kIdentifier, "as field name");
      auto fa = make_expr(ExprKind::kFieldAccess, loc);
      fa->name = interner_->intern(field.text);
      fa->via_arrow = arrow;
      fa->lhs = std::move(e);
      e = std::move(fa);
    } else {
      break;
    }
  }
  return e;
}

ExprPtr Parser::parse_primary(TranslationUnit& unit) {
  const SourceLoc loc = peek().loc;
  switch (peek().kind) {
    case TokenKind::kIntLiteral: {
      auto e = make_expr(ExprKind::kIntLit, loc);
      e->literal = std::string(advance().text);
      return e;
    }
    case TokenKind::kFloatLiteral: {
      auto e = make_expr(ExprKind::kFloatLit, loc);
      e->literal = std::string(advance().text);
      return e;
    }
    case TokenKind::kStringLiteral:
    case TokenKind::kCharLiteral: {
      auto e = make_expr(ExprKind::kStringLit, loc);
      e->literal = std::string(advance().text);
      return e;
    }
    case TokenKind::kKwNull:
      advance();
      return make_expr(ExprKind::kNullLit, loc);
    case TokenKind::kKwSizeof: {
      advance();
      expect(TokenKind::kLParen, "after 'sizeof'");
      auto e = make_expr(ExprKind::kSizeof, loc);
      if (accept(TokenKind::kKwStruct)) {
        const Token& name = expect(TokenKind::kIdentifier, "after 'struct'");
        e->type_name = interner_->intern(name.text);
        accept(TokenKind::kStar);
      } else if (check(TokenKind::kIdentifier)) {
        advance();  // sizeof(var) — opaque
      } else {
        // sizeof(int) and friends — consume one type spec.
        (void)parse_type_spec(unit);
        accept(TokenKind::kStar);
      }
      expect(TokenKind::kRParen, "after sizeof operand");
      return e;
    }
    case TokenKind::kKwMalloc: {
      advance();
      expect(TokenKind::kLParen, "after 'malloc'");
      auto e = make_expr(ExprKind::kMalloc, loc);
      if (accept(TokenKind::kKwStruct)) {
        // Shorthand: malloc(struct T)
        const Token& name = expect(TokenKind::kIdentifier, "after 'struct'");
        e->type_name = interner_->intern(name.text);
      } else if (check(TokenKind::kKwSizeof)) {
        advance();
        expect(TokenKind::kLParen, "after 'sizeof'");
        if (accept(TokenKind::kKwStruct)) {
          const Token& name = expect(TokenKind::kIdentifier, "after 'struct'");
          e->type_name = interner_->intern(name.text);
        } else {
          // malloc(sizeof(x)) where x names a variable; type resolved by the
          // enclosing cast or the assignment target in Sema.
          if (check(TokenKind::kIdentifier)) advance();
        }
        accept(TokenKind::kStar);
        expect(TokenKind::kRParen, "after sizeof operand");
        // Optional "* count" in the size expression — opaque.
        while (!check(TokenKind::kRParen) && !check(TokenKind::kEof)) advance();
      } else {
        // malloc(<opaque size expr>)
        int depth = 0;
        while (!check(TokenKind::kEof)) {
          if (check(TokenKind::kLParen)) ++depth;
          if (check(TokenKind::kRParen)) {
            if (depth == 0) break;
            --depth;
          }
          advance();
        }
      }
      expect(TokenKind::kRParen, "after malloc argument");
      return e;
    }
    case TokenKind::kIdentifier: {
      const Token& name = advance();
      if (check(TokenKind::kLParen)) {
        advance();
        auto call = make_expr(ExprKind::kCall, loc);
        call->name = interner_->intern(name.text);
        if (!check(TokenKind::kRParen)) {
          do {
            call->args.push_back(parse_expr(unit));
          } while (accept(TokenKind::kComma));
        }
        expect(TokenKind::kRParen, "after call arguments");
        return call;
      }
      auto e = make_expr(ExprKind::kVarRef, loc);
      e->name = interner_->intern(name.text);
      return e;
    }
    case TokenKind::kLParen: {
      advance();
      ExprPtr e = parse_expr(unit);
      expect(TokenKind::kRParen, "to close parenthesized expression");
      return e;
    }
    default:
      diags_.error(loc, std::string("unexpected token ") +
                            std::string(token_kind_name(peek().kind)) +
                            " in expression");
      advance();
      return make_expr(ExprKind::kIntLit, loc);
  }
}

TranslationUnit parse_source(std::string_view source,
                             support::DiagnosticEngine& diags) {
  auto interner = std::make_shared<support::Interner>();
  Lexer lexer(source, diags);
  Parser parser(lexer.lex_all(), interner, diags);
  return parser.parse_unit();
}

}  // namespace psa::lang
