// Recursive-descent parser for the analyzed C subset.
//
// Accepted grammar (informally):
//   unit      := (struct-decl | function)*
//   struct    := 'struct' IDENT '{' (type declarator (',' declarator)* ';')* '}' ';'
//   function  := type IDENT '(' params? ')' block
//   stmt      := decl | assign ';' | expr ';' | if | while | do-while | for
//              | block | 'return' expr? ';' | 'break' ';' | 'continue' ';'
//              | 'free' '(' expr ')' ';' | ';'
//   assign    := expr ('=' | '+=' | '-=') expr | expr ('++' | '--')
//
// malloc is recognized in the three usual spellings:
//   malloc(struct T)                          (shorthand)
//   malloc(sizeof(struct T))
//   (struct T*) malloc(sizeof(struct T))
#pragma once

#include <memory>
#include <string_view>

#include "lang/ast.hpp"
#include "lang/token.hpp"
#include "support/diagnostics.hpp"

namespace psa::lang {

class Parser {
 public:
  Parser(std::vector<Token> tokens, std::shared_ptr<support::Interner> interner,
         support::DiagnosticEngine& diags);

  /// Parse the whole token stream into a TranslationUnit. On error, the
  /// diagnostics engine holds the reasons and the unit may be partial.
  [[nodiscard]] TranslationUnit parse_unit();

 private:
  // Token helpers.
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const;
  const Token& advance();
  [[nodiscard]] bool check(TokenKind kind) const;
  bool accept(TokenKind kind);
  const Token& expect(TokenKind kind, std::string_view context);
  void synchronize();
  /// Index one past the end of the top-level declaration starting at `from`:
  /// after the matching '}' of its first brace (plus a trailing ';'), or
  /// after a top-level ';' when no brace opens first, or EOF. Used by both
  /// strict-mode recovery (so errors after a brace-closed stray never loop on
  /// the same token and later declarations keep their diagnostics) and
  /// salvage-mode SkippedDecl stubbing.
  [[nodiscard]] std::size_t find_decl_end(std::size_t from) const;
  /// Best-effort declared name in [from, end): the first identifier.
  [[nodiscard]] Symbol decl_name_hint(std::size_t from, std::size_t end) const;

  // Declarations.
  void parse_struct_decl(TranslationUnit& unit);
  void parse_function(TranslationUnit& unit);
  [[nodiscard]] bool looks_like_type() const;
  [[nodiscard]] Type parse_type_spec(TranslationUnit& unit);
  [[nodiscard]] Type apply_pointers(Type base);

  // Statements.
  [[nodiscard]] StmtPtr parse_stmt(TranslationUnit& unit);
  [[nodiscard]] StmtPtr parse_block(TranslationUnit& unit);
  [[nodiscard]] StmtPtr parse_decl_stmt(TranslationUnit& unit);
  [[nodiscard]] StmtPtr parse_expr_or_assign_stmt(TranslationUnit& unit,
                                                  bool expect_semicolon);

  // Expressions (precedence climbing).
  [[nodiscard]] ExprPtr parse_expr(TranslationUnit& unit);
  [[nodiscard]] ExprPtr parse_or(TranslationUnit& unit);
  [[nodiscard]] ExprPtr parse_and(TranslationUnit& unit);
  [[nodiscard]] ExprPtr parse_equality(TranslationUnit& unit);
  [[nodiscard]] ExprPtr parse_relational(TranslationUnit& unit);
  [[nodiscard]] ExprPtr parse_additive(TranslationUnit& unit);
  [[nodiscard]] ExprPtr parse_multiplicative(TranslationUnit& unit);
  [[nodiscard]] ExprPtr parse_unary(TranslationUnit& unit);
  [[nodiscard]] ExprPtr parse_postfix(TranslationUnit& unit);
  [[nodiscard]] ExprPtr parse_primary(TranslationUnit& unit);

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::shared_ptr<support::Interner> interner_;
  support::DiagnosticEngine& diags_;
};

/// Convenience: lex + parse a source buffer in one call.
[[nodiscard]] TranslationUnit parse_source(std::string_view source,
                                           support::DiagnosticEngine& diags);

}  // namespace psa::lang
