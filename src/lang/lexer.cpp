#include "lang/lexer.hpp"

#include <cctype>
#include <unordered_map>

namespace psa::lang {

namespace {

const std::unordered_map<std::string_view, TokenKind>& keyword_table() {
  static const std::unordered_map<std::string_view, TokenKind> table = {
      {"struct", TokenKind::kKwStruct},   {"int", TokenKind::kKwInt},
      {"float", TokenKind::kKwFloat},     {"double", TokenKind::kKwDouble},
      {"char", TokenKind::kKwChar},       {"void", TokenKind::kKwVoid},
      {"long", TokenKind::kKwLong},       {"unsigned", TokenKind::kKwUnsigned},
      {"if", TokenKind::kKwIf},           {"else", TokenKind::kKwElse},
      {"while", TokenKind::kKwWhile},     {"for", TokenKind::kKwFor},
      {"do", TokenKind::kKwDo},           {"return", TokenKind::kKwReturn},
      {"break", TokenKind::kKwBreak},     {"continue", TokenKind::kKwContinue},
      {"NULL", TokenKind::kKwNull},       {"malloc", TokenKind::kKwMalloc},
      {"free", TokenKind::kKwFree},       {"sizeof", TokenKind::kKwSizeof},
  };
  return table;
}

}  // namespace

std::string_view token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "end of input";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kIntLiteral: return "integer literal";
    case TokenKind::kFloatLiteral: return "float literal";
    case TokenKind::kStringLiteral: return "string literal";
    case TokenKind::kCharLiteral: return "char literal";
    case TokenKind::kKwStruct: return "'struct'";
    case TokenKind::kKwInt: return "'int'";
    case TokenKind::kKwFloat: return "'float'";
    case TokenKind::kKwDouble: return "'double'";
    case TokenKind::kKwChar: return "'char'";
    case TokenKind::kKwVoid: return "'void'";
    case TokenKind::kKwLong: return "'long'";
    case TokenKind::kKwUnsigned: return "'unsigned'";
    case TokenKind::kKwIf: return "'if'";
    case TokenKind::kKwElse: return "'else'";
    case TokenKind::kKwWhile: return "'while'";
    case TokenKind::kKwFor: return "'for'";
    case TokenKind::kKwDo: return "'do'";
    case TokenKind::kKwReturn: return "'return'";
    case TokenKind::kKwBreak: return "'break'";
    case TokenKind::kKwContinue: return "'continue'";
    case TokenKind::kKwNull: return "'NULL'";
    case TokenKind::kKwMalloc: return "'malloc'";
    case TokenKind::kKwFree: return "'free'";
    case TokenKind::kKwSizeof: return "'sizeof'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kAmp: return "'&'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlusAssign: return "'+='";
    case TokenKind::kMinusAssign: return "'-='";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kOrOr: return "'||'";
    case TokenKind::kNot: return "'!'";
    case TokenKind::kPlusPlus: return "'++'";
    case TokenKind::kMinusMinus: return "'--'";
    case TokenKind::kUnknown: return "unknown character";
  }
  return "unknown token";
}

Lexer::Lexer(std::string_view source, support::DiagnosticEngine& diags)
    : source_(source), diags_(diags) {}

std::vector<Token> Lexer::lex_all() {
  std::vector<Token> tokens;
  for (;;) {
    Token t = next();
    tokens.push_back(t);
    if (t.kind == TokenKind::kEof) break;
  }
  return tokens;
}

char Lexer::peek(std::size_t ahead) const {
  return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  const char c = source_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

bool Lexer::match(char expected) {
  if (peek() != expected) return false;
  advance();
  return true;
}

support::SourceLoc Lexer::location() const { return {line_, col_}; }

Token Lexer::make(TokenKind kind, std::size_t begin) const {
  Token t;
  t.kind = kind;
  t.text = source_.substr(begin, pos_ - begin);
  return t;
}

void Lexer::skip_trivia() {
  for (;;) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0') advance();
    } else if (c == '/' && peek(1) == '*') {
      advance();
      advance();
      while (!(peek() == '*' && peek(1) == '/')) {
        if (peek() == '\0') {
          diags_.error(location(), "unterminated block comment");
          return;
        }
        advance();
      }
      advance();
      advance();
    } else if (c == '#') {
      // Preprocessor lines (e.g. #include in pasted real code) are skipped.
      while (peek() != '\n' && peek() != '\0') advance();
    } else {
      return;
    }
  }
}

Token Lexer::next() {
  skip_trivia();
  const auto loc = location();
  const std::size_t begin = pos_;
  if (pos_ >= source_.size()) {
    Token t = make(TokenKind::kEof, begin);
    t.loc = loc;
    return t;
  }

  const char c = advance();
  Token t;
  t.loc = loc;

  auto finish = [&](TokenKind kind) {
    t = make(kind, begin);
    t.loc = loc;
    return t;
  };

  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      advance();
    const std::string_view text = source_.substr(begin, pos_ - begin);
    if (auto it = keyword_table().find(text); it != keyword_table().end())
      return finish(it->second);
    return finish(TokenKind::kIdentifier);
  }

  if (std::isdigit(static_cast<unsigned char>(c))) {
    bool is_float = false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      is_float = true;
      advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      is_float = true;
      advance();
      if (peek() == '+' || peek() == '-') advance();
      while (std::isdigit(static_cast<unsigned char>(peek()))) advance();
    }
    return finish(is_float ? TokenKind::kFloatLiteral : TokenKind::kIntLiteral);
  }

  switch (c) {
    case '{': return finish(TokenKind::kLBrace);
    case '}': return finish(TokenKind::kRBrace);
    case '(': return finish(TokenKind::kLParen);
    case ')': return finish(TokenKind::kRParen);
    case '[': return finish(TokenKind::kLBracket);
    case ']': return finish(TokenKind::kRBracket);
    case ';': return finish(TokenKind::kSemicolon);
    case ',': return finish(TokenKind::kComma);
    case '.': return finish(TokenKind::kDot);
    case '*': return finish(TokenKind::kStar);
    case '%': return finish(TokenKind::kPercent);
    case '/': return finish(TokenKind::kSlash);
    case '&':
      return finish(match('&') ? TokenKind::kAndAnd : TokenKind::kAmp);
    case '|':
      if (match('|')) return finish(TokenKind::kOrOr);
      if (diags_.salvage()) {
        diags_.unsupported(loc, "unexpected character '|'");
        return finish(TokenKind::kUnknown);
      }
      diags_.error(loc, "unexpected character '|'");
      return finish(TokenKind::kEof);
    case '+':
      if (match('+')) return finish(TokenKind::kPlusPlus);
      if (match('=')) return finish(TokenKind::kPlusAssign);
      return finish(TokenKind::kPlus);
    case '-':
      if (match('>')) return finish(TokenKind::kArrow);
      if (match('-')) return finish(TokenKind::kMinusMinus);
      if (match('=')) return finish(TokenKind::kMinusAssign);
      return finish(TokenKind::kMinus);
    case '=':
      return finish(match('=') ? TokenKind::kEq : TokenKind::kAssign);
    case '!':
      return finish(match('=') ? TokenKind::kNe : TokenKind::kNot);
    case '<':
      return finish(match('=') ? TokenKind::kLe : TokenKind::kLt);
    case '>':
      return finish(match('=') ? TokenKind::kGe : TokenKind::kGt);
    case '"': {
      while (peek() != '"' && peek() != '\0') {
        if (peek() == '\\') advance();
        advance();
      }
      if (!match('"')) diags_.error(loc, "unterminated string literal");
      return finish(TokenKind::kStringLiteral);
    }
    case '\'': {
      while (peek() != '\'' && peek() != '\0') {
        if (peek() == '\\') advance();
        advance();
      }
      if (!match('\'')) diags_.error(loc, "unterminated char literal");
      return finish(TokenKind::kCharLiteral);
    }
    default:
      // Salvage keeps lexing: the unknown character becomes a token no
      // parse rule accepts, so only the declaration containing it is lost.
      // Strict mode preserves the historical hard stop (kEof ends parsing).
      if (diags_.salvage()) {
        diags_.unsupported(loc, std::string("unexpected character '") + c +
                                    "'");
        return finish(TokenKind::kUnknown);
      }
      diags_.error(loc, std::string("unexpected character '") + c + "'");
      return finish(TokenKind::kEof);
  }
}

}  // namespace psa::lang
