#include "lang/types.hpp"

#include <algorithm>

namespace psa::lang {

StructId TypeTable::declare_struct(Symbol name) {
  if (auto existing = find_struct(name)) return *existing;
  StructDecl decl;
  decl.name = name;
  structs_.push_back(std::move(decl));
  return static_cast<StructId>(structs_.size() - 1);
}

std::optional<StructId> TypeTable::find_struct(Symbol name) const {
  for (std::size_t i = 0; i < structs_.size(); ++i)
    if (structs_[i].name == name) return static_cast<StructId>(i);
  return std::nullopt;
}

std::vector<Symbol> TypeTable::all_selectors() const {
  std::vector<Symbol> out;
  for (const auto& s : structs_)
    for (const auto& f : s.fields)
      if (f.is_selector()) out.push_back(f.name);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace psa::lang
