// Type representation for the analyzed C subset.
//
// The shape analysis only distinguishes:
//  * recursive struct types (their pointer fields become *selectors*),
//  * pointers to structs (the pvars of the RSG),
//  * everything else (opaque scalars).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/interner.hpp"

namespace psa::lang {

using support::Symbol;

/// Index of a struct in the TypeTable. 32-bit so node properties stay small.
enum class StructId : std::uint32_t {};

[[nodiscard]] constexpr std::uint32_t raw(StructId id) noexcept {
  return static_cast<std::uint32_t>(id);
}

enum class ScalarKind : std::uint8_t { kInt, kFloat, kDouble, kChar, kVoid };

/// A (possibly pointer) type. Only single-level pointers-to-struct carry
/// shape information; pointer-to-scalar is accepted but opaque.
struct Type {
  enum class Kind : std::uint8_t { kScalar, kStruct, kPointer } kind = Kind::kScalar;
  ScalarKind scalar = ScalarKind::kInt;           // kScalar / pointee scalar
  std::optional<StructId> struct_id;              // kStruct / pointee struct
  bool pointee_is_struct = false;                 // for kPointer

  [[nodiscard]] bool is_struct_pointer() const noexcept {
    return kind == Kind::kPointer && pointee_is_struct;
  }
  [[nodiscard]] bool is_pointer() const noexcept { return kind == Kind::kPointer; }

  [[nodiscard]] static Type scalar_type(ScalarKind k) {
    Type t;
    t.kind = Kind::kScalar;
    t.scalar = k;
    return t;
  }
  [[nodiscard]] static Type struct_type(StructId id) {
    Type t;
    t.kind = Kind::kStruct;
    t.struct_id = id;
    return t;
  }
  [[nodiscard]] static Type pointer_to_struct(StructId id) {
    Type t;
    t.kind = Kind::kPointer;
    t.pointee_is_struct = true;
    t.struct_id = id;
    return t;
  }
  [[nodiscard]] static Type pointer_to_scalar(ScalarKind k) {
    Type t;
    t.kind = Kind::kPointer;
    t.pointee_is_struct = false;
    t.scalar = k;
    return t;
  }

  friend bool operator==(const Type&, const Type&) = default;
};

/// A field of a struct.
struct Field {
  Symbol name;
  Type type;
  /// True when this field is a pointer to a struct — i.e. a *selector*.
  [[nodiscard]] bool is_selector() const noexcept {
    return type.is_struct_pointer();
  }
};

struct StructDecl {
  Symbol name;
  std::vector<Field> fields;

  [[nodiscard]] const Field* find_field(Symbol name_sym) const {
    for (const auto& f : fields)
      if (f.name == name_sym) return &f;
    return nullptr;
  }

  /// The selectors (struct-pointer fields) declared by this struct.
  [[nodiscard]] std::vector<Symbol> selectors() const {
    std::vector<Symbol> out;
    for (const auto& f : fields)
      if (f.is_selector()) out.push_back(f.name);
    return out;
  }
};

/// Registry of all struct declarations in a translation unit.
class TypeTable {
 public:
  /// Declare (or forward-complete) a struct; returns its id.
  StructId declare_struct(Symbol name);

  [[nodiscard]] std::optional<StructId> find_struct(Symbol name) const;
  [[nodiscard]] StructDecl& struct_decl(StructId id) { return structs_[raw(id)]; }
  [[nodiscard]] const StructDecl& struct_decl(StructId id) const {
    return structs_[raw(id)];
  }
  [[nodiscard]] std::size_t struct_count() const noexcept {
    return structs_.size();
  }

  /// Union of all selectors declared by all structs — the analysis's S set.
  [[nodiscard]] std::vector<Symbol> all_selectors() const;

 private:
  std::vector<StructDecl> structs_;
};

}  // namespace psa::lang
