// Tokens of the analyzed C subset.
//
// The frontend accepts the pointer-manipulating C subset the paper's compiler
// consumed: struct declarations with pointer selectors, pointer statements,
// structured control flow, malloc/free/NULL, and ordinary scalar arithmetic
// (which the shape analysis treats as opaque).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/diagnostics.hpp"

namespace psa::lang {

enum class TokenKind : std::uint8_t {
  kEof,
  kIdentifier,
  kIntLiteral,
  kFloatLiteral,
  kStringLiteral,
  kCharLiteral,

  // Keywords.
  kKwStruct,
  kKwInt,
  kKwFloat,
  kKwDouble,
  kKwChar,
  kKwVoid,
  kKwLong,
  kKwUnsigned,
  kKwIf,
  kKwElse,
  kKwWhile,
  kKwFor,
  kKwDo,
  kKwReturn,
  kKwBreak,
  kKwContinue,
  kKwNull,
  kKwMalloc,
  kKwFree,
  kKwSizeof,

  // Punctuation / operators.
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kSemicolon,
  kComma,
  kDot,
  kArrow,
  kStar,
  kAmp,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kAssign,
  kPlusAssign,
  kMinusAssign,
  kEq,
  kNe,
  kLt,
  kGt,
  kLe,
  kGe,
  kAndAnd,
  kOrOr,
  kNot,
  kPlusPlus,
  kMinusMinus,

  /// A character outside the lexical grammar, produced only by the salvage
  /// frontend (strict mode hard-errors instead). Never matches any parse
  /// rule, so the declaration containing it fails to parse and is stubbed —
  /// but lexing continues and the rest of the unit stays analyzable.
  kUnknown,
};

/// Spelling of a token kind for diagnostics.
[[nodiscard]] std::string_view token_kind_name(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string_view text;   // view into the source buffer
  support::SourceLoc loc;

  [[nodiscard]] bool is(TokenKind k) const noexcept { return kind == k; }
};

}  // namespace psa::lang
