#include "lang/sema.hpp"

#include <algorithm>
#include <sstream>

namespace psa::lang {

namespace {

/// True when the expression or any subexpression was flagged unsupported.
/// Call arguments with degraded subtrees cannot be lowered to pvars, so the
/// whole call must stay on the havoc path.
[[nodiscard]] bool subtree_unsupported(const Expr& e) {
  if (e.unsupported) return true;
  if (e.lhs != nullptr && subtree_unsupported(*e.lhs)) return true;
  if (e.rhs != nullptr && subtree_unsupported(*e.rhs)) return true;
  for (const auto& a : e.args) {
    if (a != nullptr && subtree_unsupported(*a)) return true;
  }
  return false;
}

class FunctionSema {
 public:
  FunctionSema(TranslationUnit& unit, const FunctionDecl& fn,
               support::DiagnosticEngine& diags)
      : unit_(unit), fn_(fn), diags_(diags) {}

  FunctionInfo run() {
    info_.decl = &fn_;
    scopes_.emplace_back();
    for (const auto& p : fn_.params) declare(p.name, p.type, fn_.loc);
    visit_stmt(*fn_.body);
    scopes_.pop_back();

    for (const auto& [sym, ty] : info_.variables) {
      if (ty.is_struct_pointer()) info_.pointer_vars.push_back(sym);
    }
    std::sort(info_.pointer_vars.begin(), info_.pointer_vars.end());
    return std::move(info_);
  }

 private:
  void declare(Symbol name, const Type& type, support::SourceLoc loc) {
    if (info_.variables.count(name) != 0) {
      std::ostringstream os;
      os << "redeclaration of '" << unit_.interner->spelling(name)
         << "' (the shape analysis identifies variables by name)";
      diags_.error(loc, os.str());
      return;
    }
    scopes_.back().push_back(name);
    info_.variables.emplace(name, type);
  }

  [[nodiscard]] const Type* lookup(Symbol name) const {
    auto it = info_.variables.find(name);
    return it == info_.variables.end() ? nullptr : &it->second;
  }

  void visit_stmt(Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kDecl:
        for (auto& d : stmt.decls) {
          declare(d.name, d.type, d.loc);
          if (d.init) visit_expr(*d.init, &d.type);
        }
        break;
      case StmtKind::kAssign: {
        visit_expr(*stmt.lhs, nullptr);
        visit_expr(*stmt.rhs, &stmt.lhs->type);
        check_assignment(stmt);
        break;
      }
      case StmtKind::kExpr:
        visit_expr(*stmt.lhs, nullptr);
        break;
      case StmtKind::kIf:
        visit_expr(*stmt.cond, nullptr);
        visit_stmt(*stmt.then_body);
        if (stmt.else_body) visit_stmt(*stmt.else_body);
        break;
      case StmtKind::kWhile:
      case StmtKind::kDoWhile:
        visit_expr(*stmt.cond, nullptr);
        visit_stmt(*stmt.then_body);
        break;
      case StmtKind::kFor:
        scopes_.emplace_back();
        if (stmt.init) visit_stmt(*stmt.init);
        if (stmt.cond) visit_expr(*stmt.cond, nullptr);
        if (stmt.step) visit_stmt(*stmt.step);
        visit_stmt(*stmt.then_body);
        scopes_.pop_back();
        break;
      case StmtKind::kBlock:
        scopes_.emplace_back();
        for (auto& s : stmt.body) visit_stmt(*s);
        scopes_.pop_back();
        break;
      case StmtKind::kReturn:
        if (stmt.lhs) visit_expr(*stmt.lhs, nullptr);
        break;
      case StmtKind::kFree:
        visit_expr(*stmt.lhs, nullptr);
        if (!stmt.lhs->type.is_struct_pointer()) {
          diags_.warning(stmt.loc, "free() of a non-struct-pointer is ignored");
        }
        break;
      case StmtKind::kBreak:
      case StmtKind::kContinue:
      case StmtKind::kEmpty:
        break;
    }
  }

  void check_assignment(const Stmt& stmt) {
    const Type& lhs_ty = stmt.lhs->type;
    if (!lhs_ty.is_struct_pointer()) return;  // scalar: opaque to the analysis

    // Pointer assignments must have a shape-expressible rhs. In salvage mode
    // the offending rhs is marked unsupported and the CFG builder lowers the
    // assignment to a sound kHavoc instead of aborting the unit.
    switch (stmt.rhs->kind) {
      case ExprKind::kNullLit:
      case ExprKind::kMalloc:
      case ExprKind::kVarRef:
      case ExprKind::kFieldAccess:
      case ExprKind::kCast:
        break;
      case ExprKind::kCall:
        // Summarizable in-unit calls returning a struct pointer lower to a
        // kCall statement (summary-based interprocedural analysis); any
        // other call keeps the PR 5 havoc behavior.
        if (!stmt.rhs->summarizable || !stmt.rhs->type.is_struct_pointer()) {
          diags_.unsupported(stmt.rhs->loc,
                             "calls returning struct pointers are only "
                             "supported for in-unit callees with matching "
                             "signatures; this call lowers to a havoc");
          stmt.rhs->unsupported = true;
        }
        break;
      default:
        diags_.unsupported(stmt.rhs->loc,
                           "unsupported right-hand side for a pointer "
                           "assignment");
        stmt.rhs->unsupported = true;
        break;
    }

    if (stmt.rhs->type.is_struct_pointer() &&
        stmt.rhs->type.struct_id != lhs_ty.struct_id &&
        stmt.rhs->kind != ExprKind::kNullLit) {
      diags_.unsupported(stmt.rhs->loc, "pointer assignment between different "
                                        "struct types");
      stmt.rhs->unsupported = true;
    }
  }

  /// `expected` provides type context for malloc without an explicit type.
  void visit_expr(Expr& expr, const Type* expected) {
    switch (expr.kind) {
      case ExprKind::kIntLit:
        expr.type = Type::scalar_type(ScalarKind::kInt);
        break;
      case ExprKind::kFloatLit:
        expr.type = Type::scalar_type(ScalarKind::kDouble);
        break;
      case ExprKind::kStringLit:
        expr.type = Type::pointer_to_scalar(ScalarKind::kChar);
        break;
      case ExprKind::kNullLit:
        // NULL adopts the expected pointer type when available.
        if (expected != nullptr && expected->is_pointer()) {
          expr.type = *expected;
        } else {
          expr.type = Type::pointer_to_scalar(ScalarKind::kVoid);
        }
        break;
      case ExprKind::kVarRef: {
        if (const Type* ty = lookup(expr.name)) {
          expr.type = *ty;
        } else {
          std::ostringstream os;
          os << "use of undeclared variable '"
             << unit_.interner->spelling(expr.name) << "'";
          diags_.unsupported(expr.loc, os.str());
          expr.unsupported = true;
          expr.type = Type::scalar_type(ScalarKind::kInt);
        }
        break;
      }
      case ExprKind::kFieldAccess: {
        visit_expr(*expr.lhs, nullptr);
        const Type& base = expr.lhs->type;
        if (expr.via_arrow) {
          if (!base.is_struct_pointer()) {
            diags_.unsupported(expr.loc, "'->' applied to a non-struct-pointer");
            expr.unsupported = true;
            expr.type = Type::scalar_type(ScalarKind::kInt);
            return;
          }
        } else {
          diags_.unsupported(
              expr.loc,
              "'.' field access requires by-value structs, which are "
              "not supported; use '->'");
          expr.unsupported = true;
          expr.type = Type::scalar_type(ScalarKind::kInt);
          return;
        }
        const StructDecl& decl = unit_.types.struct_decl(*base.struct_id);
        const Field* field = decl.find_field(expr.name);
        if (field == nullptr) {
          std::ostringstream os;
          os << "struct '" << unit_.interner->spelling(decl.name)
             << "' has no field '" << unit_.interner->spelling(expr.name) << "'";
          diags_.unsupported(expr.loc, os.str());
          expr.unsupported = true;
          expr.type = Type::scalar_type(ScalarKind::kInt);
          return;
        }
        expr.type = field->type;
        break;
      }
      case ExprKind::kUnary:
        visit_expr(*expr.lhs, nullptr);
        if (expr.unary_op == UnaryOp::kDeref || expr.unary_op == UnaryOp::kAddrOf) {
          if (expr.lhs->type.is_struct_pointer() ||
              expr.lhs->type.kind == Type::Kind::kStruct) {
            diags_.unsupported(
                expr.loc,
                "'*'/'&' on struct values are not supported; the "
                "analysis works on '->' access paths");
            expr.unsupported = true;
          }
        }
        expr.type = Type::scalar_type(ScalarKind::kInt);
        break;
      case ExprKind::kBinary:
        visit_expr(*expr.lhs, nullptr);
        // Give NULL comparisons pointer context from the other side.
        visit_expr(*expr.rhs, &expr.lhs->type);
        expr.type = Type::scalar_type(ScalarKind::kInt);
        break;
      case ExprKind::kMalloc: {
        if (expr.type_name.valid()) {
          if (auto id = unit_.types.find_struct(expr.type_name)) {
            expr.type = Type::pointer_to_struct(*id);
          } else {
            std::ostringstream os;
            os << "malloc of unknown struct '"
               << unit_.interner->spelling(expr.type_name) << "'";
            diags_.unsupported(expr.loc, os.str());
            expr.unsupported = true;
            expr.type = Type::pointer_to_scalar(ScalarKind::kVoid);
          }
        } else if (expected != nullptr && expected->is_struct_pointer()) {
          expr.type = *expected;
          expr.type_name = unit_.types.struct_decl(*expected->struct_id).name;
        } else {
          diags_.unsupported(
              expr.loc,
              "cannot resolve the struct type of this malloc; write "
              "malloc(sizeof(struct T)) or cast the result");
          expr.unsupported = true;
          expr.type = Type::pointer_to_scalar(ScalarKind::kVoid);
        }
        break;
      }
      case ExprKind::kSizeof:
        expr.type = Type::scalar_type(ScalarKind::kInt);
        break;
      case ExprKind::kCall: {
        // Interprocedural analysis (docs/ALGORITHMS.md): resolve an in-unit
        // callee. When the callee is defined in this unit with a matching
        // signature the call is `summarizable` — CFG lowering emits a kCall
        // statement and the engine applies the callee's function summary.
        // Any other call with struct-pointer arguments stays an unsupported
        // (havoc) site, exactly as in the PR 5 salvage frontend.
        const FunctionDecl* callee = nullptr;
        for (const auto& f : unit_.functions) {
          if (f.name == expr.name) {
            callee = &f;
            break;
          }
        }
        const bool arity_ok =
            callee != nullptr && callee->params.size() == expr.args.size();
        bool summarizable = arity_ok;
        bool any_ptr_arg = false;
        for (std::size_t i = 0; i < expr.args.size(); ++i) {
          Expr& a = *expr.args[i];
          const Type* param_ty = arity_ok ? &callee->params[i].type : nullptr;
          visit_expr(a, param_ty);
          if (a.type.is_struct_pointer()) any_ptr_arg = true;
          if (!arity_ok) continue;
          if (param_ty->is_struct_pointer()) {
            // A struct-pointer parameter must receive a struct pointer of
            // the same type, or the summary's region tracking breaks down.
            if (!(a.type.is_struct_pointer() &&
                  a.type.struct_id == param_ty->struct_id)) {
              summarizable = false;
            }
          } else if (param_ty->kind == Type::Kind::kStruct) {
            // A by-value struct parameter would copy pointer fields past
            // the summary's argument region. The parser rejects these
            // declarations; a salvaged unit may still carry one.
            summarizable = false;
          } else if (a.type.is_struct_pointer()) {
            // Pointer passed where the callee expects a scalar: it would
            // escape the summary's argument region.
            summarizable = false;
          }
          // Degraded argument subtrees cannot be lowered to argument pvars.
          if (subtree_unsupported(a)) summarizable = false;
        }
        if (summarizable && callee->return_type.kind == Type::Kind::kStruct) {
          summarizable = false;  // by-value struct returns are unsupported
        }
        if (summarizable) {
          expr.summarizable = true;
          expr.type = callee->return_type;
        } else {
          if (any_ptr_arg) {
            // The unknown callee may rewrite anything reachable from the
            // argument: the whole call is the unsupported (havoc) site.
            diags_.unsupported(
                expr.loc,
                "passing struct pointers to calls is only supported for "
                "in-unit callees with matching signatures; this call "
                "lowers to a havoc");
            expr.unsupported = true;
          }
          expr.type = Type::scalar_type(ScalarKind::kInt);
        }
        break;
      }
      case ExprKind::kCast: {
        if (auto id = unit_.types.find_struct(expr.type_name)) {
          const Type cast_ty = Type::pointer_to_struct(*id);
          visit_expr(*expr.lhs, &cast_ty);
          expr.type = cast_ty;
        } else {
          std::ostringstream os;
          os << "cast to unknown struct '"
             << unit_.interner->spelling(expr.type_name) << "'";
          diags_.unsupported(expr.loc, os.str());
          expr.unsupported = true;
          visit_expr(*expr.lhs, nullptr);
          expr.type = Type::pointer_to_scalar(ScalarKind::kVoid);
        }
        break;
      }
    }
  }

  TranslationUnit& unit_;
  const FunctionDecl& fn_;
  support::DiagnosticEngine& diags_;
  FunctionInfo info_;
  std::vector<std::vector<Symbol>> scopes_;
};

}  // namespace

SemaResult analyze(TranslationUnit& unit, support::DiagnosticEngine& diags) {
  SemaResult result;
  result.functions.reserve(unit.functions.size());
  for (const auto& fn : unit.functions) {
    const std::size_t diag_mark = diags.size();
    const std::size_t error_mark = diags.error_count();
    FunctionSema sema(unit, fn, diags);
    FunctionInfo info = sema.run();
    if (diags.salvage() && diags.error_count() > error_mark) {
      // Hard sema errors (e.g. redeclarations) make the function's variable
      // environment ambiguous; stub the whole function rather than analyze a
      // guess. Its FunctionDecl stays in unit.functions (FunctionInfo::decl
      // pointers index into it) but no FunctionInfo is produced, so no later
      // phase sees it.
      diags.demote_errors_from(diag_mark);
      SkippedDecl skipped;
      skipped.name = fn.name;
      skipped.loc = fn.loc;
      for (std::size_t i = diag_mark; i < diags.size(); ++i) {
        skipped.diagnostics.push_back(diags.all()[i]);
      }
      unit.skipped.push_back(std::move(skipped));
      continue;
    }
    result.functions.push_back(std::move(info));
  }
  return result;
}

}  // namespace psa::lang
