// Snapshots of analysis-layer values, built on the rsg/serialize.hpp wire
// format: Rsrsg sets and whole AnalysisResults (status, per-statement
// states, degradation report, resource accounting).
//
// The batch driver (src/driver/) ships an AnalysisResult snapshot from a
// sandboxed worker process to its supervisor and journals the same bytes as
// the on-disk checkpoint that makes interrupted batch runs resumable; the
// round-trip is canon-exact when restored into the originating interner
// (every restored Rsrsg equals the original member-for-member under
// rsg_equal, and every scalar field is preserved bit-for-bit); restored
// into a different interner it is the same value up to symbol renaming and
// re-serializes to byte-identical bytes (see rsg/serialize.hpp).
// Deserialization follows the serialize.hpp robustness contract: hostile
// bytes throw rsg::SnapshotError, never UB.
#pragma once

#include <string>
#include <string_view>

#include "analysis/engine.hpp"
#include "rsg/serialize.hpp"

namespace psa::analysis {

using rsg::SnapshotError;

// Record-level API (for embedding in larger payloads, e.g. the batch
// driver's UnitPayload).
void append_metrics(rsg::ByteWriter& out, const support::MetricsSnapshot& ops);
[[nodiscard]] support::MetricsSnapshot read_metrics(rsg::ByteReader& in);

void append_rsrsg(rsg::ByteWriter& out, const Rsrsg& set,
                  rsg::SymbolTableBuilder& table);
[[nodiscard]] Rsrsg read_rsrsg(rsg::ByteReader& in,
                               const rsg::SymbolTableView& table);

void append_analysis_result(rsg::ByteWriter& out, const AnalysisResult& result,
                            rsg::SymbolTableBuilder& table);
[[nodiscard]] AnalysisResult read_analysis_result(
    rsg::ByteReader& in, const rsg::SymbolTableView& table);

// Self-contained snapshots (envelope + string table + one record).
[[nodiscard]] std::string serialize_rsrsg(const Rsrsg& set,
                                          const support::Interner& interner);
[[nodiscard]] Rsrsg deserialize_rsrsg(std::string_view bytes,
                                      support::Interner& interner);

[[nodiscard]] std::string serialize_analysis_result(
    const AnalysisResult& result, const support::Interner& interner);
[[nodiscard]] AnalysisResult deserialize_analysis_result(
    std::string_view bytes, support::Interner& interner);

}  // namespace psa::analysis
