#include "analysis/progressive.hpp"

namespace psa::analysis {

ProgressiveResult run_progressive(const ProgramAnalysis& program,
                                  const std::vector<ShapeCriterion>& criteria,
                                  const Options& base) {
  ProgressiveResult out;
  for (const rsg::AnalysisLevel level :
       {rsg::AnalysisLevel::kL1, rsg::AnalysisLevel::kL2,
        rsg::AnalysisLevel::kL3}) {
    Options options = base;
    options.level = level;

    LevelAttempt attempt;
    attempt.level = level;
    attempt.result = analyze_program(program, options);

    for (const ShapeCriterion& c : criteria) {
      if (!c.check(program, attempt.result))
        attempt.failed_criteria.push_back(c.name);
    }
    const bool ok =
        attempt.failed_criteria.empty() && attempt.result.converged();
    out.attempts.push_back(std::move(attempt));
    if (ok) {
      out.satisfied = true;
      break;
    }
  }
  return out;
}

}  // namespace psa::analysis
