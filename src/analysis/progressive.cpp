#include "analysis/progressive.hpp"

#include <cstdint>

#include "support/timer.hpp"

namespace psa::analysis {

namespace {

/// Why an attempt must not be escalated past: a failed resource status, or a
/// converged-but-exhausted run (deadline drain, unreachable memory budget)
/// whose budget a higher level would exhaust even faster. Returns an empty
/// string when escalation is fine.
std::string resource_stop_reason(const AnalysisResult& result) {
  if (is_resource_status(result.status)) {
    return std::string("resource exhaustion: ") + std::string(
        to_string(result.status));
  }
  if (result.degradation.deadline_drain) {
    return "converged only by deadline drain; a higher level would need more "
           "time, not less";
  }
  if (result.degradation.memory_budget_unreachable) {
    return "memory budget unreachable even at the top degradation rung";
  }
  return {};
}

}  // namespace

ProgressiveResult run_progressive(const ProgramAnalysis& program,
                                  const std::vector<ShapeCriterion>& criteria,
                                  const Options& base) {
  ProgressiveResult out;
  support::WallTimer ladder_timer;  // shared deadline budget for all levels
  for (const rsg::AnalysisLevel level :
       {rsg::AnalysisLevel::kL1, rsg::AnalysisLevel::kL2,
        rsg::AnalysisLevel::kL3}) {
    Options options = base;
    options.level = level;
    if (base.deadline_ms != 0) {
      const auto spent_ms = static_cast<std::uint64_t>(
          ladder_timer.elapsed_seconds() * 1000.0);
      if (spent_ms >= base.deadline_ms) {
        out.resource_exhausted = true;
        out.stop_reason = std::string("deadline budget exhausted before ") +
                          std::string(rsg::to_string(level));
        break;
      }
      options.deadline_ms = base.deadline_ms - spent_ms;
    }

    LevelAttempt attempt;
    attempt.level = level;
    attempt.result = analyze_program(program, options);

    for (const ShapeCriterion& c : criteria) {
      if (!c.check(program, attempt.result))
        attempt.failed_criteria.push_back(c.name);
    }
    const bool converged = attempt.result.converged();
    const bool ok = attempt.failed_criteria.empty() && converged;
    std::string stop = resource_stop_reason(attempt.result);
    if (converged) out.best_attempt = out.attempts.size();
    attempt.stop_reason = stop;
    out.attempts.push_back(std::move(attempt));
    if (ok) {
      out.satisfied = true;
      break;
    }
    if (!stop.empty()) {
      // Resource failure is not an accuracy failure: escalating would cost
      // strictly more and fail the same way. Stop here; best() points at the
      // last converged attempt (the step-down answer).
      out.resource_exhausted = true;
      out.stop_reason = std::move(stop);
      break;
    }
  }
  return out;
}

}  // namespace psa::analysis
