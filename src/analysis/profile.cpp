// Metric record building, JSONL export, and the --profile table (see
// profile.hpp and docs/OBSERVABILITY.md).
#include "analysis/profile.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace psa::analysis {

namespace {

using support::Counter;
using support::MetricsSnapshot;

/// Shortest decimal form that still round-trips typical metric values; %g
/// output ("0.0015", "1e+09") is valid JSON number syntax.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void recompute_densities(PopulationGauges& g) {
  g.avg_nodes_per_rsg =
      g.live_rsgs == 0
          ? 0.0
          : static_cast<double>(g.total_nodes) / static_cast<double>(g.live_rsgs);
  if (g.total_nodes == 0) {
    g.shared_density = 0.0;
    g.cyclelinks_density = 0.0;
  } else {
    const double total = static_cast<double>(g.total_nodes);
    g.shared_density = static_cast<double>(g.shared_nodes) / total;
    g.cyclelinks_density = static_cast<double>(g.cyclelink_nodes) / total;
  }
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

PopulationGauges collect_gauges(const AnalysisResult& result) {
  PopulationGauges g;
  for (const Rsrsg& set : result.per_node) {
    const std::uint64_t card = set.size();
    g.live_rsgs += card;
    if (card > g.max_rsgs_per_stmt) g.max_rsgs_per_stmt = card;
    for (const Rsg& rsg : set.graphs()) {
      std::uint64_t nodes = 0;
      for (const rsg::NodeRef n : rsg.node_refs()) {
        ++nodes;
        const rsg::NodeProps& props = rsg.props(n);
        if (props.shared) ++g.shared_nodes;
        if (!props.cyclelinks.empty()) ++g.cyclelink_nodes;
      }
      g.total_nodes += nodes;
      if (nodes > g.max_nodes_per_rsg) g.max_nodes_per_rsg = nodes;
    }
  }
  recompute_densities(g);
  return g;
}

UnitMetrics collect_unit_metrics(std::string unit, std::string function,
                                 std::string level,
                                 const AnalysisResult& result) {
  UnitMetrics m;
  m.unit = std::move(unit);
  m.function = std::move(function);
  m.level = std::move(level);
  m.status = std::string(to_string(result.status));
  m.wall_seconds = result.seconds;
  m.node_visits = result.node_visits;
  m.degraded = result.degraded();
  for (std::size_t r = result.degradation.rung_applications.size(); r-- > 0;) {
    if (result.degradation.rung_applications[r] > 0) {
      m.worst_rung = std::string(to_string(static_cast<DegradationRung>(r)));
      break;
    }
  }
  m.memory = result.memory;
  m.ops = result.ops;
  m.gauges = collect_gauges(result);
  return m;
}

UnitMetrics aggregate_metrics(const std::vector<UnitMetrics>& units) {
  UnitMetrics agg;
  agg.unit = "aggregate";
  agg.function = "-";
  agg.level = "-";
  agg.status = "aggregate";
  std::size_t worst = 0;
  for (const UnitMetrics& u : units) {
    agg.wall_seconds += u.wall_seconds;
    agg.node_visits += u.node_visits;
    agg.degraded = agg.degraded || u.degraded;
    // Rungs order by severity, so the worst rung of the batch is the max
    // over units; compare by enum value via the applications-scan convention
    // used in collect_unit_metrics.
    for (std::size_t r = 3; r > worst; --r) {
      if (u.worst_rung == to_string(static_cast<DegradationRung>(r))) {
        worst = r;
        break;
      }
    }
    agg.memory.live_bytes += u.memory.live_bytes;
    agg.memory.peak_bytes += u.memory.peak_bytes;
    agg.memory.total_allocated_bytes += u.memory.total_allocated_bytes;
    agg.memory.nodes_created += u.memory.nodes_created;
    agg.memory.graphs_created += u.memory.graphs_created;
    agg.ops += u.ops;
    agg.gauges.live_rsgs += u.gauges.live_rsgs;
    agg.gauges.total_nodes += u.gauges.total_nodes;
    agg.gauges.shared_nodes += u.gauges.shared_nodes;
    agg.gauges.cyclelink_nodes += u.gauges.cyclelink_nodes;
    if (u.gauges.max_rsgs_per_stmt > agg.gauges.max_rsgs_per_stmt) {
      agg.gauges.max_rsgs_per_stmt = u.gauges.max_rsgs_per_stmt;
    }
    if (u.gauges.max_nodes_per_rsg > agg.gauges.max_nodes_per_rsg) {
      agg.gauges.max_nodes_per_rsg = u.gauges.max_nodes_per_rsg;
    }
  }
  agg.worst_rung = std::string(to_string(static_cast<DegradationRung>(worst)));
  recompute_densities(agg.gauges);
  return agg;
}

std::string to_metrics_json(const UnitMetrics& m, std::string_view kind) {
  std::string out;
  out.reserve(2048);
  auto str = [&](std::string_view key, std::string_view value) {
    out += '"';
    out += key;
    out += "\":\"";
    out += json_escape(value);
    out += '"';
  };
  auto num = [&](std::string_view key, std::uint64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%" PRIu64, value);
    out += '"';
    out += key;
    out += "\":";
    out += buf;
  };
  auto dbl = [&](std::string_view key, double value) {
    out += '"';
    out += key;
    out += "\":";
    out += format_double(value);
  };

  out += '{';
  str("schema", "psa.metrics.v1");
  out += ',';
  str("kind", kind);
  out += ',';
  str("unit", m.unit);
  out += ',';
  str("function", m.function);
  out += ',';
  str("level", m.level);
  out += ',';
  str("status", m.status);
  out += ',';
  dbl("wall_seconds", m.wall_seconds);
  out += ',';
  num("node_visits", m.node_visits);
  out += ',';
  out += m.degraded ? "\"degraded\":true" : "\"degraded\":false";
  out += ',';
  str("worst_rung", m.worst_rung);

  out += ",\"memory\":{";
  num("live_bytes", m.memory.live_bytes);
  out += ',';
  num("peak_bytes", m.memory.peak_bytes);
  out += ',';
  num("total_allocated_bytes", m.memory.total_allocated_bytes);
  out += ',';
  num("nodes_created", m.memory.nodes_created);
  out += ',';
  num("graphs_created", m.memory.graphs_created);
  out += '}';

  out += ",\"gauges\":{";
  num("live_rsgs", m.gauges.live_rsgs);
  out += ',';
  num("total_nodes", m.gauges.total_nodes);
  out += ',';
  num("max_rsgs_per_stmt", m.gauges.max_rsgs_per_stmt);
  out += ',';
  num("max_nodes_per_rsg", m.gauges.max_nodes_per_rsg);
  out += ',';
  dbl("avg_nodes_per_rsg", m.gauges.avg_nodes_per_rsg);
  out += ',';
  num("shared_nodes", m.gauges.shared_nodes);
  out += ',';
  dbl("shared_density", m.gauges.shared_density);
  out += ',';
  num("cyclelink_nodes", m.gauges.cyclelink_nodes);
  out += ',';
  dbl("cyclelinks_density", m.gauges.cyclelinks_density);
  out += '}';

  out += ",\"ops\":{";
  for (std::size_t i = 0; i < support::kCounterCount; ++i) {
    if (i != 0) out += ',';
    num(support::counter_name(static_cast<Counter>(i)), m.ops.values[i]);
  }
  out += "}}\n";
  return out;
}

namespace {

void profile_phase_row(std::ostringstream& os, const MetricsSnapshot& ops,
                       const char* name, Counter wall, Counter cpu) {
  const std::uint64_t wall_ns = ops[wall];
  const std::uint64_t cpu_ns = ops[cpu];
  if (wall_ns == 0 && cpu_ns == 0) return;  // phase never ran
  char buf[96];
  std::snprintf(buf, sizeof buf, "  %-14s %10.3f ms wall %10.3f ms cpu\n",
                name, static_cast<double>(wall_ns) / 1e6,
                static_cast<double>(cpu_ns) / 1e6);
  os << buf;
}

void profile_counter_row(std::ostringstream& os, const char* label,
                         std::uint64_t value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "  %-28s %12" PRIu64 "\n", label, value);
  os << buf;
}

}  // namespace

std::string format_profile(const UnitMetrics& m) {
  std::ostringstream os;
  const MetricsSnapshot& ops = m.ops;
  os << "profile: " << m.unit << " (" << m.function << ", " << m.level
     << ", " << m.status << ")\n";

  os << "phases:\n";
  profile_phase_row(os, ops, "parse", Counter::kPhaseParseWallNs,
                    Counter::kPhaseParseCpuNs);
  profile_phase_row(os, ops, "cfg", Counter::kPhaseCfgWallNs,
                    Counter::kPhaseCfgCpuNs);
  profile_phase_row(os, ops, "ipa", Counter::kPhaseIpaWallNs,
                    Counter::kPhaseIpaCpuNs);
  profile_phase_row(os, ops, "fixpoint L1", Counter::kPhaseFixpointL1WallNs,
                    Counter::kPhaseFixpointL1CpuNs);
  profile_phase_row(os, ops, "fixpoint L2", Counter::kPhaseFixpointL2WallNs,
                    Counter::kPhaseFixpointL2CpuNs);
  profile_phase_row(os, ops, "fixpoint L3", Counter::kPhaseFixpointL3WallNs,
                    Counter::kPhaseFixpointL3CpuNs);
  profile_phase_row(os, ops, "checkers", Counter::kPhaseCheckerWallNs,
                    Counter::kPhaseCheckerCpuNs);
  profile_phase_row(os, ops, "serialize", Counter::kPhaseSerializeWallNs,
                    Counter::kPhaseSerializeCpuNs);

  os << "worklist:\n";
  profile_counter_row(os, "visits", ops[Counter::kWorklistVisits]);
  profile_counter_row(os, "revisits", ops[Counter::kWorklistRevisits]);
  profile_counter_row(os, "transfer cache hits",
                      ops[Counter::kTransferCacheHits]);
  profile_counter_row(os, "transfer cache misses",
                      ops[Counter::kTransferCacheMisses]);
  profile_counter_row(os, "widenings", ops[Counter::kWidenings]);

  os << "rsg operations:\n";
  profile_counter_row(os, "compress calls", ops[Counter::kCompressCalls]);
  profile_counter_row(os, "compress merges", ops[Counter::kCompressMerges]);
  profile_counter_row(os, "coarsen calls", ops[Counter::kCoarsenCalls]);
  profile_counter_row(os, "summarize-top calls",
                      ops[Counter::kSummarizeTopCalls]);
  profile_counter_row(os, "join attempts", ops[Counter::kJoinAttempts]);
  profile_counter_row(os, "join accepts", ops[Counter::kJoinAccepts]);
  profile_counter_row(os, "join rejects (ALIAS)",
                      ops[Counter::kJoinRejectedAlias]);
  profile_counter_row(os, "join rejects (COMPATIBLE)",
                      ops[Counter::kJoinRejectedCompat]);
  profile_counter_row(os, "force joins", ops[Counter::kForceJoins]);
  profile_counter_row(os, "prune calls", ops[Counter::kPruneCalls]);
  profile_counter_row(os, "prune iterations", ops[Counter::kPruneIterations]);
  profile_counter_row(os, "prune links removed",
                      ops[Counter::kPruneLinksRemoved]);
  profile_counter_row(os, "prune nodes removed",
                      ops[Counter::kPruneNodesRemoved]);
  profile_counter_row(os, "prune infeasible", ops[Counter::kPruneInfeasible]);
  profile_counter_row(os, "divide calls", ops[Counter::kDivideCalls]);
  profile_counter_row(os, "divide variants", ops[Counter::kDivideVariants]);
  profile_counter_row(os, "materialize calls",
                      ops[Counter::kMaterializeCalls]);
  profile_counter_row(os, "materialize variants",
                      ops[Counter::kMaterializeVariants]);

  os << "governor:\n";
  profile_counter_row(os, "escalations", ops[Counter::kGovernorEscalations]);
  profile_counter_row(os, "collapses", ops[Counter::kGovernorCollapses]);
  profile_counter_row(os, "reapplies", ops[Counter::kGovernorReapplies]);
  profile_counter_row(os, "deadline drains", ops[Counter::kGovernorDrains]);
  if (m.degraded) os << "  degraded (worst rung: " << m.worst_rung << ")\n";

  char buf[160];
  os << "gauges:\n";
  std::snprintf(buf, sizeof buf,
                "  live RSGs %" PRIu64 " (max/stmt %" PRIu64
                "), nodes %" PRIu64 " (max/RSG %" PRIu64 ", avg %.2f)\n",
                m.gauges.live_rsgs, m.gauges.max_rsgs_per_stmt,
                m.gauges.total_nodes, m.gauges.max_nodes_per_rsg,
                m.gauges.avg_nodes_per_rsg);
  os << buf;
  std::snprintf(buf, sizeof buf,
                "  SHARED density %.3f (%" PRIu64
                " nodes), CYCLELINKS density %.3f (%" PRIu64 " nodes)\n",
                m.gauges.shared_density, m.gauges.shared_nodes,
                m.gauges.cyclelinks_density, m.gauges.cyclelink_nodes);
  os << buf;
  std::snprintf(buf, sizeof buf,
                "  peak memory %.2f MB, visits %" PRIu64 ", wall %.3f s\n",
                static_cast<double>(m.memory.peak_bytes) / (1024.0 * 1024.0),
                m.node_visits, m.wall_seconds);
  os << buf;
  return os.str();
}

}  // namespace psa::analysis
