#include "analysis/semantics.hpp"

#include <algorithm>
#include <cassert>
#include <set>

#include "support/metrics.hpp"

namespace psa::analysis {

using cfg::SimpleOp;
using cfg::SimpleStmt;
using rsg::Cardinality;
using rsg::kNoNode;
using rsg::NodeProps;
using rsg::NodeRef;
using rsg::Rsg;
using rsg::SelPair;
using support::Symbol;

namespace {

/// Should an assignment to `x` at `node` record a TOUCH visit? Only at L3,
/// only inside a loop for which x is an induction pvar (§3).
bool touch_applies(const cfg::CfgNode& node, Symbol x,
                   const TransferContext& ctx) {
  if (!ctx.policy.use_touch()) return false;
  for (const std::uint32_t loop_id : node.loops) {
    if (ctx.induction->is_induction(loop_id, x)) return true;
  }
  return false;
}

void finish(Rsg& g, const TransferContext& ctx, std::vector<Rsg>& out) {
  rsg::compress(g, ctx.policy);
  g.refresh_footprint();
  out.push_back(std::move(g));
}

// ---------------------------------------------------------------------------
// x = NULL
// ---------------------------------------------------------------------------

std::vector<Rsg> exec_ptr_null(const Rsg& in, Symbol x,
                               const TransferContext& ctx) {
  std::vector<Rsg> out;
  Rsg g = in;
  g.unbind_pvar(x);
  finish(g, ctx, out);
  return out;
}

// ---------------------------------------------------------------------------
// x = malloc
// ---------------------------------------------------------------------------

std::vector<Rsg> exec_malloc(const Rsg& in, const SimpleStmt& stmt,
                             const TransferContext& ctx) {
  std::vector<Rsg> out;
  Rsg g = in;
  g.unbind_pvar(stmt.x);
  NodeProps props;
  props.type = stmt.type;
  props.cardinality = Cardinality::kOne;
  if (stmt.loc.valid()) props.alloc_sites.insert(stmt.loc.line);
  // Fresh location: no references, every selector NULL.
  const NodeRef n = g.add_node(std::move(props));
  g.bind_pvar(stmt.x, n);
  finish(g, ctx, out);
  return out;
}

// ---------------------------------------------------------------------------
// x = y
// ---------------------------------------------------------------------------

std::vector<Rsg> exec_copy(const Rsg& in, const cfg::CfgNode& node,
                           const TransferContext& ctx) {
  const SimpleStmt& stmt = node.stmt;
  std::vector<Rsg> out;
  if (stmt.x == stmt.y) {
    out.push_back(in);
    return out;
  }
  Rsg g = in;
  const NodeRef t = g.pvar_target(stmt.y);
  g.unbind_pvar(stmt.x);
  if (t != kNoNode) {
    g.bind_pvar(stmt.x, t);
    if (touch_applies(node, stmt.x, ctx)) g.props(t).touch.insert(stmt.x);
  }
  finish(g, ctx, out);
  return out;
}

// ---------------------------------------------------------------------------
// Store helpers
// ---------------------------------------------------------------------------

/// Remove the (unique, materialized) old link <n, sel, m1> plus the property
/// consequences of writing through ℓx.sel.
void remove_old_target(Rsg& g, NodeRef n, Symbol sel, NodeRef m1) {
  g.remove_link(n, sel, m1);

  NodeProps& pn = g.props(n);
  pn.selout.erase(sel);
  pn.pos_selout.erase(sel);

  // Writing ℓx.sel invalidates every cycle-link whose *outgoing* selector is
  // sel on n, and every <si, sel> cycle-link of a node si-linking into n
  // (its return path went through the overwritten field).
  pn.cyclelinks.erase_if([sel](SelPair cl) { return cl.out == sel; });
  for (const rsg::InLink& in : g.in_links(n)) {
    g.props(in.source).cyclelinks.erase_if(
        [&](SelPair cl) { return cl.out == in.sel && cl.back == sel; });
  }

  // The reference into the old target is gone.
  NodeProps& pm = g.props(m1);
  bool any_left = false;
  for (const rsg::InLink& in : g.in_links(m1)) {
    if (in.sel == sel) {
      any_left = true;
      break;
    }
  }
  if (!any_left) {
    pm.selin.erase(sel);
    pm.pos_selin.erase(sel);
  } else if (pm.selin.contains(sel)) {
    // Remaining sel-references may target other locations: demote.
    pm.selin.erase(sel);
    pm.pos_selin.insert(sel);
  }
}

/// Add the link <n, sel, t> for x->sel = y with its property consequences.
void add_new_target(Rsg& g, NodeRef n, Symbol sel, NodeRef t) {
  // Sharing: count references *before* adding ours.
  const int prior_sel_refs = g.max_in_refs(t, sel);
  const int prior_total_refs = g.max_in_refs_total(t);

  g.add_link(n, sel, t);

  NodeProps& pn = g.props(n);
  pn.selout.insert(sel);
  pn.pos_selout.erase(sel);

  NodeProps& pt = g.props(t);
  pt.selin.insert(sel);
  pt.pos_selin.erase(sel);
  if (prior_sel_refs >= 1) pt.shsel.insert(sel);
  if (prior_total_refs >= 1) pt.shared = true;

  // Cycle links made definite by the write: for every selector sj with a
  // definite back-link ℓy.sj = ℓx we gain <sel, sj> on n and <sj, sel> on t.
  for (const rsg::Link& l : g.out_links(t)) {
    if (l.target != n) continue;
    if (g.definite_link(t, l.sel, n)) {
      g.props(n).cyclelinks.insert(SelPair{sel, l.sel});
      g.props(t).cyclelinks.insert(SelPair{l.sel, sel});
    }
  }
  // Self-store x->sel = x: the new link itself is definite.
  if (t == n && g.definite_link(n, sel, n)) {
    g.props(n).cyclelinks.insert(SelPair{sel, sel});
  }
}

// ---------------------------------------------------------------------------
// x->sel = NULL and x->sel = y
// ---------------------------------------------------------------------------

std::vector<Rsg> exec_store(const Rsg& in, const cfg::CfgNode& node,
                            const TransferContext& ctx) {
  const SimpleStmt& stmt = node.stmt;
  std::vector<Rsg> out;
  if (in.pvar_target(stmt.x) == kNoNode) {
    // Null dereference: this configuration cannot continue.
    return out;
  }

  const bool has_source = stmt.op == SimpleOp::kStore;

  for (Rsg& variant : rsg::divide(in, stmt.x, stmt.sel, ctx.prune)) {
    const NodeRef n = variant.pvar_target(stmt.x);
    assert(n != kNoNode);
    const auto targets = variant.sel_targets(n, stmt.sel);

    auto apply_write = [&](Rsg g, NodeRef node_n) {
      if (has_source) {
        const NodeRef t = g.pvar_target(stmt.y);
        if (t != kNoNode) add_new_target(g, node_n, stmt.sel, t);
      }
      if (!rsg::prune(g, ctx.prune)) return;
      finish(g, ctx, out);
    };

    if (targets.empty()) {
      // x->sel was already NULL in this variant.
      apply_write(std::move(variant), n);
      continue;
    }

    // Materialize the single location x->sel denotes, then unlink it.
    for (rsg::Materialized& mat :
         rsg::materialize(variant, n, stmt.sel, ctx.prune)) {
      Rsg g = std::move(mat.graph);
      const NodeRef nn = g.pvar_target(stmt.x);
      assert(nn != kNoNode);
      remove_old_target(g, nn, stmt.sel, mat.one_node);
      apply_write(std::move(g), nn);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// x = y->sel
// ---------------------------------------------------------------------------

std::vector<Rsg> exec_load(const Rsg& in, const cfg::CfgNode& node,
                           const TransferContext& ctx) {
  const SimpleStmt& stmt = node.stmt;
  std::vector<Rsg> out;
  if (in.pvar_target(stmt.y) == kNoNode) return out;  // null dereference

  for (Rsg& variant : rsg::divide(in, stmt.y, stmt.sel, ctx.prune)) {
    const NodeRef n = variant.pvar_target(stmt.y);
    assert(n != kNoNode);
    const auto targets = variant.sel_targets(n, stmt.sel);

    if (targets.empty()) {
      // y->sel is NULL here: x = NULL.
      Rsg g = std::move(variant);
      g.unbind_pvar(stmt.x);
      finish(g, ctx, out);
      continue;
    }

    for (rsg::Materialized& mat :
         rsg::materialize(variant, n, stmt.sel, ctx.prune)) {
      Rsg g = std::move(mat.graph);
      g.unbind_pvar(stmt.x);
      g.bind_pvar(stmt.x, mat.one_node);
      if (touch_applies(node, stmt.x, ctx))
        g.props(mat.one_node).touch.insert(stmt.x);
      finish(g, ctx, out);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Bookkeeping operations
// ---------------------------------------------------------------------------

std::vector<Rsg> exec_assume(const Rsg& in, const SimpleStmt& stmt) {
  std::vector<Rsg> out;
  const bool bound = in.pvar_target(stmt.x) != kNoNode;
  const bool want_bound = stmt.op == SimpleOp::kAssumeNotNull;
  if (bound == want_bound) out.push_back(in);
  return out;
}

// ---------------------------------------------------------------------------
// free(x)
// ---------------------------------------------------------------------------

std::vector<Rsg> exec_free(const Rsg& in, const SimpleStmt& stmt,
                           const TransferContext& ctx) {
  std::vector<Rsg> out;
  const NodeRef n = in.pvar_target(stmt.x);
  if (n == kNoNode) {
    // free(NULL) is well-defined and a no-op.
    out.push_back(in);
    return out;
  }
  // The pvar-referenced node has cardinality one (PL invariant), so marking
  // it FREED frees exactly the location x denotes. The node keeps its
  // bindings and links: x (and every alias) now dangles, and the checkers
  // flag any later dereference or re-free of the node. Re-freeing an
  // already-(maybe-)freed location leaves it definitely freed.
  Rsg g = in;
  g.props(n).free_state = rsg::FreeState::kFreed;
  finish(g, ctx, out);
  return out;
}

// ---------------------------------------------------------------------------
// havoc — salvage-mode over-approximation of unsupported constructs
// (docs/RESILIENCE.md). Soundness is proven by the concrete-interpreter
// oracle (tests/testing/concrete_oracle.hpp): every produced variant set
// covers every concrete outcome the oracle's havoc semantics can choose.
// ---------------------------------------------------------------------------

/// havoc(*): an unknown call (or other opaque statement) may have rewritten
/// every heap cell it can reach. C passes pointers by value, so pvar
/// *bindings* survive; every heap link and property may have changed. The
/// governor's top widening rung is exactly that over-approximation: saturate
/// the may-structure with every type-correct link, drop all must-info, keep
/// the ALIAS pattern (rsg::summarize_top). Envelope limit (documented):
/// unknown code is modeled as not *freeing* memory; fresh callee allocations
/// only become relevant when a later unsupported expression is assigned,
/// which the rebind form covers.
std::vector<Rsg> exec_havoc_global(const Rsg& in, const TransferContext& ctx) {
  std::vector<Rsg> out;
  Rsg g = in;
  static const std::vector<Symbol> kNoSelectors;
  const std::vector<Symbol>& sels =
      ctx.selectors != nullptr ? *ctx.selectors : kNoSelectors;
  rsg::summarize_top(g, ctx.policy, sels, ctx.types);
  for (const NodeRef n : g.node_refs()) g.props(n).havoc = true;
  g.set_havoc(true);
  finish(g, ctx, out);
  return out;
}

/// havoc(x): x = <unknown side-effect-free expression of struct type T>
/// (side effects are lowered as a preceding havoc(*) by the CFG builder).
/// The unknown value is covered by three variant families:
///   1. NULL                          -> x unbound
///   2. the value of another pvar     -> x aliased to each type-T node some
///      (or x's old value)               pvar references
///   3. any other location (interior  -> x bound to a fresh typed-⊤ node:
///      cell, fresh allocation, ...)     SHARED, saturated SHSEL and
///                                       possible reference patterns, linked
///                                       both ways with every type-correct
///                                       peer; no must-info (⊤ makes no
///                                       definite claims).
/// Every variant is HAVOC-tainted so downstream findings report at degraded
/// confidence.
/// Shared core of the kHavoc rebind transfer and the summary entry
/// abstraction (bind_unknown_param). `taint_graph` distinguishes them: a
/// havoc'd statement degrades the whole graph, an unknown-but-well-formed
/// caller value at a summary entry does not. The node-level havoc marks are
/// set either way — under taint they drive the checker's witness downgrade,
/// in summary runs they mark "may derive from caller memory".
std::vector<Rsg> rebind_unknown(const Rsg& in, Symbol x, lang::StructId type,
                                const TransferContext& ctx, bool taint_graph) {
  std::vector<Rsg> out;

  // Variant 1: the unknown expression was NULL.
  {
    Rsg g = in;
    g.unbind_pvar(x);
    if (taint_graph) g.set_havoc(true);
    finish(g, ctx, out);
  }

  // Variant 2: x now aliases a location some pvar already references
  // (including x's own old target: "the value did not change").
  std::vector<NodeRef> alias_targets;
  for (const auto& [pvar, t] : in.pvar_links()) {
    if (in.props(t).type != type) continue;
    if (std::find(alias_targets.begin(), alias_targets.end(), t) ==
        alias_targets.end()) {
      alias_targets.push_back(t);
    }
  }
  for (const NodeRef t : alias_targets) {
    Rsg g = in;
    g.unbind_pvar(x);
    g.bind_pvar(x, t);
    g.props(t).havoc = true;
    if (taint_graph) g.set_havoc(true);
    finish(g, ctx, out);
  }

  // Variant 3: any other type-T location.
  {
    Rsg g = in;
    g.unbind_pvar(x);
    NodeProps props;
    props.type = type;
    props.cardinality = Cardinality::kOne;  // PL invariant
    props.shared = true;
    props.havoc = true;
    const NodeRef n = g.add_node(std::move(props));
    g.bind_pvar(x, n);
    if (ctx.types != nullptr) {
      // Saturate both directions with every type-correct link so the node
      // covers interior cells of the existing structure as well as memory
      // the analyzed code has never seen.
      const auto refs = g.node_refs();
      for (const NodeRef b : refs) {
        const lang::StructDecl& decl = ctx.types->struct_decl(g.props(b).type);
        for (const lang::Field& f : decl.fields) {
          if (!f.is_selector()) continue;
          if (*f.type.struct_id == type) {
            g.add_link(b, f.name, n);
            g.props(b).pos_selout.insert(f.name);
            g.props(n).pos_selin.insert(f.name);
            g.props(n).shsel.insert(f.name);
          }
          if (b == n) {
            // Outgoing saturation from the unknown node itself.
            for (const NodeRef tgt : refs) {
              if (g.props(tgt).type != *f.type.struct_id) continue;
              g.add_link(n, f.name, tgt);
              g.props(n).pos_selout.insert(f.name);
              g.props(tgt).pos_selin.insert(f.name);
            }
          }
        }
      }
    } else if (ctx.selectors != nullptr) {
      // No type table: saturate the sharing bits over the selector universe
      // (no links can be added type-correctly — still sound, coarser).
      for (const Symbol sel : *ctx.selectors) g.props(n).shsel.insert(sel);
    }
    if (taint_graph) g.set_havoc(true);
    finish(g, ctx, out);
  }
  return out;
}

std::vector<Rsg> exec_havoc_rebind(const Rsg& in, const SimpleStmt& stmt,
                                   const TransferContext& ctx) {
  return rebind_unknown(in, stmt.x, stmt.type, ctx, /*taint_graph=*/true);
}

// ---------------------------------------------------------------------------
// x = callee(args...) — interprocedural summary application
// (docs/ALGORITHMS.md). With no usable summary the transfer degenerates to
// the PR 5 lowering of an unknown call: global havoc plus an unknown-value
// rebind of the destination.
// ---------------------------------------------------------------------------

/// The heap region a callee can observe or mutate: every node reachable from
/// the argument bindings over may-links. The subset has no globals, so this
/// is reachability-closed and complete: an abstract link exists whenever the
/// corresponding concrete link is possible, hence every concrete cell the
/// callee can reach is represented by a node in this set.
std::vector<NodeRef> callee_region(const Rsg& g, const SimpleStmt& stmt) {
  std::vector<NodeRef> region;
  std::set<NodeRef> seen;
  std::vector<NodeRef> work;
  for (const Symbol a : stmt.args) {
    const NodeRef t = g.pvar_target(a);
    if (t != kNoNode && seen.insert(t).second) work.push_back(t);
  }
  while (!work.empty()) {
    const NodeRef n = work.back();
    work.pop_back();
    region.push_back(n);
    for (const rsg::Link& l : g.out_links(n)) {
      if (seen.insert(l.target).second) work.push_back(l.target);
    }
  }
  std::sort(region.begin(), region.end());
  return region;
}

/// Saturate every type-correct may-link between `n` and the `peers` cells:
/// out-links (and a self-link) always — the callee may have written any of
/// n's fields; in-links from the peers only when `in_links_too` — a cell
/// that escapes solely through the return value has no region in-refs.
void saturate_with(Rsg& g, NodeRef n, const std::vector<NodeRef>& peers,
                   bool in_links_too, const TransferContext& ctx) {
  if (ctx.types == nullptr) {
    // No struct table: no link can be added type-correctly; saturating the
    // sharing bits keeps the result sound, just coarser.
    g.props(n).shared = true;
    if (ctx.selectors != nullptr) {
      for (const Symbol sel : *ctx.selectors) g.props(n).shsel.insert(sel);
    }
    return;
  }
  std::vector<NodeRef> all = peers;
  all.push_back(n);  // the callee may have linked the cell to itself
  const lang::StructDecl& n_decl = ctx.types->struct_decl(g.props(n).type);
  for (const lang::Field& f : n_decl.fields) {
    if (!f.is_selector()) continue;
    for (const NodeRef b : all) {
      if (g.props(b).type != *f.type.struct_id) continue;
      g.add_link(n, f.name, b);
      g.props(n).pos_selout.insert(f.name);
      g.props(b).pos_selin.insert(f.name);
    }
  }
  if (!in_links_too) return;
  g.props(n).shared = true;
  for (const NodeRef b : peers) {
    const lang::StructDecl& decl = ctx.types->struct_decl(g.props(b).type);
    for (const lang::Field& f : decl.fields) {
      if (!f.is_selector()) continue;
      if (*f.type.struct_id != g.props(n).type) continue;
      g.add_link(b, f.name, n);
      g.props(b).pos_selout.insert(f.name);
      g.props(n).pos_selin.insert(f.name);
      g.props(n).shsel.insert(f.name);
    }
  }
}

std::vector<Rsg> exec_call_fallback(const Rsg& in, const SimpleStmt& stmt,
                                    const TransferContext& ctx) {
  PSA_COUNT(support::Counter::kCallHavocFallback);
  std::vector<Rsg> mid = exec_havoc_global(in, ctx);
  // Unlike the extern-call envelope (unknown code never frees,
  // docs/RESILIENCE.md), the callee here is real in-unit code that may well
  // contain free() — its effect must stay covered even though its summary
  // was unusable, so every reachable live cell widens to maybe-freed.
  for (Rsg& g : mid) {
    for (const NodeRef n : g.node_refs()) {
      rsg::FreeState& fs = g.props(n).free_state;
      if (fs == rsg::FreeState::kLive) fs = rsg::FreeState::kMaybeFreed;
    }
  }
  if (!stmt.x.valid()) return mid;
  SimpleStmt rebind;
  rebind.op = SimpleOp::kHavoc;
  rebind.x = stmt.x;
  rebind.type = stmt.type;
  rebind.loc = stmt.loc;
  std::vector<Rsg> out;
  for (const Rsg& g : mid) {
    for (Rsg& v : exec_havoc_rebind(g, rebind, ctx)) {
      // The returned value may itself be a cell the callee freed (the
      // rebind's fresh-⊤ variant is born live; the alias variants were
      // widened above).
      const NodeRef t = v.pvar_target(stmt.x);
      if (t != kNoNode && v.props(t).free_state == rsg::FreeState::kLive) {
        v.props(t).free_state = rsg::FreeState::kMaybeFreed;
      }
      out.push_back(std::move(v));
    }
  }
  return out;
}

std::vector<Rsg> exec_call(const Rsg& in, const cfg::CfgNode& node,
                           const TransferContext& ctx) {
  const SimpleStmt& stmt = node.stmt;
  const ipa::FunctionSummary* sum = nullptr;
  if (ctx.summaries != nullptr) {
    const auto it = ctx.summaries->find(stmt.callee);
    if (it != ctx.summaries->end() && it->second.analyzed) sum = &it->second;
  }
  if (sum == nullptr) return exec_call_fallback(in, stmt, ctx);
  PSA_COUNT(support::Counter::kSummaryApplied);

  static const std::vector<Symbol> kNoSelectors;
  const std::vector<Symbol>& sels =
      ctx.selectors != nullptr ? *ctx.selectors : kNoSelectors;

  Rsg g = in;
  const std::vector<NodeRef> region = callee_region(g, stmt);

  if (sum->may_free) {
    // The callee may free any argument-reachable cell; live cells widen to
    // kMaybeFreed (already-freed ones stay as they are).
    for (const NodeRef n : region) {
      rsg::FreeState& fs = g.props(n).free_state;
      if (fs == rsg::FreeState::kLive) fs = rsg::FreeState::kMaybeFreed;
    }
  }

  // `linkable` collects the cells a callee-written pointer field may target:
  // the region itself plus any fresh allocations the callee linked in.
  std::vector<NodeRef> linkable = region;
  if (sum->mutates_heap && !region.empty()) {
    rsg::summarize_region(g, region, sels, ctx.types);
    for (const auto& [type_raw, lines] : sum->alloc_types) {
      // A summary node covering every cell of this type the callee may have
      // allocated and linked into caller-visible memory.
      NodeProps props;
      props.type = static_cast<lang::StructId>(type_raw);
      props.cardinality = Cardinality::kMany;
      props.shared = true;
      for (const Symbol sel : sels) props.shsel.insert(sel);
      for (const std::uint32_t line : lines) props.alloc_sites.insert(line);
      linkable.push_back(g.add_node(std::move(props)));
    }
    if (ctx.types != nullptr && linkable.size() > region.size()) {
      // Saturate type-correct may-links across region ∪ fresh (the
      // region-internal links were already saturated above).
      for (const NodeRef a : linkable) {
        const lang::StructDecl& decl = ctx.types->struct_decl(g.props(a).type);
        for (const lang::Field& f : decl.fields) {
          if (!f.is_selector()) continue;
          for (const NodeRef b : linkable) {
            if (g.props(b).type != *f.type.struct_id) continue;
            g.add_link(a, f.name, b);
            g.props(a).pos_selout.insert(f.name);
            g.props(b).pos_selin.insert(f.name);
          }
        }
      }
    }
  }

  if (sum->havoc_tainted) {
    // The callee's own analysis degraded: everything it could have touched
    // carries the taint, and downstream findings report at degraded
    // confidence — the same contract as a direct havoc.
    for (const NodeRef n : linkable) g.props(n).havoc = true;
    g.set_havoc(true);
  }

  std::vector<Rsg> out;
  if (!stmt.x.valid()) {
    finish(g, ctx, out);
    return out;
  }

  // Return-value variants, one family per possible origin. An empty mask
  // means the callee never completes normally — the continuation is
  // unreachable and any abstraction of it is sound; NULL is the cheapest.
  const std::uint8_t kinds = sum->ret_kinds != 0 ? sum->ret_kinds : ipa::kRetNull;

  if ((kinds & ipa::kRetNull) != 0) {
    Rsg v = g;
    v.unbind_pvar(stmt.x);
    finish(v, ctx, out);
  }

  if ((kinds & ipa::kRetParamDerived) != 0) {
    // The returned cell already lives in the argument region. Alias family:
    // x re-bound to each pvar-referenced region cell of the return type.
    std::vector<NodeRef> alias_targets;
    for (const auto& [pvar, t] : g.pvar_links()) {
      if (g.props(t).type != stmt.type) continue;
      if (!std::binary_search(region.begin(), region.end(), t)) continue;
      if (std::find(alias_targets.begin(), alias_targets.end(), t) ==
          alias_targets.end()) {
        alias_targets.push_back(t);
      }
    }
    for (const NodeRef t : alias_targets) {
      Rsg v = g;
      v.unbind_pvar(stmt.x);
      v.bind_pvar(stmt.x, t);
      finish(v, ctx, out);
    }
    // Interior family: a region cell no pvar references (e.g. the tail of a
    // walked list) — a fresh cardinality-one cell linked both ways with
    // every type-correct peer of the region.
    {
      Rsg v = g;
      v.unbind_pvar(stmt.x);
      NodeProps props;
      props.type = stmt.type;
      props.cardinality = Cardinality::kOne;  // PL invariant
      props.shared = true;
      for (const Symbol sel : sels) props.shsel.insert(sel);
      if (sum->may_free) props.free_state = rsg::FreeState::kMaybeFreed;
      if (sum->havoc_tainted) props.havoc = true;
      const NodeRef n = v.add_node(std::move(props));
      v.bind_pvar(stmt.x, n);
      saturate_with(v, n, linkable, /*in_links_too=*/true, ctx);
      finish(v, ctx, out);
    }
  }

  if ((kinds & ipa::kRetFresh) != 0) {
    // A cell the callee allocated. Its fields may point anywhere into the
    // region; other region cells point at it only if the callee also
    // mutated the region (otherwise it escapes solely through the return
    // value).
    Rsg v = g;
    v.unbind_pvar(stmt.x);
    NodeProps props;
    props.type = stmt.type;
    props.cardinality = Cardinality::kOne;
    const auto alloc_it = sum->alloc_types.find(lang::raw(stmt.type));
    if (alloc_it != sum->alloc_types.end()) {
      for (const std::uint32_t line : alloc_it->second) {
        props.alloc_sites.insert(line);
      }
    }
    if (sum->ret_maybe_freed) props.free_state = rsg::FreeState::kMaybeFreed;
    if (sum->havoc_tainted) props.havoc = true;
    const NodeRef n = v.add_node(std::move(props));
    v.bind_pvar(stmt.x, n);
    saturate_with(v, n, linkable, /*in_links_too=*/sum->mutates_heap, ctx);
    finish(v, ctx, out);
  }

  return out;
}

std::vector<Rsg> exec_touch_clear(const Rsg& in, const SimpleStmt& stmt,
                                  const TransferContext& ctx) {
  std::vector<Rsg> out;
  if (!ctx.policy.use_touch()) {
    out.push_back(in);
    return out;
  }
  Rsg g = in;
  bool changed = false;
  for (const NodeRef n : g.node_refs()) {
    auto& touch = g.props(n).touch;
    const std::size_t before = touch.size();
    touch.erase_if([&](Symbol pvar) {
      return ctx.induction->is_induction(stmt.loop_id, pvar);
    });
    changed |= touch.size() != before;
  }
  if (changed) {
    finish(g, ctx, out);  // dropping TOUCH may enable summarization
  } else {
    out.push_back(std::move(g));
  }
  return out;
}

}  // namespace

std::vector<Rsg> bind_unknown_param(const Rsg& in, Symbol param,
                                    lang::StructId type,
                                    const TransferContext& ctx) {
  return rebind_unknown(in, param, type, ctx, /*taint_graph=*/false);
}

std::vector<Rsg> execute_statement(const Rsg& in, const cfg::CfgNode& node,
                                   const TransferContext& ctx) {
  const SimpleStmt& stmt = node.stmt;
  switch (stmt.op) {
    case SimpleOp::kPtrNull:
      return exec_ptr_null(in, stmt.x, ctx);
    case SimpleOp::kPtrMalloc:
      return exec_malloc(in, stmt, ctx);
    case SimpleOp::kPtrCopy:
      return exec_copy(in, node, ctx);
    case SimpleOp::kStoreNull:
    case SimpleOp::kStore:
      return exec_store(in, node, ctx);
    case SimpleOp::kLoad:
      return exec_load(in, node, ctx);
    case SimpleOp::kAssumeNull:
    case SimpleOp::kAssumeNotNull:
      return exec_assume(in, stmt);
    case SimpleOp::kTouchClear:
      return exec_touch_clear(in, stmt, ctx);
    case SimpleOp::kFree:
      // free(x) marks the (cardinality-one) target node FREED; links and
      // bindings survive so dangling accesses stay expressible for the
      // memory-safety checkers (src/checker/). The shape facts are
      // unchanged — the paper's codes do not rely on reallocation.
      return exec_free(in, stmt, ctx);
    case SimpleOp::kHavoc:
      return stmt.x.valid() ? exec_havoc_rebind(in, stmt, ctx)
                            : exec_havoc_global(in, ctx);
    case SimpleOp::kCall:
      return exec_call(in, node, ctx);
    case SimpleOp::kFieldRead:
    case SimpleOp::kFieldWrite:
    case SimpleOp::kScalar:
    case SimpleOp::kBranch:
    case SimpleOp::kNop:
      return {in};
  }
  return {in};
}

}  // namespace psa::analysis
