#include "analysis/analyzer.hpp"

#include <sstream>

#include "ipa/summarize.hpp"
#include "support/metrics.hpp"

namespace psa::analysis {

ProgramAnalysis prepare(std::string_view source, std::string_view function,
                        const FrontendOptions& frontend) {
  support::DiagnosticEngine diags;
  diags.set_salvage(frontend.salvage);

  ProgramAnalysis program;
  {
    PSA_PHASE_TIMER(parse_timer, support::Counter::kPhaseParseWallNs,
                    support::Counter::kPhaseParseCpuNs);
    program.unit = lang::parse_source(source, diags);
    if (diags.has_errors()) throw FrontendError(diags.to_string());

    program.sema = lang::analyze(program.unit, diags);
    if (diags.has_errors()) throw FrontendError(diags.to_string());
  }

  program.salvage.functions_analyzable = program.sema.functions.size();
  program.salvage.functions_total =
      program.sema.functions.size() + program.unit.skipped.size();

  // A unit is dropped only when nothing parses: salvage with zero surviving
  // functions is indistinguishable from a rejected unit.
  if (frontend.salvage && program.sema.functions.empty()) {
    std::string detail = diags.to_string();
    if (detail.empty()) detail = "no function survived the salvage frontend";
    throw FrontendError(std::move(detail));
  }

  const support::Symbol fn_sym = program.unit.interner->lookup(function);
  const lang::FunctionInfo* info =
      fn_sym.valid() ? program.sema.find(fn_sym) : nullptr;
  if (info == nullptr) {
    std::ostringstream os;
    // Distinguish "never existed" from "existed but could not be salvaged":
    // the latter carries the stub's demoted diagnostics.
    const lang::SkippedDecl* stub = nullptr;
    for (const auto& sk : program.unit.skipped) {
      if (fn_sym.valid() && sk.name == fn_sym) stub = &sk;
    }
    if (stub != nullptr) {
      os << "function '" << function << "' could not be salvaged:";
      for (const auto& d : stub->diagnostics) {
        os << '\n' << support::to_string(d);
      }
    } else {
      os << "function '" << function << "' not found";
    }
    throw FrontendError(os.str());
  }

  {
    PSA_PHASE_TIMER(cfg_timer, support::Counter::kPhaseCfgWallNs,
                    support::Counter::kPhaseCfgCpuNs);
    program.cfg = cfg::build_cfg(program.unit, *info, diags);
    if (diags.has_errors()) throw FrontendError(diags.to_string());
  }

  program.induction = cfg::detect_induction_pvars(program.cfg);

  // Lower every other sema-surviving function for the interprocedural
  // summary computation. Each gets its own salvage-mode diagnostic engine:
  // a helper that cannot be lowered is simply absent from unit_cfgs (its
  // call sites havoc-fallback) and never fails the unit or pollutes the
  // target's diagnostics.
  for (const auto& fi : program.sema.functions) {
    if (&fi == info) {
      program.unit_cfgs.push_back(
          {fi.decl->name, program.cfg, program.induction});
      continue;
    }
    support::DiagnosticEngine local;
    local.set_salvage(true);
    cfg::Cfg helper_cfg = cfg::build_cfg(program.unit, fi, local);
    if (local.has_errors()) continue;
    cfg::InductionInfo helper_ind = cfg::detect_induction_pvars(helper_cfg);
    program.unit_cfgs.push_back(
        {fi.decl->name, std::move(helper_cfg), std::move(helper_ind)});
  }

  // Salvage accounting (all zero on a clean strict or salvage run).
  for (const auto& node : program.cfg.nodes()) {
    if (node.stmt.op == cfg::SimpleOp::kHavoc) ++program.salvage.havoc_sites;
  }
  program.salvage.skipped_decls = program.unit.skipped.size();
  program.salvage.unsupported_count = diags.unsupported_count();
  if (program.salvage.degraded()) {
    std::ostringstream os;
    for (const auto& d : diags.all()) {
      if (d.severity == support::Severity::kUnsupported) {
        os << support::to_string(d) << '\n';
      }
    }
    program.salvage.diagnostics = os.str();
    PSA_COUNT_N(support::Counter::kHavocSites, program.salvage.havoc_sites);
    PSA_COUNT_N(support::Counter::kSkippedDecls, program.salvage.skipped_decls);
    PSA_COUNT(support::Counter::kSalvagedUnits);
  }
  return program;
}

AnalysisResult analyze_program(const ProgramAnalysis& program,
                               const Options& options) {
  Options opts = options;
  opts.types = &program.unit.types;

  // The unit's ops delta spans the summary pass too: a caller reading
  // result.ops sees summary_computed / summary_fixpoint_iters and the
  // phase_ipa timers next to the engine counters, not just the final run.
  support::MetricsRegion unit_region;

  // Interprocedural summary pass (src/ipa): computed once per unit, applied
  // by the kCall transfer of every analysis run below. Skipped entirely when
  // no CFG contains a call — the common single-function case pays nothing.
  ipa::SummaryTable summaries;
  if (opts.enable_summaries && opts.summaries == nullptr) {
    bool any_call = false;
    for (const auto& fc : program.unit_cfgs) {
      for (const auto& node : fc.cfg.nodes()) {
        if (node.stmt.op == cfg::SimpleOp::kCall) {
          any_call = true;
          break;
        }
      }
      if (any_call) break;
    }
    if (any_call) {
      PSA_PHASE_TIMER(ipa_timer, support::Counter::kPhaseIpaWallNs,
                      support::Counter::kPhaseIpaCpuNs);
      summaries = ipa::compute_summaries(program, opts);
      opts.summaries = &summaries;
    }
  }
  AnalysisResult result = analyze_cfg(program.cfg, program.induction, opts);
  result.ops = unit_region.delta();
  return result;
}

AnalysisResult analyze_source(std::string_view source, const Options& options,
                              std::string_view function,
                              const FrontendOptions& frontend) {
  const ProgramAnalysis program = prepare(source, function, frontend);
  return analyze_program(program, options);
}

}  // namespace psa::analysis
