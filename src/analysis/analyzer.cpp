#include "analysis/analyzer.hpp"

#include <sstream>

#include "support/metrics.hpp"

namespace psa::analysis {

ProgramAnalysis prepare(std::string_view source, std::string_view function) {
  support::DiagnosticEngine diags;

  ProgramAnalysis program;
  {
    PSA_PHASE_TIMER(parse_timer, support::Counter::kPhaseParseWallNs,
                    support::Counter::kPhaseParseCpuNs);
    program.unit = lang::parse_source(source, diags);
    if (diags.has_errors()) throw FrontendError(diags.to_string());

    program.sema = lang::analyze(program.unit, diags);
    if (diags.has_errors()) throw FrontendError(diags.to_string());
  }

  const support::Symbol fn_sym = program.unit.interner->lookup(function);
  const lang::FunctionInfo* info =
      fn_sym.valid() ? program.sema.find(fn_sym) : nullptr;
  if (info == nullptr) {
    std::ostringstream os;
    os << "function '" << function << "' not found";
    throw FrontendError(os.str());
  }

  PSA_PHASE_TIMER(cfg_timer, support::Counter::kPhaseCfgWallNs,
                  support::Counter::kPhaseCfgCpuNs);
  program.cfg = cfg::build_cfg(program.unit, *info, diags);
  if (diags.has_errors()) throw FrontendError(diags.to_string());

  program.induction = cfg::detect_induction_pvars(program.cfg);
  return program;
}

AnalysisResult analyze_program(const ProgramAnalysis& program,
                               const Options& options) {
  Options opts = options;
  opts.types = &program.unit.types;
  return analyze_cfg(program.cfg, program.induction, opts);
}

AnalysisResult analyze_source(std::string_view source, const Options& options,
                              std::string_view function) {
  const ProgramAnalysis program = prepare(source, function);
  return analyze_program(program, options);
}

}  // namespace psa::analysis
