#include "analysis/governor.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "analysis/engine.hpp"
#include "rsg/ops.hpp"
#include "support/metrics.hpp"

namespace psa::analysis {

std::string_view to_string(DegradationRung rung) {
  switch (rung) {
    case DegradationRung::kNone: return "none";
    case DegradationRung::kWiden: return "widen";
    case DegradationRung::kForceJoin: return "force-join";
    case DegradationRung::kSummarize: return "summarize";
  }
  return "unknown";
}

std::size_t DegradationReport::degraded_node_count() const {
  std::set<cfg::NodeId> nodes;
  for (const DegradationEvent& e : events) nodes.insert(e.node);
  return nodes.size();
}

DegradationRung DegradationReport::worst_rung() const {
  DegradationRung worst = floor;
  for (const DegradationEvent& e : events) worst = std::max(worst, e.rung);
  return worst;
}

std::string DegradationReport::summary() const {
  if (empty()) return "no degradation";
  std::ostringstream os;
  os << events.size() << " degradation(s) over " << degraded_node_count()
     << " statement(s):";
  for (std::size_t r = 1; r < rung_applications.size(); ++r) {
    if (rung_applications[r] == 0) continue;
    os << ' ' << to_string(static_cast<DegradationRung>(r)) << " x"
       << rung_applications[r] << " (" << rung_seconds[r] << " s)";
  }
  if (floor != DegradationRung::kNone)
    os << "; floor " << to_string(floor);
  if (deadline_drain) os << "; deadline drain";
  if (memory_budget_unreachable) os << "; memory budget unreachable";
  return os.str();
}

ResourceGovernor::ResourceGovernor(const Options& options, const cfg::Cfg& cfg)
    : policy_(options.policy()),
      widen_threshold_(options.widen_threshold),
      types_(options.types),
      cancel_(options.cancel),
      deadline_seconds_(static_cast<double>(options.deadline_ms) / 1000.0),
      deadline_allowance_(deadline_seconds_),
      rungs_(cfg.size(), DegradationRung::kNone) {
  // The selector universe: every selector some statement mentions. The
  // concrete store can only ever write these, so SHSEL over this set is the
  // full ⊤ for the analyzed function.
  std::set<rsg::Symbol> sels;
  for (const cfg::CfgNode& node : cfg.nodes()) {
    if (node.stmt.sel.valid()) sels.insert(node.stmt.sel);
  }
  selectors_.assign(sels.begin(), sels.end());
}

ResourceGovernor::Interrupt ResourceGovernor::poll() const {
  if (cancel_ != nullptr && cancel_->cancelled()) return Interrupt::kCancelled;
  if (deadline_seconds_ != 0.0 &&
      timer_.elapsed_seconds() >= deadline_allowance_) {
    return Interrupt::kDeadline;
  }
  return Interrupt::kNone;
}

bool ResourceGovernor::interrupted() const {
  return poll() != Interrupt::kNone;
}

bool ResourceGovernor::begin_drain() {
  if (draining_) return false;
  PSA_COUNT(support::Counter::kGovernorDrains);
  draining_ = true;
  deadline_allowance_ = 2.0 * deadline_seconds_;
  report_.deadline_drain = true;
  return true;
}

void ResourceGovernor::apply(cfg::NodeId node, DegradationRung rung,
                             Rsrsg& set, AnalysisStatus trigger) {
  support::WallTimer rung_timer;
  DegradationEvent event;
  event.node = node;
  event.rung = rung;
  event.trigger = trigger;
  event.graphs_before = set.size();
  switch (rung) {
    case DegradationRung::kNone:
      return;
    case DegradationRung::kWiden:
      set.widen(policy_, std::max<std::size_t>(1, widen_threshold_ / 2));
      break;
    case DegradationRung::kForceJoin:
      set.degrade_members(policy_, [](rsg::Rsg& g) { rsg::drop_must_info(g); });
      break;
    case DegradationRung::kSummarize:
      set.degrade_members(policy_, [this](rsg::Rsg& g) {
        rsg::summarize_top(g, policy_, selectors_, types_);
      });
      break;
  }
  event.graphs_after = set.size();
  const auto idx = static_cast<std::size_t>(rung);
  report_.rung_applications[idx] += 1;
  report_.rung_seconds[idx] += rung_timer.elapsed_seconds();
  report_.events.push_back(event);
}

DegradationRung ResourceGovernor::escalate(cfg::NodeId node, Rsrsg& set,
                                           AnalysisStatus trigger) {
  const DegradationRung current = rung(node);
  if (current == DegradationRung::kSummarize) return DegradationRung::kNone;
  const auto next = static_cast<DegradationRung>(
      static_cast<std::uint8_t>(current) + 1);
  PSA_COUNT(support::Counter::kGovernorEscalations);
  rungs_[node] = next;
  apply(node, next, set, trigger);
  return next;
}

void ResourceGovernor::collapse(cfg::NodeId node, Rsrsg& set,
                                AnalysisStatus trigger) {
  if (rung(node) == DegradationRung::kSummarize) return;
  PSA_COUNT(support::Counter::kGovernorCollapses);
  rungs_[node] = DegradationRung::kSummarize;
  apply(node, DegradationRung::kSummarize, set, trigger);
}

bool ResourceGovernor::reapply(cfg::NodeId node, Rsrsg& set) {
  if (rung(node) != DegradationRung::kNone)
    PSA_COUNT(support::Counter::kGovernorReapplies);
  switch (rung(node)) {
    case DegradationRung::kNone:
      return false;
    case DegradationRung::kWiden:
      // Once widened, the set folds every insert itself; widen() is then a
      // cheap no-op. This matters for a raised floor: sets that were empty
      // when the floor rose still enter widened mode here.
      return set.widen(policy_, std::max<std::size_t>(1, widen_threshold_ / 2));
    case DegradationRung::kForceJoin:
      return set.degrade_members(
          policy_, [](rsg::Rsg& g) { rsg::drop_must_info(g); });
    case DegradationRung::kSummarize:
      return set.degrade_members(policy_, [this](rsg::Rsg& g) {
        rsg::summarize_top(g, policy_, selectors_, types_);
      });
  }
  return false;
}

void ResourceGovernor::raise_floor(DegradationRung rung) {
  floor_ = std::max(floor_, rung);
  report_.floor = floor_;
}

}  // namespace psa::analysis
