// The progressive analysis driver (§5 of the paper).
//
// "the compiler [carries] out a progressive analysis which starts with fewer
//  constraints to summarize nodes, but, when necessary, these constraints
//  are increased to reach a better approximation" — the driver runs L1,
// evaluates client-supplied accuracy criteria on the result, and escalates
// to L2 and then L3 while any criterion fails (exactly the Barnes-Hut story
// of §5.1, where SHSEL(n6, body) needs L2 and the stack sharing needs L3).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"

namespace psa::analysis {

/// A named accuracy predicate over an analysis result. Returning false asks
/// the driver for a higher level.
struct ShapeCriterion {
  std::string name;
  std::function<bool(const ProgramAnalysis&, const AnalysisResult&)> check;
};

struct LevelAttempt {
  rsg::AnalysisLevel level = rsg::AnalysisLevel::kL1;
  AnalysisResult result;
  std::vector<std::string> failed_criteria;
};

struct ProgressiveResult {
  std::vector<LevelAttempt> attempts;
  bool satisfied = false;

  [[nodiscard]] const LevelAttempt& final_attempt() const {
    return attempts.back();
  }
  [[nodiscard]] rsg::AnalysisLevel final_level() const {
    return attempts.back().level;
  }
};

/// Run the progressive analysis. `base` supplies every option except the
/// level, which the driver raises from L1 to L3 as needed.
[[nodiscard]] ProgressiveResult run_progressive(
    const ProgramAnalysis& program, const std::vector<ShapeCriterion>& criteria,
    const Options& base = {});

}  // namespace psa::analysis
