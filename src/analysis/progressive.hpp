// The progressive analysis driver (§5 of the paper).
//
// "the compiler [carries] out a progressive analysis which starts with fewer
//  constraints to summarize nodes, but, when necessary, these constraints
//  are increased to reach a better approximation" — the driver runs L1,
// evaluates client-supplied accuracy criteria on the result, and escalates
// to L2 and then L3 while any criterion fails (exactly the Barnes-Hut story
// of §5.1, where SHSEL(n6, body) needs L2 and the stack sharing needs L3).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"

namespace psa::analysis {

/// A named accuracy predicate over an analysis result. Returning false asks
/// the driver for a higher level.
struct ShapeCriterion {
  std::string name;
  std::function<bool(const ProgramAnalysis&, const AnalysisResult&)> check;
};

struct LevelAttempt {
  rsg::AnalysisLevel level = rsg::AnalysisLevel::kL1;
  AnalysisResult result;
  std::vector<std::string> failed_criteria;
  /// Why the driver stopped after this attempt instead of escalating; empty
  /// for attempts that escalated normally or satisfied every criterion.
  std::string stop_reason;
};

struct ProgressiveResult {
  std::vector<LevelAttempt> attempts;
  bool satisfied = false;
  /// The driver stopped because a level ran out of resources (status, drain,
  /// or unreachable memory budget) — not because accuracy was reached.
  /// Escalating past a resource failure is pointless: a higher level is
  /// strictly more expensive and exhausts the same budget.
  bool resource_exhausted = false;
  std::string stop_reason;
  /// Index of the best usable attempt: the last one that converged (the
  /// step-down answer when a later escalation exhausted its budget). Falls
  /// back to the last attempt when none converged.
  std::size_t best_attempt = 0;

  [[nodiscard]] const LevelAttempt& final_attempt() const {
    return attempts.back();
  }
  [[nodiscard]] rsg::AnalysisLevel final_level() const {
    return attempts.back().level;
  }
  /// The attempt a client should consume (see best_attempt).
  [[nodiscard]] const LevelAttempt& best() const {
    return attempts[best_attempt];
  }
};

/// Run the progressive analysis. `base` supplies every option except the
/// level, which the driver raises from L1 to L3 as needed.
///
/// Resource budgets are shared across the whole ladder: `base.deadline_ms`
/// is the budget for *all* attempts together — each level gets whatever the
/// previous ones left, and the driver stops (resource_exhausted) when
/// nothing remains. A level that fails on resources short-circuits the
/// ladder; the step-down answer is ProgressiveResult::best().
[[nodiscard]] ProgressiveResult run_progressive(
    const ProgramAnalysis& program, const std::vector<ShapeCriterion>& criteria,
    const Options& base = {});

}  // namespace psa::analysis
