// Analysis-layer snapshot records (see snapshot.hpp).
#include "analysis/snapshot.hpp"

namespace psa::analysis {

namespace {

using rsg::ByteReader;
using rsg::ByteWriter;
using rsg::SymbolTableBuilder;
using rsg::SymbolTableView;

void append_degradation(ByteWriter& out, const DegradationReport& report) {
  out.u32(static_cast<std::uint32_t>(report.events.size()));
  for (const DegradationEvent& e : report.events) {
    out.u32(e.node);
    out.u8(static_cast<std::uint8_t>(e.rung));
    out.u8(static_cast<std::uint8_t>(e.trigger));
    out.u64(e.graphs_before);
    out.u64(e.graphs_after);
  }
  for (const std::uint32_t n : report.rung_applications) out.u32(n);
  for (const double s : report.rung_seconds) out.f64(s);
  out.u8(report.deadline_drain ? 1 : 0);
  out.u8(report.memory_budget_unreachable ? 1 : 0);
  out.u8(static_cast<std::uint8_t>(report.floor));
}

DegradationRung read_rung(ByteReader& in, const char* what) {
  const std::uint8_t rung = in.u8(what);
  if (rung > static_cast<std::uint8_t>(DegradationRung::kSummarize)) {
    throw SnapshotError(std::string("bad degradation rung in ") + what);
  }
  return static_cast<DegradationRung>(rung);
}

AnalysisStatus read_status(ByteReader& in, const char* what) {
  const std::uint8_t status = in.u8(what);
  if (status > static_cast<std::uint8_t>(AnalysisStatus::kCancelled)) {
    throw SnapshotError(std::string("bad analysis status in ") + what);
  }
  return static_cast<AnalysisStatus>(status);
}

DegradationReport read_degradation(ByteReader& in) {
  DegradationReport report;
  const std::uint32_t events = in.count("degradation events", 22);
  report.events.reserve(events);
  for (std::uint32_t i = 0; i < events; ++i) {
    DegradationEvent e;
    e.node = in.u32("event node");
    e.rung = read_rung(in, "event rung");
    e.trigger = read_status(in, "event trigger");
    e.graphs_before = in.u64("event graphs before");
    e.graphs_after = in.u64("event graphs after");
    report.events.push_back(e);
  }
  for (std::uint32_t& n : report.rung_applications) {
    n = in.u32("rung applications");
  }
  for (double& s : report.rung_seconds) s = in.f64("rung seconds");
  report.deadline_drain = in.u8("deadline drain") != 0;
  report.memory_budget_unreachable = in.u8("memory unreachable") != 0;
  report.floor = read_rung(in, "floor rung");
  return report;
}

}  // namespace

void append_metrics(ByteWriter& out, const support::MetricsSnapshot& ops) {
  out.u32(static_cast<std::uint32_t>(support::kCounterCount));
  for (const std::uint64_t v : ops.values) out.u64(v);
}

support::MetricsSnapshot read_metrics(ByteReader& in) {
  // Writer and reader are the same build, so the counter vocabulary must
  // match exactly; anything else is corruption (or a stale checkpoint from a
  // different binary — equally unusable).
  const std::uint32_t count = in.u32("ops counter count");
  if (count != support::kCounterCount) {
    throw SnapshotError("ops counter count mismatch");
  }
  support::MetricsSnapshot ops;
  for (std::uint64_t& v : ops.values) v = in.u64("ops counter");
  return ops;
}

void append_rsrsg(ByteWriter& out, const Rsrsg& set,
                  SymbolTableBuilder& table) {
  out.u8(set.widened() ? 1 : 0);
  out.u32(static_cast<std::uint32_t>(set.size()));
  for (const Rsg& g : set.graphs()) rsg::append_rsg(out, g, table);
}

Rsrsg read_rsrsg(ByteReader& in, const SymbolTableView& table) {
  const std::uint8_t widened = in.u8("widened flag");
  if (widened > 1) throw SnapshotError("bad widened flag");
  const std::uint32_t n = in.count("rsrsg members", 12);
  std::vector<Rsg> graphs;
  graphs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    graphs.push_back(rsg::read_rsg(in, table));
  }
  return Rsrsg::restore(std::move(graphs), widened != 0);
}

void append_analysis_result(ByteWriter& out, const AnalysisResult& result,
                            SymbolTableBuilder& table) {
  out.u8(static_cast<std::uint8_t>(result.status));
  out.f64(result.seconds);
  out.u64(result.node_visits);
  out.u64(result.memory.live_bytes);
  out.u64(result.memory.peak_bytes);
  out.u64(result.memory.total_allocated_bytes);
  out.u64(result.memory.nodes_created);
  out.u64(result.memory.graphs_created);
  append_degradation(out, result.degradation);
  append_metrics(out, result.ops);
  out.u32(static_cast<std::uint32_t>(result.per_node.size()));
  for (const Rsrsg& set : result.per_node) append_rsrsg(out, set, table);
}

AnalysisResult read_analysis_result(ByteReader& in,
                                    const SymbolTableView& table) {
  AnalysisResult result;
  result.status = read_status(in, "result status");
  result.seconds = in.f64("result seconds");
  result.node_visits = in.u64("node visits");
  result.memory.live_bytes = in.u64("live bytes");
  result.memory.peak_bytes = in.u64("peak bytes");
  result.memory.total_allocated_bytes = in.u64("total allocated bytes");
  result.memory.nodes_created = in.u64("nodes created");
  result.memory.graphs_created = in.u64("graphs created");
  result.degradation = read_degradation(in);
  result.ops = read_metrics(in);
  const std::uint32_t nodes = in.count("per-node states", 5);
  result.per_node.reserve(nodes);
  for (std::uint32_t i = 0; i < nodes; ++i) {
    result.per_node.push_back(read_rsrsg(in, table));
  }
  return result;
}

namespace {

template <typename AppendFn>
std::string serialize_with_table(const support::Interner& interner,
                                 AppendFn&& append) {
  SymbolTableBuilder table(interner);
  ByteWriter body;
  append(body, table);
  ByteWriter payload;
  table.write_table(payload);
  std::string out = payload.take();
  out += body.bytes();
  return rsg::wrap_snapshot(std::move(out));
}

}  // namespace

std::string serialize_rsrsg(const Rsrsg& set,
                            const support::Interner& interner) {
  return serialize_with_table(interner,
                              [&](ByteWriter& out, SymbolTableBuilder& table) {
                                append_rsrsg(out, set, table);
                              });
}

Rsrsg deserialize_rsrsg(std::string_view bytes, support::Interner& interner) {
  ByteReader in(rsg::unwrap_snapshot(bytes));
  const SymbolTableView table(in, interner);
  Rsrsg set = read_rsrsg(in, table);
  in.expect_end("rsrsg record");
  return set;
}

std::string serialize_analysis_result(const AnalysisResult& result,
                                      const support::Interner& interner) {
  return serialize_with_table(interner,
                              [&](ByteWriter& out, SymbolTableBuilder& table) {
                                append_analysis_result(out, result, table);
                              });
}

AnalysisResult deserialize_analysis_result(std::string_view bytes,
                                           support::Interner& interner) {
  ByteReader in(rsg::unwrap_snapshot(bytes));
  const SymbolTableView table(in, interner);
  AnalysisResult result = read_analysis_result(in, table);
  in.expect_end("analysis result record");
  return result;
}

}  // namespace psa::analysis
