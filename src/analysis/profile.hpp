// Observability exports over the analysis layer: population gauges computed
// from an AnalysisResult, per-unit metric records, the versioned JSONL
// metrics stream (`psa_cli --metrics-out`), and the human-readable
// `--profile` summary table. See docs/OBSERVABILITY.md for the metric
// taxonomy, the JSONL schema field by field, and the counter-to-paper-
// concept mapping.
//
// The raw counters live in support/metrics.hpp (process-global registry,
// compiled out under PSA_METRICS=0); this header is the read side that turns
// captured snapshots into reports. Everything here is deterministic given
// its inputs except the *_ns timer counters and wall_seconds, which measure
// real time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/engine.hpp"

namespace psa::analysis {

/// Point-in-time shape of one unit's converged state: how many RSGs stayed
/// live, how big they are, and how dense the SHARED / CYCLELINKS property
/// annotations run. Densities are fractions of total_nodes in [0, 1].
/// Complements the monotonic operation counters: counters say how much work
/// the fixpoint did, gauges say how big the answer is (the paper's Table-1
/// "space" column in structural rather than byte terms).
struct PopulationGauges {
  /// Sum of RSRSG cardinalities over every CFG node (live RSGs at fixpoint).
  std::uint64_t live_rsgs = 0;
  /// Sum of node counts over all live RSGs.
  std::uint64_t total_nodes = 0;
  /// Largest RSRSG cardinality of any single statement.
  std::uint64_t max_rsgs_per_stmt = 0;
  /// Node count of the largest single RSG.
  std::uint64_t max_nodes_per_rsg = 0;
  /// total_nodes / live_rsgs (0 when there are no graphs).
  double avg_nodes_per_rsg = 0.0;
  /// Nodes with SHARED = true, and the fraction of total_nodes they make up.
  std::uint64_t shared_nodes = 0;
  double shared_density = 0.0;
  /// Nodes carrying at least one CYCLELINKS pair, and their fraction.
  std::uint64_t cyclelink_nodes = 0;
  double cyclelinks_density = 0.0;
};

/// Walk result.per_node and tally the gauges. O(total nodes); cheap next to
/// the fixpoint that produced the result.
[[nodiscard]] PopulationGauges collect_gauges(const AnalysisResult& result);

/// One analysis unit's full metric record: identity, outcome, cost, the
/// operation-counter snapshot, and the population gauges. This is the unit
/// of the JSONL stream and the input to aggregation.
struct UnitMetrics {
  std::string unit;      // file path or corpus unit name
  std::string function;  // analyzed function
  std::string level;     // "L1" | "L2" | "L3" ("-" in aggregate records)
  std::string status;    // analysis::to_string(AnalysisStatus)
  double wall_seconds = 0.0;
  std::uint64_t node_visits = 0;
  bool degraded = false;
  /// Worst governor rung applied ("none" when not degraded).
  std::string worst_rung = "none";
  support::MemorySnapshot memory;
  /// Operation counters + phase timers. For single units this is either the
  /// fixpoint-only AnalysisResult::ops or a whole-unit region delta — the
  /// caller decides; for aggregates it is the element-wise sum.
  support::MetricsSnapshot ops;
  PopulationGauges gauges;
};

/// Build a unit record from an AnalysisResult. `ops` defaults to result.ops
/// (fixpoint only); pass a wider region delta to include frontend/checker
/// phases, e.g. driver::UnitPayload::metrics in batch mode.
[[nodiscard]] UnitMetrics collect_unit_metrics(
    std::string unit, std::string function, std::string level,
    const AnalysisResult& result);

/// Element-wise sum over units: counters, gauges, memory, visits and
/// wall_seconds add; max_* gauges and densities are recomputed from the
/// summed totals; status is "aggregate", level "-". The batch supervisor's
/// merged record must equal the sum of its per-unit records — asserted by
/// tests/analysis/profile_test.cpp and the CLI integration test.
[[nodiscard]] UnitMetrics aggregate_metrics(
    const std::vector<UnitMetrics>& units);

/// One JSONL record (single line, trailing '\n', RFC 8259). `kind` is
/// "unit" or "aggregate"; every record carries `"schema": "psa.metrics.v1"`.
/// Counters are emitted under "ops" keyed by support::counter_name; gauges
/// under "gauges"; memory under "memory".
[[nodiscard]] std::string to_metrics_json(const UnitMetrics& m,
                                          std::string_view kind);

/// Human-readable `--profile` table: phase timers (zero phases skipped),
/// operation counters grouped by subsystem, gauges. Multi-line, '\n'
/// terminated.
[[nodiscard]] std::string format_profile(const UnitMetrics& m);

/// Escape a string for embedding in a JSON string literal (quotes not
/// included). Exposed for the bench report writer.
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace psa::analysis
