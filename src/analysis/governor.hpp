// The resource governor: deadlines, cooperative cancellation, and the
// graceful-degradation ladder that replaces hard budget aborts.
//
// The paper's own compiler dies on real inputs (Table 1: out-of-memory on
// Sparse LU at L2/L3, 17-minute L1 runs on Barnes-Hut). Production shape
// analyzers — TVLA's bounded abstraction, Infer's per-procedure timeouts —
// never abort: they degrade to a coarser *sound* answer and keep going. The
// governor implements that discipline for the worklist engine:
//
//   * a wall-clock deadline (Options::deadline_ms) and a CancelToken, polled
//     in the worklist loop and inside the parallel per-RSG transfer fan-out;
//   * a three-rung widening ladder applied to the offending statement's
//     RSRSG whenever a budget (node visits, memory, RSRSG cardinality)
//     trips — every rung only merges nodes, widens may-information, or drops
//     must-information, so each rung is an over-approximation of the one
//     below it and the degraded fixpoint stays sound;
//   * a DegradationReport recording which nodes degraded, to which rung, how
//     often, and the wall-clock spent per rung.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/rsrsg.hpp"
#include "cfg/cfg.hpp"
#include "support/timer.hpp"

namespace psa::analysis {

enum class AnalysisStatus : std::uint8_t;  // engine.hpp
struct Options;                            // engine.hpp

/// Cooperative cancellation shared between an analysis run and its caller.
/// The caller keeps the token alive for the duration of the run; any thread
/// may call cancel() and the engine stops at the next poll point with
/// AnalysisStatus::kCancelled.
class CancelToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }
  void reset() noexcept { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// The widening ladder, harshest last. Every rung keeps the set's ALIAS
/// patterns intact (the concrete-soundness oracle matches alias/null
/// patterns per graph) and only merges nodes, grows may-information, or
/// shrinks must-information — see DESIGN.md "Resource governor".
enum class DegradationRung : std::uint8_t {
  kNone = 0,
  /// Halve the effective widen threshold and widen the set (coarsen every
  /// member to its (TYPE, SPATH0) skeleton, force-join ALIAS-equal members).
  kWiden = 1,
  /// Additionally drop all must-information (SELIN/SELOUT demoted to
  /// possible, CYCLELINKS and TOUCH cleared), then force-join ALIAS-equal
  /// members down to one per ALIAS pattern.
  kForceJoin = 2,
  /// Collapse to the ⊤-like summary: all SHARED/SHSEL bits set, reference
  /// patterns fully widened, non-pvar nodes summarized — one minimal graph
  /// per ALIAS pattern.
  kSummarize = 3,
};

[[nodiscard]] std::string_view to_string(DegradationRung rung);

/// One application of a ladder rung to one statement's RSRSG.
struct DegradationEvent {
  cfg::NodeId node = 0;
  DegradationRung rung = DegradationRung::kNone;
  AnalysisStatus trigger;  // which budget tripped
  std::size_t graphs_before = 0;
  std::size_t graphs_after = 0;
};

/// What the governor had to do to keep a run alive. Empty when no budget
/// tripped (the common case: the governor then costs only its poll checks).
struct DegradationReport {
  std::vector<DegradationEvent> events;
  /// Escalations per rung, indexed by DegradationRung.
  std::array<std::uint32_t, 4> rung_applications{};
  /// Wall-clock seconds spent applying each rung.
  std::array<double, 4> rung_seconds{};
  /// The deadline tripped and the engine drained at the top rung.
  bool deadline_drain = false;
  /// The memory budget proved unreachable even at the top rung; the engine
  /// finished over budget (still sound, maximally coarse).
  bool memory_budget_unreachable = false;
  /// The floor rung every statement was held to at the end of the run —
  /// states born after a global exhaustion never appear in `events`, so the
  /// floor is reported separately (worst_rung() accounts for it).
  DegradationRung floor = DegradationRung::kNone;

  [[nodiscard]] bool empty() const noexcept {
    return events.empty() && !deadline_drain && !memory_budget_unreachable &&
           floor == DegradationRung::kNone;
  }
  [[nodiscard]] std::size_t degraded_node_count() const;
  [[nodiscard]] DegradationRung worst_rung() const;
  /// One-paragraph human summary for reports and the CLI.
  [[nodiscard]] std::string summary() const;
};

/// Per-run budget bookkeeping and ladder state. Owned by the engine; one
/// instance per analyze_cfg call. Not thread-safe except where noted
/// (interrupted() is safe to call from pool workers).
class ResourceGovernor {
 public:
  ResourceGovernor(const Options& options, const cfg::Cfg& cfg);

  enum class Interrupt : std::uint8_t { kNone, kCancelled, kDeadline };

  /// Cooperative poll for the worklist loop: cancel token first, then the
  /// (current, possibly drain-extended) deadline.
  [[nodiscard]] Interrupt poll() const;

  /// Lock-free variant for the transfer fan-out stop predicate; safe from
  /// pool workers.
  [[nodiscard]] bool interrupted() const;

  /// Enter the drain phase after a deadline trip: the allowance is extended
  /// to 2x the original deadline so a maximally-coarse fixpoint can finish.
  /// Returns false when already draining — the caller must stop.
  bool begin_drain();
  [[nodiscard]] bool draining() const noexcept { return draining_; }

  /// Escalate `node` one rung and apply the transform to `set`. Returns the
  /// rung applied, or kNone when the node is already at the top.
  DegradationRung escalate(cfg::NodeId node, Rsrsg& set,
                           AnalysisStatus trigger);

  /// Escalate `node` straight to the top rung (deadline drain).
  void collapse(cfg::NodeId node, Rsrsg& set, AnalysisStatus trigger);

  /// Re-apply the node's current rung after new graphs were inserted, so a
  /// degraded statement can never re-accumulate precision (and cost) past
  /// its rung. Returns true when the set changed.
  bool reapply(cfg::NodeId node, Rsrsg& set);

  /// Raise the floor rung every statement is held to (global exhaustion:
  /// visit ladder exhausted, memory budget unreachable, deadline drain).
  void raise_floor(DegradationRung rung);

  [[nodiscard]] DegradationRung rung(cfg::NodeId node) const {
    return std::max(rungs_[node], floor_);
  }
  [[nodiscard]] DegradationRung floor_rung() const noexcept { return floor_; }

  void note_deadline_drain() { report_.deadline_drain = true; }
  void note_memory_unreachable() { report_.memory_budget_unreachable = true; }

  [[nodiscard]] double elapsed_seconds() const {
    return timer_.elapsed_seconds();
  }

  /// Move the accumulated report out (end of run).
  [[nodiscard]] DegradationReport take_report() { return std::move(report_); }

 private:
  void apply(cfg::NodeId node, DegradationRung rung, Rsrsg& set,
             AnalysisStatus trigger);

  rsg::LevelPolicy policy_;
  std::size_t widen_threshold_;
  /// Struct table for typed ⊤ saturation (may be null — see Options::types).
  const lang::TypeTable* types_ = nullptr;
  const CancelToken* cancel_ = nullptr;
  support::WallTimer timer_;
  double deadline_seconds_ = 0.0;        // 0 = no deadline
  double deadline_allowance_ = 0.0;      // current allowance (drain extends)
  bool draining_ = false;
  /// Selector universe of the analyzed function (every selector a statement
  /// mentions) — the kSummarize rung sets SHSEL for all of them.
  std::vector<rsg::Symbol> selectors_;
  std::vector<DegradationRung> rungs_;   // per CFG node
  DegradationRung floor_ = DegradationRung::kNone;
  DegradationReport report_;
};

}  // namespace psa::analysis
