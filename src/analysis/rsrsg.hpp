// Reduced Set of Reference Shape Graphs (§4 of the paper).
//
// The abstract value attached to every program point: a set of RSGs where
// COMPATIBLE members (equal ALIAS relation + per-pvar node compatibility)
// have been fused by JOIN. The reduction is what keeps the analysis
// practicable — disabling it (ablation) makes the set grow with the number
// of control paths.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "rsg/canon.hpp"
#include "rsg/level.hpp"
#include "rsg/ops.hpp"
#include "rsg/rsg.hpp"

namespace psa::analysis {

using rsg::LevelPolicy;
using rsg::Rsg;

class Rsrsg {
 public:
  /// Insert a graph: joined into the first COMPATIBLE member (repeatedly, in
  /// case the join enables further fusions); duplicates (isomorphic members)
  /// are dropped. With `enable_join` false only exact duplicates are merged.
  /// Returns true when the set changed.
  bool insert(Rsg g, const LevelPolicy& policy, bool enable_join = true);

  /// Insert every member of `other`. Returns true when the set changed.
  bool merge(const Rsrsg& other, const LevelPolicy& policy,
             bool enable_join = true);

  /// Widening: coarsen every member to its (TYPE, SPATH0) skeleton and
  /// force-join ALIAS-equal members. The set then enters *widened mode*:
  /// every further insert is coarsened and force-joined into its ALIAS-
  /// matching member, which makes the set evolve monotonically in a finite
  /// lattice (links/SHARED/SHSEL only grow; SELIN/SELOUT/TOUCH only shrink)
  /// and guarantees the fixpoint terminates. Members with pairwise different
  /// ALIAS relations cannot be fused; the set may stay above `max_graphs` —
  /// the caller decides whether that is a hard failure. Returns true when
  /// the set changed.
  bool widen(const LevelPolicy& policy, std::size_t max_graphs);

  [[nodiscard]] bool widened() const noexcept { return widened_; }

  /// Exact restore for the snapshot layer (rsg/serialize.hpp): adopt the
  /// members verbatim — no join, no coarsening, no dedup — recomputing the
  /// cached fingerprints. `deserialize(serialize(s))` must reproduce the set
  /// member-for-member, so the restore path deliberately bypasses every
  /// reduction insert() would apply.
  [[nodiscard]] static Rsrsg restore(std::vector<Rsg> graphs, bool widened);

  /// Degradation entry point for the resource governor: apply `transform` to
  /// every member, then rebuild the set through the widened-mode insert path
  /// (coarsen + force-join ALIAS-equal members). The set enters widened mode,
  /// so later inserts stay coarse and the fixpoint terminates. `transform`
  /// must only widen (merge nodes, grow may-info, shrink must-info) for the
  /// result to stay sound. Returns true when the set changed.
  bool degrade_members(const LevelPolicy& policy,
                       const std::function<void(Rsg&)>& transform);

  [[nodiscard]] std::size_t size() const noexcept { return graphs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return graphs_.empty(); }
  [[nodiscard]] const std::vector<Rsg>& graphs() const noexcept {
    return graphs_;
  }
  /// Cached structural fingerprint of member `i` (parallel to graphs()).
  [[nodiscard]] std::uint64_t fingerprint_at(std::size_t i) const {
    return fingerprints_[i];
  }

  [[nodiscard]] std::size_t footprint_bytes() const;
  [[nodiscard]] std::size_t total_nodes() const;

  /// Set equality up to graph isomorphism and member order.
  [[nodiscard]] bool equals(const Rsrsg& other) const;

  [[nodiscard]] std::string dump(const support::Interner& interner) const;

 private:
  bool insert_with_fp(Rsg g, std::uint64_t fp, const LevelPolicy& policy,
                      bool enable_join);
  const std::vector<rsg::NodeCompatContext>& member_contexts(std::size_t i) const;

  std::vector<Rsg> graphs_;
  std::vector<std::uint64_t> fingerprints_;  // parallel to graphs_
  /// Lazily-computed compatibility contexts per member (hot path of insert).
  mutable std::vector<std::shared_ptr<const std::vector<rsg::NodeCompatContext>>>
      contexts_;
  bool widened_ = false;
};

}  // namespace psa::analysis
